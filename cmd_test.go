package rpkirisk

// Smoke tests for the command-line tools: each binary is built once and
// exercised end to end — including a live pubd → rp → monitor session over
// loopback TCP.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// buildCommands compiles every cmd/ binary into a shared temp dir.
func buildCommands(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "rpkirisk-bin")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", binDir+string(os.PathSeparator), "./cmd/...")
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = errBuild(string(out))
		}
	})
	if buildErr != nil {
		t.Fatalf("building commands: %v", buildErr)
	}
	return binDir
}

type errBuild string

func (e errBuild) Error() string { return string(e) }

// syncBuffer is a mutex-guarded buffer safe to read while exec's pipe
// copier writes into it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func runCmd(t *testing.T, timeout time.Duration, name string, args ...string) (string, error) {
	t.Helper()
	bin := filepath.Join(buildCommands(t), name)
	cmd := exec.Command(bin, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	done := make(chan error, 1)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return buf.String(), err
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		<-done
		return buf.String(), errBuild("timeout")
	}
}

func TestCmdExperimentsList(t *testing.T) {
	out, err := runCmd(t, 30*time.Second, "rpki-experiments", "-list")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"figure2", "table6", "se7", "ext-suspenders"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestCmdExperimentsRunOne(t *testing.T) {
	out, err := runCmd(t, 60*time.Second, "rpki-experiments", "-run", "table6")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "1/1 experiments passed") {
		t.Errorf("output:\n%s", out)
	}
}

func TestCmdExperimentsMarkdown(t *testing.T) {
	out, err := runCmd(t, 60*time.Second, "rpki-experiments", "-run", "se6", "-format", "markdown")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "## se6") || !strings.Contains(out, "| shape check |") {
		t.Errorf("markdown output:\n%s", out)
	}
}

func TestCmdTree(t *testing.T) {
	out, err := runCmd(t, 60*time.Second, "rpki-tree")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"arin", "sprint", "continental", "cache complete"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
}

func TestCmdWhack(t *testing.T) {
	out, err := runCmd(t, 60*time.Second, "rpki-whack",
		"-manipulator", "sprint", "-holder", "continental", "-roa", "cont-20")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"plan[shrink]", "63.174.24.0/24", "rc-shrink"} {
		if !strings.Contains(out, want) {
			t.Errorf("whack output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdWhackDryRun(t *testing.T) {
	out, err := runCmd(t, 60*time.Second, "rpki-whack", "-method", "revoke", "-dry-run")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "dry run") || !strings.Contains(out, "revoke-subtree") {
		t.Errorf("output:\n%s", out)
	}
}

// TestCmdPubdRPMonitorSession wires pubd + rp + monitor as real processes.
func TestCmdPubdRPMonitorSession(t *testing.T) {
	dir := buildCommands(t)
	tal := filepath.Join(t.TempDir(), "arin.tal")

	pubd := exec.Command(filepath.Join(dir, "rpki-pubd"), "-listen", "127.0.0.1:0", "-tal", tal)
	var pubdOut syncBuffer
	pubd.Stdout = &pubdOut
	pubd.Stderr = &pubdOut
	if err := pubd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = pubd.Process.Kill()
		_, _ = pubd.Process.Wait()
	}()

	// Wait for the TAL to be written and the serving line to print.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(tal); err == nil {
			line := pubdOut.String()
			if i := strings.Index(line, "points on "); i >= 0 {
				rest := line[i+len("points on "):]
				addr = strings.Fields(rest)[0]
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("pubd never became ready:\n%s", pubdOut.String())
	}

	// One-shot relying-party sync against the live server: pubd builds
	// the world anchored at the wall clock, so validation must succeed
	// completely.
	rpOut, err := runCmd(t, 30*time.Second, "rpki-rp", "-tal", tal, "-server", addr)
	if err != nil {
		t.Fatalf("rp: %v\n%s", err, rpOut)
	}
	if !strings.Contains(rpOut, "cache complete") || !strings.Contains(rpOut, "8 VRPs") {
		t.Errorf("rp output:\n%s", rpOut)
	}

	// Monitor baseline pass.
	monOut, err := runCmd(t, 30*time.Second, "rpki-monitor", "-server", addr, "-once")
	if err != nil {
		t.Fatalf("monitor: %v\n%s", err, monOut)
	}
	if !strings.Contains(monOut, "watching 4 modules") {
		t.Errorf("monitor output:\n%s", monOut)
	}
}
