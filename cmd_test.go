package rpkirisk

// Smoke tests for the command-line tools: each binary is built once and
// exercised end to end — including a live pubd → rp → monitor session over
// loopback TCP.

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// buildCommands compiles every cmd/ binary into a shared temp dir.
func buildCommands(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "rpkirisk-bin")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", binDir+string(os.PathSeparator), "./cmd/...")
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = errBuild(string(out))
		}
	})
	if buildErr != nil {
		t.Fatalf("building commands: %v", buildErr)
	}
	return binDir
}

type errBuild string

func (e errBuild) Error() string { return string(e) }

// syncBuffer is a mutex-guarded buffer safe to read while exec's pipe
// copier writes into it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func runCmd(t *testing.T, timeout time.Duration, name string, args ...string) (string, error) {
	t.Helper()
	bin := filepath.Join(buildCommands(t), name)
	cmd := exec.Command(bin, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	done := make(chan error, 1)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return buf.String(), err
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		<-done
		return buf.String(), errBuild("timeout")
	}
}

func TestCmdExperimentsList(t *testing.T) {
	out, err := runCmd(t, 30*time.Second, "rpki-experiments", "-list")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"figure2", "table6", "se7", "ext-suspenders"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestCmdExperimentsRunOne(t *testing.T) {
	out, err := runCmd(t, 60*time.Second, "rpki-experiments", "-run", "table6")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "1/1 experiments passed") {
		t.Errorf("output:\n%s", out)
	}
}

func TestCmdExperimentsMarkdown(t *testing.T) {
	out, err := runCmd(t, 60*time.Second, "rpki-experiments", "-run", "se6", "-format", "markdown")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "## se6") || !strings.Contains(out, "| shape check |") {
		t.Errorf("markdown output:\n%s", out)
	}
}

func TestCmdTree(t *testing.T) {
	out, err := runCmd(t, 60*time.Second, "rpki-tree")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"arin", "sprint", "continental", "cache complete"} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
}

func TestCmdWhack(t *testing.T) {
	out, err := runCmd(t, 60*time.Second, "rpki-whack",
		"-manipulator", "sprint", "-holder", "continental", "-roa", "cont-20")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"plan[shrink]", "63.174.24.0/24", "rc-shrink"} {
		if !strings.Contains(out, want) {
			t.Errorf("whack output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdWhackDryRun(t *testing.T) {
	out, err := runCmd(t, 60*time.Second, "rpki-whack", "-method", "revoke", "-dry-run")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "dry run") || !strings.Contains(out, "revoke-subtree") {
		t.Errorf("output:\n%s", out)
	}
}

// TestCmdRPFlagValidation: nonsensical resilience tunings must be rejected
// at startup with a clear error, before the daemon touches the TAL or the
// network — a negative retry count or a zero deadline would silently
// disable a rung of the degradation ladder.
func TestCmdRPFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative-retries", []string{"-max-retries", "-1"}, "-max-retries must be >= 0"},
		{"zero-timeout", []string{"-request-timeout", "0s"}, "-request-timeout must be positive"},
		{"negative-timeout", []string{"-request-timeout", "-3s"}, "-request-timeout must be positive"},
		{"zero-breaker-threshold", []string{"-breaker-threshold", "0"}, "-breaker-threshold must be >= 1"},
		{"negative-breaker-threshold", []string{"-breaker-threshold", "-2"}, "-breaker-threshold must be >= 1"},
		{"zero-breaker-cooldown", []string{"-breaker-cooldown", "0s"}, "-breaker-cooldown must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// -tal points at a nonexistent file: validation must fire first,
			// so the error is about the flag, not the missing TAL.
			args := append([]string{"-tal", filepath.Join(t.TempDir(), "absent.tal")}, tc.args...)
			out, err := runCmd(t, 30*time.Second, "rpki-rp", args...)
			if err == nil {
				t.Fatalf("bad flags accepted; output:\n%s", out)
			}
			if !strings.Contains(out, tc.want) {
				t.Errorf("error should mention %q, got:\n%s", tc.want, out)
			}
		})
	}
}

// startPubd boots rpki-pubd on loopback, waits for its TAL and serving
// line, and returns the server address and TAL path. The process is killed
// on test cleanup.
func startPubd(t *testing.T) (addr, tal string) {
	t.Helper()
	dir := buildCommands(t)
	tal = filepath.Join(t.TempDir(), "arin.tal")
	pubd := exec.Command(filepath.Join(dir, "rpki-pubd"), "-listen", "127.0.0.1:0", "-tal", tal)
	var pubdOut syncBuffer
	pubd.Stdout = &pubdOut
	pubd.Stderr = &pubdOut
	if err := pubd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = pubd.Process.Kill()
		_, _ = pubd.Process.Wait()
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(tal); err == nil {
			line := pubdOut.String()
			if i := strings.Index(line, "points on "); i >= 0 {
				rest := line[i+len("points on "):]
				return strings.Fields(rest)[0], tal
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("pubd never became ready:\n%s", pubdOut.String())
	return "", ""
}

// httpGet fetches a URL and returns status code and body.
func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// metricValue extracts the value of an unlabeled series from a Prometheus
// text exposition body (-1 if absent).
func metricValue(body, name string) float64 {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			if v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err == nil {
				return v
			}
		}
	}
	return -1
}

// TestCmdRPOpsSurface boots pubd plus a polling relying party with
// -ops-listen and -rtr, waits for two poll cycles, and checks that the
// operator surface exposes live sync, breaker, memo and RTR series along
// with health, readiness, flight-recorder and trace endpoints.
func TestCmdRPOpsSurface(t *testing.T) {
	serverAddr, tal := startPubd(t)
	dir := buildCommands(t)

	rp := exec.Command(filepath.Join(dir, "rpki-rp"),
		"-tal", tal, "-server", serverAddr,
		"-poll", "250ms", "-rtr", "127.0.0.1:0", "-ops-listen", "127.0.0.1:0")
	var rpOut syncBuffer
	rp.Stdout = &rpOut
	rp.Stderr = &rpOut
	if err := rp.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = rp.Process.Kill()
		_, _ = rp.Process.Wait()
	}()

	// Wait for the ops listener to announce itself.
	var opsAddr string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		out := rpOut.String()
		if i := strings.Index(out, "ops server on "); i >= 0 {
			opsAddr = strings.Fields(out[i+len("ops server on "):])[0]
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if opsAddr == "" {
		t.Fatalf("rp never announced its ops server:\n%s", rpOut.String())
	}
	base := "http://" + opsAddr

	// Scrape until at least two poll cycles have completed.
	var metrics string
	deadline = time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if _, body := httpGet(t, base+"/metrics"); metricValue(body, "rpki_syncs_total") >= 2 {
			metrics = body
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if metrics == "" {
		t.Fatalf("never saw two completed syncs on /metrics:\n%s", rpOut.String())
	}

	// One series from each instrumented layer must be present and sane.
	for _, want := range []string{
		"rpki_vrps 8",                     // relying party: validated cache
		"rpki_sync_duration_seconds_sum",  // relying party: sync histogram
		"rpki_modules_reused_total",       // module memo
		"rpki_repo_breaker_trips_total 0", // repository client breakers
		"rpki_repo_fetched_bytes_total",   // repository client transport
		"rpki_rtr_serial",                 // RTR cache
		"rpki_last_sync_unixtime",         // staleness anchor
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The steady-state polls against an unchanged world must reuse modules.
	if v := metricValue(metrics, "rpki_modules_reused_total"); v < 1 {
		t.Errorf("rpki_modules_reused_total = %v, want >= 1 after a warm poll", v)
	}

	if code, body := httpGet(t, base+"/healthz"); code != 200 || !strings.Contains(body, `"clean"`) {
		t.Errorf("/healthz = %d %q, want 200 with state clean", code, body)
	}
	if code, _ := httpGet(t, base+"/readyz"); code != 200 {
		t.Errorf("/readyz = %d, want 200 after a clean sync", code)
	}
	if code, body := httpGet(t, base+"/debug/flightrecorder"); code != 200 || !strings.Contains(body, `"total"`) {
		t.Errorf("/debug/flightrecorder = %d %q", code, body)
	}
	if code, body := httpGet(t, base+"/debug/lasttrace"); code != 200 || !strings.Contains(body, `"sync"`) {
		t.Errorf("/debug/lasttrace = %d, want the last sync's span tree, got %q", code, body)
	}
}

// TestCmdPubdRPMonitorSession wires pubd + rp + monitor as real processes.
func TestCmdPubdRPMonitorSession(t *testing.T) {
	dir := buildCommands(t)
	tal := filepath.Join(t.TempDir(), "arin.tal")

	pubd := exec.Command(filepath.Join(dir, "rpki-pubd"), "-listen", "127.0.0.1:0", "-tal", tal)
	var pubdOut syncBuffer
	pubd.Stdout = &pubdOut
	pubd.Stderr = &pubdOut
	if err := pubd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = pubd.Process.Kill()
		_, _ = pubd.Process.Wait()
	}()

	// Wait for the TAL to be written and the serving line to print.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(tal); err == nil {
			line := pubdOut.String()
			if i := strings.Index(line, "points on "); i >= 0 {
				rest := line[i+len("points on "):]
				addr = strings.Fields(rest)[0]
				break
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("pubd never became ready:\n%s", pubdOut.String())
	}

	// One-shot relying-party sync against the live server: pubd builds
	// the world anchored at the wall clock, so validation must succeed
	// completely.
	rpOut, err := runCmd(t, 30*time.Second, "rpki-rp", "-tal", tal, "-server", addr)
	if err != nil {
		t.Fatalf("rp: %v\n%s", err, rpOut)
	}
	if !strings.Contains(rpOut, "cache complete") || !strings.Contains(rpOut, "8 VRPs") {
		t.Errorf("rp output:\n%s", rpOut)
	}

	// Monitor baseline pass.
	monOut, err := runCmd(t, 30*time.Second, "rpki-monitor", "-server", addr, "-once")
	if err != nil {
		t.Fatalf("monitor: %v\n%s", err, monOut)
	}
	if !strings.Contains(monOut, "watching 4 modules") {
		t.Errorf("monitor output:\n%s", monOut)
	}
}
