package rpkirisk

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/rov"
	"repro/internal/rtr"
)

func TestNewModelWorldAndValidate(t *testing.T) {
	w, err := NewModelWorld(false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Validate(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.ROAsAccepted != 8 || res.Incomplete() {
		t.Errorf("ROAs=%d incomplete=%v", res.ROAsAccepted, res.Incomplete())
	}
}

func TestServeAndValidateTCP(t *testing.T) {
	w, err := NewModelWorld(false)
	if err != nil {
		t.Fatal(err)
	}
	addr, stop, err := Serve(w, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	res, err := ValidateTCP(context.Background(), w, addr)
	if err != nil {
		t.Fatal(err)
	}
	if res.ROAsAccepted != 8 {
		t.Errorf("ROAs over TCP = %d, want 8", res.ROAsAccepted)
	}
	if res.Incomplete() {
		t.Errorf("diagnostics: %v", res.Diagnostics)
	}
}

func TestTALRoundTrip(t *testing.T) {
	w, err := NewModelWorld(false)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "arin.tal")
	if err := WriteTAL(w, path); err != nil {
		t.Fatal(err)
	}
	anchor, err := ReadTAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(anchor.CertDER) != string(w.Anchor().CertDER) {
		t.Error("TAL cert mismatch")
	}
	if anchor.URI != w.Anchor().URI {
		t.Errorf("TAL URI = %v", anchor.URI)
	}
	if _, err := ReadTAL(filepath.Join(t.TempDir(), "missing.tal")); err == nil {
		t.Error("missing TAL must fail")
	}
}

func TestServeRTREndToEnd(t *testing.T) {
	w, err := NewModelWorld(false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Validate(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	addr, cache, stop, err := ServeRTR("127.0.0.1:0", res.VRPs)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	client := rtr.NewClient(addr)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = client.Run(ctx) }()
	if !client.WaitSynced(3 * time.Second) {
		t.Fatal("RTR sync failed")
	}
	if got := len(client.VRPs()); got != len(res.VRPs) {
		t.Errorf("router VRPs = %d, want %d", got, len(res.VRPs))
	}

	// A whack propagates through the whole stack: delete a ROA, revalidate,
	// push the update, and the router's table shrinks.
	if err := w.MustAuthority("continental").DeleteROA("cont-22"); err != nil {
		t.Fatal(err)
	}
	res2, err := Validate(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	cache.SetVRPs(res2.VRPs)
	if !client.WaitSerial(cache.Serial(), 3*time.Second) {
		t.Fatal("RTR update never arrived")
	}
	for _, v := range client.VRPs() {
		if v.ASN == 7341 {
			t.Error("whacked VRP still in the router's table")
		}
	}
}

func TestRunExperimentFacade(t *testing.T) {
	results, err := RunExperiment("se6")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].Passed() {
		t.Errorf("results = %v", results)
	}
	if len(Experiments()) != 14 {
		t.Errorf("experiments = %d, want 14", len(Experiments()))
	}
	if len(Table4()) != 9 {
		t.Error("Table4 rows wrong")
	}
}

func TestParsersExported(t *testing.T) {
	if MustParsePrefix("10.0.0.0/8").Bits() != 8 {
		t.Error("prefix parse wrong")
	}
	if MustParseAddr("10.0.0.1").String() != "10.0.0.1" {
		t.Error("addr parse wrong")
	}
	_ = rov.Unknown // keep the import meaningful for examples
}
