package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCheckWithinBudget(t *testing.T) {
	rep := report{Timings: []timing{
		{Rule: "callgraph", Millis: 13},
		{Rule: "taintflow", Millis: 4},
		{Rule: "lockorder", Millis: 2},
	}}
	lines, breaches := check(rep, 30000, 60000)
	if breaches != 0 {
		t.Fatalf("breaches = %d, want 0\n%s", breaches, strings.Join(lines, "\n"))
	}
	if want := "rpki-lint-budget: 3 rules, 19.0ms total (budget 30000ms/rule, 60000ms total)"; lines[len(lines)-1] != want {
		t.Fatalf("summary = %q, want %q", lines[len(lines)-1], want)
	}
}

func TestCheckPerRuleBreach(t *testing.T) {
	rep := report{Timings: []timing{
		{Rule: "taintflow", Millis: 45000},
		{Rule: "lockorder", Millis: 2},
	}}
	lines, breaches := check(rep, 30000, 60000)
	if breaches != 1 {
		t.Fatalf("breaches = %d, want 1\n%s", breaches, strings.Join(lines, "\n"))
	}
	if want := "BREACH taintflow: 45000.0ms > 30000ms per-rule budget"; lines[0] != want {
		t.Fatalf("breach line = %q, want %q", lines[0], want)
	}
}

func TestCheckTotalBreach(t *testing.T) {
	rep := report{Timings: []timing{
		{Rule: "a", Millis: 25000},
		{Rule: "b", Millis: 25000},
		{Rule: "c", Millis: 25000},
	}}
	lines, breaches := check(rep, 30000, 60000)
	if breaches != 1 {
		t.Fatalf("breaches = %d, want 1\n%s", breaches, strings.Join(lines, "\n"))
	}
	if want := "BREACH total: 75000.0ms > 60000ms whole-analysis budget"; lines[0] != want {
		t.Fatalf("breach line = %q, want %q", lines[0], want)
	}
}

func TestReportShapeMatchesLint(t *testing.T) {
	// Decode a fragment in the exact shape `rpki-lint -json` emits so a
	// renamed JSON key on either side breaks this test, not just CI.
	raw := []byte(`{"findings":null,"timings":[{"rule":"callgraph","millis":13.2},{"rule":"atomicmix","millis":1.5}],"suppression_inventory":["x"]}`)
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Timings) != 2 || rep.Timings[0].Rule != "callgraph" || rep.Timings[1].Millis != 1.5 {
		t.Fatalf("decoded timings = %+v", rep.Timings)
	}
}
