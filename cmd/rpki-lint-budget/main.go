// Command rpki-lint-budget enforces a wall-clock budget over an
// `rpki-lint -json` report. CI uploads the report as an artifact and runs
// this check so a rule that regresses from near-linear to superlinear
// fails the build loudly instead of quietly slowing every future run.
//
// Usage:
//
//	rpki-lint-budget -report rpki-lint-report.json [-rule-budget-ms N] [-total-budget-ms N]
//
// The check fails (exit 1) when any single rule — or the call-graph
// construction, which the report times under the pseudo-rule
// "callgraph" — exceeds the per-rule budget, or when the sum of all
// timings exceeds the total budget.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// timing mirrors analysis.RuleTiming's JSON shape. Decoded structurally
// instead of importing internal/analysis so the tool works against any
// archived report, including ones produced by older binaries.
type timing struct {
	Rule   string  `json:"rule"`
	Millis float64 `json:"millis"`
}

type report struct {
	Timings []timing `json:"timings"`
}

func main() {
	path := flag.String("report", "", "path to an rpki-lint -json report")
	ruleBudget := flag.Float64("rule-budget-ms", 30000, "per-rule wall-clock budget in milliseconds")
	totalBudget := flag.Float64("total-budget-ms", 60000, "whole-analysis wall-clock budget in milliseconds")
	flag.Parse()

	if *path == "" {
		fmt.Fprintln(os.Stderr, "rpki-lint-budget: -report is required")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rpki-lint-budget: %v\n", err)
		os.Exit(2)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		fmt.Fprintf(os.Stderr, "rpki-lint-budget: decoding %s: %v\n", *path, err)
		os.Exit(2)
	}
	if len(rep.Timings) == 0 {
		fmt.Fprintf(os.Stderr, "rpki-lint-budget: %s has no timings — was it produced with -json?\n", *path)
		os.Exit(2)
	}

	lines, breaches := check(rep, *ruleBudget, *totalBudget)
	for _, l := range lines {
		fmt.Println(l)
	}
	if breaches > 0 {
		os.Exit(1)
	}
}

// check evaluates the budgets and returns the report lines to print plus
// the number of breaches.
func check(rep report, ruleBudget, totalBudget float64) (lines []string, breaches int) {
	var total float64
	for _, t := range rep.Timings {
		total += t.Millis
		if t.Millis > ruleBudget {
			lines = append(lines, fmt.Sprintf("BREACH %s: %.1fms > %.0fms per-rule budget", t.Rule, t.Millis, ruleBudget))
			breaches++
		}
	}
	if total > totalBudget {
		lines = append(lines, fmt.Sprintf("BREACH total: %.1fms > %.0fms whole-analysis budget", total, totalBudget))
		breaches++
	}
	lines = append(lines, fmt.Sprintf("rpki-lint-budget: %d rules, %.1fms total (budget %.0fms/rule, %.0fms total)",
		len(rep.Timings), total, ruleBudget, totalBudget))
	return lines, breaches
}
