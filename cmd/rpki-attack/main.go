// Command rpki-attack runs the adversarial campaign suite against the
// relying party: Stalloris delay games, resource-exhaustion blowups, and
// decoder mutation sweeps, each asserting the relying party terminates in a
// defined state (clean, degraded, or stale) — never a hang, a panic, or
// unbounded growth.
//
// Usage:
//
//	rpki-attack -list             # print the scenario taxonomy
//	rpki-attack                   # run every scenario
//	rpki-attack -run stalloris/   # run a subset by name prefix/regexp
//	rpki-attack -json             # machine-readable verdicts (CI gate)
//
// The exit status is 0 only if every selected scenario passes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"
	"text/tabwriter"

	"repro/internal/attack"
)

func main() {
	list := flag.Bool("list", false, "list scenarios and exit")
	runPat := flag.String("run", "", "run only scenarios matching this regexp")
	jsonOut := flag.Bool("json", false, "emit one JSON verdict per line")
	flag.Parse()

	scenarios := attack.Scenarios()
	if *runPat != "" {
		re, err := regexp.Compile(*runPat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rpki-attack: bad -run pattern: %v\n", err)
			os.Exit(2)
		}
		var kept []attack.Scenario
		for _, s := range scenarios {
			if re.MatchString(s.Name) {
				kept = append(kept, s)
			}
		}
		scenarios = kept
	}
	if len(scenarios) == 0 {
		fmt.Fprintln(os.Stderr, "rpki-attack: no scenarios selected")
		os.Exit(2)
	}

	if *list {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "SCENARIO\tLAYER\tSOURCE")
		for _, s := range scenarios {
			fmt.Fprintf(tw, "%s\t%s\t%s\n", s.Name, s.Layer, s.Paper)
		}
		tw.Flush()
		return
	}

	enc := json.NewEncoder(os.Stdout)
	failed := 0
	for _, s := range scenarios {
		v := attack.Run(context.Background(), s)
		if v.Outcome != attack.OutcomePass {
			failed++
		}
		if *jsonOut {
			if err := enc.Encode(v); err != nil {
				fmt.Fprintf(os.Stderr, "rpki-attack: %v\n", err)
				os.Exit(2)
			}
			continue
		}
		status := strings.ToUpper(string(v.Outcome))
		fmt.Printf("%-4s %-28s terminal=%s wall=%dms\n", status, v.Name, orDash(v.Health), v.WallMS)
		for _, f := range v.Failures {
			fmt.Printf("       %s\n", f)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "rpki-attack: %d of %d scenarios failed\n", failed, len(scenarios))
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Printf("all %d scenarios passed\n", len(scenarios))
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
