// Command rpki-bench runs the repository's performance suites outside the
// go-test harness and writes the results as machine-readable JSON — a
// regression baseline that CI or a developer can diff across changes.
//
// Usage:
//
//	rpki-bench [-out BENCH_PR9.json] [-tiers 10000,100000,1000000]
//	           [-micro] [-benchtime 1s] [-workers N] [-rss-budget-mb M]
//	           [-worlddir DIR] [-rtr-scale 1000,5000,10000] [-rtr-deltas N]
//	           [-rtr-vrps N] [-rtr-rss-budget-mb M]
//
// Three suites:
//
//   - The micro suite (-micro, on by default) covers the steady-state
//     polling pipeline end to end: cold validation of the production-sized
//     synthetic world, warm re-syncs with and without module memoization,
//     the same warm re-sync with full observability attached (the report
//     records the overhead percentage), the one-module-changed incremental
//     sync, the VRP set diff, the RTR fan-out of a one-VRP delta to 100
//     concurrent router clients, and the internal/obs metric hot paths —
//     the obs_* benchmarks hard-fail if a counter/gauge/histogram update
//     allocates.
//
//   - The scaling suite (-tiers) generates seeded on-disk worlds at each
//     tier (ROA count) and measures, per tier: generation, cold streaming
//     validation, warm streaming re-sync, and cold non-streaming (baseline)
//     validation. Each phase runs in a fresh subprocess (the binary re-execs
//     itself) so peak RSS — read from /proc/self/status VmHWM — isolates
//     that phase alone. The harness fails if the streaming and baseline
//     paths disagree on the VRP set (byte-level digest compare), or if a
//     streaming phase exceeds -rss-budget-mb.
//
//   - The rtr-scale suite (-rtr-scale) measures the router-fleet fan-out:
//     per client tier (e.g. 1k/5k/10k concurrent RTR clients), one fresh
//     server subprocess owns the cache, the RTR listener, a replication
//     feed with a live replica, and one deliberately stalled client, while
//     the router fleet runs in subprocesses of at most 8000 clients each
//     (a TCP connection costs a descriptor on both ends, and per-process
//     RLIMIT_NOFILE hard limits are not raisable without
//     CAP_SYS_RESOURCE). The server drives -rtr-deltas cache updates
//     through the sharded notify path and records the delta-propagation
//     p50/p99/max across every client×delta sample plus the process tree's
//     peak RSS. The phase hard-fails unless the stalled client was
//     evicted, every surviving client's final VRP set equals the cache's
//     canonical set, and the replica frontend ends byte-identical to the
//     primary (StateDigest compare — session, serial, and snapshot frame).
//
// Worlds live in per-tier temp directories removed after the tier finishes;
// pass -worlddir to keep them (and to reuse an already-generated world on
// the next run — generation is skipped when a matching world.json exists).
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	rpkirisk "repro"
	"repro/internal/ipres"
	"repro/internal/modelgen"
	"repro/internal/obs"
	"repro/internal/roa"
	"repro/internal/rov"
	"repro/internal/rp"
	"repro/internal/rtr"
)

type benchResult struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	GoVersion    string  `json:"go_version"`
	CPUs         int     `json:"cpus"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`
}

// scaleResult is one scaling-suite phase, measured in its own subprocess.
type scaleResult struct {
	Name            string  `json:"name"` // scale_<tier>_<phase>
	Tier            int     `json:"tier"`
	Phase           string  `json:"phase"`
	Workers         int     `json:"workers"`
	WallSeconds     float64 `json:"wall_seconds"`
	PeakRSSBytes    int64   `json:"peak_rss_bytes"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	Mallocs         uint64  `json:"mallocs"`
	GoVersion       string  `json:"go_version"`
	CPUs            int     `json:"cpus"`
	Modules         int     `json:"modules,omitempty"`
	VRPs            int     `json:"vrps,omitempty"`
	VRPDigest       string  `json:"vrp_digest,omitempty"`
}

// rtrScaleResult is one rtr-scale tier, measured in its own subprocess.
type rtrScaleResult struct {
	Name    string `json:"name"` // rtr_scale_<clients>
	Clients int    `json:"clients"`
	Deltas  int    `json:"deltas"`
	VRPs    int    `json:"vrps"`
	// Delta-propagation latency over every client×delta sample: SetVRPs
	// call to the client's End of Data for that serial.
	P50DeltaMS float64 `json:"p50_delta_ms"`
	P99DeltaMS float64 `json:"p99_delta_ms"`
	MaxDeltaMS float64 `json:"max_delta_ms"`
	// SyncSeconds is the initial fleet connect+snapshot time; WallSeconds
	// covers the whole phase.
	SyncSeconds  float64 `json:"sync_seconds"`
	WallSeconds  float64 `json:"wall_seconds"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"` // whole tier: server process (cache+replica) plus every fleet subprocess
	// Evictions must be >= 1: the deliberately stalled client.
	Evictions uint64 `json:"evictions"`
	// EquivalentClients counts clients whose final VRP digest matched the
	// cache's canonical set; the phase fails unless it equals Clients.
	EquivalentClients int    `json:"equivalent_clients"`
	VRPDigest         string `json:"vrp_digest"`
	// ReplicaDigestOK: the replica frontend's StateDigest (session, serial,
	// snapshot frame) is byte-identical to the primary's.
	ReplicaDigestOK bool   `json:"replica_digest_ok"`
	GoVersion       string `json:"go_version"`
	CPUs            int    `json:"cpus"`
}

type report struct {
	Date      string           `json:"date"`
	GoVersion string           `json:"go_version"`
	GOOS      string           `json:"goos"`
	GOARCH    string           `json:"goarch"`
	CPUs      int              `json:"cpus"`
	Results   []benchResult    `json:"results,omitempty"`
	Scale     []scaleResult    `json:"scale,omitempty"`
	RTRScale  []rtrScaleResult `json:"rtr_scale,omitempty"`
	// ObsOverheadPct is the warm re-sync cost of full instrumentation:
	// (warm_resync_instrumented - warm_resync_module_reuse) / baseline,
	// as a percentage. Nil when the micro suite did not run.
	ObsOverheadPct *float64 `json:"obs_warm_resync_overhead_pct,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_PR9.json", "write the JSON report to this file (empty: stdout only)")
	benchtime := flag.Duration("benchtime", time.Second, "target run time per micro-benchmark")
	micro := flag.Bool("micro", true, "run the micro-benchmark suite")
	tiers := flag.String("tiers", "", "comma-separated ROA tiers for the scaling suite (e.g. 10000,100000,1000000)")
	workers := flag.Int("workers", 4, "generation/validation worker count for the scaling suite")
	seed := flag.Int64("seed", 1, "world-generation seed for the scaling suite")
	worlddir := flag.String("worlddir", "", "keep/reuse generated worlds under this directory (default: per-tier temp dirs)")
	rssBudgetMB := flag.Int("rss-budget-mb", 0, "fail if a streaming validation phase's peak RSS exceeds this many MiB (0: no budget)")
	rtrScale := flag.String("rtr-scale", "", "comma-separated concurrent-client tiers for the rtr-scale suite (e.g. 1000,5000,10000)")
	rtrDeltas := flag.Int("rtr-deltas", 10, "cache updates to propagate per rtr-scale tier")
	rtrVRPs := flag.Int("rtr-vrps", 2000, "base VRP count served by the rtr-scale cache")
	rtrRSSBudgetMB := flag.Int("rtr-rss-budget-mb", 0, "fail if an rtr-scale tier's peak RSS exceeds this many MiB (0: no budget)")
	phase := flag.String("phase", "", "internal: run a single scaling phase in this process and print its JSON record")
	tier := flag.Int("tier", 0, "internal: ROA tier for -phase")
	rtrClients := flag.Int("rtr-clients", 0, "internal: concurrent-client count for -phase rtr_scale / rtr_fleet")
	rtrAddr := flag.String("rtr-addr", "", "internal: RTR server address for -phase rtr_fleet")
	testing.Init() // registers the test.* flags testing.Benchmark reads
	flag.Parse()

	if *phase == "rtr_scale" {
		if err := runRTRScalePhase(*rtrClients, *rtrDeltas, *rtrVRPs); err != nil {
			fatal(err)
		}
		return
	}
	if *phase == "rtr_fleet" {
		if err := runRTRFleetPhase(*rtrAddr, *rtrClients, *rtrDeltas, *rtrVRPs); err != nil {
			fatal(err)
		}
		return
	}
	if *phase != "" {
		if err := runPhase(*phase, *tier, *worlddir, *seed, *workers); err != nil {
			fatal(err)
		}
		return
	}

	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fatal(err)
	}
	rep := &report{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.GOMAXPROCS(0),
	}
	if *micro {
		runMicro(rep)
	}
	if *tiers != "" {
		if err := runScale(rep, *tiers, *worlddir, *seed, *workers, *rssBudgetMB); err != nil {
			writeReport(rep, *out) // keep partial results for debugging
			fatal(err)
		}
	}
	if *rtrScale != "" {
		if err := runRTRScale(rep, *rtrScale, *rtrDeltas, *rtrVRPs, *rtrRSSBudgetMB); err != nil {
			writeReport(rep, *out) // keep partial results for debugging
			fatal(err)
		}
	}
	writeReport(rep, *out)
}

func writeReport(rep *report, out string) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if out != "" {
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", out)
	} else {
		fmt.Println(string(data))
	}
}

// peakRSSBytes reads the process high-water RSS from /proc/self/status
// (VmHWM). Returns 0 on platforms without procfs.
func peakRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// digestVRPs hashes a canonically sorted VRP set; two runs agree on the
// digest iff they produced the identical VRP list.
func digestVRPs(vrps []rov.VRP) string {
	h := sha256.New()
	var buf bytes.Buffer
	for _, v := range vrps {
		buf.Reset()
		fmt.Fprintf(&buf, "%s|%d|%d\n", v.Prefix, v.MaxLength, v.ASN)
		h.Write(buf.Bytes())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// runPhase executes one scaling phase in-process and prints its scaleResult
// as a single JSON line on stdout (everything else goes to stderr).
func runPhase(phase string, tier int, dir string, seed int64, workers int) error {
	if tier <= 0 || dir == "" {
		return fmt.Errorf("phase %q needs -tier and -worlddir", phase)
	}
	ctx := context.Background()
	rec := scaleResult{
		Name:      fmt.Sprintf("scale_%d_%s", tier, phase),
		Tier:      tier,
		Phase:     phase,
		Workers:   workers,
		GoVersion: runtime.Version(),
		CPUs:      runtime.GOMAXPROCS(0),
	}

	sync := func(streaming bool) (*rp.Result, error) {
		w, err := modelgen.OpenScaled(dir)
		if err != nil {
			return nil, err
		}
		anchor, err := w.Anchor()
		if err != nil {
			return nil, err
		}
		v := rp.New(rp.Config{
			Fetcher:   w.Fetcher(),
			Clock:     w.Clock(),
			Workers:   workers,
			Streaming: streaming,
		}, anchor)
		rec.Modules = w.Meta.Modules
		res, err := v.Sync(ctx)
		if err != nil {
			return nil, err
		}
		if len(res.Diagnostics) > 0 {
			return nil, fmt.Errorf("tier %d: %d diagnostics, first: %v", tier, len(res.Diagnostics), res.Diagnostics[0])
		}
		return res, nil
	}

	start := time.Now()
	switch phase {
	case "generate":
		w, err := modelgen.GenerateScaled(modelgen.ScaleConfig{
			Seed: seed, ROAs: tier, Dir: dir, Workers: workers,
		})
		if err != nil {
			return err
		}
		rec.Modules = w.Meta.Modules
	case "cold_streaming", "cold_baseline":
		res, err := sync(phase == "cold_streaming")
		if err != nil {
			return err
		}
		rec.VRPs = len(res.VRPs)
		rec.VRPDigest = digestVRPs(res.VRPs)
	case "warm_resync":
		// Run the cold streaming pass untimed, then time the warm re-sync;
		// peak RSS still covers the whole process (cold + warm), which is
		// the honest number for a long-lived polling relying party.
		w, err := modelgen.OpenScaled(dir)
		if err != nil {
			return err
		}
		anchor, err := w.Anchor()
		if err != nil {
			return err
		}
		v := rp.New(rp.Config{
			Fetcher: w.Fetcher(), Clock: w.Clock(), Workers: workers, Streaming: true,
		}, anchor)
		rec.Modules = w.Meta.Modules
		if _, err := v.Sync(ctx); err != nil {
			return err
		}
		start = time.Now() // time only the warm pass
		res, err := v.Sync(ctx)
		if err != nil {
			return err
		}
		if res.ModulesRevalidated != 0 {
			return fmt.Errorf("warm re-sync revalidated %d modules, want 0", res.ModulesRevalidated)
		}
		if len(res.Diagnostics) > 0 {
			return fmt.Errorf("warm re-sync produced %d diagnostics", len(res.Diagnostics))
		}
		rec.VRPs = len(res.VRPs)
		rec.VRPDigest = digestVRPs(res.VRPs)
	default:
		return fmt.Errorf("unknown phase %q", phase)
	}
	rec.WallSeconds = time.Since(start).Seconds()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rec.TotalAllocBytes = ms.TotalAlloc
	rec.Mallocs = ms.Mallocs
	rec.PeakRSSBytes = peakRSSBytes()

	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// runScale drives the scaling suite: per tier, generate (or reuse) the world
// and run each validation phase in a fresh subprocess so peak RSS is
// attributable to that phase alone.
func runScale(rep *report, tiersCSV, worlddir string, seed int64, workers, rssBudgetMB int) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	var tiers []int
	for _, part := range strings.Split(tiersCSV, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return fmt.Errorf("bad tier %q", part)
		}
		tiers = append(tiers, n)
	}

	spawn := func(phase string, tier int, dir string) (scaleResult, error) {
		fmt.Fprintf(os.Stderr, "== tier %d: %s (workers=%d)\n", tier, phase, workers)
		cmd := exec.Command(exe,
			"-phase", phase,
			"-tier", strconv.Itoa(tier),
			"-worlddir", dir,
			"-seed", strconv.FormatInt(seed, 10),
			"-workers", strconv.Itoa(workers),
		)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return scaleResult{}, fmt.Errorf("tier %d phase %s: %w", tier, phase, err)
		}
		var rec scaleResult
		if err := json.Unmarshal(bytes.TrimSpace(out), &rec); err != nil {
			return scaleResult{}, fmt.Errorf("tier %d phase %s: bad record %q: %w", tier, phase, out, err)
		}
		fmt.Fprintf(os.Stderr, "   %-14s %8.2fs  peak RSS %7.1f MiB  vrps=%d\n",
			phase, rec.WallSeconds, float64(rec.PeakRSSBytes)/(1<<20), rec.VRPs)
		rep.Scale = append(rep.Scale, rec)
		return rec, nil
	}

	for _, tier := range tiers {
		dir := filepath.Join(os.TempDir(), fmt.Sprintf("rpki-bench-world-%d", tier))
		keep := false
		if worlddir != "" {
			dir = filepath.Join(worlddir, fmt.Sprintf("tier-%d", tier))
			keep = true
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}

		// Reuse an existing world only when its metadata matches exactly.
		generate := true
		if w, err := modelgen.OpenScaled(dir); err == nil && w.Meta.Seed == seed && w.Meta.ROAs == tier {
			fmt.Fprintf(os.Stderr, "== tier %d: reusing world in %s\n", tier, dir)
			generate = false
		}
		if generate {
			if err := os.RemoveAll(dir); err != nil {
				return err
			}
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
			if _, err := spawn("generate", tier, dir); err != nil {
				return err
			}
		}

		streaming, err := spawn("cold_streaming", tier, dir)
		if err != nil {
			return err
		}
		warm, err := spawn("warm_resync", tier, dir)
		if err != nil {
			return err
		}
		baseline, err := spawn("cold_baseline", tier, dir)
		if err != nil {
			return err
		}

		// Correctness gate: the streaming walk must reproduce the baseline
		// VRP set bit for bit, cold and warm.
		if streaming.VRPDigest != baseline.VRPDigest || streaming.VRPs != baseline.VRPs {
			return fmt.Errorf("tier %d: streaming VRP set (%d, %s) != baseline (%d, %s)",
				tier, streaming.VRPs, streaming.VRPDigest, baseline.VRPs, baseline.VRPDigest)
		}
		if warm.VRPDigest != baseline.VRPDigest {
			return fmt.Errorf("tier %d: warm re-sync VRP set diverged from baseline", tier)
		}

		// Memory gate: streaming phases must fit the budget.
		if rssBudgetMB > 0 {
			budget := int64(rssBudgetMB) << 20
			for _, rec := range []scaleResult{streaming, warm} {
				if rec.PeakRSSBytes > budget {
					return fmt.Errorf("%s: peak RSS %d bytes exceeds budget %d MiB",
						rec.Name, rec.PeakRSSBytes, rssBudgetMB)
				}
			}
		}

		if !keep {
			if err := os.RemoveAll(dir); err != nil {
				return err
			}
		}
	}
	return nil
}

func runMicro(rep *report) {
	run := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		res := benchResult{
			Name:         name,
			Iterations:   r.N,
			NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp:  r.AllocsPerOp(),
			BytesPerOp:   r.AllocedBytesPerOp(),
			GoVersion:    runtime.Version(),
			CPUs:         runtime.GOMAXPROCS(0),
			PeakRSSBytes: peakRSSBytes(),
		}
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-32s %10d iter  %14.0f ns/op  %8d allocs/op  %10d B/op\n",
			name, res.Iterations, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}

	ctx := context.Background()
	world, err := rpkirisk.NewSyntheticWorld(1)
	if err != nil {
		fatal(err)
	}

	run("validate_synthetic_cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := rpkirisk.Validate(ctx, world)
			if err != nil {
				b.Fatal(err)
			}
			if res.ROAsAccepted < 1200 {
				b.Fatalf("ROAs = %d", res.ROAsAccepted)
			}
		}
	})

	run("warm_resync_verify_cache", func(b *testing.B) {
		relying := rp.New(rp.Config{Fetcher: world.Stores, Clock: world.Clock, DisableModuleReuse: true}, world.Anchor())
		if _, err := relying.Sync(ctx); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := relying.Sync(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if res.VerifyCacheMisses != 0 {
				b.Fatalf("re-verified %d objects", res.VerifyCacheMisses)
			}
		}
	})

	run("warm_resync_module_reuse", func(b *testing.B) {
		relying := rpkirisk.NewRelyingParty(world, 0)
		if _, err := relying.Sync(ctx); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := relying.Sync(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if res.ModulesRevalidated != 0 {
				b.Fatalf("re-validated %d modules", res.ModulesRevalidated)
			}
		}
	})

	run("warm_resync_instrumented", func(b *testing.B) {
		// The module-reuse warm re-sync again, this time with the full
		// observability plane attached: metrics, per-sync trace, flight
		// recorder. The delta against warm_resync_module_reuse is the
		// instrumentation tax on the steady-state hot path.
		hub := obs.NewHub(world.Clock)
		relying := rp.New(rp.Config{Fetcher: world.Stores, Clock: world.Clock, Obs: hub}, world.Anchor())
		if _, err := relying.Sync(ctx); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := relying.Sync(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if res.ModulesRevalidated != 0 {
				b.Fatalf("re-validated %d modules", res.ModulesRevalidated)
			}
		}
	})

	if base, inst := lastResult(rep, "warm_resync_module_reuse"), lastResult(rep, "warm_resync_instrumented"); base != nil && inst != nil && base.NsPerOp > 0 {
		pct := (inst.NsPerOp - base.NsPerOp) / base.NsPerOp * 100
		rep.ObsOverheadPct = &pct
		fmt.Printf("%-32s %+.2f%%\n", "obs overhead (warm re-sync)", pct)
	}

	run("warm_resync_streaming", func(b *testing.B) {
		relying := rp.New(rp.Config{Fetcher: world.Stores, Clock: world.Clock, Streaming: true}, world.Anchor())
		if _, err := relying.Sync(ctx); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := relying.Sync(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if res.ModulesRevalidated != 0 {
				b.Fatalf("re-validated %d modules", res.ModulesRevalidated)
			}
		}
	})

	run("one_module_changed", func(b *testing.B) {
		relying := rpkirisk.NewRelyingParty(world, 0)
		if _, err := relying.Sync(ctx); err != nil {
			b.Fatal(err)
		}
		isp := world.MustAuthority("rir-0-isp-0")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				if _, err := isp.IssueROA("bench-toggle", 65000, roa.MustParsePrefix("8.0.240.0/20")); err != nil {
					b.Fatal(err)
				}
			} else {
				if err := isp.DeleteROA("bench-toggle"); err != nil {
					b.Fatal(err)
				}
			}
			res, err := relying.Sync(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if res.ModulesRevalidated != 1 {
				b.Fatalf("revalidated %d modules, want 1", res.ModulesRevalidated)
			}
		}
		b.StopTimer()
		_ = isp.DeleteROA("bench-toggle") // leave the world as found (best effort)
	})

	baseline, err := rpkirisk.Validate(ctx, world)
	if err != nil {
		fatal(err)
	}
	vrps := baseline.VRPs

	run("vrp_diff_unchanged", func(b *testing.B) {
		next := append([]rov.VRP(nil), vrps...)
		for i := 0; i < b.N; i++ {
			announced, withdrawn := rov.DiffVRPs(vrps, next)
			if announced != nil || withdrawn != nil {
				b.Fatal("unchanged set produced a delta")
			}
		}
	})

	// Metric hot paths: the observability contract is that an update on a
	// held handle is a few atomic operations and never allocates. These
	// fail the whole run on a single alloc/op — a heap-allocating counter
	// would tax every object of every sync.
	runZeroAlloc := func(name string, fn func(b *testing.B)) {
		run(name, fn)
		if last := lastResult(rep, name); last != nil && last.AllocsPerOp != 0 {
			fatal(fmt.Errorf("%s: %d allocs/op, want 0 — metric updates must not allocate", name, last.AllocsPerOp))
		}
	}
	mreg := obs.NewRegistry()
	mctr := mreg.Counter("bench_counter_total", "bench")
	mgauge := mreg.Gauge("bench_gauge", "bench")
	mhist := mreg.Histogram("bench_hist_seconds", "bench", obs.DurationBuckets())
	mchild := mreg.CounterVec("bench_vec_total", "bench", "module").With("rir-0-isp-0")
	runZeroAlloc("obs_counter_inc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mctr.Inc()
		}
	})
	runZeroAlloc("obs_gauge_set", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mgauge.Set(float64(i))
		}
	})
	runZeroAlloc("obs_histogram_observe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mhist.Observe(float64(i%1000) / 1000)
		}
	})
	runZeroAlloc("obs_countervec_held_child_inc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mchild.Inc()
		}
	})

	run("rtr_fanout_100_clients", func(b *testing.B) {
		const clients = 100
		extra := rov.VRP{Prefix: rpkirisk.MustParsePrefix("192.0.2.0/24"), MaxLength: 24, ASN: ipres.ASN(64500)}
		snapshot := func(withExtra bool) []rov.VRP {
			out := append([]rov.VRP(nil), vrps...)
			if withExtra {
				out = append(out, extra)
			}
			return out
		}
		bound, cache, stop, err := rpkirisk.ServeRTR("127.0.0.1:0", snapshot(false))
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = stop() }()
		cctx, cancel := context.WithCancel(ctx)
		defer cancel()
		synced := make(chan struct{}, clients*4)
		for i := 0; i < clients; i++ {
			c := rtr.NewClient(bound)
			c.OnSync(func([]rov.VRP) { synced <- struct{}{} })
			go func() { _ = c.Run(cctx) }()
		}
		await := func() {
			for i := 0; i < clients; i++ {
				select {
				case <-synced:
				case <-time.After(10 * time.Second):
					b.Fatal("client did not sync")
				}
			}
		}
		await()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cache.SetVRPs(snapshot(i%2 == 0))
			await()
		}
	})
}

// lastResult finds the most recent micro result with the given name.
func lastResult(rep *report, name string) *benchResult {
	for i := len(rep.Results) - 1; i >= 0; i-- {
		if rep.Results[i].Name == name {
			return &rep.Results[i]
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
