// Command rpki-bench runs the repository's key micro-benchmarks outside the
// go-test harness and writes the results as machine-readable JSON — a
// regression baseline that CI or a developer can diff across changes.
//
// Usage:
//
//	rpki-bench [-out BENCH_PR4.json] [-benchtime 1s]
//
// The suite covers the steady-state polling pipeline end to end: a cold
// validation of the production-sized synthetic world, the warm re-sync with
// only the signature verification cache (module reuse disabled), the warm
// re-sync with module-level memoization, the one-module-changed incremental
// sync, the VRP set diff, and the RTR fan-out of a one-VRP delta to 100
// concurrent router clients.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	rpkirisk "repro"
	"repro/internal/ipres"
	"repro/internal/roa"
	"repro/internal/rov"
	"repro/internal/rp"
	"repro/internal/rtr"
)

type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	Date      string        `json:"date"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	CPUs      int           `json:"cpus"`
	Results   []benchResult `json:"results"`
}

func main() {
	out := flag.String("out", "BENCH_PR4.json", "write the JSON report to this file (empty: stdout only)")
	benchtime := flag.Duration("benchtime", time.Second, "target run time per benchmark")
	testing.Init() // registers the test.* flags testing.Benchmark reads
	flag.Parse()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fatal(err)
	}

	rep := &report{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.GOMAXPROCS(0),
	}
	run := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		res := benchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-32s %10d iter  %14.0f ns/op  %8d allocs/op  %10d B/op\n",
			name, res.Iterations, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}

	ctx := context.Background()
	world, err := rpkirisk.NewSyntheticWorld(1)
	if err != nil {
		fatal(err)
	}

	run("validate_synthetic_cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := rpkirisk.Validate(ctx, world)
			if err != nil {
				b.Fatal(err)
			}
			if res.ROAsAccepted < 1200 {
				b.Fatalf("ROAs = %d", res.ROAsAccepted)
			}
		}
	})

	run("warm_resync_verify_cache", func(b *testing.B) {
		relying := rp.New(rp.Config{Fetcher: world.Stores, Clock: world.Clock, DisableModuleReuse: true}, world.Anchor())
		if _, err := relying.Sync(ctx); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := relying.Sync(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if res.VerifyCacheMisses != 0 {
				b.Fatalf("re-verified %d objects", res.VerifyCacheMisses)
			}
		}
	})

	run("warm_resync_module_reuse", func(b *testing.B) {
		relying := rpkirisk.NewRelyingParty(world, 0)
		if _, err := relying.Sync(ctx); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := relying.Sync(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if res.ModulesRevalidated != 0 {
				b.Fatalf("re-validated %d modules", res.ModulesRevalidated)
			}
		}
	})

	run("one_module_changed", func(b *testing.B) {
		relying := rpkirisk.NewRelyingParty(world, 0)
		if _, err := relying.Sync(ctx); err != nil {
			b.Fatal(err)
		}
		isp := world.MustAuthority("rir-0-isp-0")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				if _, err := isp.IssueROA("bench-toggle", 65000, roa.MustParsePrefix("8.0.240.0/20")); err != nil {
					b.Fatal(err)
				}
			} else {
				if err := isp.DeleteROA("bench-toggle"); err != nil {
					b.Fatal(err)
				}
			}
			res, err := relying.Sync(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if res.ModulesRevalidated != 1 {
				b.Fatalf("revalidated %d modules, want 1", res.ModulesRevalidated)
			}
		}
		b.StopTimer()
		_ = isp.DeleteROA("bench-toggle") // leave the world as found (best effort)
	})

	baseline, err := rpkirisk.Validate(ctx, world)
	if err != nil {
		fatal(err)
	}
	vrps := baseline.VRPs

	run("vrp_diff_unchanged", func(b *testing.B) {
		next := append([]rov.VRP(nil), vrps...)
		for i := 0; i < b.N; i++ {
			announced, withdrawn := rov.DiffVRPs(vrps, next)
			if announced != nil || withdrawn != nil {
				b.Fatal("unchanged set produced a delta")
			}
		}
	})

	run("rtr_fanout_100_clients", func(b *testing.B) {
		const clients = 100
		extra := rov.VRP{Prefix: rpkirisk.MustParsePrefix("192.0.2.0/24"), MaxLength: 24, ASN: ipres.ASN(64500)}
		snapshot := func(withExtra bool) []rov.VRP {
			out := append([]rov.VRP(nil), vrps...)
			if withExtra {
				out = append(out, extra)
			}
			return out
		}
		bound, cache, stop, err := rpkirisk.ServeRTR("127.0.0.1:0", snapshot(false))
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = stop() }()
		cctx, cancel := context.WithCancel(ctx)
		defer cancel()
		synced := make(chan struct{}, clients*4)
		for i := 0; i < clients; i++ {
			c := rtr.NewClient(bound)
			c.OnSync(func([]rov.VRP) { synced <- struct{}{} })
			go func() { _ = c.Run(cctx) }()
		}
		await := func() {
			for i := 0; i < clients; i++ {
				select {
				case <-synced:
				case <-time.After(10 * time.Second):
					b.Fatal("client did not sync")
				}
			}
		}
		await()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cache.SetVRPs(snapshot(i%2 == 0))
			await()
		}
	})

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	} else {
		fmt.Println(string(data))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
