// The rtr-scale suite: fleet-scale RTR fan-out measured end to end. Each
// client tier runs as a process tree (see runRTRScale): one server process
// owns the cache, the RTR listener, the replication feed plus a replica,
// and one deliberately stalled client; the router fleet itself runs in one
// or more fleet subprocesses (-phase rtr_fleet) of at most 8000 clients
// each, because a TCP connection costs a descriptor on *both* ends and the
// per-process RLIMIT_NOFILE hard limit cannot be raised without
// CAP_SYS_RESOURCE. Fleet processes report per-serial client arrival
// timestamps over their stdout pipe; the server process stamps each
// SetVRPs and derives the delta-propagation latency distribution.
//
// The phase is a correctness gate as much as a benchmark: it hard-fails
// unless the stalled client was evicted, every surviving client's final
// VRP set equals the cache's canonical set, and the replica frontend ends
// byte-identical to the primary (StateDigest).
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/ipres"
	"repro/internal/rov"
	"repro/internal/rtr"
)

// maxClientsPerFleet bounds one fleet subprocess's descriptor usage well
// under the 20000-ish RLIMIT_NOFILE hard limits containers commonly pin.
const maxClientsPerFleet = 8000

// rtrScaleBase builds the synthetic base VRP set served by the cache: n
// distinct /24s under 10.0.0.0/8, the same shape the rtr package's own
// scale tests use.
func rtrScaleBase(n int) []rov.VRP {
	out := make([]rov.VRP, 0, n)
	for i := 0; i < n; i++ {
		p := ipres.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", (i/256)%256, i%256))
		out = append(out, rov.VRP{Prefix: p, MaxLength: 24, ASN: ipres.ASN(64500 + i%1000)})
	}
	return out
}

// rtrScaleSet is the cache state after the given delta round: the base set
// plus one distinct marker VRP per completed round, so every SetVRPs is a
// real single-announcement delta and the final set encodes the full
// history. Both the server process and the fleet processes compute it
// independently — the equivalence check needs no side channel.
func rtrScaleSet(base []rov.VRP, round int) []rov.VRP {
	out := make([]rov.VRP, 0, len(base)+round)
	out = append(out, base...)
	for i := 1; i <= round; i++ {
		p := ipres.MustParsePrefix(fmt.Sprintf("198.%d.%d.0/24", 18+i/256, i%256))
		out = append(out, rov.VRP{Prefix: p, MaxLength: 24, ASN: ipres.ASN(64900 + i)})
	}
	return out
}

// raiseFDLimit lifts the soft RLIMIT_NOFILE to at least need descriptors,
// raising the hard limit too when the process is allowed to
// (CAP_SYS_RESOURCE); otherwise it settles for the hard limit and errors
// only if that is still short.
func raiseFDLimit(need uint64) error {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return fmt.Errorf("getrlimit: %w", err)
	}
	if lim.Cur >= need {
		return nil
	}
	want := lim
	want.Cur = need
	if want.Max < need {
		want.Max = need
	}
	if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &want); err != nil {
		want.Cur, want.Max = lim.Max, lim.Max
		if err2 := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &want); err2 != nil {
			return fmt.Errorf("setrlimit: %w", err)
		}
	}
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return fmt.Errorf("getrlimit: %w", err)
	}
	if lim.Cur < need {
		return fmt.Errorf("file-descriptor limit %d < %d needed (hard limit not raisable without CAP_SYS_RESOURCE)", lim.Cur, need)
	}
	return nil
}

func vrpSlicesEqual(a, b []rov.VRP) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runRTRFleetPhase is the fleet subprocess: it connects clients to the
// server at addr, and for each serial 1..deltas+1 prints one line
//
//	S <serial> <unix-nano arrival per client>...
//
// once every client has committed that serial (arrivals are wall-clock so
// the server process, on the same machine, can subtract its SetVRPs
// stamp). After the final serial it prints "EQ <n>" — how many clients
// hold exactly the canonical final VRP set — and "RSS <bytes>", then
// exits. Clients redial on connect-storm backlog drops; a synced client
// resumes its session, so retries never double-count arrivals.
func runRTRFleetPhase(addr string, clients, deltas, vrps int) error {
	if addr == "" {
		return fmt.Errorf("rtr_fleet phase needs -rtr-addr")
	}
	if clients <= 0 || clients > maxClientsPerFleet {
		return fmt.Errorf("rtr_fleet phase: %d clients out of range [1,%d]", clients, maxClientsPerFleet)
	}
	if err := raiseFDLimit(uint64(clients) + 1024); err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Per-serial arrival collection. OnSerial fires once per End of Data
	// with the landed serial; a reconnecting client can coalesce several
	// serials into one response, so each callback credits every serial in
	// (last, landed] — the client had that serial's data no later than now.
	maxSerial := uint32(deltas + 1)
	type track struct {
		mu       sync.Mutex
		arrivals []int64
		done     chan struct{}
	}
	tracks := make([]*track, maxSerial+1)
	for i := range tracks {
		tracks[i] = &track{done: make(chan struct{})}
	}

	fleet := make([]*rtr.Client, clients)
	for i := range fleet {
		c := rtr.NewClient(addr)
		fleet[i] = c
		last := uint32(0) // callbacks for one client are sequential
		c.OnSerial(func(serial uint32) {
			if serial > maxSerial {
				serial = maxSerial
			}
			now := time.Now().UnixNano()
			for s := last + 1; s <= serial; s++ {
				t := tracks[s]
				t.mu.Lock()
				t.arrivals = append(t.arrivals, now)
				if len(t.arrivals) == clients {
					close(t.done)
				}
				t.mu.Unlock()
			}
			if serial > last {
				last = serial
			}
		})
		go func() {
			for ctx.Err() == nil {
				_ = c.Run(ctx)
				select {
				case <-ctx.Done():
					return
				case <-time.After(100 * time.Millisecond):
				}
			}
		}()
	}

	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	budget := 120*time.Second + time.Duration(clients)*5*time.Millisecond
	for s := uint32(1); s <= maxSerial; s++ {
		t := tracks[s]
		select {
		case <-t.done:
		case <-time.After(budget):
			t.mu.Lock()
			n := len(t.arrivals)
			t.mu.Unlock()
			return fmt.Errorf("serial %d: only %d/%d clients converged within %v", s, n, clients, budget)
		}
		t.mu.Lock()
		fmt.Fprintf(w, "S %d", s)
		for _, a := range t.arrivals {
			fmt.Fprintf(w, " %d", a)
		}
		t.mu.Unlock()
		fmt.Fprintln(w)
		if err := w.Flush(); err != nil {
			return err
		}
	}

	want := rtrScaleSet(rtrScaleBase(vrps), deltas)
	rov.SortVRPs(want)
	eq := 0
	for _, c := range fleet {
		if vrpSlicesEqual(c.VRPs(), want) {
			eq++
		}
	}
	fmt.Fprintf(w, "EQ %d\nRSS %d\n", eq, peakRSSBytes())
	return w.Flush()
}

// fleetChild is the server process's handle on one fleet subprocess.
type fleetChild struct {
	clients int
	cmd     *exec.Cmd
	lines   chan string
}

func startFleet(exe, addr string, clients, deltas, vrps int) (*fleetChild, error) {
	cmd := exec.Command(exe,
		"-phase", "rtr_fleet",
		"-rtr-addr", addr,
		"-rtr-clients", strconv.Itoa(clients),
		"-rtr-deltas", strconv.Itoa(deltas),
		"-rtr-vrps", strconv.Itoa(vrps),
	)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	fc := &fleetChild{clients: clients, cmd: cmd, lines: make(chan string, 4)}
	go func() {
		defer close(fc.lines)
		sc := bufio.NewScanner(out)
		// One arrival line carries a timestamp per client.
		sc.Buffer(make([]byte, 1<<20), 64<<20)
		for sc.Scan() {
			fc.lines <- sc.Text()
		}
	}()
	return fc, nil
}

// waitSerial blocks until the child reports full convergence on serial,
// returning the per-client arrival timestamps (unix nanos).
func (fc *fleetChild) waitSerial(serial uint32, budget time.Duration) ([]int64, error) {
	select {
	case line, ok := <-fc.lines:
		if !ok {
			return nil, fmt.Errorf("fleet child exited before serial %d", serial)
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || fields[0] != "S" || fields[1] != strconv.FormatUint(uint64(serial), 10) {
			return nil, fmt.Errorf("fleet child: want serial %d report, got %.60q", serial, line)
		}
		arrivals := make([]int64, 0, len(fields)-2)
		for _, f := range fields[2:] {
			n, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fleet child: bad arrival %q: %w", f, err)
			}
			arrivals = append(arrivals, n)
		}
		if len(arrivals) != fc.clients {
			return nil, fmt.Errorf("fleet child: %d arrivals for serial %d, want %d", len(arrivals), serial, fc.clients)
		}
		return arrivals, nil
	case <-time.After(budget):
		return nil, fmt.Errorf("fleet child: serial %d not converged within %v", serial, budget)
	}
}

// finish reads the child's equivalence count and peak RSS, then reaps it.
func (fc *fleetChild) finish(budget time.Duration) (equivalent int, rssBytes int64, err error) {
	read := func(key string) (int64, error) {
		select {
		case line, ok := <-fc.lines:
			if !ok {
				return 0, fmt.Errorf("fleet child exited before %s report", key)
			}
			fields := strings.Fields(line)
			if len(fields) != 2 || fields[0] != key {
				return 0, fmt.Errorf("fleet child: want %s report, got %.60q", key, line)
			}
			return strconv.ParseInt(fields[1], 10, 64)
		case <-time.After(budget):
			return 0, fmt.Errorf("fleet child: no %s report within %v", key, budget)
		}
	}
	eq, err := read("EQ")
	if err != nil {
		return 0, 0, err
	}
	rss, err := read("RSS")
	if err != nil {
		return 0, 0, err
	}
	if err := fc.cmd.Wait(); err != nil {
		return 0, 0, fmt.Errorf("fleet child: %w", err)
	}
	return int(eq), rss, nil
}

func (fc *fleetChild) kill() {
	_ = fc.cmd.Process.Kill()
	_ = fc.cmd.Wait()
}

// runRTRScalePhase runs one rtr-scale tier: this process is the server
// (cache, RTR listener, replication feed + replica, stalled client), the
// fleet runs in subprocesses. Prints the rtrScaleResult as a single JSON
// line on stdout. Every gate the parent checks is also enforced here as a
// hard error.
func runRTRScalePhase(clients, deltas, vrps int) error {
	switch {
	case clients <= 0:
		return fmt.Errorf("rtr_scale phase needs -rtr-clients > 0")
	case deltas < 1 || deltas > 10000:
		return fmt.Errorf("-rtr-deltas %d out of range [1,10000]", deltas)
	case vrps < 1 || vrps > 500000:
		return fmt.Errorf("-rtr-vrps %d out of range [1,500000]", vrps)
	}
	// Server-side descriptor per fleet client, plus listener/pipes/slack.
	if err := raiseFDLimit(uint64(clients) + 4096); err != nil {
		return err
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}

	rec := rtrScaleResult{
		Name:      fmt.Sprintf("rtr_scale_%d", clients),
		Clients:   clients,
		Deltas:    deltas,
		VRPs:      vrps,
		GoVersion: runtime.Version(),
		CPUs:      runtime.GOMAXPROCS(0),
	}
	wallStart := time.Now()

	base := rtrScaleBase(vrps)
	cache := rtr.NewCache(uint16(os.Getpid()))
	cache.SetVRPs(rtrScaleSet(base, 0)) // serial 1: the snapshot the fleet loads
	srv := rtr.NewServer(cache)
	srv.MaxClients = clients + 8 // fleet + stalled client + slack: the knob is live but never the bottleneck
	srv.WriteTimeout = 2 * time.Second
	srv.WriteBuffer = 8 << 10 // a stalled router stalls the write, not server memory
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()

	// Replica frontend following the replication stream for the whole phase.
	rs := rtr.NewReplicationServer(cache)
	raddr, err := rs.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer rs.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	replica := rtr.NewReplica(raddr, rtr.NewCache(0))
	go func() { _ = replica.Run(ctx) }()

	// The fleet, in subprocesses of at most maxClientsPerFleet clients.
	var children []*fleetChild
	defer func() {
		for _, fc := range children {
			fc.kill()
		}
	}()
	for remaining := clients; remaining > 0; {
		n := remaining
		if n > maxClientsPerFleet {
			n = maxClientsPerFleet
		}
		remaining -= n
		fc, err := startFleet(exe, addr, n, deltas, vrps)
		if err != nil {
			return err
		}
		children = append(children, fc)
	}

	syncStart := time.Now()
	syncBudget := 180*time.Second + time.Duration(clients)*5*time.Millisecond
	for _, fc := range children {
		if _, err := fc.waitSerial(1, syncBudget); err != nil {
			return fmt.Errorf("initial sync: %w", err)
		}
	}
	rec.SyncSeconds = time.Since(syncStart).Seconds()

	// The stalled client: asks for the snapshot, then never reads. With the
	// server's bounded write buffer and a tiny receive window the snapshot
	// write must stall, trip the write deadline, and evict.
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("stalled client dial: %w", err)
	}
	defer stalled.Close()
	if tc, ok := stalled.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(2 << 10)
	}
	if err := stalled.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return fmt.Errorf("stalled client deadline: %w", err)
	}
	if err := rtr.WritePDU(stalled, &rtr.PDU{Type: rtr.TypeResetQuery}); err != nil {
		return fmt.Errorf("stalled client query: %w", err)
	}

	// The measured deltas, each gated on full-fleet convergence so serials
	// cannot coalesce and every sample is attributable to one update.
	lats := make([]time.Duration, 0, clients*deltas)
	deltaBudget := 60*time.Second + time.Duration(clients)*2*time.Millisecond
	for d := 1; d <= deltas; d++ {
		serial := uint32(d + 1)
		startNano := time.Now().UnixNano()
		cache.SetVRPs(rtrScaleSet(base, d))
		for _, fc := range children {
			arrivals, err := fc.waitSerial(serial, deltaBudget)
			if err != nil {
				return fmt.Errorf("delta %d: %w", d, err)
			}
			for _, a := range arrivals {
				lat := time.Duration(a - startNano)
				if lat < 0 {
					lat = 0
				}
				lats = append(lats, lat)
			}
		}
	}

	// Gate 1: the stalled client must have been evicted, not buffered for.
	evictDeadline := time.Now().Add(30 * time.Second)
	for srv.Evictions() == 0 && time.Now().Before(evictDeadline) {
		time.Sleep(20 * time.Millisecond)
	}
	rec.Evictions = srv.Evictions()
	if rec.Evictions == 0 {
		return fmt.Errorf("stalled client was never evicted")
	}

	// Gate 2: every surviving client ends with exactly the cache's
	// canonical VRP set — not approximately, not eventually.
	var childRSS int64
	for _, fc := range children {
		eq, rss, err := fc.finish(deltaBudget)
		if err != nil {
			return err
		}
		rec.EquivalentClients += eq
		childRSS += rss
	}
	want := rtrScaleSet(base, deltas)
	rov.SortVRPs(want)
	rec.VRPDigest = digestVRPs(want)
	if rec.EquivalentClients != clients {
		return fmt.Errorf("only %d/%d clients hold the canonical VRP set", rec.EquivalentClients, clients)
	}

	// Gate 3: the replica frontend converges to a byte-identical state
	// digest (session, serial, snapshot frame) with the primary.
	replicaDeadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(replicaDeadline) {
		if replica.Cache().Serial() == cache.Serial() && replica.Cache().StateDigest() == cache.StateDigest() {
			rec.ReplicaDigestOK = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !rec.ReplicaDigestOK {
		return fmt.Errorf("replica state digest diverged from primary (replica serial %d, primary %d, lag %d)",
			replica.Cache().Serial(), cache.Serial(), replica.Lag())
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rec.P50DeltaMS = percentileMS(lats, 50)
	rec.P99DeltaMS = percentileMS(lats, 99)
	if n := len(lats); n > 0 {
		rec.MaxDeltaMS = float64(lats[n-1]) / float64(time.Millisecond)
	}
	rec.WallSeconds = time.Since(wallStart).Seconds()
	rec.PeakRSSBytes = peakRSSBytes() + childRSS

	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

// percentileMS reads the p-th percentile from an ascending-sorted latency
// slice, in milliseconds.
func percentileMS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// runRTRScale drives the rtr-scale suite: one fresh server subprocess per
// client tier (which in turn spawns its fleet subprocesses) so peak RSS is
// attributable to that tier alone, with the correctness gates re-checked
// here from the record (defense in depth — the phase already hard-fails on
// any of them).
func runRTRScale(rep *report, tiersCSV string, deltas, vrps, rssBudgetMB int) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	var tiers []int
	for _, part := range strings.Split(tiersCSV, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return fmt.Errorf("bad rtr-scale tier %q", part)
		}
		tiers = append(tiers, n)
	}

	for _, clients := range tiers {
		fmt.Fprintf(os.Stderr, "== rtr-scale: %d clients (deltas=%d, vrps=%d)\n", clients, deltas, vrps)
		cmd := exec.Command(exe,
			"-phase", "rtr_scale",
			"-rtr-clients", strconv.Itoa(clients),
			"-rtr-deltas", strconv.Itoa(deltas),
			"-rtr-vrps", strconv.Itoa(vrps),
		)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("rtr-scale %d clients: %w", clients, err)
		}
		var rec rtrScaleResult
		if err := json.Unmarshal([]byte(strings.TrimSpace(string(out))), &rec); err != nil {
			return fmt.Errorf("rtr-scale %d clients: bad record %q: %w", clients, out, err)
		}
		fmt.Fprintf(os.Stderr,
			"   sync %6.2fs  delta p50 %7.2fms  p99 %7.2fms  max %7.2fms  peak RSS %7.1f MiB  evictions=%d  equivalent=%d/%d  replica_ok=%v\n",
			rec.SyncSeconds, rec.P50DeltaMS, rec.P99DeltaMS, rec.MaxDeltaMS,
			float64(rec.PeakRSSBytes)/(1<<20), rec.Evictions, rec.EquivalentClients, rec.Clients, rec.ReplicaDigestOK)

		if rec.Evictions == 0 {
			return fmt.Errorf("rtr-scale %d clients: stalled client was not evicted", clients)
		}
		if rec.EquivalentClients != clients {
			return fmt.Errorf("rtr-scale %d clients: only %d clients equivalent", clients, rec.EquivalentClients)
		}
		if !rec.ReplicaDigestOK {
			return fmt.Errorf("rtr-scale %d clients: replica digest mismatch", clients)
		}
		if rssBudgetMB > 0 && rec.PeakRSSBytes > int64(rssBudgetMB)<<20 {
			return fmt.Errorf("%s: peak RSS %d bytes exceeds budget %d MiB", rec.Name, rec.PeakRSSBytes, rssBudgetMB)
		}
		rep.RTRScale = append(rep.RTRScale, rec)
	}
	return nil
}
