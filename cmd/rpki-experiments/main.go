// Command rpki-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	rpki-experiments [-run all|figure1|figure2|figure3|table4|figure5|table6|se12|se34|se6|se7|ext-suspenders|ext-lkg|ext-collateral|ext-monitor] [-list]
//
// Each experiment prints its artifact (the table or figure content), the
// measured metrics, and the shape checks asserting the paper's qualitative
// claims. The exit status is non-zero if any check fails.
package main

import (
	"flag"
	"fmt"
	"os"

	rpkirisk "repro"
	"repro/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment ID to run, or 'all'")
	list := flag.Bool("list", false, "list available experiments and exit")
	format := flag.String("format", "text", "output format: text or markdown")
	flag.Parse()

	if *list {
		for _, e := range rpkirisk.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	results, err := rpkirisk.RunExperiment(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
	failed := 0
	for _, r := range results {
		if !r.Passed() {
			failed++
		}
	}
	switch *format {
	case "markdown":
		fmt.Print(experiments.Markdown(results))
	case "text":
		for _, r := range results {
			fmt.Println(r)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(2)
	}
	fmt.Printf("%d/%d experiments passed all shape checks\n", len(results)-failed, len(results))
	if failed > 0 {
		os.Exit(1)
	}
}
