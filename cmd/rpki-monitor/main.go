// Command rpki-monitor polls publication points over the rsynclite
// protocol and reports classified change events: routine churn, transparent
// revocations, suspected stealthy deletions, RC shrinks, suspicious
// reissues and replacement RCs — the monitoring countermeasure the paper
// proposes.
//
// Usage:
//
//	rpki-monitor -server 127.0.0.1:8873 -modules arin,sprint,etb,continental [-interval 2s] [-min-severity info] [-once]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/monitor"
	"repro/internal/repo"
)

func main() {
	server := flag.String("server", "127.0.0.1:8873", "rsynclite server address")
	modules := flag.String("modules", "arin,sprint,etb,continental", "comma-separated module names to watch")
	interval := flag.Duration("interval", 2*time.Second, "polling interval")
	minSev := flag.String("min-severity", "info", "minimum severity to report: info, notice, warning, alert")
	once := flag.Bool("once", false, "take one baseline snapshot pass and exit")
	workers := flag.Int("workers", 0, "parse workers per snapshot (0: GOMAXPROCS)")
	flag.Parse()

	var min monitor.Severity
	switch *minSev {
	case "info":
		min = monitor.Info
	case "notice":
		min = monitor.Notice
	case "warning":
		min = monitor.Warning
	case "alert":
		min = monitor.Alert
	default:
		fmt.Fprintf(os.Stderr, "unknown severity %q\n", *minSev)
		os.Exit(2)
	}

	names := strings.Split(*modules, ",")
	client := &repo.Client{Timeout: 10 * time.Second}
	watcher := monitor.NewWatcher()
	watcher.Workers = *workers

	poll := func() {
		for _, module := range names {
			module = strings.TrimSpace(module)
			uri := repo.URI{Host: *server, Module: module}
			files, err := client.FetchAll(context.Background(), uri)
			if err != nil {
				fmt.Printf("%s fetch %s: %v\n", time.Now().Format(time.TimeOnly), module, err)
				continue
			}
			for _, e := range monitor.Filter(watcher.Observe(module, files), min) {
				fmt.Printf("%s %v\n", time.Now().Format(time.TimeOnly), e)
			}
		}
	}

	fmt.Printf("watching %d modules on %s every %v (min severity %s)\n", len(names), *server, *interval, min)
	poll() // baseline
	if *once {
		return
	}
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-tick.C:
			poll()
		case <-sig:
			return
		}
	}
}
