// Command rpki-pubd serves the publication points of an RPKI world over
// the rsynclite protocol and writes a trust anchor locator so relying
// parties (rpki-rp) can bootstrap.
//
// Usage:
//
//	rpki-pubd [-listen 127.0.0.1:8873] [-tal arin.tal] [-world figure2|figure2+cover|synthetic]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	rpkirisk "repro"
	"repro/internal/modelgen"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8873", "address to serve on")
	talPath := flag.String("tal", "arin.tal", "path to write the trust anchor locator")
	world := flag.String("world", "figure2", "world to serve: figure2, figure2+cover, synthetic")
	seed := flag.Int64("seed", 2013, "seed for -world synthetic")
	flag.Parse()

	var (
		w   *modelgen.World
		err error
	)
	switch *world {
	case "figure2":
		w, err = rpkirisk.NewLiveModelWorld(false)
	case "figure2+cover":
		w, err = rpkirisk.NewLiveModelWorld(true)
	case "synthetic":
		w, err = rpkirisk.NewLiveSyntheticWorld(*seed)
	default:
		err = fmt.Errorf("unknown world %q", *world)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	addr, stop, err := rpkirisk.Serve(w, *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	defer stop()
	if err := rpkirisk.WriteTAL(w, *talPath); err != nil {
		fmt.Fprintln(os.Stderr, "error writing TAL:", err)
		os.Exit(1)
	}

	modules := 0
	for range w.Stores {
		modules++
	}
	fmt.Printf("serving %d publication points on %s (TAL: %s)\n", modules, addr, *talPath)
	fmt.Println("press Ctrl-C to stop")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
}
