// Command rpki-lint runs the repository's domain-invariant static-analysis
// suite (internal/analysis): compiler-grade enforcement of the
// misbehaving-authority safety rules that generic linters cannot see —
// unchecked Verify errors, deadline-free conn I/O, guarded-field accesses
// without the lock, wall-clock reads in epoch math, and non-exhaustive
// diagnostic tables.
//
// Usage:
//
//	rpki-lint [-json] [-rules name,name] [./...]
//
// With "./..." (the default) every package in the enclosing module is
// analyzed. -rules selects a comma-separated subset of passes by name
// (default: all). Findings print as "file:line: [rule] message"; the exit
// status is nonzero if there is any finding, including malformed
// //lint:ignore directives (unknown rule, missing reason). Legitimate
// suppressions are counted and printed so every declared exception stays
// visible. The JSON report includes per-rule wall-time and the full
// suppression inventory for CI diffing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	ruleNames := flag.String("rules", "", "comma-separated rule subset to run (default: all)")
	flag.Parse()

	rules, err := analysis.RulesByName(*ruleNames)
	if err != nil {
		fatal(err)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	modRoot, modPath, err := analysis.FindModule(cwd)
	if err != nil {
		fatal(err)
	}
	loader := analysis.NewLoader(modRoot, modPath)

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*analysis.Package
	for _, pattern := range patterns {
		switch {
		case pattern == "./..." || pattern == "all":
			all, err := loader.ModulePackages()
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, all...)
		default:
			dir, err := filepath.Abs(pattern)
			if err != nil {
				fatal(err)
			}
			rel, err := filepath.Rel(modRoot, dir)
			if err != nil || strings.HasPrefix(rel, "..") {
				fatal(fmt.Errorf("rpki-lint: %s is outside module %s", pattern, modPath))
			}
			path := modPath
			if rel != "." {
				path = modPath + "/" + filepath.ToSlash(rel)
			}
			pkg, err := loader.LoadDir(dir, path)
			if err != nil {
				fatal(err)
			}
			pkgs = append(pkgs, pkg)
		}
	}

	loadErrs := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "rpki-lint: type error in %s: %v\n", pkg.Path, terr)
			loadErrs++
		}
	}

	report := analysis.Run(pkgs, rules, modRoot)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range report.Findings {
			fmt.Println(f)
		}
		for _, s := range report.Suppressions {
			status := "unused"
			if s.Used {
				status = "suppressed"
			}
			fmt.Printf("%s:%d: [ignore %s] %s (%s)\n",
				s.File, s.Line, strings.Join(s.Rules, ","), s.Reason, status)
		}
		fmt.Printf("rpki-lint: %d packages, %d findings, %d suppressed by %d //lint:ignore directives\n",
			len(pkgs), len(report.Findings), report.Suppressed, len(report.Suppressions))
	}

	switch {
	case loadErrs > 0:
		os.Exit(2)
	case len(report.Findings) > 0:
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rpki-lint:", err)
	os.Exit(2)
}
