// Command rpki-tree prints an RPKI hierarchy with relying-party validation
// annotations: every authority, its certified resources, its ROAs, and
// each ROA's effect on route validity.
//
// Usage:
//
//	rpki-tree [-world figure2|figure2+cover|synthetic] [-seed N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	rpkirisk "repro"
	"repro/internal/modelgen"
	"repro/internal/rov"
)

func main() {
	world := flag.String("world", "figure2", "world to build: figure2, figure2+cover, synthetic")
	seed := flag.Int64("seed", 2013, "seed for -world synthetic")
	flag.Parse()

	var (
		w   *modelgen.World
		err error
	)
	switch *world {
	case "figure2":
		w, err = rpkirisk.NewLiveModelWorld(false)
	case "figure2+cover":
		w, err = rpkirisk.NewLiveModelWorld(true)
	case "synthetic":
		w, err = rpkirisk.NewLiveSyntheticWorld(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown world %q\n", *world)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	res, err := rpkirisk.Validate(context.Background(), w)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	ix := res.Index()
	printTree(w, ix, w.TA.Name, "")
	fmt.Printf("\n%d authorities, %d ROAs validated", res.CertsAccepted, res.ROAsAccepted)
	if res.Incomplete() {
		fmt.Printf(", %d diagnostics:\n", len(res.Diagnostics))
		for _, d := range res.Diagnostics {
			fmt.Printf("  %v\n", d)
		}
	} else {
		fmt.Println(", cache complete")
	}
}

func printTree(w *modelgen.World, ix *rov.Index, name, indent string) {
	a := w.MustAuthority(name)
	fmt.Printf("%s%s  [%v]\n", indent, a.Name, a.Resources())
	for _, roaName := range a.ROAs() {
		ro, _ := a.ROA(roaName)
		// Annotate with the authorized route's current state.
		state := "?"
		if len(ro.Prefixes) > 0 {
			s := ix.State(rov.Route{Prefix: ro.Prefixes[0].Prefix, Origin: ro.ASID})
			state = s.String()
		}
		fmt.Printf("%s  ROA %v → %s\n", indent, ro, state)
	}
	children := a.Children()
	sort.Strings(children)
	for _, child := range children {
		printTree(w, ix, child, indent+"    ")
	}
}
