package main

import (
	"strings"
	"testing"
	"time"
)

// TestValidateRTRFlags: the RTR fleet flags are validated up front, before
// the TAL is touched — every rejection names the offending flag so the
// operator can fix the invocation.
func TestValidateRTRFlags(t *testing.T) {
	cases := []struct {
		name              string
		rtrAddr           string
		maxClients        int
		sendQueue         int
		writeTimeout      time.Duration
		replicaOf         string
		replicationListen string
		wantErr           string // empty: must pass
	}{
		{name: "defaults", sendQueue: 32, writeTimeout: 30 * time.Second},
		{name: "full primary", rtrAddr: ":8282", maxClients: 10000, sendQueue: 64,
			writeTimeout: 10 * time.Second, replicationListen: ":8283"},
		{name: "replica", rtrAddr: ":8282", sendQueue: 32, writeTimeout: 30 * time.Second,
			replicaOf: "primary:8283"},
		{name: "negative max clients", maxClients: -1, sendQueue: 32,
			writeTimeout: 30 * time.Second, wantErr: "-rtr-max-clients"},
		{name: "zero send queue", sendQueue: 0, writeTimeout: 30 * time.Second,
			wantErr: "-rtr-send-queue"},
		{name: "zero write timeout", sendQueue: 32, wantErr: "-rtr-write-timeout"},
		{name: "replica without rtr listener", sendQueue: 32, writeTimeout: 30 * time.Second,
			replicaOf: "primary:8283", wantErr: "-rtr-replica-of requires -rtr"},
		{name: "replica and primary at once", rtrAddr: ":8282", sendQueue: 32,
			writeTimeout: 30 * time.Second, replicaOf: "primary:8283",
			replicationListen: ":8284", wantErr: "mutually exclusive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateRTRFlags(tc.rtrAddr, tc.maxClients, tc.sendQueue, tc.writeTimeout,
				tc.replicaOf, tc.replicationListen)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name the flag (%q)", err, tc.wantErr)
			}
		})
	}
}

// TestValidateFlags covers the PR 8 resilience-flag validation the RTR
// checks sit alongside.
func TestValidateFlags(t *testing.T) {
	if err := validateFlags(3, 10*time.Second, 5, 30*time.Second); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	if err := validateFlags(-1, 10*time.Second, 5, 30*time.Second); err == nil {
		t.Error("negative max-retries accepted")
	}
	if err := validateFlags(3, 0, 5, 30*time.Second); err == nil {
		t.Error("zero request-timeout accepted")
	}
	if err := validateFlags(3, 10*time.Second, 0, 30*time.Second); err == nil {
		t.Error("zero breaker-threshold accepted")
	}
	if err := validateFlags(3, 10*time.Second, 5, 0); err == nil {
		t.Error("zero breaker-cooldown accepted")
	}
}
