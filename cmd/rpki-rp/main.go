// Command rpki-rp is the relying-party daemon: it bootstraps from a trust
// anchor locator, fetches and validates the RPKI over TCP, prints the
// validated cache (VRPs), and optionally serves it to routers over the
// RPKI-to-Router protocol.
//
// Usage:
//
//	rpki-rp -tal arin.tal -server 127.0.0.1:8873 [-poll 30s] [-rtr 127.0.0.1:8282] [-policy best-effort|drop-pubpoint] [-workers N]
//	        [-max-retries N] [-request-timeout D] [-stale-ttl D] [-breaker-threshold N] [-breaker-cooldown D]
//	        [-no-module-reuse] [-ops-listen 127.0.0.1:9090] [-cpuprofile cpu.out] [-memprofile mem.out]
//	        [-rtr-max-clients N] [-rtr-send-queue N] [-rtr-write-timeout D] [-rtr-replication-listen addr]
//	rpki-rp -rtr-replica-of primary:8283 -rtr 127.0.0.1:8282   (stateless RTR frontend, no TAL, no validation)
//
// With -poll the daemon re-syncs on the given interval. Steady-state polls
// are incremental: object snapshots are cached so unchanged objects are
// proven by hash (STAT) instead of re-downloaded, and publication points
// whose bytes are provably unchanged within their validity epoch reuse their
// previous validated outputs wholesale (-no-module-reuse disables that
// second layer). When -rtr is set, each poll feeds the validated VRP set to
// the RTR cache, which computes a minimal delta and notifies routers only
// when something actually changed.
//
// The resilience flags tune how the daemon degrades under misbehaving
// repositories: transport failures retry with backoff (-max-retries), each
// request carries its own deadline (-request-timeout) so a slow-loris point
// cannot stall a sync, repeated failures trip a per-point circuit breaker
// (-breaker-threshold/-breaker-cooldown), and unreachable points are served
// from their last cleanly validated snapshot for up to -stale-ttl.
//
// The RTR fleet flags bound what routers can cost the daemon:
// -rtr-max-clients caps concurrent RTR connections, -rtr-send-queue bounds
// each connection's response queue, and -rtr-write-timeout is the stall
// deadline after which a slow consumer is evicted with a graceful Error
// PDU. With -rtr-replication-listen the daemon additionally streams its
// validated cache (snapshot + serial-numbered deltas) to replica
// frontends; with -rtr-replica-of the daemon is such a frontend — it skips
// the TAL and validation entirely and serves RTR from a cache mirrored off
// the primary, byte-identical down to the session ID so routers can resume
// sessions against any frontend.
//
// With -ops-listen the daemon serves an operator HTTP surface: /metrics
// (Prometheus text format), /healthz, /readyz (200 once a clean or
// LKG-valid sync exists), /debug/flightrecorder (recent degraded events),
// /debug/lasttrace (the last sync's span tree), and /debug/pprof. Profiles:
// use /debug/pprof against a live daemon (sample exactly the window you
// care about, no restart); use -cpuprofile/-memprofile for one-shot runs
// that exit before you could attach — both go through the same
// internal/obs profiling helper.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	rpkirisk "repro"
	"repro/internal/obs"
	"repro/internal/repo"
	"repro/internal/rp"
	"repro/internal/rtr"
)

func main() {
	talPath := flag.String("tal", "arin.tal", "trust anchor locator path")
	server := flag.String("server", "127.0.0.1:8873", "rsynclite server address")
	rtrAddr := flag.String("rtr", "", "serve RTR on this address (empty: disabled)")
	policy := flag.String("policy", "best-effort", "missing-information policy: best-effort or drop-pubpoint")
	interval := flag.Duration("interval", 0, "resync interval (deprecated alias for -poll)")
	poll := flag.Duration("poll", 0, "steady-state poll interval (0: sync once and exit unless -rtr)")
	workers := flag.Int("workers", 0, "validation workers (0: GOMAXPROCS, 1: sequential)")
	maxRetries := flag.Int("max-retries", 3, "transport-failure retries per request (0: fail on first fault)")
	requestTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request deadline (one LIST/GET/STAT exchange)")
	staleTTL := flag.Duration("stale-ttl", time.Hour, "serve an unreachable point's last-known-good snapshot up to this age (0: disabled)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive failures that open a point's circuit breaker (must be >= 1)")
	breakerCooldown := flag.Duration("breaker-cooldown", 30*time.Second, "how long an open breaker refuses requests before probing")
	noModuleReuse := flag.Bool("no-module-reuse", false, "re-validate every publication point on every poll, even provably unchanged ones")
	opsListen := flag.String("ops-listen", "", "serve /metrics, /healthz, /readyz, /debug/* on this address (empty: disabled)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (one-shot runs; live daemons: /debug/pprof on -ops-listen)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit (one-shot runs; live daemons: /debug/pprof on -ops-listen)")
	rtrMaxClients := flag.Int("rtr-max-clients", 0, "max concurrent RTR connections; over-cap connections get an Error PDU (0: unlimited)")
	rtrSendQueue := flag.Int("rtr-send-queue", 32, "per-RTR-connection response-queue capacity; a client that fills it is evicted")
	rtrWriteTimeout := flag.Duration("rtr-write-timeout", 30*time.Second, "RTR write-stall deadline; a slow consumer exceeding it is evicted")
	rtrReplicaOf := flag.String("rtr-replica-of", "", "follow this primary's replication stream and serve RTR from the mirrored cache (no TAL, no validation)")
	rtrReplicationListen := flag.String("rtr-replication-listen", "", "stream the validated cache (snapshot + deltas) to replica frontends on this address (empty: disabled)")
	flag.Parse()
	// All flag validation happens up front, before the TAL is touched or
	// any socket is opened, so a misconfigured daemon dies with a usage
	// error instead of half-starting.
	if err := validateFlags(*maxRetries, *requestTimeout, *breakerThreshold, *breakerCooldown); err != nil {
		fatal(err)
	}
	if err := validateRTRFlags(*rtrAddr, *rtrMaxClients, *rtrSendQueue, *rtrWriteTimeout, *rtrReplicaOf, *rtrReplicationListen); err != nil {
		fatal(err)
	}
	if *poll != 0 {
		*interval = *poll
	}

	// File profiles and /debug/pprof share the helper in internal/obs; files
	// suit one-shot runs, the HTTP surface suits a long-lived daemon.
	stopCPU, err := obs.StartCPUProfile(*cpuProfile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopCPU(); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
		}
		if err := obs.WriteHeapProfile(*memProfile); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
	}()

	// Replica mode: no TAL, no validation — mirror a primary's cache and
	// serve routers from it.
	if *rtrReplicaOf != "" {
		runReplica(*rtrReplicaOf, *rtrAddr, *opsListen, *rtrMaxClients, *rtrSendQueue, *rtrWriteTimeout)
		return
	}

	anchor, err := rpkirisk.ReadTAL(*talPath)
	if err != nil {
		fatal(err)
	}
	var missing rp.MissingPolicy
	switch *policy {
	case "best-effort":
		missing = rp.BestEffort
	case "drop-pubpoint":
		missing = rp.DropPublicationPoint
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	client := rpkirisk.ClientFor(*server, *requestTimeout)
	client.Concurrency = *workers
	if client.Concurrency == 0 {
		client.Concurrency = runtime.GOMAXPROCS(0)
	}
	client.Retry = repo.RetryPolicy{MaxRetries: *maxRetries}
	if *breakerThreshold > 0 {
		client.Breakers = repo.NewBreakerSet(repo.BreakerConfig{
			FailureThreshold: *breakerThreshold,
			Cooldown:         *breakerCooldown,
		})
	}
	var hub *obs.Hub
	if *opsListen != "" {
		hub = obs.NewHub(nil)
		client.Instrument(hub)
		ops, err := hub.ServeOps(*opsListen)
		if err != nil {
			fatal(err)
		}
		defer func() { _ = ops.Close() }()
		fmt.Printf("ops server on %s\n", ops.Addr())
	}
	relying := rp.New(rp.Config{
		Fetcher:            client,
		Policy:             missing,
		Workers:            *workers,
		StaleTTL:           *staleTTL,
		CacheSnapshots:     true,
		DisableModuleReuse: *noModuleReuse,
		Obs:                hub,
	}, anchor)

	var syncs uint64
	sync := func() *rp.Result {
		result, err := relying.Sync(context.Background())
		if err != nil {
			fatal(err)
		}
		syncs++
		state := result.Health()
		hub.SetHealth(obs.Health{
			// Ready = this sync produced servable output: every point
			// either validated cleanly or was covered by its last-known-good
			// snapshot. Sticky in the hub thereafter.
			Ready: state == obs.HealthClean || state == obs.HealthStale,
			State: state,
			Detail: fmt.Sprintf("%d VRPs, %d diagnostics, %d stale fallbacks",
				len(result.VRPs), len(result.Diagnostics), result.StaleFallbacks),
			LastSyncAt: time.Now(),
			Syncs:      syncs,
		})
		fmt.Printf("synced: %d CAs, %d ROAs, %d VRPs", result.CertsAccepted, result.ROAsAccepted, len(result.VRPs))
		if result.ModulesReused > 0 {
			fmt.Printf(" [%d modules reused, %d revalidated]", result.ModulesReused, result.ModulesRevalidated)
		}
		if result.Retries > 0 || result.BreakerTrips > 0 || result.StaleFallbacks > 0 || result.IncrementalFallbacks > 0 {
			fmt.Printf(" (retries %d, breaker trips %d, stale fallbacks %d, incremental fallbacks %d)",
				result.Retries, result.BreakerTrips, result.StaleFallbacks, result.IncrementalFallbacks)
		}
		if result.Incomplete() {
			fmt.Printf(" — CACHE INCOMPLETE (%d diagnostics)\n", len(result.Diagnostics))
			for _, d := range result.Diagnostics {
				fmt.Printf("  %v\n", d)
			}
		} else {
			fmt.Println(" — cache complete")
		}
		for _, v := range result.VRPs {
			fmt.Printf("  vrp %v\n", v)
		}
		return result
	}

	result := sync()
	if *rtrAddr == "" && *interval == 0 {
		return
	}

	var updateCache func(*rp.Result)
	if *rtrAddr != "" || *rtrReplicationListen != "" {
		cache := rtr.NewCache(uint16(os.Getpid())) //nolint:gosec // session id only
		cache.SetVRPs(result.VRPs)
		cache.Instrument(hub)
		if *rtrAddr != "" {
			srv := rtr.NewServer(cache)
			srv.MaxClients = *rtrMaxClients
			srv.SendQueue = *rtrSendQueue
			srv.WriteTimeout = *rtrWriteTimeout
			bound, err := srv.Listen(*rtrAddr)
			if err != nil {
				fatal(err)
			}
			defer func() { _ = srv.Close() }()
			fmt.Printf("RTR server on %s (serial %d)\n", bound, cache.Serial())
		}
		if *rtrReplicationListen != "" {
			rs := rtr.NewReplicationServer(cache)
			bound, err := rs.Listen(*rtrReplicationListen)
			if err != nil {
				fatal(err)
			}
			defer func() { _ = rs.Close() }()
			fmt.Printf("replication stream on %s\n", bound)
		}
		updateCache = func(r *rp.Result) { cache.SetVRPs(r.VRPs) }
	}

	if *interval == 0 {
		*interval = 30 * time.Second
	}
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-tick.C:
			r := sync()
			if updateCache != nil {
				updateCache(r)
			}
		case <-sig:
			fmt.Println("shutting down")
			return
		}
	}
}

// validateFlags rejects nonsensical resilience tunings at startup, before
// any TAL or network work. A negative retry count, a non-positive request
// deadline, or a breaker threshold below one would each silently disable a
// rung of the degradation ladder — the operator asked for protection the
// daemon could not deliver.
func validateFlags(maxRetries int, requestTimeout time.Duration, breakerThreshold int, breakerCooldown time.Duration) error {
	if maxRetries < 0 {
		return fmt.Errorf("-max-retries must be >= 0, got %d", maxRetries)
	}
	if requestTimeout <= 0 {
		return fmt.Errorf("-request-timeout must be positive, got %v", requestTimeout)
	}
	if breakerThreshold < 1 {
		return fmt.Errorf("-breaker-threshold must be >= 1, got %d", breakerThreshold)
	}
	if breakerCooldown <= 0 {
		return fmt.Errorf("-breaker-cooldown must be positive, got %v", breakerCooldown)
	}
	return nil
}

// validateRTRFlags rejects nonsensical RTR fleet tunings at startup, before
// the TAL is touched. A negative client cap, an empty send queue, or a
// non-positive write timeout would each disable a slow-consumer defense the
// operator asked for; a replica with no RTR listener would follow a primary
// to no purpose.
func validateRTRFlags(rtrAddr string, maxClients, sendQueue int, writeTimeout time.Duration, replicaOf, replicationListen string) error {
	if maxClients < 0 {
		return fmt.Errorf("-rtr-max-clients must be >= 0, got %d", maxClients)
	}
	if sendQueue < 1 {
		return fmt.Errorf("-rtr-send-queue must be >= 1, got %d", sendQueue)
	}
	if writeTimeout <= 0 {
		return fmt.Errorf("-rtr-write-timeout must be positive, got %v", writeTimeout)
	}
	if replicaOf != "" {
		if rtrAddr == "" {
			return fmt.Errorf("-rtr-replica-of requires -rtr: a replica exists to serve routers")
		}
		if replicationListen != "" {
			return fmt.Errorf("-rtr-replica-of and -rtr-replication-listen are mutually exclusive: a frontend mirrors, a primary streams")
		}
	}
	return nil
}

// runReplica is the stateless-frontend main loop: mirror the primary's
// cache over the replication stream and serve RTR from it, reconnecting
// (and resuming from the mirrored serial) until interrupted.
func runReplica(primary, rtrAddr, opsListen string, maxClients, sendQueue int, writeTimeout time.Duration) {
	cache := rtr.NewCache(0) // the first snapshot adopts the primary's session
	rep := rtr.NewReplica(primary, cache)
	if opsListen != "" {
		hub := obs.NewHub(nil)
		cache.Instrument(hub)
		rep.Instrument(hub)
		ops, err := hub.ServeOps(opsListen)
		if err != nil {
			fatal(err)
		}
		defer func() { _ = ops.Close() }()
		fmt.Printf("ops server on %s\n", ops.Addr())
	}
	srv := rtr.NewServer(cache)
	srv.MaxClients = maxClients
	srv.SendQueue = sendQueue
	srv.WriteTimeout = writeTimeout
	bound, err := srv.Listen(rtrAddr)
	if err != nil {
		fatal(err)
	}
	defer func() { _ = srv.Close() }()
	fmt.Printf("replica RTR frontend on %s, following %s\n", bound, primary)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := rep.Run(ctx); err != nil && ctx.Err() == nil {
		fatal(err)
	}
	fmt.Println("shutting down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
