// Command rpki-whack is the attack console: it plans and (optionally)
// executes a whack against a ROA in the model hierarchy, reporting the
// method chosen, the carved hole, collateral damage, the monitor-visible
// footprint, and the before/after validation state.
//
// Usage:
//
//	rpki-whack -manipulator sprint -holder continental -roa cont-20 [-method auto|revoke] [-dry-run]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	rpkirisk "repro"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/rov"
)

func main() {
	manipulator := flag.String("manipulator", "sprint", "acting authority")
	holder := flag.String("holder", "continental", "authority that issued the target ROA")
	roaName := flag.String("roa", "cont-20", "target ROA name")
	method := flag.String("method", "auto", "auto (most surgical) or revoke (blunt subtree revocation)")
	dryRun := flag.Bool("dry-run", false, "plan only; do not execute")
	flag.Parse()

	w, err := rpkirisk.NewLiveModelWorld(false)
	if err != nil {
		fatal(err)
	}
	m, err := w.Authority(*manipulator)
	if err != nil {
		fatal(err)
	}
	h, err := w.Authority(*holder)
	if err != nil {
		fatal(err)
	}
	target := core.Target{Holder: h, Name: *roaName}
	ro, ok := h.ROA(*roaName)
	if !ok {
		fatal(fmt.Errorf("%s has no ROA %q (available: %v)", *holder, *roaName, h.ROAs()))
	}
	route := rov.Route{Prefix: ro.Prefixes[0].Prefix, Origin: ro.ASID}

	planner := &core.Planner{Manipulator: m}
	var plan *core.Plan
	switch *method {
	case "auto":
		plan, err = planner.Plan(target)
	case "revoke":
		plan, err = planner.PlanRevokeSubtree(target)
	default:
		err = fmt.Errorf("unknown method %q", *method)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Print(plan)
	if *dryRun {
		fmt.Println("\n(dry run — not executed)")
		return
	}

	before, err := rpkirisk.Validate(context.Background(), w)
	if err != nil {
		fatal(err)
	}
	watcher := monitor.NewWatcher()
	for module, store := range w.Stores {
		watcher.Observe(module, store.Snapshot())
	}

	if err := planner.Execute(plan); err != nil {
		fatal(err)
	}
	after, err := rpkirisk.Validate(context.Background(), w)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\ntarget route %v: %v → %v\n", route, before.Index().State(route), after.Index().State(route))
	fmt.Printf("validated ROAs: %d → %d\n", before.ROAsAccepted, after.ROAsAccepted)

	var events []monitor.Event
	for module, store := range w.Stores {
		events = append(events, watcher.Observe(module, store.Snapshot())...)
	}
	fmt.Printf("\nwhat a monitor would see (%d events):\n", len(events))
	for _, e := range events {
		fmt.Printf("  %v\n", e)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
