package ipres

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ASN is an autonomous system number.
type ASN uint32

// ParseASN parses an AS number, accepting both "7018" and "AS7018".
func ParseASN(s string) (ASN, error) {
	t := strings.TrimPrefix(strings.TrimPrefix(s, "AS"), "as")
	v, err := strconv.ParseUint(t, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("ipres: invalid ASN %q", s)
	}
	return ASN(v), nil
}

// String renders the ASN in "AS64496" form.
func (a ASN) String() string { return "AS" + strconv.FormatUint(uint64(a), 10) }

// ASNRange is an inclusive range of AS numbers.
type ASNRange struct {
	Lo, Hi ASN
}

// Contains reports whether the range contains a.
func (r ASNRange) Contains(a ASN) bool { return r.Lo <= a && a <= r.Hi }

// String renders the range as "AS1-AS5" or "AS7" for a singleton.
func (r ASNRange) String() string {
	if r.Lo == r.Hi {
		return r.Lo.String()
	}
	return r.Lo.String() + "-" + r.Hi.String()
}

// ASNSet is a canonical set of AS numbers: sorted, disjoint, maximally
// merged ranges. The zero ASNSet is empty and ready to use. ASNSets are
// immutable: all operations return new sets.
type ASNSet struct {
	ranges []ASNRange
}

// NewASNSet builds a canonical ASN set from arbitrary ranges.
func NewASNSet(ranges ...ASNRange) ASNSet {
	rs := make([]ASNRange, 0, len(ranges))
	for _, r := range ranges {
		if r.Lo <= r.Hi {
			rs = append(rs, r)
		}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Lo != rs[j].Lo {
			return rs[i].Lo < rs[j].Lo
		}
		return rs[i].Hi < rs[j].Hi
	})
	out := rs[:0]
	for _, r := range rs {
		if n := len(out); n > 0 {
			last := out[n-1]
			// Merge if overlapping or adjacent (watch uint32 overflow).
			if r.Lo <= last.Hi || (last.Hi != ^ASN(0) && r.Lo == last.Hi+1) {
				if r.Hi > last.Hi {
					out[n-1].Hi = r.Hi
				}
				continue
			}
		}
		out = append(out, r)
	}
	return ASNSet{ranges: append([]ASNRange(nil), out...)}
}

// ASNSetOf builds a set from individual AS numbers.
func ASNSetOf(asns ...ASN) ASNSet {
	rs := make([]ASNRange, len(asns))
	for i, a := range asns {
		rs[i] = ASNRange{a, a}
	}
	return NewASNSet(rs...)
}

// ParseASNSet parses a comma-separated list of ASNs and ASN ranges, e.g.
// "AS64496, AS64500-AS64510".
func ParseASNSet(s string) (ASNSet, error) {
	var rs []ASNRange
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if i := strings.IndexByte(part, '-'); i >= 0 {
			lo, err := ParseASN(strings.TrimSpace(part[:i]))
			if err != nil {
				return ASNSet{}, err
			}
			hi, err := ParseASN(strings.TrimSpace(part[i+1:]))
			if err != nil {
				return ASNSet{}, err
			}
			if lo > hi {
				return ASNSet{}, fmt.Errorf("ipres: inverted ASN range %q", part)
			}
			rs = append(rs, ASNRange{lo, hi})
			continue
		}
		a, err := ParseASN(part)
		if err != nil {
			return ASNSet{}, err
		}
		rs = append(rs, ASNRange{a, a})
	}
	return NewASNSet(rs...), nil
}

// Ranges returns the canonical ranges. The returned slice must not be
// modified.
func (s ASNSet) Ranges() []ASNRange { return s.ranges }

// IsEmpty reports whether the set is empty.
func (s ASNSet) IsEmpty() bool { return len(s.ranges) == 0 }

// Contains reports whether the set contains a.
func (s ASNSet) Contains(a ASN) bool {
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].Hi >= a })
	return i < len(s.ranges) && s.ranges[i].Contains(a)
}

// Covers reports whether s contains every ASN of t.
func (s ASNSet) Covers(t ASNSet) bool {
	for _, r := range t.ranges {
		i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].Hi >= r.Lo })
		if i >= len(s.ranges) || s.ranges[i].Lo > r.Lo || s.ranges[i].Hi < r.Hi {
			return false
		}
	}
	return true
}

// Union returns s ∪ t.
func (s ASNSet) Union(t ASNSet) ASNSet {
	return NewASNSet(append(append([]ASNRange(nil), s.ranges...), t.ranges...)...)
}

// Subtract returns s \ t.
func (s ASNSet) Subtract(t ASNSet) ASNSet {
	var out []ASNRange
	for _, a := range s.ranges {
		pieces := []ASNRange{a}
		for _, b := range t.ranges {
			var next []ASNRange
			for _, p := range pieces {
				if b.Hi < p.Lo || b.Lo > p.Hi {
					next = append(next, p)
					continue
				}
				if p.Lo < b.Lo {
					next = append(next, ASNRange{p.Lo, b.Lo - 1})
				}
				if b.Hi < p.Hi {
					next = append(next, ASNRange{b.Hi + 1, p.Hi})
				}
			}
			pieces = next
		}
		out = append(out, pieces...)
	}
	return ASNSet{ranges: out}
}

// Equal reports whether two ASN sets are identical.
func (s ASNSet) Equal(t ASNSet) bool {
	if len(s.ranges) != len(t.ranges) {
		return false
	}
	for i := range s.ranges {
		if s.ranges[i] != t.ranges[i] {
			return false
		}
	}
	return true
}

// Size returns the number of ASNs in the set.
func (s ASNSet) Size() uint64 {
	var n uint64
	for _, r := range s.ranges {
		n += uint64(r.Hi-r.Lo) + 1
	}
	return n
}

// String renders the set as a comma-separated list.
func (s ASNSet) String() string {
	if s.IsEmpty() {
		return "∅"
	}
	parts := make([]string, len(s.ranges))
	for i, r := range s.ranges {
		parts[i] = r.String()
	}
	return strings.Join(parts, ", ")
}
