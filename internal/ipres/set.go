package ipres

import (
	"sort"
	"strings"
)

// Set is a canonical set of IP addresses represented as sorted, disjoint,
// maximally merged ranges. IPv4 ranges order before IPv6 ranges. The zero
// Set is the empty set and is ready to use. Sets are immutable: all
// operations return new Sets.
type Set struct {
	ranges []Range
}

// EmptySet returns the empty resource set.
func EmptySet() Set { return Set{} }

// NewSet builds a canonical set from arbitrary (possibly overlapping,
// unsorted) ranges.
func NewSet(ranges ...Range) Set {
	rs := make([]Range, 0, len(ranges))
	for _, r := range ranges {
		if r.IsValid() {
			rs = append(rs, r)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Cmp(rs[j]) < 0 })
	out := rs[:0]
	for _, r := range rs {
		if n := len(out); n > 0 {
			last := out[n-1]
			if last.Overlaps(r) || last.Adjacent(r) {
				if r.hi.Cmp(last.hi) > 0 {
					out[n-1].hi = r.hi
				}
				continue
			}
		}
		out = append(out, r)
	}
	return Set{ranges: append([]Range(nil), out...)}
}

// SetOfPrefixes builds a canonical set from prefixes.
func SetOfPrefixes(prefixes ...Prefix) Set {
	rs := make([]Range, 0, len(prefixes))
	for _, p := range prefixes {
		if p.IsValid() {
			rs = append(rs, p.Range())
		}
	}
	return NewSet(rs...)
}

// ParseSet parses a comma-separated list of prefixes and/or "lo-hi" ranges,
// e.g. "63.174.16.0-63.174.23.255, 63.174.25.0/24".
func ParseSet(s string) (Set, error) {
	var rs []Range
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := ParseRange(part)
		if err != nil {
			return Set{}, err
		}
		rs = append(rs, r)
	}
	return NewSet(rs...), nil
}

// MustParseSet is ParseSet that panics on error.
func MustParseSet(s string) Set {
	set, err := ParseSet(s)
	if err != nil {
		panic(err)
	}
	return set
}

// Ranges returns the canonical ranges of the set. The returned slice must
// not be modified.
func (s Set) Ranges() []Range { return s.ranges }

// IsEmpty reports whether the set contains no addresses.
func (s Set) IsEmpty() bool { return len(s.ranges) == 0 }

// NumRanges returns the number of canonical ranges.
func (s Set) NumRanges() int { return len(s.ranges) }

// Equal reports whether two sets contain exactly the same addresses.
func (s Set) Equal(t Set) bool {
	if len(s.ranges) != len(t.ranges) {
		return false
	}
	for i := range s.ranges {
		if s.ranges[i] != t.ranges[i] {
			return false
		}
	}
	return true
}

// ContainsAddr reports whether the set contains addr.
func (s Set) ContainsAddr(a Addr) bool {
	i := sort.Search(len(s.ranges), func(i int) bool {
		return s.ranges[i].hi.Cmp(a) >= 0
	})
	return i < len(s.ranges) && s.ranges[i].Contains(a)
}

// ContainsRange reports whether the set fully contains range r.
// Because the set is canonical, r must fit inside a single stored range.
func (s Set) ContainsRange(r Range) bool {
	if !r.IsValid() {
		return false
	}
	i := sort.Search(len(s.ranges), func(i int) bool {
		return s.ranges[i].hi.Cmp(r.lo) >= 0
	})
	return i < len(s.ranges) && s.ranges[i].ContainsRange(r)
}

// ContainsPrefix reports whether the set fully contains prefix p.
func (s Set) ContainsPrefix(p Prefix) bool { return s.ContainsRange(p.Range()) }

// Covers reports whether s contains every address of t (s ⊇ t). This is the
// RFC 3779 resource-containment check used in certificate path validation.
func (s Set) Covers(t Set) bool {
	for _, r := range t.ranges {
		if !s.ContainsRange(r) {
			return false
		}
	}
	return true
}

// Overlaps reports whether s and t share any addresses.
func (s Set) Overlaps(t Set) bool {
	i, j := 0, 0
	for i < len(s.ranges) && j < len(t.ranges) {
		a, b := s.ranges[i], t.ranges[j]
		if a.Overlaps(b) {
			return true
		}
		// Advance the range that ends first in global order.
		if a.Cmp(b) < 0 {
			i++
		} else {
			j++
		}
	}
	return false
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	return NewSet(append(append([]Range(nil), s.ranges...), t.ranges...)...)
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	var out []Range
	i, j := 0, 0
	for i < len(s.ranges) && j < len(t.ranges) {
		a, b := s.ranges[i], t.ranges[j]
		if a.Overlaps(b) {
			lo := a.lo
			if b.lo.Cmp(lo) > 0 {
				lo = b.lo
			}
			hi := a.hi
			if b.hi.Cmp(hi) < 0 {
				hi = b.hi
			}
			out = append(out, Range{lo: lo, hi: hi})
		}
		// Advance whichever ends first; Addr.Cmp orders across families.
		if a.hi.Cmp(b.hi) <= 0 {
			i++
		} else {
			j++
		}
	}
	return Set{ranges: out}
}

// Subtract returns s \ t.
func (s Set) Subtract(t Set) Set {
	if t.IsEmpty() || s.IsEmpty() {
		return s
	}
	var out []Range
	for _, a := range s.ranges {
		pieces := []Range{a}
		for _, b := range t.ranges {
			var next []Range
			for _, p := range pieces {
				next = append(next, subtractRange(p, b)...)
			}
			pieces = next
			if len(pieces) == 0 {
				break
			}
		}
		out = append(out, pieces...)
	}
	return Set{ranges: out}
}

// subtractRange returns the pieces of a not covered by b (0, 1, or 2 ranges,
// in order).
func subtractRange(a, b Range) []Range {
	if !a.Overlaps(b) {
		return []Range{a}
	}
	var out []Range
	if a.lo.Cmp(b.lo) < 0 {
		hi, _ := b.lo.Prev()
		out = append(out, Range{lo: a.lo, hi: hi})
	}
	if b.hi.Cmp(a.hi) < 0 {
		lo, _ := b.hi.Next()
		out = append(out, Range{lo: lo, hi: a.hi})
	}
	return out
}

// Prefixes returns the minimal list of CIDR prefixes exactly covering the
// set, in order.
func (s Set) Prefixes() []Prefix {
	var out []Prefix
	for _, r := range s.ranges {
		out = append(out, r.Prefixes()...)
	}
	return out
}

// Size returns the total number of addresses in the set as a float64.
func (s Set) Size() float64 {
	var total float64
	for _, r := range s.ranges {
		total += r.Size()
	}
	return total
}

// Family returns the subset of s belonging to family f.
func (s Set) Family(f Family) Set {
	var out []Range
	for _, r := range s.ranges {
		if r.Family() == f {
			out = append(out, r)
		}
	}
	return Set{ranges: out}
}

// String renders the set as a comma-separated list of prefixes/ranges.
func (s Set) String() string {
	if s.IsEmpty() {
		return "∅"
	}
	parts := make([]string, len(s.ranges))
	for i, r := range s.ranges {
		parts[i] = r.String()
	}
	return strings.Join(parts, ", ")
}
