package ipres

import (
	"math/rand"
	"testing"
)

func TestParseASN(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ASN
		ok   bool
	}{
		{"7018", 7018, true},
		{"AS7018", 7018, true},
		{"as17054", 17054, true},
		{"4294967295", 4294967295, true},
		{"4294967296", 0, false},
		{"-1", 0, false},
		{"", 0, false},
		{"ASX", 0, false},
	} {
		got, err := ParseASN(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("ParseASN(%q) = %v, %v", tc.in, got, err)
		}
	}
	if ASN(1239).String() != "AS1239" {
		t.Error("ASN string wrong")
	}
}

func TestASNSetCanonical(t *testing.T) {
	s := NewASNSet(ASNRange{5, 10}, ASNRange{1, 6}, ASNRange{11, 12})
	if len(s.Ranges()) != 1 || s.Ranges()[0] != (ASNRange{1, 12}) {
		t.Errorf("got %v", s)
	}
	s2 := ASNSetOf(1, 3, 2, 3)
	if s2.String() != "AS1-AS3" {
		t.Errorf("got %v", s2)
	}
	if s2.Size() != 3 {
		t.Errorf("size = %d", s2.Size())
	}
}

func TestASNSetContainsCovers(t *testing.T) {
	s := NewASNSet(ASNRange{100, 200}, ASNRange{300, 400})
	if !s.Contains(150) || s.Contains(250) || !s.Contains(300) {
		t.Error("contains wrong")
	}
	if !s.Covers(NewASNSet(ASNRange{120, 130}, ASNRange{350, 400})) {
		t.Error("should cover sub-ranges")
	}
	if s.Covers(NewASNSet(ASNRange{150, 250})) {
		t.Error("should not cover range spanning gap")
	}
	if !s.Covers(ASNSet{}) {
		t.Error("covers empty")
	}
}

func TestASNSetSubtract(t *testing.T) {
	s := NewASNSet(ASNRange{1, 100})
	got := s.Subtract(NewASNSet(ASNRange{40, 60}))
	want := NewASNSet(ASNRange{1, 39}, ASNRange{61, 100})
	if !got.Equal(want) {
		t.Errorf("got %v, want %v", got, want)
	}
	if !s.Subtract(s).IsEmpty() {
		t.Error("self-subtract should be empty")
	}
}

func TestASNSetUnionSubtractRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	randASN := func(n int) ASNSet {
		rs := make([]ASNRange, n)
		for i := range rs {
			a, b := ASN(rng.Uint32()>>16), ASN(rng.Uint32()>>16)
			if a > b {
				a, b = b, a
			}
			rs[i] = ASNRange{a, b}
		}
		return NewASNSet(rs...)
	}
	for i := 0; i < 300; i++ {
		a, b := randASN(1+rng.Intn(4)), randASN(1+rng.Intn(4))
		u := a.Union(b)
		if !u.Covers(a) || !u.Covers(b) {
			t.Fatal("union must cover operands")
		}
		diff := a.Subtract(b)
		if b.Covers(diff) && !diff.IsEmpty() {
			t.Fatal("difference must escape subtrahend")
		}
		if !diff.Union(b).Equal(u) {
			t.Fatalf("(a\\b)∪b != a∪b: a=%v b=%v", a, b)
		}
	}
}

func TestASNSetMergeAdjacentOverflowGuard(t *testing.T) {
	max := ^ASN(0)
	s := NewASNSet(ASNRange{max - 1, max}, ASNRange{0, 1})
	if len(s.Ranges()) != 2 {
		t.Errorf("got %v", s)
	}
}

func TestParseASNSet(t *testing.T) {
	s, err := ParseASNSet("AS64496, AS64500-AS64510")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Contains(64496) || !s.Contains(64505) || s.Contains(64497) {
		t.Errorf("got %v", s)
	}
	if _, err := ParseASNSet("AS10-AS5"); err == nil {
		t.Error("want error for inverted range")
	}
	if _, err := ParseASNSet("ASX"); err == nil {
		t.Error("want error for junk")
	}
}
