package ipres

import (
	"fmt"
	"strings"
)

// Range is an inclusive address range [Lo, Hi] within a single family.
// The zero Range is invalid.
type Range struct {
	lo, hi Addr
}

// RangeFrom returns the inclusive range [lo, hi]. lo and hi must be valid
// addresses of the same family with lo <= hi.
func RangeFrom(lo, hi Addr) (Range, error) {
	if !lo.IsValid() || !hi.IsValid() {
		return Range{}, fmt.Errorf("ipres: invalid address in range")
	}
	if lo.family != hi.family {
		return Range{}, fmt.Errorf("ipres: mixed-family range %v-%v", lo, hi)
	}
	if lo.Cmp(hi) > 0 {
		return Range{}, fmt.Errorf("ipres: inverted range %v-%v", lo, hi)
	}
	return Range{lo: lo, hi: hi}, nil
}

// MustRangeFrom is RangeFrom that panics on error.
func MustRangeFrom(lo, hi Addr) Range {
	r, err := RangeFrom(lo, hi)
	if err != nil {
		panic(err)
	}
	return r
}

// ParseRange parses "lo-hi" (e.g. "63.174.16.0-63.174.23.255") or a CIDR
// prefix, which denotes its full range.
func ParseRange(s string) (Range, error) {
	if strings.Contains(s, "/") {
		p, err := ParsePrefix(s)
		if err != nil {
			return Range{}, err
		}
		return p.Range(), nil
	}
	i := strings.IndexByte(s, '-')
	if i < 0 {
		a, err := ParseAddr(s)
		if err != nil {
			return Range{}, err
		}
		return Range{lo: a, hi: a}, nil
	}
	lo, err := ParseAddr(strings.TrimSpace(s[:i]))
	if err != nil {
		return Range{}, err
	}
	hi, err := ParseAddr(strings.TrimSpace(s[i+1:]))
	if err != nil {
		return Range{}, err
	}
	return RangeFrom(lo, hi)
}

// MustParseRange is ParseRange that panics on error.
func MustParseRange(s string) Range {
	r, err := ParseRange(s)
	if err != nil {
		panic(err)
	}
	return r
}

// Lo returns the first address of the range.
func (r Range) Lo() Addr { return r.lo }

// Hi returns the last address of the range.
func (r Range) Hi() Addr { return r.hi }

// Family returns the range's address family.
func (r Range) Family() Family { return r.lo.family }

// IsValid reports whether r is a valid range.
func (r Range) IsValid() bool { return r.lo.IsValid() && r.hi.IsValid() }

// Contains reports whether the range contains addr.
func (r Range) Contains(a Addr) bool {
	return a.family == r.lo.family && r.lo.Cmp(a) <= 0 && a.Cmp(r.hi) <= 0
}

// ContainsRange reports whether r fully contains s.
func (r Range) ContainsRange(s Range) bool {
	return s.lo.family == r.lo.family && r.lo.Cmp(s.lo) <= 0 && s.hi.Cmp(r.hi) <= 0
}

// Overlaps reports whether r and s share any addresses.
func (r Range) Overlaps(s Range) bool {
	return s.lo.family == r.lo.family && r.lo.Cmp(s.hi) <= 0 && s.lo.Cmp(r.hi) <= 0
}

// Adjacent reports whether r immediately precedes s (r.Hi+1 == s.Lo) so that
// they can be merged without a gap.
func (r Range) Adjacent(s Range) bool {
	if s.lo.family != r.lo.family {
		return false
	}
	next, ok := r.hi.Next()
	return ok && next == s.lo
}

// Cmp orders ranges by Lo, then by Hi.
func (r Range) Cmp(s Range) int {
	if c := r.lo.Cmp(s.lo); c != 0 {
		return c
	}
	return r.hi.Cmp(s.hi)
}

// Size returns the number of addresses in the range as a float64 (ranges can
// exceed uint64 for IPv6).
func (r Range) Size() float64 {
	d, _ := r.hi.value.sub(r.lo.value)
	return float64(d.hi)*18446744073709551616.0 + float64(d.lo) + 1
}

// Prefixes decomposes the range into the minimal ordered list of CIDR
// prefixes that exactly covers it.
func (r Range) Prefixes() []Prefix {
	if !r.IsValid() {
		return nil
	}
	w := r.lo.family.Width()
	var out []Prefix
	cur := r.lo
	for {
		// The largest prefix starting at cur: limited by alignment of cur
		// and by the remaining span to r.hi.
		val := cur.value
		if r.lo.family == IPv4 {
			val = val.shl(96) // normalize to top bits for tz math
		}
		tz := val.trailingZeros()
		if tz > 128 {
			tz = 128
		}
		maxByAlign := tz - (128 - w) // host bits available from alignment
		if cur.value.isZero() {
			maxByAlign = w
		}
		if maxByAlign > w {
			maxByAlign = w
		}
		// Remaining span: hi - cur + 1; the largest power of two <= span.
		span, _ := r.hi.value.sub(cur.value)
		span, overflow := span.addOne()
		var maxBySpan int
		if overflow {
			maxBySpan = w
		} else {
			maxBySpan = 127 - span.leadingZeros()
			if maxBySpan < 0 {
				maxBySpan = 0
			}
			if maxBySpan > w {
				maxBySpan = w
			}
		}
		host := maxByAlign
		if maxBySpan < host {
			host = maxBySpan
		}
		p := MustPrefixFrom(cur, w-host)
		out = append(out, p)
		last := p.Range().hi
		if last.Cmp(r.hi) >= 0 {
			break
		}
		next, ok := last.Next()
		if !ok {
			break
		}
		cur = next
	}
	return out
}

// String renders the range as "lo-hi", or as a CIDR prefix when the range is
// exactly one prefix.
func (r Range) String() string {
	if !r.IsValid() {
		return "invalid-range"
	}
	if ps := r.Prefixes(); len(ps) == 1 {
		return ps[0].String()
	}
	return r.lo.String() + "-" + r.hi.String()
}
