package ipres

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddrIPv4(t *testing.T) {
	tests := []struct {
		in   string
		ok   bool
		back string
	}{
		{"0.0.0.0", true, "0.0.0.0"},
		{"255.255.255.255", true, "255.255.255.255"},
		{"63.160.0.0", true, "63.160.0.0"},
		{"63.174.23.255", true, "63.174.23.255"},
		{"1.2.3", false, ""},
		{"1.2.3.4.5", false, ""},
		{"256.0.0.0", false, ""},
		{"01.2.3.4", false, ""},
		{"", false, ""},
		{"a.b.c.d", false, ""},
	}
	for _, tc := range tests {
		a, err := ParseAddr(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseAddr(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && a.String() != tc.back {
			t.Errorf("ParseAddr(%q).String() = %q, want %q", tc.in, a.String(), tc.back)
		}
	}
}

func TestParseAddrIPv6(t *testing.T) {
	tests := []struct {
		in   string
		ok   bool
		back string
	}{
		{"::", true, "::"},
		{"::1", true, "::1"},
		{"1::", true, "1::"},
		{"2001:db8::1", true, "2001:db8::1"},
		{"2001:0db8:0000:0000:0000:0000:0000:0001", true, "2001:db8::1"},
		{"fe80::1:2:3:4", true, "fe80::1:2:3:4"},
		{"1:2:3:4:5:6:7:8", true, "1:2:3:4:5:6:7:8"},
		{"1:0:0:2:0:0:0:3", true, "1:0:0:2::3"},
		{"::ffff:0:0", true, "::ffff:0:0"},
		{"1:2:3:4:5:6:7:8:9", false, ""},
		{"1:::2", false, ""},
		{"1::2::3", false, ""},
		{"12345::", false, ""},
		{"g::1", false, ""},
	}
	for _, tc := range tests {
		a, err := ParseAddr(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseAddr(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && a.String() != tc.back {
			t.Errorf("ParseAddr(%q).String() = %q, want %q", tc.in, a.String(), tc.back)
		}
	}
}

func TestAddrCmpOrdersFamilies(t *testing.T) {
	v4 := MustParseAddr("255.255.255.255")
	v6 := MustParseAddr("::")
	if v4.Cmp(v6) >= 0 {
		t.Errorf("IPv4 max should order before IPv6 min")
	}
	if v6.Cmp(v4) <= 0 {
		t.Errorf("IPv6 min should order after IPv4 max")
	}
}

func TestAddrNextPrev(t *testing.T) {
	a := MustParseAddr("63.174.23.255")
	n, ok := a.Next()
	if !ok || n.String() != "63.174.24.0" {
		t.Fatalf("Next(63.174.23.255) = %v, %v", n, ok)
	}
	p, ok := n.Prev()
	if !ok || p != a {
		t.Fatalf("Prev round-trip failed: %v", p)
	}
	if _, ok := MustParseAddr("255.255.255.255").Next(); ok {
		t.Error("Next of IPv4 max should overflow")
	}
	if _, ok := MustParseAddr("0.0.0.0").Prev(); ok {
		t.Error("Prev of IPv4 min should underflow")
	}
	if _, ok := MustParseAddr("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff").Next(); ok {
		t.Error("Next of IPv6 max should overflow")
	}
	if _, ok := MustParseAddr("::").Prev(); ok {
		t.Error("Prev of IPv6 min should underflow")
	}
}

func TestAddrBytesRoundTrip(t *testing.T) {
	a := MustParseAddr("10.20.30.40")
	if got := AddrFrom4(a.As4()); got != a {
		t.Errorf("IPv4 byte round-trip: %v", got)
	}
	b := MustParseAddr("2001:db8::dead:beef")
	if got := AddrFrom16(b.As16()); got != b {
		t.Errorf("IPv6 byte round-trip: %v", got)
	}
	if len(a.Bytes()) != 4 || len(b.Bytes()) != 16 {
		t.Error("Bytes length mismatch")
	}
}

func TestAddrStringParseQuickIPv4(t *testing.T) {
	f := func(v uint32) bool {
		a := AddrFromUint32(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrStringParseQuickIPv6(t *testing.T) {
	f := func(hi, lo uint64) bool {
		var b [16]byte
		for i := 7; i >= 0; i-- {
			b[i] = byte(hi >> uint(8*(7-i)))
			b[i+8] = byte(lo >> uint(8*(7-i)))
		}
		a := AddrFrom16(b)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAddrNextIsStrictlyGreater(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		a := AddrFromUint32(rng.Uint32())
		n, ok := a.Next()
		if !ok {
			continue
		}
		if n.Cmp(a) <= 0 {
			t.Fatalf("Next(%v) = %v not greater", a, n)
		}
	}
}

func TestFamilyBasics(t *testing.T) {
	if IPv4.Width() != 32 || IPv6.Width() != 128 {
		t.Error("family widths wrong")
	}
	if !IPv4.Valid() || !IPv6.Valid() || Family(0).Valid() || Family(3).Valid() {
		t.Error("family validity wrong")
	}
	if IPv4.String() != "IPv4" || IPv6.String() != "IPv6" {
		t.Error("family strings wrong")
	}
}

func TestInvalidAddrString(t *testing.T) {
	var a Addr
	if a.String() != "invalid" || a.IsValid() {
		t.Error("zero Addr should be invalid")
	}
}
