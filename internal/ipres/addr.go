// Package ipres implements the IP-resource algebra underlying RFC 3779
// certificate extensions and RPKI validation semantics: addresses, prefixes,
// inclusive ranges, canonical resource sets with union/intersection/
// subtraction/covering operations, minimal prefix covers, and AS number sets.
//
// All set operations produce canonical forms (sorted, disjoint, maximally
// merged), so Equal is structural equality and every operation is
// deterministic. IPv4 and IPv6 resources may be mixed freely in a Set.
package ipres

import (
	"fmt"
	"strconv"
	"strings"
)

// Family identifies an IP address family using the IANA AFI values, as used
// in the RFC 3779 IPAddrBlocks extension.
type Family uint8

const (
	// IPv4 is address family identifier 1.
	IPv4 Family = 1
	// IPv6 is address family identifier 2.
	IPv6 Family = 2
)

// Width returns the address width in bits: 32 for IPv4, 128 for IPv6.
func (f Family) Width() int {
	if f == IPv4 {
		return 32
	}
	return 128
}

// Valid reports whether f is IPv4 or IPv6.
func (f Family) Valid() bool { return f == IPv4 || f == IPv6 }

func (f Family) String() string {
	switch f {
	case IPv4:
		return "IPv4"
	case IPv6:
		return "IPv6"
	}
	return fmt.Sprintf("Family(%d)", uint8(f))
}

// Addr is an IPv4 or IPv6 address. The zero Addr is invalid.
type Addr struct {
	value  u128
	family Family
}

// AddrFrom4 returns the IPv4 address for the given 4 bytes.
func AddrFrom4(b [4]byte) Addr {
	v := uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
	return Addr{value: u128FromUint64(v), family: IPv4}
}

// AddrFrom16 returns the IPv6 address for the given 16 bytes.
func AddrFrom16(b [16]byte) Addr {
	var hi, lo uint64
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(b[i])
		lo = lo<<8 | uint64(b[i+8])
	}
	return Addr{value: u128{hi, lo}, family: IPv6}
}

// AddrFromUint32 returns the IPv4 address with the given numeric value.
func AddrFromUint32(v uint32) Addr {
	return Addr{value: u128FromUint64(uint64(v)), family: IPv4}
}

// Family returns the address family.
func (a Addr) Family() Family { return a.family }

// IsValid reports whether a is a valid (non-zero-family) address.
func (a Addr) IsValid() bool { return a.family.Valid() }

// As4 returns the IPv4 byte representation. It panics for non-IPv4 addresses.
func (a Addr) As4() [4]byte {
	if a.family != IPv4 {
		panic("ipres: As4 on non-IPv4 address")
	}
	v := uint32(a.value.lo)
	return [4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// As16 returns the IPv6 byte representation. It panics for non-IPv6 addresses.
func (a Addr) As16() [16]byte {
	if a.family != IPv6 {
		panic("ipres: As16 on non-IPv6 address")
	}
	var b [16]byte
	hi, lo := a.value.hi, a.value.lo
	for i := 7; i >= 0; i-- {
		b[i] = byte(hi)
		b[i+8] = byte(lo)
		hi >>= 8
		lo >>= 8
	}
	return b
}

// Bytes returns the network-order byte representation (4 or 16 bytes).
func (a Addr) Bytes() []byte {
	if a.family == IPv4 {
		b := a.As4()
		return b[:]
	}
	b := a.As16()
	return b[:]
}

// Cmp compares two addresses. IPv4 addresses order before IPv6 addresses;
// within a family, numeric order applies.
func (a Addr) Cmp(b Addr) int {
	if a.family != b.family {
		if a.family < b.family {
			return -1
		}
		return 1
	}
	return a.value.cmp(b.value)
}

// Next returns the successor address, with ok=false if a is the maximum
// address of its family.
func (a Addr) Next() (Addr, bool) {
	v, carry := a.value.addOne()
	if carry {
		return Addr{}, false
	}
	if a.family == IPv4 && v.hi == 0 && v.lo > 0xFFFFFFFF {
		return Addr{}, false
	}
	return Addr{value: v, family: a.family}, true
}

// Prev returns the predecessor address, with ok=false if a is the minimum
// address of its family.
func (a Addr) Prev() (Addr, bool) {
	if a.value.isZero() {
		return Addr{}, false
	}
	v, _ := a.value.subOne()
	return Addr{value: v, family: a.family}, true
}

// familyMax returns the maximum address of family f.
func familyMax(f Family) Addr {
	if f == IPv4 {
		return Addr{value: u128FromUint64(0xFFFFFFFF), family: IPv4}
	}
	return Addr{value: u128{^uint64(0), ^uint64(0)}, family: IPv6}
}

// familyMin returns the minimum (all-zero) address of family f.
func familyMin(f Family) Addr { return Addr{family: f} }

// String formats the address in conventional dotted-quad or RFC 5952 form.
func (a Addr) String() string {
	switch a.family {
	case IPv4:
		b := a.As4()
		return fmt.Sprintf("%d.%d.%d.%d", b[0], b[1], b[2], b[3])
	case IPv6:
		return formatIPv6(a.As16())
	}
	return "invalid"
}

// formatIPv6 renders a 16-byte address per RFC 5952 (lowercase hex,
// longest run of zero groups compressed, leftmost on tie, runs of one
// group not compressed).
func formatIPv6(b [16]byte) string {
	var groups [8]uint16
	for i := range groups {
		groups[i] = uint16(b[2*i])<<8 | uint16(b[2*i+1])
	}
	// Find the longest run of zero groups of length >= 2.
	bestStart, bestLen := -1, 1
	for i := 0; i < 8; {
		if groups[i] != 0 {
			i++
			continue
		}
		j := i
		for j < 8 && groups[j] == 0 {
			j++
		}
		if j-i > bestLen {
			bestStart, bestLen = i, j-i
		}
		i = j
	}
	var sb strings.Builder
	for i := 0; i < 8; i++ {
		if i == bestStart {
			sb.WriteString("::")
			i += bestLen - 1
			continue
		}
		if i > 0 && !(bestStart >= 0 && i == bestStart+bestLen) {
			sb.WriteByte(':')
		}
		sb.WriteString(strconv.FormatUint(uint64(groups[i]), 16))
	}
	return sb.String()
}

// ParseAddr parses an IPv4 dotted-quad or IPv6 address.
func ParseAddr(s string) (Addr, error) {
	if strings.Contains(s, ":") {
		return parseIPv6(s)
	}
	return parseIPv4(s)
}

// MustParseAddr is ParseAddr that panics on error; intended for constants
// and tests.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

func parseIPv4(s string) (Addr, error) {
	var b [4]byte
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return Addr{}, fmt.Errorf("ipres: invalid IPv4 address %q", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil || (len(p) > 1 && p[0] == '0') {
			return Addr{}, fmt.Errorf("ipres: invalid IPv4 address %q", s)
		}
		b[i] = byte(v)
	}
	return AddrFrom4(b), nil
}

func parseIPv6(s string) (Addr, error) {
	// Split on "::" at most once.
	var head, tail []string
	if i := strings.Index(s, "::"); i >= 0 {
		h, t := s[:i], s[i+2:]
		if strings.Contains(t, "::") {
			return Addr{}, fmt.Errorf("ipres: invalid IPv6 address %q", s)
		}
		if h != "" {
			head = strings.Split(h, ":")
		}
		if t != "" {
			tail = strings.Split(t, ":")
		}
		if len(head)+len(tail) >= 8 {
			return Addr{}, fmt.Errorf("ipres: invalid IPv6 address %q", s)
		}
	} else {
		head = strings.Split(s, ":")
		if len(head) != 8 {
			return Addr{}, fmt.Errorf("ipres: invalid IPv6 address %q", s)
		}
	}
	groups := make([]uint16, 0, 8)
	parse := func(parts []string) error {
		for _, p := range parts {
			if p == "" {
				return fmt.Errorf("ipres: invalid IPv6 address %q", s)
			}
			v, err := strconv.ParseUint(p, 16, 16)
			if err != nil {
				return fmt.Errorf("ipres: invalid IPv6 address %q", s)
			}
			groups = append(groups, uint16(v))
		}
		return nil
	}
	if err := parse(head); err != nil {
		return Addr{}, err
	}
	zeros := 8 - len(head) - len(tail)
	for i := 0; i < zeros; i++ {
		groups = append(groups, 0)
	}
	if err := parse(tail); err != nil {
		return Addr{}, err
	}
	var b [16]byte
	for i, g := range groups {
		b[2*i] = byte(g >> 8)
		b[2*i+1] = byte(g)
	}
	return AddrFrom16(b), nil
}
