package ipres

import "math/bits"

// u128 is an unsigned 128-bit integer used to represent IP address values.
// IPv4 addresses occupy the low 32 bits; IPv6 addresses use all 128 bits.
type u128 struct {
	hi, lo uint64
}

func u128FromUint64(v uint64) u128 { return u128{lo: v} }

func (u u128) isZero() bool { return u.hi == 0 && u.lo == 0 }

func (u u128) cmp(v u128) int {
	switch {
	case u.hi < v.hi:
		return -1
	case u.hi > v.hi:
		return 1
	case u.lo < v.lo:
		return -1
	case u.lo > v.lo:
		return 1
	}
	return 0
}

func (u u128) and(v u128) u128 { return u128{u.hi & v.hi, u.lo & v.lo} }
func (u u128) or(v u128) u128  { return u128{u.hi | v.hi, u.lo | v.lo} }
func (u u128) xor(v u128) u128 { return u128{u.hi ^ v.hi, u.lo ^ v.lo} }
func (u u128) not() u128       { return u128{^u.hi, ^u.lo} }

// add returns u+v and a carry-out flag.
func (u u128) add(v u128) (u128, bool) {
	lo, c := bits.Add64(u.lo, v.lo, 0)
	hi, c2 := bits.Add64(u.hi, v.hi, c)
	return u128{hi, lo}, c2 != 0
}

// sub returns u-v and a borrow-out flag.
func (u u128) sub(v u128) (u128, bool) {
	lo, b := bits.Sub64(u.lo, v.lo, 0)
	hi, b2 := bits.Sub64(u.hi, v.hi, b)
	return u128{hi, lo}, b2 != 0
}

// addOne returns u+1 and whether it overflowed.
func (u u128) addOne() (u128, bool) { return u.add(u128{lo: 1}) }

// subOne returns u-1 and whether it underflowed.
func (u u128) subOne() (u128, bool) { return u.sub(u128{lo: 1}) }

// shl shifts left by n bits (n in [0,128]).
func (u u128) shl(n uint) u128 {
	switch {
	case n >= 128:
		return u128{}
	case n >= 64:
		return u128{hi: u.lo << (n - 64)}
	case n == 0:
		return u
	default:
		return u128{hi: u.hi<<n | u.lo>>(64-n), lo: u.lo << n}
	}
}

// shr shifts right by n bits (n in [0,128]).
func (u u128) shr(n uint) u128 {
	switch {
	case n >= 128:
		return u128{}
	case n >= 64:
		return u128{lo: u.hi >> (n - 64)}
	case n == 0:
		return u
	default:
		return u128{hi: u.hi >> n, lo: u.lo>>n | u.hi<<(64-n)}
	}
}

// leadingZeros returns the number of leading zero bits in the 128-bit value.
func (u u128) leadingZeros() int {
	if u.hi != 0 {
		return bits.LeadingZeros64(u.hi)
	}
	return 64 + bits.LeadingZeros64(u.lo)
}

// trailingZeros returns the number of trailing zero bits (128 for zero).
func (u u128) trailingZeros() int {
	if u.lo != 0 {
		return bits.TrailingZeros64(u.lo)
	}
	if u.hi != 0 {
		return 64 + bits.TrailingZeros64(u.hi)
	}
	return 128
}

// mask128 returns a mask with the top n bits of a 128-bit word set.
func mask128(n int) u128 {
	if n <= 0 {
		return u128{}
	}
	if n >= 128 {
		return u128{^uint64(0), ^uint64(0)}
	}
	return u128{^uint64(0), ^uint64(0)}.shl(uint(128 - n)) // clears low bits
}
