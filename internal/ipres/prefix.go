package ipres

import (
	"fmt"
	"strconv"
	"strings"
)

// Prefix is a CIDR prefix: an address plus a prefix length. Prefixes are
// stored in canonical (masked) form; the bits below the prefix length are
// zero. The zero Prefix is invalid.
type Prefix struct {
	addr Addr
	bits int
}

// PrefixFrom returns the canonical prefix containing addr with the given
// length. Host bits below the prefix length are cleared.
func PrefixFrom(addr Addr, bits int) (Prefix, error) {
	if !addr.IsValid() {
		return Prefix{}, fmt.Errorf("ipres: invalid address in prefix")
	}
	w := addr.family.Width()
	if bits < 0 || bits > w {
		return Prefix{}, fmt.Errorf("ipres: prefix length %d out of range for %v", bits, addr.family)
	}
	m := mask128(128 - w + bits) // top bits of the w-bit value
	if addr.family == IPv4 {
		m = mask128(bits).shr(uint(128 - 32)) // low 32 bits hold the value
	}
	return Prefix{addr: Addr{value: addr.value.and(m), family: addr.family}, bits: bits}, nil
}

// MustPrefixFrom is PrefixFrom that panics on error.
func MustPrefixFrom(addr Addr, bits int) Prefix {
	p, err := PrefixFrom(addr, bits)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses a prefix in CIDR notation, e.g. "63.160.0.0/12".
// Host bits below the prefix length must be zero.
func ParsePrefix(s string) (Prefix, error) {
	i := strings.LastIndexByte(s, '/')
	if i < 0 {
		return Prefix{}, fmt.Errorf("ipres: missing '/' in prefix %q", s)
	}
	addr, err := ParseAddr(s[:i])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return Prefix{}, fmt.Errorf("ipres: invalid prefix length in %q", s)
	}
	p, err := PrefixFrom(addr, bits)
	if err != nil {
		return Prefix{}, err
	}
	if p.addr != addr {
		return Prefix{}, fmt.Errorf("ipres: prefix %q has host bits set", s)
	}
	return p, nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Addr returns the (masked) base address of the prefix.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length.
func (p Prefix) Bits() int { return p.bits }

// Family returns the prefix's address family.
func (p Prefix) Family() Family { return p.addr.family }

// IsValid reports whether p is a valid prefix.
func (p Prefix) IsValid() bool { return p.addr.IsValid() }

// valueMask returns the prefix's network mask as a u128 over the family's
// value representation.
func (p Prefix) valueMask() u128 {
	if p.addr.family == IPv4 {
		return mask128(p.bits).shr(96)
	}
	return mask128(p.bits)
}

// Range returns the inclusive address range spanned by the prefix.
func (p Prefix) Range() Range {
	m := p.valueMask()
	last := Addr{value: p.addr.value.or(m.not()), family: p.addr.family}
	if p.addr.family == IPv4 {
		last.value.hi = 0
		last.value.lo &= 0xFFFFFFFF
	}
	return Range{lo: p.addr, hi: last}
}

// Contains reports whether the prefix contains addr.
func (p Prefix) Contains(a Addr) bool {
	if a.family != p.addr.family {
		return false
	}
	return a.value.and(p.valueMask()).cmp(p.addr.value) == 0
}

// Covers reports whether p covers q in the sense of the paper: q's address
// space is a subset of (or equal to) p's.
func (p Prefix) Covers(q Prefix) bool {
	return p.addr.family == q.addr.family && p.bits <= q.bits && p.Contains(q.addr)
}

// Overlaps reports whether p and q share any addresses.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Covers(q) || q.Covers(p)
}

// Cmp orders prefixes by base address, then by length (shorter first).
func (p Prefix) Cmp(q Prefix) int {
	if c := p.addr.Cmp(q.addr); c != 0 {
		return c
	}
	switch {
	case p.bits < q.bits:
		return -1
	case p.bits > q.bits:
		return 1
	}
	return 0
}

// Halves splits the prefix into its two immediate subprefixes. It returns
// ok=false if the prefix is a single host address.
func (p Prefix) Halves() (lo, hi Prefix, ok bool) {
	w := p.addr.family.Width()
	if p.bits >= w {
		return Prefix{}, Prefix{}, false
	}
	nb := p.bits + 1
	lo = Prefix{addr: p.addr, bits: nb}
	step := u128FromUint64(1).shl(uint(w - nb))
	v, _ := p.addr.value.add(step)
	hi = Prefix{addr: Addr{value: v, family: p.addr.family}, bits: nb}
	return lo, hi, true
}

// Parent returns the enclosing prefix one bit shorter, or ok=false at /0.
func (p Prefix) Parent() (Prefix, bool) {
	if p.bits == 0 {
		return Prefix{}, false
	}
	return MustPrefixFrom(p.addr, p.bits-1), true
}

// String renders the prefix in CIDR notation.
func (p Prefix) String() string {
	if !p.IsValid() {
		return "invalid/0"
	}
	return p.addr.String() + "/" + strconv.Itoa(p.bits)
}
