package ipres

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParsePrefix(t *testing.T) {
	tests := []struct {
		in string
		ok bool
	}{
		{"63.160.0.0/12", true},
		{"0.0.0.0/0", true},
		{"1.2.3.4/32", true},
		{"2001:db8::/32", true},
		{"::/0", true},
		{"63.160.0.0", false},
		{"63.160.0.0/33", false},
		{"63.160.0.0/-1", false},
		{"63.161.0.0/12", false}, // host bits set
		{"2001:db8::/129", false},
		{"2001:db8::1/64", false}, // host bits set
	}
	for _, tc := range tests {
		p, err := ParsePrefix(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParsePrefix(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && p.String() != tc.in {
			t.Errorf("ParsePrefix(%q).String() = %q", tc.in, p.String())
		}
	}
}

func TestPrefixRange(t *testing.T) {
	tests := []struct {
		in     string
		lo, hi string
	}{
		{"63.160.0.0/12", "63.160.0.0", "63.175.255.255"},
		{"63.174.16.0/20", "63.174.16.0", "63.174.31.255"},
		{"63.174.16.0/22", "63.174.16.0", "63.174.19.255"},
		{"0.0.0.0/0", "0.0.0.0", "255.255.255.255"},
		{"10.0.0.1/32", "10.0.0.1", "10.0.0.1"},
		{"2001:db8::/32", "2001:db8::", "2001:db8:ffff:ffff:ffff:ffff:ffff:ffff"},
	}
	for _, tc := range tests {
		r := MustParsePrefix(tc.in).Range()
		if r.Lo().String() != tc.lo || r.Hi().String() != tc.hi {
			t.Errorf("%s.Range() = [%v, %v], want [%s, %s]", tc.in, r.Lo(), r.Hi(), tc.lo, tc.hi)
		}
	}
}

func TestPrefixCovers(t *testing.T) {
	// The paper's footnote 1: 63.160.0.0/12 covers 63.168.93.0/24, and a
	// prefix covers itself.
	p12 := MustParsePrefix("63.160.0.0/12")
	p24 := MustParsePrefix("63.168.93.0/24")
	if !p12.Covers(p24) {
		t.Error("63.160.0.0/12 should cover 63.168.93.0/24")
	}
	if !p12.Covers(p12) {
		t.Error("a prefix should cover itself")
	}
	if p24.Covers(p12) {
		t.Error("/24 should not cover /12")
	}
	if p12.Covers(MustParsePrefix("64.0.0.0/24")) {
		t.Error("disjoint prefixes should not cover")
	}
	if p12.Covers(MustParsePrefix("2001:db8::/32")) {
		t.Error("cross-family cover should be false")
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("63.174.16.0/20")
	if !p.Contains(MustParseAddr("63.174.23.0")) {
		t.Error("should contain 63.174.23.0")
	}
	if p.Contains(MustParseAddr("63.174.32.0")) {
		t.Error("should not contain 63.174.32.0")
	}
	if p.Contains(MustParseAddr("2001:db8::1")) {
		t.Error("cross-family contains should be false")
	}
}

func TestPrefixHalvesAndParent(t *testing.T) {
	p := MustParsePrefix("63.160.0.0/12")
	lo, hi, ok := p.Halves()
	if !ok || lo.String() != "63.160.0.0/13" || hi.String() != "63.168.0.0/13" {
		t.Fatalf("Halves = %v, %v, %v", lo, hi, ok)
	}
	par, ok := lo.Parent()
	if !ok || par != p {
		t.Fatalf("Parent(%v) = %v", lo, par)
	}
	if _, _, ok := MustParsePrefix("1.2.3.4/32").Halves(); ok {
		t.Error("/32 should not halve")
	}
	if _, ok := MustParsePrefix("0.0.0.0/0").Parent(); ok {
		t.Error("/0 should have no parent")
	}
}

func TestPrefixFromMasksHostBits(t *testing.T) {
	p, err := PrefixFrom(MustParseAddr("63.174.23.77"), 20)
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "63.174.16.0/20" {
		t.Errorf("got %v", p)
	}
	q, err := PrefixFrom(MustParseAddr("2001:db8:abcd::1"), 32)
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != "2001:db8::/32" {
		t.Errorf("got %v", q)
	}
}

func TestPrefixHalvesPartitionQuick(t *testing.T) {
	f := func(v uint32, bitsRaw uint8) bool {
		bits := int(bitsRaw % 32) // 0..31 so halves exist
		p, err := PrefixFrom(AddrFromUint32(v), bits)
		if err != nil {
			return false
		}
		lo, hi, ok := p.Halves()
		if !ok {
			return false
		}
		r, rl, rh := p.Range(), lo.Range(), hi.Range()
		next, _ := rl.Hi().Next()
		return rl.Lo() == r.Lo() && rh.Hi() == r.Hi() && next == rh.Lo()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixCoversTransitiveQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		b1 := rng.Intn(25)
		b2 := b1 + rng.Intn(33-b1)
		b3 := b2 + rng.Intn(33-b2)
		v := rng.Uint32()
		p1 := MustPrefixFrom(AddrFromUint32(v), b1)
		p2 := MustPrefixFrom(AddrFromUint32(v), b2)
		p3 := MustPrefixFrom(AddrFromUint32(v), b3)
		if !p1.Covers(p2) || !p2.Covers(p3) || !p1.Covers(p3) {
			t.Fatalf("cover chain broken: %v %v %v", p1, p2, p3)
		}
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("63.160.0.0/12")
	b := MustParsePrefix("63.174.16.0/20")
	c := MustParsePrefix("64.86.0.0/16")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes should overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes should not overlap")
	}
}

func TestPrefixCmp(t *testing.T) {
	a := MustParsePrefix("63.160.0.0/12")
	b := MustParsePrefix("63.160.0.0/13")
	c := MustParsePrefix("63.168.0.0/13")
	if a.Cmp(b) >= 0 || b.Cmp(c) >= 0 || a.Cmp(a) != 0 {
		t.Error("prefix ordering wrong")
	}
}
