package ipres

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRangePrefixes(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"63.174.16.0-63.174.23.255", []string{"63.174.16.0/21"}},
		{"63.174.25.0-63.174.31.255", []string{"63.174.25.0/24", "63.174.26.0/23", "63.174.28.0/22"}},
		{"0.0.0.0-255.255.255.255", []string{"0.0.0.0/0"}},
		{"10.0.0.1-10.0.0.1", []string{"10.0.0.1/32"}},
		{"10.0.0.1-10.0.0.2", []string{"10.0.0.1/32", "10.0.0.2/32"}},
		{"10.0.0.0-10.0.0.255", []string{"10.0.0.0/24"}},
		{"2001:db8::-2001:db8::ffff", []string{"2001:db8::/112"}},
	}
	for _, tc := range tests {
		got := MustParseRange(tc.in).Prefixes()
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i].String() != tc.want[i] {
				t.Errorf("%s: got %v, want %v", tc.in, got, tc.want)
				break
			}
		}
	}
}

func TestRangePrefixesExactCoverQuick(t *testing.T) {
	f := func(a, b uint32) bool {
		if a > b {
			a, b = b, a
		}
		r := MustRangeFrom(AddrFromUint32(a), AddrFromUint32(b))
		ps := r.Prefixes()
		// Prefixes must tile the range exactly, in order, without gaps.
		cur := r.Lo()
		for _, p := range ps {
			pr := p.Range()
			if pr.Lo() != cur {
				return false
			}
			next, ok := pr.Hi().Next()
			if !ok {
				return pr.Hi() == r.Hi()
			}
			cur = next
		}
		last, _ := r.Hi().Next()
		return cur == last || ps[len(ps)-1].Range().Hi() == r.Hi()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSetCanonicalization(t *testing.T) {
	s := MustParseSet("10.0.1.0/24, 10.0.0.0/24")
	if s.NumRanges() != 1 {
		t.Errorf("adjacent prefixes should merge: %v", s)
	}
	if s.String() != "10.0.0.0/23" {
		t.Errorf("got %v", s)
	}
	s2 := MustParseSet("10.0.0.0/24, 10.0.0.128/25")
	if s2.NumRanges() != 1 || s2.String() != "10.0.0.0/24" {
		t.Errorf("overlap should merge: %v", s2)
	}
	s3 := MustParseSet("10.0.0.0/24, 10.0.2.0/24")
	if s3.NumRanges() != 2 {
		t.Errorf("gap should not merge: %v", s3)
	}
}

func TestSetMixedFamilies(t *testing.T) {
	s := MustParseSet("2001:db8::/32, 10.0.0.0/8")
	if s.NumRanges() != 2 {
		t.Fatalf("got %v", s)
	}
	if s.Ranges()[0].Family() != IPv4 || s.Ranges()[1].Family() != IPv6 {
		t.Error("IPv4 should sort before IPv6")
	}
	if s.Family(IPv4).NumRanges() != 1 || s.Family(IPv6).NumRanges() != 1 {
		t.Error("family filter wrong")
	}
}

func TestSetSubtractPaperExample(t *testing.T) {
	// Section 3.1: Sprint removes the target ROA's space 63.174.16.0/22
	// minus... actually the Figure 3 example: Continental Broadband's RC
	// 63.174.16.0/20 minus the /24 at 63.174.24.0 yields the two ranges
	// [63.174.16.0–63.174.23.255] and [63.174.25.0–63.174.31.255].
	rc := MustParseSet("63.174.16.0/20")
	hole := MustParseSet("63.174.24.0/24")
	got := rc.Subtract(hole)
	want := MustParseSet("63.174.16.0-63.174.23.255, 63.174.25.0-63.174.31.255")
	if !got.Equal(want) {
		t.Errorf("got %v, want %v", got, want)
	}
	if got.ContainsPrefix(MustParsePrefix("63.174.24.0/24")) {
		t.Error("hole should be removed")
	}
	if !got.ContainsPrefix(MustParsePrefix("63.174.25.0/24")) {
		t.Error("remainder should persist")
	}
}

func TestSetCoversAndOverlaps(t *testing.T) {
	parent := MustParseSet("63.160.0.0/12")
	child := MustParseSet("63.174.16.0/20")
	other := MustParseSet("64.86.0.0/16")
	if !parent.Covers(child) {
		t.Error("parent should cover child")
	}
	if child.Covers(parent) {
		t.Error("child should not cover parent")
	}
	if !parent.Overlaps(child) || parent.Overlaps(other) {
		t.Error("overlap wrong")
	}
	if !parent.Covers(EmptySet()) {
		t.Error("everything covers the empty set")
	}
	split := MustParseSet("63.174.16.0/21, 63.174.24.0/21")
	if !parent.Covers(split) {
		t.Error("parent should cover split set")
	}
	// A set covering a range that spans two of its canonical ranges must
	// report false (there is a gap).
	gappy := MustParseSet("10.0.0.0/24, 10.0.2.0/24")
	if gappy.ContainsRange(MustParseRange("10.0.0.0-10.0.2.255")) {
		t.Error("gap should break containment")
	}
}

func TestSetIntersect(t *testing.T) {
	a := MustParseSet("63.160.0.0/12")
	b := MustParseSet("63.174.16.0/20, 64.0.0.0/8")
	got := a.Intersect(b)
	want := MustParseSet("63.174.16.0/20")
	if !got.Equal(want) {
		t.Errorf("got %v, want %v", got, want)
	}
	if !a.Intersect(EmptySet()).IsEmpty() {
		t.Error("intersect with empty should be empty")
	}
}

func TestSetUnionSubtractRoundTrip(t *testing.T) {
	a := MustParseSet("63.160.0.0/12")
	b := MustParseSet("64.86.0.0/16")
	u := a.Union(b)
	if !u.Subtract(b).Equal(a) {
		t.Errorf("(a∪b)\\b = %v, want %v", u.Subtract(b), a)
	}
	if !u.Subtract(a).Equal(b) {
		t.Errorf("(a∪b)\\a = %v, want %v", u.Subtract(a), b)
	}
}

func randomSet(rng *rand.Rand, n int) Set {
	rs := make([]Range, n)
	for i := range rs {
		a, b := rng.Uint32()>>8, rng.Uint32()>>8
		if a > b {
			a, b = b, a
		}
		rs[i] = MustRangeFrom(AddrFromUint32(a), AddrFromUint32(b))
	}
	return NewSet(rs...)
}

func TestSetAlgebraPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		a := randomSet(rng, 1+rng.Intn(5))
		b := randomSet(rng, 1+rng.Intn(5))
		u := a.Union(b)
		inter := a.Intersect(b)
		// a ⊆ a∪b and a∩b ⊆ a.
		if !u.Covers(a) || !u.Covers(b) {
			t.Fatalf("union must cover operands: a=%v b=%v u=%v", a, b, u)
		}
		if !a.Covers(inter) || !b.Covers(inter) {
			t.Fatalf("operands must cover intersection")
		}
		// (a\b) ∪ (a∩b) == a.
		if !a.Subtract(b).Union(inter).Equal(a) {
			t.Fatalf("partition identity failed: a=%v b=%v", a, b)
		}
		// (a\b) ∩ b == ∅.
		if !a.Subtract(b).Intersect(b).IsEmpty() {
			t.Fatalf("difference must not intersect subtrahend")
		}
		// Size is additive: |a| = |a\b| + |a∩b|.
		if got, want := a.Subtract(b).Size()+inter.Size(), a.Size(); got != want {
			t.Fatalf("size identity failed: got %v want %v", got, want)
		}
	}
}

func TestSetPrefixesRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomSet(rng, 1+rng.Intn(6))
		return SetOfPrefixes(s.Prefixes()...).Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSetContainsAddr(t *testing.T) {
	s := MustParseSet("10.0.0.0/24, 10.0.2.0/24")
	if !s.ContainsAddr(MustParseAddr("10.0.0.77")) {
		t.Error("should contain 10.0.0.77")
	}
	if s.ContainsAddr(MustParseAddr("10.0.1.0")) {
		t.Error("should not contain 10.0.1.0")
	}
	if s.ContainsAddr(MustParseAddr("2001:db8::1")) {
		t.Error("should not contain IPv6 addr")
	}
}

func TestParseSetErrors(t *testing.T) {
	if _, err := ParseSet("10.0.0.0/33"); err == nil {
		t.Error("want error for bad prefix")
	}
	if _, err := ParseSet("10.0.0.9-10.0.0.1"); err == nil {
		t.Error("want error for inverted range")
	}
	s, err := ParseSet("")
	if err != nil || !s.IsEmpty() {
		t.Error("empty string should parse to empty set")
	}
}

func TestRangeBasics(t *testing.T) {
	if _, err := RangeFrom(MustParseAddr("10.0.0.1"), MustParseAddr("2001:db8::1")); err == nil {
		t.Error("mixed-family range should fail")
	}
	r := MustParseRange("10.0.0.0/24")
	if r.Lo().String() != "10.0.0.0" || r.Hi().String() != "10.0.0.255" {
		t.Errorf("CIDR range parse: %v", r)
	}
	single := MustParseRange("10.0.0.1")
	if single.Lo() != single.Hi() {
		t.Error("singleton range wrong")
	}
	if r.Size() != 256 {
		t.Errorf("size = %v", r.Size())
	}
	a := MustParseRange("10.0.0.0-10.0.0.9")
	b := MustParseRange("10.0.0.10-10.0.0.20")
	if !a.Adjacent(b) || b.Adjacent(a) {
		t.Error("adjacency wrong")
	}
}

func TestSetIntersectDistributesOverUnion(t *testing.T) {
	// a ∩ (b ∪ c) == (a∩b) ∪ (a∩c)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		a := randomSet(rng, 1+rng.Intn(4))
		b := randomSet(rng, 1+rng.Intn(4))
		c := randomSet(rng, 1+rng.Intn(4))
		left := a.Intersect(b.Union(c))
		right := a.Intersect(b).Union(a.Intersect(c))
		if !left.Equal(right) {
			t.Fatalf("distributivity failed:\na=%v\nb=%v\nc=%v", a, b, c)
		}
	}
}

func TestSetMinimalPrefixCover(t *testing.T) {
	// The prefix cover must be minimal: no two adjacent output prefixes of
	// equal length may be mergeable into their parent.
	f := func(a, b uint32) bool {
		if a > b {
			a, b = b, a
		}
		r := MustRangeFrom(AddrFromUint32(a), AddrFromUint32(b))
		ps := r.Prefixes()
		for i := 1; i < len(ps); i++ {
			if ps[i-1].Bits() != ps[i].Bits() {
				continue
			}
			p1, _ := ps[i-1].Parent()
			p2, _ := ps[i].Parent()
			if p1 == p2 {
				return false // mergeable siblings: cover not minimal
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSetStringEmpty(t *testing.T) {
	if EmptySet().String() != "∅" {
		t.Errorf("empty set string = %q", EmptySet().String())
	}
	if NewASNSet().String() != "∅" {
		t.Errorf("empty ASN set string = %q", NewASNSet().String())
	}
}
