package modelgen

import (
	"context"
	"testing"

	"repro/internal/ipres"
	"repro/internal/rov"
	"repro/internal/rp"
)

func TestFigure2Validates(t *testing.T) {
	w, err := Figure2(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if w.CountROAs() != 8 {
		t.Errorf("ROAs = %d, want 8", w.CountROAs())
	}
	relying := rp.New(rp.Config{Fetcher: w.Stores, Clock: w.Clock}, w.Anchor())
	res, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete() {
		t.Fatalf("figure 2 should validate cleanly: %v", res.Diagnostics)
	}
	ix := res.Index()
	// The two paper-stated facts about Figure 5 left.
	if got := ix.State(rov.Route{Prefix: ipres.MustParsePrefix("63.160.0.0/12"), Origin: 1239}); got != rov.Unknown {
		t.Errorf("/12 = %v, want unknown", got)
	}
	if got := ix.State(rov.Route{Prefix: ipres.MustParsePrefix("63.174.17.0/24"), Origin: 17054}); got != rov.Invalid {
		t.Errorf("63.174.17.0/24 = %v, want invalid", got)
	}
}

func TestFigure2WithCover(t *testing.T) {
	w, err := Figure2(nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if w.CountROAs() != 9 {
		t.Errorf("ROAs = %d, want 9", w.CountROAs())
	}
	relying := rp.New(rp.Config{Fetcher: w.Stores, Clock: w.Clock}, w.Anchor())
	res, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ix := res.Index()
	// Side Effect 5: the /12 route is now valid for AS1239, and invalid
	// for everyone else.
	if got := ix.State(rov.Route{Prefix: ipres.MustParsePrefix("63.160.0.0/12"), Origin: 1239}); got != rov.Valid {
		t.Errorf("/12 AS1239 = %v, want valid", got)
	}
	if got := ix.State(rov.Route{Prefix: ipres.MustParsePrefix("63.163.0.0/16"), Origin: 7018}); got != rov.Invalid {
		t.Errorf("/16 AS7018 = %v, want invalid", got)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	w1, err := Synthetic(SyntheticConfig{Seed: 7, RIRs: 2, ISPsPerRIR: 2, ROAsPerISP: 2, CustomersPerISP: 1})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Synthetic(SyntheticConfig{Seed: 7, RIRs: 2, ISPsPerRIR: 2, ROAsPerISP: 2, CustomersPerISP: 1})
	if err != nil {
		t.Fatal(err)
	}
	if w1.CountROAs() != w2.CountROAs() {
		t.Error("same seed must give same shape")
	}
	// 2 RIRs × 2 ISPs × (2 + 1) = 12 ROAs.
	if w1.CountROAs() != 12 {
		t.Errorf("ROAs = %d, want 12", w1.CountROAs())
	}
}

func TestSyntheticValidates(t *testing.T) {
	w, err := Synthetic(SyntheticConfig{Seed: 1, RIRs: 2, ISPsPerRIR: 3, ROAsPerISP: 3, CustomersPerISP: 2})
	if err != nil {
		t.Fatal(err)
	}
	relying := rp.New(rp.Config{Fetcher: w.Stores, Clock: w.Clock}, w.Anchor())
	res, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete() {
		t.Fatalf("synthetic world should validate: %v", res.Diagnostics[:min(3, len(res.Diagnostics))])
	}
	want := 2 * 3 * (3 + 2)
	if res.ROAsAccepted != want {
		t.Errorf("accepted %d ROAs, want %d", res.ROAsAccepted, want)
	}
}

func TestProductionSizedMatchesFootnote4(t *testing.T) {
	cfg := ProductionSized(1)
	total := cfg.RIRs * cfg.ISPsPerRIR * (cfg.ROAsPerISP + cfg.CustomersPerISP)
	if total < 1200 || total > 1400 {
		t.Errorf("production size = %d ROAs, want 1200-1400 (paper footnote 4)", total)
	}
}

func TestSyntheticBoundsChecked(t *testing.T) {
	if _, err := Synthetic(SyntheticConfig{RIRs: 100}); err == nil {
		t.Error("too many RIRs must fail")
	}
	if _, err := Synthetic(SyntheticConfig{ROAsPerISP: 11, RIRs: 1, ISPsPerRIR: 1}); err == nil {
		t.Error("too many ROAs per ISP must fail")
	}
}

func TestWorldAccessors(t *testing.T) {
	w, err := Figure2(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Authority("sprint"); err != nil {
		t.Error(err)
	}
	if _, err := w.Authority("nope"); err == nil {
		t.Error("unknown authority must fail")
	}
	if w.MustAuthority("continental").Name != "continental" {
		t.Error("MustAuthority wrong")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestBulkModeProducesConsistentWorld(t *testing.T) {
	// Bulk generation must yield exactly the same validation outcome as
	// the per-operation path: complete cache, correct ROA count.
	w, err := Synthetic(SyntheticConfig{Seed: 3, RIRs: 2, ISPsPerRIR: 5, ROAsPerISP: 5, CustomersPerISP: 5})
	if err != nil {
		t.Fatal(err)
	}
	relying := rp.New(rp.Config{Fetcher: w.Stores, Clock: w.Clock}, w.Anchor())
	res, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete() {
		t.Fatalf("bulk-built world must validate completely: %v", res.Diagnostics[:min(3, len(res.Diagnostics))])
	}
	want := 2 * 5 * (5 + 5)
	if res.ROAsAccepted != want {
		t.Errorf("ROAs = %d, want %d", res.ROAsAccepted, want)
	}
}

func TestFullDeploymentSizedShape(t *testing.T) {
	cfg := FullDeploymentSized(1)
	total := cfg.RIRs * cfg.ISPsPerRIR * (cfg.ROAsPerISP + cfg.CustomersPerISP)
	if total < 10000 {
		t.Errorf("full-deployment tier = %d ROAs, want ≥ 10000", total)
	}
}
