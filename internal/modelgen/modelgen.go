// Package modelgen constructs RPKI deployments: the paper's exact model
// hierarchy (Figure 2) and measurement-driven synthetic deployments sized
// like the production RPKI of 2013 (≈1200–1400 ROAs, the paper's footnote 4)
// or like projected full deployment.
package modelgen

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ca"
	"repro/internal/ipres"
	"repro/internal/repo"
	"repro/internal/roa"
	"repro/internal/rp"
)

// World is a complete RPKI deployment: authorities, their publication
// points, and the trust anchor.
type World struct {
	// TA is the trust anchor.
	TA *ca.Authority
	// Authorities maps name → authority (including the TA).
	Authorities map[string]*ca.Authority
	// Stores maps module name → publication point, ready to serve or to
	// use as an in-process rp.Fetcher.
	Stores rp.StoreFetcher
	// Clock is the time source shared by all authorities.
	Clock func() time.Time
}

// Anchor returns the trust-anchor seed for a relying party.
func (w *World) Anchor() rp.TrustAnchor {
	return rp.TrustAnchor{CertDER: w.TA.Cert.Raw, URI: w.TA.URI}
}

// Authority returns a named authority.
func (w *World) Authority(name string) (*ca.Authority, error) {
	a, ok := w.Authorities[name]
	if !ok {
		return nil, fmt.Errorf("modelgen: no authority %q", name)
	}
	return a, nil
}

// MustAuthority is Authority that panics on error.
func (w *World) MustAuthority(name string) *ca.Authority {
	a, err := w.Authority(name)
	if err != nil {
		panic(err)
	}
	return a
}

// builder accumulates a world under construction.
type builder struct {
	w   *World
	cfg ca.Config
}

func newBuilder(clock func() time.Time) *builder {
	if clock == nil {
		epoch := time.Date(2013, 11, 21, 0, 0, 0, 0, time.UTC)
		clock = func() time.Time { return epoch }
	}
	return &builder{
		w: &World{
			Authorities: make(map[string]*ca.Authority),
			Stores:      rp.StoreFetcher{},
			Clock:       clock,
		},
		cfg: ca.Config{Clock: clock},
	}
}

func (b *builder) trustAnchor(name string, resources string) (*ca.Authority, error) {
	store := repo.NewStore()
	b.w.Stores[name] = store
	ta, err := ca.NewTrustAnchor(name, ipres.MustParseSet(resources), store,
		repo.URI{Host: name + ".example:8873", Module: name}, b.cfg)
	if err != nil {
		return nil, err
	}
	b.w.TA = ta
	b.w.Authorities[name] = ta
	return ta, nil
}

func (b *builder) child(parent *ca.Authority, name, resources string) (*ca.Authority, error) {
	store := repo.NewStore()
	b.w.Stores[name] = store
	child, err := parent.CreateChild(name, ipres.MustParseSet(resources), store,
		repo.URI{Host: name + ".example:8873", Module: name})
	if err != nil {
		return nil, err
	}
	b.w.Authorities[name] = child
	return child, nil
}

// Figure2 builds the paper's model RPKI excerpt:
//
//	ARIN (trust anchor, 63.0.0.0/8)
//	└── Sprint (63.160.0.0/12)
//	    ├── ROA (63.168.0.0/16-24, AS1239)     — "subprefixes up to 24"
//	    ├── ROA (63.170.0.0/16-24, AS1239)     — "subprefixes up to 24"
//	    ├── ETB S.A. ESP. (63.161.0.0/16)
//	    │   └── ROA (63.161.0.0/16, AS19429)
//	    └── Continental Broadband (63.174.16.0/20)
//	        ├── ROA (63.174.16.0/20, AS17054)  — Section 3.1's first target
//	        ├── ROA (63.174.16.0/22, AS7341)   — Figure 3's target
//	        ├── ROA (63.174.20.0/22-24, AS26821)
//	        ├── ROA (63.174.25.0/24, AS17054)
//	        └── ROA (63.174.26.0/23, AS17054)
//
// withSprintCover additionally issues Sprint's (63.160.0.0/12-13, AS1239)
// ROA — the new ROA of Figure 5 (right) / Side Effect 5.
func Figure2(clock func() time.Time, withSprintCover bool) (*World, error) {
	b := newBuilder(clock)
	arin, err := b.trustAnchor("arin", "63.0.0.0/8")
	if err != nil {
		return nil, err
	}
	sprint, err := b.child(arin, "sprint", "63.160.0.0/12")
	if err != nil {
		return nil, err
	}
	etb, err := b.child(sprint, "etb", "63.161.0.0/16")
	if err != nil {
		return nil, err
	}
	continental, err := b.child(sprint, "continental", "63.174.16.0/20")
	if err != nil {
		return nil, err
	}
	issue := func(a *ca.Authority, name string, asn ipres.ASN, prefix string) error {
		_, err := a.IssueROA(name, asn, roa.MustParsePrefix(prefix))
		return err
	}
	steps := []error{
		issue(sprint, "sprint-168", 1239, "63.168.0.0/16-24"),
		issue(sprint, "sprint-170", 1239, "63.170.0.0/16-24"),
		issue(etb, "etb", 19429, "63.161.0.0/16"),
		issue(continental, "cont-20", 17054, "63.174.16.0/20"),
		issue(continental, "cont-22", 7341, "63.174.16.0/22"),
		issue(continental, "cont-20-24", 26821, "63.174.20.0/22-24"),
		issue(continental, "cont-25", 17054, "63.174.25.0/24"),
		issue(continental, "cont-26", 17054, "63.174.26.0/23"),
	}
	if withSprintCover {
		steps = append(steps, issue(sprint, "sprint-cover", 1239, "63.160.0.0/12-13"))
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	return b.w, nil
}

// SyntheticConfig sizes a synthetic deployment.
type SyntheticConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// RIRs is the number of top-level registries (default 5).
	RIRs int
	// ISPsPerRIR is the number of mid-level authorities per RIR.
	ISPsPerRIR int
	// ROAsPerISP is the number of ROAs each ISP issues directly.
	ROAsPerISP int
	// CustomersPerISP adds third-level authorities with one ROA each,
	// exercising deeper hierarchies.
	CustomersPerISP int
	// Clock is the shared time source (default: HotNets '13 epoch).
	Clock func() time.Time
}

// ProductionSized returns the configuration matching the paper's
// footnote 4: "today's production RPKI deployment ... about 1200-1400
// ROAs". 5 RIRs × 13 ISPs × (10 ROAs + 10 customers × 1 ROA) = 1300 ROAs.
func ProductionSized(seed int64) SyntheticConfig {
	return SyntheticConfig{
		Seed:            seed,
		RIRs:            5,
		ISPsPerRIR:      13,
		ROAsPerISP:      10,
		CustomersPerISP: 10,
	}
}

// FullDeploymentSized returns a deployment an order of magnitude beyond
// production (5 RIRs × 50 ISPs × (10 ROAs + 40 customers) = 12,500 ROAs).
// The paper projects full deployment at 100× production; this tier is the
// largest that builds in seconds with real per-object crypto, and scaling
// behavior is already visible at 10×.
func FullDeploymentSized(seed int64) SyntheticConfig {
	return SyntheticConfig{
		Seed:            seed,
		RIRs:            5,
		ISPsPerRIR:      50,
		ROAsPerISP:      10,
		CustomersPerISP: 40,
	}
}

// Synthetic builds a randomized deployment of the given size. Address
// space is carved deterministically: RIR r gets (8+r).0.0.0/8, each ISP a
// /16 within it, each customer a /24 within its ISP. Generation uses the
// authorities' bulk mode so manifests and CRLs are signed once per
// publication point rather than once per object.
func Synthetic(cfg SyntheticConfig) (*World, error) {
	if cfg.RIRs == 0 {
		cfg.RIRs = 5
	}
	if cfg.ISPsPerRIR == 0 {
		cfg.ISPsPerRIR = 4
	}
	if cfg.ROAsPerISP == 0 {
		cfg.ROAsPerISP = 4
	}
	if cfg.RIRs > 60 {
		return nil, fmt.Errorf("modelgen: too many RIRs (%d)", cfg.RIRs)
	}
	// Bounds follow the deterministic address-carving scheme below: ISPs
	// occupy the second octet, ROA blocks the third (16 per ISP), and
	// customers the 160..250 range of the third octet.
	if cfg.ISPsPerRIR > 250 || cfg.CustomersPerISP > 90 || cfg.ROAsPerISP > 10 {
		return nil, fmt.Errorf("modelgen: per-level fanout too large")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := newBuilder(cfg.Clock)
	ta, err := b.trustAnchor("iana", "0.0.0.0/0")
	if err != nil {
		return nil, err
	}
	asnCounter := ipres.ASN(64496)
	nextASN := func() ipres.ASN {
		asnCounter++
		return asnCounter
	}
	ta.BeginBulk()
	defer func() { _ = ta.EndBulk() }()
	for r := 0; r < cfg.RIRs; r++ {
		rirName := fmt.Sprintf("rir-%d", r)
		rirPrefix := fmt.Sprintf("%d.0.0.0/8", 8+r)
		rir, err := b.child(ta, rirName, rirPrefix)
		if err != nil {
			return nil, err
		}
		rir.BeginBulk()
		for i := 0; i < cfg.ISPsPerRIR; i++ {
			ispName := fmt.Sprintf("%s-isp-%d", rirName, i)
			ispPrefix := fmt.Sprintf("%d.%d.0.0/16", 8+r, i)
			isp, err := b.child(rir, ispName, ispPrefix)
			if err != nil {
				return nil, err
			}
			isp.BeginBulk()
			ispASN := nextASN()
			for k := 0; k < cfg.ROAsPerISP; k++ {
				// Each ROA authorizes a /20 slice; some with maxLength 24
				// (the "up to 24" pattern), some exact.
				block := fmt.Sprintf("%d.%d.%d.0/20", 8+r, i, k*16)
				maxLen := ""
				if rng.Intn(2) == 0 {
					maxLen = "-24"
				}
				name := fmt.Sprintf("%s-roa-%d", ispName, k)
				if _, err := isp.IssueROA(name, ispASN, roa.MustParsePrefix(block+maxLen)); err != nil {
					return nil, err
				}
			}
			for c := 0; c < cfg.CustomersPerISP; c++ {
				custName := fmt.Sprintf("%s-cust-%d", ispName, c)
				custPrefix := fmt.Sprintf("%d.%d.%d.0/24", 8+r, i, 160+c)
				cust, err := b.child(isp, custName, custPrefix)
				if err != nil {
					return nil, err
				}
				if _, err := cust.IssueROA(custName+"-roa", nextASN(), roa.MustParsePrefix(custPrefix)); err != nil {
					return nil, err
				}
			}
			if err := isp.EndBulk(); err != nil {
				return nil, err
			}
		}
		if err := rir.EndBulk(); err != nil {
			return nil, err
		}
	}
	return b.w, nil
}

// CountROAs returns the number of ROAs across the world's authorities.
func (w *World) CountROAs() int {
	n := 0
	for _, a := range w.Authorities {
		n += len(a.ROAs())
	}
	return n
}
