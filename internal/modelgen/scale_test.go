package modelgen

import (
	"bytes"
	"context"
	"crypto/sha256"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/rp"
)

// dirDigest hashes every file in dir (names and contents, sorted), so two
// generated worlds compare equal iff they are byte-identical.
func dirDigest(t *testing.T, dir string) [32]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		content, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		h.Write([]byte(name))
		h.Write(content)
	}
	var sum [32]byte
	h.Sum(sum[:0])
	return sum
}

func TestGenerateScaledDeterministic(t *testing.T) {
	const roas = 400
	gen := func(seed int64, workers int) (string, [32]byte) {
		dir := t.TempDir()
		w, err := GenerateScaled(ScaleConfig{Seed: seed, ROAs: roas, Dir: dir, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if w.Meta.ROAs != roas {
			t.Fatalf("meta ROAs = %d, want %d", w.Meta.ROAs, roas)
		}
		return dir, dirDigest(t, dir)
	}
	_, d1 := gen(7, 1)
	_, d2 := gen(7, 4)
	if d1 != d2 {
		t.Fatal("same seed produced different worlds (workers 1 vs 4)")
	}
	_, d3 := gen(8, 1)
	if d1 == d3 {
		t.Fatal("different seeds produced identical worlds")
	}
}

func TestScaledWorldReopens(t *testing.T) {
	dir := t.TempDir()
	w, err := GenerateScaled(ScaleConfig{Seed: 1, ROAs: 200, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	re, err := OpenScaled(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.Meta != w.Meta {
		t.Fatalf("reopened meta %+v != generated %+v", re.Meta, w.Meta)
	}
	a1, err := w.Anchor()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := re.Anchor()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a1.CertDER, a2.CertDER) || a1.URI != a2.URI {
		t.Fatal("anchor changed across reopen")
	}
}

// validateScaled fully validates a generated world and asserts a clean run.
func validateScaled(t *testing.T, w *ScaledWorld, workers int) *rp.Result {
	t.Helper()
	v := rp.New(rp.Config{
		Fetcher: w.Fetcher(),
		Clock:   w.Clock(),
		Workers: workers,
	}, mustAnchor(t, w))
	res, err := v.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.Diagnostics {
		if i < 5 {
			t.Errorf("diagnostic: %v", d)
		}
	}
	if len(res.Diagnostics) > 0 {
		t.Fatalf("%d diagnostics on a freshly generated world", len(res.Diagnostics))
	}
	return res
}

func mustAnchor(t *testing.T, w *ScaledWorld) rp.TrustAnchor {
	t.Helper()
	a, err := w.Anchor()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestScaledWorldValidatesSmall(t *testing.T) {
	const roas = 300
	dir := t.TempDir()
	w, err := GenerateScaled(ScaleConfig{Seed: 3, ROAs: roas, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res := validateScaled(t, w, 4)
	if res.ROAsAccepted != roas {
		t.Fatalf("ROAsAccepted = %d, want %d", res.ROAsAccepted, roas)
	}
	if len(res.VRPs) != roas {
		t.Fatalf("VRPs = %d, want %d", len(res.VRPs), roas)
	}
	if res.PubPointsVisited != w.Meta.Modules {
		t.Fatalf("visited %d publication points, world has %d", res.PubPointsVisited, w.Meta.Modules)
	}
}

// TestScaledWorldValidates10k is the 10k-tier acceptance gate: a seeded
// Internet-scale hierarchy — thousands of publication points, Zipf fan-out,
// deep chains — validates cleanly with every ROA accepted.
func TestScaledWorldValidates10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k tier generation in -short mode")
	}
	dir := t.TempDir()
	w, err := GenerateScaled(ScaleConfig{Seed: 10, ROAs: Tier10k, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if w.Meta.CAs < 1000 {
		t.Fatalf("10k tier produced only %d CAs, want >= 1000 publication points", w.Meta.CAs)
	}
	res := validateScaled(t, w, 4)
	if res.ROAsAccepted != Tier10k {
		t.Fatalf("ROAsAccepted = %d, want %d", res.ROAsAccepted, Tier10k)
	}
}
