package roa

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/cms"
	"repro/internal/ipres"
)

func TestUnmarshalContentRejectsOversized(t *testing.T) {
	_, err := UnmarshalContent(make([]byte, cms.MaxObjectSize+1))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized eContent: err = %v", err)
	}
	if _, err := ParseSigned(make([]byte, cms.MaxObjectSize+1)); err == nil {
		t.Fatal("oversized signed object accepted")
	}
}

func TestUnmarshalContentRejectsPrefixFlood(t *testing.T) {
	// Build the attestation directly (bypassing New's canonicalization) with
	// one more prefix than the decoder admits.
	r := &ROA{ASID: 1}
	for i := 0; i <= MaxPrefixes; i++ {
		p := ipres.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", (i>>8)&0xFF, i&0xFF))
		r.Prefixes = append(r.Prefixes, Prefix{Prefix: p, MaxLength: 24})
	}
	der, err := r.MarshalContent()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalContent(der); err == nil || !strings.Contains(err.Error(), "prefixes") {
		t.Fatalf("prefix flood: err = %v", err)
	}
}
