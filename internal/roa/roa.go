// Package roa implements Route Origin Authorizations (RFC 6482): the RPKI
// signed object through which the holder of an IP prefix authorizes one AS
// to originate that prefix — and its subprefixes up to a stated maximum
// length — in BGP.
//
// A ROA's semantics for route validation are deliberately asymmetric (the
// paper's Section 4): issuing a ROA protects the authorized route but makes
// every *covered* route without its own matching ROA invalid. That is what
// turns a whacked or missing ROA into an outage rather than a fallback to
// "unknown".
package roa

import (
	"encoding/asn1"
	"fmt"
	"sort"
	"strings"

	"repro/internal/cert"
	"repro/internal/cms"
	"repro/internal/ipres"
	"repro/internal/rfc3779"
)

// MaxPrefixes bounds the number of (prefix, maxLength) pairs a decoded ROA
// may carry across all address families. Real ROAs hold a handful; 16384
// stops a malicious CA from packing one signed object with millions of
// entries that each fan out into VRP processing downstream.
const MaxPrefixes = 16_384

// Prefix is one authorized prefix with its maximum length: the origin AS
// may announce any subprefix of Prefix whose length is at most MaxLength.
type Prefix struct {
	Prefix    ipres.Prefix
	MaxLength int
}

// String renders the paper's "63.160.0.0/12-13" notation (the max length is
// omitted when it equals the prefix length).
func (p Prefix) String() string {
	if p.MaxLength == p.Prefix.Bits() {
		return p.Prefix.String()
	}
	return fmt.Sprintf("%s-%d", p.Prefix, p.MaxLength)
}

// ParsePrefix parses "prefix" or "prefix-maxlen" notation.
func ParsePrefix(s string) (Prefix, error) {
	base := s
	maxLen := -1
	if i := strings.LastIndexByte(s, '-'); i > strings.LastIndexByte(s, '/') {
		base = s[:i]
		if _, err := fmt.Sscanf(s[i+1:], "%d", &maxLen); err != nil {
			return Prefix{}, fmt.Errorf("roa: bad max length in %q", s)
		}
	}
	p, err := ipres.ParsePrefix(base)
	if err != nil {
		return Prefix{}, err
	}
	if maxLen < 0 {
		maxLen = p.Bits()
	}
	if maxLen < p.Bits() || maxLen > p.Family().Width() {
		return Prefix{}, fmt.Errorf("roa: max length %d out of range for %v", maxLen, p)
	}
	return Prefix{Prefix: p, MaxLength: maxLen}, nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ROA is the decoded content of a Route Origin Authorization.
type ROA struct {
	// ASID is the authorized origin AS.
	ASID ipres.ASN
	// Prefixes are the authorized prefixes with their max lengths.
	Prefixes []Prefix
}

// New builds a ROA, validating and canonicalizing its prefixes.
func New(asid ipres.ASN, prefixes ...Prefix) (*ROA, error) {
	if len(prefixes) == 0 {
		return nil, fmt.Errorf("roa: no prefixes")
	}
	ps := append([]Prefix(nil), prefixes...)
	for _, p := range ps {
		if !p.Prefix.IsValid() {
			return nil, fmt.Errorf("roa: invalid prefix")
		}
		if p.MaxLength < p.Prefix.Bits() || p.MaxLength > p.Prefix.Family().Width() {
			return nil, fmt.Errorf("roa: max length %d out of range for %v", p.MaxLength, p.Prefix)
		}
	}
	sort.Slice(ps, func(i, j int) bool {
		if c := ps[i].Prefix.Cmp(ps[j].Prefix); c != 0 {
			return c < 0
		}
		return ps[i].MaxLength < ps[j].MaxLength
	})
	return &ROA{ASID: asid, Prefixes: ps}, nil
}

// MustNew is New that panics on error.
func MustNew(asid ipres.ASN, prefixes ...Prefix) *ROA {
	r, err := New(asid, prefixes...)
	if err != nil {
		panic(err)
	}
	return r
}

// ResourceSet returns the IP resources the ROA attests over; the signing EE
// certificate must hold (at least) these resources for the ROA to be valid.
func (r *ROA) ResourceSet() ipres.Set {
	return ipres.SetOfPrefixes(r.prefixList()...)
}

func (r *ROA) prefixList() []ipres.Prefix {
	out := make([]ipres.Prefix, len(r.Prefixes))
	for i, p := range r.Prefixes {
		out[i] = p.Prefix
	}
	return out
}

// String renders the ROA in the paper's "(prefix-maxlen, ASN)" style.
func (r *ROA) String() string {
	parts := make([]string, len(r.Prefixes))
	for i, p := range r.Prefixes {
		parts[i] = p.String()
	}
	return fmt.Sprintf("(%s, %s)", strings.Join(parts, " "), r.ASID)
}

// ASN.1 structures per RFC 6482.
type roaIPAddress struct {
	Address   asn1.BitString
	MaxLength int `asn1:"optional,default:-1"`
}

type roaIPAddressFamily struct {
	AddressFamily []byte
	Addresses     []roaIPAddress
}

type routeOriginAttestation struct {
	ASID         int64
	IPAddrBlocks []roaIPAddressFamily
}

// MarshalContent DER-encodes the ROA eContent.
func (r *ROA) MarshalContent() ([]byte, error) {
	byFam := map[ipres.Family][]roaIPAddress{}
	var famOrder []ipres.Family
	for _, p := range r.Prefixes {
		f := p.Prefix.Family()
		if _, seen := byFam[f]; !seen {
			famOrder = append(famOrder, f)
		}
		entry := roaIPAddress{Address: rfc3779.PrefixToBitString(p.Prefix), MaxLength: p.MaxLength}
		byFam[f] = append(byFam[f], entry)
	}
	sort.Slice(famOrder, func(i, j int) bool { return famOrder[i] < famOrder[j] })
	var fams []roaIPAddressFamily
	for _, f := range famOrder {
		fams = append(fams, roaIPAddressFamily{
			AddressFamily: []byte{0, byte(f)},
			Addresses:     byFam[f],
		})
	}
	return asn1.Marshal(routeOriginAttestation{ASID: int64(r.ASID), IPAddrBlocks: fams})
}

// UnmarshalContent decodes a ROA eContent.
func UnmarshalContent(der []byte) (*ROA, error) {
	if len(der) > cms.MaxObjectSize {
		return nil, fmt.Errorf("roa: eContent %d bytes exceeds limit %d", len(der), cms.MaxObjectSize)
	}
	var raw routeOriginAttestation
	rest, err := asn1.Unmarshal(der, &raw)
	if err != nil {
		return nil, fmt.Errorf("roa: bad eContent: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("roa: trailing bytes in eContent")
	}
	if raw.ASID < 0 || raw.ASID > int64(^uint32(0)) {
		return nil, fmt.Errorf("roa: ASID %d out of range", raw.ASID)
	}
	var prefixes []Prefix
	for _, fam := range raw.IPAddrBlocks {
		if len(fam.AddressFamily) < 2 {
			return nil, fmt.Errorf("roa: short addressFamily")
		}
		afi := ipres.Family(uint16(fam.AddressFamily[0])<<8 | uint16(fam.AddressFamily[1]))
		if !afi.Valid() {
			return nil, fmt.Errorf("roa: unsupported AFI %d", afi)
		}
		for _, a := range fam.Addresses {
			if len(prefixes) >= MaxPrefixes {
				return nil, fmt.Errorf("roa: more than %d prefixes", MaxPrefixes)
			}
			p, err := rfc3779.PrefixFromBitString(afi, a.Address)
			if err != nil {
				return nil, err
			}
			maxLen := a.MaxLength
			if maxLen == -1 {
				maxLen = p.Bits()
			}
			if maxLen < p.Bits() || maxLen > afi.Width() {
				return nil, fmt.Errorf("roa: max length %d out of range for %v", maxLen, p)
			}
			prefixes = append(prefixes, Prefix{Prefix: p, MaxLength: maxLen})
		}
	}
	return New(ipres.ASN(raw.ASID), prefixes...)
}

// Sign wraps the ROA in a CMS envelope signed by the EE key.
func (r *ROA) Sign(ee *cert.ResourceCert, eeKey *cert.KeyPair) ([]byte, error) {
	content, err := r.MarshalContent()
	if err != nil {
		return nil, err
	}
	return cms.Sign(cms.OIDContentTypeROA, content, ee, eeKey)
}

// Signed is a parsed, signature-verified ROA together with its EE
// certificate (whose chain the relying party must still validate).
type Signed struct {
	ROA *ROA
	EE  *cert.ResourceCert
	Raw []byte
}

// ParseSigned decodes and signature-verifies a CMS-wrapped ROA, then checks
// the RFC 6482 requirement that the EE certificate's resources cover the
// ROA's prefixes (when the EE carries explicit resources; inherit is
// resolved later during path validation).
func ParseSigned(der []byte) (*Signed, error) {
	if len(der) > cms.MaxObjectSize {
		return nil, fmt.Errorf("roa: object %d bytes exceeds limit %d", len(der), cms.MaxObjectSize)
	}
	obj, err := cms.Parse(der)
	if err != nil {
		return nil, err
	}
	if !obj.ContentType.Equal(cms.OIDContentTypeROA) {
		return nil, fmt.Errorf("roa: content type %v is not a ROA", obj.ContentType)
	}
	r, err := UnmarshalContent(obj.Content)
	if err != nil {
		return nil, err
	}
	if !obj.EE.IPBlocks.HasInherit() {
		if !obj.EE.IPSet().Covers(r.ResourceSet()) {
			return nil, fmt.Errorf("roa: EE certificate resources %v do not cover ROA %v", obj.EE.IPSet(), r)
		}
	}
	return &Signed{ROA: r, EE: obj.EE, Raw: der}, nil
}
