package roa

import (
	"testing"

	"repro/internal/ipres"
)

// FuzzParseROA drives the ROA eContent decoder and the CMS-wrapped path with
// arbitrary bytes. Accepted ROAs must respect the prefix-count limit and
// carry canonically valid prefixes (the invariants New enforces).
func FuzzParseROA(f *testing.F) {
	r := MustNew(65000,
		MustParsePrefix("63.160.0.0/12-13"),
		MustParsePrefix("2001:db8::/32"),
	)
	seed, err := r.MarshalContent()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{0x30, 0x03, 0x02, 0x01, 0x00})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := UnmarshalContent(data); err == nil {
			if len(r.Prefixes) > MaxPrefixes {
				t.Fatalf("accepted %d prefixes over limit", len(r.Prefixes))
			}
			for _, p := range r.Prefixes {
				if !p.Prefix.IsValid() {
					t.Fatalf("accepted invalid prefix %v", p)
				}
				if p.MaxLength < p.Prefix.Bits() || p.MaxLength > p.Prefix.Family().Width() {
					t.Fatalf("accepted out-of-range max length %v", p)
				}
			}
			if r.ASID > ipres.ASN(^uint32(0)) {
				t.Fatalf("accepted out-of-range ASID %d", r.ASID)
			}
		}
		_, _ = ParseSigned(data)
	})
}
