package roa

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cert"
	"repro/internal/ipres"
)

var testEpoch = time.Date(2013, 11, 21, 0, 0, 0, 0, time.UTC)

func TestParsePrefixNotation(t *testing.T) {
	p := MustParsePrefix("63.160.0.0/12-13")
	if p.Prefix.String() != "63.160.0.0/12" || p.MaxLength != 13 {
		t.Errorf("got %+v", p)
	}
	q := MustParsePrefix("63.174.16.0/20")
	if q.MaxLength != 20 {
		t.Errorf("default max length = %d", q.MaxLength)
	}
	if q.String() != "63.174.16.0/20" || p.String() != "63.160.0.0/12-13" {
		t.Error("string round-trip wrong")
	}
	if _, err := ParsePrefix("63.160.0.0/12-11"); err == nil {
		t.Error("max length below prefix length must fail")
	}
	if _, err := ParsePrefix("63.160.0.0/12-33"); err == nil {
		t.Error("max length beyond width must fail")
	}
	if _, err := ParsePrefix("garbage"); err == nil {
		t.Error("garbage must fail")
	}
}

func TestROAContentRoundTrip(t *testing.T) {
	r := MustNew(17054, MustParsePrefix("63.174.16.0/20"))
	der, err := r.MarshalContent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalContent(der)
	if err != nil {
		t.Fatal(err)
	}
	if back.ASID != 17054 || len(back.Prefixes) != 1 || back.Prefixes[0].String() != "63.174.16.0/20" {
		t.Errorf("got %v", back)
	}
}

func TestROAContentRoundTripMaxLenAndFamilies(t *testing.T) {
	r := MustNew(1239,
		MustParsePrefix("63.160.0.0/12-24"),
		MustParsePrefix("208.0.0.0/11-13"),
		MustParsePrefix("2001:db8::/32-48"),
	)
	der, err := r.MarshalContent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalContent(der)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Prefixes) != 3 {
		t.Fatalf("got %v", back)
	}
	if back.String() != r.String() {
		t.Errorf("round trip changed ROA: %v vs %v", back, r)
	}
}

func TestROAQuickRoundTrip(t *testing.T) {
	f := func(asn uint32, v uint32, bitsRaw, extraRaw uint8) bool {
		bits := int(bitsRaw % 33)
		maxLen := bits + int(extraRaw)%(33-bits)
		p, err := ipres.PrefixFrom(ipres.AddrFromUint32(v), bits)
		if err != nil {
			return false
		}
		r, err := New(ipres.ASN(asn), Prefix{Prefix: p, MaxLength: maxLen})
		if err != nil {
			return false
		}
		der, err := r.MarshalContent()
		if err != nil {
			return false
		}
		back, err := UnmarshalContent(der)
		if err != nil {
			return false
		}
		return back.ASID == r.ASID && len(back.Prefixes) == 1 &&
			back.Prefixes[0].Prefix == p && back.Prefixes[0].MaxLength == maxLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestROAValidation(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("empty ROA must fail")
	}
	if _, err := New(1, Prefix{Prefix: ipres.MustParsePrefix("10.0.0.0/8"), MaxLength: 7}); err == nil {
		t.Error("maxLength < bits must fail")
	}
	if _, err := New(1, Prefix{Prefix: ipres.MustParsePrefix("10.0.0.0/8"), MaxLength: 33}); err == nil {
		t.Error("maxLength > width must fail")
	}
}

func TestROAResourceSet(t *testing.T) {
	r := MustNew(7341, MustParsePrefix("63.174.16.0/22"))
	if !r.ResourceSet().Equal(ipres.MustParseSet("63.174.16.0/22")) {
		t.Errorf("got %v", r.ResourceSet())
	}
}

func TestROAStringMatchesPaperNotation(t *testing.T) {
	r := MustNew(1239, MustParsePrefix("63.160.0.0/12-13"))
	if r.String() != "(63.160.0.0/12-13, AS1239)" {
		t.Errorf("got %q", r.String())
	}
}

func newCAandEE(t *testing.T, caRes, eeRes string) (*cert.ResourceCert, *cert.KeyPair, *cert.ResourceCert, *cert.KeyPair) {
	t.Helper()
	caKey := cert.MustGenerateKeyPair()
	ca, err := cert.Issue(cert.Template{
		Subject: "CA", Serial: 1,
		NotBefore: testEpoch.Add(-time.Hour), NotAfter: testEpoch.Add(24 * time.Hour),
		Resources: ipres.MustParseSet(caRes), CA: true,
	}, nil, caKey, caKey)
	if err != nil {
		t.Fatal(err)
	}
	eeKey := cert.MustGenerateKeyPair()
	ee, err := cert.Issue(cert.Template{
		Subject: "ee", Serial: 2,
		NotBefore: testEpoch.Add(-time.Hour), NotAfter: testEpoch.Add(24 * time.Hour),
		Resources: ipres.MustParseSet(eeRes),
	}, ca, caKey, eeKey)
	if err != nil {
		t.Fatal(err)
	}
	return ca, caKey, ee, eeKey
}

func TestSignedROARoundTrip(t *testing.T) {
	_, _, ee, eeKey := newCAandEE(t, "63.160.0.0/12", "63.174.16.0/20")
	r := MustNew(17054, MustParsePrefix("63.174.16.0/20"))
	der, err := r.Sign(ee, eeKey)
	if err != nil {
		t.Fatal(err)
	}
	signed, err := ParseSigned(der)
	if err != nil {
		t.Fatal(err)
	}
	if signed.ROA.String() != r.String() {
		t.Errorf("got %v", signed.ROA)
	}
	if signed.EE.Subject() != "ee" {
		t.Errorf("EE = %q", signed.EE.Subject())
	}
}

func TestSignedROARejectsEEUndercoverage(t *testing.T) {
	// EE holds /22 but the ROA claims /20: must be rejected.
	_, _, ee, eeKey := newCAandEE(t, "63.160.0.0/12", "63.174.16.0/22")
	r := MustNew(17054, MustParsePrefix("63.174.16.0/20"))
	der, err := r.Sign(ee, eeKey)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ParseSigned(der)
	if err == nil || !strings.Contains(err.Error(), "do not cover") {
		t.Errorf("want coverage error, got %v", err)
	}
}

func TestSignedROARejectsCorruption(t *testing.T) {
	_, _, ee, eeKey := newCAandEE(t, "63.160.0.0/12", "63.174.16.0/20")
	r := MustNew(17054, MustParsePrefix("63.174.16.0/20"))
	der, err := r.Sign(ee, eeKey)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupting the trailing signature bytes must always be detected.
	bad := append([]byte(nil), der...)
	bad[len(bad)-1] ^= 0x01
	if _, err := ParseSigned(bad); err == nil {
		t.Error("corrupted ROA must fail to parse — this is Side Effect 6's premise")
	}
	// A flip elsewhere must never yield a *different* ROA than was signed:
	// it either fails to parse here, fails chain validation later (flips
	// inside the embedded EE certificate), or leaves the ROA intact.
	for i := 0; i < len(der); i += 11 {
		mutated := append([]byte(nil), der...)
		mutated[i] ^= 0x80
		if signed, err := ParseSigned(mutated); err == nil {
			if signed.ROA.String() != r.String() {
				t.Fatalf("byte %d: altered ROA accepted: %v", i, signed.ROA)
			}
		}
	}
}
