package rp

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/ipres"
	"repro/internal/repo"
	"repro/internal/roa"
	"repro/internal/rov"
)

var testEpoch = time.Date(2013, 11, 21, 0, 0, 0, 0, time.UTC)

func clock() time.Time { return testEpoch }

// buildFigure2 constructs the paper's model hierarchy:
// TA(ARIN) → Sprint → {ETB, Continental Broadband}, with the ROAs of
// Figure 2. Returns the TA and the stores by module name.
func buildFigure2(t *testing.T) (*ca.Authority, *ca.Authority, *ca.Authority, StoreFetcher) {
	t.Helper()
	cfg := ca.Config{Clock: clock}
	stores := StoreFetcher{}

	newStore := func(module string) (*repo.Store, repo.URI) {
		s := repo.NewStore()
		stores[module] = s
		return s, repo.URI{Host: module + ".example:8873", Module: module}
	}

	taStore, taURI := newStore("arin")
	arin, err := ca.NewTrustAnchor("arin", ipres.MustParseSet("63.0.0.0/8"), taStore, taURI, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sprintStore, sprintURI := newStore("sprint")
	sprint, err := arin.CreateChild("sprint", ipres.MustParseSet("63.160.0.0/12"), sprintStore, sprintURI)
	if err != nil {
		t.Fatal(err)
	}
	etbStore, etbURI := newStore("etb")
	etb, err := sprint.CreateChild("etb", ipres.MustParseSet("63.161.0.0/16"), etbStore, etbURI)
	if err != nil {
		t.Fatal(err)
	}
	contStore, contURI := newStore("continental")
	continental, err := sprint.CreateChild("continental", ipres.MustParseSet("63.174.16.0/20"), contStore, contURI)
	if err != nil {
		t.Fatal(err)
	}

	// Sprint's two max-length-24 ROAs.
	mustROA(t, sprint, "sprint-168", 1239, "63.168.0.0/16-24")
	mustROA(t, sprint, "sprint-170", 1239, "63.170.0.0/16-24")
	// ETB's single-prefix ROA.
	mustROA(t, etb, "etb", 19429, "63.161.0.0/16")
	// Continental Broadband's five ROAs.
	mustROA(t, continental, "cont-20", 17054, "63.174.16.0/20")
	mustROA(t, continental, "cont-22", 7341, "63.174.16.0/22")
	mustROA(t, continental, "cont-20-24", 26821, "63.174.20.0/22-24")
	mustROA(t, continental, "cont-25", 17054, "63.174.25.0/24")
	mustROA(t, continental, "cont-26", 17054, "63.174.26.0/23")

	_ = etb
	return arin, sprint, continental, stores
}

func mustROA(t *testing.T, a *ca.Authority, name string, asn ipres.ASN, prefix string) {
	t.Helper()
	if _, err := a.IssueROA(name, asn, roa.MustParsePrefix(prefix)); err != nil {
		t.Fatal(err)
	}
}

func newRP(arin *ca.Authority, stores StoreFetcher, policy MissingPolicy) *RelyingParty {
	return New(Config{
		Fetcher: stores,
		Clock:   clock,
		Policy:  policy,
	}, TrustAnchor{CertDER: arin.Cert.Raw, URI: arin.URI})
}

func TestSyncCleanHierarchy(t *testing.T) {
	arin, _, _, stores := buildFigure2(t)
	result, err := newRP(arin, stores, BestEffort).Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if result.Incomplete() {
		t.Fatalf("clean sync should be complete; diags: %v", result.Diagnostics)
	}
	if result.ROAsAccepted != 8 {
		t.Errorf("ROAs accepted = %d, want 8", result.ROAsAccepted)
	}
	if result.CertsAccepted != 4 { // arin, sprint, etb, continental
		t.Errorf("certs accepted = %d, want 4", result.CertsAccepted)
	}
	ix := result.Index()
	if got := ix.State(rov.Route{Prefix: ipres.MustParsePrefix("63.174.16.0/20"), Origin: 17054}); got != rov.Valid {
		t.Errorf("Continental's route should be valid, got %v", got)
	}
	if got := ix.State(rov.Route{Prefix: ipres.MustParsePrefix("63.160.0.0/12"), Origin: 1239}); got != rov.Unknown {
		t.Errorf("/12 should be unknown, got %v", got)
	}
}

func TestSyncMissingROATurnsRouteInvalid(t *testing.T) {
	arin, _, continental, stores := buildFigure2(t)
	// The authority deletes its own ROA (stealthy revocation). The
	// manifest is regenerated to match — the repository operator is the
	// attacker, so no hash mismatch is visible.
	if err := continental.DeleteROA("cont-22"); err != nil {
		t.Fatal(err)
	}
	result, err := newRP(arin, stores, BestEffort).Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if result.Incomplete() {
		t.Fatalf("stealthy deletion must produce NO diagnostics, got %v", result.Diagnostics)
	}
	ix := result.Index()
	r := rov.Route{Prefix: ipres.MustParsePrefix("63.174.16.0/22"), Origin: 7341}
	if got := ix.State(r); got != rov.Invalid {
		t.Errorf("whacked route should be invalid (covered by /20 ROA), got %v", got)
	}
}

func TestSyncThirdPartyDropIsDetected(t *testing.T) {
	arin, _, _, stores := buildFigure2(t)
	// A third party (fault, not the authority) removes the object without
	// fixing the manifest: the relying party must notice.
	stores["continental"].Delete("cont-22.roa")
	result, err := newRP(arin, stores, BestEffort).Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !result.Incomplete() {
		t.Fatal("manifest mismatch must be diagnosed")
	}
	found := false
	for _, d := range result.Diagnostics {
		if d.Kind == DiagMissingObject && d.Object == "cont-22.roa" {
			found = true
		}
	}
	if !found {
		t.Errorf("want missing-object diagnostic, got %v", result.Diagnostics)
	}
}

func TestSyncCorruptObjectRejected(t *testing.T) {
	arin, _, _, stores := buildFigure2(t)
	raw, _ := stores["continental"].Get("cont-22.roa")
	raw[len(raw)-1] ^= 0xFF
	stores["continental"].Put("cont-22.roa", raw)
	result, err := newRP(arin, stores, BestEffort).Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !result.Incomplete() {
		t.Fatal("corruption must be diagnosed")
	}
	ix := result.Index()
	r := rov.Route{Prefix: ipres.MustParsePrefix("63.174.16.0/22"), Origin: 7341}
	if got := ix.State(r); got != rov.Invalid {
		t.Errorf("route backed by corrupt ROA should be invalid, got %v", got)
	}
}

func TestSyncDropPublicationPointPolicy(t *testing.T) {
	arin, _, _, stores := buildFigure2(t)
	stores["continental"].Delete("cont-22.roa") // manifest now inconsistent
	result, err := newRP(arin, stores, DropPublicationPoint).Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// ALL of Continental's ROAs must be gone, not just the missing one.
	ix := result.Index()
	for _, probe := range []rov.Route{
		{Prefix: ipres.MustParsePrefix("63.174.16.0/20"), Origin: 17054},
		{Prefix: ipres.MustParsePrefix("63.174.25.0/24"), Origin: 17054},
	} {
		if got := ix.State(probe); got == rov.Valid {
			t.Errorf("%v should not be valid after dropping the pub point", probe)
		}
	}
	// Sprint's and ETB's ROAs survive.
	if got := ix.State(rov.Route{Prefix: ipres.MustParsePrefix("63.168.0.0/16"), Origin: 1239}); got != rov.Valid {
		t.Errorf("sprint's ROA should survive, got %v", got)
	}
	dropped := false
	for _, d := range result.Diagnostics {
		if d.Kind == DiagDroppedPubPoint && d.Module == "continental" {
			dropped = true
		}
	}
	if !dropped {
		t.Error("want dropped-publication-point diagnostic")
	}
}

func TestSyncShrinkChildWhacksDescendantROA(t *testing.T) {
	arin, sprint, _, stores := buildFigure2(t)
	// Figure 3 / Side Effect 3: Sprint overwrites Continental's RC to
	// exclude 63.174.24.0/24 — but here the hole is chosen inside the /20
	// target ROA and outside all other Continental ROAs.
	newRes := ipres.MustParseSet("63.174.16.0-63.174.23.255, 63.174.25.0-63.174.31.255")
	if err := sprint.ShrinkChild("continental", newRes); err != nil {
		t.Fatal(err)
	}
	result, err := newRP(arin, stores, BestEffort).Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ix := result.Index()
	// The /20 ROA is whacked: its EE now overclaims relative to the RC.
	if got := ix.State(rov.Route{Prefix: ipres.MustParsePrefix("63.174.16.0/20"), Origin: 17054}); got == rov.Valid {
		t.Error("target ROA should be whacked")
	}
	// All other Continental ROAs survive: zero collateral damage.
	for _, probe := range []rov.Route{
		{Prefix: ipres.MustParsePrefix("63.174.16.0/22"), Origin: 7341},
		{Prefix: ipres.MustParsePrefix("63.174.25.0/24"), Origin: 17054},
		{Prefix: ipres.MustParsePrefix("63.174.26.0/23"), Origin: 17054},
		{Prefix: ipres.MustParsePrefix("63.174.21.0/24"), Origin: 26821},
	} {
		if got := ix.State(probe); got != rov.Valid {
			t.Errorf("collateral damage: %v = %v", probe, got)
		}
	}
	// The overclaiming EE shows up as a diagnostic, not silence.
	overclaim := false
	for _, d := range result.Diagnostics {
		if d.Kind == DiagInvalidObject && d.Object == "cont-20.roa" {
			overclaim = true
		}
	}
	if !overclaim {
		t.Errorf("want invalid-object diagnostic for cont-20.roa, got %v", result.Diagnostics)
	}
}

func TestSyncRevokedChildSubtreeGone(t *testing.T) {
	arin, sprint, _, stores := buildFigure2(t)
	if err := sprint.RevokeChild("continental"); err != nil {
		t.Fatal(err)
	}
	result, err := newRP(arin, stores, BestEffort).Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ix := result.Index()
	// The whole Continental subtree — all five ROAs — is whacked.
	for _, probe := range []rov.Route{
		{Prefix: ipres.MustParsePrefix("63.174.16.0/20"), Origin: 17054},
		{Prefix: ipres.MustParsePrefix("63.174.16.0/22"), Origin: 7341},
		{Prefix: ipres.MustParsePrefix("63.174.25.0/24"), Origin: 17054},
	} {
		if got := ix.State(probe); got == rov.Valid {
			t.Errorf("%v should be whacked after revocation", probe)
		}
	}
	if got := ix.State(rov.Route{Prefix: ipres.MustParsePrefix("63.168.0.0/16"), Origin: 1239}); got != rov.Valid {
		t.Error("sprint's own ROA must survive")
	}
}

func TestSyncExpiredCertificates(t *testing.T) {
	arin, _, _, stores := buildFigure2(t)
	late := func() time.Time { return testEpoch.Add(400 * 24 * time.Hour) }
	rpLate := New(Config{Fetcher: stores, Clock: late}, TrustAnchor{CertDER: arin.Cert.Raw, URI: arin.URI})
	result, err := rpLate.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(result.VRPs) != 0 {
		t.Errorf("expired hierarchy should yield no VRPs, got %d", len(result.VRPs))
	}
	if !result.Incomplete() {
		t.Error("expiry should be diagnosed")
	}
}

func TestSyncOverTCP(t *testing.T) {
	// End-to-end: hierarchy served over real rsynclite TCP servers.
	cfg := ca.Config{Clock: clock}
	srv := repo.NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	taStore := repo.NewStore()
	taURI := repo.URI{Host: addr, Module: "ta"}
	ta, err := ca.NewTrustAnchor("ta", ipres.MustParseSet("63.0.0.0/8"), taStore, taURI, cfg)
	if err != nil {
		t.Fatal(err)
	}
	childStore := repo.NewStore()
	childURI := repo.URI{Host: addr, Module: "child"}
	child, err := ta.CreateChild("child", ipres.MustParseSet("63.160.0.0/12"), childStore, childURI)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := child.IssueROA("r", 1239, roa.MustParsePrefix("63.160.0.0/12-13")); err != nil {
		t.Fatal(err)
	}
	srv.AddModule("ta", taStore, nil)
	srv.AddModule("child", childStore, nil)

	rpTCP := New(Config{
		Fetcher: &repo.Client{Timeout: 5 * time.Second},
		Clock:   clock,
	}, TrustAnchor{CertDER: ta.Cert.Raw, URI: taURI})
	result, err := rpTCP.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if result.Incomplete() {
		t.Fatalf("TCP sync incomplete: %v", result.Diagnostics)
	}
	if len(result.VRPs) != 1 || result.VRPs[0].ASN != 1239 {
		t.Errorf("VRPs = %v", result.VRPs)
	}
}

func TestSyncStaleManifest(t *testing.T) {
	// Manifests issued with a short window; validation later in time.
	cfg := ca.Config{Clock: clock, ManifestValidity: time.Hour}
	stores := StoreFetcher{}
	taStore := repo.NewStore()
	stores["ta"] = taStore
	ta, err := ca.NewTrustAnchor("ta", ipres.MustParseSet("63.0.0.0/8"), taStore, repo.URI{Host: "x:1", Module: "ta"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ta.IssueROA("r", 1239, roa.MustParsePrefix("63.160.0.0/12")); err != nil {
		t.Fatal(err)
	}
	later := func() time.Time { return testEpoch.Add(2 * time.Hour) }

	// Lenient: stale manifest diagnosed, ROA still used.
	rpLenient := New(Config{Fetcher: stores, Clock: later}, TrustAnchor{CertDER: ta.Cert.Raw, URI: ta.URI})
	result, err := rpLenient.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(result.VRPs) != 1 {
		t.Errorf("lenient: VRPs = %d, want 1", len(result.VRPs))
	}
	sawStale := false
	for _, d := range result.Diagnostics {
		if d.Kind == DiagStaleManifest {
			sawStale = true
		}
	}
	if !sawStale {
		t.Error("stale manifest should be diagnosed")
	}

	// Strict + drop: the whole publication point is discarded.
	rpStrict := New(Config{
		Fetcher: stores, Clock: later,
		Policy: DropPublicationPoint, RequireFreshManifest: true,
	}, TrustAnchor{CertDER: ta.Cert.Raw, URI: ta.URI})
	result, err = rpStrict.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(result.VRPs) != 0 {
		t.Errorf("strict: VRPs = %d, want 0", len(result.VRPs))
	}
}

func TestSyncNoFetcher(t *testing.T) {
	rpBad := New(Config{})
	if _, err := rpBad.Sync(context.Background()); err == nil {
		t.Error("nil fetcher must error")
	}
}

func TestDiagnosticStrings(t *testing.T) {
	kinds := []DiagKind{DiagFetchFailure, DiagMissingObject, DiagHashMismatch,
		DiagInvalidObject, DiagStaleManifest, DiagMissingManifest, DiagDroppedPubPoint}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", k)
		}
	}
}

func TestSyncDepthLimit(t *testing.T) {
	arin, _, _, stores := buildFigure2(t)
	shallow := New(Config{Fetcher: stores, Clock: clock, MaxDepth: 1},
		TrustAnchor{CertDER: arin.Cert.Raw, URI: arin.URI})
	result, err := shallow.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Depth 1 covers only ARIN's own pub point: sprint's subtree is cut.
	if result.ROAsAccepted != 0 {
		t.Errorf("depth-limited sync accepted %d ROAs", result.ROAsAccepted)
	}
	deep := false
	for _, d := range result.Diagnostics {
		if strings.Contains(d.Err.Error(), "too deep") {
			deep = true
		}
	}
	if !deep {
		t.Errorf("depth exhaustion should be diagnosed: %v", result.Diagnostics)
	}
}

func TestSyncBadTrustAnchor(t *testing.T) {
	_, _, _, stores := buildFigure2(t)
	relying := New(Config{Fetcher: stores, Clock: clock},
		TrustAnchor{CertDER: []byte("garbage"), URI: repo.URI{Host: "x:1", Module: "arin"}})
	result, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(result.VRPs) != 0 || !result.Incomplete() {
		t.Error("garbage TA should yield diagnostics and nothing else")
	}
}

func TestSyncMultipleTrustAnchors(t *testing.T) {
	arin, _, _, stores := buildFigure2(t)
	// Second, disjoint anchor.
	cfg := ca.Config{Clock: clock}
	ripeStore := repo.NewStore()
	stores["ripe"] = ripeStore
	ripe, err := ca.NewTrustAnchor("ripe", ipres.MustParseSet("192.0.0.0/8"), ripeStore,
		repo.URI{Host: "ripe.example:8873", Module: "ripe"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ripe.IssueROA("r", 64500, roa.MustParsePrefix("192.71.0.0/16")); err != nil {
		t.Fatal(err)
	}
	relying := New(Config{Fetcher: stores, Clock: clock},
		TrustAnchor{CertDER: arin.Cert.Raw, URI: arin.URI},
		TrustAnchor{CertDER: ripe.Cert.Raw, URI: ripe.URI})
	result, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if result.ROAsAccepted != 9 {
		t.Errorf("ROAs across two anchors = %d, want 9", result.ROAsAccepted)
	}
	ix := result.Index()
	if ix.State(rov.Route{Prefix: ipres.MustParsePrefix("192.71.0.0/16"), Origin: 64500}) != rov.Valid {
		t.Error("second anchor's ROA should validate")
	}
}

func TestResultIncompleteSemantics(t *testing.T) {
	r := &Result{}
	if r.Incomplete() {
		t.Error("empty result should be complete")
	}
	r.diag(DiagFetchFailure, "m", "", context.Canceled)
	if !r.Incomplete() {
		t.Error("any diagnostic means incomplete")
	}
}

func TestSyncIncrementalMode(t *testing.T) {
	// Over TCP with snapshot caching: the second sync must reuse every
	// unchanged object and only download what the authority republished.
	cfg := ca.Config{Clock: clock}
	srv := repo.NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	taStore := repo.NewStore()
	ta, err := ca.NewTrustAnchor("ta", ipres.MustParseSet("63.0.0.0/8"), taStore,
		repo.URI{Host: addr, Module: "ta"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ta.IssueROA("r1", 1239, roa.MustParsePrefix("63.160.0.0/12")); err != nil {
		t.Fatal(err)
	}
	srv.AddModule("ta", taStore, nil)

	relying := New(Config{
		Fetcher:        &repo.Client{Timeout: 5 * time.Second},
		Clock:          clock,
		CacheSnapshots: true,
	}, TrustAnchor{CertDER: ta.Cert.Raw, URI: repo.URI{Host: addr, Module: "ta"}})

	first, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if first.ObjectsDownloaded == 0 || first.ObjectsReused != 0 {
		t.Fatalf("cold sync: %+v", first)
	}
	second, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if second.ObjectsDownloaded != 0 || second.ObjectsReused != first.ObjectsDownloaded {
		t.Errorf("warm sync: downloaded=%d reused=%d", second.ObjectsDownloaded, second.ObjectsReused)
	}
	if len(second.VRPs) != 1 {
		t.Errorf("VRPs = %d", len(second.VRPs))
	}
	// One new ROA: the delta is the new object plus the re-signed
	// manifest and CRL — everything else is reused.
	if _, err := ta.IssueROA("r2", 1239, roa.MustParsePrefix("63.170.0.0/16")); err != nil {
		t.Fatal(err)
	}
	third, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if third.ObjectsDownloaded != 3 { // r2.roa + ta.mft + ta.crl
		t.Errorf("delta sync downloaded %d, want 3", third.ObjectsDownloaded)
	}
	if len(third.VRPs) != 2 {
		t.Errorf("VRPs = %d", len(third.VRPs))
	}
}
