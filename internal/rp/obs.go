package rp

// Observability wiring for the relying party: metric handles registered
// once at construction, per-sync trace spans on the injected clock, and
// flight-recorder events for every degraded outcome. All handles are
// nil-safe, so a RelyingParty built without Config.Obs pays one predictable
// branch per event and allocates nothing.

import (
	"repro/internal/cert"
	"repro/internal/ipres"
	"repro/internal/obs"
)

// diagEventKinds maps every diagnostic kind to the flight-recorder event
// kind that records it — the rpki-lint metricscoverage rule keeps this
// table exhaustive, so a future DiagKind cannot silently bypass the
// recorder. Fallback substitutions keep their dedicated event kinds; every
// other diagnostic records as a generic validation event.
var diagEventKinds = map[DiagKind]obs.EventKind{
	DiagFetchFailure:     obs.EventDiagnostic,
	DiagMissingObject:    obs.EventDiagnostic,
	DiagHashMismatch:     obs.EventDiagnostic,
	DiagInvalidObject:    obs.EventDiagnostic,
	DiagStaleManifest:    obs.EventDiagnostic,
	DiagMissingManifest:  obs.EventDiagnostic,
	DiagDroppedPubPoint:  obs.EventDiagnostic,
	DiagPointUnreachable: obs.EventDiagnostic,
	DiagStaleFallback:    obs.EventStaleFallback,
}

// rpMetrics holds the relying party's metric handles, registered once in
// New. A nil *rpMetrics (no Config.Obs) makes every update a no-op via the
// handles' nil-receiver safety.
type rpMetrics struct {
	syncs            *obs.Counter
	syncDuration     *obs.Histogram
	diagnostics      *obs.CounterVec
	pubPoints        *obs.Counter
	vrps             *obs.Gauge
	roas             *obs.Gauge
	certs            *obs.Gauge
	verifyHits       *obs.Counter
	verifyMisses     *obs.Counter
	modulesReused    *obs.Counter
	modulesRevalid   *obs.Counter
	reuseRejected    *obs.CounterVec
	staleFallbacks   *obs.Counter
	incrFallbacks    *obs.Counter
	objectsDown      *obs.Counter
	objectsReused    *obs.Counter
	inflightModules  *obs.Gauge
	lastSyncUnixtime *obs.Gauge
}

func newRPMetrics(hub *obs.Hub) *rpMetrics {
	r := hub.Registry()
	if r == nil {
		// No hub: a struct of nil handles, whose every method is a
		// nil-receiver no-op — callers never branch on "is obs on".
		return &rpMetrics{}
	}
	return &rpMetrics{
		syncs:        r.Counter("rpki_syncs_total", "Completed synchronization passes."),
		syncDuration: r.Histogram("rpki_sync_duration_seconds", "Wall time of one sync, by the injected clock.", obs.DurationBuckets()),
		diagnostics: r.CounterVec("rpki_sync_diagnostics_total",
			"Validation diagnostics emitted, by kind — nonzero means the validated cache may be incomplete (Side Effect 6).", "kind"),
		pubPoints:    r.Counter("rpki_pubpoints_visited_total", "Publication points fetched or attempted."),
		vrps:         r.Gauge("rpki_vrps", "VRPs in the validated cache after the last sync."),
		roas:         r.Gauge("rpki_roas_accepted", "ROAs accepted in the last sync."),
		certs:        r.Gauge("rpki_certs_accepted", "CA certificates accepted in the last sync."),
		verifyHits:   r.Counter("rpki_verify_cache_hits_total", "Persistent verification-cache hits."),
		verifyMisses: r.Counter("rpki_verify_cache_misses_total", "Persistent verification-cache misses."),
		modulesReused: r.Counter("rpki_modules_reused_total",
			"Publication points whose validated outputs were reused wholesale (provably unchanged)."),
		modulesRevalid: r.Counter("rpki_modules_revalidated_total", "Publication points fully re-validated."),
		reuseRejected: r.CounterVec("rpki_module_reuse_rejected_total",
			"Memoized module outputs refused by the unsafe-reuse guard, by reason.", "reason"),
		staleFallbacks: r.Counter("rpki_stale_fallbacks_total",
			"Publication points served from the last-known-good store."),
		incrFallbacks: r.Counter("rpki_incremental_fallbacks_total",
			"Incremental syncs replaced by a clean full fetch after a mid-protocol failure."),
		objectsDown:   r.Counter("rpki_objects_downloaded_total", "Objects transferred by incremental syncs."),
		objectsReused: r.Counter("rpki_objects_reused_total", "Objects kept from previous snapshots by incremental syncs."),
		inflightModules: r.Gauge("rpki_streaming_modules_inflight",
			"Streaming-mode module slots currently holding raw object bytes."),
		lastSyncUnixtime: r.Gauge("rpki_last_sync_unixtime", "Injected-clock time the last sync finished."),
	}
}

// recordResult folds one completed sync into the continuously-scraped
// series. Runs once per sync, off every hot path.
func (m *rpMetrics) recordResult(res *Result, seconds float64) {
	m.syncs.Inc()
	m.syncDuration.Observe(seconds)
	for _, d := range res.Diagnostics {
		m.diagnostics.With(d.Kind.String()).Inc()
	}
	m.pubPoints.Add(uint64(res.PubPointsVisited))
	m.vrps.Set(float64(len(res.VRPs)))
	m.roas.Set(float64(res.ROAsAccepted))
	m.certs.Set(float64(res.CertsAccepted))
	m.verifyHits.Add(uint64(res.VerifyCacheHits))
	m.verifyMisses.Add(uint64(res.VerifyCacheMisses))
	m.modulesReused.Add(uint64(res.ModulesReused))
	m.modulesRevalid.Add(uint64(res.ModulesRevalidated))
	m.staleFallbacks.Add(uint64(res.StaleFallbacks))
	m.incrFallbacks.Add(uint64(res.IncrementalFallbacks))
	m.objectsDown.Add(uint64(res.ObjectsDownloaded))
	m.objectsReused.Add(uint64(res.ObjectsReused))
}

// obsDiag records one diagnostic's flight-recorder event. Degraded path
// only: a clean sync never reaches it.
func (st *syncState) obsDiag(kind DiagKind, module, object string, err error) {
	rec := st.rp.cfg.Obs.Recorder()
	if rec == nil {
		return
	}
	detail := ""
	if err != nil {
		detail = err.Error()
	}
	if object != "" {
		detail = object + ": " + detail
	}
	rec.Record(diagEventKinds[kind], module, detail)
}

// reuseRejection explains why an existing memo entry could not be reused
// for this walk — the unsafe-reuse guard's verdict, recorded so operators
// can tell a benign byte change from an authority swap or epoch expiry.
func (st *syncState) reuseRejection(e *moduleEntry, authority *cert.ResourceCert, effective ipres.Set, module string) {
	var reason string
	switch {
	case !e.matches(authority, effective):
		reason = "authority-changed"
	case !e.within(st.rp.now()):
		reason = "epoch-expired"
	default:
		reason = "bytes-changed"
	}
	st.rp.met.reuseRejected.With(reason).Inc()
	st.rp.cfg.Obs.Recorder().Record(obs.EventReuseRejected, module, reason)
}
