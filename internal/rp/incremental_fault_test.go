package rp

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/repo"
	"repro/internal/roa"
	"repro/internal/rov"
)

// issueR2 publishes a second ROA under the child authority, changing the
// child module's bytes (new object + republished manifest and CRL).
func issueR2(t *testing.T, w *tcpWorld) {
	t.Helper()
	if _, err := w.child.IssueROA("r2", 1239, roa.MustParsePrefix("63.168.0.0/13")); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalTruncatedStatFallsBackToFullFetch: when the STAT protocol
// tears mid-line, the relying party must replace the incremental sync with a
// clean full fetch — and the result must reflect the server's CURRENT world,
// not the cached snapshot.
func TestIncrementalTruncatedStatFallsBackToFullFetch(t *testing.T) {
	w := buildTCPWorld(t)
	relying := New(Config{
		Fetcher:        resilientClient(1),
		Clock:          clock,
		CacheSnapshots: true,
	}, w.anchor)
	first, err := relying.Sync(context.Background())
	if err != nil || first.Incomplete() {
		t.Fatalf("cold sync: %v %v", err, first.Diagnostics)
	}

	// The world changes (a new ROA appears) AND the incremental protocol
	// breaks on an unchanged object: a stale reuse would miss the new ROA.
	issueR2(t, w)
	w.childFaults.TruncateStat("r.roa")
	second, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if second.Incomplete() {
		t.Fatalf("fallback sync should be clean, diags: %v", second.Diagnostics)
	}
	if second.IncrementalFallbacks != 1 {
		t.Errorf("IncrementalFallbacks = %d, want 1", second.IncrementalFallbacks)
	}
	if second.Retries == 0 {
		t.Error("the torn STAT should have been retried before falling back")
	}
	// The fallback must serve the new world: compare against a from-scratch
	// full validation (which never STATs, so the fault is invisible to it).
	fresh, err := New(Config{Fetcher: resilientClient(0), Clock: clock}, w.anchor).Sync(context.Background())
	if err != nil || fresh.Incomplete() {
		t.Fatalf("fresh baseline: %v %v", err, fresh.Diagnostics)
	}
	if !reflect.DeepEqual(second.VRPs, fresh.VRPs) {
		t.Errorf("fallback diverged from fresh validation:\n%v\n%v", second.VRPs, fresh.VRPs)
	}
	if len(second.VRPs) != len(first.VRPs)+1 {
		t.Errorf("new ROA missing after fallback: %d VRPs, want %d", len(second.VRPs), len(first.VRPs)+1)
	}
}

// TestIncrementalCorruptObjectNeverSilentlyStale: an object that the server
// corrupts after the relying party cached a clean copy must surface as a
// diagnostic — the incremental sync downloads the corrupted bytes and the
// manifest cross-check rejects them. Keeping the (manifest-consistent!)
// cached copy would be the silent-staleness bug.
func TestIncrementalCorruptObjectNeverSilentlyStale(t *testing.T) {
	w := buildTCPWorld(t)
	relying := New(Config{
		Fetcher:        resilientClient(1),
		Clock:          clock,
		CacheSnapshots: true,
	}, w.anchor)
	first, err := relying.Sync(context.Background())
	if err != nil || first.Incomplete() {
		t.Fatalf("cold sync: %v %v", err, first.Diagnostics)
	}
	if first.Index().State(childRoute) != rov.Valid {
		t.Fatal("baseline route should be Valid")
	}

	// Corruption flips the served hash, so STAT disagrees with the cached
	// copy and the sync downloads the corrupted bytes.
	w.childFaults.Corrupt("r.roa")
	second, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !second.Incomplete() || !hasDiag(second, DiagHashMismatch, "child") {
		t.Fatalf("corruption must be diagnosed, got %v", second.Diagnostics)
	}
	if second.Index().State(childRoute) == rov.Valid {
		t.Error("corrupted ROA must not keep the route Valid via the cached copy")
	}

	// The fault clears: the next incremental sync restores the clean world
	// (and the tainted verdict must not have poisoned the module memo).
	w.childFaults.Restore("")
	third, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if third.Incomplete() {
		t.Fatalf("recovered sync should be clean, diags: %v", third.Diagnostics)
	}
	if third.Index().State(childRoute) != rov.Valid {
		t.Error("route should be Valid again after recovery")
	}
}

// TestIncrementalHashFlipMidSync: the repository republishes between the
// relying party's STAT requests, so the incremental sync assembles a torn
// view — part old world, part new. The manifest cross-check must flag the
// tear (missing or mismatched objects); a clean verdict over the torn set
// would be silent staleness. The next sync then converges on the new world.
func TestIncrementalHashFlipMidSync(t *testing.T) {
	w := buildTCPWorld(t)
	relying := New(Config{
		Fetcher:        resilientClient(1),
		Clock:          clock,
		CacheSnapshots: true,
	}, w.anchor)
	first, err := relying.Sync(context.Background())
	if err != nil || first.Incomplete() {
		t.Fatalf("cold sync: %v %v", err, first.Diagnostics)
	}

	// The child module's warm sync issues LIST, then STATs objects in sorted
	// order (child.crl, child.mft, r.roa). Republishing on request 3 lands
	// the flip between two STATs: the CRL is reused from the old world while
	// the manifest downloads from the new one.
	var flipOnce sync.Once
	var flipErr error
	w.childFaults.SetScript(func(requestN int) repo.FaultAction {
		if requestN == 3 {
			flipOnce.Do(func() {
				_, flipErr = w.child.IssueROA("r2", 1239, roa.MustParsePrefix("63.168.0.0/13"))
			})
		}
		return repo.ActNone
	})
	second, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if flipErr != nil {
		t.Fatal(flipErr)
	}
	w.childFaults.SetScript(nil)
	if !second.Incomplete() {
		t.Fatalf("a torn view must be diagnosed, got a clean result with %d VRPs", len(second.VRPs))
	}
	if !hasDiag(second, DiagMissingObject, "child") && !hasDiag(second, DiagHashMismatch, "child") {
		t.Errorf("want missing-object or hash-mismatch on the torn module, got %v", second.Diagnostics)
	}

	// The tear is transient by construction: the very next sync sees a
	// stable world and must converge cleanly on it.
	third, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if third.Incomplete() {
		t.Fatalf("post-flip sync should be clean, diags: %v", third.Diagnostics)
	}
	fresh, err := New(Config{Fetcher: resilientClient(0), Clock: clock}, w.anchor).Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(third.VRPs, fresh.VRPs) {
		t.Errorf("converged sync diverged from fresh validation:\n%v\n%v", third.VRPs, fresh.VRPs)
	}
	if len(third.VRPs) != len(first.VRPs)+1 {
		t.Errorf("new ROA missing after convergence: %d VRPs, want %d", len(third.VRPs), len(first.VRPs)+1)
	}
}
