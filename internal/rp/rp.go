// Package rp implements an RPKI relying party: starting from trust anchors,
// it fetches publication points, validates certificates, CRLs, manifests and
// ROAs top-down, and produces the validated cache of ROA payloads (VRPs)
// that drives route origin validation.
//
// RFC 6483 requires the relying party to have "access to a local cache of
// the complete set of valid ROAs". The paper's Side Effect 6 is about what
// happens when that requirement silently fails: a ROA that cannot be
// fetched, fails its hash, or falls outside a shrunken parent certificate
// simply vanishes from the cache, and the corresponding route becomes
// Invalid whenever another ROA covers it. The relying party therefore
// reports rich diagnostics about incompleteness instead of failing —
// mirroring the real protocol's silence.
package rp

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cert"
	"repro/internal/ipres"
	"repro/internal/manifest"
	"repro/internal/repo"
	"repro/internal/roa"
	"repro/internal/rov"
)

// TrustAnchor seeds validation, like a TAL: the anchor certificate plus the
// publication point it publishes into.
type TrustAnchor struct {
	// CertDER is the DER self-signed trust-anchor certificate.
	CertDER []byte
	// URI is the anchor's publication point.
	URI repo.URI
}

// Fetcher retrieves the full contents of a publication point. *repo.Client
// implements it over TCP; StoreFetcher implements it in-process; the
// circular-dependency experiments implement it with reachability gating.
type Fetcher interface {
	FetchAll(ctx context.Context, uri repo.URI) (map[string][]byte, error)
}

// IncrementalFetcher is optionally implemented by fetchers that support
// STAT-driven delta synchronization (*repo.Client does). A relying party
// with CacheSnapshots enabled uses it to skip re-downloading unchanged
// objects across Sync calls — rsync's delta mode.
type IncrementalFetcher interface {
	Fetcher
	SyncIncremental(ctx context.Context, uri repo.URI, prev map[string][]byte) (*repo.SyncResult, error)
}

// StoreFetcher fetches directly from in-process stores, keyed by module
// name. It implements Fetcher for non-networked experiments.
type StoreFetcher map[string]*repo.Store

// FetchAll implements Fetcher.
func (s StoreFetcher) FetchAll(_ context.Context, uri repo.URI) (map[string][]byte, error) {
	store, ok := s[uri.Module]
	if !ok {
		return nil, fmt.Errorf("rp: unknown publication point %q", uri.Module)
	}
	return store.Snapshot(), nil
}

// MissingPolicy selects the relying party's reaction to manifest trouble —
// the open problem the paper highlights ("what to do about incomplete
// information?").
type MissingPolicy uint8

const (
	// BestEffort uses every object that independently validates, merely
	// flagging incompleteness. This is what deployed validators do, and it
	// is what makes Side Effect 6 bite.
	BestEffort MissingPolicy = iota
	// DropPublicationPoint discards ALL products of a publication point
	// whose manifest is missing, stale, or inconsistent. Conservative
	// against tampering, but turns any partial fault into a total outage
	// of that authority's subtree.
	DropPublicationPoint
)

// DiagKind classifies a validation diagnostic.
type DiagKind uint8

const (
	// DiagFetchFailure: a publication point could not be fetched at all.
	DiagFetchFailure DiagKind = iota
	// DiagMissingObject: the manifest lists an object that is absent.
	DiagMissingObject
	// DiagHashMismatch: an object's content does not match the manifest.
	DiagHashMismatch
	// DiagInvalidObject: an object failed parsing or chain validation.
	DiagInvalidObject
	// DiagStaleManifest: the manifest's nextUpdate has passed.
	DiagStaleManifest
	// DiagMissingManifest: the publication point has no usable manifest.
	DiagMissingManifest
	// DiagDroppedPubPoint: DropPublicationPoint policy discarded the point.
	DiagDroppedPubPoint
)

func (k DiagKind) String() string {
	switch k {
	case DiagFetchFailure:
		return "fetch-failure"
	case DiagMissingObject:
		return "missing-object"
	case DiagHashMismatch:
		return "hash-mismatch"
	case DiagInvalidObject:
		return "invalid-object"
	case DiagStaleManifest:
		return "stale-manifest"
	case DiagMissingManifest:
		return "missing-manifest"
	case DiagDroppedPubPoint:
		return "dropped-publication-point"
	}
	return fmt.Sprintf("DiagKind(%d)", uint8(k))
}

// Diagnostic records one problem encountered during a sync.
type Diagnostic struct {
	Kind   DiagKind
	Module string
	Object string
	Err    error
}

func (d Diagnostic) String() string {
	if d.Object != "" {
		return fmt.Sprintf("[%s] %s/%s: %v", d.Kind, d.Module, d.Object, d.Err)
	}
	return fmt.Sprintf("[%s] %s: %v", d.Kind, d.Module, d.Err)
}

// Config tunes a relying party.
type Config struct {
	// Fetcher retrieves publication points (required).
	Fetcher Fetcher
	// Clock supplies validation time (default time.Now).
	Clock func() time.Time
	// Policy selects the missing-information behavior.
	Policy MissingPolicy
	// RequireFreshManifest treats a stale manifest like a missing one.
	RequireFreshManifest bool
	// MaxDepth bounds hierarchy recursion (default 32).
	MaxDepth int
	// CacheSnapshots keeps per-publication-point snapshots between Sync
	// calls and uses the Fetcher's incremental mode when available.
	CacheSnapshots bool
}

// RelyingParty validates RPKI hierarchies into VRP sets.
type RelyingParty struct {
	cfg     Config
	anchors []TrustAnchor
	// snapshots caches module contents across Sync calls when
	// CacheSnapshots is enabled.
	snapshots map[string]map[string][]byte
}

// New creates a relying party over the given trust anchors.
func New(cfg Config, anchors ...TrustAnchor) *RelyingParty {
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 32
	}
	return &RelyingParty{
		cfg:       cfg,
		anchors:   anchors,
		snapshots: make(map[string]map[string][]byte),
	}
}

func (rp *RelyingParty) now() time.Time {
	if rp.cfg.Clock == nil {
		return time.Now()
	}
	return rp.cfg.Clock()
}

// Result is the outcome of one synchronization pass.
type Result struct {
	// VRPs is the validated cache of ROA payloads.
	VRPs []rov.VRP
	// Diagnostics lists every problem encountered.
	Diagnostics []Diagnostic
	// PubPointsVisited counts publication points fetched (or attempted).
	PubPointsVisited int
	// ROAsAccepted counts validated ROAs.
	ROAsAccepted int
	// CertsAccepted counts validated CA certificates (including anchors).
	CertsAccepted int
	// ObjectsDownloaded and ObjectsReused count transfer work when the
	// relying party runs in incremental mode (zero otherwise).
	ObjectsDownloaded, ObjectsReused int
}

// Incomplete reports whether the relying party has any reason to believe
// its cache is missing valid ROAs — the condition under which RFC 6483's
// "complete set" requirement is unmet.
func (r *Result) Incomplete() bool { return len(r.Diagnostics) > 0 }

// Index builds a route-validation index from the result's VRPs.
func (r *Result) Index() *rov.Index { return rov.NewIndex(r.VRPs...) }

func (r *Result) diag(kind DiagKind, module, object string, err error) {
	r.Diagnostics = append(r.Diagnostics, Diagnostic{Kind: kind, Module: module, Object: object, Err: err})
}

// Sync walks every trust anchor's subtree and returns the validated cache.
func (rp *RelyingParty) Sync(ctx context.Context) (*Result, error) {
	if rp.cfg.Fetcher == nil {
		return nil, fmt.Errorf("rp: no fetcher configured")
	}
	res := &Result{}
	now := rp.now()
	for _, ta := range rp.anchors {
		anchor, err := cert.Parse(ta.CertDER)
		if err != nil {
			res.diag(DiagInvalidObject, ta.URI.Module, "", fmt.Errorf("trust anchor: %w", err))
			continue
		}
		resources, err := cert.ValidateTrustAnchor(anchor, now)
		if err != nil {
			res.diag(DiagInvalidObject, ta.URI.Module, "", err)
			continue
		}
		res.CertsAccepted++
		rp.walk(ctx, res, anchor, resources, ta.URI, rp.cfg.MaxDepth)
	}
	sortVRPs(res.VRPs)
	return res, nil
}

func sortVRPs(vrps []rov.VRP) {
	sort.Slice(vrps, func(i, j int) bool {
		if c := vrps[i].Prefix.Cmp(vrps[j].Prefix); c != 0 {
			return c < 0
		}
		if vrps[i].ASN != vrps[j].ASN {
			return vrps[i].ASN < vrps[j].ASN
		}
		return vrps[i].MaxLength < vrps[j].MaxLength
	})
}

// walk validates one authority's publication point and recurses into child
// authorities.
func (rp *RelyingParty) walk(ctx context.Context, res *Result, authority *cert.ResourceCert, effective ipres.Set, uri repo.URI, depth int) {
	if depth <= 0 {
		res.diag(DiagInvalidObject, uri.Module, "", fmt.Errorf("hierarchy too deep"))
		return
	}
	res.PubPointsVisited++
	files, err := rp.fetch(ctx, res, uri)
	if err != nil && len(files) == 0 {
		res.diag(DiagFetchFailure, uri.Module, "", err)
		return
	}
	if err != nil {
		res.diag(DiagFetchFailure, uri.Module, "", fmt.Errorf("partial fetch: %w", err))
	}
	now := rp.now()

	// Locate and validate the manifest named by the authority's SIA.
	mftName := manifestName(authority, uri)
	var mft *manifest.Manifest
	if raw, ok := files[mftName]; ok {
		signed, err := manifest.ParseSigned(raw)
		if err != nil {
			res.diag(DiagInvalidObject, uri.Module, mftName, err)
		} else if _, err := cert.ValidateChild(authority, effective, signed.EE, cert.ValidationContext{Now: now}); err != nil {
			res.diag(DiagInvalidObject, uri.Module, mftName, err)
		} else {
			mft = signed.Manifest
			if mft.Stale(now) {
				res.diag(DiagStaleManifest, uri.Module, mftName, fmt.Errorf("nextUpdate %v", mft.NextUpdate))
				if rp.cfg.RequireFreshManifest {
					mft = nil
				}
			}
		}
	} else {
		res.diag(DiagMissingManifest, uri.Module, mftName, fmt.Errorf("manifest absent"))
	}
	if mft == nil && rp.cfg.Policy == DropPublicationPoint {
		res.diag(DiagDroppedPubPoint, uri.Module, "", fmt.Errorf("no usable manifest"))
		return
	}

	// Cross-check manifest against fetched files.
	manifestOK := true
	if mft != nil {
		for _, name := range mft.Names() {
			content, ok := files[name]
			if !ok {
				res.diag(DiagMissingObject, uri.Module, name, fmt.Errorf("listed on manifest, not served"))
				manifestOK = false
				continue
			}
			if err := mft.Verify(name, content); err != nil {
				res.diag(DiagHashMismatch, uri.Module, name, err)
				manifestOK = false
			}
		}
	}
	if !manifestOK && rp.cfg.Policy == DropPublicationPoint {
		res.diag(DiagDroppedPubPoint, uri.Module, "", fmt.Errorf("manifest inconsistency"))
		return
	}

	// Load the CRL (best effort; nil CRL skips revocation checks).
	var crl *cert.CRL
	ctxV := cert.ValidationContext{Now: now}
	for name, raw := range files {
		if !strings.HasSuffix(name, ".crl") {
			continue
		}
		parsed, err := cert.ParseCRL(raw)
		if err != nil {
			res.diag(DiagInvalidObject, uri.Module, name, err)
			continue
		}
		if err := parsed.VerifySignature(authority); err != nil {
			res.diag(DiagInvalidObject, uri.Module, name, err)
			continue
		}
		crl = parsed
	}
	ctxV.CRL = crl

	// Validate ROAs and recurse into child certificates, in name order for
	// determinism.
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		raw := files[name]
		if mft != nil {
			if err := mft.Verify(name, raw); err != nil && name != mftName {
				// Unlisted or mismatched object: reject it outright; a
				// repository must not smuggle objects past its manifest.
				res.diag(DiagHashMismatch, uri.Module, name, err)
				continue
			}
		}
		switch {
		case strings.HasSuffix(name, ".roa"):
			signed, err := roa.ParseSigned(raw)
			if err != nil {
				res.diag(DiagInvalidObject, uri.Module, name, err)
				continue
			}
			if _, err := cert.ValidateChild(authority, effective, signed.EE, ctxV); err != nil {
				res.diag(DiagInvalidObject, uri.Module, name, err)
				continue
			}
			res.ROAsAccepted++
			res.VRPs = append(res.VRPs, rov.FromROA(signed.ROA)...)

		case strings.HasSuffix(name, ".cer"):
			child, err := cert.Parse(raw)
			if err != nil {
				res.diag(DiagInvalidObject, uri.Module, name, err)
				continue
			}
			if !child.IsCA() {
				continue // EE certs are embedded in signed objects
			}
			if child.Cert.SubjectKeyId != nil && authority.Cert.SubjectKeyId != nil &&
				string(child.Cert.SubjectKeyId) == string(authority.Cert.SubjectKeyId) {
				continue // the authority's own certificate republished
			}
			childEffective, err := cert.ValidateChild(authority, effective, child, ctxV)
			if err != nil {
				res.diag(DiagInvalidObject, uri.Module, name, err)
				continue
			}
			res.CertsAccepted++
			childURI, _, err := repo.ParseURI(strings.TrimSuffix(child.SIA.CARepository, "/"))
			if err != nil {
				res.diag(DiagInvalidObject, uri.Module, name, fmt.Errorf("bad SIA: %w", err))
				continue
			}
			rp.walk(ctx, res, child, childEffective, childURI, depth-1)
		}
	}
}

// fetch retrieves a publication point, using the fetcher's incremental
// mode when snapshot caching is enabled and supported.
func (rp *RelyingParty) fetch(ctx context.Context, res *Result, uri repo.URI) (map[string][]byte, error) {
	inc, ok := rp.cfg.Fetcher.(IncrementalFetcher)
	if !rp.cfg.CacheSnapshots || !ok {
		return rp.cfg.Fetcher.FetchAll(ctx, uri)
	}
	sync, err := inc.SyncIncremental(ctx, uri, rp.snapshots[uri.Module])
	if err != nil {
		return nil, err
	}
	rp.snapshots[uri.Module] = sync.Files
	res.ObjectsDownloaded += sync.Downloaded
	res.ObjectsReused += sync.Reused
	return sync.Files, nil
}

// manifestName extracts the manifest object name from the authority's SIA,
// falling back to "<module>.mft".
func manifestName(authority *cert.ResourceCert, uri repo.URI) string {
	if authority.SIA.Manifest != "" {
		if _, obj, err := repo.ParseURI(authority.SIA.Manifest); err == nil && obj != "" {
			return obj
		}
	}
	return uri.Module + ".mft"
}
