// Package rp implements an RPKI relying party: starting from trust anchors,
// it fetches publication points, validates certificates, CRLs, manifests and
// ROAs top-down, and produces the validated cache of ROA payloads (VRPs)
// that drives route origin validation.
//
// RFC 6483 requires the relying party to have "access to a local cache of
// the complete set of valid ROAs". The paper's Side Effect 6 is about what
// happens when that requirement silently fails: a ROA that cannot be
// fetched, fails its hash, or falls outside a shrunken parent certificate
// simply vanishes from the cache, and the corresponding route becomes
// Invalid whenever another ROA covers it. The relying party therefore
// reports rich diagnostics about incompleteness instead of failing —
// mirroring the real protocol's silence.
//
// Validation runs as a concurrent pipeline, like deployed validators
// (Routinator, rpki-client): sibling publication points are fetched in
// parallel as the tree is discovered — a child CA found at one point
// enqueues its publication point immediately, with no per-level barrier —
// and within each point object hashing and certificate-chain validation fan
// out across a bounded worker pool (Config.Workers). Results are
// deterministic at any worker count: VRPs are sorted, diagnostics are
// canonically ordered, and all counters are exact.
package rp

import (
	"context"
	"crypto/sha256"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cert"
	"repro/internal/ipres"
	"repro/internal/manifest"
	"repro/internal/obs"
	"repro/internal/repo"
	"repro/internal/rov"
)

// TrustAnchor seeds validation, like a TAL: the anchor certificate plus the
// publication point it publishes into.
type TrustAnchor struct {
	// CertDER is the DER self-signed trust-anchor certificate.
	CertDER []byte
	// URI is the anchor's publication point.
	URI repo.URI
}

// Fetcher retrieves the full contents of a publication point. *repo.Client
// implements it over TCP; StoreFetcher implements it in-process; the
// circular-dependency experiments implement it with reachability gating.
// When the relying party runs with Workers > 1, FetchAll is called from
// multiple goroutines concurrently and implementations must tolerate that.
type Fetcher interface {
	FetchAll(ctx context.Context, uri repo.URI) (map[string][]byte, error)
}

// IncrementalFetcher is optionally implemented by fetchers that support
// STAT-driven delta synchronization (*repo.Client does). A relying party
// with CacheSnapshots enabled uses it to skip re-downloading unchanged
// objects across Sync calls — rsync's delta mode.
type IncrementalFetcher interface {
	Fetcher
	SyncIncremental(ctx context.Context, uri repo.URI, prev map[string][]byte) (*repo.SyncResult, error)
}

// StoreFetcher fetches directly from in-process stores, keyed by module
// name. It implements Fetcher for non-networked experiments.
type StoreFetcher map[string]*repo.Store

// FetchAll implements Fetcher.
func (s StoreFetcher) FetchAll(_ context.Context, uri repo.URI) (map[string][]byte, error) {
	store, ok := s[uri.Module]
	if !ok {
		return nil, fmt.Errorf("rp: unknown publication point %q", uri.Module)
	}
	return store.Snapshot(), nil
}

// SnapshotVersion implements VersionedFetcher: the store's mutation counter
// proves a point unchanged without copying a byte.
func (s StoreFetcher) SnapshotVersion(uri repo.URI) (uint64, bool) {
	store, ok := s[uri.Module]
	if !ok {
		return 0, false
	}
	return store.Version(), true
}

// MissingPolicy selects the relying party's reaction to manifest trouble —
// the open problem the paper highlights ("what to do about incomplete
// information?").
type MissingPolicy uint8

const (
	// BestEffort uses every object that independently validates, merely
	// flagging incompleteness. This is what deployed validators do, and it
	// is what makes Side Effect 6 bite.
	BestEffort MissingPolicy = iota
	// DropPublicationPoint discards ALL products of a publication point
	// whose manifest is missing, stale, or inconsistent. Conservative
	// against tampering, but turns any partial fault into a total outage
	// of that authority's subtree.
	DropPublicationPoint
)

// DiagKind classifies a validation diagnostic.
type DiagKind uint8

const (
	// DiagFetchFailure: a publication point could not be fetched at all.
	DiagFetchFailure DiagKind = iota
	// DiagMissingObject: the manifest lists an object that is absent.
	DiagMissingObject
	// DiagHashMismatch: an object's content does not match the manifest.
	DiagHashMismatch
	// DiagInvalidObject: an object failed parsing or chain validation.
	DiagInvalidObject
	// DiagStaleManifest: the manifest's nextUpdate has passed.
	DiagStaleManifest
	// DiagMissingManifest: the publication point has no usable manifest.
	DiagMissingManifest
	// DiagDroppedPubPoint: DropPublicationPoint policy discarded the point.
	DiagDroppedPubPoint
	// DiagPointUnreachable: a publication point could not be fetched this
	// sync (dead, refusing, or circuit-broken). Emitted when last-known-good
	// fallback is enabled; DiagFetchFailure covers the same condition when
	// it is not.
	DiagPointUnreachable
	// DiagStaleFallback: the relying party served a point's last-known-good
	// snapshot instead of fresh data — degradation made observable, never
	// silent.
	DiagStaleFallback
)

func (k DiagKind) String() string {
	switch k {
	case DiagFetchFailure:
		return "fetch-failure"
	case DiagMissingObject:
		return "missing-object"
	case DiagHashMismatch:
		return "hash-mismatch"
	case DiagInvalidObject:
		return "invalid-object"
	case DiagStaleManifest:
		return "stale-manifest"
	case DiagMissingManifest:
		return "missing-manifest"
	case DiagDroppedPubPoint:
		return "dropped-publication-point"
	case DiagPointUnreachable:
		return "point-unreachable"
	case DiagStaleFallback:
		return "stale-fallback"
	}
	return fmt.Sprintf("DiagKind(%d)", uint8(k))
}

// Diagnostic records one problem encountered during a sync.
type Diagnostic struct {
	Kind   DiagKind
	Module string
	Object string
	Err    error
}

func (d Diagnostic) String() string {
	if d.Object != "" {
		return fmt.Sprintf("[%s] %s/%s: %v", d.Kind, d.Module, d.Object, d.Err)
	}
	return fmt.Sprintf("[%s] %s: %v", d.Kind, d.Module, d.Err)
}

// Config tunes a relying party.
type Config struct {
	// Fetcher retrieves publication points (required).
	Fetcher Fetcher
	// Clock supplies validation time (default time.Now).
	Clock func() time.Time
	// Policy selects the missing-information behavior.
	Policy MissingPolicy
	// RequireFreshManifest treats a stale manifest like a missing one.
	RequireFreshManifest bool
	// MaxDepth bounds hierarchy recursion (default 32).
	MaxDepth int
	// CacheSnapshots keeps per-publication-point snapshots between Sync
	// calls and uses the Fetcher's incremental mode when available.
	CacheSnapshots bool
	// Workers bounds the validation worker pool: sibling publication
	// points are fetched concurrently and object hashing/chain validation
	// fans out across this many goroutines. 0 means runtime.GOMAXPROCS(0);
	// 1 is the sequential baseline. Results are identical at any setting.
	Workers int
	// Streaming bounds the relying party's memory so Internet-scale worlds
	// validate in a resident set sized by the in-flight window, not the
	// world: per-module object bytes are released once the module commits,
	// at most MaxInflightModules modules hold raw bytes at a time, parsed
	// objects are not retained across syncs, and the module memo keeps
	// per-object digests instead of byte snapshots (so warm re-syncs still
	// skip re-validating provably unchanged modules, at the cost of
	// re-hashing their bytes). VRP output is identical to the non-streaming
	// path at any worker count. Combining Streaming with CacheSnapshots or
	// StaleTTL reintroduces byte retention for those features.
	Streaming bool
	// MaxInflightModules bounds how many publication points' raw bytes are
	// resident at once in streaming mode (default 2×Workers). Ignored when
	// Streaming is false.
	MaxInflightModules int
	// StaleTTL enables last-known-good fallback: when a publication point
	// cannot be fetched, its most recent cleanly-validated snapshot — no
	// older than StaleTTL — is validated in its place, with DiagStaleFallback
	// recording the substitution. 0 disables fallback: an unreachable point
	// simply vanishes from the validated cache, as the paper's Side Effect 6
	// assumes. The TTL bounds how long a dead (or coerced-offline) authority
	// can pin the relying party's view of its subtree.
	StaleTTL time.Duration
	// DisableVerifyCache turns off the persistent verification cache that
	// lets repeated Sync calls skip re-verifying CMS envelopes and
	// certificate-chain signatures for unchanged objects. The cache is
	// keyed by object content hash (plus issuer SKI for chain checks), so
	// republished objects never return stale verdicts; time, revocation
	// and resource-containment checks are always re-evaluated.
	DisableVerifyCache bool
	// DisableModuleReuse turns off module-level validation memoization (see
	// modmemo.go): with it set, every sync re-validates every publication
	// point even when its bytes are provably unchanged. The knob exists for
	// baseline benchmarking and for callers that want the per-object verify
	// cache's behavior in isolation.
	DisableModuleReuse bool
	// Obs attaches the observability plane (see internal/obs): metric
	// handles are registered once at construction, every diagnostic and
	// fallback drops an event into the flight recorder, and each Sync
	// produces a trace on the injected clock. Nil disables instrumentation;
	// the hot path then pays one predictable branch per event.
	Obs *obs.Hub
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) maxInflightModules() int {
	if c.MaxInflightModules > 0 {
		return c.MaxInflightModules
	}
	return 2 * c.workers()
}

// RelyingParty validates RPKI hierarchies into VRP sets. It is safe for use
// from one goroutine at a time; a single Sync call parallelizes internally.
type RelyingParty struct {
	cfg     Config
	anchors []TrustAnchor
	snapMu  sync.Mutex
	// snapshots holds per-module contents cached across Sync calls when
	// CacheSnapshots is enabled. guarded by snapMu.
	snapshots map[string]map[string][]byte
	// cache persists verification verdicts across Sync calls (nil when
	// disabled).
	cache *objectCache
	// lkg holds last-known-good snapshots across Sync calls (nil when
	// StaleTTL is 0).
	lkg *lkgStore
	// memo holds module-level validation outcomes across Sync calls (nil
	// when DisableModuleReuse is set).
	memo *moduleMemo
	// met holds the metric handles registered on Config.Obs (nil when
	// observability is off; every update is then a nil-receiver no-op).
	met *rpMetrics
}

// New creates a relying party over the given trust anchors.
func New(cfg Config, anchors ...TrustAnchor) *RelyingParty {
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 32
	}
	rp := &RelyingParty{
		cfg:       cfg,
		anchors:   anchors,
		snapshots: make(map[string]map[string][]byte),
	}
	if !cfg.DisableVerifyCache {
		// Streaming mode keeps the signature-verdict cache (small, fixed-size
		// entries) but not the parsed-object cache, whose retained decodings
		// would grow with the world.
		rp.cache = newObjectCache(!cfg.Streaming)
	}
	if cfg.StaleTTL > 0 {
		rp.lkg = newLKGStore()
	}
	if !cfg.DisableModuleReuse {
		rp.memo = newModuleMemo()
	}
	rp.met = newRPMetrics(cfg.Obs)
	return rp
}

func (rp *RelyingParty) now() time.Time {
	if rp.cfg.Clock == nil {
		//lint:ignore wallclock this IS the injection point: the documented Config.Clock default
		return time.Now()
	}
	return rp.cfg.Clock()
}

// Result is the outcome of one synchronization pass.
type Result struct {
	// VRPs is the validated cache of ROA payloads.
	VRPs []rov.VRP
	// Diagnostics lists every problem encountered, in canonical order
	// (module, object, kind, message) regardless of worker count.
	Diagnostics []Diagnostic
	// PubPointsVisited counts publication points fetched (or attempted).
	PubPointsVisited int
	// ROAsAccepted counts validated ROAs.
	ROAsAccepted int
	// CertsAccepted counts validated CA certificates (including anchors).
	CertsAccepted int
	// ObjectsDownloaded and ObjectsReused count transfer work when the
	// relying party runs in incremental mode (zero otherwise).
	ObjectsDownloaded, ObjectsReused int
	// VerifyCacheHits and VerifyCacheMisses count lookups in the
	// persistent verification cache during this sync (both zero when the
	// cache is disabled). A warm re-sync of an unchanged world shows all
	// hits: no CMS or certificate signature is re-verified.
	VerifyCacheHits, VerifyCacheMisses int
	// Retries, BreakerTrips and BreakerFastFails count the fetcher's
	// resilience events during this sync (zero unless the Fetcher reports
	// degradation stats — *repo.Client does). Exact, so degradation is
	// observable rather than silent.
	Retries, BreakerTrips, BreakerFastFails int
	// StaleFallbacks counts publication points served from the
	// last-known-good store this sync.
	StaleFallbacks int
	// ModulesReused counts publication points whose validated outputs were
	// reused wholesale this sync (provably unchanged bytes inside the
	// cached epoch — see modmemo.go); ModulesRevalidated counts points
	// that went through full validation. Exact at any worker count, so a
	// steady-state poll of an unchanged world shows ModulesRevalidated==0.
	ModulesReused, ModulesRevalidated int
	// IncrementalFallbacks counts publication points whose incremental
	// (STAT-driven) sync failed mid-protocol and was replaced by a clean
	// full fetch — the never-silently-stale escape hatch.
	IncrementalFallbacks int
}

// DegradationReporter is optionally implemented by fetchers that count
// retries and circuit-breaker activity (*repo.Client does); Sync reports
// the per-sync delta on the Result.
type DegradationReporter interface {
	Stats() repo.DegradationStats
}

// Incomplete reports whether the relying party has any reason to believe
// its cache is missing valid ROAs — the condition under which RFC 6483's
// "complete set" requirement is unmet.
func (r *Result) Incomplete() bool { return len(r.Diagnostics) > 0 }

// Health refines Incomplete's single bit into the three outcomes the
// degradation ladder actually produces: Clean (no diagnostics), Stale
// (every failure was absorbed by the last-known-good store, so the output
// is fully servable but some of it is old), and Degraded (at least one
// diagnostic the ladder could not absorb — the cache may be incomplete).
// Readiness probes treat Clean and Stale as servable; Incomplete cannot
// make that distinction because an LKG-served sync also carries
// diagnostics.
func (r *Result) Health() obs.HealthState {
	if len(r.Diagnostics) == 0 {
		return obs.HealthClean
	}
	for _, d := range r.Diagnostics {
		if d.Kind != DiagStaleFallback && d.Kind != DiagPointUnreachable {
			return obs.HealthDegraded
		}
	}
	if r.StaleFallbacks > 0 {
		return obs.HealthStale
	}
	// Unreachable points with no successful fallback always add a second
	// diagnostic kind, but be explicit rather than rely on that.
	return obs.HealthDegraded
}

// Index builds a route-validation index from the result's VRPs.
func (r *Result) Index() *rov.Index { return rov.NewIndex(r.VRPs...) }

func (r *Result) diag(kind DiagKind, module, object string, err error) {
	r.Diagnostics = append(r.Diagnostics, Diagnostic{Kind: kind, Module: module, Object: object, Err: err})
}

// Sync walks every trust anchor's subtree and returns the validated cache.
// A canceled context aborts the sync promptly — mid-fetch included — and
// returns ctx.Err() rather than burying the cancellation in diagnostics.
func (rp *RelyingParty) Sync(ctx context.Context) (*Result, error) {
	if rp.cfg.Fetcher == nil {
		return nil, fmt.Errorf("rp: no fetcher configured")
	}
	res := &Result{}
	now := rp.now()
	trace := rp.cfg.Obs.Tracer().StartTrace("sync")
	var statsBefore repo.DegradationStats
	reporter, _ := rp.cfg.Fetcher.(DegradationReporter)
	if reporter != nil {
		statsBefore = reporter.Stats()
	}
	st := &syncState{
		rp:   rp,
		ctx:  ctx,
		res:  res,
		sem:  make(chan struct{}, rp.cfg.workers()),
		span: trace.Root(),
	}
	if rp.cfg.Streaming {
		st.fetchSem = make(chan struct{}, rp.cfg.maxInflightModules())
	}
	if rp.lkg != nil {
		st.mu.Lock()
		st.fetched = make(map[string]map[string][]byte)
		st.mu.Unlock()
	}
	for _, ta := range rp.anchors {
		anchor, err := cert.Parse(ta.CertDER)
		if err != nil {
			res.diag(DiagInvalidObject, ta.URI.Module, "", fmt.Errorf("trust anchor: %w", err))
			continue
		}
		resources, err := cert.ValidateTrustAnchor(anchor, now)
		if err != nil {
			res.diag(DiagInvalidObject, ta.URI.Module, "", err)
			continue
		}
		res.CertsAccepted++
		uri := ta.URI
		st.spawn(func() { st.walk(anchor, resources, uri, rp.cfg.MaxDepth) })
	}
	st.wg.Wait()
	if err := st.firstErr(); err != nil {
		trace.Finish()
		return nil, err
	}
	// Commit LKG snapshots for points that validated without a single
	// diagnostic: "verified objects", so a corrupted point can never
	// overwrite the clean snapshot its own fallback may need (Side Effect 7
	// recovery depends on this).
	if rp.lkg != nil {
		tainted := make(map[string]bool, len(res.Diagnostics))
		for _, d := range res.Diagnostics {
			tainted[d.Module] = true
		}
		// Every walk goroutine is done (wg.Wait above), but fetched is
		// lock-disciplined like every other access to it.
		st.mu.Lock()
		for module, files := range st.fetched {
			if !tainted[module] {
				rp.lkg.put(module, files, now)
			}
		}
		st.mu.Unlock()
	}
	rov.SortVRPs(res.VRPs)
	sortDiagnostics(res.Diagnostics)
	res.VerifyCacheHits = int(st.cacheHits.Load())
	res.VerifyCacheMisses = int(st.cacheMisses.Load())
	if reporter != nil {
		after := reporter.Stats()
		res.Retries = int(after.Retries - statsBefore.Retries)
		res.BreakerTrips = int(after.BreakerTrips - statsBefore.BreakerTrips)
		res.BreakerFastFails = int(after.BreakerFastFails - statsBefore.BreakerFastFails)
	}
	if trace != nil && res.ModulesReused > 0 {
		trace.Root().SetDetail(fmt.Sprintf("%d modules reused, %d revalidated", res.ModulesReused, res.ModulesRevalidated))
	}
	trace.Finish()
	end := rp.now()
	rp.met.recordResult(res, end.Sub(now).Seconds())
	rp.met.lastSyncUnixtime.Set(float64(end.Unix()))
	return res, nil
}

// sumsPool recycles the per-module hashing scratch. Digest values are copied
// out into per-module maps before the slice is returned, so pooled backing
// arrays are never referenced by results.
var sumsPool = sync.Pool{New: func() any { return new([][32]byte) }}

// sortDiagnostics puts diagnostics into canonical order so the result is
// byte-for-byte reproducible regardless of goroutine scheduling.
func sortDiagnostics(diags []Diagnostic) {
	errText := func(err error) string {
		if err == nil {
			return ""
		}
		return err.Error()
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Module != diags[j].Module {
			return diags[i].Module < diags[j].Module
		}
		if diags[i].Object != diags[j].Object {
			return diags[i].Object < diags[j].Object
		}
		if diags[i].Kind != diags[j].Kind {
			return diags[i].Kind < diags[j].Kind
		}
		return errText(diags[i].Err) < errText(diags[j].Err)
	})
}

// syncState is the shared state of one Sync pass: the accumulating result,
// the worker-slot semaphore bounding CPU-heavy work, and the WaitGroup
// tracking every outstanding publication-point walk and object task.
type syncState struct {
	rp  *RelyingParty
	ctx context.Context
	sem chan struct{}
	// fetchSem bounds how many modules hold raw object bytes at once in
	// streaming mode (nil otherwise). A slot is held from just before the
	// module's fetch until its commit releases the bytes. Holders always
	// make progress — a module's commit waits only on its own object tasks
	// (worker slots, never fetch slots), not on child walks — so the bound
	// cannot deadlock.
	fetchSem chan struct{}
	wg       sync.WaitGroup
	// span is the sync's root trace span (nil when tracing is off); each
	// walk hangs its module span off it. Spans are internally synchronized.
	span *obs.Span

	mu sync.Mutex
	// res is the accumulating result. guarded by mu.
	res *Result
	// err is the first hard failure (context cancellation); it aborts the
	// sync instead of becoming a diagnostic. guarded by mu.
	err error
	// fetched records each point's cleanly-fetched files for the LKG commit
	// at the end of Sync (nil when LKG is disabled). guarded by mu.
	fetched map[string]map[string][]byte

	// Atomic counters; not covered by mu.
	cacheHits, cacheMisses atomic.Int64
}

func (st *syncState) setErr(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.mu.Unlock()
}

func (st *syncState) firstErr() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// spawn tracks f with the WaitGroup and runs it on its own goroutine.
// Structural goroutines (walks, object tasks) never hold a worker slot while
// blocked, so spawning from inside a slot cannot deadlock.
func (st *syncState) spawn(f func()) {
	st.wg.Add(1)
	go func() {
		defer st.wg.Done()
		f()
	}()
}

// run executes f under a worker slot; CPU-heavy work (hashing, parsing,
// signature verification) goes through here so at most Workers of it runs
// at once. f must not block on the semaphore or the WaitGroup.
func (st *syncState) run(f func()) {
	st.sem <- struct{}{}
	f()
	<-st.sem
}

// acquireModule takes an in-flight-module slot in streaming mode (no-op
// otherwise). Callers must pair it with exactly one releaseModule, reached
// either directly on an early walk exit or via the module's commit.
func (st *syncState) acquireModule() {
	if st.fetchSem != nil {
		st.fetchSem <- struct{}{}
		st.rp.met.inflightModules.Inc()
	}
}

// releaseModule returns an in-flight-module slot (no-op outside streaming).
func (st *syncState) releaseModule() {
	if st.fetchSem != nil {
		st.rp.met.inflightModules.Dec()
		<-st.fetchSem
	}
}

func (st *syncState) diag(kind DiagKind, module, object string, err error) {
	st.mu.Lock()
	st.res.diag(kind, module, object, err)
	st.mu.Unlock()
	st.obsDiag(kind, module, object, err)
}

// walk validates one authority's publication point, fanning its objects out
// across the worker pool, and spawns child-authority walks as soon as each
// child certificate validates. A point provably unchanged since its last
// clean validation (and still inside that validation's temporal epoch) is
// not validated at all: its cached outputs are merged wholesale (see
// modmemo.go).
func (st *syncState) walk(authority *cert.ResourceCert, effective ipres.Set, uri repo.URI, depth int) {
	if depth <= 0 {
		st.diag(DiagInvalidObject, uri.Module, "", fmt.Errorf("hierarchy too deep"))
		return
	}
	if err := st.ctx.Err(); err != nil {
		st.setErr(err)
		return
	}
	st.mu.Lock()
	st.res.PubPointsVisited++
	st.mu.Unlock()
	now := st.rp.now()

	// Reuse tier 1: the fetcher can prove the backing store unchanged, so
	// the fetch itself is skipped. The version is read before any fetch: a
	// store mutating concurrently costs a re-validation, never a stale reuse.
	// This path is the entire warm steady state, so it stays span-free —
	// tier-1 reuses are summarized on the root span and counted by the
	// rpki_modules_reused_total metric instead of traced one by one.
	var storeVersion uint64
	var hasVersion bool
	if vf, ok := st.rp.cfg.Fetcher.(VersionedFetcher); ok && st.rp.memo != nil {
		storeVersion, hasVersion = vf.SnapshotVersion(uri)
	}
	if hasVersion {
		if e := st.rp.memo.get(uri.Module); e != nil && e.hasVersion && e.version == storeVersion &&
			e.matches(authority, effective) && e.within(now) {
			st.reuseModule(e, uri, depth)
			return
		}
	}

	wsp := st.span.Child("walk", uri.Module)
	st.acquireModule()
	fsp := wsp.Child("fetch", uri.Module)
	files, unchanged, err := st.rp.fetch(st.ctx, st, uri)
	fsp.End()
	if err != nil && st.ctx.Err() != nil {
		// Cancellation is an abort, not incompleteness: no diagnostic.
		st.setErr(st.ctx.Err())
		st.releaseModule()
		wsp.SetDetail("aborted")
		wsp.End()
		return
	}
	mb := &moduleBuild{memoizable: err == nil, version: storeVersion, hasVersion: hasVersion, holdsSlot: st.fetchSem != nil}
	mb.span = wsp
	switch {
	case err != nil && len(files) == 0:
		if files = st.lkgFallback(uri, err); files == nil {
			st.releaseModule()
			wsp.SetDetail("unreachable, no fallback")
			wsp.End()
			return
		}
		wsp.SetDetail("serving last-known-good")
	case err != nil:
		mb.diag(st, DiagFetchFailure, uri.Module, "", fmt.Errorf("partial fetch: %w", err))
	default:
		st.recordFetched(uri.Module, files)
		// Reuse tiers 2 and 3: fetched, but byte-identical to the cached
		// entry's snapshot — either every STAT hash matched server-side
		// (unchanged) or the bytes compare equal locally (the byte snapshot
		// exists only outside streaming mode; sameFiles of a digest-only
		// entry is false and the digest comparison below decides instead).
		if e := st.rp.memo.get(uri.Module); e != nil && e.matches(authority, effective) && e.within(now) &&
			(unchanged || sameFiles(files, e.files)) {
			st.rp.memo.refreshVersion(uri.Module, storeVersion, hasVersion)
			st.releaseModule()
			wsp.SetDetail("reused: bytes unchanged")
			wsp.End()
			st.reuseModule(e, uri, depth)
			return
		}
	}
	mb.files = files

	// Hash every fetched object exactly once, in parallel chunks. The
	// digests drive the manifest cross-check, per-object admission, the
	// verification-cache keys, and (in streaming mode) the digest-level
	// reuse check below. The scratch slice is pooled: its values are copied
	// into the hashes map, so nothing retains it after Put.
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	hashes := make(map[string][32]byte, len(names))
	{
		sumsP := sumsPool.Get().(*[][32]byte)
		sums := *sumsP
		if cap(sums) < len(names) {
			sums = make([][32]byte, len(names))
		} else {
			sums = sums[:len(names)]
		}
		var hwg sync.WaitGroup
		workers := cap(st.sem)
		chunk := (len(names) + workers - 1) / workers
		if chunk < 1 {
			chunk = 1
		}
		for start := 0; start < len(names); start += chunk {
			end := start + chunk
			if end > len(names) {
				end = len(names)
			}
			hwg.Add(1)
			go func(lo, hi int) {
				defer hwg.Done()
				st.run(func() {
					for i := lo; i < hi; i++ {
						sums[i] = sha256.Sum256(files[names[i]])
					}
				})
			}(start, end)
		}
		hwg.Wait()
		for i, name := range names {
			hashes[name] = sums[i]
		}
		*sumsP = sums
		sumsPool.Put(sumsP)
	}
	mb.hashes = hashes

	// Reuse tier 3, streaming flavor: the memo kept per-object digests
	// rather than a byte snapshot, so unchanged-ness is decided here, after
	// hashing — the module's bytes are re-hashed but nothing is re-parsed
	// or re-verified.
	if mb.memoizable {
		if e := st.rp.memo.get(uri.Module); e != nil && e.digests != nil &&
			e.matches(authority, effective) && e.within(now) && sameDigests(hashes, e.digests) {
			st.rp.memo.refreshVersion(uri.Module, storeVersion, hasVersion)
			st.releaseModule()
			wsp.SetDetail("reused: digests unchanged")
			wsp.End()
			st.reuseModule(e, uri, depth)
			return
		}
	}
	st.mu.Lock()
	st.res.ModulesRevalidated++
	st.mu.Unlock()
	// A memo entry that survives to this point was refused by the reuse
	// guard: record why (authority swap, epoch expiry, or changed bytes).
	// Only a clean fetch consults the memo, so degraded sources don't count.
	if mb.memoizable {
		if e := st.rp.memo.get(uri.Module); e != nil {
			st.reuseRejection(e, authority, effective, uri.Module)
		}
	}
	mb.verifySpan = wsp.Child("verify", uri.Module)

	// Locate and validate the manifest named by the authority's SIA.
	mftName := manifestName(authority, uri)
	var mft *manifest.Manifest
	if raw, ok := files[mftName]; ok {
		st.run(func() {
			signed, err := st.rp.cache.parseManifest(st, hashes[mftName], raw)
			if err != nil {
				mb.diag(st, DiagInvalidObject, uri.Module, mftName, err)
			} else if _, err := cert.ValidateChild(authority, effective, signed.EE, st.vctx(now, nil)); err != nil {
				mb.diag(st, DiagInvalidObject, uri.Module, mftName, err)
			} else {
				mft = signed.Manifest
				mb.observeCert(signed.EE)
				mb.observeNotAfter(mft.NextUpdate)
				if mft.Stale(now) {
					mb.diag(st, DiagStaleManifest, uri.Module, mftName, fmt.Errorf("nextUpdate %v", mft.NextUpdate))
					if st.rp.cfg.RequireFreshManifest {
						mft = nil
					}
				}
			}
		})
	} else {
		mb.diag(st, DiagMissingManifest, uri.Module, mftName, fmt.Errorf("manifest absent"))
	}
	if mft == nil && st.rp.cfg.Policy == DropPublicationPoint {
		mb.diag(st, DiagDroppedPubPoint, uri.Module, "", fmt.Errorf("no usable manifest"))
		st.commitModule(uri, authority, effective, mb)
		return
	}

	// Cross-check the manifest against the fetched files, remembering each
	// verdict so the admission loop below never re-hashes or re-diagnoses
	// an object.
	manifestOK := true
	badObject := make(map[string]bool)
	if mft != nil {
		for _, name := range mft.Names() {
			hash, ok := hashes[name]
			if !ok {
				mb.diag(st, DiagMissingObject, uri.Module, name, fmt.Errorf("listed on manifest, not served"))
				manifestOK = false
				continue
			}
			if err := mft.VerifyHash(name, hash); err != nil {
				mb.diag(st, DiagHashMismatch, uri.Module, name, err)
				badObject[name] = true
				manifestOK = false
			}
		}
	}
	if !manifestOK && st.rp.cfg.Policy == DropPublicationPoint {
		mb.diag(st, DiagDroppedPubPoint, uri.Module, "", fmt.Errorf("manifest inconsistency"))
		st.commitModule(uri, authority, effective, mb)
		return
	}

	// Load the CRL (best effort; nil CRL skips revocation checks). Sorted
	// iteration makes the winner deterministic when several CRLs validate.
	var crl *cert.CRL
	for _, name := range names {
		if !strings.HasSuffix(name, ".crl") {
			continue
		}
		raw := files[name]
		st.run(func() {
			parsed, err := st.rp.cache.parseCRL(st, hashes[name], raw)
			if err != nil {
				mb.diag(st, DiagInvalidObject, uri.Module, name, err)
				return
			}
			if err := st.rp.sigCache().VerifyCRL(authority, parsed); err != nil {
				mb.diag(st, DiagInvalidObject, uri.Module, name, err)
				return
			}
			crl = parsed
		})
	}
	if crl != nil {
		// The winning CRL bounds the reuse epoch: past its nextUpdate a
		// re-validation would flag it stale, so the cached verdicts expire.
		mb.observeNotAfter(crl.List.NextUpdate)
	}

	// Validate ROAs and recurse into child certificates. Every object is
	// an independent task on the worker pool; a validated child CA starts
	// its own publication-point walk immediately.
	for _, name := range names {
		if badObject[name] {
			continue // mismatch already diagnosed by the cross-check
		}
		name := name
		mb.wg.Add(1)
		st.spawn(func() {
			defer mb.wg.Done()
			st.run(func() {
				st.processObject(mb, authority, effective, uri, depth, now, crl, mft, mftName, name, files[name], hashes[name])
			})
		})
	}
	// The committer merges the module's outputs once its own object tasks
	// are done (child walks are independent), then commits or deletes the
	// memo entry. It holds no worker slot while waiting, so it cannot
	// deadlock the pool.
	st.spawn(func() {
		mb.wg.Wait()
		st.commitModule(uri, authority, effective, mb)
	})
}

// reuseModule merges a cached module entry's outputs into the sync result
// without re-validating anything, and re-spawns the module's child walks
// (each child decides reuse for itself).
func (st *syncState) reuseModule(e *moduleEntry, uri repo.URI, depth int) {
	st.mu.Lock()
	st.res.ModulesReused++
	st.res.ROAsAccepted += e.roas
	st.res.CertsAccepted += e.certs
	st.res.VRPs = append(st.res.VRPs, e.vrps...)
	st.mu.Unlock()
	if e.files != nil { // digest-only (streaming) entries keep no snapshot
		st.recordFetched(uri.Module, e.files)
	}
	for _, ch := range e.children {
		ch := ch
		st.spawn(func() { st.walk(ch.cert, ch.effective, ch.uri, depth-1) })
	}
}

// commitModule merges a fully-validated module's outputs into the sync
// result and updates the memo: a clean validation of a faithfully-fetched
// snapshot commits an entry, any diagnostic deletes the stale one. Degraded
// sources (LKG fallback, partial fetch) merge without touching the memo —
// their bytes do not correspond to the point's current snapshot.
func (st *syncState) commitModule(uri repo.URI, authority *cert.ResourceCert, effective ipres.Set, mb *moduleBuild) {
	// Committing releases the module's raw bytes: drop the in-flight slot
	// (streaming) once the memo decision below no longer needs them.
	if mb.holdsSlot {
		defer st.releaseModule()
	}
	mb.verifySpan.End()
	csp := mb.span.Child("commit", uri.Module)
	defer func() {
		csp.End()
		mb.span.End()
	}()
	mb.mu.Lock()
	clean := mb.diags == 0
	mb.mu.Unlock()
	st.mu.Lock()
	st.res.ROAsAccepted += mb.roas
	st.res.CertsAccepted += mb.certs
	st.res.VRPs = append(st.res.VRPs, mb.vrps...)
	st.mu.Unlock()
	if !mb.memoizable || st.rp.memo == nil {
		return
	}
	if !clean {
		st.rp.memo.delete(uri.Module)
		return
	}
	entry := &moduleEntry{
		authorityHash: authorityDigest(authority),
		effective:     effective,
		version:       mb.version,
		hasVersion:    mb.hasVersion,
		notBefore:     mb.notBefore,
		notAfter:      mb.notAfter,
		vrps:          mb.vrps,
		roas:          mb.roas,
		certs:         mb.certs,
		children:      mb.children,
	}
	if st.rp.cfg.Streaming {
		// Keep digests only: unchanged-ness is re-proven by re-hashing, and
		// the module's bytes become collectable the moment the walk drops
		// them.
		entry.digests = mb.hashes
	} else {
		entry.files = mb.files
	}
	st.rp.memo.put(uri.Module, entry)
}

// recordFetched remembers a point's cleanly-fetched files for the LKG
// commit at the end of Sync (no-op when LKG is disabled).
func (st *syncState) recordFetched(module string, files map[string][]byte) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.fetched == nil {
		return
	}
	st.fetched[module] = files
}

// lkgFallback handles a publication point that could not be fetched at all.
// With LKG enabled and a fresh-enough snapshot on hand it returns the
// snapshot's files (diagnosing the substitution); otherwise it returns nil
// and the point's subtree drops out of the validated cache — Side Effect 6.
func (st *syncState) lkgFallback(uri repo.URI, ferr error) map[string][]byte {
	if st.rp.lkg == nil {
		st.diag(DiagFetchFailure, uri.Module, "", ferr)
		return nil
	}
	st.diag(DiagPointUnreachable, uri.Module, "", ferr)
	entry, ok := st.rp.lkg.get(uri.Module)
	now := st.rp.now()
	ttl := st.rp.cfg.StaleTTL
	if !ok {
		st.diag(DiagFetchFailure, uri.Module, "", fmt.Errorf("no last-known-good snapshot"))
		return nil
	}
	if age := now.Sub(entry.at); age > ttl {
		st.diag(DiagFetchFailure, uri.Module, "", fmt.Errorf("last-known-good snapshot expired (age %v > stale-ttl %v)", age, ttl))
		return nil
	}
	st.diag(DiagStaleFallback, uri.Module, "", fmt.Errorf("serving %d objects from snapshot aged %v (stale-ttl %v)", len(entry.files), now.Sub(entry.at), ttl))
	st.mu.Lock()
	st.res.StaleFallbacks++
	st.mu.Unlock()
	return entry.files
}

// processObject admits one fetched object: manifest admission, then ROA
// validation or child-CA chain validation. Runs under a worker slot. Its
// outputs accumulate on the moduleBuild; the committer merges them.
func (st *syncState) processObject(mb *moduleBuild, authority *cert.ResourceCert, effective ipres.Set, uri repo.URI, depth int, now time.Time, crl *cert.CRL, mft *manifest.Manifest, mftName, name string, raw []byte, hash [32]byte) {
	if mft != nil && name != mftName {
		if err := mft.VerifyHash(name, hash); err != nil {
			// Unlisted object: reject it outright; a repository must not
			// smuggle objects past its manifest.
			mb.diag(st, DiagHashMismatch, uri.Module, name, err)
			return
		}
	}
	ctxV := st.vctx(now, crl)
	switch {
	case strings.HasSuffix(name, ".roa"):
		signed, err := st.rp.cache.parseROA(st, hash, raw)
		if err != nil {
			mb.diag(st, DiagInvalidObject, uri.Module, name, err)
			return
		}
		if _, err := cert.ValidateChild(authority, effective, signed.EE, ctxV); err != nil {
			mb.diag(st, DiagInvalidObject, uri.Module, name, err)
			return
		}
		mb.observeCert(signed.EE)
		mb.addROA(rov.FromROA(signed.ROA))

	case strings.HasSuffix(name, ".cer"):
		child, err := st.rp.cache.parseCert(st, hash, raw)
		if err != nil {
			mb.diag(st, DiagInvalidObject, uri.Module, name, err)
			return
		}
		if !child.IsCA() {
			return // EE certs are embedded in signed objects
		}
		if child.Cert.SubjectKeyId != nil && authority.Cert.SubjectKeyId != nil &&
			string(child.Cert.SubjectKeyId) == string(authority.Cert.SubjectKeyId) {
			return // the authority's own certificate republished
		}
		childEffective, err := cert.ValidateChild(authority, effective, child, ctxV)
		if err != nil {
			mb.diag(st, DiagInvalidObject, uri.Module, name, err)
			return
		}
		mb.addCert()
		mb.observeCert(child)
		childURI, _, err := repo.ParseURI(strings.TrimSuffix(child.SIA.CARepository, "/"))
		if err != nil {
			mb.diag(st, DiagInvalidObject, uri.Module, name, fmt.Errorf("bad SIA: %w", err))
			return
		}
		mb.addChild(childLink{cert: child, effective: childEffective, uri: childURI})
		st.spawn(func() { st.walk(child, childEffective, childURI, depth-1) })
	}
}

// vctx builds a chain-validation context wired to the signature cache.
func (st *syncState) vctx(now time.Time, crl *cert.CRL) cert.ValidationContext {
	return cert.ValidationContext{Now: now, CRL: crl, Cache: st.rp.sigCache()}
}

// sigCache returns the persistent signature-verification cache (nil when
// caching is disabled — the cert package treats a nil cache as a no-op).
func (rp *RelyingParty) sigCache() *cert.VerifyCache {
	if rp.cache == nil {
		return nil
	}
	return rp.cache.sigs
}

// fetch retrieves a publication point, using the fetcher's incremental
// mode when snapshot caching is enabled and supported. The second return
// reports whether the incremental protocol proved every object's hash
// unchanged since the previous snapshot (reuse tier 2).
func (rp *RelyingParty) fetch(ctx context.Context, st *syncState, uri repo.URI) (map[string][]byte, bool, error) {
	inc, ok := rp.cfg.Fetcher.(IncrementalFetcher)
	if !rp.cfg.CacheSnapshots || !ok {
		files, err := rp.cfg.Fetcher.FetchAll(ctx, uri)
		return files, false, err
	}
	rp.snapMu.Lock()
	prev := rp.snapshots[uri.Module]
	rp.snapMu.Unlock()
	sync, err := inc.SyncIncremental(ctx, uri, prev)
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, err
		}
		// The incremental protocol failed mid-flight — truncated STAT,
		// an object flipping hashes between STAT and GET, a torn
		// connection. Never stitch a possibly-inconsistent view together:
		// fall back to one clean full fetch, and only if that too fails
		// report the point unreachable.
		files, ferr := inc.FetchAll(ctx, uri)
		if ferr != nil {
			return nil, false, ferr
		}
		rp.snapMu.Lock()
		rp.snapshots[uri.Module] = files
		rp.snapMu.Unlock()
		st.mu.Lock()
		st.res.IncrementalFallbacks++
		st.res.ObjectsDownloaded += len(files)
		st.mu.Unlock()
		rp.cfg.Obs.Recorder().Recordf(obs.EventIncrementalFallback, uri.Module,
			"incremental sync failed (%v); recovered with a full fetch", err)
		return files, false, nil
	}
	rp.snapMu.Lock()
	rp.snapshots[uri.Module] = sync.Files
	rp.snapMu.Unlock()
	st.mu.Lock()
	st.res.ObjectsDownloaded += sync.Downloaded
	st.res.ObjectsReused += sync.Reused
	st.mu.Unlock()
	return sync.Files, sync.Unchanged, nil
}

// manifestName extracts the manifest object name from the authority's SIA,
// falling back to "<module>.mft".
func manifestName(authority *cert.ResourceCert, uri repo.URI) string {
	if authority.SIA.Manifest != "" {
		if _, obj, err := repo.ParseURI(authority.SIA.Manifest); err == nil && obj != "" {
			return obj
		}
	}
	return uri.Module + ".mft"
}
