package rp_test

// Streaming-mode equivalence: the memory-bounded walk (Config.Streaming)
// must produce VRP sets identical to the default path on the same world, at
// any worker count — the correctness bar for the whole memory-bounded
// validation rework. The test package is external because the worlds come
// from modelgen, which itself imports rp.

import (
	"context"
	"testing"

	"repro/internal/modelgen"
	"repro/internal/rp"
)

// syncOnce validates a world and asserts a clean run.
func syncOnce(t *testing.T, v *rp.RelyingParty) *rp.Result {
	t.Helper()
	res, err := v.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diagnostics) > 0 {
		t.Fatalf("unexpected diagnostics, first: %v", res.Diagnostics[0])
	}
	return res
}

// assertSameVRPs compares two canonically sorted results element-wise.
func assertSameVRPs(t *testing.T, want, got *rp.Result, label string) {
	t.Helper()
	if len(want.VRPs) != len(got.VRPs) {
		t.Fatalf("%s: %d VRPs, want %d", label, len(got.VRPs), len(want.VRPs))
	}
	for i := range want.VRPs {
		if want.VRPs[i].Compare(got.VRPs[i]) != 0 {
			t.Fatalf("%s: VRP %d = %+v, want %+v", label, i, got.VRPs[i], want.VRPs[i])
		}
	}
	if want.ROAsAccepted != got.ROAsAccepted || want.CertsAccepted != got.CertsAccepted {
		t.Fatalf("%s: accepted (roas=%d, certs=%d), want (roas=%d, certs=%d)",
			label, got.ROAsAccepted, got.CertsAccepted, want.ROAsAccepted, want.CertsAccepted)
	}
}

func TestStreamingEquivalenceSynthetic(t *testing.T) {
	w, err := modelgen.Synthetic(modelgen.ProductionSized(42))
	if err != nil {
		t.Fatal(err)
	}
	baseline := syncOnce(t, rp.New(rp.Config{
		Fetcher: w.Stores, Clock: w.Clock, Workers: 1,
	}, w.Anchor()))
	for _, workers := range []int{1, 4} {
		streamed := syncOnce(t, rp.New(rp.Config{
			Fetcher: w.Stores, Clock: w.Clock, Workers: workers, Streaming: true,
		}, w.Anchor()))
		assertSameVRPs(t, baseline, streamed, "streaming synthetic")
	}
}

func TestStreamingEquivalence10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k tier generation in -short mode")
	}
	w, err := modelgen.GenerateScaled(modelgen.ScaleConfig{
		Seed: 99, ROAs: modelgen.Tier10k, Dir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	anchor, err := w.Anchor()
	if err != nil {
		t.Fatal(err)
	}
	var baseline *rp.Result
	for _, workers := range []int{1, 4} {
		plain := syncOnce(t, rp.New(rp.Config{
			Fetcher: w.Fetcher(), Clock: w.Clock(), Workers: workers,
		}, anchor))
		if baseline == nil {
			baseline = plain
			if plain.ROAsAccepted != modelgen.Tier10k {
				t.Fatalf("baseline accepted %d ROAs, want %d", plain.ROAsAccepted, modelgen.Tier10k)
			}
		} else {
			assertSameVRPs(t, baseline, plain, "baseline workers=4")
		}

		v := rp.New(rp.Config{
			Fetcher: w.Fetcher(), Clock: w.Clock(), Workers: workers, Streaming: true,
		}, anchor)
		streamed := syncOnce(t, v)
		assertSameVRPs(t, baseline, streamed, "streaming 10k")

		// Warm re-sync: the digest-only memo must prove every module
		// unchanged (re-hash, no re-validation) and reproduce the VRPs.
		warm := syncOnce(t, v)
		if warm.ModulesRevalidated != 0 {
			t.Fatalf("warm streaming re-sync revalidated %d modules, want 0", warm.ModulesRevalidated)
		}
		if warm.ModulesReused != w.Meta.Modules {
			t.Fatalf("warm streaming re-sync reused %d modules, want %d", warm.ModulesReused, w.Meta.Modules)
		}
		assertSameVRPs(t, baseline, warm, "warm streaming 10k")
	}
}
