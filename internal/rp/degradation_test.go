package rp

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/ipres"
	"repro/internal/repo"
	"repro/internal/roa"
	"repro/internal/rov"
)

// tcpWorld is a two-point hierarchy (TA → child with one ROA) served over a
// real rsynclite server, with independent fault plans per publication point.
type tcpWorld struct {
	addr        string
	anchor      TrustAnchor
	child       *ca.Authority
	taFaults    *repo.Faults
	childFaults *repo.Faults
}

// childRoute is the route announced under the child's ROA.
var childRoute = rov.Route{Prefix: ipres.MustParsePrefix("63.160.0.0/12"), Origin: 1239}

func buildTCPWorld(t *testing.T) *tcpWorld {
	t.Helper()
	cfg := ca.Config{Clock: clock}
	srv := repo.NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	taStore := repo.NewStore()
	taURI := repo.URI{Host: addr, Module: "ta"}
	ta, err := ca.NewTrustAnchor("ta", ipres.MustParseSet("63.0.0.0/8"), taStore, taURI, cfg)
	if err != nil {
		t.Fatal(err)
	}
	childStore := repo.NewStore()
	childURI := repo.URI{Host: addr, Module: "child"}
	child, err := ta.CreateChild("child", ipres.MustParseSet("63.160.0.0/12"), childStore, childURI)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := child.IssueROA("r", 1239, roa.MustParsePrefix("63.160.0.0/12-13")); err != nil {
		t.Fatal(err)
	}
	taFaults, childFaults := repo.NewFaults(), repo.NewFaults()
	srv.AddModule("ta", taStore, taFaults)
	srv.AddModule("child", childStore, childFaults)
	return &tcpWorld{
		addr:        addr,
		anchor:      TrustAnchor{CertDER: ta.Cert.Raw, URI: taURI},
		child:       child,
		taFaults:    taFaults,
		childFaults: childFaults,
	}
}

// resilientClient is a client tuned for fault tests: fast deterministic
// retries, optional breakers added by callers.
func resilientClient(maxRetries int) *repo.Client {
	return &repo.Client{
		Timeout: 2 * time.Second,
		Retry:   repo.RetryPolicy{MaxRetries: maxRetries, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Jitter: -1},
	}
}

func hasDiag(res *Result, kind DiagKind, module string) bool {
	for _, d := range res.Diagnostics {
		if d.Kind == kind && d.Module == module {
			return true
		}
	}
	return false
}

func TestDegradedFlakySyncConvergence(t *testing.T) {
	// A 2-of-3 flaky world: both points fail two of every three requests.
	// The retrying relying party must converge to the byte-identical VRP set
	// a healthy world yields, with the degradation visible in the counters.
	w := buildTCPWorld(t)
	baseline, err := New(Config{Fetcher: resilientClient(0), Clock: clock}, w.anchor).Sync(context.Background())
	if err != nil || baseline.Incomplete() {
		t.Fatalf("healthy baseline: %v %v", err, baseline.Diagnostics)
	}
	w.taFaults.FailRate("", 2, 3)
	w.childFaults.FailRate("", 2, 3)
	relying := New(Config{Fetcher: resilientClient(4), Clock: clock}, w.anchor)
	res, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete() {
		t.Fatalf("flaky sync should converge cleanly, diags: %v", res.Diagnostics)
	}
	if !reflect.DeepEqual(res.VRPs, baseline.VRPs) {
		t.Errorf("flaky VRPs diverge from baseline:\n%v\n%v", res.VRPs, baseline.VRPs)
	}
	if res.Retries == 0 {
		t.Error("retries must be observable on the Result")
	}
}

func TestDegradedWorkerCountDeterminism(t *testing.T) {
	// Determinism at any worker count must survive a flaky world: the VRP
	// set, diagnostics and even the exact retry count are independent of
	// scheduling.
	w := buildTCPWorld(t)
	run := func(workers int) *Result {
		// Re-arming the rates resets the request counters so every run sees
		// the same fail/succeed pattern.
		w.taFaults.FailRate("", 2, 3)
		w.childFaults.FailRate("", 2, 3)
		relying := New(Config{Fetcher: resilientClient(4), Clock: clock, Workers: workers}, w.anchor)
		res, err := relying.Sync(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq.VRPs, par.VRPs) {
		t.Errorf("VRPs differ across worker counts:\n%v\n%v", seq.VRPs, par.VRPs)
	}
	if !reflect.DeepEqual(seq.Diagnostics, par.Diagnostics) {
		t.Errorf("diagnostics differ across worker counts:\n%v\n%v", seq.Diagnostics, par.Diagnostics)
	}
	if seq.Retries != par.Retries {
		t.Errorf("retry counts differ: %d (workers=1) vs %d (workers=8)", seq.Retries, par.Retries)
	}
	if seq.Retries == 0 {
		t.Error("the flaky world should have forced retries")
	}
}

func TestLKGFallbackServesUntilTTLExpiry(t *testing.T) {
	// The retry → breaker → LKG → TTL-expiry ladder end to end: a dead point
	// serves its last-known-good snapshot (route stays Valid) until StaleTTL
	// elapses, after which its VRPs drop — the paper's Side Effect 6, now
	// delayed and observable instead of immediate and silent.
	w := buildTCPWorld(t)
	now := testEpoch
	relying := New(Config{
		Fetcher:  resilientClient(1),
		Clock:    func() time.Time { return now },
		StaleTTL: time.Hour,
	}, w.anchor)

	first, err := relying.Sync(context.Background())
	if err != nil || first.Incomplete() {
		t.Fatalf("clean sync: %v %v", err, first.Diagnostics)
	}
	if first.Index().State(childRoute) != rov.Valid {
		t.Fatal("baseline route should be Valid")
	}

	// The child's repository goes dark.
	w.childFaults.Refuse(true)
	now = now.Add(10 * time.Minute)
	second, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !hasDiag(second, DiagPointUnreachable, "child") || !hasDiag(second, DiagStaleFallback, "child") {
		t.Fatalf("want point-unreachable + stale-fallback diagnostics, got %v", second.Diagnostics)
	}
	if second.StaleFallbacks != 1 {
		t.Errorf("StaleFallbacks = %d, want 1", second.StaleFallbacks)
	}
	if !reflect.DeepEqual(second.VRPs, first.VRPs) {
		t.Errorf("stale fallback should reproduce the snapshot's VRPs")
	}
	if second.Index().State(childRoute) != rov.Valid {
		t.Error("route should remain Valid while the snapshot is fresh")
	}

	// Past the TTL the snapshot is retired: bounded staleness.
	now = now.Add(2 * time.Hour)
	third, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if third.StaleFallbacks != 0 {
		t.Errorf("expired snapshot must not be served, StaleFallbacks = %d", third.StaleFallbacks)
	}
	if !hasDiag(third, DiagPointUnreachable, "child") || !hasDiag(third, DiagFetchFailure, "child") {
		t.Fatalf("want point-unreachable + fetch-failure after expiry, got %v", third.Diagnostics)
	}
	if got := third.Index().State(childRoute); got == rov.Valid {
		t.Errorf("route must degrade after StaleTTL, got %v", got)
	}
}

func TestLKGDisabledPreservesOldBehavior(t *testing.T) {
	// StaleTTL == 0: an unreachable point is an immediate DiagFetchFailure
	// and its subtree vanishes — exactly the pre-resilience semantics.
	w := buildTCPWorld(t)
	relying := New(Config{Fetcher: resilientClient(1), Clock: clock}, w.anchor)
	if _, err := relying.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	w.childFaults.Refuse(true)
	res, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !hasDiag(res, DiagFetchFailure, "child") {
		t.Fatalf("want fetch-failure, got %v", res.Diagnostics)
	}
	if hasDiag(res, DiagStaleFallback, "child") || res.StaleFallbacks != 0 {
		t.Error("no fallback may happen with StaleTTL disabled")
	}
	if res.Index().State(childRoute) == rov.Valid {
		t.Error("dead point's route must drop immediately without LKG")
	}
}

func TestLKGNotPoisonedByCorruptFetch(t *testing.T) {
	// A fetch that succeeds but validates dirty (corrupted ROA) must NOT
	// overwrite the clean snapshot: when the point later dies, the fallback
	// serves the last CLEAN state, breaking the fault latch of Side Effect 7.
	w := buildTCPWorld(t)
	now := testEpoch
	relying := New(Config{
		Fetcher:  resilientClient(1),
		Clock:    func() time.Time { return now },
		StaleTTL: time.Hour,
	}, w.anchor)

	first, err := relying.Sync(context.Background())
	if err != nil || first.Incomplete() {
		t.Fatalf("clean sync: %v %v", err, first.Diagnostics)
	}

	// Corrupted in flight: the sync completes, the ROA is rejected.
	w.childFaults.Corrupt("r.roa")
	now = now.Add(10 * time.Minute)
	second, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !second.Incomplete() {
		t.Fatal("corruption must be diagnosed")
	}
	if second.Index().State(childRoute) == rov.Valid {
		t.Fatal("corrupt ROA must not validate")
	}

	// The point dies. The fallback must serve the t0 snapshot, not the
	// corrupted t1 fetch.
	w.childFaults.Restore("")
	w.childFaults.Refuse(true)
	now = now.Add(10 * time.Minute)
	third, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if third.StaleFallbacks != 1 {
		t.Fatalf("want one stale fallback, got %d (diags %v)", third.StaleFallbacks, third.Diagnostics)
	}
	if third.Index().State(childRoute) != rov.Valid {
		t.Error("fallback must serve the last CLEAN snapshot: route should be Valid again")
	}
}

func TestLKGBreakerDefeatsSlowLorisSync(t *testing.T) {
	// Stalloris: the child repository trickles one byte per interval. The
	// per-request deadline fails the reads, the breaker stops further
	// attempts, and the LKG store keeps the route Valid — the whole sync
	// finishes in seconds instead of stalling a worker indefinitely.
	w := buildTCPWorld(t)
	now := testEpoch
	client := &repo.Client{
		Timeout:  150 * time.Millisecond,
		Retry:    repo.RetryPolicy{MaxRetries: 3, BaseDelay: time.Millisecond, Jitter: -1},
		Breakers: repo.NewBreakerSet(repo.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour}),
	}
	relying := New(Config{
		Fetcher:  client,
		Clock:    func() time.Time { return now },
		StaleTTL: time.Hour,
	}, w.anchor)

	first, err := relying.Sync(context.Background())
	if err != nil || first.Incomplete() {
		t.Fatalf("clean sync: %v %v", err, first.Diagnostics)
	}

	w.childFaults.SetSlowLoris(100 * time.Millisecond)
	now = now.Add(10 * time.Minute)
	start := time.Now()
	second, err := relying.Sync(context.Background())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("slow-loris sync took %v; deadline+breaker must bound it", elapsed)
	}
	if second.BreakerTrips < 1 {
		t.Errorf("breaker trips = %d, want >= 1", second.BreakerTrips)
	}
	if second.StaleFallbacks != 1 {
		t.Errorf("StaleFallbacks = %d, want 1 (diags %v)", second.StaleFallbacks, second.Diagnostics)
	}
	if second.Index().State(childRoute) != rov.Valid {
		t.Error("route should stay Valid via the LKG snapshot")
	}
}

func TestSyncFaultCancellationReturnsCtxErr(t *testing.T) {
	// Cancelling the sync context mid-fetch must abort promptly and surface
	// ctx.Err() — not linger until a timeout nor bury the abort in
	// diagnostics as fake incompleteness.
	w := buildTCPWorld(t)
	w.childFaults.SetSlowLoris(200 * time.Millisecond)
	relying := New(Config{
		Fetcher: &repo.Client{Timeout: 30 * time.Second},
		Clock:   clock,
	}, w.anchor)

	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := relying.Sync(ctx)
		done <- outcome{res, err}
	}()
	time.Sleep(150 * time.Millisecond)
	cancel()
	select {
	case o := <-done:
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", o.err)
		}
		if o.res != nil {
			t.Error("canceled sync must not return a partial result")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sync did not abort promptly after cancellation")
	}
}

func TestSyncIncrementalLKGDegradation(t *testing.T) {
	// The incremental (STAT-driven) path rides the same ladder: flaky points
	// converge with retries and reuse, and a dead point falls back to LKG.
	w := buildTCPWorld(t)
	now := testEpoch
	relying := New(Config{
		Fetcher:        resilientClient(2),
		Clock:          func() time.Time { return now },
		CacheSnapshots: true,
		StaleTTL:       time.Hour,
	}, w.anchor)

	first, err := relying.Sync(context.Background())
	if err != nil || first.Incomplete() {
		t.Fatalf("cold sync: %v %v", err, first.Diagnostics)
	}
	if first.ObjectsDownloaded == 0 {
		t.Fatal("cold sync should download")
	}

	// Every other request fails: the warm sync still reuses everything.
	w.taFaults.FailRate("", 1, 2)
	w.childFaults.FailRate("", 1, 2)
	now = now.Add(10 * time.Minute)
	second, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if second.Incomplete() {
		t.Fatalf("flaky incremental sync should converge: %v", second.Diagnostics)
	}
	if second.ObjectsReused != first.ObjectsDownloaded {
		t.Errorf("reused = %d, want %d", second.ObjectsReused, first.ObjectsDownloaded)
	}
	if second.Retries == 0 {
		t.Error("retries should be observable")
	}
	if !reflect.DeepEqual(second.VRPs, first.VRPs) {
		t.Error("flaky incremental sync must reproduce the VRP set")
	}

	// The child dies entirely: incremental fetch fails, LKG serves.
	w.childFaults.Restore("")
	w.taFaults.Restore("")
	w.childFaults.Refuse(true)
	now = now.Add(10 * time.Minute)
	third, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if third.StaleFallbacks != 1 {
		t.Errorf("StaleFallbacks = %d, want 1 (diags %v)", third.StaleFallbacks, third.Diagnostics)
	}
	if third.Index().State(childRoute) != rov.Valid {
		t.Error("route should stay Valid via LKG on the incremental path")
	}
}
