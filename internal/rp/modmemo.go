// Module-level validation memoization: the steady-state fast path.
//
// A relying party polling an unchanged world still pays O(all objects) per
// sync — every byte re-hashed, every manifest cross-checked, every chain
// re-walked — which is exactly the cost Stalloris-style adversaries inflate.
// This file caches, per publication point ("module"), the complete validated
// outputs of the last clean validation: VRPs, accepted-object counters, and
// the child CAs whose walks the module spawns. A later sync that can prove
// the module's bytes are unchanged AND that the cached verdicts are still
// within their temporal epoch reuses those outputs wholesale, skipping
// hashing, manifest cross-checks, and chain validation entirely.
//
// Unchanged-ness is established by one of three tiers, cheapest first:
//
//  1. the fetcher reports a store version (VersionedFetcher) equal to the
//     one recorded when the entry was validated — no fetch at all;
//  2. the incremental fetch protocol reports every object's STAT hash
//     unchanged (repo.SyncResult.Unchanged) — network round-trips but no
//     object transfer and no local re-validation;
//  3. the fetched bytes compare equal to the entry's snapshot — a memcmp,
//     still far cheaper than hashing plus signature verification.
//
// Reuse is safe only inside the entry's temporal epoch: the intersection of
// every validated certificate's validity window, the manifest's nextUpdate,
// and the winning CRL's nextUpdate. Outside that window a re-validation
// could flip verdicts even though no byte changed, so the entry is ignored
// and the module is re-validated. Revocation and resource-containment
// verdicts cannot drift inside the epoch when the bytes (including the CRL)
// are unchanged and the issuing authority is unchanged.
//
// The authority matters as much as the bytes: a grandparent re-issuing a
// shrunken child certificate (the paper's certificate-whacking, Side Effect
// 2) changes a module's outcome without touching the module. Entries are
// therefore keyed on the SHA-256 of the issuing authority's certificate and
// on the effective resource set inherited down the chain; either changing
// forces a full re-validation.
//
// Only clean validations are cached — a module that produced any diagnostic
// deletes its entry — so reuse can never replay a degraded result.
package rp

import (
	"bytes"
	"crypto/sha256"
	"sync"
	"time"

	"repro/internal/cert"
	"repro/internal/ipres"
	"repro/internal/obs"
	"repro/internal/repo"
	"repro/internal/rov"
)

// VersionedFetcher is optionally implemented by fetchers that can report a
// cheap monotonic version for a publication point's backing store
// (StoreFetcher does, via repo.Store.Version). A version equal to the one
// recorded at validation time proves the module unchanged without fetching.
// The version is read BEFORE any fetch, so a store mutating mid-sync can
// only cause a spurious re-validation, never a false reuse.
type VersionedFetcher interface {
	Fetcher
	// SnapshotVersion returns the current version of the point's store and
	// whether a version is available for it.
	SnapshotVersion(uri repo.URI) (uint64, bool)
}

// childLink records one validated child CA discovered in a module, enough
// to re-spawn its publication-point walk on reuse.
type childLink struct {
	cert      *cert.ResourceCert
	effective ipres.Set
	uri       repo.URI
}

// moduleEntry is one module's cached validation outcome.
type moduleEntry struct {
	// authorityHash and effective identify the validation context: SHA-256
	// of the issuing authority's DER certificate, and the effective resource
	// set handed down the chain. A mismatch means the module must be
	// re-validated even if its own bytes are unchanged.
	authorityHash [32]byte
	effective     ipres.Set
	// version is the fetcher-reported store version at validation time
	// (valid only when hasVersion).
	version    uint64
	hasVersion bool
	// files is the exact snapshot the entry was validated from. In
	// streaming mode it is nil and digests carries the per-object SHA-256
	// of that snapshot instead — same reuse guarantee, none of the bytes.
	files   map[string][]byte
	digests map[string][32]byte
	// notBefore/notAfter bound the epoch inside which the cached verdicts
	// are time-invariant: max of all validated certs' notBefore, and min of
	// cert notAfters, manifest nextUpdate, and winning CRL nextUpdate.
	// Zero values mean unbounded on that side.
	notBefore, notAfter time.Time
	// Validated outputs.
	vrps     []rov.VRP
	roas     int
	certs    int
	children []childLink
}

// matches reports whether the entry was validated under the same issuing
// authority and effective resource set.
func (e *moduleEntry) matches(authority *cert.ResourceCert, effective ipres.Set) bool {
	return e.authorityHash == authorityDigest(authority) && e.effective.Equal(effective)
}

// within reports whether now falls inside the entry's temporal epoch.
func (e *moduleEntry) within(now time.Time) bool {
	if !e.notBefore.IsZero() && now.Before(e.notBefore) {
		return false
	}
	if !e.notAfter.IsZero() && now.After(e.notAfter) {
		return false
	}
	return true
}

// moduleMemo holds moduleEntry values across Sync calls, keyed by module
// name. Nil when DisableModuleReuse is set.
type moduleMemo struct {
	mu sync.Mutex
	// entries maps module name to cached outcome. guarded by mu.
	entries map[string]*moduleEntry
}

func newModuleMemo() *moduleMemo {
	return &moduleMemo{entries: make(map[string]*moduleEntry)}
}

func (m *moduleMemo) get(module string) *moduleEntry {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.entries[module]
}

// put commits a memoized module outcome.
//
//taint:sink memoized validation verdicts reused across runs
func (m *moduleMemo) put(module string, e *moduleEntry) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[module] = e
}

func (m *moduleMemo) delete(module string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.entries, module)
}

// refreshVersion updates an entry's recorded store version after a reuse
// that proved unchanged-ness by tier 2 or 3, so the next sync can take the
// cheaper tier-1 path.
func (m *moduleMemo) refreshVersion(module string, version uint64, hasVersion bool) {
	if m == nil || !hasVersion {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[module]; ok {
		e.version, e.hasVersion = version, true
	}
}

// sameFiles reports whether two snapshots are byte-identical (tier 3).
func sameFiles(a, b map[string][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for name, ac := range a {
		bc, ok := b[name]
		if !ok || !bytes.Equal(ac, bc) {
			return false
		}
	}
	return true
}

// sameDigests reports whether a snapshot's per-object hashes match a
// digest-only memo entry (tier 3, streaming flavor).
func sameDigests(hashes, digests map[string][32]byte) bool {
	if len(hashes) != len(digests) {
		return false
	}
	for name, h := range hashes {
		d, ok := digests[name]
		if !ok || d != h {
			return false
		}
	}
	return true
}

// moduleBuild accumulates one walk's per-module outputs so they can be
// merged into the sync result and, when clean, committed to the memo. Its
// WaitGroup tracks the module's own object tasks (not child walks); the
// committer goroutine waits on it before merging.
type moduleBuild struct {
	// memoizable is false when the files came from a degraded source (LKG
	// fallback or a partial fetch): the walk still validates and merges, but
	// neither commits nor deletes a memo entry, because the bytes validated
	// do not correspond to the point's current snapshot.
	memoizable bool
	version    uint64
	hasVersion bool
	files      map[string][]byte
	// hashes is the per-object digest map computed by the walk's hashing
	// pass; in streaming mode it becomes the memo entry's digest snapshot.
	hashes map[string][32]byte
	// holdsSlot marks that the walk acquired an in-flight-module slot
	// (streaming mode) which commitModule must release.
	holdsSlot bool
	// span is the module's walk trace span and verifySpan its verify child
	// (nil when tracing is off); the committer ends both. Written by the
	// walk goroutine before the committer is spawned.
	span, verifySpan *obs.Span

	wg sync.WaitGroup

	mu sync.Mutex
	// Taint count, accumulated outputs and epoch bounds. guarded by mu.
	diags               int
	vrps                []rov.VRP
	roas                int
	certs               int
	children            []childLink
	notBefore, notAfter time.Time
}

// observeCert folds a validated certificate's validity window into the
// epoch accumulators.
func (mb *moduleBuild) observeCert(c *cert.ResourceCert) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if nb := c.NotBefore(); mb.notBefore.IsZero() || nb.After(mb.notBefore) {
		mb.notBefore = nb
	}
	if na := c.NotAfter(); mb.notAfter.IsZero() || na.Before(mb.notAfter) {
		mb.notAfter = na
	}
}

// observeNotAfter folds a freshness deadline (manifest or CRL nextUpdate)
// into the epoch's upper bound.
func (mb *moduleBuild) observeNotAfter(t time.Time) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if !t.IsZero() && (mb.notAfter.IsZero() || t.Before(mb.notAfter)) {
		mb.notAfter = t
	}
}

// diag emits a module diagnostic and taints the build: a tainted module
// merges its outputs normally but never commits a memo entry.
func (mb *moduleBuild) diag(st *syncState, kind DiagKind, module, object string, err error) {
	mb.mu.Lock()
	mb.diags++
	mb.mu.Unlock()
	st.diag(kind, module, object, err)
}

func (mb *moduleBuild) addROA(vrps []rov.VRP) {
	mb.mu.Lock()
	mb.roas++
	mb.vrps = append(mb.vrps, vrps...)
	mb.mu.Unlock()
}

func (mb *moduleBuild) addCert() {
	mb.mu.Lock()
	mb.certs++
	mb.mu.Unlock()
}

func (mb *moduleBuild) addChild(link childLink) {
	mb.mu.Lock()
	mb.children = append(mb.children, link)
	mb.mu.Unlock()
}

func authorityDigest(authority *cert.ResourceCert) [32]byte {
	return sha256.Sum256(authority.Raw)
}
