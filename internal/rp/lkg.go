// Last-known-good (LKG) fallback: the relying party's answer to the paper's
// Side Effects 6 and 7. Each sync snapshots every publication point that
// validated cleanly; when a later sync finds the point unreachable (dead,
// refusing, circuit-broken, or gated by the very routes it should be
// validating), the snapshot is revalidated in its place — for at most
// StaleTTL. Deployed validators (Routinator, rpki-client) survive flaky
// repositories exactly this way; bounding the staleness is the paper's §4
// tradeoff: an unreachable repository must degrade service eventually, or a
// coerced authority could freeze the relying party's world state forever by
// taking its repository offline.
package rp

import (
	"sync"
	"time"
)

// lkgEntry is one publication point's last cleanly-validated snapshot.
type lkgEntry struct {
	// files is the full fetched content of the point at snapshot time.
	files map[string][]byte
	// at is the sync time of the snapshot (per the relying party's clock).
	at time.Time
}

// lkgStore holds LKG snapshots across Sync calls. Snapshots are committed
// only for points whose sync produced zero diagnostics — "verified objects"
// — so a corrupted or partially-served point never overwrites the good
// snapshot its fallback would need.
type lkgStore struct {
	mu sync.Mutex
	// points maps module name to its last clean snapshot. guarded by mu.
	points map[string]lkgEntry
}

func newLKGStore() *lkgStore {
	return &lkgStore{points: make(map[string]lkgEntry)}
}

// put commits a snapshot for module.
//
//taint:sink last-known-good snapshots served during authority outages
func (s *lkgStore) put(module string, files map[string][]byte, at time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.points[module] = lkgEntry{files: files, at: at}
}

// get returns module's snapshot, if any.
func (s *lkgStore) get(module string) (lkgEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.points[module]
	return e, ok
}

// Len reports how many points have snapshots (for observability).
func (s *lkgStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}
