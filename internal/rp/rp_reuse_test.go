package rp

import (
	"context"
	"testing"
	"time"

	"repro/internal/ipres"
)

// syncReuse runs one Sync on an existing relying party and fails the test
// on error.
func syncReuse(t *testing.T, relying *RelyingParty) *Result {
	t.Helper()
	res, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestModuleReuseWarmResync: a second sync of an unchanged world reuses
// every module — zero re-validation — and produces identical output.
func TestModuleReuseWarmResync(t *testing.T) {
	arin, _, _, stores := buildFigure2(t)
	relying := New(Config{Fetcher: stores, Clock: clock, Workers: 4},
		TrustAnchor{CertDER: arin.Cert.Raw, URI: arin.URI})
	cold := syncReuse(t, relying)
	if cold.ModulesRevalidated != cold.PubPointsVisited {
		t.Errorf("cold: revalidated %d of %d points", cold.ModulesRevalidated, cold.PubPointsVisited)
	}
	if cold.ModulesReused != 0 {
		t.Errorf("cold: %d modules reused, want 0", cold.ModulesReused)
	}
	warm := syncReuse(t, relying)
	if warm.ModulesRevalidated != 0 {
		t.Errorf("warm: revalidated %d modules, want 0", warm.ModulesRevalidated)
	}
	if warm.ModulesReused != cold.PubPointsVisited {
		t.Errorf("warm: reused %d modules, want %d", warm.ModulesReused, cold.PubPointsVisited)
	}
	if got, want := fingerprint(warm), fingerprint(cold); got != want {
		t.Errorf("warm resync diverged:\n--- warm ---\n%s--- cold ---\n%s", got, want)
	}
}

// TestModuleReuseOneModuleChanged: a change to one publication point
// re-validates exactly that point; every other module is reused, and the
// output matches a from-scratch validation of the new world.
func TestModuleReuseOneModuleChanged(t *testing.T) {
	arin, _, continental, stores := buildFigure2(t)
	relying := New(Config{Fetcher: stores, Clock: clock, Workers: 4},
		TrustAnchor{CertDER: arin.Cert.Raw, URI: arin.URI})
	cold := syncReuse(t, relying)

	// The authority deletes a ROA (and republishes its manifest/CRL):
	// only the continental module's bytes change.
	if err := continental.DeleteROA("cont-22"); err != nil {
		t.Fatal(err)
	}
	warm := syncReuse(t, relying)
	if warm.ModulesRevalidated != 1 {
		t.Errorf("revalidated %d modules, want exactly 1", warm.ModulesRevalidated)
	}
	if want := cold.PubPointsVisited - 1; warm.ModulesReused != want {
		t.Errorf("reused %d modules, want %d", warm.ModulesReused, want)
	}
	fresh := syncWithWorkers(t, arin, stores, 4)
	if got, want := fingerprint(warm), fingerprint(fresh); got != want {
		t.Errorf("incremental result diverged from fresh validation:\n--- warm ---\n%s--- fresh ---\n%s", got, want)
	}
	if len(warm.VRPs) >= len(cold.VRPs) {
		t.Errorf("deleting a ROA should shrink the VRP set: %d -> %d", len(cold.VRPs), len(warm.VRPs))
	}
}

// TestModuleReuseOutputEquivalence: the VRP set and diagnostics are
// byte-identical with and without module reuse, at any worker count, on
// both cold and warm syncs.
func TestModuleReuseOutputEquivalence(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		arin, _, continental, stores := buildFigure2(t)
		mk := func(disable bool) *RelyingParty {
			return New(Config{Fetcher: stores, Clock: clock, Workers: workers, DisableModuleReuse: disable},
				TrustAnchor{CertDER: arin.Cert.Raw, URI: arin.URI})
		}
		with, without := mk(false), mk(true)
		if got, want := fingerprint(syncReuse(t, with)), fingerprint(syncReuse(t, without)); got != want {
			t.Errorf("workers=%d cold sync diverged:\n--- reuse ---\n%s--- no reuse ---\n%s", workers, got, want)
		}
		// Mutate, then compare the warm syncs (one reuses 3 modules, the
		// other re-validates all 4).
		if err := continental.DeleteROA("cont-26"); err != nil {
			t.Fatal(err)
		}
		if got, want := fingerprint(syncReuse(t, with)), fingerprint(syncReuse(t, without)); got != want {
			t.Errorf("workers=%d warm sync diverged:\n--- reuse ---\n%s--- no reuse ---\n%s", workers, got, want)
		}
	}
}

// TestModuleReuseEpochExpiry: reuse must stop at the cached epoch's edge.
// Advancing the clock past the manifest/CRL freshness window (24h in the
// test CA) forces a full re-validation even though no byte changed — the
// re-validation then reports the stale manifests a cold sync would.
func TestModuleReuseEpochExpiry(t *testing.T) {
	arin, _, _, stores := buildFigure2(t)
	now := testEpoch
	relying := New(Config{Fetcher: stores, Clock: func() time.Time { return now }, Workers: 4},
		TrustAnchor{CertDER: arin.Cert.Raw, URI: arin.URI})
	cold := syncReuse(t, relying)

	// Inside the epoch: reuse.
	now = testEpoch.Add(23 * time.Hour)
	warm := syncReuse(t, relying)
	if warm.ModulesReused != cold.PubPointsVisited || warm.ModulesRevalidated != 0 {
		t.Errorf("inside epoch: reused=%d revalidated=%d, want %d/0",
			warm.ModulesReused, warm.ModulesRevalidated, cold.PubPointsVisited)
	}

	// Past the manifests' nextUpdate: the cached verdicts may no longer
	// hold, so every module re-validates (and reports staleness).
	now = testEpoch.Add(25 * time.Hour)
	expired := syncReuse(t, relying)
	if expired.ModulesReused != 0 {
		t.Errorf("past epoch: %d modules reused, want 0", expired.ModulesReused)
	}
	if expired.ModulesRevalidated != cold.PubPointsVisited {
		t.Errorf("past epoch: revalidated %d, want %d", expired.ModulesRevalidated, cold.PubPointsVisited)
	}
	stale := 0
	for _, d := range expired.Diagnostics {
		if d.Kind == DiagStaleManifest {
			stale++
		}
	}
	if stale == 0 {
		t.Error("past epoch: expected stale-manifest diagnostics from the re-validation")
	}
}

// TestModuleReuseAuthorityChange: the paper's certificate whacking. A
// grandparent shrinking a child CA's resources changes nothing in the
// child's own publication point, but its validation outcome changes — the
// memo must re-validate, not reuse.
func TestModuleReuseAuthorityChange(t *testing.T) {
	arin, sprint, _, stores := buildFigure2(t)
	relying := New(Config{Fetcher: stores, Clock: clock, Workers: 4},
		TrustAnchor{CertDER: arin.Cert.Raw, URI: arin.URI})
	cold := syncReuse(t, relying)

	// Sprint whacks Continental down to a /24: continental's own store is
	// untouched, but its ROAs now exceed the shrunken certificate.
	if err := sprint.ShrinkChild("continental", ipres.MustParseSet("63.174.16.0/24")); err != nil {
		t.Fatal(err)
	}
	warm := syncReuse(t, relying)
	if warm.ModulesReused >= cold.PubPointsVisited {
		t.Errorf("reused %d modules after an authority change", warm.ModulesReused)
	}
	fresh := syncWithWorkers(t, arin, stores, 4)
	if got, want := fingerprint(warm), fingerprint(fresh); got != want {
		t.Errorf("post-whack result diverged from fresh validation:\n--- warm ---\n%s--- fresh ---\n%s", got, want)
	}
	if len(warm.VRPs) >= len(cold.VRPs) {
		t.Errorf("whacking should shrink the VRP set: %d -> %d", len(cold.VRPs), len(warm.VRPs))
	}
}

// TestModuleReuseDisabled: the knob really disables the memo.
func TestModuleReuseDisabled(t *testing.T) {
	arin, _, _, stores := buildFigure2(t)
	relying := New(Config{Fetcher: stores, Clock: clock, Workers: 4, DisableModuleReuse: true},
		TrustAnchor{CertDER: arin.Cert.Raw, URI: arin.URI})
	cold := syncReuse(t, relying)
	warm := syncReuse(t, relying)
	if warm.ModulesReused != 0 {
		t.Errorf("reused %d modules with reuse disabled", warm.ModulesReused)
	}
	if warm.ModulesRevalidated != cold.PubPointsVisited {
		t.Errorf("revalidated %d, want %d", warm.ModulesRevalidated, cold.PubPointsVisited)
	}
	if got, want := fingerprint(warm), fingerprint(cold); got != want {
		t.Errorf("warm resync diverged:\n--- warm ---\n%s--- cold ---\n%s", got, want)
	}
}

// TestModuleReuseTaintedNotCached: a module that validated with any
// diagnostic must never be reused, even when its bytes are unchanged — a
// degraded verdict is recomputed every sync until the authority fixes it.
func TestModuleReuseTaintedNotCached(t *testing.T) {
	arin, _, _, stores := buildFigure2(t)
	// Corrupt a ROA in place (behind the manifest's back).
	raw, _ := stores["continental"].Get("cont-25.roa")
	raw[len(raw)-1] ^= 0xFF
	stores["continental"].Put("cont-25.roa", raw)

	relying := New(Config{Fetcher: stores, Clock: clock, Workers: 4},
		TrustAnchor{CertDER: arin.Cert.Raw, URI: arin.URI})
	cold := syncReuse(t, relying)
	if !cold.Incomplete() {
		t.Fatal("corrupted world should be incomplete")
	}
	warm := syncReuse(t, relying)
	// The three clean modules are reused; the tainted one re-validates.
	if warm.ModulesRevalidated != 1 {
		t.Errorf("revalidated %d modules, want 1 (the tainted one)", warm.ModulesRevalidated)
	}
	if got, want := fingerprint(warm), fingerprint(cold); got != want {
		t.Errorf("warm resync of tainted world diverged:\n--- warm ---\n%s--- cold ---\n%s", got, want)
	}
}
