package rp

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/ca"
	"repro/internal/ipres"
	"repro/internal/repo"
)

// fingerprint renders everything a Result promises to make deterministic:
// sorted VRPs, canonically ordered diagnostics, and the exact counters.
// Cache counters are excluded — they depend on whether the relying party's
// cache is warm, which the determinism guarantee does not cover.
func fingerprint(r *Result) string {
	var b strings.Builder
	for _, v := range r.VRPs {
		fmt.Fprintf(&b, "vrp %v\n", v)
	}
	for _, d := range r.Diagnostics {
		fmt.Fprintf(&b, "diag %v\n", d)
	}
	fmt.Fprintf(&b, "points=%d roas=%d certs=%d downloaded=%d reused=%d\n",
		r.PubPointsVisited, r.ROAsAccepted, r.CertsAccepted, r.ObjectsDownloaded, r.ObjectsReused)
	return b.String()
}

func syncWithWorkers(t *testing.T, arin *ca.Authority, stores StoreFetcher, workers int) *Result {
	t.Helper()
	relying := New(Config{
		Fetcher: stores,
		Clock:   clock,
		Workers: workers,
	}, TrustAnchor{CertDER: arin.Cert.Raw, URI: arin.URI})
	result, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return result
}

// TestParallelMatchesSequentialClean checks that a parallel sync of the
// clean model world is byte-for-byte identical to the sequential baseline.
func TestParallelMatchesSequentialClean(t *testing.T) {
	arin, _, _, stores := buildFigure2(t)
	seq := syncWithWorkers(t, arin, stores, 1)
	for _, workers := range []int{2, 4, 8} {
		par := syncWithWorkers(t, arin, stores, workers)
		if got, want := fingerprint(par), fingerprint(seq); got != want {
			t.Errorf("workers=%d diverged from sequential:\n--- parallel ---\n%s--- sequential ---\n%s", workers, got, want)
		}
	}
}

// TestParallelMatchesSequentialFaults repeats the equivalence check on a
// world with injected faults: a third-party-deleted object, a corrupted
// object, and a dead publication point.
func TestParallelMatchesSequentialFaults(t *testing.T) {
	build := func(t *testing.T) (*ca.Authority, StoreFetcher) {
		arin, _, _, stores := buildFigure2(t)
		// Missing object: deleted behind the manifest's back.
		stores["continental"].Delete("cont-22.roa")
		// Hash mismatch: corrupted in place.
		raw, _ := stores["continental"].Get("cont-25.roa")
		raw[len(raw)-1] ^= 0xFF
		stores["continental"].Put("cont-25.roa", raw)
		// Dead publication point: ETB's store vanishes entirely.
		delete(stores, "etb")
		return arin, stores
	}
	arin, stores := build(t)
	seq := syncWithWorkers(t, arin, stores, 1)
	if !seq.Incomplete() {
		t.Fatal("fault world should be incomplete")
	}
	sawFetchFailure := false
	for _, d := range seq.Diagnostics {
		if d.Kind == DiagFetchFailure && d.Module == "etb" {
			sawFetchFailure = true
		}
	}
	if !sawFetchFailure {
		t.Fatalf("want etb fetch-failure, got %v", seq.Diagnostics)
	}
	for _, workers := range []int{2, 8} {
		par := syncWithWorkers(t, arin, stores, workers)
		if got, want := fingerprint(par), fingerprint(seq); got != want {
			t.Errorf("workers=%d diverged on fault world:\n--- parallel ---\n%s--- sequential ---\n%s", workers, got, want)
		}
	}
}

// TestParallelDeterministic runs the same parallel sync repeatedly and
// requires identical output every time, exercising scheduling variation
// (and the race detector, under -race).
func TestParallelDeterministic(t *testing.T) {
	arin, _, _, stores := buildFigure2(t)
	stores["continental"].Delete("cont-22.roa") // some diagnostics in play
	want := fingerprint(syncWithWorkers(t, arin, stores, 8))
	for i := 0; i < 5; i++ {
		if got := fingerprint(syncWithWorkers(t, arin, stores, 8)); got != want {
			t.Fatalf("run %d differs:\n--- got ---\n%s--- want ---\n%s", i, got, want)
		}
	}
}

// TestWarmCacheResync checks the verification cache: a second sync of an
// unchanged world performs zero fresh verifications (all cache hits) and
// produces identical output. Module reuse is disabled so the per-object
// cache layer is exercised in isolation (with it on, a warm sync would not
// look objects up at all).
func TestWarmCacheResync(t *testing.T) {
	arin, _, _, stores := buildFigure2(t)
	relying := New(Config{Fetcher: stores, Clock: clock, Workers: 4, DisableModuleReuse: true},
		TrustAnchor{CertDER: arin.Cert.Raw, URI: arin.URI})
	cold, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cold.VerifyCacheMisses == 0 {
		t.Fatal("cold sync should populate the cache")
	}
	warm, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if warm.VerifyCacheMisses != 0 {
		t.Errorf("warm sync re-verified %d objects", warm.VerifyCacheMisses)
	}
	if warm.VerifyCacheHits != cold.VerifyCacheHits+cold.VerifyCacheMisses {
		t.Errorf("warm hits = %d, want %d", warm.VerifyCacheHits, cold.VerifyCacheHits+cold.VerifyCacheMisses)
	}
	if got, want := fingerprint(warm), fingerprint(cold); got != want {
		t.Errorf("warm resync diverged:\n--- warm ---\n%s--- cold ---\n%s", got, want)
	}
}

// TestWarmCacheSeesMutations checks that the cache never serves stale
// verdicts: the cache is keyed by content, so an authority republishing an
// object invalidates it naturally.
func TestWarmCacheSeesMutations(t *testing.T) {
	arin, _, continental, stores := buildFigure2(t)
	relying := New(Config{Fetcher: stores, Clock: clock},
		TrustAnchor{CertDER: arin.Cert.Raw, URI: arin.URI})
	if _, err := relying.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The authority stealthily deletes a ROA; the warm relying party must
	// notice exactly like a cold one.
	if err := continental.DeleteROA("cont-22"); err != nil {
		t.Fatal(err)
	}
	warm, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cold := syncWithWorkers(t, arin, stores, 1)
	if got, want := fingerprint(warm), fingerprint(cold); got != want {
		t.Errorf("warm sync after mutation diverged from cold:\n--- warm ---\n%s--- cold ---\n%s", got, want)
	}
	if warm.ROAsAccepted != 7 {
		t.Errorf("ROAs after deletion = %d, want 7", warm.ROAsAccepted)
	}
}

// TestVerifyCacheDisabled checks that DisableVerifyCache produces the same
// validation outcome with zero cache accounting.
func TestVerifyCacheDisabled(t *testing.T) {
	arin, _, _, stores := buildFigure2(t)
	relying := New(Config{Fetcher: stores, Clock: clock, DisableVerifyCache: true},
		TrustAnchor{CertDER: arin.Cert.Raw, URI: arin.URI})
	res, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyCacheHits != 0 || res.VerifyCacheMisses != 0 {
		t.Errorf("disabled cache counted hits=%d misses=%d", res.VerifyCacheHits, res.VerifyCacheMisses)
	}
	if got, want := fingerprint(res), fingerprint(syncWithWorkers(t, arin, stores, 1)); got != want {
		t.Errorf("uncached sync diverged:\n--- uncached ---\n%s--- cached ---\n%s", got, want)
	}
}

// TestParallelDropPolicyEquivalence checks the DropPublicationPoint policy
// under parallel validation: the dropped subtree is identical.
func TestParallelDropPolicyEquivalence(t *testing.T) {
	arin, _, _, stores := buildFigure2(t)
	stores["continental"].Delete("cont-22.roa")
	run := func(workers int) *Result {
		relying := New(Config{Fetcher: stores, Clock: clock, Policy: DropPublicationPoint, Workers: workers},
			TrustAnchor{CertDER: arin.Cert.Raw, URI: arin.URI})
		res, err := relying.Sync(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(1), run(8)
	if got, want := fingerprint(par), fingerprint(seq); got != want {
		t.Errorf("drop policy diverged:\n--- parallel ---\n%s--- sequential ---\n%s", got, want)
	}
}

// TestParallelMultiAnchorOverTCP runs a parallel sync over real TCP with
// concurrent client connections, checking it against the in-process result.
func TestParallelMultiAnchorOverTCP(t *testing.T) {
	cfg := ca.Config{Clock: clock}
	srv := repo.NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stores := StoreFetcher{}
	newAuthority := func(module, resources string) *ca.Authority {
		store := repo.NewStore()
		stores[module] = store
		uri := repo.URI{Host: addr, Module: module}
		a, err := ca.NewTrustAnchor(module, ipres.MustParseSet(resources), store, uri, cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv.AddModule(module, store, nil)
		return a
	}
	ta := newAuthority("ta", "63.0.0.0/8")
	for i := 0; i < 16; i++ {
		mustROA(t, ta, fmt.Sprintf("r%02d", i), 1239, fmt.Sprintf("63.%d.0.0/16", i))
	}

	anchor := TrustAnchor{CertDER: ta.Cert.Raw, URI: repo.URI{Host: addr, Module: "ta"}}
	tcp := New(Config{
		Fetcher: &repo.Client{Timeout: 5 * time.Second, Concurrency: 4},
		Clock:   clock,
		Workers: 8,
	}, anchor)
	viaTCP, err := tcp.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	inProc := syncWithWorkers(t, ta, stores, 1)
	if got, want := fingerprint(viaTCP), fingerprint(inProc); got != want {
		t.Errorf("TCP parallel sync diverged from in-process sequential:\n--- tcp ---\n%s--- in-process ---\n%s", got, want)
	}
	if viaTCP.ROAsAccepted != 16 {
		t.Errorf("ROAs = %d, want 16", viaTCP.ROAsAccepted)
	}
}
