package rp

import (
	"sync"

	"repro/internal/cert"
	"repro/internal/manifest"
	"repro/internal/roa"
)

// objectCache is the relying party's persistent verification cache. It
// memoizes, keyed by the SHA-256 of the object's bytes:
//
//   - parsed, CMS-signature-verified ROAs and manifests (cms.Parse verifies
//     the envelope signature, so a hit skips that public-key operation);
//   - parsed resource certificates and CRLs (DER decode only — their chain
//     signatures are memoized separately, per issuer, in sigs);
//
// plus a cert.VerifyCache for chain and CRL signature checks, keyed by
// (object hash, issuer SKI). Parse errors are cached too: they are pure
// functions of the bytes. Everything time- or context-dependent — validity
// windows, revocation, manifest staleness, resource containment — is
// re-evaluated on every sync.
//
// Cached values are shared across Sync calls and goroutines; callers treat
// them as immutable. Entries are single-flight: concurrent workers hitting
// the same key block on one verification instead of duplicating it, which
// also keeps the hit/miss counters exact at any worker count.
type objectCache struct {
	// retain enables the parsed-object memos. Streaming relying parties set
	// it false: retained decodings grow linearly with the world, so they
	// keep only the fixed-size signature-verdict cache and re-parse on
	// every sync (module-level digest reuse makes that rare in steady
	// state). Hit/miss counters stay zero when retention is off.
	retain bool
	roas   memo[*roa.Signed]
	mfts   memo[*manifest.Signed]
	certs  memo[*cert.ResourceCert]
	crls   memo[*cert.CRL]
	sigs   *cert.VerifyCache
}

func newObjectCache(retainParsed bool) *objectCache {
	return &objectCache{
		retain: retainParsed,
		roas:   newMemo[*roa.Signed](),
		mfts:   newMemo[*manifest.Signed](),
		certs:  newMemo[*cert.ResourceCert](),
		crls:   newMemo[*cert.CRL](),
		sigs:   cert.NewVerifyCache(),
	}
}

// memo is a concurrency-safe, single-flight memoization table keyed by
// content hash.
type memo[T any] struct {
	mu sync.RWMutex
	m  map[[32]byte]*memoEntry[T]
}

type memoEntry[T any] struct {
	once sync.Once
	val  T
	err  error
}

func newMemo[T any]() memo[T] {
	return memo[T]{m: make(map[[32]byte]*memoEntry[T])}
}

// get returns the memoized result for hash, computing it with f exactly
// once across all goroutines and Sync calls. The creator of an entry counts
// a miss; every later lookup (even one that blocks on the in-flight
// computation) counts a hit, so the counters are deterministic.
func (mm *memo[T]) get(st *syncState, hash [32]byte, f func() (T, error)) (T, error) {
	mm.mu.RLock()
	e, ok := mm.m[hash]
	mm.mu.RUnlock()
	if !ok {
		mm.mu.Lock()
		e, ok = mm.m[hash]
		if !ok {
			e = &memoEntry[T]{}
			mm.m[hash] = e
		}
		mm.mu.Unlock()
	}
	if ok {
		st.cacheHits.Add(1)
	} else {
		st.cacheMisses.Add(1)
	}
	e.once.Do(func() { e.val, e.err = f() })
	return e.val, e.err
}

// parseROA decodes and CMS-verifies a ROA, memoized. A nil cache parses
// directly.
func (c *objectCache) parseROA(st *syncState, hash [32]byte, raw []byte) (*roa.Signed, error) {
	if c == nil || !c.retain {
		return roa.ParseSigned(raw)
	}
	return c.roas.get(st, hash, func() (*roa.Signed, error) { return roa.ParseSigned(raw) })
}

// parseManifest decodes and CMS-verifies a manifest, memoized.
func (c *objectCache) parseManifest(st *syncState, hash [32]byte, raw []byte) (*manifest.Signed, error) {
	if c == nil || !c.retain {
		return manifest.ParseSigned(raw)
	}
	return c.mfts.get(st, hash, func() (*manifest.Signed, error) { return manifest.ParseSigned(raw) })
}

// parseCert decodes a resource certificate, memoized.
func (c *objectCache) parseCert(st *syncState, hash [32]byte, raw []byte) (*cert.ResourceCert, error) {
	if c == nil || !c.retain {
		return cert.Parse(raw)
	}
	return c.certs.get(st, hash, func() (*cert.ResourceCert, error) { return cert.Parse(raw) })
}

// parseCRL decodes a CRL, memoized.
func (c *objectCache) parseCRL(st *syncState, hash [32]byte, raw []byte) (*cert.CRL, error) {
	if c == nil || !c.retain {
		return cert.ParseCRL(raw)
	}
	return c.crls.get(st, hash, func() (*cert.CRL, error) { return cert.ParseCRL(raw) })
}
