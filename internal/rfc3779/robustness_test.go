package rfc3779

import (
	"math/rand"
	"testing"

	"repro/internal/ipres"
)

// TestUnmarshalNeverPanicsOnMutation: the RFC 3779 decoders run on
// attacker-controlled certificate extensions and must fail cleanly on any
// input.
func TestUnmarshalNeverPanicsOnMutation(t *testing.T) {
	ipDER, err := MarshalIPAddrBlocks(FromSet(ipres.MustParseSet(
		"63.160.0.0/12, 63.174.16.0-63.174.23.255, 2001:db8::/32")))
	if err != nil {
		t.Fatal(err)
	}
	asDER, err := MarshalASIdentifiers(ASChoice{Set: ipres.ASNSetOf(1239, 7018, 17054)})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		for _, der := range [][]byte{ipDER, asDER} {
			mutated := append([]byte(nil), der...)
			for m := 0; m < 1+rng.Intn(3); m++ {
				mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("decoder panicked (trial %d): %v", trial, r)
					}
				}()
				_, _ = UnmarshalIPAddrBlocks(mutated)
				_, _ = UnmarshalASIdentifiers(mutated)
			}()
		}
	}
	// Random garbage of assorted lengths.
	for n := 0; n < 64; n++ {
		junk := make([]byte, n)
		rng.Read(junk)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decoder panicked on garbage len %d: %v", n, r)
				}
			}()
			_, _ = UnmarshalIPAddrBlocks(junk)
			_, _ = UnmarshalASIdentifiers(junk)
		}()
	}
}
