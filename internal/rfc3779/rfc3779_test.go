package rfc3779

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ipres"
)

func roundTripIP(t *testing.T, b IPAddrBlocks) IPAddrBlocks {
	t.Helper()
	der, err := MarshalIPAddrBlocks(b)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := UnmarshalIPAddrBlocks(der)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return got
}

func TestIPAddrBlocksRoundTripPrefixes(t *testing.T) {
	set := ipres.MustParseSet("63.160.0.0/12, 8.0.0.0/8, 2001:db8::/32")
	got := roundTripIP(t, FromSet(set))
	if !got.Set().Equal(set) {
		t.Errorf("got %v, want %v", got.Set(), set)
	}
}

func TestIPAddrBlocksRoundTripRanges(t *testing.T) {
	// The Figure 3 RC: two ranges that are not single prefixes.
	set := ipres.MustParseSet("63.174.16.0-63.174.23.255, 63.174.25.0-63.174.31.255")
	got := roundTripIP(t, FromSet(set))
	if !got.Set().Equal(set) {
		t.Errorf("got %v, want %v", got.Set(), set)
	}
}

func TestIPAddrBlocksInherit(t *testing.T) {
	b := IPAddrBlocks{V4: &IPChoice{Inherit: true}, V6: &IPChoice{Set: ipres.MustParseSet("2001:db8::/32")}}
	got := roundTripIP(t, b)
	if got.V4 == nil || !got.V4.Inherit {
		t.Error("IPv4 inherit lost")
	}
	if !got.HasInherit() {
		t.Error("HasInherit should be true")
	}
	if got.V6 == nil || got.V6.Inherit || !got.V6.Set.Equal(ipres.MustParseSet("2001:db8::/32")) {
		t.Error("IPv6 explicit set lost")
	}
}

func TestIPAddrBlocksAbsentFamily(t *testing.T) {
	b := FromSet(ipres.MustParseSet("10.0.0.0/8"))
	if b.V6 != nil {
		t.Fatal("V6 should be absent")
	}
	got := roundTripIP(t, b)
	if got.V6 != nil {
		t.Error("V6 should stay absent")
	}
}

func TestIPAddrBlocksDeterministic(t *testing.T) {
	set := ipres.MustParseSet("63.160.0.0/12, 63.174.25.0-63.174.31.255")
	a, _ := MarshalIPAddrBlocks(FromSet(set))
	b, _ := MarshalIPAddrBlocks(FromSet(set))
	if !bytes.Equal(a, b) {
		t.Error("encoding must be deterministic")
	}
}

func TestIPAddrBlocksRejectGarbage(t *testing.T) {
	if _, err := UnmarshalIPAddrBlocks([]byte{0xDE, 0xAD}); err == nil {
		t.Error("want error for garbage")
	}
	set := ipres.MustParseSet("10.0.0.0/8")
	der, _ := MarshalIPAddrBlocks(FromSet(set))
	if _, err := UnmarshalIPAddrBlocks(append(der, 0x00)); err == nil {
		t.Error("want error for trailing bytes")
	}
}

func TestIPAddrBlocksQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var ranges []ipres.Range
		for i := 0; i < 1+rng.Intn(6); i++ {
			a, b := rng.Uint32(), rng.Uint32()
			if a > b {
				a, b = b, a
			}
			ranges = append(ranges, ipres.MustRangeFrom(ipres.AddrFromUint32(a), ipres.AddrFromUint32(b)))
		}
		set := ipres.NewSet(ranges...)
		der, err := MarshalIPAddrBlocks(FromSet(set))
		if err != nil {
			return false
		}
		got, err := UnmarshalIPAddrBlocks(der)
		return err == nil && got.Set().Equal(set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIPAddrBlocksQuickRoundTripV6(t *testing.T) {
	f := func(hi1, lo1, hi2, lo2 uint64) bool {
		var b1, b2 [16]byte
		put := func(b *[16]byte, hi, lo uint64) {
			for i := 0; i < 8; i++ {
				b[i] = byte(hi >> uint(56-8*i))
				b[i+8] = byte(lo >> uint(56-8*i))
			}
		}
		put(&b1, hi1, lo1)
		put(&b2, hi2, lo2)
		a1, a2 := ipres.AddrFrom16(b1), ipres.AddrFrom16(b2)
		if a1.Cmp(a2) > 0 {
			a1, a2 = a2, a1
		}
		set := ipres.NewSet(ipres.MustRangeFrom(a1, a2))
		der, err := MarshalIPAddrBlocks(FromSet(set))
		if err != nil {
			return false
		}
		got, err := UnmarshalIPAddrBlocks(der)
		return err == nil && got.Set().Equal(set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestASIdentifiersRoundTrip(t *testing.T) {
	set := ipres.NewASNSet(
		ipres.ASNRange{Lo: 1239, Hi: 1239},
		ipres.ASNRange{Lo: 64496, Hi: 64511},
	)
	der, err := MarshalASIdentifiers(ASChoice{Set: set})
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalASIdentifiers(der)
	if err != nil {
		t.Fatal(err)
	}
	if got.Inherit || !got.Set.Equal(set) {
		t.Errorf("got %+v, want %v", got, set)
	}
}

func TestASIdentifiersInherit(t *testing.T) {
	der, err := MarshalASIdentifiers(ASChoice{Inherit: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalASIdentifiers(der)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Inherit {
		t.Error("inherit lost")
	}
}

func TestASIdentifiersLargeASN(t *testing.T) {
	set := ipres.ASNSetOf(4294967295) // 32-bit max
	der, err := MarshalASIdentifiers(ASChoice{Set: set})
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalASIdentifiers(der)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Set.Equal(set) {
		t.Errorf("got %v", got.Set)
	}
}

func TestASIdentifiersQuick(t *testing.T) {
	f := func(vals []uint32) bool {
		asns := make([]ipres.ASN, len(vals))
		for i, v := range vals {
			asns[i] = ipres.ASN(v)
		}
		set := ipres.ASNSetOf(asns...)
		der, err := MarshalASIdentifiers(ASChoice{Set: set})
		if err != nil {
			return false
		}
		got, err := UnmarshalASIdentifiers(der)
		return err == nil && got.Set.Equal(set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestASIdentifiersRejectGarbage(t *testing.T) {
	if _, err := UnmarshalASIdentifiers([]byte{0x01, 0x02}); err == nil {
		t.Error("want error for garbage")
	}
}

func TestBitStringEncodingMatchesRFC(t *testing.T) {
	// RFC 3779 example: prefix 10.0.0.0/8 encodes as a 1-byte BIT STRING
	// with 8 significant bits; 10.5.48.0/20 as 3 bytes, 20 bits.
	bs := prefixToBitString(ipres.MustParsePrefix("10.0.0.0/8"))
	if bs.BitLength != 8 || len(bs.Bytes) != 1 || bs.Bytes[0] != 10 {
		t.Errorf("got %+v", bs)
	}
	bs = prefixToBitString(ipres.MustParsePrefix("10.5.48.0/20"))
	if bs.BitLength != 20 || len(bs.Bytes) != 3 || bs.Bytes[2] != 0x30 {
		t.Errorf("got %+v", bs)
	}
	// Range min 10.5.0.0 strips trailing zeros → 16 bits; max 10.5.255.255
	// strips *all* trailing ones — the run crosses the byte boundary into
	// the low bit of 0x05, so 17 bits are stripped, leaving 15.
	min := minToBitString(ipres.MustParseAddr("10.5.0.0"))
	if min.BitLength != 16 {
		t.Errorf("min bits = %d", min.BitLength)
	}
	max := maxToBitString(ipres.MustParseAddr("10.5.255.255"))
	if max.BitLength != 15 {
		t.Errorf("max bits = %d", max.BitLength)
	}
	// All-ones max strips to zero bits.
	max = maxToBitString(ipres.MustParseAddr("255.255.255.255"))
	if max.BitLength != 0 {
		t.Errorf("all-ones max bits = %d", max.BitLength)
	}
}
