package rfc3779

import (
	"encoding/asn1"
	"strings"
	"testing"
)

func TestUnmarshalRejectsOversizedExtension(t *testing.T) {
	big := make([]byte, MaxExtensionSize+1)
	if _, err := UnmarshalIPAddrBlocks(big); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized IPAddrBlocks: err = %v", err)
	}
	if _, err := UnmarshalASIdentifiers(big); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized ASIdentifiers: err = %v", err)
	}
}

func TestUnmarshalIPAddrBlocksRejectsItemFlood(t *testing.T) {
	// One /8 addressPrefix, repeated past the per-family item cap. The guard
	// fires on raw count, before set canonicalization could dedup.
	item, err := asn1.Marshal(asn1.BitString{Bytes: []byte{10}, BitLength: 8})
	if err != nil {
		t.Fatal(err)
	}
	var items []byte
	for i := 0; i <= MaxResourceItems; i++ {
		items = append(items, item...)
	}
	inner, err := asn1.Marshal(asn1.RawValue{Class: asn1.ClassUniversal, Tag: asn1.TagSequence, IsCompound: true, Bytes: items})
	if err != nil {
		t.Fatal(err)
	}
	der, err := asn1.Marshal([]ipAddressFamilySeq{{AddressFamily: []byte{0, 1}, Choice: asn1.RawValue{FullBytes: inner}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalIPAddrBlocks(der); err == nil || !strings.Contains(err.Error(), "address items exceeds") {
		t.Fatalf("item flood: err = %v", err)
	}
}

func TestUnmarshalASIdentifiersRejectsItemFlood(t *testing.T) {
	item, err := asn1.Marshal(int64(64500))
	if err != nil {
		t.Fatal(err)
	}
	var items []byte
	for i := 0; i <= MaxResourceItems; i++ {
		items = append(items, item...)
	}
	inner, err := asn1.Marshal(asn1.RawValue{Class: asn1.ClassUniversal, Tag: asn1.TagSequence, IsCompound: true, Bytes: items})
	if err != nil {
		t.Fatal(err)
	}
	tagged, err := asn1.Marshal(asn1.RawValue{Class: asn1.ClassContextSpecific, Tag: 0, IsCompound: true, Bytes: inner})
	if err != nil {
		t.Fatal(err)
	}
	der, err := asn1.Marshal(struct{ ASNum asn1.RawValue }{asn1.RawValue{FullBytes: tagged}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalASIdentifiers(der); err == nil || !strings.Contains(err.Error(), "AS items exceeds") {
		t.Fatalf("AS item flood: err = %v", err)
	}
}
