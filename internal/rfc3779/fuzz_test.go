package rfc3779

import (
	"testing"

	"repro/internal/ipres"
)

// FuzzRFC3779 drives both extension decoders with arbitrary bytes. Accepted
// values must re-encode: decode → marshal must never fail, since path
// validation treats a decoded extension as canonical.
func FuzzRFC3779(f *testing.F) {
	ipSeed, err := MarshalIPAddrBlocks(FromSet(ipres.MustParseSet("63.160.0.0/12, 2001:db8::/32")))
	if err != nil {
		f.Fatal(err)
	}
	asSeed, err := MarshalASIdentifiers(ASChoice{Set: ipres.NewASNSet(ipres.ASNRange{Lo: 64500, Hi: 64510})})
	if err != nil {
		f.Fatal(err)
	}
	inheritSeed, err := MarshalASIdentifiers(ASChoice{Inherit: true})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ipSeed)
	f.Add(asSeed)
	f.Add(inheritSeed)
	f.Add([]byte{0x30, 0x00})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if b, err := UnmarshalIPAddrBlocks(data); err == nil {
			if _, err := MarshalIPAddrBlocks(b); err != nil {
				t.Fatalf("accepted IPAddrBlocks does not re-encode: %v", err)
			}
		}
		if c, err := UnmarshalASIdentifiers(data); err == nil {
			if _, err := MarshalASIdentifiers(c); err != nil {
				t.Fatalf("accepted ASIdentifiers does not re-encode: %v", err)
			}
		}
	})
}
