// Package rfc3779 implements DER encoding and decoding of the X.509
// extensions for IP address blocks and AS identifiers defined in RFC 3779,
// as profiled for the RPKI by RFC 6487. These extensions are what bind an
// authority's public key to its allocated Internet number resources, and are
// therefore the machinery through which a misbehaving parent can shrink a
// child's allocation (Side Effect 3 of the paper).
//
// The encoding follows the RFC's canonicalization rules: address blocks are
// sorted and maximally merged; a block that is exactly one CIDR prefix is
// encoded as an addressPrefix BIT STRING, anything else as an addressRange
// with trailing zero bits stripped from min and trailing one bits stripped
// from max.
package rfc3779

import (
	"encoding/asn1"
	"fmt"

	"repro/internal/ipres"
)

// Hard input limits for decoded extensions. RFC 3779 extensions ride inside
// certificates a misbehaving parent controls; bounding them here keeps an
// oversized extension from forcing entry-proportional allocation during path
// validation.
const (
	// MaxExtensionSize bounds one extension's DER encoding. Real RPKI
	// resource extensions are a few KB even for large holdings.
	MaxExtensionSize = 1 << 20
	// MaxResourceItems bounds the addressesOrRanges / asIdsOrRanges element
	// count per family.
	MaxResourceItems = 65_536
)

// OIDs for the two RFC 3779 extensions.
var (
	// OIDIPAddrBlocks is id-pe-ipAddrBlocks (1.3.6.1.5.5.7.1.7).
	OIDIPAddrBlocks = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 1, 7}
	// OIDASIdentifiers is id-pe-autonomousSysIds (1.3.6.1.5.5.7.1.8).
	OIDASIdentifiers = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 1, 8}
)

// IPChoice is the per-family IPAddressChoice: either "inherit" (the
// certificate inherits this family's resources from its issuer) or an
// explicit resource set.
type IPChoice struct {
	Inherit bool
	Set     ipres.Set
}

// IPAddrBlocks is the decoded form of the IPAddrBlocks extension. A nil
// family pointer means the family is absent from the extension.
type IPAddrBlocks struct {
	V4, V6 *IPChoice
}

// FromSet builds an IPAddrBlocks carrying the explicit resources in set,
// including only the families that are non-empty.
func FromSet(set ipres.Set) IPAddrBlocks {
	var b IPAddrBlocks
	if v4 := set.Family(ipres.IPv4); !v4.IsEmpty() {
		b.V4 = &IPChoice{Set: v4}
	}
	if v6 := set.Family(ipres.IPv6); !v6.IsEmpty() {
		b.V6 = &IPChoice{Set: v6}
	}
	return b
}

// Set returns the union of the explicit (non-inherit) resources.
func (b IPAddrBlocks) Set() ipres.Set {
	out := ipres.EmptySet()
	if b.V4 != nil && !b.V4.Inherit {
		out = out.Union(b.V4.Set)
	}
	if b.V6 != nil && !b.V6.Inherit {
		out = out.Union(b.V6.Set)
	}
	return out
}

// HasInherit reports whether any present family uses inherit.
func (b IPAddrBlocks) HasInherit() bool {
	return (b.V4 != nil && b.V4.Inherit) || (b.V6 != nil && b.V6.Inherit)
}

type ipAddressFamilySeq struct {
	AddressFamily []byte
	Choice        asn1.RawValue
}

// MarshalIPAddrBlocks DER-encodes the extension value.
func MarshalIPAddrBlocks(b IPAddrBlocks) ([]byte, error) {
	var fams []ipAddressFamilySeq
	encode := func(afi ipres.Family, c *IPChoice) error {
		if c == nil {
			return nil
		}
		choice, err := marshalIPChoice(afi, c)
		if err != nil {
			return err
		}
		fams = append(fams, ipAddressFamilySeq{
			AddressFamily: []byte{0, byte(afi)},
			Choice:        choice,
		})
		return nil
	}
	if err := encode(ipres.IPv4, b.V4); err != nil {
		return nil, err
	}
	if err := encode(ipres.IPv6, b.V6); err != nil {
		return nil, err
	}
	return asn1.Marshal(fams)
}

func marshalIPChoice(afi ipres.Family, c *IPChoice) (asn1.RawValue, error) {
	if c.Inherit {
		return asn1.RawValue{Class: asn1.ClassUniversal, Tag: asn1.TagNull}, nil
	}
	var items []asn1.RawValue
	for _, r := range c.Set.Ranges() {
		if r.Family() != afi {
			return asn1.RawValue{}, fmt.Errorf("rfc3779: %v range %v in %v family", r.Family(), r, afi)
		}
		item, err := marshalAddressOrRange(r)
		if err != nil {
			return asn1.RawValue{}, err
		}
		items = append(items, item)
	}
	der, err := asn1.Marshal(items)
	if err != nil {
		return asn1.RawValue{}, err
	}
	return asn1.RawValue{FullBytes: der}, nil
}

func marshalAddressOrRange(r ipres.Range) (asn1.RawValue, error) {
	if ps := r.Prefixes(); len(ps) == 1 {
		bs := prefixToBitString(ps[0])
		der, err := asn1.Marshal(bs)
		if err != nil {
			return asn1.RawValue{}, err
		}
		return asn1.RawValue{FullBytes: der}, nil
	}
	var seq struct {
		Min, Max asn1.BitString
	}
	seq.Min = minToBitString(r.Lo())
	seq.Max = maxToBitString(r.Hi())
	der, err := asn1.Marshal(seq)
	if err != nil {
		return asn1.RawValue{}, err
	}
	return asn1.RawValue{FullBytes: der}, nil
}

// prefixToBitString encodes a CIDR prefix as an IPAddress BIT STRING of
// exactly Bits() significant bits.
func prefixToBitString(p ipres.Prefix) asn1.BitString {
	return addrBits(p.Addr(), p.Bits())
}

// PrefixToBitString encodes a CIDR prefix as an RFC 3779 IPAddress BIT
// STRING. It is shared with the ROA eContent encoding (RFC 6482), which
// uses the same representation.
func PrefixToBitString(p ipres.Prefix) asn1.BitString { return prefixToBitString(p) }

// PrefixFromBitString decodes an RFC 3779 IPAddress BIT STRING into a
// prefix of the given family.
func PrefixFromBitString(afi ipres.Family, bs asn1.BitString) (ipres.Prefix, error) {
	return bitStringToPrefix(afi, bs)
}

// minToBitString strips trailing zero bits from the range minimum.
func minToBitString(a ipres.Addr) asn1.BitString {
	w := a.Family().Width()
	bits := w - trailingZeroBits(a)
	return addrBits(a, bits)
}

// maxToBitString strips trailing one bits from the range maximum.
func maxToBitString(a ipres.Addr) asn1.BitString {
	w := a.Family().Width()
	bits := w - trailingOneBits(a)
	return addrBits(a, bits)
}

func addrBits(a ipres.Addr, bits int) asn1.BitString {
	full := a.Bytes()
	n := (bits + 7) / 8
	out := make([]byte, n)
	copy(out, full[:n])
	// Clear any bits below the significant count in the final byte.
	if rem := bits % 8; rem != 0 && n > 0 {
		out[n-1] &= 0xFF << (8 - rem)
	}
	return asn1.BitString{Bytes: out, BitLength: bits}
}

func trailingZeroBits(a ipres.Addr) int {
	b := a.Bytes()
	count := 0
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] == 0 {
			count += 8
			continue
		}
		v := b[i]
		for v&1 == 0 {
			count++
			v >>= 1
		}
		break
	}
	if count > len(b)*8 {
		count = len(b) * 8
	}
	return count
}

func trailingOneBits(a ipres.Addr) int {
	b := a.Bytes()
	count := 0
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] == 0xFF {
			count += 8
			continue
		}
		v := b[i]
		for v&1 == 1 {
			count++
			v >>= 1
		}
		break
	}
	return count
}

// UnmarshalIPAddrBlocks decodes the DER extension value.
func UnmarshalIPAddrBlocks(der []byte) (IPAddrBlocks, error) {
	if len(der) > MaxExtensionSize {
		return IPAddrBlocks{}, fmt.Errorf("rfc3779: extension %d bytes exceeds limit %d", len(der), MaxExtensionSize)
	}
	var fams []ipAddressFamilySeq
	rest, err := asn1.Unmarshal(der, &fams)
	if err != nil {
		return IPAddrBlocks{}, fmt.Errorf("rfc3779: bad IPAddrBlocks: %w", err)
	}
	if len(rest) != 0 {
		return IPAddrBlocks{}, fmt.Errorf("rfc3779: trailing bytes after IPAddrBlocks")
	}
	var out IPAddrBlocks
	for _, f := range fams {
		if len(f.AddressFamily) < 2 {
			return IPAddrBlocks{}, fmt.Errorf("rfc3779: short addressFamily")
		}
		afi := ipres.Family(uint16(f.AddressFamily[0])<<8 | uint16(f.AddressFamily[1]))
		if !afi.Valid() {
			return IPAddrBlocks{}, fmt.Errorf("rfc3779: unsupported AFI %d", afi)
		}
		choice, err := unmarshalIPChoice(afi, f.Choice)
		if err != nil {
			return IPAddrBlocks{}, err
		}
		switch afi {
		case ipres.IPv4:
			if out.V4 != nil {
				return IPAddrBlocks{}, fmt.Errorf("rfc3779: duplicate IPv4 family")
			}
			out.V4 = choice
		case ipres.IPv6:
			if out.V6 != nil {
				return IPAddrBlocks{}, fmt.Errorf("rfc3779: duplicate IPv6 family")
			}
			out.V6 = choice
		}
	}
	return out, nil
}

func unmarshalIPChoice(afi ipres.Family, raw asn1.RawValue) (*IPChoice, error) {
	if raw.Class == asn1.ClassUniversal && raw.Tag == asn1.TagNull {
		return &IPChoice{Inherit: true}, nil
	}
	var items []asn1.RawValue
	rest, err := asn1.Unmarshal(raw.FullBytes, &items)
	if err != nil {
		return nil, fmt.Errorf("rfc3779: bad addressesOrRanges: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("rfc3779: trailing bytes in addressesOrRanges")
	}
	if len(items) > MaxResourceItems {
		return nil, fmt.Errorf("rfc3779: %d address items exceeds limit %d", len(items), MaxResourceItems)
	}
	var ranges []ipres.Range
	for _, item := range items {
		r, err := unmarshalAddressOrRange(afi, item)
		if err != nil {
			return nil, err
		}
		ranges = append(ranges, r)
	}
	return &IPChoice{Set: ipres.NewSet(ranges...)}, nil
}

func unmarshalAddressOrRange(afi ipres.Family, raw asn1.RawValue) (ipres.Range, error) {
	if raw.Class == asn1.ClassUniversal && raw.Tag == asn1.TagBitString {
		var bs asn1.BitString
		if _, err := asn1.Unmarshal(raw.FullBytes, &bs); err != nil {
			return ipres.Range{}, fmt.Errorf("rfc3779: bad addressPrefix: %w", err)
		}
		p, err := bitStringToPrefix(afi, bs)
		if err != nil {
			return ipres.Range{}, err
		}
		return p.Range(), nil
	}
	var seq struct {
		Min, Max asn1.BitString
	}
	if _, err := asn1.Unmarshal(raw.FullBytes, &seq); err != nil {
		return ipres.Range{}, fmt.Errorf("rfc3779: bad addressRange: %w", err)
	}
	lo, err := bitStringToAddr(afi, seq.Min, false)
	if err != nil {
		return ipres.Range{}, err
	}
	hi, err := bitStringToAddr(afi, seq.Max, true)
	if err != nil {
		return ipres.Range{}, err
	}
	return ipres.RangeFrom(lo, hi)
}

func bitStringToPrefix(afi ipres.Family, bs asn1.BitString) (ipres.Prefix, error) {
	a, err := bitStringToAddr(afi, bs, false)
	if err != nil {
		return ipres.Prefix{}, err
	}
	return ipres.PrefixFrom(a, bs.BitLength)
}

// bitStringToAddr expands a truncated IPAddress BIT STRING to a full
// address, padding the unstated bits with zeros (fillOnes=false, for
// prefixes and range minima) or ones (fillOnes=true, for range maxima).
func bitStringToAddr(afi ipres.Family, bs asn1.BitString, fillOnes bool) (ipres.Addr, error) {
	w := afi.Width()
	if bs.BitLength < 0 || bs.BitLength > w {
		return ipres.Addr{}, fmt.Errorf("rfc3779: bit length %d out of range for %v", bs.BitLength, afi)
	}
	full := make([]byte, w/8)
	copy(full, bs.Bytes)
	if fillOnes {
		// Set every bit from position BitLength to the end.
		for i := bs.BitLength; i < w; i++ {
			full[i/8] |= 0x80 >> (i % 8)
		}
	}
	if afi == ipres.IPv4 {
		var b4 [4]byte
		copy(b4[:], full)
		return ipres.AddrFrom4(b4), nil
	}
	var b16 [16]byte
	copy(b16[:], full)
	return ipres.AddrFrom16(b16), nil
}

// ASChoice is the ASIdentifierChoice: inherit or an explicit ASN set.
type ASChoice struct {
	Inherit bool
	Set     ipres.ASNSet
}

// MarshalASIdentifiers DER-encodes the ASIdentifiers extension value
// (asnum choice only; the RPKI profile forbids rdi). The explicit [0] tag
// around the choice is built by hand because encoding/asn1 does not apply
// explicit tagging to RawValue fields.
func MarshalASIdentifiers(c ASChoice) ([]byte, error) {
	var inner []byte
	var err error
	if c.Inherit {
		inner, err = asn1.Marshal(asn1.RawValue{Class: asn1.ClassUniversal, Tag: asn1.TagNull})
	} else {
		var items []asn1.RawValue
		for _, r := range c.Set.Ranges() {
			var der []byte
			if r.Lo == r.Hi {
				der, err = asn1.Marshal(int64(r.Lo))
			} else {
				der, err = asn1.Marshal(struct{ Min, Max int64 }{int64(r.Lo), int64(r.Hi)})
			}
			if err != nil {
				return nil, err
			}
			items = append(items, asn1.RawValue{FullBytes: der})
		}
		inner, err = asn1.Marshal(items)
	}
	if err != nil {
		return nil, err
	}
	tagged, err := asn1.Marshal(asn1.RawValue{
		Class:      asn1.ClassContextSpecific,
		Tag:        0,
		IsCompound: true,
		Bytes:      inner,
	})
	if err != nil {
		return nil, err
	}
	return asn1.Marshal(struct{ ASNum asn1.RawValue }{asn1.RawValue{FullBytes: tagged}})
}

// UnmarshalASIdentifiers decodes the DER extension value.
func UnmarshalASIdentifiers(der []byte) (ASChoice, error) {
	if len(der) > MaxExtensionSize {
		return ASChoice{}, fmt.Errorf("rfc3779: extension %d bytes exceeds limit %d", len(der), MaxExtensionSize)
	}
	var seq struct{ ASNum asn1.RawValue }
	rest, err := asn1.Unmarshal(der, &seq)
	if err != nil {
		return ASChoice{}, fmt.Errorf("rfc3779: bad ASIdentifiers: %w", err)
	}
	if len(rest) != 0 {
		return ASChoice{}, fmt.Errorf("rfc3779: trailing bytes after ASIdentifiers")
	}
	if seq.ASNum.Class != asn1.ClassContextSpecific || seq.ASNum.Tag != 0 {
		return ASChoice{}, fmt.Errorf("rfc3779: missing asnum [0] tag")
	}
	var raw asn1.RawValue
	if _, err := asn1.Unmarshal(seq.ASNum.Bytes, &raw); err != nil {
		return ASChoice{}, fmt.Errorf("rfc3779: bad asnum choice: %w", err)
	}
	if raw.Class == asn1.ClassUniversal && raw.Tag == asn1.TagNull {
		return ASChoice{Inherit: true}, nil
	}
	var items []asn1.RawValue
	if _, err := asn1.Unmarshal(raw.FullBytes, &items); err != nil {
		return ASChoice{}, fmt.Errorf("rfc3779: bad asIdsOrRanges: %w", err)
	}
	if len(items) > MaxResourceItems {
		return ASChoice{}, fmt.Errorf("rfc3779: %d AS items exceeds limit %d", len(items), MaxResourceItems)
	}
	var ranges []ipres.ASNRange
	for _, item := range items {
		if item.Class == asn1.ClassUniversal && item.Tag == asn1.TagInteger {
			var id int64
			if _, err := asn1.Unmarshal(item.FullBytes, &id); err != nil {
				return ASChoice{}, err
			}
			if id < 0 || id > int64(^uint32(0)) {
				return ASChoice{}, fmt.Errorf("rfc3779: ASN %d out of range", id)
			}
			ranges = append(ranges, ipres.ASNRange{Lo: ipres.ASN(id), Hi: ipres.ASN(id)})
			continue
		}
		var r struct{ Min, Max int64 }
		if _, err := asn1.Unmarshal(item.FullBytes, &r); err != nil {
			return ASChoice{}, fmt.Errorf("rfc3779: bad ASRange: %w", err)
		}
		if r.Min < 0 || r.Max > int64(^uint32(0)) || r.Min > r.Max {
			return ASChoice{}, fmt.Errorf("rfc3779: ASRange [%d,%d] invalid", r.Min, r.Max)
		}
		ranges = append(ranges, ipres.ASNRange{Lo: ipres.ASN(r.Min), Hi: ipres.ASN(r.Max)})
	}
	return ASChoice{Set: ipres.NewASNSet(ranges...)}, nil
}
