package bgp

import (
	"fmt"
	"sort"

	"repro/internal/ipres"
	"repro/internal/rov"
)

// Converge (re)computes routing to a fixed point using synchronous rounds
// of Gao–Rexford propagation. It must be called after topology, origination,
// policy, or validated-cache changes; query methods call it implicitly.
func (n *Network) Converge() error {
	const maxRounds = 1000
	// Reset adj-in and RIBs, seed self-originated routes.
	for _, r := range n.routers {
		r.adjIn = make(map[ipres.Prefix]map[ipres.ASN]Route)
		r.rib = make(map[ipres.Prefix]Route)
		for _, p := range r.originated {
			r.rib[p] = Route{Prefix: p, State: n.classify(r, p, r.asn)}
		}
	}
	for round := 0; round < maxRounds; round++ {
		changed := false
		// Phase 1: every router exports its current best routes.
		type export struct {
			to    *router
			from  ipres.ASN
			route Route
		}
		var exports []export
		for _, r := range n.routers {
			for prefix, best := range r.rib {
				for nbr, nrel := range r.neighbors {
					if !exportAllowed(best, nrel) {
						continue
					}
					target := n.routers[nbr]
					newPath := append([]ipres.ASN{r.asn}, best.Path...)
					exports = append(exports, export{
						to:   target,
						from: r.asn,
						route: Route{
							Prefix: prefix,
							Path:   newPath,
						},
					})
				}
			}
		}
		// Phase 2: receivers ingest, validate, and select.
		for _, e := range exports {
			if e.route.contains(e.to.asn) {
				continue // loop prevention
			}
			m := e.to.adjIn[e.route.Prefix]
			if m == nil {
				m = make(map[ipres.ASN]Route)
				e.to.adjIn[e.route.Prefix] = m
			}
			r := e.route
			r.learnedRel = e.to.neighbors[e.from]
			r.State = n.classify(e.to, r.Prefix, r.Origin(e.to.asn))
			old, had := m[e.from]
			if !had || !routesEqual(old, r) {
				m[e.from] = r
				changed = true
			}
		}
		// Phase 3: selection.
		for _, r := range n.routers {
			if n.selectBest(r) {
				changed = true
			}
		}
		if !changed {
			n.converged = true
			return nil
		}
	}
	return fmt.Errorf("bgp: no convergence after %d rounds", 1000)
}

func routesEqual(a, b Route) bool {
	if a.Prefix != b.Prefix || a.State != b.State || a.learnedRel != b.learnedRel || len(a.Path) != len(b.Path) {
		return false
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	return true
}

// exportAllowed implements Gao–Rexford export: routes learned from
// customers (and self-originated routes) are exported to everyone; routes
// learned from peers or providers are exported only to customers.
func exportAllowed(r Route, to rel) bool {
	if len(r.Path) == 0 || r.learnedRel == relCustomer {
		return true
	}
	return to == relCustomer
}

// selectBest recomputes r's RIB from adj-in; reports whether it changed.
func (n *Network) selectBest(r *router) bool {
	changed := false
	prefixes := make(map[ipres.Prefix]bool)
	for p := range r.adjIn {
		prefixes[p] = true
	}
	for _, p := range r.originated {
		prefixes[p] = true
	}
	for p := range r.rib {
		prefixes[p] = true
	}
	for p := range prefixes {
		best, ok := n.bestRouteFor(r, p)
		old, had := r.rib[p]
		switch {
		case !ok && had:
			delete(r.rib, p)
			changed = true
		case ok && (!had || !routesEqual(old, best)):
			r.rib[p] = best
			changed = true
		}
	}
	return changed
}

// bestRouteFor selects among self-origination and adj-in candidates.
func (n *Network) bestRouteFor(r *router, p ipres.Prefix) (Route, bool) {
	var candidates []Route
	for _, op := range r.originated {
		if op == p {
			candidates = append(candidates, Route{Prefix: p, State: n.classify(r, p, r.asn)})
		}
	}
	// Deterministic neighbor order for stable tiebreaking.
	nbrs := make([]ipres.ASN, 0, len(r.adjIn[p]))
	for nbr := range r.adjIn[p] {
		nbrs = append(nbrs, nbr)
	}
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	for _, nbr := range nbrs {
		cand := r.adjIn[p][nbr]
		if r.policy == PolicyDropInvalid && cand.State == rov.Invalid {
			continue
		}
		candidates = append(candidates, cand)
	}
	if len(candidates) == 0 {
		return Route{}, false
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		if n.better(r, c, best) {
			best = c
		}
	}
	if r.policy == PolicyDropInvalid && best.State == rov.Invalid {
		return Route{}, false // self-originated invalid still dropped
	}
	return best, true
}

// better reports whether a beats b at router r.
func (n *Network) better(r *router, a, b Route) bool {
	// Self-originated routes always win (path length 0, customer-grade).
	// 1. Validation preference under depref-invalid.
	if r.policy == PolicyDeprefInvalid {
		if ra, rb := stateRank(a.State), stateRank(b.State); ra != rb {
			return ra > rb
		}
	}
	// 2. Relationship preference: customer > peer > provider. Self-
	//    originated routes count as best.
	if pa, pb := relRank(a), relRank(b); pa != pb {
		return pa > pb
	}
	// 3. Shorter AS path.
	if len(a.Path) != len(b.Path) {
		return len(a.Path) < len(b.Path)
	}
	// 4. Lowest first-hop ASN.
	if len(a.Path) > 0 && len(b.Path) > 0 {
		return a.Path[0] < b.Path[0]
	}
	return false
}

func stateRank(s rov.State) int {
	switch s {
	case rov.Valid:
		return 2
	case rov.Unknown:
		return 1
	default:
		return 0
	}
}

func relRank(r Route) int {
	if len(r.Path) == 0 {
		return 3 // self-originated
	}
	switch r.learnedRel {
	case relCustomer:
		return 2
	case relPeer:
		return 1
	default:
		return 0
	}
}

// SelectedRoute returns AS asn's current best route for prefix.
func (n *Network) SelectedRoute(asn ipres.ASN, prefix ipres.Prefix) (Route, bool, error) {
	if !n.converged {
		if err := n.Converge(); err != nil {
			return Route{}, false, err
		}
	}
	r, err := n.router(asn)
	if err != nil {
		return Route{}, false, err
	}
	route, ok := r.rib[prefix]
	return route, ok, nil
}

// RIB returns AS asn's full routing table, sorted by prefix.
func (n *Network) RIB(asn ipres.ASN) ([]Route, error) {
	if !n.converged {
		if err := n.Converge(); err != nil {
			return nil, err
		}
	}
	r, err := n.router(asn)
	if err != nil {
		return nil, err
	}
	out := make([]Route, 0, len(r.rib))
	for _, route := range r.rib {
		out = append(out, route)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Cmp(out[j].Prefix) < 0 })
	return out, nil
}
