package bgp

import (
	"fmt"

	"repro/internal/ipres"
)

// Delivery is the outcome of forwarding a packet through the data plane.
type Delivery struct {
	// Reached is the AS where the packet terminated (the origin of the
	// longest-prefix-match route, hop by hop), 0 if dropped.
	Reached ipres.ASN
	// HopPath lists the ASes traversed, starting with the source.
	HopPath []ipres.ASN
	// Dropped reports that some hop had no route for the destination.
	Dropped bool
}

// Forward traces a packet from AS src to destination address dst through
// the data plane: at each hop, the current AS looks up dst with longest-
// prefix-match over its own RIB and hands the packet to the next hop on the
// selected route. Forwarding terminates at an AS that originates the
// matched prefix. This per-hop LPM is exactly the mechanism subprefix
// hijacks exploit.
func (n *Network) Forward(src ipres.ASN, dst ipres.Addr) (Delivery, error) {
	if !n.converged {
		if err := n.Converge(); err != nil {
			return Delivery{}, err
		}
	}
	cur, err := n.router(src)
	if err != nil {
		return Delivery{}, err
	}
	d := Delivery{HopPath: []ipres.ASN{src}}
	const maxHops = 64
	for hop := 0; hop < maxHops; hop++ {
		// Does the current AS originate a prefix containing dst, and is
		// that origination still its best route? (An AS always delivers
		// locally if it originates the LPM match.)
		route, ok := lpm(cur, dst)
		if !ok {
			d.Dropped = true
			return d, nil
		}
		if len(route.Path) == 0 {
			d.Reached = cur.asn
			return d, nil
		}
		next := route.Path[0]
		nr, err := n.router(next)
		if err != nil {
			return Delivery{}, err
		}
		cur = nr
		d.HopPath = append(d.HopPath, next)
	}
	d.Dropped = true
	return d, fmt.Errorf("bgp: forwarding loop exceeded %d hops", maxHops)
}

// lpm selects the longest-prefix-match route for dst in r's RIB.
func lpm(r *router, dst ipres.Addr) (Route, bool) {
	var best Route
	bestBits := -1
	for p, route := range r.rib {
		if p.Contains(dst) && p.Bits() > bestBits {
			best = route
			bestBits = p.Bits()
		}
	}
	return best, bestBits >= 0
}

// CanReach reports whether traffic from src to dst terminates at wantAS.
func (n *Network) CanReach(src ipres.ASN, dst ipres.Addr, wantAS ipres.ASN) (bool, error) {
	d, err := n.Forward(src, dst)
	if err != nil {
		return false, err
	}
	return !d.Dropped && d.Reached == wantAS, nil
}

// ReachabilityMatrix computes, for every AS in sources, whether it can
// reach dst at wantAS. It returns the fraction of sources with
// connectivity.
func (n *Network) ReachabilityMatrix(sources []ipres.ASN, dst ipres.Addr, wantAS ipres.ASN) (float64, map[ipres.ASN]bool, error) {
	result := make(map[ipres.ASN]bool, len(sources))
	reached := 0
	for _, src := range sources {
		ok, err := n.CanReach(src, dst, wantAS)
		if err != nil {
			return 0, nil, err
		}
		result[src] = ok
		if ok {
			reached++
		}
	}
	if len(sources) == 0 {
		return 0, result, nil
	}
	return float64(reached) / float64(len(sources)), result, nil
}
