package bgp

import (
	"testing"

	"repro/internal/ipres"
	"repro/internal/rov"
)

// lineTopology: AS1 ← AS2 ← AS3 (provider chain: 2 provides to 1? no —
// build: p is provider of c). We use a simple chain 3→2→1 where 3 is
// provider of 2 and 2 is provider of 1.
func lineTopology(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	for _, asn := range []ipres.ASN{1, 2, 3} {
		n.AddAS(asn, PolicyIgnore)
	}
	if err := n.ProviderOf(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.ProviderOf(3, 2); err != nil {
		t.Fatal(err)
	}
	return n
}

func pfx(s string) ipres.Prefix { return ipres.MustParsePrefix(s) }
func addr(s string) ipres.Addr  { return ipres.MustParseAddr(s) }

func TestBasicPropagation(t *testing.T) {
	n := lineTopology(t)
	if err := n.Originate(1, pfx("63.174.16.0/20")); err != nil {
		t.Fatal(err)
	}
	route, ok, err := n.SelectedRoute(3, pfx("63.174.16.0/20"))
	if err != nil || !ok {
		t.Fatalf("AS3 should learn the route: %v %v", ok, err)
	}
	if len(route.Path) != 2 || route.Path[0] != 2 || route.Path[1] != 1 {
		t.Errorf("path = %v", route.Path)
	}
	if route.Origin(3) != 1 {
		t.Errorf("origin = %v", route.Origin(3))
	}
}

func TestGaoRexfordValleyFree(t *testing.T) {
	// Diamond: AS10 and AS20 are both providers of AS1 (multihomed) and
	// peers of each other. AS30 is a provider of AS20 only.
	//        30
	//        |
	//   10 ~ 20        (~ = peering)
	//    \   /
	//     \ /
	//      1
	n := NewNetwork()
	for _, asn := range []ipres.ASN{1, 10, 20, 30} {
		n.AddAS(asn, PolicyIgnore)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.ProviderOf(10, 1))
	must(n.ProviderOf(20, 1))
	must(n.PeerOf(10, 20))
	must(n.ProviderOf(30, 20))
	must(n.Originate(1, pfx("10.0.0.0/8")))

	// AS30 must reach via its customer AS20 (valley-free).
	route, ok, err := n.SelectedRoute(30, pfx("10.0.0.0/8"))
	if err != nil || !ok {
		t.Fatalf("AS30 should have a route")
	}
	if route.Path[0] != 20 {
		t.Errorf("AS30 path = %v, want via 20", route.Path)
	}
	// AS10 must prefer its customer route (direct to 1) over the peer
	// route via 20.
	route, ok, _ = n.SelectedRoute(10, pfx("10.0.0.0/8"))
	if !ok || route.Path[0] != 1 {
		t.Errorf("AS10 should prefer customer path, got %v", route.Path)
	}
	// A peer route must not be exported to another peer or provider:
	// if 10 only had the peer route via 20, 30 would never hear it from 10
	// — but 30 isn't connected to 10, so instead verify reachability.
	d, err := n.Forward(30, addr("10.1.2.3"))
	if err != nil || d.Dropped || d.Reached != 1 {
		t.Errorf("forwarding failed: %+v %v", d, err)
	}
}

func TestPrefixHijackWithoutRPKI(t *testing.T) {
	// AS1 (victim) and AS666 (attacker) both originate 63.174.16.0/20;
	// sources pick by path length. With no RPKI, some of the topology is
	// captured by the attacker.
	n := NewNetwork()
	for _, asn := range []ipres.ASN{1, 666, 10, 20} {
		n.AddAS(asn, PolicyIgnore)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.ProviderOf(10, 1))
	must(n.ProviderOf(20, 666))
	must(n.PeerOf(10, 20))
	must(n.Originate(1, pfx("63.174.16.0/20")))
	must(n.Originate(666, pfx("63.174.16.0/20")))

	// AS20 hears the victim via peer 10 (2 hops) and the attacker via
	// customer 666 (1 hop): customer wins → captured.
	d, err := n.Forward(20, addr("63.174.16.1"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Reached != 666 {
		t.Errorf("AS20's traffic should be captured, reached %v", d.Reached)
	}
}

func TestDropInvalidStopsPrefixHijack(t *testing.T) {
	n := NewNetwork()
	for _, asn := range []ipres.ASN{1, 666, 10, 20} {
		n.AddAS(asn, PolicyDropInvalid)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.ProviderOf(10, 1))
	must(n.ProviderOf(20, 666))
	must(n.PeerOf(10, 20))
	must(n.Originate(1, pfx("63.174.16.0/20")))
	must(n.Originate(666, pfx("63.174.16.0/20")))
	n.SetSharedIndex(rov.NewIndex(rov.VRP{Prefix: pfx("63.174.16.0/20"), MaxLength: 20, ASN: 1}))

	d, err := n.Forward(20, addr("63.174.16.1"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Reached != 1 {
		t.Errorf("drop-invalid should deliver to the victim, reached %v (path %v)", d.Reached, d.HopPath)
	}
}

func TestSubprefixHijackAndMaxLengthDefense(t *testing.T) {
	// The attacker announces a /24 inside the victim's /20. LPM sends
	// traffic to the attacker even when the victim's route is valid —
	// UNLESS validation marks the subprefix invalid and routers drop it.
	build := func(policy Policy, ix *rov.Index) *Network {
		n := NewNetwork()
		for _, asn := range []ipres.ASN{1, 666, 10, 20} {
			n.AddAS(asn, policy)
		}
		_ = n.ProviderOf(10, 1)
		_ = n.ProviderOf(20, 666)
		_ = n.PeerOf(10, 20)
		_ = n.Originate(1, pfx("63.174.16.0/20"))
		_ = n.Originate(666, pfx("63.174.17.0/24")) // subprefix!
		if ix != nil {
			n.SetSharedIndex(ix)
		}
		return n
	}
	ix := rov.NewIndex(rov.VRP{Prefix: pfx("63.174.16.0/20"), MaxLength: 20, ASN: 1})

	// Without RPKI: hijacked (even AS10, adjacent to the victim).
	n := build(PolicyIgnore, nil)
	d, _ := n.Forward(10, addr("63.174.17.5"))
	if d.Reached != 666 {
		t.Errorf("no-RPKI subprefix hijack should capture, reached %v", d.Reached)
	}
	// Drop-invalid: the /24 is invalid (covering ROA, maxLength 20), so
	// it is never selected and traffic follows the valid /20.
	n = build(PolicyDropInvalid, ix)
	d, _ = n.Forward(10, addr("63.174.17.5"))
	if d.Reached != 1 {
		t.Errorf("drop-invalid should stop subprefix hijack, reached %v", d.Reached)
	}
	// Depref-invalid does NOT stop subprefix hijacks: there is no valid
	// route for the /24 itself, so the invalid /24 is still selected and
	// LPM captures the traffic (the paper's Table 6, row 2).
	n = build(PolicyDeprefInvalid, ix)
	d, _ = n.Forward(10, addr("63.174.17.5"))
	if d.Reached != 666 {
		t.Errorf("depref-invalid should NOT stop subprefix hijack, reached %v", d.Reached)
	}
}

func TestRPKIManipulationUnderPolicies(t *testing.T) {
	// The victim's route becomes invalid because of an RPKI manipulation
	// (whacked ROA with a covering ROA remaining). Table 6 row comparison:
	// drop-invalid loses the prefix, depref-invalid keeps it.
	build := func(policy Policy) *Network {
		n := NewNetwork()
		for _, asn := range []ipres.ASN{1, 10, 20} {
			n.AddAS(asn, policy)
		}
		_ = n.ProviderOf(10, 1)
		_ = n.ProviderOf(20, 10)
		_ = n.Originate(1, pfx("63.174.16.0/22"))
		// The /22 ROA was whacked; the /20 covering ROA (different origin)
		// remains → the victim's route is invalid.
		n.SetSharedIndex(rov.NewIndex(rov.VRP{Prefix: pfx("63.174.16.0/20"), MaxLength: 20, ASN: 17054}))
		return n
	}
	n := build(PolicyDropInvalid)
	d, _ := n.Forward(20, addr("63.174.16.1"))
	if !d.Dropped {
		t.Errorf("drop-invalid should lose the whacked prefix, got %+v", d)
	}
	n = build(PolicyDeprefInvalid)
	d, _ = n.Forward(20, addr("63.174.16.1"))
	if d.Dropped || d.Reached != 1 {
		t.Errorf("depref-invalid should keep reaching the victim, got %+v", d)
	}
}

func TestWithdrawAndReconverge(t *testing.T) {
	n := lineTopology(t)
	_ = n.Originate(1, pfx("10.0.0.0/8"))
	if _, ok, _ := n.SelectedRoute(3, pfx("10.0.0.0/8")); !ok {
		t.Fatal("route should exist")
	}
	_ = n.Withdraw(1, pfx("10.0.0.0/8"))
	if _, ok, _ := n.SelectedRoute(3, pfx("10.0.0.0/8")); ok {
		t.Fatal("route should be withdrawn")
	}
}

func TestForwardDropsWithoutRoute(t *testing.T) {
	n := lineTopology(t)
	d, err := n.Forward(3, addr("192.0.2.1"))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Dropped {
		t.Error("packet to unrouted space should drop")
	}
}

func TestReachabilityMatrix(t *testing.T) {
	n := lineTopology(t)
	_ = n.Originate(1, pfx("10.0.0.0/8"))
	frac, detail, err := n.ReachabilityMatrix([]ipres.ASN{2, 3}, addr("10.0.0.1"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 1.0 || !detail[2] || !detail[3] {
		t.Errorf("frac=%v detail=%v", frac, detail)
	}
}

func TestRIBSorted(t *testing.T) {
	n := lineTopology(t)
	_ = n.Originate(1, pfx("10.0.0.0/8"))
	_ = n.Originate(1, pfx("9.0.0.0/8"))
	rib, err := n.RIB(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rib) != 2 || rib[0].Prefix.String() != "9.0.0.0/8" {
		t.Errorf("rib = %v", rib)
	}
}

func TestUnknownASErrors(t *testing.T) {
	n := NewNetwork()
	if err := n.Originate(99, pfx("10.0.0.0/8")); err == nil {
		t.Error("unknown AS must error")
	}
	if err := n.ProviderOf(1, 2); err == nil {
		t.Error("unknown link endpoints must error")
	}
	if _, err := n.Forward(1, addr("10.0.0.1")); err == nil {
		t.Error("unknown source must error")
	}
}

func TestPolicyStrings(t *testing.T) {
	if PolicyIgnore.String() != "ignore" || PolicyDropInvalid.String() != "drop-invalid" || PolicyDeprefInvalid.String() != "depref-invalid" {
		t.Error("policy strings wrong")
	}
}

func TestDeprefPrefersValidOverInvalid(t *testing.T) {
	// The victim's valid route and an attacker's invalid route for the
	// SAME prefix: depref must pick the valid one even when the invalid
	// path is shorter.
	n := NewNetwork()
	for _, asn := range []ipres.ASN{1, 666, 10, 20} {
		n.AddAS(asn, PolicyDeprefInvalid)
	}
	_ = n.ProviderOf(10, 1)
	_ = n.ProviderOf(20, 10)
	_ = n.ProviderOf(20, 666) // attacker is one hop from 20; victim is two
	_ = n.Originate(1, pfx("63.174.16.0/20"))
	_ = n.Originate(666, pfx("63.174.16.0/20"))
	n.SetSharedIndex(rov.NewIndex(rov.VRP{Prefix: pfx("63.174.16.0/20"), MaxLength: 20, ASN: 1}))
	route, ok, err := n.SelectedRoute(20, pfx("63.174.16.0/20"))
	if err != nil || !ok {
		t.Fatalf("no route: %v", err)
	}
	if route.Origin(20) != 1 {
		t.Errorf("depref should prefer the longer VALID path, got origin %v", route.Origin(20))
	}
	d, _ := n.Forward(20, addr("63.174.16.1"))
	if d.Reached != 1 {
		t.Errorf("traffic should reach the victim, got %v", d.Reached)
	}
}

func TestDeprefPrefersUnknownOverInvalid(t *testing.T) {
	n := NewNetwork()
	for _, asn := range []ipres.ASN{1, 666, 20} {
		n.AddAS(asn, PolicyDeprefInvalid)
	}
	_ = n.ProviderOf(20, 1)
	_ = n.ProviderOf(20, 666)
	_ = n.Originate(1, pfx("10.0.0.0/8"))   // unknown (no ROA covers it)
	_ = n.Originate(666, pfx("10.0.0.0/8")) // also unknown... make invalid:
	n.SetSharedIndex(rov.NewIndex())
	// Both unknown: tiebreak by lower neighbor ASN (1).
	route, ok, _ := n.SelectedRoute(20, pfx("10.0.0.0/8"))
	if !ok || route.Origin(20) != 1 {
		t.Fatalf("tiebreak wrong: %+v", route)
	}
}

func TestAddASUpdatesPolicy(t *testing.T) {
	n := NewNetwork()
	n.AddAS(1, PolicyIgnore)
	n.AddAS(2, PolicyIgnore)
	_ = n.ProviderOf(2, 1)
	_ = n.Originate(1, pfx("10.0.0.0/8"))
	n.SetSharedIndex(rov.NewIndex(rov.VRP{Prefix: pfx("10.0.0.0/8"), MaxLength: 8, ASN: 99}))
	if _, ok, _ := n.SelectedRoute(2, pfx("10.0.0.0/8")); !ok {
		t.Fatal("ignore policy should accept the invalid route")
	}
	n.AddAS(2, PolicyDropInvalid) // re-add updates policy
	if _, ok, _ := n.SelectedRoute(2, pfx("10.0.0.0/8")); ok {
		t.Fatal("drop policy should reject the invalid route")
	}
}

func TestSelfOriginatedInvalidDroppedUnderDrop(t *testing.T) {
	// An origin whose own announcement is invalid drops it under
	// drop-invalid; its traffic to itself black-holes. Extreme but per
	// policy semantics.
	n := NewNetwork()
	n.AddAS(1, PolicyDropInvalid)
	_ = n.Originate(1, pfx("10.0.0.0/8"))
	n.SetSharedIndex(rov.NewIndex(rov.VRP{Prefix: pfx("10.0.0.0/8"), MaxLength: 8, ASN: 99}))
	if _, ok, _ := n.SelectedRoute(1, pfx("10.0.0.0/8")); ok {
		t.Error("self-originated invalid route should be dropped under drop-invalid")
	}
}

func TestASesSorted(t *testing.T) {
	n := NewNetwork()
	for _, asn := range []ipres.ASN{30, 10, 20} {
		n.AddAS(asn, PolicyIgnore)
	}
	ases := n.ASes()
	if len(ases) != 3 || ases[0] != 10 || ases[2] != 30 {
		t.Errorf("ASes = %v", ases)
	}
}

func TestPerASIndexOverride(t *testing.T) {
	n := NewNetwork()
	for _, asn := range []ipres.ASN{1, 2, 3} {
		n.AddAS(asn, PolicyDropInvalid)
	}
	_ = n.ProviderOf(2, 1)
	_ = n.ProviderOf(3, 2)
	_ = n.Originate(1, pfx("10.0.0.0/8"))
	// Shared index says invalid; AS3's private index says valid.
	n.SetSharedIndex(rov.NewIndex(rov.VRP{Prefix: pfx("10.0.0.0/8"), MaxLength: 8, ASN: 99}))
	_ = n.SetASIndex(3, rov.NewIndex(rov.VRP{Prefix: pfx("10.0.0.0/8"), MaxLength: 8, ASN: 1}))
	// AS2 (shared view) drops it, so AS3 never hears it — relying parties
	// diverging does not resurrect routes filtered upstream.
	if _, ok, _ := n.SelectedRoute(3, pfx("10.0.0.0/8")); ok {
		t.Error("upstream filtering should starve AS3")
	}
	// Clear AS2's policy: now AS3 validates with its own index and keeps it.
	_ = n.SetPolicy(2, PolicyIgnore)
	if _, ok, _ := n.SelectedRoute(3, pfx("10.0.0.0/8")); !ok {
		t.Error("AS3 should accept with its own index")
	}
}
