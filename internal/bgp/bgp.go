// Package bgp implements an interdomain routing simulator: an AS-level
// topology with customer/provider/peer relationships, Gao–Rexford route
// propagation and selection, origin-validation policies, and a
// longest-prefix-match data plane.
//
// The simulator exists to answer the paper's Section 5 question: what
// impact does an invalid (or unknown) route have on actual reachability,
// under each relying-party "local policy"? Longest-prefix-match forwarding
// is modeled faithfully because subprefix hijacks — and the RPKI semantics
// designed to stop them — only make sense in its presence.
package bgp

import (
	"fmt"
	"sort"

	"repro/internal/ipres"
	"repro/internal/rov"
)

// Policy is an AS's origin-validation local policy (the paper's Table 6).
type Policy uint8

const (
	// PolicyIgnore disregards validation states entirely (no RPKI).
	PolicyIgnore Policy = iota
	// PolicyDropInvalid never selects an invalid route.
	PolicyDropInvalid
	// PolicyDeprefInvalid prefers valid > unknown > invalid for the same
	// prefix but still uses an invalid route as a last resort.
	PolicyDeprefInvalid
)

func (p Policy) String() string {
	switch p {
	case PolicyIgnore:
		return "ignore"
	case PolicyDropInvalid:
		return "drop-invalid"
	case PolicyDeprefInvalid:
		return "depref-invalid"
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// rel is the relationship of a neighbor from a router's perspective.
type rel uint8

const (
	relCustomer rel = iota // neighbor is my customer
	relPeer
	relProvider // neighbor is my provider
)

// Route is one candidate or selected BGP route at a router.
type Route struct {
	// Prefix is the announced prefix.
	Prefix ipres.Prefix
	// Path is the AS path: Path[0] is the neighbor the route was learned
	// from, Path[len-1] the origin. Empty for self-originated routes.
	Path []ipres.ASN
	// State is the route's origin-validation state at this router.
	State rov.State
	// learnedRel is the relationship to the neighbor the route came from.
	learnedRel rel
}

// Origin returns the originating AS (the router's own ASN for
// self-originated routes, signaled by an empty path).
func (r Route) Origin(self ipres.ASN) ipres.ASN {
	if len(r.Path) == 0 {
		return self
	}
	return r.Path[len(r.Path)-1]
}

func (r Route) contains(asn ipres.ASN) bool {
	for _, a := range r.Path {
		if a == asn {
			return true
		}
	}
	return false
}

// router is one AS.
type router struct {
	asn    ipres.ASN
	policy Policy
	// neighbors maps neighbor ASN → relationship from this router's view.
	neighbors map[ipres.ASN]rel
	// originated are this AS's own prefixes.
	originated []ipres.Prefix
	// rib maps prefix → selected route.
	rib map[ipres.Prefix]Route
	// adjIn maps prefix → neighbor → offered route.
	adjIn map[ipres.Prefix]map[ipres.ASN]Route
	// index is this AS's validated cache; nil means no RPKI (everything
	// validates as it would with an empty VRP set: Unknown).
	index *rov.Index
}

// Network is an AS-level topology plus routing state.
type Network struct {
	routers map[ipres.ASN]*router
	// sharedIndex, when set, is used by every AS without its own index.
	sharedIndex *rov.Index
	converged   bool
}

// NewNetwork creates an empty topology.
func NewNetwork() *Network {
	return &Network{routers: make(map[ipres.ASN]*router)}
}

// AddAS registers an AS with the given validation policy. Adding an
// existing AS updates its policy.
func (n *Network) AddAS(asn ipres.ASN, policy Policy) {
	if r, ok := n.routers[asn]; ok {
		r.policy = policy
		n.converged = false
		return
	}
	n.routers[asn] = &router{
		asn:       asn,
		policy:    policy,
		neighbors: make(map[ipres.ASN]rel),
		rib:       make(map[ipres.Prefix]Route),
		adjIn:     make(map[ipres.Prefix]map[ipres.ASN]Route),
	}
	n.converged = false
}

func (n *Network) router(asn ipres.ASN) (*router, error) {
	r, ok := n.routers[asn]
	if !ok {
		return nil, fmt.Errorf("bgp: unknown AS %v", asn)
	}
	return r, nil
}

// ProviderOf records that provider sells transit to customer.
func (n *Network) ProviderOf(provider, customer ipres.ASN) error {
	p, err := n.router(provider)
	if err != nil {
		return err
	}
	c, err := n.router(customer)
	if err != nil {
		return err
	}
	p.neighbors[customer] = relCustomer
	c.neighbors[provider] = relProvider
	n.converged = false
	return nil
}

// PeerOf records a settlement-free peering between a and b.
func (n *Network) PeerOf(a, b ipres.ASN) error {
	ra, err := n.router(a)
	if err != nil {
		return err
	}
	rb, err := n.router(b)
	if err != nil {
		return err
	}
	ra.neighbors[b] = relPeer
	rb.neighbors[a] = relPeer
	n.converged = false
	return nil
}

// Originate has the AS announce a prefix as its own.
func (n *Network) Originate(asn ipres.ASN, prefix ipres.Prefix) error {
	r, err := n.router(asn)
	if err != nil {
		return err
	}
	for _, p := range r.originated {
		if p == prefix {
			return nil
		}
	}
	r.originated = append(r.originated, prefix)
	n.converged = false
	return nil
}

// Withdraw removes a prefix origination.
func (n *Network) Withdraw(asn ipres.ASN, prefix ipres.Prefix) error {
	r, err := n.router(asn)
	if err != nil {
		return err
	}
	out := r.originated[:0]
	for _, p := range r.originated {
		if p != prefix {
			out = append(out, p)
		}
	}
	r.originated = out
	n.converged = false
	return nil
}

// SetSharedIndex installs the validated cache used by all ASes that have no
// per-AS index (the common case: relying parties see the same RPKI).
func (n *Network) SetSharedIndex(ix *rov.Index) {
	n.sharedIndex = ix
	n.converged = false
}

// SetASIndex installs a per-AS validated cache (for experiments where
// relying parties diverge). A nil index reverts to the shared one.
func (n *Network) SetASIndex(asn ipres.ASN, ix *rov.Index) error {
	r, err := n.router(asn)
	if err != nil {
		return err
	}
	r.index = ix
	n.converged = false
	return nil
}

// SetPolicy updates an AS's validation policy.
func (n *Network) SetPolicy(asn ipres.ASN, policy Policy) error {
	r, err := n.router(asn)
	if err != nil {
		return err
	}
	r.policy = policy
	n.converged = false
	return nil
}

// ASes returns all ASNs, sorted.
func (n *Network) ASes() []ipres.ASN {
	out := make([]ipres.ASN, 0, len(n.routers))
	for asn := range n.routers {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (n *Network) indexFor(r *router) *rov.Index {
	if r.index != nil {
		return r.index
	}
	return n.sharedIndex
}

// classify returns the validation state of (prefix, origin) at router r.
func (n *Network) classify(r *router, prefix ipres.Prefix, origin ipres.ASN) rov.State {
	ix := n.indexFor(r)
	if ix == nil {
		return rov.Unknown
	}
	return ix.State(rov.Route{Prefix: prefix, Origin: origin})
}
