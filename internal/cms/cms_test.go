package cms

import (
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/ipres"
)

var testEpoch = time.Date(2013, 11, 21, 0, 0, 0, 0, time.UTC)

func newEE(t testing.TB) (*cert.ResourceCert, *cert.KeyPair) {
	t.Helper()
	taKey := cert.MustGenerateKeyPair()
	ta, err := cert.Issue(cert.Template{
		Subject: "TA", Serial: 1,
		NotBefore: testEpoch.Add(-time.Hour), NotAfter: testEpoch.Add(24 * time.Hour),
		Resources: ipres.MustParseSet("63.160.0.0/12"), CA: true,
	}, nil, taKey, taKey)
	if err != nil {
		t.Fatal(err)
	}
	eeKey := cert.MustGenerateKeyPair()
	ee, err := cert.Issue(cert.Template{
		Subject: "ee", Serial: 2,
		NotBefore: testEpoch.Add(-time.Hour), NotAfter: testEpoch.Add(24 * time.Hour),
		Resources: ipres.MustParseSet("63.174.16.0/20"),
		SIA:       cert.InfoAccess{SignedObject: "rsynclite://x/obj.roa"},
	}, ta, taKey, eeKey)
	if err != nil {
		t.Fatal(err)
	}
	return ee, eeKey
}

func TestSignParseRoundTrip(t *testing.T) {
	ee, eeKey := newEE(t)
	payload := []byte{0x30, 0x06, 0x02, 0x01, 0x2A, 0x02, 0x01, 0x07} // arbitrary DER-ish bytes
	env, err := Sign(OIDContentTypeROA, payload, ee, eeKey)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := Parse(env)
	if err != nil {
		t.Fatal(err)
	}
	if !obj.ContentType.Equal(OIDContentTypeROA) {
		t.Errorf("content type = %v", obj.ContentType)
	}
	if string(obj.Content) != string(payload) {
		t.Error("payload mismatch")
	}
	if obj.EE.Subject() != "ee" {
		t.Errorf("EE subject = %q", obj.EE.Subject())
	}
}

func TestParseDetectsContentCorruption(t *testing.T) {
	ee, eeKey := newEE(t)
	payload := []byte("route origin authorization content")
	env, err := Sign(OIDContentTypeROA, payload, ee, eeKey)
	if err != nil {
		t.Fatal(err)
	}
	// Flip each byte of the envelope in turn; Parse must never succeed
	// with altered content bytes. (Some flips fail ASN.1 parsing, some
	// fail digest or signature checks — all must fail.)
	corrupted := 0
	for i := 0; i < len(env); i += 7 {
		mutated := append([]byte(nil), env...)
		mutated[i] ^= 0xFF
		if obj, err := Parse(mutated); err == nil {
			// A mutation that leaves everything verifiable must at least
			// preserve the payload bit-for-bit.
			if string(obj.Content) != string(payload) {
				t.Fatalf("byte %d: corrupted payload accepted", i)
			}
		} else {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Error("no mutation was detected at all")
	}
}

func TestParseRejectsWrongSigner(t *testing.T) {
	ee, _ := newEE(t)
	otherKey := cert.MustGenerateKeyPair()
	payload := []byte("payload")
	// Signed with a key that does not match the embedded EE cert.
	env, err := Sign(OIDContentTypeROA, payload, ee, otherKey)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(env); err == nil {
		t.Error("signature by non-matching key must fail")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("not cms at all")); err == nil {
		t.Error("garbage must fail")
	}
	if _, err := Parse(nil); err == nil {
		t.Error("nil must fail")
	}
}

func TestContentTypesDistinct(t *testing.T) {
	ee, eeKey := newEE(t)
	env, err := Sign(OIDContentTypeManifest, []byte("mft"), ee, eeKey)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := Parse(env)
	if err != nil {
		t.Fatal(err)
	}
	if !obj.ContentType.Equal(OIDContentTypeManifest) {
		t.Errorf("content type = %v", obj.ContentType)
	}
}

func TestSignDeterministicStructure(t *testing.T) {
	ee, eeKey := newEE(t)
	env1, err := Sign(OIDContentTypeROA, []byte("x"), ee, eeKey)
	if err != nil {
		t.Fatal(err)
	}
	env2, err := Sign(OIDContentTypeROA, []byte("x"), ee, eeKey)
	if err != nil {
		t.Fatal(err)
	}
	// ECDSA signatures are randomized, so envelopes differ — but both must
	// parse to identical content.
	o1, err := Parse(env1)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Parse(env2)
	if err != nil {
		t.Fatal(err)
	}
	if string(o1.Content) != string(o2.Content) {
		t.Error("content must be identical")
	}
}
