// Package cms implements the CMS SignedData envelope used by RPKI signed
// objects (RFC 6488 profile of RFC 5652): a payload ("eContent") of a given
// content type, signed by a one-time-use end-entity certificate that is
// embedded in the envelope, with signed attributes binding the content type
// and a SHA-256 message digest.
//
// The profile implemented here is simplified relative to full CMS — exactly
// one signer, SHA-256 + ECDSA P-256 only, subjectKeyIdentifier signer
// identification — which matches how the RPKI actually uses CMS. Signatures
// are real: tampering with a single byte of the payload or envelope causes
// verification failure, which is what makes Side Effect 6 ("a corrupted ROA
// is a missing ROA") mechanically true in this reproduction.
package cms

import (
	"bytes"
	"crypto/ecdsa"
	"crypto/sha256"
	"crypto/x509/pkix"
	"encoding/asn1"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cert"
)

// Content type OIDs for RPKI signed objects.
var (
	// OIDSignedData is id-signedData (1.2.840.113549.1.7.2).
	OIDSignedData = asn1.ObjectIdentifier{1, 2, 840, 113549, 1, 7, 2}
	// OIDContentTypeROA is id-ct-routeOriginAuthz (1.2.840.113549.1.9.16.1.24).
	OIDContentTypeROA = asn1.ObjectIdentifier{1, 2, 840, 113549, 1, 9, 16, 1, 24}
	// OIDContentTypeManifest is id-ct-rpkiManifest (1.2.840.113549.1.9.16.1.26).
	OIDContentTypeManifest = asn1.ObjectIdentifier{1, 2, 840, 113549, 1, 9, 16, 1, 26}

	oidAttrContentType   = asn1.ObjectIdentifier{1, 2, 840, 113549, 1, 9, 3}
	oidAttrMessageDigest = asn1.ObjectIdentifier{1, 2, 840, 113549, 1, 9, 4}
	oidSHA256            = asn1.ObjectIdentifier{2, 16, 840, 1, 101, 3, 4, 2, 1}
	oidECDSAWithSHA256   = asn1.ObjectIdentifier{1, 2, 840, 10045, 4, 3, 2}
)

// Hard input limits. Decoders reject oversized input before handing it to
// encoding/asn1, whose allocations are proportional to the declared input —
// CURE-style resource-exhaustion inputs must fail fast, not allocate.
const (
	// MaxObjectSize bounds a whole signed object, aligned with the
	// transport-level repo.MaxObjectSize so nothing the fetcher admits is
	// rejected here for size alone.
	MaxObjectSize = 8 << 20
	// MaxSignedAttrs bounds the SET OF Attribute: the RPKI profile needs
	// exactly two (content-type, message-digest); a generous margin covers
	// benign extras like signing-time without admitting attribute floods.
	MaxSignedAttrs = 32
)

// SignedObject is a parsed and signature-verified CMS envelope.
type SignedObject struct {
	// Raw is the full DER encoding of the ContentInfo.
	Raw []byte
	// ContentType identifies the eContent type (ROA, manifest, ...).
	ContentType asn1.ObjectIdentifier
	// Content is the DER eContent payload.
	Content []byte
	// EE is the embedded end-entity certificate whose key signed the
	// object. Callers must still validate EE up the RPKI hierarchy.
	EE *cert.ResourceCert
}

type algorithmIdentifier = pkix.AlgorithmIdentifier

type signerInfoSeq struct {
	Version            int
	SID                asn1.RawValue // [0] IMPLICIT SubjectKeyIdentifier
	DigestAlgorithm    algorithmIdentifier
	SignedAttrs        asn1.RawValue // [0] IMPLICIT SET OF Attribute
	SignatureAlgorithm algorithmIdentifier
	Signature          []byte
}

type signedDataSeq struct {
	Version          int
	DigestAlgorithms []algorithmIdentifier `asn1:"set"`
	EncapContentInfo asn1.RawValue
	Certificates     asn1.RawValue   // [0] IMPLICIT CertificateSet (one cert)
	SignerInfos      []signerInfoSeq `asn1:"set"`
}

type contentInfoSeq struct {
	ContentType asn1.ObjectIdentifier
	Content     asn1.RawValue // [0] EXPLICIT SignedData
}

func ctxTag(tag int, compound bool, content []byte) asn1.RawValue {
	return asn1.RawValue{Class: asn1.ClassContextSpecific, Tag: tag, IsCompound: compound, Bytes: content}
}

// buildSignedAttrs returns the SET OF Attribute both in its implicit [0]
// form (for embedding) and its explicit SET OF form (the bytes that are
// actually signed, per RFC 5652 section 5.4).
func buildSignedAttrs(contentType asn1.ObjectIdentifier, digest []byte) (implicit asn1.RawValue, signed []byte, err error) {
	type attribute struct {
		Type   asn1.ObjectIdentifier
		Values []asn1.RawValue `asn1:"set"`
	}
	ctDER, err := asn1.Marshal(contentType)
	if err != nil {
		return asn1.RawValue{}, nil, err
	}
	mdDER, err := asn1.Marshal(digest)
	if err != nil {
		return asn1.RawValue{}, nil, err
	}
	attrs := []attribute{
		{Type: oidAttrContentType, Values: []asn1.RawValue{{FullBytes: ctDER}}},
		{Type: oidAttrMessageDigest, Values: []asn1.RawValue{{FullBytes: mdDER}}},
	}
	encoded := make([][]byte, len(attrs))
	for i, a := range attrs {
		encoded[i], err = asn1.Marshal(a)
		if err != nil {
			return asn1.RawValue{}, nil, err
		}
	}
	// DER SET OF orders elements by their encodings.
	sort.Slice(encoded, func(i, j int) bool { return bytes.Compare(encoded[i], encoded[j]) < 0 })
	content := bytes.Join(encoded, nil)

	setOf, err := asn1.Marshal(asn1.RawValue{Class: asn1.ClassUniversal, Tag: asn1.TagSet, IsCompound: true, Bytes: content})
	if err != nil {
		return asn1.RawValue{}, nil, err
	}
	return ctxTag(0, true, content), setOf, nil
}

// Sign wraps content of the given type in a CMS envelope signed by eeKey,
// embedding ee as the signer certificate.
func Sign(contentType asn1.ObjectIdentifier, content []byte, ee *cert.ResourceCert, eeKey *cert.KeyPair) ([]byte, error) {
	digest := sha256.Sum256(content)
	implicitAttrs, signedBytes, err := buildSignedAttrs(contentType, digest[:])
	if err != nil {
		return nil, fmt.Errorf("cms: building attributes: %w", err)
	}
	attrDigest := sha256.Sum256(signedBytes)
	sig, err := eeKey.SignDigest(attrDigest[:])
	if err != nil {
		return nil, fmt.Errorf("cms: signing: %w", err)
	}

	// EncapsulatedContentInfo ::= SEQUENCE { eContentType, [0] EXPLICIT OCTET STRING }
	octets, err := asn1.Marshal(content)
	if err != nil {
		return nil, err
	}
	eci, err := asn1.Marshal(struct {
		EContentType asn1.ObjectIdentifier
		EContent     asn1.RawValue
	}{contentType, ctxTag(0, true, octets)})
	if err != nil {
		return nil, err
	}

	sha256Alg := algorithmIdentifier{Algorithm: oidSHA256}
	sd := signedDataSeq{
		Version:          3,
		DigestAlgorithms: []algorithmIdentifier{sha256Alg},
		EncapContentInfo: asn1.RawValue{FullBytes: eci},
		Certificates:     ctxTag(0, true, ee.Raw),
		SignerInfos: []signerInfoSeq{{
			Version:            3,
			SID:                ctxTag(0, false, ee.Cert.SubjectKeyId),
			DigestAlgorithm:    sha256Alg,
			SignedAttrs:        implicitAttrs,
			SignatureAlgorithm: algorithmIdentifier{Algorithm: oidECDSAWithSHA256},
			Signature:          sig,
		}},
	}
	sdDER, err := asn1.Marshal(sd)
	if err != nil {
		return nil, fmt.Errorf("cms: encoding SignedData: %w", err)
	}
	ciDER, err := asn1.Marshal(contentInfoSeq{
		ContentType: OIDSignedData,
		Content:     ctxTag(0, true, sdDER),
	})
	if err != nil {
		return nil, fmt.Errorf("cms: encoding ContentInfo: %w", err)
	}
	return ciDER, nil
}

// Parse decodes a CMS envelope and verifies its signature against the
// embedded EE certificate. It does NOT validate the EE certificate's chain;
// that is the relying party's job.
func Parse(der []byte) (*SignedObject, error) {
	if len(der) > MaxObjectSize {
		return nil, fmt.Errorf("cms: object %d bytes exceeds limit %d", len(der), MaxObjectSize)
	}
	var ci contentInfoSeq
	rest, err := asn1.Unmarshal(der, &ci)
	if err != nil {
		return nil, fmt.Errorf("cms: bad ContentInfo: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("cms: trailing bytes after ContentInfo")
	}
	if !ci.ContentType.Equal(OIDSignedData) {
		return nil, fmt.Errorf("cms: unexpected content type %v", ci.ContentType)
	}
	if ci.Content.Class != asn1.ClassContextSpecific || ci.Content.Tag != 0 {
		return nil, fmt.Errorf("cms: missing [0] SignedData wrapper")
	}
	var sd signedDataSeq
	if _, err := asn1.Unmarshal(ci.Content.Bytes, &sd); err != nil {
		return nil, fmt.Errorf("cms: bad SignedData: %w", err)
	}
	if len(sd.SignerInfos) != 1 {
		return nil, fmt.Errorf("cms: want exactly 1 signer, got %d", len(sd.SignerInfos))
	}
	si := sd.SignerInfos[0]
	if !si.SignatureAlgorithm.Algorithm.Equal(oidECDSAWithSHA256) {
		return nil, fmt.Errorf("cms: unsupported signature algorithm %v", si.SignatureAlgorithm.Algorithm)
	}

	// Decode the encapsulated content.
	var eci struct {
		EContentType asn1.ObjectIdentifier
		EContent     asn1.RawValue
	}
	if _, err := asn1.Unmarshal(sd.EncapContentInfo.FullBytes, &eci); err != nil {
		return nil, fmt.Errorf("cms: bad EncapContentInfo: %w", err)
	}
	if eci.EContent.Class != asn1.ClassContextSpecific || eci.EContent.Tag != 0 {
		return nil, fmt.Errorf("cms: missing [0] eContent wrapper")
	}
	var content []byte
	if _, err := asn1.Unmarshal(eci.EContent.Bytes, &content); err != nil {
		return nil, fmt.Errorf("cms: bad eContent octets: %w", err)
	}

	// Parse the embedded EE certificate.
	if sd.Certificates.Class != asn1.ClassContextSpecific || sd.Certificates.Tag != 0 {
		return nil, fmt.Errorf("cms: missing embedded certificate")
	}
	ee, err := cert.Parse(sd.Certificates.Bytes)
	if err != nil {
		return nil, fmt.Errorf("cms: embedded EE: %w", err)
	}

	// Verify the signer identifier binds to the embedded certificate.
	if si.SID.Class != asn1.ClassContextSpecific || si.SID.Tag != 0 {
		return nil, fmt.Errorf("cms: unsupported signer identifier")
	}
	if !bytes.Equal(si.SID.Bytes, ee.Cert.SubjectKeyId) {
		return nil, fmt.Errorf("cms: signer SKI does not match embedded certificate")
	}

	// Verify the signed attributes bind the content.
	if si.SignedAttrs.Class != asn1.ClassContextSpecific || si.SignedAttrs.Tag != 0 {
		return nil, fmt.Errorf("cms: missing signed attributes")
	}
	digest := sha256.Sum256(content)
	declaredType, declaredDigest, err := parseSignedAttrs(si.SignedAttrs.Bytes)
	if err != nil {
		return nil, err
	}
	if !declaredType.Equal(eci.EContentType) {
		return nil, fmt.Errorf("cms: content-type attribute mismatch")
	}
	if !bytes.Equal(declaredDigest, digest[:]) {
		return nil, fmt.Errorf("cms: message digest mismatch (content corrupted)")
	}

	// Verify the signature over the explicit SET OF encoding of the attrs.
	attrDigest := hashExplicitSetOf(si.SignedAttrs.Bytes)
	pub, ok := ee.Cert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("cms: EE key is not ECDSA")
	}
	if !ecdsa.VerifyASN1(pub, attrDigest[:], si.Signature) {
		return nil, fmt.Errorf("cms: signature verification failed")
	}

	return &SignedObject{
		Raw:         der,
		ContentType: eci.EContentType,
		Content:     content,
		EE:          ee,
	}, nil
}

// setScratch pools the scratch buffers hashExplicitSetOf assembles the
// explicit SET OF encoding into. Buffers never escape: the digest is copied
// out before the buffer returns to the pool.
var setScratch = sync.Pool{New: func() any { return new([]byte) }}

// hashExplicitSetOf computes SHA-256 over the explicit DER SET OF encoding
// (tag 0x31, definite length, content) of an implicitly tagged attribute
// set, without re-marshaling through encoding/asn1. This runs once per
// signed-object parse — the relying party's hot path — so the header is
// written by hand into a pooled buffer instead of allocating a fresh copy of
// the attributes for every verification.
func hashExplicitSetOf(content []byte) [32]byte {
	bp := setScratch.Get().(*[]byte)
	buf := append((*bp)[:0], 0x31)
	switch n := len(content); {
	case n < 0x80:
		buf = append(buf, byte(n))
	case n < 0x100:
		buf = append(buf, 0x81, byte(n))
	case n < 0x10000:
		buf = append(buf, 0x82, byte(n>>8), byte(n))
	default:
		// Unreachable for RPKI signed attributes (two short attrs), but keep
		// the encoding correct for arbitrary input.
		buf = append(buf, 0x83, byte(n>>16), byte(n>>8), byte(n))
	}
	buf = append(buf, content...)
	sum := sha256.Sum256(buf)
	*bp = buf
	setScratch.Put(bp)
	return sum
}

func parseSignedAttrs(setContent []byte) (contentType asn1.ObjectIdentifier, digest []byte, err error) {
	type attribute struct {
		Type   asn1.ObjectIdentifier
		Values []asn1.RawValue `asn1:"set"`
	}
	rest := setContent
	var sawCT, sawMD bool
	count := 0
	for len(rest) > 0 {
		count++
		if count > MaxSignedAttrs {
			return nil, nil, fmt.Errorf("cms: more than %d signed attributes", MaxSignedAttrs)
		}
		var a attribute
		rest, err = asn1.Unmarshal(rest, &a)
		if err != nil {
			return nil, nil, fmt.Errorf("cms: bad attribute: %w", err)
		}
		if len(a.Values) != 1 {
			return nil, nil, fmt.Errorf("cms: attribute %v must have one value", a.Type)
		}
		switch {
		case a.Type.Equal(oidAttrContentType):
			if _, err := asn1.Unmarshal(a.Values[0].FullBytes, &contentType); err != nil {
				return nil, nil, fmt.Errorf("cms: bad content-type attr: %w", err)
			}
			sawCT = true
		case a.Type.Equal(oidAttrMessageDigest):
			if _, err := asn1.Unmarshal(a.Values[0].FullBytes, &digest); err != nil {
				return nil, nil, fmt.Errorf("cms: bad message-digest attr: %w", err)
			}
			sawMD = true
		}
	}
	if !sawCT || !sawMD {
		return nil, nil, fmt.Errorf("cms: missing mandatory signed attributes")
	}
	return contentType, digest, nil
}
