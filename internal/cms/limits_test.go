package cms

import (
	"encoding/asn1"
	"strings"
	"testing"
)

func TestParseRejectsOversizedObject(t *testing.T) {
	_, err := Parse(make([]byte, MaxObjectSize+1))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized object: err = %v", err)
	}
}

func TestParseSignedAttrsRejectsFlood(t *testing.T) {
	type attribute struct {
		Type   asn1.ObjectIdentifier
		Values []asn1.RawValue `asn1:"set"`
	}
	// An attribute type Parse ignores, so the loop keeps consuming until the
	// flood check fires rather than failing on a value decode.
	one, err := asn1.Marshal(attribute{
		Type:   asn1.ObjectIdentifier{1, 2, 3, 4},
		Values: []asn1.RawValue{{FullBytes: []byte{0x05, 0x00}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var set []byte
	for i := 0; i < MaxSignedAttrs+1; i++ {
		set = append(set, one...)
	}
	if _, _, err := parseSignedAttrs(set); err == nil || !strings.Contains(err.Error(), "signed attributes") {
		t.Fatalf("attribute flood: err = %v", err)
	}
	// At the limit the loop itself must not trip (the attrs here are
	// degenerate, so only the count check is under test via the error text).
	if _, _, err := parseSignedAttrs(set[:len(one)*MaxSignedAttrs]); err != nil && strings.Contains(err.Error(), "more than") {
		t.Fatalf("limit-sized attribute set tripped the flood check: %v", err)
	}
}
