package cms

import (
	"math/rand"
	"testing"
)

// TestParseNeverPanicsOnMutation is a fuzz-lite robustness property: a
// relying party parses attacker-controlled bytes, so Parse must fail
// cleanly — never panic — on arbitrarily mutated envelopes. (Side Effect 6
// depends on corrupted objects being *rejected*, not on them crashing the
// validator.)
func TestParseNeverPanicsOnMutation(t *testing.T) {
	ee, eeKey := newEE(t)
	env, err := Sign(OIDContentTypeROA, []byte("payload for mutation testing"), ee, eeKey)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2013))
	for trial := 0; trial < 2000; trial++ {
		mutated := append([]byte(nil), env...)
		// 1–4 random byte mutations.
		for m := 0; m < 1+rng.Intn(4); m++ {
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse panicked on mutation (trial %d): %v", trial, r)
				}
			}()
			_, _ = Parse(mutated)
		}()
	}
	// Truncations too.
	for cut := 0; cut < len(env); cut += 9 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse panicked on truncation at %d: %v", cut, r)
				}
			}()
			_, _ = Parse(env[:cut])
		}()
	}
}
