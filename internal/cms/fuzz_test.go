package cms

import (
	"bytes"
	"testing"
)

// FuzzParseCMS drives Parse with arbitrary bytes. The CURE paper found
// crash/hang bugs in exactly this layer of production relying parties; the
// property here is the minimal one — Parse must return (obj, nil) or
// (nil, err), never panic, and an accepted object must carry a sane payload.
func FuzzParseCMS(f *testing.F) {
	ee, eeKey := newEE(f)
	valid, err := Sign(OIDContentTypeROA, []byte("fuzz seed payload"), ee, eeKey)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{0x30, 0x03, 0x02, 0x01, 0x2A})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		obj, err := Parse(data)
		if err != nil {
			return
		}
		if obj == nil {
			t.Fatal("nil object with nil error")
		}
		if !bytes.Equal(obj.Raw, data) {
			t.Fatal("Raw does not round-trip input")
		}
		if obj.EE == nil {
			t.Fatal("accepted object without EE certificate")
		}
	})
}
