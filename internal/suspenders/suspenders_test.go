package suspenders

import (
	"testing"
	"time"

	"repro/internal/ipres"
	"repro/internal/rov"
)

var epoch = time.Date(2013, 11, 21, 0, 0, 0, 0, time.UTC)

func vrp(p string, asn ipres.ASN) rov.VRP {
	pref := ipres.MustParsePrefix(p)
	return rov.VRP{Prefix: pref, MaxLength: pref.Bits(), ASN: asn}
}

func TestGraceRetainsMissingVRP(t *testing.T) {
	c := NewCache(time.Hour)
	v1 := vrp("63.174.16.0/20", 17054)
	v2 := vrp("63.174.16.0/22", 7341)

	out := c.Update(epoch, []rov.VRP{v1, v2})
	if len(out) != 2 {
		t.Fatalf("initial = %v", out)
	}
	// v2 disappears (Side Effect 6): within grace it is retained.
	out = c.Update(epoch.Add(10*time.Minute), []rov.VRP{v1})
	if len(out) != 2 {
		t.Fatalf("within grace = %v", out)
	}
	susp := c.Suspended(epoch.Add(10*time.Minute), []rov.VRP{v1})
	if len(susp) != 1 || susp[0] != v2 {
		t.Errorf("suspended = %v", susp)
	}
	// After grace, it expires for real.
	out = c.Update(epoch.Add(2*time.Hour), []rov.VRP{v1})
	if len(out) != 1 || out[0] != v1 {
		t.Fatalf("after grace = %v", out)
	}
	if c.Len() != 1 {
		t.Errorf("cache len = %d", c.Len())
	}
}

func TestReappearanceResetsClock(t *testing.T) {
	c := NewCache(time.Hour)
	v := vrp("10.0.0.0/8", 1)
	c.Update(epoch, []rov.VRP{v})
	c.Update(epoch.Add(50*time.Minute), nil) // missing but in grace
	// It comes back: clock resets.
	c.Update(epoch.Add(55*time.Minute), []rov.VRP{v})
	out := c.Update(epoch.Add(100*time.Minute), nil)
	if len(out) != 1 {
		t.Errorf("reappeared VRP should survive a fresh grace window: %v", out)
	}
}

func TestGraceDelaysLegitimateRevocation(t *testing.T) {
	// The cost side of the tradeoff: a deliberately whacked ROA keeps
	// acting for the grace period.
	c := NewCache(time.Hour)
	v := vrp("63.161.0.0/16", 19429)
	c.Update(epoch, []rov.VRP{v})
	out := c.Update(epoch.Add(30*time.Minute), nil) // legitimately revoked
	if len(out) != 1 {
		t.Fatal("the revoked ROA is still honored — that is the cost")
	}
	out = c.Update(epoch.Add(90*time.Minute), nil)
	if len(out) != 0 {
		t.Fatal("revocation finally takes effect after grace")
	}
}

func TestSideEffect6Neutralized(t *testing.T) {
	// With suspenders, the paper's missing-ROA flip does not happen
	// within the grace window.
	c := NewCache(time.Hour)
	cover := vrp("63.174.16.0/20", 17054)
	target := vrp("63.174.16.0/22", 7341)
	effective := c.Update(epoch, []rov.VRP{cover, target})
	route := rov.Route{Prefix: ipres.MustParsePrefix("63.174.16.0/22"), Origin: 7341}
	if rov.NewIndex(effective...).State(route) != rov.Valid {
		t.Fatal("precondition")
	}
	// The target ROA goes missing; the plain cache would flip the route
	// to invalid (the /20 still covers it). Suspenders holds it valid.
	plain := rov.NewIndex(cover)
	if plain.State(route) != rov.Invalid {
		t.Fatal("plain cache should flip to invalid")
	}
	effective = c.Update(epoch.Add(5*time.Minute), []rov.VRP{cover})
	if got := rov.NewIndex(effective...).State(route); got != rov.Valid {
		t.Errorf("suspenders should hold the route valid, got %v", got)
	}
}

func TestZeroGraceDegenerates(t *testing.T) {
	c := NewCache(0)
	v := vrp("10.0.0.0/8", 1)
	c.Update(epoch, []rov.VRP{v})
	out := c.Update(epoch.Add(time.Nanosecond), nil)
	if len(out) != 0 {
		t.Error("zero grace should behave like a plain cache")
	}
}
