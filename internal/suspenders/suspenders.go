// Package suspenders implements a fail-safe layer for relying parties,
// modeled on the direction of Kent & Mandelberg's "Suspenders" draft that
// the paper cites among the IETF's concurrent hardening efforts: when a
// previously valid ROA disappears from the fetched RPKI, the relying party
// keeps honoring it for a bounded grace period instead of letting covered
// routes flip to invalid instantly.
//
// This directly targets Side Effects 6 and 7: a transiently missing ROA no
// longer takes the route down, and the circular dependency cannot latch —
// the grace window keeps the repository reachable long enough to refetch
// the healed object. The cost is equally direct: during the grace window a
// genuinely revoked or whacked ROA keeps protecting (or keeps authorizing)
// routes, delaying the RPKI's reaction to real address reclamation. The
// tradeoff is the paper's Section 4 dilemma, made quantitative.
package suspenders

import (
	"sort"
	"time"

	"repro/internal/rov"
)

// Entry is one remembered VRP with its last-seen time.
type Entry struct {
	VRP      rov.VRP
	LastSeen time.Time
}

// Cache is the fail-safe VRP cache. It is not safe for concurrent use; a
// relying party owns one and updates it after each sync.
type Cache struct {
	// Grace is how long a disappeared VRP is retained.
	Grace time.Duration
	// entries tracks every VRP ever seen and when.
	entries map[rov.VRP]time.Time
}

// NewCache creates a fail-safe cache with the given grace period.
func NewCache(grace time.Duration) *Cache {
	return &Cache{Grace: grace, entries: make(map[rov.VRP]time.Time)}
}

// Update ingests the VRPs of a completed sync at time now and returns the
// effective VRP set: everything currently present plus everything that
// disappeared less than Grace ago.
func (c *Cache) Update(now time.Time, current []rov.VRP) []rov.VRP {
	for _, v := range current {
		c.entries[v] = now
	}
	var out []rov.VRP
	for v, seen := range c.entries {
		if now.Sub(seen) > c.Grace {
			delete(c.entries, v)
			continue
		}
		out = append(out, v)
	}
	sortVRPs(out)
	return out
}

// Suspended returns the VRPs currently honored only by grace (absent from
// the latest sync at time now).
func (c *Cache) Suspended(now time.Time, current []rov.VRP) []rov.VRP {
	present := make(map[rov.VRP]bool, len(current))
	for _, v := range current {
		present[v] = true
	}
	var out []rov.VRP
	for v, seen := range c.entries {
		if present[v] || now.Sub(seen) > c.Grace {
			continue
		}
		out = append(out, v)
	}
	sortVRPs(out)
	return out
}

// Len returns the number of remembered VRPs.
func (c *Cache) Len() int { return len(c.entries) }

func sortVRPs(vrps []rov.VRP) {
	sort.Slice(vrps, func(i, j int) bool {
		if c := vrps[i].Prefix.Cmp(vrps[j].Prefix); c != 0 {
			return c < 0
		}
		if vrps[i].ASN != vrps[j].ASN {
			return vrps[i].ASN < vrps[j].ASN
		}
		return vrps[i].MaxLength < vrps[j].MaxLength
	})
}
