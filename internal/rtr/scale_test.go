package rtr

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/ipres"
	"repro/internal/rov"
)

// manyVRPs builds n distinct VRPs (used to make snapshot frames large
// enough to overflow a small kernel send buffer).
func manyVRPs(n int) []rov.VRP {
	out := make([]rov.VRP, 0, n)
	for i := 0; i < n; i++ {
		p := ipres.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", i/256, i%256))
		out = append(out, rov.VRP{Prefix: p, MaxLength: 24, ASN: ipres.ASN(64500 + i)})
	}
	return out
}

// TestSlowConsumerEvicted: a client that requests the snapshot and then
// stops reading must be evicted on a write stall — and a healthy client on
// the same server must keep receiving deltas undisturbed while the stalled
// one wedges.
func TestSlowConsumerEvicted(t *testing.T) {
	cache := NewCache(7)
	cache.SetVRPs(manyVRPs(2000)) // ~40 KiB snapshot frame

	srv := NewServer(cache)
	srv.WriteTimeout = 200 * time.Millisecond
	srv.WriteBuffer = 4 << 10 // snapshot cannot fit the kernel buffer
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Healthy client, synced and following.
	healthy := NewClient(addr)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = healthy.Run(ctx) }()
	if !healthy.WaitSerial(1, 5*time.Second) {
		t.Fatal("healthy client never synced")
	}

	// Stalled client: asks for the snapshot, reads nothing. Its receive
	// buffer is pinned small so the unread snapshot wedges the server's
	// write instead of draining into kernel buffering.
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if tc, ok := stalled.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(2 << 10)
	}
	if err := WritePDU(stalled, &PDU{Type: TypeResetQuery}); err != nil {
		t.Fatal(err)
	}

	// Churn while the stalled client wedges its writer.
	base := manyVRPs(1990)
	for i := 0; i < 5; i++ {
		churn := append(base[:1990:1990], vrp("192.168.0.0/24", 24, ipres.ASN(65000+i)))
		cache.SetVRPs(churn)
	}

	deadline := time.Now().Add(5 * time.Second)
	for srv.Evictions() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if srv.Evictions() == 0 {
		t.Fatal("stalled client never evicted")
	}

	// The healthy client must still track the cache.
	if !healthy.WaitSerial(cache.Serial(), 5*time.Second) {
		t.Fatalf("healthy client stuck at %d, cache at %d", healthy.Serial(), cache.Serial())
	}
	assertVRPsEqual(t, healthy, cache)
}

// TestQueueFullEviction: a client that floods queries without draining
// responses fills its bounded send queue and is evicted rather than
// buffered without bound.
func TestQueueFullEviction(t *testing.T) {
	cache := NewCache(7)
	cache.SetVRPs(manyVRPs(2000))

	srv := NewServer(cache)
	srv.SendQueue = 1
	srv.WriteTimeout = 30 * time.Second // stall detection via the queue, not the deadline
	srv.WriteBuffer = 4 << 10
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Flood reset queries, never read: the writer wedges on the first big
	// snapshot, the queue holds the second, the third overflows.
	for i := 0; i < 10; i++ {
		if err := WritePDU(conn, &PDU{Type: TypeResetQuery}); err != nil {
			break
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Evictions() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if srv.Evictions() == 0 {
		t.Fatal("query-flooding client never evicted")
	}
}

func TestMaxClientsRejected(t *testing.T) {
	cache := NewCache(7)
	cache.SetVRPs([]rov.VRP{vrp("10.0.0.0/8", 8, 1)})
	srv := NewServer(cache)
	srv.MaxClients = 2
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var keep []*Client
	for i := 0; i < 2; i++ {
		c := NewClient(addr)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() { _ = c.Run(ctx) }()
		if !c.WaitSynced(5 * time.Second) {
			t.Fatalf("client %d never synced", i)
		}
		keep = append(keep, c)
	}

	// The third connection is answered with an Error PDU and closed.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	p, err := ReadPDU(conn)
	if err != nil {
		t.Fatalf("over-cap connection: %v", err)
	}
	if p.Type != TypeErrorReport {
		t.Errorf("over-cap answer type = %d, want error report", p.Type)
	}
	if srv.Rejections() != 1 {
		t.Errorf("rejections = %d, want 1", srv.Rejections())
	}
	_ = keep
}

// assertVRPsEqual compares a client's canonical VRP set against the
// cache's.
func assertVRPsEqual(t *testing.T, c *Client, cache *Cache) {
	t.Helper()
	want, _, _ := cache.snapshotVRPs()
	got := c.VRPs()
	if len(got) != len(want) {
		t.Fatalf("client has %d VRPs, cache has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("VRP %d: client %v, cache %v", i, got[i], want[i])
		}
	}
}

// TestSessionResumption: a reconnecting client with a valid session/serial
// replays only the missed deltas — one resume, no second full reload.
func TestSessionResumption(t *testing.T) {
	cache := NewCache(7)
	cache.SetVRPs([]rov.VRP{vrp("10.0.0.0/8", 8, 1)})
	srv := NewServer(cache)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := NewClient(addr)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { _ = client.Run(ctx) }()
	if !client.WaitSerial(1, 5*time.Second) {
		t.Fatal("initial sync failed")
	}
	cancel() // connection drops

	// Two deltas happen while the router is away.
	cache.SetVRPs([]rov.VRP{vrp("10.0.0.0/8", 8, 1), vrp("10.1.0.0/16", 16, 2)})
	cache.SetVRPs([]rov.VRP{vrp("10.1.0.0/16", 16, 2), vrp("2001:db8::/32", 48, 3)})

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go func() { _ = client.Run(ctx2) }()
	if !client.WaitSerial(3, 5*time.Second) {
		t.Fatal("resume never caught up")
	}

	if client.Resumes() != 1 {
		t.Errorf("client resumes = %d, want 1", client.Resumes())
	}
	if client.Reloads() != 1 {
		t.Errorf("client reloads = %d, want 1 (the initial sync only)", client.Reloads())
	}
	if srv.Resumptions() != 1 {
		t.Errorf("server resumptions = %d, want 1", srv.Resumptions())
	}
	assertVRPsEqual(t, client, cache)
}

// TestResumeOutOfWindow: a serial older than the retained history window
// must be answered with Cache Reset and a full snapshot reload — never a
// partial replay.
func TestResumeOutOfWindow(t *testing.T) {
	cache := NewCache(7)
	cache.SetHistoryLimits(1, 0, 0)
	cache.SetVRPs([]rov.VRP{vrp("10.0.0.0/8", 8, 1)})
	srv := NewServer(cache)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := NewClient(addr)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { _ = client.Run(ctx) }()
	if !client.WaitSerial(1, 5*time.Second) {
		t.Fatal("initial sync failed")
	}
	cancel()

	// Enough churn that serial 1 ages out of the 1-entry window.
	for i := 0; i < 4; i++ {
		cache.SetVRPs([]rov.VRP{vrp("10.0.0.0/8", 8, ipres.ASN(10+i))})
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go func() { _ = client.Run(ctx2) }()
	if !client.WaitSerial(5, 5*time.Second) {
		t.Fatal("out-of-window reconnect never caught up")
	}

	if client.Resumes() != 0 {
		t.Errorf("client resumes = %d, want 0 (out of window must not partially replay)", client.Resumes())
	}
	if client.Reloads() != 2 {
		t.Errorf("client reloads = %d, want 2 (initial + post-reset)", client.Reloads())
	}
	if srv.CacheResets() == 0 {
		t.Error("server answered no cache reset")
	}
	assertVRPsEqual(t, client, cache)
}

// TestResumeAcrossSetVRPsRace: reconnecting while the cache is being
// updated concurrently must never skip or duplicate a delta — after the
// dust settles the client's canonical VRP set equals the cache's exactly.
func TestResumeAcrossSetVRPsRace(t *testing.T) {
	cache := NewCache(7)
	cache.SetVRPs([]rov.VRP{vrp("10.0.0.0/8", 8, 1)})
	srv := NewServer(cache)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := NewClient(addr)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { _ = client.Run(ctx) }()
	if !client.WaitSerial(1, 5*time.Second) {
		t.Fatal("initial sync failed")
	}
	cancel()

	// Churn storm racing the reconnect.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			set := []rov.VRP{vrp("10.0.0.0/8", 8, 1)}
			for j := 0; j <= i%7; j++ {
				set = append(set, vrp(fmt.Sprintf("172.16.%d.0/24", j), 24, ipres.ASN(100+i)))
			}
			cache.SetVRPs(set)
		}
	}()

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go func() { _ = client.Run(ctx2) }()

	wg.Wait()
	final := cache.Serial()
	if !client.WaitSerial(final, 10*time.Second) {
		t.Fatalf("client stuck at %d, cache at %d", client.Serial(), final)
	}
	assertVRPsEqual(t, client, cache)
}

// TestShardDistribution: round-robin placement spreads subscribers evenly
// over the shards, so no SetVRPs walk serializes behind one giant map.
func TestShardDistribution(t *testing.T) {
	c := NewCache(1)
	const n = 8 * numSubShards
	subs := make([]*subscriber, 0, n)
	for i := 0; i < n; i++ {
		subs = append(subs, c.subscribe(fmt.Sprintf("peer-%d", i), nil))
	}
	for i := range c.shards {
		c.shards[i].mu.Lock()
		got := len(c.shards[i].subs)
		c.shards[i].mu.Unlock()
		if got != n/numSubShards {
			t.Errorf("shard %d has %d subscribers, want %d", i, got, n/numSubShards)
		}
	}
	if c.subscriberCount() != n {
		t.Errorf("subscriberCount = %d, want %d", c.subscriberCount(), n)
	}
	for _, s := range subs {
		c.unsubscribe(s)
	}
	if c.subscriberCount() != 0 {
		t.Errorf("subscriberCount after unsubscribe = %d, want 0", c.subscriberCount())
	}
}
