package rtr

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/rov"
)

// Client is the router side of the RTR protocol: it maintains a local copy
// of the cache's VRPs and keeps it current via serial queries.
type Client struct {
	addr string

	mu sync.Mutex
	// Local VRP copy and sync state. guarded by mu.
	vrps    map[rov.VRP]bool
	serial  uint32
	session uint16
	synced  bool
	onSync  func([]rov.VRP)
}

// NewClient creates a client for the RTR server at addr.
func NewClient(addr string) *Client {
	return &Client{addr: addr, vrps: make(map[rov.VRP]bool)}
}

// OnSync registers a callback invoked with the full VRP set after every
// completed update.
func (c *Client) OnSync(fn func([]rov.VRP)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onSync = fn
}

// VRPs returns the current VRP set, in canonical order.
func (c *Client) VRPs() []rov.VRP {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]rov.VRP, 0, len(c.vrps))
	for v := range c.vrps {
		out = append(out, v)
	}
	rov.SortVRPs(out)
	return out
}

// Serial returns the last completed serial.
func (c *Client) Serial() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serial
}

// Synced reports whether at least one End of Data has been processed.
func (c *Client) Synced() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.synced
}

// Run connects and synchronizes until ctx is canceled. It performs an
// initial reset query, then reacts to serial notifies with serial queries.
// Run returns the first fatal error, or ctx.Err() on cancellation.
func (c *Client) Run(ctx context.Context) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return fmt.Errorf("rtr: dial %s: %w", c.addr, err)
	}
	defer conn.Close()
	go func() {
		<-ctx.Done()
		conn.Close()
	}()

	// Each query the client sends is deadline-bounded so a stalled cache
	// cannot wedge the writer; reads stay unbounded by design — the client
	// legitimately idles until the cache pushes a notify.
	armWrite := func() error {
		return conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	}
	r := bufio.NewReader(conn)
	if err := armWrite(); err != nil {
		return fmt.Errorf("rtr: arming write deadline: %w", err)
	}
	if err := WritePDU(conn, &PDU{Type: TypeResetQuery}); err != nil {
		return fmt.Errorf("rtr: reset query: %w", err)
	}
	staging := make(map[rov.VRP]bool)
	inResponse := false
	fullReload := true

	for {
		p, err := ReadPDU(r)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("rtr: read: %w", err)
		}
		switch p.Type {
		case TypeCacheResponse:
			inResponse = true
			c.mu.Lock()
			c.session = p.Session
			if fullReload {
				staging = make(map[rov.VRP]bool)
			} else {
				staging = make(map[rov.VRP]bool, len(c.vrps))
				for v := range c.vrps {
					staging[v] = true
				}
			}
			c.mu.Unlock()

		case TypeIPv4Prefix, TypeIPv6Prefix:
			if !inResponse {
				return fmt.Errorf("rtr: prefix PDU outside cache response")
			}
			if p.Flags&FlagAnnounce != 0 {
				staging[p.VRP] = true
			} else {
				delete(staging, p.VRP)
			}

		case TypeEndOfData:
			if !inResponse {
				return fmt.Errorf("rtr: end of data outside cache response")
			}
			inResponse = false
			fullReload = false
			c.mu.Lock()
			c.vrps = staging
			c.serial = p.Serial
			c.synced = true
			cb := c.onSync
			c.mu.Unlock()
			if cb != nil {
				cb(c.VRPs())
			}
			staging = make(map[rov.VRP]bool)

		case TypeSerialNotify:
			c.mu.Lock()
			serial, session := c.serial, c.session
			c.mu.Unlock()
			if p.Serial == serial {
				continue
			}
			if err := armWrite(); err != nil {
				return fmt.Errorf("rtr: arming write deadline: %w", err)
			}
			if err := WritePDU(conn, &PDU{Type: TypeSerialQuery, Session: session, Serial: serial}); err != nil {
				return fmt.Errorf("rtr: serial query: %w", err)
			}

		case TypeCacheReset:
			fullReload = true
			if err := armWrite(); err != nil {
				return fmt.Errorf("rtr: arming write deadline: %w", err)
			}
			if err := WritePDU(conn, &PDU{Type: TypeResetQuery}); err != nil {
				return fmt.Errorf("rtr: reset query: %w", err)
			}

		case TypeErrorReport:
			return fmt.Errorf("rtr: server error %d: %s", p.Session, p.ErrText)

		default:
			return fmt.Errorf("rtr: unexpected PDU type %d", p.Type)
		}
	}
}

// WaitSynced blocks until the client has completed an initial sync or the
// timeout elapses.
func (c *Client) WaitSynced(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.Synced() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return c.Synced()
}

// WaitSerial blocks until the client reaches at least the given serial.
func (c *Client) WaitSerial(serial uint32, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.Serial() >= serial {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return c.Serial() >= serial
}
