package rtr

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/rov"
)

// Client is the router side of the RTR protocol: it maintains a local copy
// of the cache's VRPs and keeps it current via serial queries.
//
// Run may be called again after it returns (the connection dropped): a
// client that has synced at least once resumes its session with a serial
// query, replaying only the deltas it missed; the server answers Cache
// Reset — and the client falls back to a full snapshot reload — when the
// session changed or the serial aged out of the server's history window.
// Delta application is idempotent (announce = set, withdraw = delete), so a
// delta replayed across a reconnect race can never skip or duplicate state.
type Client struct {
	addr string

	mu sync.Mutex
	// Local VRP copy and sync state. guarded by mu.
	vrps     map[rov.VRP]bool
	serial   uint32
	session  uint16
	synced   bool
	resumes  uint64
	reloads  uint64
	onSync   func([]rov.VRP)
	onSerial func(uint32)
}

// NewClient creates a client for the RTR server at addr.
func NewClient(addr string) *Client {
	return &Client{addr: addr, vrps: make(map[rov.VRP]bool)}
}

// OnSync registers a callback invoked with the full VRP set after every
// completed update. Building the sorted set costs O(n) per update; at
// fleet-scale fan-out prefer OnSerial and read VRPs() when needed.
func (c *Client) OnSync(fn func([]rov.VRP)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onSync = fn
}

// OnSerial registers a callback invoked with the new serial after every
// completed update — constant-cost, for latency measurement and
// convergence barriers over many clients.
func (c *Client) OnSerial(fn func(uint32)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onSerial = fn
}

// VRPs returns the current VRP set, in canonical order.
func (c *Client) VRPs() []rov.VRP {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]rov.VRP, 0, len(c.vrps))
	for v := range c.vrps {
		out = append(out, v)
	}
	rov.SortVRPs(out)
	return out
}

// Serial returns the last completed serial.
func (c *Client) Serial() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serial
}

// Synced reports whether at least one End of Data has been processed.
func (c *Client) Synced() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.synced
}

// Resumes reports reconnects that picked up via serial query (session
// resumption); Reloads reports full snapshot loads (first sync, cache
// resets).
func (c *Client) Resumes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resumes
}

// Reloads reports completed full snapshot reloads.
func (c *Client) Reloads() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reloads
}

// Run connects and synchronizes until ctx is canceled. A first-time client
// performs an initial reset query; a client with prior synced state resumes
// with a serial query instead. It then reacts to serial notifies with
// serial queries. Run returns the first fatal error, or ctx.Err() on
// cancellation; calling Run again reconnects and resumes.
func (c *Client) Run(ctx context.Context) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return fmt.Errorf("rtr: dial %s: %w", c.addr, err)
	}
	defer conn.Close()
	go func() {
		<-ctx.Done()
		conn.Close()
	}()

	// Each query the client sends is deadline-bounded so a stalled cache
	// cannot wedge the writer; reads stay unbounded by design — the client
	// legitimately idles until the cache pushes a notify.
	armWrite := func() error {
		return conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	}
	r := bufio.NewReader(conn)
	if err := armWrite(); err != nil {
		return fmt.Errorf("rtr: arming write deadline: %w", err)
	}
	c.mu.Lock()
	resume := c.synced
	serial, session := c.serial, c.session
	c.mu.Unlock()
	if resume {
		// Session resumption: ask only for what we missed. The server
		// replies with the missed deltas, or Cache Reset if our serial
		// aged out of its history window.
		if err := WritePDU(conn, &PDU{Type: TypeSerialQuery, Session: session, Serial: serial}); err != nil {
			return fmt.Errorf("rtr: resume serial query: %w", err)
		}
	} else {
		if err := WritePDU(conn, &PDU{Type: TypeResetQuery}); err != nil {
			return fmt.Errorf("rtr: reset query: %w", err)
		}
	}
	// staging holds the set being rebuilt during a full reload; incremental
	// responses apply in place (idempotently) instead of copying the set.
	var staging map[rov.VRP]bool
	inResponse := false
	fullReload := !resume

	for {
		p, err := ReadPDU(r)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("rtr: read: %w", err)
		}
		switch p.Type {
		case TypeCacheResponse:
			inResponse = true
			c.mu.Lock()
			c.session = p.Session
			c.mu.Unlock()
			if fullReload {
				staging = make(map[rov.VRP]bool)
			} else {
				staging = nil
			}

		case TypeIPv4Prefix, TypeIPv6Prefix:
			if !inResponse {
				return fmt.Errorf("rtr: prefix PDU outside cache response")
			}
			if staging != nil {
				if p.Flags&FlagAnnounce != 0 {
					staging[p.VRP] = true
				} else {
					delete(staging, p.VRP)
				}
			} else {
				c.mu.Lock()
				if p.Flags&FlagAnnounce != 0 {
					c.vrps[p.VRP] = true
				} else {
					delete(c.vrps, p.VRP)
				}
				c.mu.Unlock()
			}

		case TypeEndOfData:
			if !inResponse {
				return fmt.Errorf("rtr: end of data outside cache response")
			}
			inResponse = false
			c.mu.Lock()
			if staging != nil {
				c.vrps = staging
				c.reloads++
			} else if resume {
				c.resumes++
				resume = false // count the resumption once
			}
			fullReload = false
			c.serial = p.Serial
			c.synced = true
			cbSync := c.onSync
			cbSerial := c.onSerial
			c.mu.Unlock()
			if cbSerial != nil {
				cbSerial(p.Serial)
			}
			if cbSync != nil {
				cbSync(c.VRPs())
			}
			staging = nil

		case TypeSerialNotify:
			c.mu.Lock()
			serial, session := c.serial, c.session
			c.mu.Unlock()
			if p.Serial == serial {
				continue
			}
			if err := armWrite(); err != nil {
				return fmt.Errorf("rtr: arming write deadline: %w", err)
			}
			if err := WritePDU(conn, &PDU{Type: TypeSerialQuery, Session: session, Serial: serial}); err != nil {
				return fmt.Errorf("rtr: serial query: %w", err)
			}

		case TypeCacheReset:
			fullReload = true
			resume = false
			if err := armWrite(); err != nil {
				return fmt.Errorf("rtr: arming write deadline: %w", err)
			}
			if err := WritePDU(conn, &PDU{Type: TypeResetQuery}); err != nil {
				return fmt.Errorf("rtr: reset query: %w", err)
			}

		case TypeErrorReport:
			return fmt.Errorf("rtr: server error %d: %s", p.Session, p.ErrText)

		default:
			return fmt.Errorf("rtr: unexpected PDU type %d", p.Type)
		}
	}
}

// WaitSynced blocks until the client has completed an initial sync or the
// timeout elapses.
func (c *Client) WaitSynced(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.Synced() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return c.Synced()
}

// WaitSerial blocks until the client reaches at least the given serial.
func (c *Client) WaitSerial(serial uint32, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.Serial() >= serial {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return c.Serial() >= serial
}
