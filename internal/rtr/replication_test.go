package rtr

import (
	"bytes"
	"context"
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/ipres"
	"repro/internal/rov"
)

func TestReplicationFrameRoundTrip(t *testing.T) {
	vrps := []rov.VRP{
		vrp("63.160.0.0/12", 13, 1239),
		vrp("63.174.16.0/20", 20, 17054),
		vrp("2001:db8::/32", 48, 64500),
	}

	hello := ReplHello{Session: 7, Serial: 42, HaveState: true}
	buf := AppendHelloFrame(nil, hello)
	typ, payload, err := ReadReplicationFrame(bytes.NewReader(buf))
	if err != nil || typ != ReplTypeHello {
		t.Fatalf("hello frame: type=%d err=%v", typ, err)
	}
	gotHello, err := ParseReplicationHello(payload)
	if err != nil || gotHello != hello {
		t.Fatalf("hello round trip: %+v err=%v", gotHello, err)
	}

	buf = AppendSnapshotFrame(nil, 7, 42, vrps)
	typ, payload, err = ReadReplicationFrame(bytes.NewReader(buf))
	if err != nil || typ != ReplTypeSnapshot {
		t.Fatalf("snapshot frame: type=%d err=%v", typ, err)
	}
	session, serial, gotVRPs, err := ParseReplicationSnapshot(payload)
	if err != nil || session != 7 || serial != 42 || len(gotVRPs) != len(vrps) {
		t.Fatalf("snapshot round trip: session=%d serial=%d n=%d err=%v", session, serial, len(gotVRPs), err)
	}
	for i := range vrps {
		if gotVRPs[i] != vrps[i] {
			t.Errorf("snapshot VRP %d: got %v want %v", i, gotVRPs[i], vrps[i])
		}
	}

	buf = AppendDeltaFrame(nil, 43, vrps[:2], vrps[2:])
	typ, payload, err = ReadReplicationFrame(bytes.NewReader(buf))
	if err != nil || typ != ReplTypeDelta {
		t.Fatalf("delta frame: type=%d err=%v", typ, err)
	}
	dSerial, ann, wd, err := ParseReplicationDelta(payload)
	if err != nil || dSerial != 43 || len(ann) != 2 || len(wd) != 1 {
		t.Fatalf("delta round trip: serial=%d ann=%d wd=%d err=%v", dSerial, len(ann), len(wd), err)
	}
	if ann[0] != vrps[0] || ann[1] != vrps[1] || wd[0] != vrps[2] {
		t.Error("delta VRP content changed in round trip")
	}

	// Empty lists are legal (a serial bump whose records were all withdrawn
	// then re-announced elsewhere).
	buf = AppendDeltaFrame(nil, 44, nil, nil)
	_, payload, err = ReadReplicationFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if _, ann, wd, err := ParseReplicationDelta(payload); err != nil || len(ann) != 0 || len(wd) != 0 {
		t.Fatalf("empty delta: %d/%d err=%v", len(ann), len(wd), err)
	}
}

func TestReplicationDecoderLimits(t *testing.T) {
	// A declared payload length over the hard limit must be rejected before
	// any allocation.
	hdr := make([]byte, replHeaderLen)
	hdr[0], hdr[1], hdr[2] = replMagic, replVersion, ReplTypeSnapshot
	binary.BigEndian.PutUint32(hdr[4:], MaxReplicationPayload+1)
	if _, _, err := ReadReplicationFrame(bytes.NewReader(hdr)); err == nil {
		t.Error("oversized declared payload must fail")
	}

	// Bad magic / version.
	if _, _, err := ReadReplicationFrame(bytes.NewReader([]byte{'X', 1, 1, 0, 0, 0, 0, 0})); err == nil {
		t.Error("bad magic must fail")
	}
	if _, _, err := ReadReplicationFrame(bytes.NewReader([]byte{replMagic, 99, 1, 0, 0, 0, 0, 0})); err == nil {
		t.Error("bad version must fail")
	}

	// Snapshot whose record count exceeds the payload must fail without
	// allocating count VRPs.
	snap := make([]byte, 10)
	binary.BigEndian.PutUint32(snap[6:], 0xFFFFFFFF)
	if _, _, _, err := ParseReplicationSnapshot(snap); err == nil {
		t.Error("absurd record count must fail")
	}

	// Delta whose joint counts overflow the payload.
	del := make([]byte, 12)
	binary.BigEndian.PutUint32(del[4:], 0x80000000)
	binary.BigEndian.PutUint32(del[8:], 0x80000000)
	if _, _, _, err := ParseReplicationDelta(del); err == nil {
		t.Error("joint count overflow must fail")
	}

	// Bad record family.
	rec := AppendSnapshotFrame(nil, 1, 1, []rov.VRP{vrp("10.0.0.0/8", 8, 1)})
	rec[replHeaderLen+10] = 5 // family byte of the first record
	if _, _, _, err := ParseReplicationSnapshot(rec[replHeaderLen:]); err == nil {
		t.Error("bad family must fail")
	}

	// Trailing garbage after the declared records.
	trail := AppendSnapshotFrame(nil, 1, 1, nil)
	trail = append(trail, 0xAA)
	binary.BigEndian.PutUint32(trail[4:], uint32(len(trail)-replHeaderLen))
	if _, _, _, err := ParseReplicationSnapshot(trail[replHeaderLen:]); err == nil {
		t.Error("trailing bytes must fail")
	}

	// Max length below prefix bits.
	bad := AppendSnapshotFrame(nil, 1, 1, []rov.VRP{vrp("10.0.0.0/8", 8, 1)})
	bad[replHeaderLen+12] = 4 // max-length byte < prefix bits
	if _, _, _, err := ParseReplicationSnapshot(bad[replHeaderLen:]); err == nil {
		t.Error("max length below prefix bits must fail")
	}
}

// waitSerial polls until the cache reaches at least serial.
func waitSerial(t *testing.T, c *Cache, serial uint32, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if c.Serial() >= serial {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("cache stuck at serial %d, want >= %d", c.Serial(), serial)
}

func startReplication(t *testing.T, cache *Cache) (*ReplicationServer, string) {
	t.Helper()
	rs := NewReplicationServer(cache)
	addr, err := rs.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rs.Close() })
	return rs, addr
}

func TestReplicaFollowsPrimary(t *testing.T) {
	primary := NewCache(7)
	primary.SetVRPs([]rov.VRP{vrp("10.0.0.0/8", 8, 1)})
	_, addr := startReplication(t, primary)

	rep := NewReplica(addr, NewCache(0))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); _ = rep.Run(ctx) }()

	waitSerial(t, rep.Cache(), 1, 5*time.Second)
	if rep.Cache().Session() != 7 {
		t.Errorf("replica session = %d, want primary's 7", rep.Cache().Session())
	}

	// Live deltas flow through.
	primary.SetVRPs([]rov.VRP{vrp("10.0.0.0/8", 8, 1), vrp("2001:db8::/32", 48, 2)})
	primary.SetVRPs([]rov.VRP{vrp("2001:db8::/32", 48, 2)})
	waitSerial(t, rep.Cache(), 3, 5*time.Second)

	if primary.StateDigest() != rep.Cache().StateDigest() {
		t.Error("replica state digest diverged from primary")
	}
	if rep.Snapshots() != 1 || rep.Deltas() < 2 {
		t.Errorf("snapshots=%d deltas=%d, want 1 snapshot and >=2 deltas", rep.Snapshots(), rep.Deltas())
	}
	cancel()
	<-done
}

func TestReplicaResumesAfterReconnect(t *testing.T) {
	primary := NewCache(7)
	primary.SetVRPs([]rov.VRP{vrp("10.0.0.0/8", 8, 1)})
	rs, addr := startReplication(t, primary)

	rep := NewReplica(addr, NewCache(0))
	ctx, cancel := context.WithCancel(context.Background())
	go func() { _ = rep.FollowOnce(ctx) }()
	waitSerial(t, rep.Cache(), 1, 5*time.Second)
	cancel() // drop the connection

	// The primary moves on while the replica is away.
	primary.SetVRPs([]rov.VRP{vrp("10.0.0.0/8", 8, 1), vrp("10.1.0.0/16", 16, 2)})

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go func() { _ = rep.FollowOnce(ctx2) }()
	waitSerial(t, rep.Cache(), 2, 5*time.Second)

	if primary.StateDigest() != rep.Cache().StateDigest() {
		t.Error("replica state digest diverged after resume")
	}
	if rs.Resumptions() != 1 {
		t.Errorf("server resumptions = %d, want 1 (replica should resume, not re-snapshot)", rs.Resumptions())
	}
	if rep.Snapshots() != 1 {
		t.Errorf("replica snapshots = %d, want 1 (resume must not re-snapshot)", rep.Snapshots())
	}
}

func TestReplicaOutOfWindowGetsSnapshot(t *testing.T) {
	primary := NewCache(7)
	primary.SetHistoryLimits(1, 0, 0)
	primary.SetVRPs([]rov.VRP{vrp("10.0.0.0/8", 8, 1)})
	rs, addr := startReplication(t, primary)

	rep := NewReplica(addr, NewCache(0))
	ctx, cancel := context.WithCancel(context.Background())
	go func() { _ = rep.FollowOnce(ctx) }()
	waitSerial(t, rep.Cache(), 1, 5*time.Second)
	cancel()

	// Enough churn that serial 1 ages out of the 1-entry history window.
	for i := 0; i < 4; i++ {
		primary.SetVRPs([]rov.VRP{vrp("10.0.0.0/8", 8, ipres.ASN(10+i))})
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go func() { _ = rep.FollowOnce(ctx2) }()
	waitSerial(t, rep.Cache(), 5, 5*time.Second)

	if primary.StateDigest() != rep.Cache().StateDigest() {
		t.Error("replica state digest diverged after out-of-window re-snapshot")
	}
	if rs.Snapshots() < 2 {
		t.Errorf("server snapshots = %d, want >= 2 (out-of-window replica needs a fresh one)", rs.Snapshots())
	}
	if rs.Resumptions() != 0 {
		t.Errorf("server resumptions = %d, want 0", rs.Resumptions())
	}
}

// TestRouterResumesAgainstReplica is the multi-frontend deployment shape:
// a router that synced against one frontend reconnects to another frontend
// following the same primary, and resumes its session there — the replica
// mirrors session and serial, so the resumption is answered from the
// replica's own delta history.
func TestRouterResumesAgainstReplica(t *testing.T) {
	primary := NewCache(7)
	primary.SetVRPs([]rov.VRP{vrp("10.0.0.0/8", 8, 1)})
	_, replAddr := startReplication(t, primary)

	rep := NewReplica(replAddr, NewCache(0))
	repCtx, repCancel := context.WithCancel(context.Background())
	defer repCancel()
	go func() { _ = rep.Run(repCtx) }()
	waitSerial(t, rep.Cache(), 1, 5*time.Second)

	// The router first syncs against a frontend serving the PRIMARY cache.
	primaryAddr := startServer(t, primary)
	client := NewClient(primaryAddr)
	ctx, cancel := context.WithCancel(context.Background())
	go func() { _ = client.Run(ctx) }()
	if !client.WaitSerial(1, 5*time.Second) {
		t.Fatal("client never synced against primary")
	}
	cancel()

	// The primary moves on; the replica follows.
	primary.SetVRPs([]rov.VRP{vrp("10.0.0.0/8", 8, 1), vrp("10.2.0.0/16", 16, 3)})
	waitSerial(t, rep.Cache(), 2, 5*time.Second)

	// Reconnect the SAME client to a frontend serving the REPLICA cache.
	replicaFront := NewServer(rep.Cache())
	frontAddr, err := replicaFront.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = replicaFront.Close() })
	client.addr = frontAddr
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	go func() { _ = client.Run(ctx2) }()
	if !client.WaitSerial(2, 5*time.Second) {
		t.Fatal("client never caught up via replica frontend")
	}

	if replicaFront.Resumptions() != 1 {
		t.Errorf("replica frontend resumptions = %d, want 1", replicaFront.Resumptions())
	}
	if client.Resumes() != 1 {
		t.Errorf("client resumes = %d, want 1", client.Resumes())
	}
	// Canonical VRP equality against the primary: the gate that matters.
	want, _, _ := primary.snapshotVRPs()
	got := client.VRPs()
	if len(got) != len(want) {
		t.Fatalf("client has %d VRPs, primary has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("VRP %d: client %v, primary %v", i, got[i], want[i])
		}
	}
}
