// Package rtr implements the RPKI-to-Router protocol (RFC 6810): the
// channel over which a relying-party cache pushes validated ROA payloads
// (VRPs) to BGP routers. This is the last link in the paper's Figure 1
// dependency chain — whatever the RPKI says, it only affects BGP once it
// crosses this protocol into the router's origin-validation table.
//
// The implementation covers the full RFC 6810 state machine: reset and
// serial queries, incremental updates with a bounded delta history, session
// IDs, cache reset, serial notify, and error reports, over plain TCP.
package rtr

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/ipres"
	"repro/internal/rov"
)

// Version is the protocol version implemented (RFC 6810).
const Version = 0

// PDU type codes per RFC 6810 section 5.
const (
	TypeSerialNotify  = 0
	TypeSerialQuery   = 1
	TypeResetQuery    = 2
	TypeCacheResponse = 3
	TypeIPv4Prefix    = 4
	TypeIPv6Prefix    = 6
	TypeEndOfData     = 7
	TypeCacheReset    = 8
	TypeErrorReport   = 10
)

// Error codes per RFC 6810 section 10.
const (
	ErrCorruptData        = 0
	ErrInternal           = 1
	ErrNoDataAvailable    = 2
	ErrInvalidRequest     = 3
	ErrUnsupportedVersion = 4
	ErrUnsupportedPDU     = 5
	ErrUnknownWithdrawal  = 6
	ErrDuplicateAnnounce  = 7
)

// Prefix PDU flags.
const (
	// FlagAnnounce marks an announced VRP; its absence marks a withdrawal.
	FlagAnnounce = 1
)

// PDU is one protocol data unit.
type PDU struct {
	Type    uint8
	Session uint16 // session ID (or error code for ErrorReport)
	Serial  uint32 // SerialNotify, SerialQuery, EndOfData
	Flags   uint8  // prefix PDUs
	VRP     rov.VRP
	ErrText string // ErrorReport
}

const headerLen = 8

// Marshal encodes the PDU.
//
//taint:sink RTR frames routers act on
func (p *PDU) Marshal() ([]byte, error) {
	switch p.Type {
	case TypeSerialNotify, TypeSerialQuery, TypeEndOfData:
		buf := make([]byte, headerLen+4)
		putHeader(buf, p.Type, p.Session, uint32(len(buf)))
		binary.BigEndian.PutUint32(buf[headerLen:], p.Serial)
		return buf, nil
	case TypeResetQuery, TypeCacheResponse, TypeCacheReset:
		buf := make([]byte, headerLen)
		putHeader(buf, p.Type, p.Session, headerLen)
		return buf, nil
	case TypeIPv4Prefix:
		if p.VRP.Prefix.Family() != ipres.IPv4 {
			return nil, fmt.Errorf("rtr: IPv4 prefix PDU with %v prefix", p.VRP.Prefix.Family())
		}
		buf := make([]byte, headerLen+12)
		putHeader(buf, p.Type, 0, uint32(len(buf)))
		buf[headerLen] = p.Flags
		buf[headerLen+1] = uint8(p.VRP.Prefix.Bits())
		buf[headerLen+2] = uint8(p.VRP.MaxLength)
		copy(buf[headerLen+4:], p.VRP.Prefix.Addr().Bytes())
		binary.BigEndian.PutUint32(buf[headerLen+8:], uint32(p.VRP.ASN))
		return buf, nil
	case TypeIPv6Prefix:
		if p.VRP.Prefix.Family() != ipres.IPv6 {
			return nil, fmt.Errorf("rtr: IPv6 prefix PDU with %v prefix", p.VRP.Prefix.Family())
		}
		buf := make([]byte, headerLen+24)
		putHeader(buf, p.Type, 0, uint32(len(buf)))
		buf[headerLen] = p.Flags
		buf[headerLen+1] = uint8(p.VRP.Prefix.Bits())
		buf[headerLen+2] = uint8(p.VRP.MaxLength)
		copy(buf[headerLen+4:], p.VRP.Prefix.Addr().Bytes())
		binary.BigEndian.PutUint32(buf[headerLen+20:], uint32(p.VRP.ASN))
		return buf, nil
	case TypeErrorReport:
		text := []byte(p.ErrText)
		// Encapsulated PDU omitted (length 0) + error text.
		buf := make([]byte, headerLen+4+4+len(text))
		putHeader(buf, p.Type, p.Session, uint32(len(buf)))
		binary.BigEndian.PutUint32(buf[headerLen:], 0)
		binary.BigEndian.PutUint32(buf[headerLen+4:], uint32(len(text)))
		copy(buf[headerLen+8:], text)
		return buf, nil
	}
	return nil, fmt.Errorf("rtr: cannot marshal PDU type %d", p.Type)
}

func putHeader(buf []byte, typ uint8, session uint16, length uint32) {
	buf[0] = Version
	buf[1] = typ
	binary.BigEndian.PutUint16(buf[2:], session)
	binary.BigEndian.PutUint32(buf[4:], length)
}

// maxPDULen bounds a single PDU read (error text included).
const maxPDULen = 64 << 10

// ReadPDU reads and decodes one PDU from r.
//
//taint:source bytes a router or spoofed peer sends on the RTR socket
func ReadPDU(r io.Reader) (*PDU, error) {
	var header [headerLen]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, err
	}
	if header[0] != Version {
		return nil, fmt.Errorf("rtr: unsupported version %d", header[0])
	}
	length := binary.BigEndian.Uint32(header[4:])
	if length < headerLen || length > maxPDULen {
		return nil, fmt.Errorf("rtr: PDU length %d out of range", length)
	}
	body := make([]byte, length-headerLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	p := &PDU{Type: header[1], Session: binary.BigEndian.Uint16(header[2:])}
	switch p.Type {
	case TypeSerialNotify, TypeSerialQuery, TypeEndOfData:
		if len(body) != 4 {
			return nil, fmt.Errorf("rtr: serial PDU body %d bytes", len(body))
		}
		p.Serial = binary.BigEndian.Uint32(body)
	case TypeResetQuery, TypeCacheResponse, TypeCacheReset:
		if len(body) != 0 {
			return nil, fmt.Errorf("rtr: unexpected body for type %d", p.Type)
		}
	case TypeIPv4Prefix:
		if len(body) != 12 {
			return nil, fmt.Errorf("rtr: IPv4 prefix body %d bytes", len(body))
		}
		vrp, flags, err := decodePrefixBody(ipres.IPv4, body)
		if err != nil {
			return nil, err
		}
		p.VRP, p.Flags = vrp, flags
	case TypeIPv6Prefix:
		if len(body) != 24 {
			return nil, fmt.Errorf("rtr: IPv6 prefix body %d bytes", len(body))
		}
		vrp, flags, err := decodePrefixBody(ipres.IPv6, body)
		if err != nil {
			return nil, err
		}
		p.VRP, p.Flags = vrp, flags
	case TypeErrorReport:
		if len(body) < 8 {
			return nil, fmt.Errorf("rtr: short error report")
		}
		// All length arithmetic in uint64: the declared encapsulated-PDU
		// length is attacker-controlled, and summing it in uint32 wraps
		// (encLen near 2^32 passed the old bounds check and then sliced far
		// past the body — a remote panic found by FuzzRTRRead).
		encLen := uint64(binary.BigEndian.Uint32(body))
		if 4+encLen+4 > uint64(len(body)) {
			return nil, fmt.Errorf("rtr: bad error report lengths")
		}
		textOff := 4 + encLen
		textLen := uint64(binary.BigEndian.Uint32(body[textOff:]))
		if textOff+4+textLen > uint64(len(body)) {
			return nil, fmt.Errorf("rtr: bad error text length")
		}
		p.ErrText = string(body[textOff+4 : textOff+4+textLen])
	default:
		return nil, fmt.Errorf("rtr: unsupported PDU type %d", p.Type)
	}
	return p, nil
}

func decodePrefixBody(fam ipres.Family, body []byte) (rov.VRP, uint8, error) {
	flags := body[0]
	bits := int(body[1])
	maxLen := int(body[2])
	addrLen := fam.Width() / 8
	var addr ipres.Addr
	if fam == ipres.IPv4 {
		var b4 [4]byte
		copy(b4[:], body[4:4+addrLen])
		addr = ipres.AddrFrom4(b4)
	} else {
		var b16 [16]byte
		copy(b16[:], body[4:4+addrLen])
		addr = ipres.AddrFrom16(b16)
	}
	asn := ipres.ASN(binary.BigEndian.Uint32(body[4+addrLen:]))
	prefix, err := ipres.PrefixFrom(addr, bits)
	if err != nil {
		return rov.VRP{}, 0, fmt.Errorf("rtr: bad prefix: %w", err)
	}
	if maxLen < bits || maxLen > fam.Width() {
		return rov.VRP{}, 0, fmt.Errorf("rtr: max length %d out of range", maxLen)
	}
	return rov.VRP{Prefix: prefix, MaxLength: maxLen, ASN: asn}, flags, nil
}

// WritePDU marshals and writes one PDU.
func WritePDU(w io.Writer, p *PDU) error {
	buf, err := p.Marshal()
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}
