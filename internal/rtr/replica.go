package rtr

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Replica follows a primary validator's cache over the replication stream
// and mirrors it into a local Cache — session, serial, and canonical VRP
// set byte-identical to the primary — so a stateless RTR frontend can serve
// routers (and accept their session resumptions) without running a
// validator of its own.
type Replica struct {
	addr  string
	cache *Cache

	// primed flips after the first snapshot or delta lands; a primed
	// replica reconnects with HaveState and resumes from its serial.
	primed atomic.Bool
	// lastSeen is the newest serial observed on the wire (possibly ahead of
	// the cache while a burst is being applied); lag = lastSeen − applied.
	lastSeen  atomic.Uint32
	deltas    atomic.Uint64
	snapshots atomic.Uint64
	reconns   atomic.Uint64
}

// NewReplica creates a replica of the primary at addr, mirroring into
// cache. The cache's own session ID is irrelevant: the first snapshot
// adopts the primary's.
func NewReplica(addr string, cache *Cache) *Replica {
	return &Replica{addr: addr, cache: cache}
}

// Cache returns the mirrored cache (serve RTR from it).
func (r *Replica) Cache() *Cache { return r.cache }

// Lag reports how many serials the mirrored cache trails the newest serial
// seen on the wire (0 when idle or fully applied).
func (r *Replica) Lag() uint32 {
	seen := r.lastSeen.Load()
	applied := r.cache.Serial()
	if d := seen - applied; d < 1<<31 && d > 0 {
		return d
	}
	return 0
}

// Deltas reports applied delta frames; Snapshots reports applied snapshot
// frames; Reconnects reports connection attempts after the first.
func (r *Replica) Deltas() uint64     { return r.deltas.Load() }
func (r *Replica) Snapshots() uint64  { return r.snapshots.Load() }
func (r *Replica) Reconnects() uint64 { return r.reconns.Load() }

// Instrument registers the replica's metrics on the hub (the mirrored
// cache's Instrument is separate). Call once, before Run.
func (r *Replica) Instrument(hub *obs.Hub) {
	reg := hub.Registry()
	if r == nil || reg == nil {
		return
	}
	reg.GaugeFunc("rpki_rtr_replica_lag_serials",
		"Serials the replica's mirrored cache trails the primary stream.",
		func() float64 { return float64(r.Lag()) })
	reg.CounterFunc("rpki_rtr_replica_deltas_total",
		"Delta frames applied from the primary.",
		func() float64 { return float64(r.Deltas()) })
	reg.CounterFunc("rpki_rtr_replica_snapshots_total",
		"Snapshot frames applied from the primary.",
		func() float64 { return float64(r.Snapshots()) })
	reg.CounterFunc("rpki_rtr_replica_reconnects_total",
		"Replication reconnect attempts after the initial connection.",
		func() float64 { return float64(r.Reconnects()) })
}

// Run follows the primary until ctx is canceled, reconnecting with backoff
// on stream errors. A reconnect resumes from the replica's serial when the
// primary still retains the window; otherwise the primary streams a fresh
// snapshot. Run returns ctx.Err() on cancellation.
func (r *Replica) Run(ctx context.Context) error {
	first := true
	backoff := 100 * time.Millisecond
	for {
		if !first {
			r.reconns.Add(1)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			if backoff < 5*time.Second {
				backoff *= 2
			}
		}
		first = false
		err := r.follow(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		_ = err // stream error: reconnect and resync
	}
}

// FollowOnce runs a single connection lifetime (tests exercise resume and
// gap handling through it).
func (r *Replica) FollowOnce(ctx context.Context) error { return r.follow(ctx) }

func (r *Replica) follow(ctx context.Context) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", r.addr)
	if err != nil {
		return fmt.Errorf("rtr: replica dial %s: %w", r.addr, err)
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	if err := conn.SetWriteDeadline(time.Now().Add(writeTimeout)); err != nil {
		return fmt.Errorf("rtr: replica arming write deadline: %w", err)
	}
	hello := ReplHello{HaveState: r.primed.Load()}
	if hello.HaveState {
		_, hello.Serial, hello.Session = r.cache.snapshotVRPs()
	}
	if _, err := conn.Write(AppendHelloFrame(nil, hello)); err != nil {
		return fmt.Errorf("rtr: replica hello: %w", err)
	}

	// Reads stay unbounded by design: a replica legitimately idles until
	// the primary pushes the next delta.
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		typ, payload, err := ReadReplicationFrame(br)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("rtr: replica read: %w", err)
		}
		switch typ {
		case ReplTypeSnapshot:
			session, serial, vrps, err := ParseReplicationSnapshot(payload)
			if err != nil {
				return err
			}
			r.lastSeen.Store(serial)
			r.cache.applySnapshot(session, serial, vrps)
			r.primed.Store(true)
			r.snapshots.Add(1)
		case ReplTypeDelta:
			serial, announced, withdrawn, err := ParseReplicationDelta(payload)
			if err != nil {
				return err
			}
			r.lastSeen.Store(serial)
			if !r.cache.applyDelta(serial, announced, withdrawn) {
				// Serial gap: this replica missed a frame. Reconnect; the
				// primary will resume or re-snapshot as its window allows.
				return fmt.Errorf("rtr: replica serial gap at %d (have %d)", serial, r.cache.Serial())
			}
			r.primed.Store(true)
			r.deltas.Add(1)
		default:
			return fmt.Errorf("rtr: replica: unexpected frame type %d", typ)
		}
	}
}
