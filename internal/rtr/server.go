package rtr

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/rov"
)

// delta records one cache update: the announce/withdraw sets plus their
// precomputed wire encoding, shared read-only by every connection that
// replays this delta.
type delta struct {
	serial    uint32
	announced []rov.VRP
	withdrawn []rov.VRP
	// frame is the delta's prefix PDUs (announces then withdraws),
	// serialized once at SetVRPs time. Immutable after creation.
	frame []byte
	// createdAt stamps when the delta entered the cache, anchoring the
	// delta-propagation latency histogram. Immutable after creation.
	createdAt time.Time
}

func (d *delta) vrpCount() int { return len(d.announced) + len(d.withdrawn) }

// Cache is the server-side VRP database with serial-numbered history.
//
// Serving is zero-copy: each serial's full snapshot and each delta carry a
// precomputed, immutable frame of serialized prefix PDUs, built once per
// update and written verbatim to every client — N routers asking for the
// same data cost N writes, not N serializations. The delta history is
// bounded by entry count, total VRP count, and total frame bytes, so a
// long-lived server's memory stays flat no matter how many updates it has
// seen; a client whose serial predates the retained window gets a Cache
// Reset and reloads the snapshot.
type Cache struct {
	mu sync.Mutex
	// Session and serial state. guarded by mu.
	session uint16
	serial  uint32
	// vrps is the current set in canonical order (rov.SortVRPs), duplicate-
	// free; snapFrame is its precomputed wire encoding. Both are replaced,
	// never mutated, so connections may hold the retrieved slices outside
	// the lock; the fields themselves are guarded by mu.
	vrps      []rov.VRP
	snapFrame []byte
	// Delta history and its size accounting. guarded by mu.
	history   []delta
	histVRPs  int
	histBytes int
	// History bounds: entries, total VRPs, total frame bytes. guarded by mu.
	maxHist      int
	maxHistVRPs  int
	maxHistBytes int
	// subs maps the notify channel of every live connection to its peer
	// address (for per-client metrics). guarded by mu.
	subs map[chan uint32]string
	// met holds metric handles registered by Instrument (nil when
	// uninstrumented). guarded by mu.
	met *rtrMetrics
}

// Default history bounds: plenty for steady-state polling, small enough
// that a churn storm cannot balloon a long-lived server.
const (
	defaultMaxHist      = 64
	defaultMaxHistVRPs  = 1 << 16
	defaultMaxHistBytes = 1 << 20
)

// NewCache creates an empty cache with the given session ID.
func NewCache(session uint16) *Cache {
	return &Cache{
		session:      session,
		maxHist:      defaultMaxHist,
		maxHistVRPs:  defaultMaxHistVRPs,
		maxHistBytes: defaultMaxHistBytes,
		subs:         make(map[chan uint32]string),
	}
}

// SetHistoryLimits bounds the retained delta history by entry count, total
// VRP count, and total precomputed frame bytes. Arguments <= 0 keep the
// current value. Clients older than the retained window fall back to a full
// snapshot reload via Cache Reset.
func (c *Cache) SetHistoryLimits(entries, vrps, bytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if entries > 0 {
		c.maxHist = entries
	}
	if vrps > 0 {
		c.maxHistVRPs = vrps
	}
	if bytes > 0 {
		c.maxHistBytes = bytes
	}
	c.evictLocked()
}

// HistoryStats reports the retained history's size (for observability and
// tests of the memory bound).
func (c *Cache) HistoryStats() (entries, vrps, bytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.history), c.histVRPs, c.histBytes
}

// Serial returns the current serial number.
func (c *Cache) Serial() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serial
}

// Len returns the number of VRPs.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.vrps)
}

// encodeVRPs appends the prefix PDUs for vrps (with the given flags) to buf.
func encodeVRPs(buf []byte, vrps []rov.VRP, flags uint8) []byte {
	for _, v := range vrps {
		typ := uint8(TypeIPv4Prefix)
		if v.Prefix.Family().Width() == 128 {
			typ = TypeIPv6Prefix
		}
		b, err := (&PDU{Type: typ, Flags: flags, VRP: v}).Marshal()
		if err != nil {
			continue // unencodable VRP (cannot happen for valid prefixes)
		}
		buf = append(buf, b...)
	}
	return buf
}

// SetVRPs replaces the cache contents. The input is normalized (copied,
// sorted canonically, deduplicated), diffed against the previous state in
// one linear merge, and — only if anything changed — the serial is bumped,
// the delta and snapshot frames are serialized once, and subscribed
// connections are notified. An unchanged set is a true no-op: no
// allocation, no serial bump, no notification, which is what makes the
// relying party's steady-state polling loop end in silence here.
func (c *Cache) SetVRPs(vrps []rov.VRP) {
	next := make([]rov.VRP, 0, len(vrps))
	for _, v := range vrps {
		if v.Prefix.IsValid() {
			next = append(next, v)
		}
	}
	rov.SortVRPs(next)
	// Deduplicate (canonical order makes duplicates adjacent).
	dedup := next[:0]
	for i, v := range next {
		if i == 0 || v.Compare(next[i-1]) != 0 {
			dedup = append(dedup, v)
		}
	}
	next = dedup

	c.mu.Lock()
	announced, withdrawn := rov.DiffVRPs(c.vrps, next)
	if len(announced) == 0 && len(withdrawn) == 0 {
		c.mu.Unlock()
		return
	}
	c.serial++
	d := delta{serial: c.serial, announced: announced, withdrawn: withdrawn, createdAt: time.Now()}
	if c.met != nil {
		c.met.updates.Inc()
	}
	frame := make([]byte, 0, 20*d.vrpCount())
	frame = encodeVRPs(frame, announced, FlagAnnounce)
	frame = encodeVRPs(frame, withdrawn, 0)
	d.frame = frame
	c.vrps = next
	c.snapFrame = encodeVRPs(make([]byte, 0, 20*len(next)), next, FlagAnnounce)
	c.history = append(c.history, d)
	c.histVRPs += d.vrpCount()
	c.histBytes += len(d.frame)
	c.evictLocked()
	serial := c.serial
	subs := make([]chan uint32, 0, len(c.subs))
	for ch := range c.subs {
		subs = append(subs, ch)
	}
	c.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- serial:
		default: // subscriber busy; it will catch up on its next query
		}
	}
}

// evictLocked drops the oldest deltas until the history fits every bound.
// Callers hold c.mu.
func (c *Cache) evictLocked() {
	for len(c.history) > 0 &&
		(len(c.history) > c.maxHist || c.histVRPs > c.maxHistVRPs || c.histBytes > c.maxHistBytes) {
		d := &c.history[0]
		c.histVRPs -= d.vrpCount()
		c.histBytes -= len(d.frame)
		c.history = c.history[1:]
	}
}

// snapshotFrame returns the current serial, session, and the shared
// serialized snapshot frame. The frame is immutable; callers write it
// as-is.
func (c *Cache) snapshotFrame() (frame []byte, serial uint32, session uint16) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapFrame, c.serial, c.session
}

// deltaFrames returns the shared serialized frames of every delta after
// serial, oldest first, or ok=false if that serial has aged out of the
// history window. The frames are immutable; callers write them as-is.
func (c *Cache) deltaFrames(serial uint32) (frames [][]byte, current uint32, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if serial == c.serial {
		return nil, c.serial, true
	}
	found := false
	for i := range c.history {
		d := &c.history[i]
		if found || d.serial == serial+1 {
			found = true
			frames = append(frames, d.frame)
		}
	}
	if !found {
		return nil, c.serial, false
	}
	return frames, c.serial, true
}

// deltasSince returns the concatenated deltas after serial, or ok=false if
// that serial has aged out of the history window.
func (c *Cache) deltasSince(serial uint32) (announced, withdrawn []rov.VRP, current uint32, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if serial == c.serial {
		return nil, nil, c.serial, true
	}
	found := false
	for _, d := range c.history {
		if found || d.serial == serial+1 {
			found = true
			announced = append(announced, d.announced...)
			withdrawn = append(withdrawn, d.withdrawn...)
		}
	}
	// The requested serial must be exactly one before the first delta we
	// replayed; otherwise the client is out of window.
	if !found {
		return nil, nil, c.serial, false
	}
	return announced, withdrawn, c.serial, true
}

func (c *Cache) subscribe(peer string) chan uint32 {
	ch := make(chan uint32, 4)
	c.mu.Lock()
	c.subs[ch] = peer
	c.mu.Unlock()
	return ch
}

func (c *Cache) unsubscribe(ch chan uint32) {
	c.mu.Lock()
	delete(c.subs, ch)
	c.mu.Unlock()
}

// Server serves the RTR protocol for one cache.
type Server struct {
	cache  *Cache
	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

// NewServer creates an RTR server over cache.
func NewServer(cache *Cache) *Server {
	return &Server{cache: cache, closed: make(chan struct{})}
}

// Listen binds addr and starts serving; it returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rtr: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				if errors.Is(err, net.ErrClosed) {
					return
				}
				select {
				case <-s.closed:
					return
				default:
					continue
				}
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.handle(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the server.
func (s *Server) Close() error {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	notify := s.cache.subscribe(conn.RemoteAddr().String())
	defer s.cache.unsubscribe(notify)

	// Reader goroutine feeds queries; this goroutine multiplexes queries
	// and notify events.
	queries := make(chan *PDU)
	readErr := make(chan error, 1)
	go func() {
		r := bufio.NewReader(conn)
		for {
			p, err := ReadPDU(r)
			if err != nil {
				readErr <- err
				return
			}
			queries <- p
		}
	}()

	w := bufio.NewWriter(conn)
	for {
		select {
		case <-s.closed:
			return
		case <-readErr:
			return
		case serial := <-notify:
			// Write deadline per response batch: a router that stops
			// draining its socket must not pin this goroutine (and its
			// cache subscription) forever — the server-side slow-loris.
			if conn.SetWriteDeadline(time.Now().Add(writeTimeout)) != nil {
				return
			}
			_ = WritePDU(w, &PDU{Type: TypeSerialNotify, Session: s.sessionID(), Serial: serial})
			if w.Flush() != nil {
				return
			}
			// The notify reached the client's socket: one propagation
			// latency sample for this delta.
			s.cache.observePropagation(serial)
		case q := <-queries:
			if conn.SetWriteDeadline(time.Now().Add(writeTimeout)) != nil {
				return
			}
			keep := s.answer(w, q)
			if w.Flush() != nil || !keep {
				return
			}
		}
	}
}

// writeTimeout bounds one response batch (snapshot replay included) to a
// client; RTR reads stay unbounded by design — clients legitimately idle
// between serial queries and are pushed notifies instead.
const writeTimeout = 30 * time.Second

func (s *Server) sessionID() uint16 {
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	return s.cache.session
}

// answer responds to one query; false means drop the connection. The hot
// path writes the cache's precomputed shared frames verbatim — no VRP is
// re-serialized per client.
func (s *Server) answer(w *bufio.Writer, q *PDU) bool {
	switch q.Type {
	case TypeResetQuery:
		frame, serial, session := s.cache.snapshotFrame()
		if err := WritePDU(w, &PDU{Type: TypeCacheResponse, Session: session}); err != nil {
			return false
		}
		if _, err := w.Write(frame); err != nil {
			return false
		}
		return WritePDU(w, &PDU{Type: TypeEndOfData, Session: session, Serial: serial}) == nil

	case TypeSerialQuery:
		session := s.sessionID()
		if q.Session != session {
			// Session mismatch: tell the client to reset.
			return WritePDU(w, &PDU{Type: TypeCacheReset}) == nil
		}
		frames, serial, ok := s.cache.deltaFrames(q.Serial)
		if !ok {
			// The queried serial predates the retained history window:
			// the client must reload the full snapshot.
			return WritePDU(w, &PDU{Type: TypeCacheReset}) == nil
		}
		if err := WritePDU(w, &PDU{Type: TypeCacheResponse, Session: session}); err != nil {
			return false
		}
		for _, frame := range frames {
			if _, err := w.Write(frame); err != nil {
				return false
			}
		}
		return WritePDU(w, &PDU{Type: TypeEndOfData, Session: session, Serial: serial}) == nil

	case TypeErrorReport:
		return false

	default:
		_ = WritePDU(w, &PDU{Type: TypeErrorReport, Session: ErrUnsupportedPDU,
			ErrText: fmt.Sprintf("unsupported PDU type %d", q.Type)})
		return false
	}
}
