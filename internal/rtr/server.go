package rtr

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/rov"
)

// delta records one cache update as announce/withdraw sets, for serving
// incremental serial queries.
type delta struct {
	serial    uint32
	announced []rov.VRP
	withdrawn []rov.VRP
}

// Cache is the server-side VRP database with serial-numbered history.
type Cache struct {
	mu      sync.Mutex
	session uint16
	serial  uint32
	vrps    map[rov.VRP]bool
	history []delta
	maxHist int
	subs    map[chan uint32]bool
}

// NewCache creates an empty cache with the given session ID.
func NewCache(session uint16) *Cache {
	return &Cache{
		session: session,
		vrps:    make(map[rov.VRP]bool),
		maxHist: 64,
		subs:    make(map[chan uint32]bool),
	}
}

// Serial returns the current serial number.
func (c *Cache) Serial() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serial
}

// Len returns the number of VRPs.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.vrps)
}

// SetVRPs replaces the cache contents, computing the delta against the
// previous state, bumping the serial, and notifying subscribed connections.
func (c *Cache) SetVRPs(vrps []rov.VRP) {
	c.mu.Lock()
	next := make(map[rov.VRP]bool, len(vrps))
	for _, v := range vrps {
		next[v] = true
	}
	var d delta
	for v := range next {
		if !c.vrps[v] {
			d.announced = append(d.announced, v)
		}
	}
	for v := range c.vrps {
		if !next[v] {
			d.withdrawn = append(d.withdrawn, v)
		}
	}
	if len(d.announced) == 0 && len(d.withdrawn) == 0 {
		c.mu.Unlock()
		return
	}
	c.serial++
	d.serial = c.serial
	c.vrps = next
	c.history = append(c.history, d)
	if len(c.history) > c.maxHist {
		c.history = c.history[len(c.history)-c.maxHist:]
	}
	serial := c.serial
	subs := make([]chan uint32, 0, len(c.subs))
	for ch := range c.subs {
		subs = append(subs, ch)
	}
	c.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- serial:
		default: // subscriber busy; it will catch up on its next query
		}
	}
}

// snapshot returns the full VRP list and current serial.
func (c *Cache) snapshot() ([]rov.VRP, uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]rov.VRP, 0, len(c.vrps))
	for v := range c.vrps {
		out = append(out, v)
	}
	return out, c.serial
}

// deltasSince returns the concatenated deltas after serial, or ok=false if
// that serial has aged out of the history window.
func (c *Cache) deltasSince(serial uint32) (announced, withdrawn []rov.VRP, current uint32, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if serial == c.serial {
		return nil, nil, c.serial, true
	}
	found := false
	for _, d := range c.history {
		if found || d.serial == serial+1 {
			found = true
			announced = append(announced, d.announced...)
			withdrawn = append(withdrawn, d.withdrawn...)
		}
	}
	// The requested serial must be exactly one before the first delta we
	// replayed; otherwise the client is out of window.
	if !found {
		return nil, nil, c.serial, false
	}
	return announced, withdrawn, c.serial, true
}

func (c *Cache) subscribe() chan uint32 {
	ch := make(chan uint32, 4)
	c.mu.Lock()
	c.subs[ch] = true
	c.mu.Unlock()
	return ch
}

func (c *Cache) unsubscribe(ch chan uint32) {
	c.mu.Lock()
	delete(c.subs, ch)
	c.mu.Unlock()
}

// Server serves the RTR protocol for one cache.
type Server struct {
	cache  *Cache
	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

// NewServer creates an RTR server over cache.
func NewServer(cache *Cache) *Server {
	return &Server{cache: cache, closed: make(chan struct{})}
}

// Listen binds addr and starts serving; it returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rtr: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				if errors.Is(err, net.ErrClosed) {
					return
				}
				select {
				case <-s.closed:
					return
				default:
					continue
				}
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.handle(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the server.
func (s *Server) Close() error {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	notify := s.cache.subscribe()
	defer s.cache.unsubscribe(notify)

	// Reader goroutine feeds queries; this goroutine multiplexes queries
	// and notify events.
	queries := make(chan *PDU)
	readErr := make(chan error, 1)
	go func() {
		r := bufio.NewReader(conn)
		for {
			p, err := ReadPDU(r)
			if err != nil {
				readErr <- err
				return
			}
			queries <- p
		}
	}()

	w := bufio.NewWriter(conn)
	for {
		select {
		case <-s.closed:
			return
		case <-readErr:
			return
		case serial := <-notify:
			_ = WritePDU(w, &PDU{Type: TypeSerialNotify, Session: s.sessionID(), Serial: serial})
			if w.Flush() != nil {
				return
			}
		case q := <-queries:
			keep := s.answer(w, q)
			if w.Flush() != nil || !keep {
				return
			}
		}
	}
}

func (s *Server) sessionID() uint16 {
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	return s.cache.session
}

// answer responds to one query; false means drop the connection.
func (s *Server) answer(w *bufio.Writer, q *PDU) bool {
	_ = w
	switch q.Type {
	case TypeResetQuery:
		vrps, serial := s.cache.snapshot()
		if err := WritePDU(w, &PDU{Type: TypeCacheResponse, Session: s.sessionID()}); err != nil {
			return false
		}
		for _, v := range vrps {
			if !s.writePrefix(w, v, FlagAnnounce) {
				return false
			}
		}
		return WritePDU(w, &PDU{Type: TypeEndOfData, Session: s.sessionID(), Serial: serial}) == nil

	case TypeSerialQuery:
		if q.Session != s.sessionID() {
			// Session mismatch: tell the client to reset.
			return WritePDU(w, &PDU{Type: TypeCacheReset}) == nil
		}
		announced, withdrawn, serial, ok := s.cache.deltasSince(q.Serial)
		if !ok {
			return WritePDU(w, &PDU{Type: TypeCacheReset}) == nil
		}
		if err := WritePDU(w, &PDU{Type: TypeCacheResponse, Session: s.sessionID()}); err != nil {
			return false
		}
		for _, v := range announced {
			if !s.writePrefix(w, v, FlagAnnounce) {
				return false
			}
		}
		for _, v := range withdrawn {
			if !s.writePrefix(w, v, 0) {
				return false
			}
		}
		return WritePDU(w, &PDU{Type: TypeEndOfData, Session: s.sessionID(), Serial: serial}) == nil

	case TypeErrorReport:
		return false

	default:
		_ = WritePDU(w, &PDU{Type: TypeErrorReport, Session: ErrUnsupportedPDU,
			ErrText: fmt.Sprintf("unsupported PDU type %d", q.Type)})
		return false
	}
}

func (s *Server) writePrefix(w *bufio.Writer, v rov.VRP, flags uint8) bool {
	typ := uint8(TypeIPv4Prefix)
	if v.Prefix.Family().Width() == 128 {
		typ = TypeIPv6Prefix
	}
	return WritePDU(w, &PDU{Type: typ, Flags: flags, VRP: v}) == nil
}

// SetDeadlineAfter is a small helper for tests.
func SetDeadlineAfter(conn net.Conn, d time.Duration) { _ = conn.SetDeadline(time.Now().Add(d)) }
