package rtr

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// writeTimeout is the default bound on one response batch (snapshot replay
// included) to a client; RTR reads stay unbounded by design — clients
// legitimately idle between serial queries and are pushed notifies instead.
const writeTimeout = 30 * time.Second

// defaultSendQueue is the default per-connection response-queue capacity.
// Notifies are coalesced outside this queue, so the queue only ever holds
// query responses: a client with this many answers in flight is not
// reading, and the next answer evicts it.
const defaultSendQueue = 32

// Eviction reasons, recorded per eviction in the metrics.
const (
	evictWriteStall = "write-stall"
	evictQueueFull  = "queue-full"
)

// Server serves the RTR protocol for one cache.
//
// Each connection runs one reader and one writer goroutine around a
// fixed-size send queue. The cache's notify path never blocks on a
// connection (serial notifies coalesce into a 1-slot doorbell), and the
// writer never blocks the cache: a router that stops draining its socket
// either stalls a write past WriteTimeout or fills its send queue, and is
// then evicted with a best-effort Error PDU instead of back-pressuring the
// fan-out — the distribution-layer analogue of the relying party's
// slow-loris defenses.
type Server struct {
	cache  *Cache
	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}

	// MaxClients caps concurrent connections (0: unlimited). A connection
	// over the cap is answered with an Error PDU and closed. Set before
	// Listen.
	MaxClients int
	// SendQueue is the per-connection response-queue capacity (0: default
	// 32). Set before Listen.
	SendQueue int
	// WriteTimeout bounds one write batch to a client (0: default 30s).
	// Set before Listen.
	WriteTimeout time.Duration
	// WriteBuffer, when > 0, sets each accepted connection's kernel send
	// buffer. At fleet scale the kernel's default per-socket buffer times
	// 10k sockets is real memory; bounding it also makes a stalled
	// consumer hit WriteTimeout (and be evicted) instead of hiding behind
	// megabytes of kernel buffering. Set before Listen.
	WriteBuffer int

	active      atomic.Int64
	evictions   atomic.Uint64
	rejections  atomic.Uint64
	resumptions atomic.Uint64
	cacheResets atomic.Uint64
}

// NewServer creates an RTR server over cache.
func NewServer(cache *Cache) *Server {
	return &Server{cache: cache, closed: make(chan struct{})}
}

// Evictions reports connections dropped for slow consumption (write stall
// or full send queue).
func (s *Server) Evictions() uint64 { return s.evictions.Load() }

// Rejections reports connections refused over MaxClients.
func (s *Server) Rejections() uint64 { return s.rejections.Load() }

// Resumptions reports reconnecting clients whose first query was a serial
// query answered from the delta history — a session resumed without a full
// snapshot reload.
func (s *Server) Resumptions() uint64 { return s.resumptions.Load() }

// CacheResets reports serial queries answered with Cache Reset (session
// mismatch or serial out of the retained window).
func (s *Server) CacheResets() uint64 { return s.cacheResets.Load() }

// ActiveClients reports currently served connections.
func (s *Server) ActiveClients() int64 { return s.active.Load() }

func (s *Server) sendQueue() int {
	if s.SendQueue > 0 {
		return s.SendQueue
	}
	return defaultSendQueue
}

func (s *Server) writeTimeout() time.Duration {
	if s.WriteTimeout > 0 {
		return s.WriteTimeout
	}
	return writeTimeout
}

// Listen binds addr and starts serving; it returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rtr: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				if errors.Is(err, net.ErrClosed) {
					return
				}
				select {
				case <-s.closed:
					return
				default:
					continue
				}
			}
			if s.MaxClients > 0 && s.active.Load() >= int64(s.MaxClients) {
				s.rejections.Add(1)
				if met := s.cache.met.Load(); met != nil {
					met.rejections.Inc()
				}
				s.refuse(conn)
				continue
			}
			s.active.Add(1)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer s.active.Add(-1)
				s.handle(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// refuse answers an over-cap connection with a graceful Error PDU and
// closes it, off the accept loop so a wedged peer cannot stall accepts.
func (s *Server) refuse(conn net.Conn) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer conn.Close()
		if conn.SetWriteDeadline(time.Now().Add(2*time.Second)) != nil {
			return
		}
		_ = WritePDU(conn, &PDU{Type: TypeErrorReport, Session: ErrNoDataAvailable,
			ErrText: "connection limit reached"})
	}()
}

// Close stops the server.
func (s *Server) Close() error {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

// response is one fully formed answer: an ordered batch of wire segments
// (header PDUs interleaved with shared zero-copy frames) written atomically
// by the connection's writer goroutine.
type response struct {
	segs [][]byte
	// drop closes the connection after the batch is written (protocol
	// errors, server-initiated errors).
	drop bool
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	if s.WriteBuffer > 0 {
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.SetWriteBuffer(s.WriteBuffer)
		}
	}
	sendq := make(chan response, s.sendQueue())
	sub := s.cache.subscribe(conn.RemoteAddr().String(), func() int { return len(sendq) })
	defer s.cache.unsubscribe(sub)

	// evictq carries at most one eviction verdict from the reader (queue
	// full) to the writer, which owns the socket teardown.
	evictq := make(chan string, 1)
	readErr := make(chan error, 1)
	var readerDone sync.WaitGroup
	readerDone.Add(1)
	go func() {
		defer readerDone.Done()
		readErr <- s.readLoop(conn, sendq, evictq)
	}()

	s.writeLoop(conn, sub, sendq, evictq)

	// Unblock and collect the reader: closing the conn (deferred above
	// fires on return, but the reader may be mid-read now) fails its read.
	conn.Close()
	readerDone.Wait()
}

// readLoop reads queries and enqueues fully formed responses. It never
// writes to the socket and never blocks on the send queue: a full queue is
// a slow consumer, reported on evictq for the writer to terminate.
func (s *Server) readLoop(conn net.Conn, sendq chan response, evictq chan string) error {
	//lint:ignore deadlinebeforeio RTR reads are unbounded by design: routers idle between queries and are pushed notifies
	r := bufio.NewReaderSize(conn, 512)
	firstQuery := true
	for {
		q, err := ReadPDU(r)
		if err != nil {
			return err
		}
		resp, ok := s.answer(q, firstQuery)
		firstQuery = false
		if !ok {
			// Protocol-fatal query: enqueue the error (drop flag set) and
			// stop reading.
			select {
			case sendq <- resp:
			default:
				s.requestEvict(evictq, evictQueueFull)
			}
			return nil
		}
		select {
		case sendq <- resp:
		default:
			// The client has a full queue of unread answers and keeps
			// asking: evict rather than buffer without bound or block the
			// reader.
			s.requestEvict(evictq, evictQueueFull)
			return nil
		}
	}
}

// requestEvict posts an eviction verdict (first one wins).
func (s *Server) requestEvict(evictq chan string, reason string) {
	select {
	case evictq <- reason:
	default:
	}
}

// writeLoop owns all socket writes: query responses from the send queue
// and coalesced serial notifies from the subscriber doorbell. Every batch
// is deadline-armed; a write error or timeout means the consumer stalled
// and the connection is evicted.
func (s *Server) writeLoop(conn net.Conn, sub *subscriber, sendq chan response, evictq chan string) {
	w := bufio.NewWriterSize(conn, 1024)
	timeout := s.writeTimeout()
	writeBatch := func(segs [][]byte) bool {
		if conn.SetWriteDeadline(time.Now().Add(timeout)) != nil {
			return false
		}
		for _, seg := range segs {
			if _, err := w.Write(seg); err != nil {
				return false
			}
		}
		return w.Flush() == nil
	}
	for {
		select {
		case <-s.closed:
			return
		case err := <-evictq:
			s.evict(conn, w, err)
			return
		case <-sub.wake:
			serial := sub.pending.Load()
			ok := writeBatch([][]byte{mustMarshal(&PDU{
				Type: TypeSerialNotify, Session: s.cache.Session(), Serial: serial})})
			if !ok {
				s.evict(conn, w, evictWriteStall)
				return
			}
			// The notify reached the client's socket: one propagation
			// latency sample for this delta.
			s.cache.observePropagation(serial)
		case resp := <-sendq:
			if !writeBatch(resp.segs) {
				s.evict(conn, w, evictWriteStall)
				return
			}
			if resp.drop {
				return
			}
		}
	}
}

// evict terminates a slow consumer: count it, then best-effort write a
// graceful Error PDU under a short deadline (a write-stalled socket will
// simply fail it) and return — the caller closes the connection.
func (s *Server) evict(conn net.Conn, w *bufio.Writer, reason string) {
	s.evictions.Add(1)
	if met := s.cache.met.Load(); met != nil {
		met.evictions.With(reason).Inc()
	}
	deadline := 2 * time.Second
	if t := s.writeTimeout(); t < deadline {
		deadline = t
	}
	if conn.SetWriteDeadline(time.Now().Add(deadline)) != nil {
		return
	}
	if WritePDU(w, &PDU{Type: TypeErrorReport, Session: ErrNoDataAvailable,
		ErrText: "evicted: slow consumer (" + reason + ")"}) == nil {
		_ = w.Flush()
	}
}

// mustMarshal encodes a server-constructed PDU (whose shapes are all
// marshalable by construction).
func mustMarshal(p *PDU) []byte {
	b, err := p.Marshal()
	if err != nil {
		panic("rtr: marshal of server PDU failed: " + err.Error())
	}
	return b
}

// answer builds the response batch for one query; ok=false means the
// connection must drop after the batch is written. The hot path stitches
// the cache's precomputed shared frames into the batch verbatim — no VRP is
// re-serialized per client.
func (s *Server) answer(q *PDU, firstQuery bool) (response, bool) {
	switch q.Type {
	case TypeResetQuery:
		frame, serial, session := s.cache.snapshotFrame()
		return response{segs: [][]byte{
			mustMarshal(&PDU{Type: TypeCacheResponse, Session: session}),
			frame,
			mustMarshal(&PDU{Type: TypeEndOfData, Session: session, Serial: serial}),
		}}, true

	case TypeSerialQuery:
		session := s.cache.Session()
		if q.Session != session {
			// Session mismatch: tell the client to reset.
			s.cacheResets.Add(1)
			if met := s.cache.met.Load(); met != nil {
				met.cacheResets.Inc()
			}
			return response{segs: [][]byte{mustMarshal(&PDU{Type: TypeCacheReset})}}, true
		}
		frames, serial, ok := s.cache.deltaFrames(q.Serial)
		if !ok {
			// The queried serial predates the retained history window:
			// the client must reload the full snapshot.
			s.cacheResets.Add(1)
			if met := s.cache.met.Load(); met != nil {
				met.cacheResets.Inc()
			}
			return response{segs: [][]byte{mustMarshal(&PDU{Type: TypeCacheReset})}}, true
		}
		if firstQuery {
			// A fresh connection opening with an in-window serial query is
			// a reconnecting router resuming its session: it replays only
			// the missed deltas instead of the full snapshot.
			s.resumptions.Add(1)
			if met := s.cache.met.Load(); met != nil {
				met.resumptions.Inc()
			}
		}
		segs := make([][]byte, 0, len(frames)+2)
		segs = append(segs, mustMarshal(&PDU{Type: TypeCacheResponse, Session: session}))
		segs = append(segs, frames...)
		segs = append(segs, mustMarshal(&PDU{Type: TypeEndOfData, Session: session, Serial: serial}))
		return response{segs: segs}, true

	case TypeErrorReport:
		return response{drop: true}, false

	default:
		return response{segs: [][]byte{mustMarshal(&PDU{Type: TypeErrorReport, Session: ErrUnsupportedPDU,
			ErrText: fmt.Sprintf("unsupported PDU type %d", q.Type)})}, drop: true}, false
	}
}
