package rtr

import (
	"bytes"
	"context"
	"net"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ipres"
	"repro/internal/rov"
)

func vrp(p string, maxLen int, asn ipres.ASN) rov.VRP {
	return rov.VRP{Prefix: ipres.MustParsePrefix(p), MaxLength: maxLen, ASN: asn}
}

func TestPDURoundTrip(t *testing.T) {
	pdus := []*PDU{
		{Type: TypeSerialNotify, Session: 7, Serial: 42},
		{Type: TypeSerialQuery, Session: 7, Serial: 41},
		{Type: TypeResetQuery},
		{Type: TypeCacheResponse, Session: 7},
		{Type: TypeIPv4Prefix, Flags: FlagAnnounce, VRP: vrp("63.160.0.0/12", 13, 1239)},
		{Type: TypeIPv4Prefix, Flags: 0, VRP: vrp("63.174.16.0/20", 20, 17054)},
		{Type: TypeIPv6Prefix, Flags: FlagAnnounce, VRP: vrp("2001:db8::/32", 48, 64500)},
		{Type: TypeEndOfData, Session: 7, Serial: 42},
		{Type: TypeCacheReset},
		{Type: TypeErrorReport, Session: ErrNoDataAvailable, ErrText: "no data"},
	}
	for _, p := range pdus {
		buf, err := p.Marshal()
		if err != nil {
			t.Fatalf("marshal type %d: %v", p.Type, err)
		}
		got, err := ReadPDU(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("read type %d: %v", p.Type, err)
		}
		if got.Type != p.Type || got.Serial != p.Serial || got.Flags != p.Flags || got.ErrText != p.ErrText {
			t.Errorf("round trip changed PDU: %+v vs %+v", got, p)
		}
		if p.Type == TypeIPv4Prefix || p.Type == TypeIPv6Prefix {
			if got.VRP != p.VRP {
				t.Errorf("VRP changed: %v vs %v", got.VRP, p.VRP)
			}
		}
	}
}

func TestPDURejectsGarbage(t *testing.T) {
	if _, err := ReadPDU(bytes.NewReader([]byte{9, 0, 0, 0, 0, 0, 0, 8})); err == nil {
		t.Error("wrong version must fail")
	}
	if _, err := ReadPDU(bytes.NewReader([]byte{0, 99, 0, 0, 0, 0, 0, 8})); err == nil {
		t.Error("unknown type must fail")
	}
	// Absurd length.
	if _, err := ReadPDU(bytes.NewReader([]byte{0, 4, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})); err == nil {
		t.Error("absurd length must fail")
	}
	// Marshal rejects family mismatch.
	p := &PDU{Type: TypeIPv4Prefix, VRP: vrp("2001:db8::/32", 32, 1)}
	if _, err := p.Marshal(); err == nil {
		t.Error("family mismatch must fail")
	}
}

func TestCacheDeltas(t *testing.T) {
	c := NewCache(1)
	v1 := vrp("10.0.0.0/8", 8, 1)
	v2 := vrp("10.0.0.0/8", 8, 2)
	c.SetVRPs([]rov.VRP{v1})
	if c.Serial() != 1 || c.Len() != 1 {
		t.Fatalf("serial=%d len=%d", c.Serial(), c.Len())
	}
	c.SetVRPs([]rov.VRP{v1}) // no change, no serial bump
	if c.Serial() != 1 {
		t.Error("identical update must not bump serial")
	}
	c.SetVRPs([]rov.VRP{v2})
	ann, wd, serial, ok := c.deltasSince(1)
	if !ok || serial != 2 || len(ann) != 1 || len(wd) != 1 {
		t.Fatalf("delta: %v %v %d %v", ann, wd, serial, ok)
	}
	if ann[0] != v2 || wd[0] != v1 {
		t.Error("delta content wrong")
	}
	// Current serial: empty delta, still ok.
	ann, wd, _, ok = c.deltasSince(2)
	if !ok || len(ann) != 0 || len(wd) != 0 {
		t.Error("no-op delta wrong")
	}
	// Out-of-window serial: not ok.
	if _, _, _, ok := c.deltasSince(99); ok {
		t.Error("future serial should be out of window")
	}
}

func startServer(t *testing.T, cache *Cache) string {
	t.Helper()
	srv := NewServer(cache)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return addr
}

func TestClientFullSync(t *testing.T) {
	cache := NewCache(99)
	vrps := []rov.VRP{
		vrp("63.160.0.0/12", 13, 1239),
		vrp("63.174.16.0/20", 20, 17054),
		vrp("2001:db8::/32", 48, 64500),
	}
	cache.SetVRPs(vrps)
	addr := startServer(t, cache)

	client := NewClient(addr)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = client.Run(ctx) }()

	if !client.WaitSynced(3 * time.Second) {
		t.Fatal("client never synced")
	}
	got := client.VRPs()
	if len(got) != 3 {
		t.Fatalf("VRPs = %v", got)
	}
	if client.Serial() != 1 {
		t.Errorf("serial = %d", client.Serial())
	}
}

func TestClientIncrementalUpdate(t *testing.T) {
	cache := NewCache(7)
	v1 := vrp("63.174.16.0/20", 20, 17054)
	v2 := vrp("63.174.16.0/22", 22, 7341)
	cache.SetVRPs([]rov.VRP{v1, v2})
	addr := startServer(t, cache)

	client := NewClient(addr)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = client.Run(ctx) }()
	if !client.WaitSynced(3 * time.Second) {
		t.Fatal("initial sync failed")
	}

	// Whack v2: the withdrawal must propagate via serial notify + query.
	cache.SetVRPs([]rov.VRP{v1})
	if !client.WaitSerial(2, 3*time.Second) {
		t.Fatal("incremental update never arrived")
	}
	got := client.VRPs()
	if len(got) != 1 || got[0] != v1 {
		t.Errorf("after withdrawal: %v", got)
	}
}

func TestClientOnSyncCallback(t *testing.T) {
	cache := NewCache(1)
	cache.SetVRPs([]rov.VRP{vrp("10.0.0.0/8", 8, 1)})
	addr := startServer(t, cache)

	client := NewClient(addr)
	syncs := make(chan int, 10)
	client.OnSync(func(vrps []rov.VRP) { syncs <- len(vrps) })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = client.Run(ctx) }()

	select {
	case n := <-syncs:
		if n != 1 {
			t.Errorf("first sync had %d VRPs", n)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no sync callback")
	}
}

func TestManyVRPsOverRTR(t *testing.T) {
	cache := NewCache(3)
	var vrps []rov.VRP
	for i := 0; i < 1000; i++ {
		p := ipres.MustPrefixFrom(ipres.AddrFromUint32(uint32(i)<<12), 24)
		vrps = append(vrps, rov.VRP{Prefix: p, MaxLength: 24, ASN: ipres.ASN(i % 50)})
	}
	cache.SetVRPs(vrps)
	addr := startServer(t, cache)
	client := NewClient(addr)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = client.Run(ctx) }()
	if !client.WaitSynced(5 * time.Second) {
		t.Fatal("sync failed")
	}
	if got := len(client.VRPs()); got != len(vrps) {
		t.Errorf("VRPs = %d, want %d", got, len(vrps))
	}
}

func TestPDUQuickRoundTrip(t *testing.T) {
	f := func(v uint32, bitsRaw, extraRaw uint8, asn uint32, announce bool) bool {
		bits := int(bitsRaw % 33)
		maxLen := bits + int(extraRaw)%(33-bits)
		prefix, err := ipres.PrefixFrom(ipres.AddrFromUint32(v), bits)
		if err != nil {
			return false
		}
		var flags uint8
		if announce {
			flags = FlagAnnounce
		}
		p := &PDU{Type: TypeIPv4Prefix, Flags: flags,
			VRP: rov.VRP{Prefix: prefix, MaxLength: maxLen, ASN: ipres.ASN(asn)}}
		buf, err := p.Marshal()
		if err != nil {
			return false
		}
		got, err := ReadPDU(bytes.NewReader(buf))
		return err == nil && got.VRP == p.VRP && got.Flags == p.Flags
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestClientRecoversFromOutOfWindowSerial(t *testing.T) {
	cache := NewCache(5)
	cache.maxHist = 1 // tiny history window
	v1 := vrp("10.0.0.0/8", 8, 1)
	v2 := vrp("10.0.0.0/8", 8, 2)
	v3 := vrp("10.0.0.0/8", 8, 3)
	cache.SetVRPs([]rov.VRP{v1})
	addr := startServer(t, cache)
	client := NewClient(addr)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = client.Run(ctx) }()
	if !client.WaitSynced(3 * time.Second) {
		t.Fatal("initial sync failed")
	}
	// Two rapid updates age out the delta the client needs; the server
	// must answer its serial query with Cache Reset and the client must
	// recover with a full reload.
	cache.SetVRPs([]rov.VRP{v2})
	cache.SetVRPs([]rov.VRP{v3})
	if !client.WaitSerial(3, 5*time.Second) {
		t.Fatal("client never caught up after cache reset")
	}
	got := client.VRPs()
	if len(got) != 1 || got[0] != v3 {
		t.Errorf("after recovery: %v", got)
	}
}

func TestServerRejectsUnsupportedPDU(t *testing.T) {
	cache := NewCache(1)
	addr := startServer(t, cache)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a Cache Response (a server→client PDU) as a query.
	if err := WritePDU(conn, &PDU{Type: TypeCacheResponse}); err != nil {
		t.Fatal(err)
	}
	p, err := ReadPDU(conn)
	if err != nil {
		t.Fatal(err)
	}
	if p.Type != TypeErrorReport || p.Session != ErrUnsupportedPDU {
		t.Errorf("want error report, got %+v", p)
	}
}

func TestCacheSubscribeNotify(t *testing.T) {
	cache := NewCache(1)
	sub := cache.subscribe("test", nil)
	defer cache.unsubscribe(sub)
	cache.SetVRPs([]rov.VRP{vrp("10.0.0.0/8", 8, 1)})
	select {
	case <-sub.wake:
		if serial := sub.pending.Load(); serial != 1 {
			t.Errorf("serial = %d", serial)
		}
	case <-time.After(time.Second):
		t.Fatal("no notification")
	}
}

func TestErrorReportRoundTripEmpty(t *testing.T) {
	p := &PDU{Type: TypeErrorReport, Session: ErrInternal, ErrText: ""}
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadPDU(bytes.NewReader(buf))
	if err != nil || got.ErrText != "" || got.Session != ErrInternal {
		t.Errorf("got %+v, %v", got, err)
	}
}

// TestSetVRPsCanonicalNoOp: SetVRPs normalizes its input, so the same set
// shuffled and with duplicates is a true no-op — no serial bump, no delta.
func TestSetVRPsCanonicalNoOp(t *testing.T) {
	c := NewCache(1)
	v1 := vrp("10.0.0.0/8", 8, 1)
	v2 := vrp("10.1.0.0/16", 24, 2)
	v3 := vrp("2001:db8::/32", 48, 3)
	c.SetVRPs([]rov.VRP{v1, v2, v3})
	if c.Serial() != 1 {
		t.Fatalf("serial = %d", c.Serial())
	}
	c.SetVRPs([]rov.VRP{v3, v1, v2, v1, v3}) // shuffled + duplicated
	if c.Serial() != 1 {
		t.Errorf("reordered duplicate update bumped serial to %d", c.Serial())
	}
	if entries, _, _ := c.HistoryStats(); entries != 1 {
		t.Errorf("history entries = %d, want 1", entries)
	}
}

// TestCacheHistoryBounds: the delta history stays inside every configured
// bound no matter how many updates flow through, and out-of-window serial
// queries fall back to Cache Reset.
func TestCacheHistoryBounds(t *testing.T) {
	c := NewCache(1)
	c.SetHistoryLimits(8, 40, 1<<30)
	for i := 0; i < 100; i++ {
		c.SetVRPs([]rov.VRP{vrp("10.0.0.0/8", 8, ipres.ASN(i+1))})
		entries, vrpsN, bytes := c.HistoryStats()
		if entries > 8 || vrpsN > 40 {
			t.Fatalf("update %d: history entries=%d vrps=%d bytes=%d exceeds bounds", i, entries, vrpsN, bytes)
		}
	}
	if c.Serial() != 100 {
		t.Fatalf("serial = %d", c.Serial())
	}
	// A serial inside the retained window replays deltas.
	if _, _, ok := c.deltaFrames(99); !ok {
		t.Error("recent serial should be in window")
	}
	// A serial older than the window is refused (server answers CacheReset).
	if _, _, ok := c.deltaFrames(5); ok {
		t.Error("ancient serial should be out of window")
	}

	// The byte budget alone must also bound the history.
	cb := NewCache(2)
	cb.SetHistoryLimits(1<<30, 1<<30, 200)
	for i := 0; i < 50; i++ {
		cb.SetVRPs([]rov.VRP{vrp("10.0.0.0/8", 8, ipres.ASN(i+1))})
		if _, _, bytes := cb.HistoryStats(); bytes > 200 {
			t.Fatalf("update %d: history bytes=%d exceeds budget", i, bytes)
		}
	}
}

// TestRTRManyClientsFanOut: one cache serves a full snapshot and a
// subsequent minimal delta to 100 concurrent clients, every client
// converging on the same canonical VRP set. The snapshot and delta frames
// are serialized once and shared; per-client work is only the writes.
func TestRTRManyClientsFanOut(t *testing.T) {
	const nClients = 100
	cache := NewCache(42)
	var vrps []rov.VRP
	for i := 0; i < 500; i++ {
		p := ipres.MustPrefixFrom(ipres.AddrFromUint32(0x0a000000+uint32(i)<<8), 24)
		vrps = append(vrps, rov.VRP{Prefix: p, MaxLength: 24, ASN: ipres.ASN(i%64 + 1)})
	}
	cache.SetVRPs(vrps)
	addr := startServer(t, cache)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	clients := make([]*Client, nClients)
	for i := range clients {
		clients[i] = NewClient(addr)
		go func(c *Client) { _ = c.Run(ctx) }(clients[i])
	}
	for i, c := range clients {
		if !c.WaitSynced(10 * time.Second) {
			t.Fatalf("client %d never synced", i)
		}
		if got := len(c.VRPs()); got != len(vrps) {
			t.Fatalf("client %d: %d VRPs, want %d", i, got, len(vrps))
		}
	}

	// One "module" worth of change: drop two VRPs, add one.
	next := append([]rov.VRP{}, vrps[:len(vrps)-2]...)
	extra := rov.VRP{Prefix: ipres.MustParsePrefix("192.0.2.0/24"), MaxLength: 24, ASN: 64500}
	next = append(next, extra)
	cache.SetVRPs(next)
	if entries, _, _ := cache.HistoryStats(); entries != 2 {
		t.Fatalf("history entries = %d, want 2", entries)
	}

	want := append([]rov.VRP{}, next...)
	rov.SortVRPs(want)
	for i, c := range clients {
		if !c.WaitSerial(2, 10*time.Second) {
			t.Fatalf("client %d never saw the delta", i)
		}
		got := c.VRPs()
		if len(got) != len(want) {
			t.Fatalf("client %d: %d VRPs after delta, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("client %d: VRP[%d] = %v, want %v", i, j, got[j], want[j])
			}
		}
	}
}
