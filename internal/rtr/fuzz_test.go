package rtr

import (
	"bytes"
	"testing"

	"repro/internal/ipres"
	"repro/internal/rov"
)

// FuzzRTRRead drives ReadPDU with arbitrary wire bytes — the router side of
// the protocol reads from a cache it does not control, so a malformed frame
// must produce an error, never a panic (the ErrorReport length-overflow
// regression in pdu_regress_test.go came from exactly this surface). A PDU
// that decodes must survive a marshal/re-read round trip.
func FuzzRTRRead(f *testing.F) {
	seedPDUs := []*PDU{
		{Type: TypeSerialNotify, Session: 7, Serial: 42},
		{Type: TypeResetQuery},
		{Type: TypeCacheResponse, Session: 7},
		{Type: TypeIPv4Prefix, Flags: FlagAnnounce, VRP: rov.VRP{
			Prefix: ipres.MustParsePrefix("63.160.0.0/12"), MaxLength: 13, ASN: 1239}},
		{Type: TypeEndOfData, Session: 7, Serial: 42},
		{Type: TypeErrorReport, Session: ErrCorruptData, ErrText: "bad pdu"},
	}
	for _, p := range seedPDUs {
		buf, err := p.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	// The two minimized ErrorReport overflow crashers.
	f.Add([]byte{0, 10, 0, 0, 0, 0, 0, 16, 0xFF, 0xFF, 0xFF, 0xF8, 0, 0, 0, 0})
	f.Add([]byte{0, 10, 0, 0, 0, 0, 0, 16, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xF8})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPDU(bytes.NewReader(data))
		if err != nil {
			return
		}
		buf, err := p.Marshal()
		if err != nil {
			t.Fatalf("decoded PDU does not re-marshal: %v", err)
		}
		q, err := ReadPDU(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("re-marshaled PDU does not re-read: %v", err)
		}
		if q.Type != p.Type || q.Serial != p.Serial || q.ErrText != p.ErrText {
			t.Fatalf("round trip mismatch: %+v vs %+v", p, q)
		}
	})
}
