// Replication: a compact serial-numbered VRP-delta wire stream so N
// stateless RTR frontends can follow one validator's cache — the primary
// streams its snapshot and every subsequent delta, and each replica mirrors
// session, serial, and canonical VRP set exactly. Routers can therefore
// resume their RTR session against any frontend: the replicated state is
// byte-identical, session ID included.
//
// Wire format (all integers big-endian):
//
//	frame   = magic 0x52 'R' | version 0x01 | type u8 | reserved 0x00 |
//	          payload-length u32 | payload
//	hello    (replica→primary) = session u16 | serial u32 | flags u8
//	                             (flag bit0: replica has state to resume)
//	snapshot (primary→replica) = session u16 | serial u32 | count u32 |
//	                             count × record
//	delta    (primary→replica) = serial u32 | nAnnounce u32 | nWithdraw u32 |
//	                             records (announces then withdraws)
//	record  = family u8 (4|6) | prefix-bits u8 | max-length u8 |
//	          address (4 or 16 bytes) | asn u32
//
// The decoder is hard-bounded: a frame's declared payload length is checked
// against MaxReplicationPayload before any allocation, and record counts
// are validated against the actual payload size before any VRP is built —
// a hostile or corrupt peer cannot make a frontend allocate beyond the
// limit (the boundeddecode invariant, applied to the replication plane).
package rtr

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ipres"
	"repro/internal/rov"
)

// Replication frame types.
const (
	ReplTypeHello    uint8 = 1
	ReplTypeSnapshot uint8 = 2
	ReplTypeDelta    uint8 = 3
)

// replVersion is the replication wire-format version.
const replVersion = 1

// replMagic leads every frame.
const replMagic = 0x52

// replHeaderLen is the fixed frame-header size.
const replHeaderLen = 8

// MaxReplicationPayload bounds one replication frame's payload: enough for
// a multi-million-VRP snapshot (a v6 record is 23 bytes), small enough that
// a corrupt length field cannot make a frontend allocate gigabytes.
const MaxReplicationPayload = 64 << 20

// replRecordMin is the smallest record encoding (IPv4: 3+4+4 bytes).
const replRecordMin = 11

// ReplHello is the replica's opening frame: the state it already holds.
type ReplHello struct {
	Session uint16
	Serial  uint32
	// HaveState marks a reconnecting replica that can resume from Serial
	// if the primary still retains that window.
	HaveState bool
}

// appendReplHeader appends a frame header for type typ with the given
// payload length.
func appendReplHeader(dst []byte, typ uint8, payloadLen int) []byte {
	var hdr [replHeaderLen]byte
	hdr[0] = replMagic
	hdr[1] = replVersion
	hdr[2] = typ
	binary.BigEndian.PutUint32(hdr[4:], uint32(payloadLen))
	return append(dst, hdr[:]...)
}

// AppendHelloFrame appends an encoded hello frame to dst.
func AppendHelloFrame(dst []byte, h ReplHello) []byte {
	dst = appendReplHeader(dst, ReplTypeHello, 7)
	var body [7]byte
	binary.BigEndian.PutUint16(body[0:], h.Session)
	binary.BigEndian.PutUint32(body[2:], h.Serial)
	if h.HaveState {
		body[6] = 1
	}
	return append(dst, body[:]...)
}

// appendReplRecord appends one VRP record.
func appendReplRecord(dst []byte, v rov.VRP) []byte {
	fam := uint8(4)
	if v.Prefix.Family().Width() == 128 {
		fam = 6
	}
	dst = append(dst, fam, uint8(v.Prefix.Bits()), uint8(v.MaxLength))
	dst = append(dst, v.Prefix.Addr().Bytes()...)
	var asn [4]byte
	binary.BigEndian.PutUint32(asn[:], uint32(v.ASN))
	return append(dst, asn[:]...)
}

// encodedVRPsLen returns the exact encoded size of a record list.
func encodedVRPsLen(vrps []rov.VRP) int {
	n := 0
	for _, v := range vrps {
		if v.Prefix.Family().Width() == 128 {
			n += 23
		} else {
			n += 11
		}
	}
	return n
}

// AppendSnapshotFrame appends an encoded snapshot frame to dst.
func AppendSnapshotFrame(dst []byte, session uint16, serial uint32, vrps []rov.VRP) []byte {
	dst = appendReplHeader(dst, ReplTypeSnapshot, 10+encodedVRPsLen(vrps))
	var hdr [10]byte
	binary.BigEndian.PutUint16(hdr[0:], session)
	binary.BigEndian.PutUint32(hdr[2:], serial)
	binary.BigEndian.PutUint32(hdr[6:], uint32(len(vrps)))
	dst = append(dst, hdr[:]...)
	for _, v := range vrps {
		dst = appendReplRecord(dst, v)
	}
	return dst
}

// AppendDeltaFrame appends an encoded delta frame to dst.
func AppendDeltaFrame(dst []byte, serial uint32, announced, withdrawn []rov.VRP) []byte {
	dst = appendReplHeader(dst, ReplTypeDelta, 12+encodedVRPsLen(announced)+encodedVRPsLen(withdrawn))
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:], serial)
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(announced)))
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(withdrawn)))
	dst = append(dst, hdr[:]...)
	for _, v := range announced {
		dst = appendReplRecord(dst, v)
	}
	for _, v := range withdrawn {
		dst = appendReplRecord(dst, v)
	}
	return dst
}

// ReadReplicationFrame reads one frame from r. The declared payload length
// is validated against MaxReplicationPayload before any allocation.
//
//taint:source bytes a replication peer controls
func ReadReplicationFrame(r io.Reader) (typ uint8, payload []byte, err error) {
	var hdr [replHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0] != replMagic || hdr[1] != replVersion {
		return 0, nil, fmt.Errorf("rtr: bad replication frame header %x", hdr[:2])
	}
	length := binary.BigEndian.Uint32(hdr[4:])
	if length > MaxReplicationPayload {
		return 0, nil, fmt.Errorf("rtr: replication payload %d exceeds limit %d", length, MaxReplicationPayload)
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[2], payload, nil
}

// ParseReplicationHello decodes a hello payload.
func ParseReplicationHello(payload []byte) (ReplHello, error) {
	if len(payload) > MaxReplicationPayload {
		return ReplHello{}, fmt.Errorf("rtr: hello payload %d exceeds limit %d", len(payload), MaxReplicationPayload)
	}
	if len(payload) != 7 {
		return ReplHello{}, fmt.Errorf("rtr: hello payload %d bytes, want 7", len(payload))
	}
	return ReplHello{
		Session:   binary.BigEndian.Uint16(payload[0:]),
		Serial:    binary.BigEndian.Uint32(payload[2:]),
		HaveState: payload[6]&1 != 0,
	}, nil
}

// parseReplRecords decodes exactly count records from b, which must be
// consumed entirely.
func parseReplRecords(b []byte, count uint32) ([]rov.VRP, []byte, error) {
	// Cheap structural bound before any allocation: count records need at
	// least count*replRecordMin bytes.
	if uint64(count)*replRecordMin > uint64(len(b)) {
		return nil, nil, fmt.Errorf("rtr: record count %d exceeds payload", count)
	}
	out := make([]rov.VRP, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(b) < 3 {
			return nil, nil, errors.New("rtr: truncated record")
		}
		fam := ipres.IPv4
		addrLen := 4
		switch b[0] {
		case 4:
		case 6:
			fam, addrLen = ipres.IPv6, 16
		default:
			return nil, nil, fmt.Errorf("rtr: bad record family %d", b[0])
		}
		need := 3 + addrLen + 4
		if len(b) < need {
			return nil, nil, errors.New("rtr: truncated record")
		}
		bits, maxLen := int(b[1]), int(b[2])
		var addr ipres.Addr
		if fam == ipres.IPv4 {
			var a4 [4]byte
			copy(a4[:], b[3:7])
			addr = ipres.AddrFrom4(a4)
		} else {
			var a16 [16]byte
			copy(a16[:], b[3:19])
			addr = ipres.AddrFrom16(a16)
		}
		prefix, err := ipres.PrefixFrom(addr, bits)
		if err != nil {
			return nil, nil, fmt.Errorf("rtr: bad record prefix: %w", err)
		}
		if maxLen < bits || maxLen > fam.Width() {
			return nil, nil, fmt.Errorf("rtr: record max length %d out of range", maxLen)
		}
		asn := ipres.ASN(binary.BigEndian.Uint32(b[3+addrLen:]))
		out = append(out, rov.VRP{Prefix: prefix, MaxLength: maxLen, ASN: asn})
		b = b[need:]
	}
	return out, b, nil
}

// ParseReplicationSnapshot decodes a snapshot payload.
func ParseReplicationSnapshot(payload []byte) (session uint16, serial uint32, vrps []rov.VRP, err error) {
	if len(payload) > MaxReplicationPayload {
		return 0, 0, nil, fmt.Errorf("rtr: snapshot payload %d exceeds limit %d", len(payload), MaxReplicationPayload)
	}
	if len(payload) < 10 {
		return 0, 0, nil, errors.New("rtr: short snapshot payload")
	}
	session = binary.BigEndian.Uint16(payload[0:])
	serial = binary.BigEndian.Uint32(payload[2:])
	count := binary.BigEndian.Uint32(payload[6:])
	vrps, rest, err := parseReplRecords(payload[10:], count)
	if err != nil {
		return 0, 0, nil, err
	}
	if len(rest) != 0 {
		return 0, 0, nil, fmt.Errorf("rtr: %d trailing snapshot bytes", len(rest))
	}
	return session, serial, vrps, nil
}

// ParseReplicationDelta decodes a delta payload.
func ParseReplicationDelta(payload []byte) (serial uint32, announced, withdrawn []rov.VRP, err error) {
	if len(payload) > MaxReplicationPayload {
		return 0, nil, nil, fmt.Errorf("rtr: delta payload %d exceeds limit %d", len(payload), MaxReplicationPayload)
	}
	if len(payload) < 12 {
		return 0, nil, nil, errors.New("rtr: short delta payload")
	}
	serial = binary.BigEndian.Uint32(payload[0:])
	nAnn := binary.BigEndian.Uint32(payload[4:])
	nWd := binary.BigEndian.Uint32(payload[8:])
	body := payload[12:]
	// Joint structural bound before either list allocates.
	if (uint64(nAnn)+uint64(nWd))*replRecordMin > uint64(len(body)) {
		return 0, nil, nil, fmt.Errorf("rtr: record counts %d+%d exceed payload", nAnn, nWd)
	}
	announced, body, err = parseReplRecords(body, nAnn)
	if err != nil {
		return 0, nil, nil, err
	}
	withdrawn, body, err = parseReplRecords(body, nWd)
	if err != nil {
		return 0, nil, nil, err
	}
	if len(body) != 0 {
		return 0, nil, nil, fmt.Errorf("rtr: %d trailing delta bytes", len(body))
	}
	return serial, announced, withdrawn, nil
}

// ReplicationServer streams a cache's state to replica frontends: one
// snapshot (or a delta resume) on connect, then every delta as it happens.
// Replicas are few (frontend count, not router count), so frames are
// encoded per connection from the shared delta history.
type ReplicationServer struct {
	cache  *Cache
	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}

	// WriteTimeout bounds one frame write to a replica (0: default 30s).
	// A stalled replica is disconnected, not buffered for. Set before
	// Listen.
	WriteTimeout time.Duration

	resumptions atomic.Uint64
	snapshots   atomic.Uint64
}

// NewReplicationServer creates a replication feed over cache.
func NewReplicationServer(cache *Cache) *ReplicationServer {
	return &ReplicationServer{cache: cache, closed: make(chan struct{})}
}

// Resumptions reports replicas that resumed from their serial without a
// snapshot.
func (s *ReplicationServer) Resumptions() uint64 { return s.resumptions.Load() }

// Snapshots reports full snapshots served to replicas.
func (s *ReplicationServer) Snapshots() uint64 { return s.snapshots.Load() }

func (s *ReplicationServer) writeTimeout() time.Duration {
	if s.WriteTimeout > 0 {
		return s.WriteTimeout
	}
	return writeTimeout
}

// Listen binds addr and starts serving; it returns the bound address.
func (s *ReplicationServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("rtr: replication listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				if errors.Is(err, net.ErrClosed) {
					return
				}
				select {
				case <-s.closed:
					return
				default:
					continue
				}
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.handle(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the replication server.
func (s *ReplicationServer) Close() error {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *ReplicationServer) handle(conn net.Conn) {
	defer conn.Close()
	// The hello must arrive promptly; after it, the replica only reads.
	if conn.SetReadDeadline(time.Now().Add(s.writeTimeout())) != nil {
		return
	}
	r := bufio.NewReaderSize(conn, 512)
	typ, payload, err := ReadReplicationFrame(r)
	if err != nil || typ != ReplTypeHello {
		return
	}
	hello, err := ParseReplicationHello(payload)
	if err != nil {
		return
	}
	if conn.SetReadDeadline(time.Time{}) != nil {
		return
	}

	writeFrame := func(frame []byte) bool {
		if conn.SetWriteDeadline(time.Now().Add(s.writeTimeout())) != nil {
			return false
		}
		_, err := conn.Write(frame)
		return err == nil
	}

	// Opening state: resume from the replica's serial when the session
	// matches and the window is retained; otherwise a full snapshot.
	var lastSent uint32
	resumed := false
	if hello.HaveState && hello.Session == s.cache.Session() {
		if entries, current, ok := s.cache.deltaEntries(hello.Serial); ok {
			for _, d := range entries {
				if !writeFrame(AppendDeltaFrame(nil, d.serial, d.announced, d.withdrawn)) {
					return
				}
			}
			lastSent = current
			resumed = true
			s.resumptions.Add(1)
			if met := s.cache.met.Load(); met != nil {
				met.replResumptions.Inc()
			}
		}
	}
	if !resumed {
		vrps, serial, session := s.cache.snapshotVRPs()
		if !writeFrame(AppendSnapshotFrame(nil, session, serial, vrps)) {
			return
		}
		lastSent = serial
		s.snapshots.Add(1)
		if met := s.cache.met.Load(); met != nil {
			met.replSnapshots.Inc()
		}
	}

	// Follow the cache: on every notify, stream the deltas the replica has
	// not seen; if the window aged out (a severely lagged replica), fall
	// back to a fresh snapshot rather than disconnecting.
	sub := s.cache.subscribe("repl:"+conn.RemoteAddr().String(), nil)
	defer s.cache.unsubscribe(sub)

	// A reader goroutine watches for peer disconnect (replicas send
	// nothing after the hello, so any read result means the conn is done).
	connDone := make(chan struct{})
	go func() {
		defer close(connDone)
		var buf [1]byte
		for {
			if _, err := conn.Read(buf[:]); err != nil {
				return
			}
		}
	}()

	for {
		select {
		case <-s.closed:
			return
		case <-connDone:
			return
		case <-sub.wake:
			_ = sub.pending.Load() // coalesced; we stream from lastSent regardless
			entries, current, ok := s.cache.deltaEntries(lastSent)
			if !ok {
				vrps, serial, session := s.cache.snapshotVRPs()
				if !writeFrame(AppendSnapshotFrame(nil, session, serial, vrps)) {
					return
				}
				lastSent = serial
				s.snapshots.Add(1)
				if met := s.cache.met.Load(); met != nil {
					met.replSnapshots.Inc()
				}
				continue
			}
			for _, d := range entries {
				if !writeFrame(AppendDeltaFrame(nil, d.serial, d.announced, d.withdrawn)) {
					return
				}
			}
			lastSent = current
		}
	}
}
