package rtr

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rov"
)

// delta records one cache update: the announce/withdraw sets plus their
// precomputed wire encoding, shared read-only by every connection that
// replays this delta.
type delta struct {
	serial    uint32
	announced []rov.VRP
	withdrawn []rov.VRP
	// frame is the delta's prefix PDUs (announces then withdraws),
	// serialized once at update time. Immutable after creation.
	frame []byte
	// createdAt stamps when the delta entered the cache, anchoring the
	// delta-propagation latency histogram. Immutable after creation.
	createdAt time.Time
}

func (d *delta) vrpCount() int { return len(d.announced) + len(d.withdrawn) }

// numSubShards splits the subscriber table N ways so a cache update fans
// out over N short critical sections instead of one walk of a giant map
// under one lock. 32 shards keep the per-shard walk under ~350 entries
// even at 10k clients.
const numSubShards = 32

// subscriber is one connection's notification handle. Serial notifies are
// coalesced: pending always holds the latest serial and wake is a 1-slot
// doorbell, so a subscriber that has not drained yet absorbs any number of
// updates at zero queue growth — a slow consumer can never make the cache
// buffer per-client notify backlogs.
type subscriber struct {
	peer string
	// pending is the latest serial to announce (read with Load after a
	// wake). Writing pending then ringing wake is the only publish order.
	pending atomic.Uint32
	// wake is the 1-slot doorbell; a failed send means the subscriber is
	// already scheduled to look at pending.
	wake chan struct{}
	// queueDepth reports the owning connection's send-queue depth for the
	// scrape-time gauges (nil for connections without a queue).
	queueDepth func() int
}

// offer publishes serial to the subscriber, coalescing with any
// not-yet-consumed notify.
func (s *subscriber) offer(serial uint32) {
	s.pending.Store(serial)
	select {
	case s.wake <- struct{}{}:
	default: // doorbell already rung; the pending serial is the newest
	}
}

// subShard is one slice of the subscriber table with its own lock.
type subShard struct {
	mu sync.Mutex
	// subs holds this shard's live subscribers. guarded by mu.
	subs map[*subscriber]struct{}
}

// propRingSize bounds the serial→creation-time ring used by the
// propagation-latency histogram; lookups are O(1) under a read lock so 10k
// clients observing one delta never contend on the cache's main mutex.
const propRingSize = 256

type propEntry struct {
	serial uint32
	at     time.Time
}

// Cache is the server-side VRP database with serial-numbered history.
//
// Serving is zero-copy: each serial's full snapshot and each delta carry a
// precomputed, immutable frame of serialized prefix PDUs, built once per
// update and written verbatim to every client — N routers asking for the
// same data cost N writes, not N serializations. The delta history is
// bounded by entry count, total VRP count, and total frame bytes, so a
// long-lived server's memory stays flat no matter how many updates it has
// seen; a client whose serial predates the retained window gets a Cache
// Reset and reloads the snapshot.
//
// The subscriber table is sharded numSubShards ways: SetVRPs walks N small
// maps under N short locks instead of one giant map under the cache lock,
// so notify fan-out to 10k+ connections never serializes behind state
// updates (and vice versa).
type Cache struct {
	mu sync.Mutex
	// Session and serial state. guarded by mu.
	session uint16
	serial  uint32
	// vrps is the current set in canonical order (rov.SortVRPs), duplicate-
	// free; snapFrame is its precomputed wire encoding. Both are replaced,
	// never mutated, so connections may hold the retrieved slices outside
	// the lock; the fields themselves are guarded by mu.
	vrps      []rov.VRP
	snapFrame []byte
	// Delta history and its size accounting. guarded by mu.
	history   []delta
	histVRPs  int
	histBytes int
	// History bounds: entries, total VRPs, total frame bytes. guarded by mu.
	maxHist      int
	maxHistVRPs  int
	maxHistBytes int

	// Subscriber table, sharded; each shard carries its own lock.
	shards    [numSubShards]subShard
	nextShard atomic.Uint32

	// propMu guards propRing: the fixed serial→createdAt ring feeding the
	// propagation histogram without touching mu on the per-client path.
	propMu   sync.RWMutex
	propRing [propRingSize]propEntry

	// met holds metric handles registered by Instrument (nil pointer when
	// uninstrumented); atomic so hot paths never lock to reach a counter.
	met atomic.Pointer[rtrMetrics]
}

// Default history bounds: plenty for steady-state polling, small enough
// that a churn storm cannot balloon a long-lived server.
const (
	defaultMaxHist      = 64
	defaultMaxHistVRPs  = 1 << 16
	defaultMaxHistBytes = 1 << 20
)

// NewCache creates an empty cache with the given session ID.
func NewCache(session uint16) *Cache {
	c := &Cache{
		session:      session,
		maxHist:      defaultMaxHist,
		maxHistVRPs:  defaultMaxHistVRPs,
		maxHistBytes: defaultMaxHistBytes,
	}
	for i := range c.shards {
		//lint:ignore guardedby the cache is not yet published to any other goroutine
		c.shards[i].subs = make(map[*subscriber]struct{})
	}
	return c
}

// SetHistoryLimits bounds the retained delta history by entry count, total
// VRP count, and total precomputed frame bytes. Arguments <= 0 keep the
// current value. Clients older than the retained window fall back to a full
// snapshot reload via Cache Reset.
func (c *Cache) SetHistoryLimits(entries, vrps, bytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if entries > 0 {
		c.maxHist = entries
	}
	if vrps > 0 {
		c.maxHistVRPs = vrps
	}
	if bytes > 0 {
		c.maxHistBytes = bytes
	}
	c.evictLocked()
}

// HistoryStats reports the retained history's size (for observability and
// tests of the memory bound).
func (c *Cache) HistoryStats() (entries, vrps, bytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.history), c.histVRPs, c.histBytes
}

// Serial returns the current serial number.
func (c *Cache) Serial() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.serial
}

// Session returns the cache's session ID.
func (c *Cache) Session() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.session
}

// Len returns the number of VRPs.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.vrps)
}

// StateDigest hashes the cache's externally visible state — session,
// serial, and the serialized snapshot frame. Two caches with equal digests
// serve byte-identical snapshots under the same session and serial; the
// bench equivalence gate compares a replica frontend against its primary
// with exactly this.
func (c *Cache) StateDigest() [32]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := sha256.New()
	var hdr [6]byte
	binary.BigEndian.PutUint16(hdr[0:], c.session)
	binary.BigEndian.PutUint32(hdr[2:], c.serial)
	h.Write(hdr[:])
	h.Write(c.snapFrame)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// encodeVRPs appends the prefix PDUs for vrps (with the given flags) to buf.
func encodeVRPs(buf []byte, vrps []rov.VRP, flags uint8) []byte {
	for _, v := range vrps {
		typ := uint8(TypeIPv4Prefix)
		if v.Prefix.Family().Width() == 128 {
			typ = TypeIPv6Prefix
		}
		b, err := (&PDU{Type: typ, Flags: flags, VRP: v}).Marshal()
		if err != nil {
			continue // unencodable VRP (cannot happen for valid prefixes)
		}
		buf = append(buf, b...)
	}
	return buf
}

// normalizeVRPs copies, canonically sorts, and deduplicates vrps, dropping
// invalid prefixes.
func normalizeVRPs(vrps []rov.VRP) []rov.VRP {
	next := make([]rov.VRP, 0, len(vrps))
	for _, v := range vrps {
		if v.Prefix.IsValid() {
			next = append(next, v)
		}
	}
	rov.SortVRPs(next)
	// Deduplicate (canonical order makes duplicates adjacent).
	dedup := next[:0]
	for i, v := range next {
		if i == 0 || v.Compare(next[i-1]) != 0 {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

// SetVRPs replaces the cache contents. The input is normalized (copied,
// sorted canonically, deduplicated), diffed against the previous state in
// one linear merge, and — only if anything changed — the serial is bumped,
// the delta and snapshot frames are serialized once, and subscribed
// connections are notified. An unchanged set is a true no-op: no
// allocation, no serial bump, no notification, which is what makes the
// relying party's steady-state polling loop end in silence here.
func (c *Cache) SetVRPs(vrps []rov.VRP) {
	next := normalizeVRPs(vrps)

	c.mu.Lock()
	announced, withdrawn := rov.DiffVRPs(c.vrps, next)
	if len(announced) == 0 && len(withdrawn) == 0 {
		c.mu.Unlock()
		return
	}
	serial := c.commitLocked(c.serial+1, next, announced, withdrawn)
	c.mu.Unlock()
	c.notifyAll(serial)
}

// commitLocked installs next as the current set at the given serial,
// appends the delta to the bounded history, and rebuilds the shared
// snapshot frame. Callers hold c.mu; they must call notifyAll(serial)
// after unlocking.
func (c *Cache) commitLocked(serial uint32, next, announced, withdrawn []rov.VRP) uint32 {
	c.serial = serial
	d := delta{serial: serial, announced: announced, withdrawn: withdrawn, createdAt: time.Now()}
	if met := c.met.Load(); met != nil {
		met.updates.Inc()
	}
	frame := make([]byte, 0, 20*d.vrpCount())
	frame = encodeVRPs(frame, announced, FlagAnnounce)
	frame = encodeVRPs(frame, withdrawn, 0)
	d.frame = frame
	c.vrps = next
	c.snapFrame = encodeVRPs(make([]byte, 0, 20*len(next)), next, FlagAnnounce)
	c.history = append(c.history, d)
	c.histVRPs += d.vrpCount()
	c.histBytes += len(d.frame)
	c.evictLocked()
	c.recordPropTime(serial, d.createdAt)
	return serial
}

// applySnapshot installs a replicated full state: session and serial are
// adopted verbatim from the primary (so routers can resume against any
// frontend), the history is cleared (this cache cannot replay deltas that
// predate its own snapshot — out-of-window routers get Cache Reset), and
// subscribers are notified of the new serial.
func (c *Cache) applySnapshot(session uint16, serial uint32, vrps []rov.VRP) {
	next := normalizeVRPs(vrps)
	c.mu.Lock()
	c.session = session
	c.serial = serial
	c.vrps = next
	c.snapFrame = encodeVRPs(make([]byte, 0, 20*len(next)), next, FlagAnnounce)
	c.history = nil
	c.histVRPs, c.histBytes = 0, 0
	c.mu.Unlock()
	c.notifyAll(serial)
}

// applyDelta installs one replicated delta. The serial must be exactly the
// next one (ok=false otherwise — the follower missed a frame and must
// resynchronize); a serial at or below the current one is a duplicate
// replay and is ignored (ok=true), which is what makes reconnect replays
// harmless.
func (c *Cache) applyDelta(serial uint32, announced, withdrawn []rov.VRP) bool {
	announced = normalizeVRPs(announced)
	withdrawn = normalizeVRPs(withdrawn)
	c.mu.Lock()
	switch {
	case serial <= c.serial && c.serial-serial < 1<<31: // duplicate (serial-arithmetic tolerant)
		c.mu.Unlock()
		return true
	case serial != c.serial+1:
		c.mu.Unlock()
		return false
	}
	next := mergeApply(c.vrps, announced, withdrawn)
	c.commitLocked(serial, next, announced, withdrawn)
	c.mu.Unlock()
	c.notifyAll(serial)
	return true
}

// mergeApply computes (base \ withdrawn) ∪ announced in one linear pass.
// All three inputs are canonically sorted and duplicate-free; the result is
// too.
func mergeApply(base, announced, withdrawn []rov.VRP) []rov.VRP {
	out := make([]rov.VRP, 0, len(base)+len(announced))
	i, w := 0, 0
	for _, v := range base {
		for w < len(withdrawn) && withdrawn[w].Compare(v) < 0 {
			w++
		}
		if w < len(withdrawn) && withdrawn[w].Compare(v) == 0 {
			continue // withdrawn
		}
		for i < len(announced) && announced[i].Compare(v) < 0 {
			out = append(out, announced[i])
			i++
		}
		if i < len(announced) && announced[i].Compare(v) == 0 {
			i++ // replaced by identical announce
		}
		out = append(out, v)
	}
	out = append(out, announced[i:]...)
	return out
}

// evictLocked drops the oldest deltas until the history fits every bound.
// Callers hold c.mu.
func (c *Cache) evictLocked() {
	for len(c.history) > 0 &&
		(len(c.history) > c.maxHist || c.histVRPs > c.maxHistVRPs || c.histBytes > c.maxHistBytes) {
		d := &c.history[0]
		c.histVRPs -= d.vrpCount()
		c.histBytes -= len(d.frame)
		c.history = c.history[1:]
	}
}

// snapshotFrame returns the current serial, session, and the shared
// serialized snapshot frame. The frame is immutable; callers write it
// as-is.
func (c *Cache) snapshotFrame() (frame []byte, serial uint32, session uint16) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapFrame, c.serial, c.session
}

// snapshotVRPs returns the current canonical VRP slice (immutable; replaced
// wholesale on update), serial, and session.
func (c *Cache) snapshotVRPs() (vrps []rov.VRP, serial uint32, session uint16) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vrps, c.serial, c.session
}

// deltaFrames returns the shared serialized frames of every delta after
// serial, oldest first, or ok=false if that serial has aged out of the
// history window. The frames are immutable; callers write them as-is.
func (c *Cache) deltaFrames(serial uint32) (frames [][]byte, current uint32, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if serial == c.serial {
		return nil, c.serial, true
	}
	found := false
	for i := range c.history {
		d := &c.history[i]
		if found || d.serial == serial+1 {
			found = true
			frames = append(frames, d.frame)
		}
	}
	if !found {
		return nil, c.serial, false
	}
	return frames, c.serial, true
}

// deltaEntries returns the deltas after serial, oldest first (slice headers
// copied; the VRP slices are shared read-only), or ok=false if that serial
// has aged out of the history window.
func (c *Cache) deltaEntries(serial uint32) (entries []delta, current uint32, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if serial == c.serial {
		return nil, c.serial, true
	}
	found := false
	for i := range c.history {
		d := &c.history[i]
		if found || d.serial == serial+1 {
			found = true
			entries = append(entries, *d)
		}
	}
	if !found {
		return nil, c.serial, false
	}
	return entries, c.serial, true
}

// deltasSince returns the concatenated deltas after serial, or ok=false if
// that serial has aged out of the history window.
func (c *Cache) deltasSince(serial uint32) (announced, withdrawn []rov.VRP, current uint32, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if serial == c.serial {
		return nil, nil, c.serial, true
	}
	found := false
	for _, d := range c.history {
		if found || d.serial == serial+1 {
			found = true
			announced = append(announced, d.announced...)
			withdrawn = append(withdrawn, d.withdrawn...)
		}
	}
	// The requested serial must be exactly one before the first delta we
	// replayed; otherwise the client is out of window.
	if !found {
		return nil, nil, c.serial, false
	}
	return announced, withdrawn, c.serial, true
}

// subscribe registers a notification handle for one connection.
// queueDepth, when non-nil, reports the connection's send-queue depth to
// the scrape-time gauges. Subscribers are spread round-robin over the
// shards.
func (c *Cache) subscribe(peer string, queueDepth func() int) *subscriber {
	sub := &subscriber{peer: peer, wake: make(chan struct{}, 1), queueDepth: queueDepth}
	shard := &c.shards[c.nextShard.Add(1)%numSubShards]
	shard.mu.Lock()
	shard.subs[sub] = struct{}{}
	shard.mu.Unlock()
	return sub
}

// unsubscribe removes a notification handle.
func (c *Cache) unsubscribe(sub *subscriber) {
	for i := range c.shards {
		shard := &c.shards[i]
		shard.mu.Lock()
		if _, ok := shard.subs[sub]; ok {
			delete(shard.subs, sub)
			shard.mu.Unlock()
			return
		}
		shard.mu.Unlock()
	}
}

// notifyAll publishes serial to every subscriber, shard by shard. Each
// offer is a store plus a non-blocking doorbell ring, so the walk holds
// each shard lock only briefly and a wedged connection costs nothing.
func (c *Cache) notifyAll(serial uint32) {
	for i := range c.shards {
		shard := &c.shards[i]
		shard.mu.Lock()
		for sub := range shard.subs {
			sub.offer(serial)
		}
		shard.mu.Unlock()
	}
}

// subscriberCount returns the number of registered subscribers.
func (c *Cache) subscriberCount() int {
	n := 0
	for i := range c.shards {
		shard := &c.shards[i]
		shard.mu.Lock()
		n += len(shard.subs)
		shard.mu.Unlock()
	}
	return n
}

// queueDepthStats sums and maxes the per-connection send-queue depths.
func (c *Cache) queueDepthStats() (total, maxDepth int) {
	for i := range c.shards {
		shard := &c.shards[i]
		shard.mu.Lock()
		for sub := range shard.subs {
			if sub.queueDepth == nil {
				continue
			}
			d := sub.queueDepth()
			total += d
			if d > maxDepth {
				maxDepth = d
			}
		}
		shard.mu.Unlock()
	}
	return total, maxDepth
}

// recordPropTime stamps a serial's creation time in the fixed ring.
// Callers hold c.mu; the ring has its own lock so readers never touch mu.
func (c *Cache) recordPropTime(serial uint32, at time.Time) {
	c.propMu.Lock()
	c.propRing[serial%propRingSize] = propEntry{serial: serial, at: at}
	c.propMu.Unlock()
}

// deltaCreatedAt returns when the delta with the given serial entered the
// cache (ok=false if it aged out of the ring).
func (c *Cache) deltaCreatedAt(serial uint32) (time.Time, bool) {
	c.propMu.RLock()
	e := c.propRing[serial%propRingSize]
	c.propMu.RUnlock()
	if e.serial != serial || e.at.IsZero() {
		return time.Time{}, false
	}
	return e.at, true
}

// observePropagation records one client's notify latency for the delta
// with the given serial (no-op when uninstrumented or aged out).
func (c *Cache) observePropagation(serial uint32) {
	met := c.met.Load()
	if met == nil {
		return
	}
	if at, ok := c.deltaCreatedAt(serial); ok {
		met.propagation.Observe(time.Since(at).Seconds())
	}
}
