package rtr

// Observability wiring for the RTR cache, server, and replication plane:
// connected-client and queue-depth gauges collected at scrape time (the
// fan-out hot path is untouched), counters for updates, evictions,
// rejections, resumptions, and cache resets, and a delta-propagation
// latency histogram measuring SetVRPs-to-router-notified per client — the
// metric a Stalloris victim would watch climb.

import (
	"repro/internal/obs"
)

// rtrMetrics holds the cache's metric handles; the cache carries it behind
// an atomic pointer (nil when uninstrumented) so hot paths reach a counter
// without locking.
type rtrMetrics struct {
	updates     *obs.Counter
	propagation *obs.Histogram
	// evictions counts slow-consumer terminations, labeled by reason
	// ("write-stall", "queue-full").
	evictions   *obs.CounterVec
	rejections  *obs.Counter
	resumptions *obs.Counter
	cacheResets *obs.Counter
	// Replication-plane counters (primary side).
	replSnapshots   *obs.Counter
	replResumptions *obs.Counter
}

// Instrument registers the cache's metrics on the hub. Call once, before
// the cache serves connections; a nil hub is a no-op.
func (c *Cache) Instrument(hub *obs.Hub) {
	r := hub.Registry()
	if c == nil || r == nil {
		return
	}
	met := &rtrMetrics{
		updates: r.Counter("rpki_rtr_updates_total",
			"Cache updates that changed the VRP set (serial bumps)."),
		propagation: r.Histogram("rpki_rtr_delta_propagation_seconds",
			"Latency from a VRP delta entering the cache to a client's serial notify being flushed.",
			obs.DurationBuckets()),
		evictions: r.CounterVec("rpki_rtr_evictions_total",
			"Connections terminated for slow consumption, by reason.", "reason"),
		rejections: r.Counter("rpki_rtr_rejections_total",
			"Connections refused over the MaxClients cap."),
		resumptions: r.Counter("rpki_rtr_resumptions_total",
			"Reconnecting clients that resumed their session from the delta history."),
		cacheResets: r.Counter("rpki_rtr_cache_resets_total",
			"Serial queries answered with Cache Reset (session mismatch or serial out of window)."),
		replSnapshots: r.Counter("rpki_rtr_replication_snapshots_total",
			"Full snapshots streamed to replica frontends."),
		replResumptions: r.Counter("rpki_rtr_replication_resumptions_total",
			"Replica frontends that resumed from their serial without a snapshot."),
	}
	r.GaugeFunc("rpki_rtr_connected_clients", "RTR connections currently served.",
		func() float64 { return float64(c.subscriberCount()) })
	r.GaugeFunc("rpki_rtr_serial", "Current cache serial number.",
		func() float64 { return float64(c.Serial()) })
	r.GaugeFunc("rpki_rtr_vrps", "VRPs currently served by the cache.",
		func() float64 { return float64(c.Len()) })
	// Aggregate queue-depth gauges: per-client labels would mint 10k+ label
	// values at fleet scale, so the scrape reports the sum and the worst
	// consumer instead.
	r.GaugeFunc("rpki_rtr_send_queue_depth_total",
		"Sum of pending responses across all connection send queues.",
		func() float64 { total, _ := c.queueDepthStats(); return float64(total) })
	r.GaugeFunc("rpki_rtr_send_queue_depth_max",
		"Deepest single connection send queue (the slowest consumer).",
		func() float64 { _, max := c.queueDepthStats(); return float64(max) })
	c.met.Store(met)
}
