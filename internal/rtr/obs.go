package rtr

// Observability wiring for the RTR cache and server: connected-client and
// queue-depth gauges collected at scrape time (the fan-out hot path is
// untouched), an update counter, and a delta-propagation latency histogram
// measuring SetVRPs-to-router-notified per client — the metric a Stalloris
// victim would watch climb.

import (
	"time"

	"repro/internal/obs"
)

// rtrMetrics holds the cache's metric handles (nil when uninstrumented;
// every update is then a nil-receiver no-op).
type rtrMetrics struct {
	updates     *obs.Counter
	propagation *obs.Histogram
}

// Instrument registers the cache's metrics on the hub. Call once, before
// the cache serves connections; a nil hub is a no-op.
func (c *Cache) Instrument(hub *obs.Hub) {
	r := hub.Registry()
	if c == nil || r == nil {
		return
	}
	met := &rtrMetrics{
		updates: r.Counter("rpki_rtr_updates_total",
			"Cache updates that changed the VRP set (serial bumps)."),
		propagation: r.Histogram("rpki_rtr_delta_propagation_seconds",
			"Latency from a VRP delta entering the cache to a client's serial notify being flushed.",
			obs.DurationBuckets()),
	}
	r.GaugeFunc("rpki_rtr_connected_clients", "RTR connections currently served.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.subs))
		})
	r.GaugeFunc("rpki_rtr_serial", "Current cache serial number.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.serial)
		})
	r.GaugeFunc("rpki_rtr_vrps", "VRPs currently served by the cache.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.vrps))
		})
	r.CollectGauges("rpki_rtr_client_queue_depth",
		"Pending serial notifies per connected client.",
		[]string{"client"}, func(emit obs.Emit) {
			c.mu.Lock()
			type sub struct {
				peer  string
				depth int
			}
			subs := make([]sub, 0, len(c.subs))
			for ch, peer := range c.subs {
				subs = append(subs, sub{peer, len(ch)})
			}
			c.mu.Unlock()
			for _, s := range subs {
				emit(float64(s.depth), s.peer)
			}
		})
	c.mu.Lock()
	c.met = met
	c.mu.Unlock()
}

// metrics returns the handle struct under the lock discipline SetVRPs and
// handle already follow (nil when uninstrumented).
func (c *Cache) metrics() *rtrMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.met
}

// deltaCreatedAt returns when the delta with the given serial entered the
// cache (ok=false if it aged out of the history window).
func (c *Cache) deltaCreatedAt(serial uint32) (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.history {
		if c.history[i].serial == serial {
			return c.history[i].createdAt, true
		}
	}
	return time.Time{}, false
}

// observePropagation records one client's notify latency for the delta
// with the given serial (no-op when uninstrumented or aged out).
func (c *Cache) observePropagation(serial uint32) {
	met := c.metrics()
	if met == nil {
		return
	}
	if at, ok := c.deltaCreatedAt(serial); ok {
		met.propagation.Observe(time.Since(at).Seconds())
	}
}
