package rtr

import (
	"bytes"
	"testing"

	"repro/internal/ipres"
	"repro/internal/rov"
)

// FuzzReplicationRead drives the replication-stream decoder with arbitrary
// wire bytes. A replica frontend reads this stream from a primary it may
// not fully trust (a compromised validator is exactly the paper's threat),
// so a malformed frame must produce an error, never a panic or an
// unbounded allocation — the frame reader checks the declared length
// against MaxReplicationPayload before allocating, and the payload parsers
// validate record counts against the actual payload size. A frame that
// decodes must survive an encode/re-decode round trip.
func FuzzReplicationRead(f *testing.F) {
	vrps := []rov.VRP{
		{Prefix: ipres.MustParsePrefix("63.160.0.0/12"), MaxLength: 13, ASN: 1239},
		{Prefix: ipres.MustParsePrefix("2001:db8::/32"), MaxLength: 48, ASN: 64500},
	}
	f.Add(AppendHelloFrame(nil, ReplHello{Session: 7, Serial: 42, HaveState: true}))
	f.Add(AppendSnapshotFrame(nil, 7, 42, vrps))
	f.Add(AppendSnapshotFrame(nil, 0, 0, nil))
	f.Add(AppendDeltaFrame(nil, 43, vrps[:1], vrps[1:]))
	f.Add(AppendDeltaFrame(nil, 44, nil, nil))
	// Truncated header, bad magic, absurd declared length.
	f.Add([]byte{replMagic, replVersion, ReplTypeDelta})
	f.Add([]byte{'X', replVersion, ReplTypeHello, 0, 0, 0, 0, 7})
	f.Add([]byte{replMagic, replVersion, ReplTypeSnapshot, 0, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadReplicationFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		switch typ {
		case ReplTypeHello:
			h, err := ParseReplicationHello(payload)
			if err != nil {
				return
			}
			buf := AppendHelloFrame(nil, h)
			typ2, payload2, err := ReadReplicationFrame(bytes.NewReader(buf))
			if err != nil || typ2 != ReplTypeHello {
				t.Fatalf("hello re-read failed: %v", err)
			}
			if h2, err := ParseReplicationHello(payload2); err != nil || h2 != h {
				t.Fatalf("hello round trip changed: %+v vs %+v (%v)", h, h2, err)
			}
		case ReplTypeSnapshot:
			session, serial, got, err := ParseReplicationSnapshot(payload)
			if err != nil {
				return
			}
			buf := AppendSnapshotFrame(nil, session, serial, got)
			_, payload2, err := ReadReplicationFrame(bytes.NewReader(buf))
			if err != nil {
				t.Fatalf("snapshot re-read failed: %v", err)
			}
			s2, ser2, got2, err := ParseReplicationSnapshot(payload2)
			if err != nil || s2 != session || ser2 != serial || len(got2) != len(got) {
				t.Fatalf("snapshot round trip changed: %v", err)
			}
			for i := range got {
				if got2[i] != got[i] {
					t.Fatalf("snapshot VRP %d changed: %v vs %v", i, got[i], got2[i])
				}
			}
		case ReplTypeDelta:
			serial, ann, wd, err := ParseReplicationDelta(payload)
			if err != nil {
				return
			}
			buf := AppendDeltaFrame(nil, serial, ann, wd)
			_, payload2, err := ReadReplicationFrame(bytes.NewReader(buf))
			if err != nil {
				t.Fatalf("delta re-read failed: %v", err)
			}
			ser2, ann2, wd2, err := ParseReplicationDelta(payload2)
			if err != nil || ser2 != serial || len(ann2) != len(ann) || len(wd2) != len(wd) {
				t.Fatalf("delta round trip changed: %v", err)
			}
		}
	})
}
