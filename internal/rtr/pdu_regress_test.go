package rtr

import (
	"bytes"
	"testing"
)

// TestReadPDUErrorReportOverflow is the minimized regression for a remote
// panic in ReadPDU: an ErrorReport whose declared encapsulated-PDU length is
// near 2^32 made the old uint32 bounds check wrap (4+encLen+4 overflowed to a
// small value), after which body[textOff:] sliced far out of range —
// panic: slice bounds out of range [4294967292:8]. A malicious or corrupted
// cache could kill a router-side client with 16 bytes.
func TestReadPDUErrorReportOverflow(t *testing.T) {
	// Header: version 0, type 10 (ErrorReport), error code 0, length 16.
	// Body: encLen 0xFFFFFFF8, then 4 more bytes so len(body) = 8.
	crasher := []byte{0, 10, 0, 0, 0, 0, 0, 16, 0xFF, 0xFF, 0xFF, 0xF8, 0, 0, 0, 0}
	p, err := ReadPDU(bytes.NewReader(crasher))
	if err == nil {
		t.Fatalf("ReadPDU accepted overflowing error report: %+v", p)
	}
}

// TestReadPDUErrorReportTextOverflow covers the second wrap site: encLen in
// range but textLen near 2^32 so textOff+4+textLen wrapped in uint32.
func TestReadPDUErrorReportTextOverflow(t *testing.T) {
	// encLen 0, textLen 0xFFFFFFF8, no text bytes.
	crasher := []byte{0, 10, 0, 0, 0, 0, 0, 16, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xF8}
	p, err := ReadPDU(bytes.NewReader(crasher))
	if err == nil {
		t.Fatalf("ReadPDU accepted overflowing error text length: %+v", p)
	}
}

// TestReadPDUErrorReportRoundTrip keeps the legitimate path working: a
// well-formed error report with text still decodes.
func TestReadPDUErrorReportRoundTrip(t *testing.T) {
	in := &PDU{Type: TypeErrorReport, Session: ErrCorruptData, ErrText: "bad pdu"}
	buf, err := in.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	out, err := ReadPDU(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("ReadPDU: %v", err)
	}
	if out.ErrText != in.ErrText || out.Session != in.Session {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}
