package manifest

import (
	"fmt"
	"math/big"
	"strings"
	"testing"
	"time"

	"repro/internal/cms"
)

func TestUnmarshalContentRejectsOversized(t *testing.T) {
	_, err := UnmarshalContent(make([]byte, cms.MaxObjectSize+1))
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized eContent: err = %v", err)
	}
	if _, err := ParseSigned(make([]byte, cms.MaxObjectSize+1)); err == nil {
		t.Fatal("oversized signed object accepted")
	}
}

func TestUnmarshalContentRejectsGiantFileList(t *testing.T) {
	epoch := time.Date(2013, 11, 21, 0, 0, 0, 0, time.UTC)
	m := &Manifest{Number: big.NewInt(1), ThisUpdate: epoch, NextUpdate: epoch.Add(time.Hour)}
	m.Entries = make([]Entry, MaxFileList+1)
	for i := range m.Entries {
		m.Entries[i].Name = fmt.Sprintf("o%06d.roa", i)
	}
	der, err := m.MarshalContent()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalContent(der); err == nil || !strings.Contains(err.Error(), "fileList entries exceeds") {
		t.Fatalf("giant fileList: err = %v", err)
	}
}
