package manifest

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/ipres"
)

var testEpoch = time.Date(2013, 11, 21, 0, 0, 0, 0, time.UTC)

func sampleFiles() map[string][]byte {
	return map[string][]byte{
		"etb.cer":          []byte("etb resource certificate"),
		"continental.cer":  []byte("continental broadband rc"),
		"roa-17054-20.roa": []byte("roa bytes"),
	}
}

func TestManifestBuildAndLookup(t *testing.T) {
	m := New(1, testEpoch, testEpoch.Add(24*time.Hour), sampleFiles())
	if len(m.Entries) != 3 {
		t.Fatalf("entries = %d", len(m.Entries))
	}
	// Entries must be sorted by name.
	names := m.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("entries not sorted")
		}
	}
	if _, ok := m.Lookup("etb.cer"); !ok {
		t.Error("lookup failed")
	}
	if _, ok := m.Lookup("absent.cer"); ok {
		t.Error("phantom entry")
	}
}

func TestManifestVerify(t *testing.T) {
	files := sampleFiles()
	m := New(1, testEpoch, testEpoch.Add(24*time.Hour), files)
	if err := m.Verify("etb.cer", files["etb.cer"]); err != nil {
		t.Error(err)
	}
	if err := m.Verify("etb.cer", []byte("tampered")); err == nil {
		t.Error("tampered content must fail")
	}
	if err := m.Verify("ghost.cer", []byte("x")); err == nil {
		t.Error("unlisted file must fail")
	}
}

func TestManifestStale(t *testing.T) {
	m := New(1, testEpoch, testEpoch.Add(24*time.Hour), nil)
	if m.Stale(testEpoch.Add(time.Hour)) {
		t.Error("fresh manifest reported stale")
	}
	if !m.Stale(testEpoch.Add(25 * time.Hour)) {
		t.Error("stale manifest reported fresh")
	}
}

func TestManifestContentRoundTrip(t *testing.T) {
	m := New(42, testEpoch, testEpoch.Add(24*time.Hour), sampleFiles())
	der, err := m.MarshalContent()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalContent(der)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Errorf("round trip changed manifest:\n%+v\n%+v", m, back)
	}
}

func TestManifestSignedRoundTrip(t *testing.T) {
	caKey := cert.MustGenerateKeyPair()
	ca, err := cert.Issue(cert.Template{
		Subject: "CA", Serial: 1,
		NotBefore: testEpoch.Add(-time.Hour), NotAfter: testEpoch.Add(24 * time.Hour),
		Resources: ipres.MustParseSet("63.160.0.0/12"), CA: true,
	}, nil, caKey, caKey)
	if err != nil {
		t.Fatal(err)
	}
	eeKey := cert.MustGenerateKeyPair()
	ee, err := cert.Issue(cert.Template{
		Subject: "mft-ee", Serial: 2,
		NotBefore: testEpoch.Add(-time.Hour), NotAfter: testEpoch.Add(24 * time.Hour),
		InheritIP: true,
	}, ca, caKey, eeKey)
	if err != nil {
		t.Fatal(err)
	}
	m := New(7, testEpoch, testEpoch.Add(24*time.Hour), sampleFiles())
	der, err := m.Sign(ee, eeKey)
	if err != nil {
		t.Fatal(err)
	}
	signed, err := ParseSigned(der)
	if err != nil {
		t.Fatal(err)
	}
	if !signed.Manifest.Equal(m) {
		t.Error("signed round trip changed manifest")
	}
	bad := append([]byte(nil), der...)
	bad[len(bad)-3] ^= 0x40
	if _, err := ParseSigned(bad); err == nil {
		t.Error("corrupted manifest must fail")
	}
}

func TestManifestEqualDiffers(t *testing.T) {
	a := New(1, testEpoch, testEpoch.Add(time.Hour), map[string][]byte{"a": []byte("1")})
	b := New(1, testEpoch, testEpoch.Add(time.Hour), map[string][]byte{"a": []byte("2")})
	if a.Equal(b) {
		t.Error("different hashes must differ")
	}
	c := New(2, testEpoch, testEpoch.Add(time.Hour), map[string][]byte{"a": []byte("1")})
	if a.Equal(c) {
		t.Error("different numbers must differ")
	}
}

func TestManifestVerifyHash(t *testing.T) {
	files := sampleFiles()
	m := New(1, testEpoch, testEpoch.Add(24*time.Hour), files)
	good := sha256.Sum256(files["etb.cer"])
	if err := m.VerifyHash("etb.cer", good); err != nil {
		t.Error(err)
	}
	var bad [32]byte
	copy(bad[:], good[:])
	bad[0] ^= 0xFF
	err := m.VerifyHash("etb.cer", bad)
	if err == nil || !strings.Contains(err.Error(), "hash mismatch") {
		t.Errorf("wrong-hash error = %v", err)
	}
	err = m.VerifyHash("ghost.cer", good)
	if err == nil || !strings.Contains(err.Error(), "not listed") {
		t.Errorf("unlisted error = %v", err)
	}
	// Verify must agree with VerifyHash on the same content.
	if got, want := fmt.Sprint(m.Verify("ghost.cer", files["etb.cer"])), fmt.Sprint(err); got != want {
		t.Errorf("Verify = %q, VerifyHash = %q", got, want)
	}
}
