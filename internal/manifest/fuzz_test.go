package manifest

import (
	"testing"
	"time"
)

// FuzzParseManifest drives both decode layers — the raw eContent decoder and
// the full CMS-wrapped path — with arbitrary bytes. Neither may panic or
// accept an entry list over MaxFileList.
func FuzzParseManifest(f *testing.F) {
	epoch := time.Date(2013, 11, 21, 0, 0, 0, 0, time.UTC)
	m := New(7, epoch, epoch.Add(24*time.Hour), map[string][]byte{
		"a.roa":  []byte("roa bytes"),
		"ca.cer": []byte("cert bytes"),
	})
	seed, err := m.MarshalContent()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{0x30, 0x00})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := UnmarshalContent(data); err == nil {
			if len(m.Entries) > MaxFileList {
				t.Fatalf("accepted %d entries over limit", len(m.Entries))
			}
		}
		_, _ = ParseSigned(data)
	})
}
