// Package manifest implements RPKI manifests (RFC 6486): per-publication-
// point listings of every object the CA currently publishes, with SHA-256
// hashes, so a relying party can detect withheld, corrupted, or stale
// objects.
//
// Manifests are the RPKI's only defense against an attacker (or a fault)
// that silently deletes objects from a repository. The paper's Side Effect 2
// — stealthy revocation by deletion — works precisely when the deleting
// party is the repository operator itself, who can reissue the manifest to
// match; manifests protect against third-party tampering, not against the
// publishing authority.
package manifest

import (
	"bytes"
	"crypto/sha256"
	"encoding/asn1"
	"fmt"
	"math/big"
	"sort"
	"time"

	"repro/internal/cert"
	"repro/internal/cms"
)

// MaxFileList bounds the number of fileList entries a decoded manifest may
// carry. The largest synthetic worlds publish a few hundred objects per
// publication point; 100k leaves real-world headroom while stopping a
// malicious authority from forcing entry-proportional allocation from a
// small declared encoding.
const MaxFileList = 100_000

// Entry is one manifest file entry.
type Entry struct {
	// Name is the file name within the publication point (no path).
	Name string
	// Hash is the SHA-256 hash of the file content.
	Hash [32]byte
}

// Manifest is the decoded content of an RPKI manifest.
type Manifest struct {
	// Number is the manifest number, monotonically increasing per CA.
	Number *big.Int
	// ThisUpdate and NextUpdate bound the manifest's freshness window.
	ThisUpdate, NextUpdate time.Time
	// Entries lists every published object, sorted by name.
	Entries []Entry
}

// New builds a manifest over the given file contents (name → bytes).
func New(number int64, thisUpdate, nextUpdate time.Time, files map[string][]byte) *Manifest {
	m := &Manifest{
		Number:     big.NewInt(number),
		ThisUpdate: thisUpdate,
		NextUpdate: nextUpdate,
		Entries:    make([]Entry, 0, len(files)),
	}
	for name, content := range files {
		m.Entries = append(m.Entries, Entry{Name: name, Hash: sha256.Sum256(content)})
	}
	sort.Slice(m.Entries, func(i, j int) bool { return m.Entries[i].Name < m.Entries[j].Name })
	return m
}

// Lookup returns the entry for name, if present.
func (m *Manifest) Lookup(name string) (Entry, bool) {
	i := sort.Search(len(m.Entries), func(i int) bool { return m.Entries[i].Name >= name })
	if i < len(m.Entries) && m.Entries[i].Name == name {
		return m.Entries[i], true
	}
	return Entry{}, false
}

// Verify checks content against the manifest entry for name. It returns an
// error if the entry is absent or the hash differs.
func (m *Manifest) Verify(name string, content []byte) error {
	return m.VerifyHash(name, sha256.Sum256(content))
}

// VerifyHash is Verify for a caller that already hashed the content — the
// relying party hashes every fetched object exactly once and checks the
// manifest (cross-check and per-object admission) against that digest.
func (m *Manifest) VerifyHash(name string, hash [32]byte) error {
	e, ok := m.Lookup(name)
	if !ok {
		return fmt.Errorf("manifest: %q not listed", name)
	}
	if hash != e.Hash {
		return fmt.Errorf("manifest: %q hash mismatch", name)
	}
	return nil
}

// Stale reports whether the manifest's nextUpdate has passed.
func (m *Manifest) Stale(now time.Time) bool { return now.After(m.NextUpdate) }

// Names returns the listed file names in order.
func (m *Manifest) Names() []string {
	out := make([]string, len(m.Entries))
	for i, e := range m.Entries {
		out[i] = e.Name
	}
	return out
}

// ASN.1 structures per RFC 6486 (fileHashAlg pinned to SHA-256).
type fileAndHash struct {
	File string `asn1:"ia5"`
	Hash asn1.BitString
}

type manifestSeq struct {
	ManifestNumber *big.Int
	ThisUpdate     time.Time `asn1:"generalized"`
	NextUpdate     time.Time `asn1:"generalized"`
	FileHashAlg    asn1.ObjectIdentifier
	FileList       []fileAndHash
}

var oidSHA256 = asn1.ObjectIdentifier{2, 16, 840, 1, 101, 3, 4, 2, 1}

// MarshalContent DER-encodes the manifest eContent.
func (m *Manifest) MarshalContent() ([]byte, error) {
	seq := manifestSeq{
		ManifestNumber: m.Number,
		ThisUpdate:     m.ThisUpdate.UTC().Truncate(time.Second),
		NextUpdate:     m.NextUpdate.UTC().Truncate(time.Second),
		FileHashAlg:    oidSHA256,
		FileList:       make([]fileAndHash, len(m.Entries)),
	}
	// One backing array for every hash copy instead of a 32-byte allocation
	// per entry; large manifests are marshaled in bulk during world
	// generation, where the per-entry garbage adds up.
	backing := make([]byte, len(m.Entries)*sha256.Size)
	for i := range m.Entries {
		h := backing[i*sha256.Size : (i+1)*sha256.Size : (i+1)*sha256.Size]
		copy(h, m.Entries[i].Hash[:])
		seq.FileList[i] = fileAndHash{
			File: m.Entries[i].Name,
			Hash: asn1.BitString{Bytes: h, BitLength: 256},
		}
	}
	return asn1.Marshal(seq)
}

// UnmarshalContent decodes a manifest eContent.
func UnmarshalContent(der []byte) (*Manifest, error) {
	if len(der) > cms.MaxObjectSize {
		return nil, fmt.Errorf("manifest: eContent %d bytes exceeds limit %d", len(der), cms.MaxObjectSize)
	}
	var seq manifestSeq
	rest, err := asn1.Unmarshal(der, &seq)
	if err != nil {
		return nil, fmt.Errorf("manifest: bad eContent: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("manifest: trailing bytes in eContent")
	}
	if !seq.FileHashAlg.Equal(oidSHA256) {
		return nil, fmt.Errorf("manifest: unsupported hash algorithm %v", seq.FileHashAlg)
	}
	if len(seq.FileList) > MaxFileList {
		return nil, fmt.Errorf("manifest: %d fileList entries exceeds limit %d", len(seq.FileList), MaxFileList)
	}
	m := &Manifest{
		Number:     seq.ManifestNumber,
		ThisUpdate: seq.ThisUpdate,
		NextUpdate: seq.NextUpdate,
		Entries:    make([]Entry, 0, len(seq.FileList)),
	}
	for _, f := range seq.FileList {
		if f.Hash.BitLength != 256 {
			return nil, fmt.Errorf("manifest: %q hash is %d bits, want 256", f.File, f.Hash.BitLength)
		}
		var e Entry
		e.Name = f.File
		copy(e.Hash[:], f.Hash.Bytes)
		m.Entries = append(m.Entries, e)
	}
	sort.Slice(m.Entries, func(i, j int) bool { return m.Entries[i].Name < m.Entries[j].Name })
	return m, nil
}

// Sign wraps the manifest in a CMS envelope signed by the EE key.
func (m *Manifest) Sign(ee *cert.ResourceCert, eeKey *cert.KeyPair) ([]byte, error) {
	content, err := m.MarshalContent()
	if err != nil {
		return nil, err
	}
	return cms.Sign(cms.OIDContentTypeManifest, content, ee, eeKey)
}

// Signed is a parsed, signature-verified manifest with its EE certificate.
type Signed struct {
	Manifest *Manifest
	EE       *cert.ResourceCert
	Raw      []byte
}

// ParseSigned decodes and signature-verifies a CMS-wrapped manifest.
func ParseSigned(der []byte) (*Signed, error) {
	if len(der) > cms.MaxObjectSize {
		return nil, fmt.Errorf("manifest: object %d bytes exceeds limit %d", len(der), cms.MaxObjectSize)
	}
	obj, err := cms.Parse(der)
	if err != nil {
		return nil, err
	}
	if !obj.ContentType.Equal(cms.OIDContentTypeManifest) {
		return nil, fmt.Errorf("manifest: content type %v is not a manifest", obj.ContentType)
	}
	m, err := UnmarshalContent(obj.Content)
	if err != nil {
		return nil, err
	}
	return &Signed{Manifest: m, EE: obj.EE, Raw: der}, nil
}

// Equal reports whether two manifests list identical content (number,
// window, and entries).
func (m *Manifest) Equal(o *Manifest) bool {
	if m.Number.Cmp(o.Number) != 0 || !m.ThisUpdate.Equal(o.ThisUpdate) || !m.NextUpdate.Equal(o.NextUpdate) {
		return false
	}
	if len(m.Entries) != len(o.Entries) {
		return false
	}
	for i := range m.Entries {
		if m.Entries[i].Name != o.Entries[i].Name || !bytes.Equal(m.Entries[i].Hash[:], o.Entries[i].Hash[:]) {
			return false
		}
	}
	return true
}
