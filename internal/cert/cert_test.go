package cert

import (
	"math/big"
	"strings"
	"testing"
	"time"

	"repro/internal/ipres"
)

var testEpoch = time.Date(2013, 11, 21, 0, 0, 0, 0, time.UTC) // HotNets '13

func testValidity() (time.Time, time.Time) {
	return testEpoch.Add(-time.Hour), testEpoch.Add(365 * 24 * time.Hour)
}

// newTestTA builds a self-signed trust anchor holding resources.
func newTestTA(t *testing.T, resources string) (*ResourceCert, *KeyPair) {
	t.Helper()
	key := MustGenerateKeyPair()
	nb, na := testValidity()
	ta, err := Issue(Template{
		Subject:   "TA",
		Serial:    1,
		NotBefore: nb,
		NotAfter:  na,
		Resources: ipres.MustParseSet(resources),
		CA:        true,
		SIA:       InfoAccess{CARepository: "rsynclite://ta.example/repo/", Manifest: "rsynclite://ta.example/repo/ta.mft"},
	}, nil, key, key)
	if err != nil {
		t.Fatal(err)
	}
	return ta, key
}

func issueChild(t *testing.T, issuer *ResourceCert, issuerKey *KeyPair, subject, resources string, serial int64, ca bool) (*ResourceCert, *KeyPair) {
	t.Helper()
	key := MustGenerateKeyPair()
	nb, na := testValidity()
	rc, err := Issue(Template{
		Subject:   subject,
		Serial:    serial,
		NotBefore: nb,
		NotAfter:  na,
		Resources: ipres.MustParseSet(resources),
		CA:        ca,
		SIA:       InfoAccess{CARepository: "rsynclite://" + subject + ".example/repo/"},
	}, issuer, issuerKey, key)
	if err != nil {
		t.Fatal(err)
	}
	return rc, key
}

func TestIssueAndParseRoundTrip(t *testing.T) {
	ta, _ := newTestTA(t, "0.0.0.0/0, ::/0")
	back, err := Parse(ta.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Subject() != "TA" || !back.IsCA() {
		t.Errorf("subject/CA lost: %v %v", back.Subject(), back.IsCA())
	}
	if !back.IPSet().Equal(ipres.MustParseSet("0.0.0.0/0, ::/0")) {
		t.Errorf("resources lost: %v", back.IPSet())
	}
	if back.SIA.CARepository != "rsynclite://ta.example/repo/" {
		t.Errorf("SIA lost: %+v", back.SIA)
	}
	if back.SIA.Manifest != "rsynclite://ta.example/repo/ta.mft" {
		t.Errorf("manifest SIA lost: %+v", back.SIA)
	}
}

func TestValidateTrustAnchor(t *testing.T) {
	ta, _ := newTestTA(t, "0.0.0.0/0")
	res, err := ValidateTrustAnchor(ta, testEpoch)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(ipres.MustParseSet("0.0.0.0/0")) {
		t.Errorf("got %v", res)
	}
	if _, err := ValidateTrustAnchor(ta, testEpoch.Add(400*24*time.Hour)); err == nil {
		t.Error("expired TA should fail")
	}
}

func TestValidateChildChain(t *testing.T) {
	ta, taKey := newTestTA(t, "0.0.0.0/0")
	arin, arinKey := issueChild(t, ta, taKey, "ARIN", "63.0.0.0/8, 8.0.0.0/8", 2, true)
	sprint, _ := issueChild(t, arin, arinKey, "Sprint", "63.160.0.0/12", 3, true)

	ctx := ValidationContext{Now: testEpoch}
	taRes, err := ValidateTrustAnchor(ta, testEpoch)
	if err != nil {
		t.Fatal(err)
	}
	arinRes, err := ValidateChild(ta, taRes, arin, ctx)
	if err != nil {
		t.Fatal(err)
	}
	sprintRes, err := ValidateChild(arin, arinRes, sprint, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !sprintRes.Equal(ipres.MustParseSet("63.160.0.0/12")) {
		t.Errorf("got %v", sprintRes)
	}
}

func TestValidateChildOverclaim(t *testing.T) {
	ta, taKey := newTestTA(t, "63.0.0.0/8")
	// Child claims space the parent does not hold.
	child, _ := issueChild(t, ta, taKey, "greedy", "64.0.0.0/8", 2, true)
	_, err := ValidateChild(ta, ipres.MustParseSet("63.0.0.0/8"), child, ValidationContext{Now: testEpoch})
	if err == nil || !strings.Contains(err.Error(), "overclaim") {
		t.Errorf("want overclaim error, got %v", err)
	}
}

func TestValidateChildShrunkenParent(t *testing.T) {
	// The essence of Side Effect 3: the child was issued when the parent
	// held /12, but validation against a *shrunken* parent set fails.
	ta, taKey := newTestTA(t, "63.0.0.0/8")
	child, _ := issueChild(t, ta, taKey, "Continental", "63.174.16.0/20", 2, true)
	full := ipres.MustParseSet("63.0.0.0/8")
	if _, err := ValidateChild(ta, full, child, ValidationContext{Now: testEpoch}); err != nil {
		t.Fatalf("should validate against full parent: %v", err)
	}
	shrunk := full.Subtract(ipres.MustParseSet("63.175.0.0/24")) // outside the child's /20
	if _, err := ValidateChild(ta, shrunk, child, ValidationContext{Now: testEpoch}); err != nil {
		t.Fatalf("hole outside child should not matter: %v", err)
	}
	shrunk2 := full.Subtract(ipres.MustParseSet("63.174.24.0/24")) // inside the child's /20
	if _, err := ValidateChild(ta, shrunk2, child, ValidationContext{Now: testEpoch}); err == nil {
		t.Fatal("hole inside child resources must invalidate")
	}
}

func TestValidateChildBadSignature(t *testing.T) {
	ta, taKey := newTestTA(t, "63.0.0.0/8")
	other, otherKey := newTestTA(t, "63.0.0.0/8")
	child, _ := issueChild(t, other, otherKey, "child", "63.1.0.0/16", 2, true)
	_, err := ValidateChild(ta, ipres.MustParseSet("63.0.0.0/8"), child, ValidationContext{Now: testEpoch})
	if err == nil {
		t.Error("cross-signed child should fail signature check")
	}
	_ = taKey
}

func TestValidateChildExpiryWindows(t *testing.T) {
	ta, taKey := newTestTA(t, "63.0.0.0/8")
	child, _ := issueChild(t, ta, taKey, "child", "63.1.0.0/16", 2, false)
	res := ipres.MustParseSet("63.0.0.0/8")
	if _, err := ValidateChild(ta, res, child, ValidationContext{Now: testEpoch.Add(-2 * time.Hour)}); err == nil {
		t.Error("not-yet-valid child should fail")
	}
	if _, err := ValidateChild(ta, res, child, ValidationContext{Now: testEpoch.Add(366 * 24 * time.Hour)}); err == nil {
		t.Error("expired child should fail")
	}
}

func TestInheritResources(t *testing.T) {
	ta, taKey := newTestTA(t, "63.160.0.0/12")
	eeKey := MustGenerateKeyPair()
	nb, na := testValidity()
	ee, err := Issue(Template{
		Subject:   "ee",
		Serial:    9,
		NotBefore: nb,
		NotAfter:  na,
		InheritIP: true,
		SIA:       InfoAccess{SignedObject: "rsynclite://ta.example/repo/obj.roa"},
	}, ta, taKey, eeKey)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ValidateChild(ta, ipres.MustParseSet("63.160.0.0/12"), ee, ValidationContext{Now: testEpoch})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(ipres.MustParseSet("63.160.0.0/12")) {
		t.Errorf("inherited resources = %v", res)
	}
}

func TestInheritAtAnchorRejected(t *testing.T) {
	key := MustGenerateKeyPair()
	nb, na := testValidity()
	ta, err := Issue(Template{
		Subject: "bad-ta", Serial: 1, NotBefore: nb, NotAfter: na,
		InheritIP: true, CA: true,
	}, nil, key, key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrustAnchor(ta, testEpoch); err == nil {
		t.Error("inherit at anchor must be rejected")
	}
}

func TestCRLRevocation(t *testing.T) {
	ta, taKey := newTestTA(t, "63.0.0.0/8")
	child, _ := issueChild(t, ta, taKey, "child", "63.1.0.0/16", 7, true)
	crl, err := IssueCRL(ta, taKey, 1, []*big.Int{big.NewInt(7)}, testEpoch, testEpoch.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if err := crl.VerifySignature(ta); err != nil {
		t.Fatal(err)
	}
	if !crl.IsRevoked(big.NewInt(7)) || crl.IsRevoked(big.NewInt(8)) {
		t.Error("revocation lookup wrong")
	}
	ctx := ValidationContext{Now: testEpoch, CRL: crl}
	if _, err := ValidateChild(ta, ipres.MustParseSet("63.0.0.0/8"), child, ctx); err == nil {
		t.Error("revoked child must fail validation")
	}
	// An empty CRL clears it.
	crl2, err := IssueCRL(ta, taKey, 2, nil, testEpoch, testEpoch.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ctx.CRL = crl2
	if _, err := ValidateChild(ta, ipres.MustParseSet("63.0.0.0/8"), child, ctx); err != nil {
		t.Errorf("unrevoked child should pass: %v", err)
	}
}

func TestCRLStaleness(t *testing.T) {
	ta, taKey := newTestTA(t, "63.0.0.0/8")
	child, _ := issueChild(t, ta, taKey, "child", "63.1.0.0/16", 7, true)
	crl, err := IssueCRL(ta, taKey, 1, nil, testEpoch.Add(-48*time.Hour), testEpoch.Add(-24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !crl.Stale(testEpoch) {
		t.Fatal("CRL should be stale")
	}
	ctx := ValidationContext{Now: testEpoch, CRL: crl, RequireFreshCRL: true}
	if _, err := ValidateChild(ta, ipres.MustParseSet("63.0.0.0/8"), child, ctx); err == nil {
		t.Error("stale CRL must fail when freshness required")
	}
	ctx.RequireFreshCRL = false
	if _, err := ValidateChild(ta, ipres.MustParseSet("63.0.0.0/8"), child, ctx); err != nil {
		t.Errorf("lenient mode should pass: %v", err)
	}
}

func TestParseRejectsNonRPKI(t *testing.T) {
	if _, err := Parse([]byte{0x30, 0x03, 0x02, 0x01, 0x01}); err == nil {
		t.Error("garbage should fail")
	}
}

func TestIssueValidation(t *testing.T) {
	key := MustGenerateKeyPair()
	nb, na := testValidity()
	if _, err := Issue(Template{Subject: "x", Serial: 1, NotBefore: na, NotAfter: nb, CA: true, Resources: ipres.MustParseSet("10.0.0.0/8")}, nil, key, key); err == nil {
		t.Error("inverted validity should fail")
	}
	if _, err := Issue(Template{Subject: "x", Serial: 1, NotBefore: nb, NotAfter: na, CA: true, Resources: ipres.MustParseSet("10.0.0.0/8")}, nil, nil, key); err == nil {
		t.Error("nil key should fail")
	}
}

func TestKeyPairSKI(t *testing.T) {
	k := MustGenerateKeyPair()
	if len(k.SKI()) != 20 || len(k.SKIString()) != 40 {
		t.Error("SKI shape wrong")
	}
	k2 := MustGenerateKeyPair()
	if k.SKIString() == k2.SKIString() {
		t.Error("distinct keys must have distinct SKIs")
	}
}

func TestASNsOnCert(t *testing.T) {
	key := MustGenerateKeyPair()
	nb, na := testValidity()
	ta, err := Issue(Template{
		Subject: "ta", Serial: 1, NotBefore: nb, NotAfter: na, CA: true,
		Resources: ipres.MustParseSet("10.0.0.0/8"),
		ASNs:      ipres.ASNSetOf(1239, 7018),
	}, nil, key, key)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(ta.Raw)
	if err != nil {
		t.Fatal(err)
	}
	if !back.ASNs.Set.Contains(1239) || !back.ASNs.Set.Contains(7018) || back.ASNs.Set.Contains(3356) {
		t.Errorf("ASNs lost: %v", back.ASNs.Set)
	}
}

func TestIssueForKeyWithoutPrivateKey(t *testing.T) {
	// The deep-whack primitive: issuing a certificate for a key whose
	// private half the issuer does NOT hold.
	ta, taKey := newTestTA(t, "63.0.0.0/8")
	victim := MustGenerateKeyPair() // pretend we only know the public key
	nb, na := testValidity()
	rc, err := IssueForKey(Template{
		Subject: "victim", Serial: 9, NotBefore: nb, NotAfter: na,
		Resources: ipres.MustParseSet("63.1.0.0/16"), CA: true,
	}, ta, taKey, victim.Public())
	if err != nil {
		t.Fatal(err)
	}
	if string(rc.Cert.SubjectKeyId) != string(victim.SKI()) {
		t.Error("SKI must derive from the subject's public key")
	}
	if err := rc.Cert.CheckSignatureFrom(ta.Cert); err != nil {
		t.Errorf("must chain from issuer: %v", err)
	}
	// Objects signed by the victim's key validate under the new cert.
	childCert, err := Issue(Template{
		Subject: "grandchild", Serial: 1, NotBefore: nb, NotAfter: na,
		Resources: ipres.MustParseSet("63.1.1.0/24"), CA: true,
	}, rc, victim, MustGenerateKeyPair())
	if err != nil {
		t.Fatal(err)
	}
	if err := childCert.Cert.CheckSignatureFrom(rc.Cert); err != nil {
		t.Errorf("victim-signed object must chain under the replacement: %v", err)
	}
	if _, err := IssueForKey(Template{Subject: "x", Serial: 1, NotBefore: nb, NotAfter: na,
		Resources: ipres.MustParseSet("10.0.0.0/8")}, ta, taKey, nil); err == nil {
		t.Error("nil public key must fail")
	}
}

func TestEffectiveResourcesMixedInherit(t *testing.T) {
	ta, taKey := newTestTA(t, "63.0.0.0/8, 2001:db8::/32")
	key := MustGenerateKeyPair()
	nb, na := testValidity()
	// Explicit IPv4, no IPv6 family at all.
	rc, err := Issue(Template{
		Subject: "v4only", Serial: 5, NotBefore: nb, NotAfter: na,
		Resources: ipres.MustParseSet("63.1.0.0/16"), CA: true,
	}, ta, taKey, key)
	if err != nil {
		t.Fatal(err)
	}
	eff := EffectiveResources(rc, ipres.MustParseSet("63.0.0.0/8, 2001:db8::/32"))
	if !eff.Equal(ipres.MustParseSet("63.1.0.0/16")) {
		t.Errorf("effective = %v", eff)
	}
}
