package cert

import (
	"crypto/ecdsa"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"math/big"
	"time"

	"repro/internal/ipres"
	"repro/internal/rfc3779"
)

// ResourceCert is a parsed RPKI resource certificate: an X.509 certificate
// carrying RFC 3779 resource extensions and RPKI SIA/AIA pointers.
type ResourceCert struct {
	// Raw is the DER encoding.
	Raw []byte
	// Cert is the underlying parsed X.509 certificate.
	Cert *x509.Certificate
	// IPBlocks are the certified IP resources (possibly inherit).
	IPBlocks rfc3779.IPAddrBlocks
	// ASNs are the certified AS resources (possibly inherit).
	ASNs rfc3779.ASChoice
	// SIA holds the subject information access pointers.
	SIA InfoAccess
	// AIA holds the authority information access pointers.
	AIA InfoAccess
	// skiKey is the SubjectKeyId as an immutable string, computed once at
	// parse time so hot paths (verify-cache keys) never re-convert it.
	skiKey string
}

// SKIKey returns the subject key identifier as an immutable string,
// suitable for map keys without a per-call allocation.
func (rc *ResourceCert) SKIKey() string { return rc.skiKey }

// IsCA reports whether this is a CA (resource-holding authority)
// certificate rather than a one-time-use EE certificate.
func (rc *ResourceCert) IsCA() bool { return rc.Cert.IsCA }

// Subject returns the subject common name.
func (rc *ResourceCert) Subject() string { return rc.Cert.Subject.CommonName }

// Issuer returns the issuer common name.
func (rc *ResourceCert) Issuer() string { return rc.Cert.Issuer.CommonName }

// SerialNumber returns the certificate serial.
func (rc *ResourceCert) SerialNumber() *big.Int { return rc.Cert.SerialNumber }

// IPSet returns the explicit IP resources (empty if all families inherit).
func (rc *ResourceCert) IPSet() ipres.Set { return rc.IPBlocks.Set() }

// NotAfter returns the end of the validity window.
func (rc *ResourceCert) NotAfter() time.Time { return rc.Cert.NotAfter }

// NotBefore returns the start of the validity window.
func (rc *ResourceCert) NotBefore() time.Time { return rc.Cert.NotBefore }

// Template collects the inputs for issuing a resource certificate.
type Template struct {
	// Subject is the subject common name. RPKI subjects carry no real-world
	// identity semantics, but meaningful names make hierarchies readable.
	Subject string
	// Serial is the certificate serial number; must be unique per issuer.
	Serial int64
	// NotBefore and NotAfter bound the validity window.
	NotBefore, NotAfter time.Time
	// Resources are the certified IP resources. Ignored if InheritIP.
	Resources ipres.Set
	// InheritIP marks all present IP families as inherit (EE certificates
	// typically inherit).
	InheritIP bool
	// ASNs are the certified AS resources (often empty for ROAs' EEs).
	ASNs ipres.ASNSet
	// InheritAS marks AS resources as inherit.
	InheritAS bool
	// CA selects a CA certificate (true) or EE certificate (false).
	CA bool
	// SIA carries the subject's publication pointers: CARepository and
	// Manifest for CAs, SignedObject for EEs.
	SIA InfoAccess
	// CRLDistributionPoint is the URI of the issuer's CRL covering this
	// certificate (absent on self-signed trust anchors).
	CRLDistributionPoint string
	// AIACAIssuers points at the issuer's certificate publication URI.
	AIACAIssuers string
}

// Issue creates and signs a resource certificate for subjectKey's public key
// using issuerKey. If issuer is nil the certificate is self-signed (a trust
// anchor). The returned certificate is parsed and ready for use.
func Issue(tmpl Template, issuer *ResourceCert, issuerKey, subjectKey *KeyPair) (*ResourceCert, error) {
	if subjectKey == nil {
		return nil, fmt.Errorf("cert: nil subject key")
	}
	return IssueForKey(tmpl, issuer, issuerKey, subjectKey.Public())
}

// IssueForKey is Issue for a subject identified only by its public key — no
// private key required. This is exactly the capability a manipulating
// ancestor uses in a deep whack (Side Effect 4): it can issue a replacement
// certificate for a distant descendant's existing key, re-rooting that
// descendant's entire signed subtree under itself, without the descendant's
// cooperation.
func IssueForKey(tmpl Template, issuer *ResourceCert, issuerKey *KeyPair, subjectPub *ecdsa.PublicKey) (*ResourceCert, error) {
	if issuerKey == nil || subjectPub == nil {
		return nil, fmt.Errorf("cert: nil key")
	}
	if tmpl.NotAfter.Before(tmpl.NotBefore) {
		return nil, fmt.Errorf("cert: inverted validity window")
	}

	var ipb rfc3779.IPAddrBlocks
	if tmpl.InheritIP {
		ipb = rfc3779.IPAddrBlocks{
			V4: &rfc3779.IPChoice{Inherit: true},
			V6: &rfc3779.IPChoice{Inherit: true},
		}
	} else {
		ipb = rfc3779.FromSet(tmpl.Resources)
	}
	ipDER, err := rfc3779.MarshalIPAddrBlocks(ipb)
	if err != nil {
		return nil, fmt.Errorf("cert: encoding IP resources: %w", err)
	}
	extensions := []pkix.Extension{{
		Id:       rfc3779.OIDIPAddrBlocks,
		Critical: true,
		Value:    ipDER,
	}}
	if tmpl.InheritAS || !tmpl.ASNs.IsEmpty() {
		asDER, err := rfc3779.MarshalASIdentifiers(rfc3779.ASChoice{Inherit: tmpl.InheritAS, Set: tmpl.ASNs})
		if err != nil {
			return nil, fmt.Errorf("cert: encoding AS resources: %w", err)
		}
		extensions = append(extensions, pkix.Extension{
			Id:       rfc3779.OIDASIdentifiers,
			Critical: true,
			Value:    asDER,
		})
	}
	if tmpl.SIA != (InfoAccess{}) {
		siaDER, err := marshalInfoAccess(tmpl.SIA)
		if err != nil {
			return nil, err
		}
		extensions = append(extensions, pkix.Extension{Id: oidSIA, Value: siaDER})
	}
	if tmpl.AIACAIssuers != "" {
		aiaDER, err := marshalInfoAccess(InfoAccess{CAIssuers: tmpl.AIACAIssuers})
		if err != nil {
			return nil, err
		}
		extensions = append(extensions, pkix.Extension{Id: oidAIA, Value: aiaDER})
	}

	x := &x509.Certificate{
		SerialNumber:          big.NewInt(tmpl.Serial),
		Subject:               pkix.Name{CommonName: tmpl.Subject},
		NotBefore:             tmpl.NotBefore,
		NotAfter:              tmpl.NotAfter,
		BasicConstraintsValid: true,
		IsCA:                  tmpl.CA,
		SubjectKeyId:          skiForPublicKey(subjectPub),
		ExtraExtensions:       extensions,
		SignatureAlgorithm:    x509.ECDSAWithSHA256,
	}
	if tmpl.CA {
		x.KeyUsage = x509.KeyUsageCertSign | x509.KeyUsageCRLSign
	} else {
		x.KeyUsage = x509.KeyUsageDigitalSignature
	}
	if tmpl.CRLDistributionPoint != "" {
		x.CRLDistributionPoints = []string{tmpl.CRLDistributionPoint}
	}

	parent := x
	if issuer != nil {
		parent = issuer.Cert
		x.AuthorityKeyId = issuer.Cert.SubjectKeyId
	}
	der, err := x509.CreateCertificate(issuerKey.x509Rand(), x, parent, subjectPub, issuerKey.Private)
	if err != nil {
		return nil, fmt.Errorf("cert: creating certificate: %w", err)
	}
	return Parse(der)
}

// Parse decodes a DER resource certificate and extracts its RPKI
// extensions. Certificates without an IPAddrBlocks extension are rejected:
// every RPKI certificate certifies resources.
func Parse(der []byte) (*ResourceCert, error) {
	x, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("cert: parsing certificate: %w", err)
	}
	rc := &ResourceCert{Raw: der, Cert: x, skiKey: string(x.SubjectKeyId)}
	var sawIP bool
	for _, ext := range x.Extensions {
		switch {
		case ext.Id.Equal(rfc3779.OIDIPAddrBlocks):
			rc.IPBlocks, err = rfc3779.UnmarshalIPAddrBlocks(ext.Value)
			if err != nil {
				return nil, err
			}
			sawIP = true
		case ext.Id.Equal(rfc3779.OIDASIdentifiers):
			rc.ASNs, err = rfc3779.UnmarshalASIdentifiers(ext.Value)
			if err != nil {
				return nil, err
			}
		case ext.Id.Equal(oidSIA):
			rc.SIA, err = unmarshalInfoAccess(ext.Value)
			if err != nil {
				return nil, err
			}
		case ext.Id.Equal(oidAIA):
			rc.AIA, err = unmarshalInfoAccess(ext.Value)
			if err != nil {
				return nil, err
			}
		}
	}
	if !sawIP {
		return nil, fmt.Errorf("cert: %q has no IPAddrBlocks extension", x.Subject.CommonName)
	}
	return rc, nil
}
