package cert

import (
	"encoding/asn1"
	"fmt"
)

// OIDs for the authority/subject information access extensions and their
// access methods, per RFC 5280 and RFC 6487.
var (
	oidAIA            = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 1, 1}
	oidSIA            = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 1, 11}
	oidADCAIssuers    = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 48, 2}
	oidADCARepository = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 48, 5}
	oidADRPKIManifest = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 48, 10}
	oidADSignedObject = asn1.ObjectIdentifier{1, 3, 6, 1, 5, 5, 7, 48, 11}
)

// InfoAccess is the decoded form of an SIA or AIA extension as used by the
// RPKI profile: a set of URI access descriptions.
type InfoAccess struct {
	// CAIssuers is the AIA pointer to the issuer's certificate (AIA only).
	CAIssuers string
	// CARepository is the publication point this CA publishes into
	// (SIA on CA certificates).
	CARepository string
	// Manifest is the URI of this CA's manifest (SIA on CA certificates).
	Manifest string
	// SignedObject is the URI of the object an EE certificate signs
	// (SIA on EE certificates).
	SignedObject string
}

type accessDescription struct {
	Method   asn1.ObjectIdentifier
	Location asn1.RawValue
}

func uriGeneralName(uri string) asn1.RawValue {
	return asn1.RawValue{
		Class: asn1.ClassContextSpecific,
		Tag:   6, // uniformResourceIdentifier IA5String
		Bytes: []byte(uri),
	}
}

// marshalInfoAccess encodes the non-empty fields of ia as an
// AuthorityInfoAccessSyntax / SubjectInfoAccessSyntax value.
func marshalInfoAccess(ia InfoAccess) ([]byte, error) {
	var ads []accessDescription
	add := func(oid asn1.ObjectIdentifier, uri string) {
		if uri != "" {
			ads = append(ads, accessDescription{Method: oid, Location: uriGeneralName(uri)})
		}
	}
	add(oidADCAIssuers, ia.CAIssuers)
	add(oidADCARepository, ia.CARepository)
	add(oidADRPKIManifest, ia.Manifest)
	add(oidADSignedObject, ia.SignedObject)
	if len(ads) == 0 {
		return nil, fmt.Errorf("cert: empty info access")
	}
	return asn1.Marshal(ads)
}

// unmarshalInfoAccess decodes an SIA/AIA extension value.
func unmarshalInfoAccess(der []byte) (InfoAccess, error) {
	var ads []accessDescription
	rest, err := asn1.Unmarshal(der, &ads)
	if err != nil {
		return InfoAccess{}, fmt.Errorf("cert: bad info access: %w", err)
	}
	if len(rest) != 0 {
		return InfoAccess{}, fmt.Errorf("cert: trailing bytes in info access")
	}
	var ia InfoAccess
	for _, ad := range ads {
		if ad.Location.Class != asn1.ClassContextSpecific || ad.Location.Tag != 6 {
			continue // not a URI GeneralName; the RPKI profile only uses URIs
		}
		uri := string(ad.Location.Bytes)
		switch {
		case ad.Method.Equal(oidADCAIssuers):
			ia.CAIssuers = uri
		case ad.Method.Equal(oidADCARepository):
			ia.CARepository = uri
		case ad.Method.Equal(oidADRPKIManifest):
			ia.Manifest = uri
		case ad.Method.Equal(oidADSignedObject):
			ia.SignedObject = uri
		}
	}
	return ia, nil
}
