// Package cert implements RPKI resource certificates per the RFC 6487
// profile on top of the standard library's crypto/x509: CA and end-entity
// issuance carrying RFC 3779 resource extensions, SIA/AIA repository
// pointers, CRLs, and resource-aware path validation.
//
// Every certificate in the RPKI binds a public key to a set of Internet
// number resources. A certificate is valid only if its resources are covered
// by its issuer's resources — the property that lets a parent authority
// unilaterally shrink or revoke what a child can attest to.
package cert

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha1"
	"crypto/x509"
	"encoding/hex"
	"fmt"
	"io"
)

// KeyPair is an ECDSA P-256 key pair together with its RFC 6487 key
// identifier (the SHA-1 hash of the subjectPublicKeyInfo).
type KeyPair struct {
	Private *ecdsa.PrivateKey
	ski     [20]byte
	// det marks a key derived by DeterministicKeyPair: it signs with the
	// constant random stream, making every signature reproducible.
	det bool
}

// GenerateKeyPair creates a fresh ECDSA P-256 key pair. If rng is nil,
// crypto/rand.Reader is used.
func GenerateKeyPair(rng io.Reader) (*KeyPair, error) {
	if rng == nil {
		rng = rand.Reader
	}
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rng)
	if err != nil {
		return nil, fmt.Errorf("cert: generating key: %w", err)
	}
	return newKeyPair(priv)
}

// MustGenerateKeyPair is GenerateKeyPair(nil) that panics on error.
func MustGenerateKeyPair() *KeyPair {
	kp, err := GenerateKeyPair(nil)
	if err != nil {
		panic(err)
	}
	return kp
}

func newKeyPair(priv *ecdsa.PrivateKey) (*KeyPair, error) {
	spki, err := x509.MarshalPKIXPublicKey(&priv.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("cert: marshaling public key: %w", err)
	}
	kp := &KeyPair{Private: priv}
	kp.ski = sha1.Sum(spki)
	return kp, nil
}

// Public returns the public key.
func (k *KeyPair) Public() *ecdsa.PublicKey { return &k.Private.PublicKey }

// signRand returns the random stream signatures draw nonces from: the
// constant stream for deterministic keys (derandomized signing), the
// system CSPRNG otherwise.
func (k *KeyPair) signRand() io.Reader {
	if k.det {
		return zeroReader{}
	}
	return rand.Reader
}

// x509Rand is signRand for the x509 creation APIs, which accept nil and
// substitute the system CSPRNG themselves.
func (k *KeyPair) x509Rand() io.Reader {
	if k.det {
		return zeroReader{}
	}
	return nil
}

// SignDigest signs a precomputed digest with the private key, producing an
// ASN.1 DER signature. Deterministic keys yield deterministic signatures.
func (k *KeyPair) SignDigest(digest []byte) ([]byte, error) {
	return ecdsa.SignASN1(k.signRand(), k.Private, digest)
}

// SKI returns the subject key identifier bytes.
func (k *KeyPair) SKI() []byte { return k.ski[:] }

// SKIString returns the subject key identifier as lowercase hex, the
// conventional RPKI subject name.
func (k *KeyPair) SKIString() string { return hex.EncodeToString(k.ski[:]) }

// skiForPublicKey computes the RFC 6487 subject key identifier (SHA-1 of
// the subjectPublicKeyInfo) for an arbitrary public key.
func skiForPublicKey(pub *ecdsa.PublicKey) []byte {
	spki, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return nil
	}
	sum := sha1.Sum(spki)
	return sum[:]
}
