// Deterministic key derivation and signing for seeded world generation.
//
// Scaled synthetic worlds (internal/modelgen) must be byte-identical for a
// given seed so that generation can be verified, cached on disk, and
// compared across machines. Two sources of nondeterminism in the stock
// crypto stack prevent that: ecdsa.GenerateKey consumes a randomized amount
// of the random stream (randutil.MaybeReadByte), and ECDSA signing draws a
// random nonce per signature.
//
// Both are eliminated here without leaving the standard library:
//
//   - DeterministicKeyPair derives the P-256 scalar directly from a seed via
//     counter-mode SHA-256, validating candidates with crypto/ecdh (which
//     rejects zero and out-of-range scalars), so the same seed always yields
//     the same key.
//
//   - Keys so derived sign with an all-zeros "random" stream. Go's ECDSA is
//     hedged: the nonce is an HMAC-DRBG output keyed by the private key, the
//     digest, AND the random bytes — with constant random bytes this
//     collapses to RFC 6979-style derandomized signing (nonce a pure
//     function of key and digest), which stays secure and makes every
//     signature, certificate and CRL byte-reproducible. The constant stream
//     is immune to MaybeReadByte's random offset precisely because every
//     byte is equal.
//
// Keys from GenerateKeyPair are untouched: they keep randomized signing.
package cert

import (
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"
)

// zeroReader is the constant random stream deterministic keys sign with.
type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

// DeterministicKeyPair derives an ECDSA P-256 key pair from seed. The same
// seed always produces the same key, and signatures made with the key are
// themselves deterministic (derandomized, RFC 6979-style). Use only for
// synthetic worlds and tests; production keys come from GenerateKeyPair.
func DeterministicKeyPair(seed []byte) (*KeyPair, error) {
	var ctr [8]byte
	h := sha256.New()
	for i := uint64(0); ; i++ {
		binary.BigEndian.PutUint64(ctr[:], i)
		h.Reset()
		h.Write(seed)
		h.Write(ctr[:])
		candidate := h.Sum(nil)
		// ecdh validates the scalar: it rejects 0 and values >= the group
		// order, so rejection sampling here is exact, and it hands back the
		// public point without touching the deprecated curve API.
		ek, err := ecdh.P256().NewPrivateKey(candidate)
		if err != nil {
			continue
		}
		pub := ek.PublicKey().Bytes() // uncompressed: 0x04 || X || Y
		priv := &ecdsa.PrivateKey{
			PublicKey: ecdsa.PublicKey{
				Curve: elliptic.P256(),
				X:     new(big.Int).SetBytes(pub[1:33]),
				Y:     new(big.Int).SetBytes(pub[33:65]),
			},
			D: new(big.Int).SetBytes(candidate),
		}
		kp, err := newKeyPair(priv)
		if err != nil {
			return nil, err
		}
		kp.det = true
		return kp, nil
	}
}

// DeterministicKeyPairString is DeterministicKeyPair for a string seed.
func DeterministicKeyPairString(seed string) (*KeyPair, error) {
	return DeterministicKeyPair([]byte(seed))
}

// MustDeterministicKeyPair is DeterministicKeyPair that panics on error.
func MustDeterministicKeyPair(seed []byte) *KeyPair {
	kp, err := DeterministicKeyPair(seed)
	if err != nil {
		panic(fmt.Errorf("cert: deterministic key: %w", err))
	}
	return kp
}
