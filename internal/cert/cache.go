package cert

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"
)

// VerifyCache memoizes signature verifications across validation passes.
//
// A relying party that polls (the monitor loop, the Side Effect 7 timeline)
// re-validates the same unchanged objects every tick; the public-key
// operations dominate that cost. A signature check is a pure function of the
// signed bytes and the signer's key, so its outcome can be cached under the
// key (SHA-256 of the object, issuer subject-key-identifier) — unlike the
// time-, CRL- and resource-containment checks, which must stay fresh and are
// therefore never cached here.
//
// The cache is safe for concurrent use and grows without bound; it is keyed
// by content hash, so republished (mutated) objects miss naturally rather
// than returning stale verdicts. Entries are single-flight: concurrent
// lookups of the same key block on one verification instead of duplicating
// the public-key operation, which also keeps the hit/miss counters exact.
type VerifyCache struct {
	mu           sync.RWMutex
	verdicts     map[verifyKey]*verdictEntry
	hits, misses atomic.Uint64
}

type verifyKey struct {
	object [32]byte // SHA-256 of the signed object's DER
	issuer string   // issuer SubjectKeyId (raw bytes)
}

type verdictEntry struct {
	once sync.Once
	err  error
}

// NewVerifyCache returns an empty cache.
func NewVerifyCache() *VerifyCache {
	return &VerifyCache{verdicts: make(map[verifyKey]*verdictEntry)}
}

// Memoize returns the cached verdict for (objectHash, issuer), running
// verify exactly once per key across all goroutines. A nil cache runs
// verify directly.
func (c *VerifyCache) Memoize(objectHash [32]byte, issuer *ResourceCert, verify func() error) error {
	if c == nil {
		return verify()
	}
	key := verifyKey{object: objectHash, issuer: issuer.SKIKey()}
	c.mu.RLock()
	e, ok := c.verdicts[key]
	c.mu.RUnlock()
	if !ok {
		c.mu.Lock()
		e, ok = c.verdicts[key]
		if !ok {
			e = &verdictEntry{}
			c.verdicts[key] = e
		}
		c.mu.Unlock()
	}
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.err = verify() })
	return e.err
}

// CheckChildSignature is child.Cert.CheckSignatureFrom(issuer.Cert) with
// memoization.
func (c *VerifyCache) CheckChildSignature(issuer, child *ResourceCert) error {
	if c == nil {
		return child.Cert.CheckSignatureFrom(issuer.Cert)
	}
	return c.Memoize(sha256.Sum256(child.Raw), issuer, func() error {
		return child.Cert.CheckSignatureFrom(issuer.Cert)
	})
}

// VerifyCRL is crl.VerifySignature(issuer) with memoization.
func (c *VerifyCache) VerifyCRL(issuer *ResourceCert, crl *CRL) error {
	if c == nil {
		return crl.VerifySignature(issuer)
	}
	return c.Memoize(sha256.Sum256(crl.Raw), issuer, func() error {
		return crl.VerifySignature(issuer)
	})
}

// Len returns the number of cached verdicts.
func (c *VerifyCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.verdicts)
}

// Stats returns the cumulative hit and miss counts.
func (c *VerifyCache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}
