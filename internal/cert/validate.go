package cert

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ipres"
)

// Validation errors distinguish why a certificate failed, because the
// paper's side effects hinge on the difference between a signature failure,
// an expiry, a revocation, and a resource-containment failure (the vector
// for targeted whacking).
var (
	ErrBadSignature     = errors.New("cert: signature verification failed")
	ErrNotYetValid      = errors.New("cert: not yet valid")
	ErrExpired          = errors.New("cert: expired")
	ErrRevoked          = errors.New("cert: revoked")
	ErrOverclaim        = errors.New("cert: resources not covered by issuer (overclaim)")
	ErrNotCA            = errors.New("cert: issuer is not a CA")
	ErrInheritAtAnchor  = errors.New("cert: trust anchor cannot inherit resources")
	ErrStaleCRL         = errors.New("cert: issuer CRL is stale")
	ErrMissingResources = errors.New("cert: no resources after inheritance")
)

// ValidationContext carries the ambient inputs for path validation.
type ValidationContext struct {
	// Now is the validation time.
	Now time.Time
	// CRL, if non-nil, is the issuer's current CRL; a child whose serial
	// appears on it is rejected. A nil CRL skips revocation checking
	// (trust-anchor level).
	CRL *CRL
	// RequireFreshCRL rejects the chain when the supplied CRL is stale.
	RequireFreshCRL bool
	// Cache, if non-nil, memoizes the signature verifications (and only
	// those — freshness, revocation and containment are always re-checked).
	Cache *VerifyCache
}

// EffectiveResources resolves the IP resources a certificate actually holds,
// applying RFC 3779 inheritance from the issuer's effective resources.
func EffectiveResources(rc *ResourceCert, issuerEffective ipres.Set) ipres.Set {
	out := ipres.EmptySet()
	if rc.IPBlocks.V4 != nil {
		if rc.IPBlocks.V4.Inherit {
			out = out.Union(issuerEffective.Family(ipres.IPv4))
		} else {
			out = out.Union(rc.IPBlocks.V4.Set)
		}
	}
	if rc.IPBlocks.V6 != nil {
		if rc.IPBlocks.V6.Inherit {
			out = out.Union(issuerEffective.Family(ipres.IPv6))
		} else {
			out = out.Union(rc.IPBlocks.V6.Set)
		}
	}
	return out
}

// ValidateChild checks that child is currently a valid certificate issued by
// issuer whose effective resources are issuerEffective: signature, validity
// window, revocation, CA bit, and RFC 3779 resource containment. It returns
// the child's effective resources on success.
//
// Resource containment is the heart of the RPKI's least-privilege design —
// and of the targeted-whacking attacks: when a parent reissues a child RC
// with a shrunken resource set, every descendant object whose resources fall
// outside the new set fails exactly this check.
func ValidateChild(issuer *ResourceCert, issuerEffective ipres.Set, child *ResourceCert, ctx ValidationContext) (ipres.Set, error) {
	if !issuer.IsCA() {
		return ipres.Set{}, fmt.Errorf("%w: %q", ErrNotCA, issuer.Subject())
	}
	if err := ctx.Cache.CheckChildSignature(issuer, child); err != nil {
		return ipres.Set{}, fmt.Errorf("%w: %q: %v", ErrBadSignature, child.Subject(), err)
	}
	if ctx.Now.Before(child.Cert.NotBefore) {
		return ipres.Set{}, fmt.Errorf("%w: %q (notBefore %v)", ErrNotYetValid, child.Subject(), child.Cert.NotBefore)
	}
	if ctx.Now.After(child.Cert.NotAfter) {
		return ipres.Set{}, fmt.Errorf("%w: %q (notAfter %v)", ErrExpired, child.Subject(), child.Cert.NotAfter)
	}
	if ctx.CRL != nil {
		if err := ctx.Cache.VerifyCRL(issuer, ctx.CRL); err != nil {
			return ipres.Set{}, fmt.Errorf("%w: CRL: %v", ErrBadSignature, err)
		}
		if ctx.RequireFreshCRL && ctx.CRL.Stale(ctx.Now) {
			return ipres.Set{}, fmt.Errorf("%w: nextUpdate %v", ErrStaleCRL, ctx.CRL.List.NextUpdate)
		}
		if ctx.CRL.IsRevoked(child.Cert.SerialNumber) {
			return ipres.Set{}, fmt.Errorf("%w: %q serial %v", ErrRevoked, child.Subject(), child.Cert.SerialNumber)
		}
	}
	effective := EffectiveResources(child, issuerEffective)
	if effective.IsEmpty() {
		return ipres.Set{}, fmt.Errorf("%w: %q", ErrMissingResources, child.Subject())
	}
	// Explicit (non-inherited) resources must be covered by the issuer.
	explicit := child.IPBlocks.Set()
	if !issuerEffective.Covers(explicit) {
		over := explicit.Subtract(issuerEffective)
		return ipres.Set{}, fmt.Errorf("%w: %q claims %v beyond issuer", ErrOverclaim, child.Subject(), over)
	}
	return effective, nil
}

// ValidateTrustAnchor checks a self-signed trust-anchor certificate and
// returns its effective resources.
func ValidateTrustAnchor(ta *ResourceCert, now time.Time) (ipres.Set, error) {
	if err := ta.Cert.CheckSignatureFrom(ta.Cert); err != nil {
		return ipres.Set{}, fmt.Errorf("%w: trust anchor %q: %v", ErrBadSignature, ta.Subject(), err)
	}
	if now.Before(ta.Cert.NotBefore) {
		return ipres.Set{}, fmt.Errorf("%w: trust anchor %q", ErrNotYetValid, ta.Subject())
	}
	if now.After(ta.Cert.NotAfter) {
		return ipres.Set{}, fmt.Errorf("%w: trust anchor %q", ErrExpired, ta.Subject())
	}
	if !ta.IsCA() {
		return ipres.Set{}, fmt.Errorf("%w: trust anchor %q", ErrNotCA, ta.Subject())
	}
	if ta.IPBlocks.HasInherit() {
		return ipres.Set{}, fmt.Errorf("%w: %q", ErrInheritAtAnchor, ta.Subject())
	}
	res := ta.IPBlocks.Set()
	if res.IsEmpty() {
		return ipres.Set{}, fmt.Errorf("%w: trust anchor %q", ErrMissingResources, ta.Subject())
	}
	return res, nil
}
