package cert

import (
	"crypto/sha256"
	"math/big"
	"sync"
	"testing"
)

func TestVerifyCacheMemoizesChildSignature(t *testing.T) {
	ta, taKey := newTestTA(t, "10.0.0.0/8")
	child, _ := issueChild(t, ta, taKey, "child", "10.1.0.0/16", 2, true)

	c := NewVerifyCache()
	for i := 0; i < 3; i++ {
		if err := c.CheckChildSignature(ta, child); err != nil {
			t.Fatalf("pass %d: %v", i, err)
		}
	}
	if hits, misses := c.Stats(); hits != 2 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 2/1", hits, misses)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestVerifyCacheCachesFailures(t *testing.T) {
	ta, taKey := newTestTA(t, "10.0.0.0/8")
	other, _ := newTestTA(t, "10.0.0.0/8") // different key, same subject
	child, _ := issueChild(t, ta, taKey, "child", "10.1.0.0/16", 2, false)

	c := NewVerifyCache()
	if err := c.CheckChildSignature(other, child); err == nil {
		t.Fatal("signature from wrong issuer verified")
	}
	if err := c.CheckChildSignature(other, child); err == nil {
		t.Fatal("cached verdict dropped the failure")
	}
	// The genuine issuer is a distinct cache key and must still succeed.
	if err := c.CheckChildSignature(ta, child); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2 (one per issuer)", c.Len())
	}
}

func TestVerifyCacheCRL(t *testing.T) {
	ta, taKey := newTestTA(t, "10.0.0.0/8")
	nb, na := testValidity()
	crl, err := IssueCRL(ta, taKey, 1, []*big.Int{big.NewInt(7)}, nb, na)
	if err != nil {
		t.Fatal(err)
	}
	c := NewVerifyCache()
	for i := 0; i < 2; i++ {
		if err := c.VerifyCRL(ta, crl); err != nil {
			t.Fatalf("pass %d: %v", i, err)
		}
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestVerifyCacheSingleFlight hammers one key from many goroutines: the
// underlying verification must run exactly once, and the counters must show
// exactly one miss.
func TestVerifyCacheSingleFlight(t *testing.T) {
	ta, taKey := newTestTA(t, "10.0.0.0/8")
	child, _ := issueChild(t, ta, taKey, "child", "10.1.0.0/16", 2, false)
	hash := sha256.Sum256(child.Raw)

	c := NewVerifyCache()
	var calls int
	var mu sync.Mutex
	verify := func() error {
		mu.Lock()
		calls++
		mu.Unlock()
		return child.Cert.CheckSignatureFrom(ta.Cert)
	}

	const goroutines = 32
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Memoize(hash, ta, verify); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	if calls != 1 {
		t.Errorf("verify ran %d times, want 1", calls)
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != goroutines-1 {
		t.Errorf("hits=%d misses=%d, want %d/1", hits, misses, goroutines-1)
	}
}

func TestVerifyCacheNilSafe(t *testing.T) {
	ta, taKey := newTestTA(t, "10.0.0.0/8")
	child, _ := issueChild(t, ta, taKey, "child", "10.1.0.0/16", 2, false)
	var c *VerifyCache
	if err := c.CheckChildSignature(ta, child); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Errorf("nil cache Len = %d", c.Len())
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 0 {
		t.Errorf("nil cache stats %d/%d", hits, misses)
	}
}
