package cert

import (
	"crypto/x509"
	"fmt"
	"math/big"
	"time"
)

// CRL is a parsed certificate revocation list issued by an RPKI CA.
// Revocation is the traditional, transparent way for an authority to whack a
// child object (Side Effect 1 of the paper); the CRL is the public record
// that relying parties could monitor for abusive revocations.
type CRL struct {
	// Raw is the DER encoding.
	Raw []byte
	// List is the parsed revocation list.
	List *x509.RevocationList
}

// IssueCRL creates and signs a CRL listing the given revoked serial numbers.
func IssueCRL(issuer *ResourceCert, issuerKey *KeyPair, number int64, revoked []*big.Int, thisUpdate, nextUpdate time.Time) (*CRL, error) {
	entries := make([]x509.RevocationListEntry, len(revoked))
	for i, serial := range revoked {
		entries[i] = x509.RevocationListEntry{
			SerialNumber:   serial,
			RevocationTime: thisUpdate,
		}
	}
	tmpl := &x509.RevocationList{
		Number:                    big.NewInt(number),
		ThisUpdate:                thisUpdate,
		NextUpdate:                nextUpdate,
		RevokedCertificateEntries: entries,
		SignatureAlgorithm:        x509.ECDSAWithSHA256,
	}
	der, err := x509.CreateRevocationList(issuerKey.x509Rand(), tmpl, issuer.Cert, issuerKey.Private)
	if err != nil {
		return nil, fmt.Errorf("cert: creating CRL: %w", err)
	}
	return ParseCRL(der)
}

// ParseCRL decodes a DER-encoded CRL.
func ParseCRL(der []byte) (*CRL, error) {
	list, err := x509.ParseRevocationList(der)
	if err != nil {
		return nil, fmt.Errorf("cert: parsing CRL: %w", err)
	}
	return &CRL{Raw: der, List: list}, nil
}

// VerifySignature checks that the CRL was signed by issuer.
func (c *CRL) VerifySignature(issuer *ResourceCert) error {
	return c.List.CheckSignatureFrom(issuer.Cert)
}

// IsRevoked reports whether serial appears on the list.
func (c *CRL) IsRevoked(serial *big.Int) bool {
	for _, e := range c.List.RevokedCertificateEntries {
		if e.SerialNumber.Cmp(serial) == 0 {
			return true
		}
	}
	return false
}

// Stale reports whether the CRL's nextUpdate has passed at time now.
func (c *CRL) Stale(now time.Time) bool {
	return now.After(c.List.NextUpdate)
}
