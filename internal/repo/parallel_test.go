package repo

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"
)

// TestFetchAllConcurrencyEquivalence checks that sharded concurrent fetches
// return exactly what a single pipelined connection returns, for shard
// counts below, at, and above the object count.
func TestFetchAllConcurrencyEquivalence(t *testing.T) {
	files := map[string][]byte{}
	for i := 0; i < 23; i++ {
		files[fmt.Sprintf("obj-%02d.roa", i)] = []byte(strings.Repeat("x", i+1))
	}
	uri, _, _ := startTestServer(t, files)
	ctx := context.Background()

	base := &Client{Timeout: 5 * time.Second}
	want, err := base.FetchAll(ctx, uri)
	if err != nil {
		t.Fatal(err)
	}
	for _, conc := range []int{2, 4, 23, 64} {
		c := &Client{Timeout: 5 * time.Second, Concurrency: conc}
		got, err := c.FetchAll(ctx, uri)
		if err != nil {
			t.Fatalf("concurrency=%d: %v", conc, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("concurrency=%d returned different contents", conc)
		}
	}
}

// phantomServer speaks just enough rsynclite to advertise objects in LIST
// that then fail on GET — the disappeared-between-LIST-and-GET race that the
// real server cannot be made to exhibit deterministically.
func phantomServer(t *testing.T, files map[string][]byte, phantoms []string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	isPhantom := map[string]bool{}
	for _, name := range phantoms {
		isPhantom[name] = true
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				r := bufio.NewReader(conn)
				for {
					line, err := r.ReadString('\n')
					if err != nil {
						return
					}
					fields := strings.Fields(line)
					switch {
					case len(fields) == 2 && fields[0] == "LIST":
						names := make([]string, 0, len(files))
						for name := range files {
							names = append(names, name)
						}
						sort.Strings(names)
						fmt.Fprintf(conn, "OK %d\n", len(names))
						for _, name := range names {
							fmt.Fprintf(conn, "%s %d\n", name, len(files[name]))
						}
					case len(fields) == 3 && fields[0] == "GET":
						content, ok := files[fields[2]]
						if !ok || isPhantom[fields[2]] {
							fmt.Fprintf(conn, "ERR no such object %q\n", fields[2])
							continue
						}
						fmt.Fprintf(conn, "OK %d\n", len(content))
						conn.Write(content)
					default:
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestFetchAllConcurrentPartialFailure checks that objects failing on GET
// yield the same deterministic error and partial result regardless of shard
// count.
func TestFetchAllConcurrentPartialFailure(t *testing.T) {
	files := map[string][]byte{}
	for i := 0; i < 8; i++ {
		files[fmt.Sprintf("obj-%d.roa", i)] = []byte("content")
	}
	addr := phantomServer(t, files, []string{"obj-3.roa", "obj-5.roa"})
	uri := URI{Host: addr, Module: "m"}
	ctx := context.Background()

	run := func(conc int) (map[string][]byte, error) {
		c := &Client{Timeout: 5 * time.Second, Concurrency: conc}
		return c.FetchAll(ctx, uri)
	}
	want, wantErr := run(1)
	if wantErr == nil {
		t.Fatal("phantom objects should surface an error")
	}
	if !strings.Contains(wantErr.Error(), "obj-3.roa") {
		t.Fatalf("error should name the smallest failing object, got %v", wantErr)
	}
	if len(want) != 6 {
		t.Fatalf("partial result has %d objects, want 6", len(want))
	}
	for _, conc := range []int{2, 4, 8} {
		got, err := run(conc)
		if err == nil || err.Error() != wantErr.Error() {
			t.Errorf("concurrency=%d error = %v, want %v", conc, err, wantErr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("concurrency=%d partial result differs", conc)
		}
	}
}

// TestFetchAllEmptyModule covers the zero-object path at high concurrency.
func TestFetchAllEmptyModule(t *testing.T) {
	uri, _, _ := startTestServer(t, nil)
	c := &Client{Timeout: 5 * time.Second, Concurrency: 8}
	got, err := c.FetchAll(context.Background(), uri)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d objects from empty module", len(got))
	}
}

// TestServerDropsIdleConnection checks the per-request read deadline: a
// connection that goes silent is closed after ReadTimeout.
func TestServerDropsIdleConnection(t *testing.T) {
	store := NewStore()
	store.Put("a.cer", []byte("bytes"))
	srv := NewServer()
	srv.ReadTimeout = 100 * time.Millisecond
	srv.AddModule("m", store, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing; the server must hang up on its own.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept an idle connection past its read timeout")
	}
}

// TestServerReadTimeoutReArmsPerRequest checks that the deadline applies per
// request, not per connection: a client issuing requests at a pace slower
// than the total-connection budget but faster than the per-request timeout
// is never cut off.
func TestServerReadTimeoutReArmsPerRequest(t *testing.T) {
	store := NewStore()
	store.Put("a.cer", []byte("bytes"))
	srv := NewServer()
	srv.ReadTimeout = 300 * time.Millisecond
	srv.AddModule("m", store, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	// Six requests, 150ms apart: 900ms of connection lifetime, every gap
	// inside the 300ms per-request deadline. An absolute connection
	// deadline would kill this after the second request.
	for i := 0; i < 6; i++ {
		time.Sleep(150 * time.Millisecond)
		if _, err := fmt.Fprintf(conn, "STAT m a.cer\n"); err != nil {
			t.Fatalf("request %d write: %v", i, err)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("request %d read: %v", i, err)
		}
		if !strings.HasPrefix(line, "OK") {
			t.Fatalf("request %d response %q", i, line)
		}
	}
}
