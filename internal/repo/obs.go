package repo

// Observability wiring for the repository client: scrape-time metrics over
// the counters the client already keeps (no new hot-path work), per-point
// breaker state gauges collected on scrape, and flight-recorder events for
// retries, breaker transitions and fast-fails.

import (
	"repro/internal/obs"
)

// breakerEventKinds maps every breaker state to the flight-recorder event
// recorded when a breaker enters it — the rpki-lint metricscoverage rule
// keeps this table exhaustive, so adding a state without an event kind is
// a build-time lint failure, not a silent observability gap.
var breakerEventKinds = map[BreakerState]obs.EventKind{
	BreakerClosed:   obs.EventBreakerClosed,
	BreakerOpen:     obs.EventBreakerOpen,
	BreakerHalfOpen: obs.EventBreakerHalfOpen,
}

// Instrument attaches the observability plane to the client: retry,
// breaker-trip, fast-fail and bytes-fetched series are read from the
// client's existing atomic counters at scrape time (zero added cost per
// request), per-point breaker states are collected on scrape, and every
// retry and breaker transition drops an event into the flight recorder.
// Call once, before the client serves requests; a nil hub is a no-op.
func (c *Client) Instrument(hub *obs.Hub) {
	r := hub.Registry()
	if c == nil || r == nil {
		return
	}
	c.rec = hub.Recorder()
	r.CounterFunc("rpki_repo_retries_total",
		"Repository requests retried after a transport failure.",
		func() float64 { return float64(c.retries.Load()) })
	r.CounterFunc("rpki_repo_fetched_bytes_total",
		"Object bytes fetched from repositories.",
		func() float64 { return float64(c.fetchedBytes.Load()) })
	r.CounterFunc("rpki_repo_breaker_trips_total",
		"Circuit-breaker transitions to open.",
		func() float64 { return float64(c.Breakers.Trips()) })
	r.CounterFunc("rpki_repo_breaker_fast_fails_total",
		"Requests refused while a publication point's breaker was open.",
		func() float64 { return float64(c.Breakers.FastFails()) })
	r.CollectGauges("rpki_repo_breaker_state",
		"Circuit-breaker state per publication point (0 closed, 1 open, 2 half-open).",
		[]string{"point"}, func(emit obs.Emit) {
			for key, state := range c.Breakers.States() {
				emit(float64(state), key)
			}
		})
	rec := c.rec
	c.Breakers.Observe(
		func(key string, from, to BreakerState) {
			rec.Recordf(breakerEventKinds[to], key, "breaker %s -> %s", from, to)
		},
		func(key string) {
			rec.Record(obs.EventBreakerFastFail, key, "request refused while breaker open")
		})
}

// countBytes accounts object content fetched from the network. One atomic
// add; nil-safe via the zero value of the counter.
func (c *Client) countBytes(n int) {
	if c != nil {
		c.fetchedBytes.Add(int64(n))
	}
}

// recordRetry drops one retry event into the flight recorder (no-op when
// the client is uninstrumented).
func (c *Client) recordRetry(key string, err error) {
	if c == nil || c.rec == nil {
		return
	}
	c.rec.Recordf(obs.EventRetry, key, "retrying after: %v", err)
}
