package repo

import (
	"sync"
	"time"
)

// Faults injects delivery failures into a served publication point. The
// paper (Section 4, Side Effect 6) lists the ways "information can be
// missing": delayed renewal, filesystem or server corruption, withheld
// objects. Each has a switch here. The zero Faults injects nothing.
//
// Faults model *transport-level* failures as seen by the relying party;
// the authority's own misbehavior (deleting, shrinking, overwriting) is
// modeled by mutating the Store itself via the ca package.
type Faults struct {
	mu sync.RWMutex
	// drop hides named objects from both LIST and GET.
	drop map[string]bool
	// corrupt serves named objects with flipped bits.
	corrupt map[string]bool
	// refuse rejects all connections to the module.
	refuse bool
	// delay postpones every response.
	delay time.Duration
}

// NewFaults returns a fault plan injecting nothing.
func NewFaults() *Faults {
	return &Faults{drop: make(map[string]bool), corrupt: make(map[string]bool)}
}

// Drop hides name from the served module until Restore is called.
func (f *Faults) Drop(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.drop[name] = true
}

// Corrupt serves name with its content corrupted.
func (f *Faults) Corrupt(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.corrupt[name] = true
}

// Refuse makes the module reject all connections (server unreachable).
func (f *Faults) Refuse(refuse bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.refuse = refuse
}

// SetDelay postpones every response by d.
func (f *Faults) SetDelay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay = d
}

// Restore clears all per-object faults for name (or every object when name
// is ""). It models the transient fault being fixed — the crux of Side
// Effect 7 is that recovery of the repository does not imply recovery of
// the relying party.
func (f *Faults) Restore(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if name == "" {
		f.drop = make(map[string]bool)
		f.corrupt = make(map[string]bool)
		f.refuse = false
		f.delay = 0
		return
	}
	delete(f.drop, name)
	delete(f.corrupt, name)
}

func (f *Faults) dropped(name string) bool {
	if f == nil {
		return false
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.drop[name]
}

func (f *Faults) corrupted(name string) bool {
	if f == nil {
		return false
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.corrupt[name]
}

func (f *Faults) refusing() bool {
	if f == nil {
		return false
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.refuse
}

func (f *Faults) currentDelay() time.Duration {
	if f == nil {
		return 0
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.delay
}

// corruptBytes deterministically flips bits so corruption is reproducible.
func corruptBytes(b []byte) []byte {
	out := append([]byte(nil), b...)
	for i := range out {
		if i%17 == 3 {
			out[i] ^= 0xA5
		}
	}
	return out
}
