package repo

import (
	"sync"
	"time"
)

// FaultAction is what a scripted fault does to one request.
type FaultAction uint8

const (
	// ActNone serves the request normally.
	ActNone FaultAction = iota
	// ActDropConn drops the connection without a response (transport
	// fault: the client sees an I/O error and may retry).
	ActDropConn
	// ActErr answers the request with a protocol-level ERR (permanent:
	// the client must not retry).
	ActErr
)

// Faults injects delivery failures into a served publication point. The
// paper (Section 4, Side Effect 6) lists the ways "information can be
// missing": delayed renewal, filesystem or server corruption, withheld
// objects. Each has a switch here, plus the transport pathologies real
// relying parties survive with retries and fallbacks: intermittent failures
// (fail N of every M requests), truncated bodies, per-object delays,
// slow-loris trickle, and scripted schedules. The zero Faults injects
// nothing.
//
// Faults model *transport-level* failures as seen by the relying party;
// the authority's own misbehavior (deleting, shrinking, overwriting) is
// modeled by mutating the Store itself via the ca package.
type Faults struct {
	mu sync.Mutex
	// drop hides named objects from both LIST and GET.
	drop map[string]bool
	// corrupt serves named objects with flipped bits.
	corrupt map[string]bool
	// refuse rejects all connections to the module.
	refuse bool
	// delay postpones every response.
	delay time.Duration
	// objDelay postpones responses for specific objects.
	objDelay map[string]time.Duration
	// truncate serves named objects with half their body, then drops the
	// connection.
	truncate map[string]bool
	// truncStat answers STAT for named objects with a torn response line
	// (half the "OK <size> <hash>" reply), then drops the connection —
	// the incremental sync protocol failing while plain GETs still work.
	truncStat map[string]bool
	// failN/failM: fail the first failN of every failM requests touching
	// a name ("" keys module-level request faults). reqCount is the
	// per-name request counter driving the cycle.
	failN, failM map[string]int
	reqCount     map[string]int
	// slowLoris throttles body writes to one byte per interval.
	slowLoris time.Duration
	// bandwidth caps GET body writes to this many bytes per second.
	bandwidth int
	// corruptN/corruptM: serve the first corruptN of every corruptM requests
	// touching a name with flipped bits. corruptCount drives the cycle.
	corruptN, corruptM map[string]int
	corruptCount       map[string]int
	// script, when set, is consulted per request with a 1-based counter —
	// arbitrary flaky-then-healthy schedules in one closure.
	script  func(requestN int) FaultAction
	scriptN int
}

// NewFaults returns a fault plan injecting nothing.
func NewFaults() *Faults {
	return &Faults{
		drop:         make(map[string]bool),
		corrupt:      make(map[string]bool),
		objDelay:     make(map[string]time.Duration),
		truncate:     make(map[string]bool),
		truncStat:    make(map[string]bool),
		failN:        make(map[string]int),
		failM:        make(map[string]int),
		reqCount:     make(map[string]int),
		corruptN:     make(map[string]int),
		corruptM:     make(map[string]int),
		corruptCount: make(map[string]int),
	}
}

// Drop hides name from the served module until Restore is called.
func (f *Faults) Drop(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.drop[name] = true
}

// Corrupt serves name with its content corrupted.
func (f *Faults) Corrupt(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.corrupt[name] = true
}

// Refuse makes the module reject all connections (server unreachable).
func (f *Faults) Refuse(refuse bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.refuse = refuse
}

// SetDelay postpones every response by d.
func (f *Faults) SetDelay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay = d
}

// DelayObject postpones responses for name (GET and STAT) by d, so a single
// slow object can be injected without slowing the whole module — the case
// that distinguishes per-request deadlines from whole-fetch ones.
func (f *Faults) DelayObject(name string, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if d <= 0 {
		delete(f.objDelay, name)
		return
	}
	f.objDelay[name] = d
}

// FailRate makes the first n of every m requests touching name fail by
// dropping the connection — the intermittent fault a retrying client
// converges through deterministically (requests 1..n of each cycle fail,
// n+1..m succeed). name "" applies the rate to every request on the module
// (LIST included). n<=0 or m<=0 clears the rate for name.
func (f *Faults) FailRate(name string, n, m int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 || m <= 0 {
		delete(f.failN, name)
		delete(f.failM, name)
		delete(f.reqCount, name)
		return
	}
	f.failN[name] = n
	f.failM[name] = m
	f.reqCount[name] = 0
}

// Truncate serves name's GET with the correct size header but only half the
// body, then drops the connection — the torn transfer a crashing repository
// produces.
func (f *Faults) Truncate(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.truncate[name] = true
}

// TruncateStat makes STAT responses for name tear mid-line (partial reply,
// then a dropped connection) while leaving GET untouched — the fault that
// breaks the incremental sync protocol specifically, so a client's
// full-fetch fallback still succeeds.
func (f *Faults) TruncateStat(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.truncStat[name] = true
}

// SetSlowLoris throttles every GET body to one byte per d — the Stalloris
// pattern: the repository is "up" but a naive relying party stalls a worker
// on it indefinitely. 0 disables.
func (f *Faults) SetSlowLoris(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.slowLoris = d
}

// SetBandwidth caps every GET body at bytesPerSec — sustained byte-rate
// throttling, distinct from SetSlowLoris's per-byte trickle: the transfer
// makes real progress, just slowly, so it probes deadline budgets rather
// than first-byte timeouts. 0 disables.
func (f *Faults) SetBandwidth(bytesPerSec int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.bandwidth = bytesPerSec
}

// CorruptRate makes the first n of every m requests touching name serve
// corrupted bytes (GET bodies and STAT hashes alike), mirroring FailRate's
// deterministic cycle — the intermittently flaky disk or proxy whose damage a
// manifest-checking client must reject every time it appears. name "" is not
// supported (corruption is per object). n<=0 or m<=0 clears the rate.
func (f *Faults) CorruptRate(name string, n, m int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 || m <= 0 {
		delete(f.corruptN, name)
		delete(f.corruptM, name)
		delete(f.corruptCount, name)
		return
	}
	f.corruptN[name] = n
	f.corruptM[name] = m
	f.corruptCount[name] = 0
}

// SetScript installs a scripted fault schedule: fn is consulted once per
// request with a 1-based request counter and its action applied before any
// other fault. nil clears the script. Use it to express flaky-then-healthy
// timelines ("drop the first 4 requests, then recover").
func (f *Faults) SetScript(fn func(requestN int) FaultAction) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.script = fn
	f.scriptN = 0
}

// Restore clears all per-object faults for name (or every fault, including
// module-level ones, when name is ""). It models the transient fault being
// fixed — the crux of Side Effect 7 is that recovery of the repository does
// not imply recovery of the relying party.
func (f *Faults) Restore(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if name == "" {
		f.drop = make(map[string]bool)
		f.corrupt = make(map[string]bool)
		f.refuse = false
		f.delay = 0
		f.objDelay = make(map[string]time.Duration)
		f.truncate = make(map[string]bool)
		f.truncStat = make(map[string]bool)
		f.failN = make(map[string]int)
		f.failM = make(map[string]int)
		f.reqCount = make(map[string]int)
		f.slowLoris = 0
		f.bandwidth = 0
		f.corruptN = make(map[string]int)
		f.corruptM = make(map[string]int)
		f.corruptCount = make(map[string]int)
		f.script = nil
		f.scriptN = 0
		return
	}
	delete(f.drop, name)
	delete(f.corrupt, name)
	delete(f.objDelay, name)
	delete(f.truncate, name)
	delete(f.truncStat, name)
	delete(f.failN, name)
	delete(f.failM, name)
	delete(f.reqCount, name)
	delete(f.corruptN, name)
	delete(f.corruptM, name)
	delete(f.corruptCount, name)
}

func (f *Faults) dropped(name string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.drop[name]
}

func (f *Faults) corrupted(name string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.corrupt[name]
}

func (f *Faults) refusing() bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.refuse
}

func (f *Faults) currentDelay() time.Duration {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.delay
}

func (f *Faults) objectDelay(name string) time.Duration {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.objDelay[name]
}

func (f *Faults) truncated(name string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.truncate[name]
}

func (f *Faults) statTruncated(name string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.truncStat[name]
}

func (f *Faults) slowLorisDelay() time.Duration {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.slowLoris
}

// shouldFail advances name's request counter and reports whether this
// request falls in the failing part of its FailRate cycle.
func (f *Faults) shouldFail(name string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.failM[name]
	if m <= 0 {
		return false
	}
	k := f.reqCount[name]
	f.reqCount[name] = k + 1
	return k%m < f.failN[name]
}

func (f *Faults) bandwidthLimit() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bandwidth
}

// shouldCorrupt advances name's corruption counter and reports whether this
// request falls in the corrupting part of its CorruptRate cycle.
func (f *Faults) shouldCorrupt(name string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.corruptM[name]
	if m <= 0 {
		return false
	}
	k := f.corruptCount[name]
	f.corruptCount[name] = k + 1
	return k%m < f.corruptN[name]
}

// scriptAction advances the script's request counter and returns its verdict
// for this request.
func (f *Faults) scriptAction() FaultAction {
	if f == nil {
		return ActNone
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.script == nil {
		return ActNone
	}
	f.scriptN++
	return f.script(f.scriptN)
}

// corruptBytes deterministically flips bits so corruption is reproducible.
func corruptBytes(b []byte) []byte {
	out := append([]byte(nil), b...)
	for i := range out {
		if i%17 == 3 {
			out[i] ^= 0xA5
		}
	}
	return out
}
