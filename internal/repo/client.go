package repo

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Client fetches publication-point contents over the rsynclite protocol.
// The zero Client uses sane defaults: 10s per request, no retries, no
// circuit breaking — one transport fault fails the affected operation, as a
// maximally brittle relying party would experience it. Production relying
// parties set Retry and Breakers so that flaky repositories converge and
// dead ones fail fast (see internal/rp for the last-known-good layer above).
type Client struct {
	// Timeout bounds each request/response exchange — one LIST, GET or
	// STAT, including the dial for its connection (default 10s). It is a
	// per-request deadline, so one slow object can no longer starve the
	// rest of a fetch; FetchAll and SyncIncremental layer SyncTimeout on
	// top.
	Timeout time.Duration
	// SyncTimeout bounds a whole FetchAll or SyncIncremental call,
	// retries included (default 10× Timeout).
	SyncTimeout time.Duration
	// Dial overrides the dialer; used by the circular-dependency
	// experiments to make reachability depend on BGP route validity.
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)
	// Concurrency is the number of parallel connections FetchAll spreads
	// its GETs across (default 1). Each connection is reused for its whole
	// shard of objects — the per-object cost is one pipelined
	// request/response, not a dial. Results are merged deterministically.
	Concurrency int
	// Retry governs per-request retries of transport failures.
	Retry RetryPolicy
	// Breakers, when set, fail requests to tripped publication points fast
	// instead of dialing into a dead or slow-loris repository. May be
	// shared between Clients.
	Breakers *BreakerSet

	// retries counts request attempts that were retried after a transport
	// failure (exact; exposed via Stats).
	retries atomic.Int64
	// fetchedBytes counts object content bytes received (exposed at scrape
	// time by Instrument).
	fetchedBytes atomic.Int64
	// rec receives retry events when the client is instrumented (nil
	// otherwise). Set once by Instrument before the client serves requests.
	rec *obs.FlightRecorder
}

// DegradationStats counts the resilience events a Client has observed since
// creation; deltas across a sync give exact per-sync counters.
type DegradationStats struct {
	// Retries counts request attempts repeated after a transport failure.
	Retries int64
	// BreakerTrips counts circuit-breaker transitions to open.
	BreakerTrips int64
	// BreakerFastFails counts requests refused while a breaker was open.
	BreakerFastFails int64
}

// Stats snapshots the client's degradation counters.
func (c *Client) Stats() DegradationStats {
	if c == nil {
		return DegradationStats{}
	}
	return DegradationStats{
		Retries:          c.retries.Load(),
		BreakerTrips:     c.Breakers.Trips(),
		BreakerFastFails: c.Breakers.FastFails(),
	}
}

func (c *Client) concurrency() int {
	if c == nil || c.Concurrency < 1 {
		return 1
	}
	return c.Concurrency
}

func (c *Client) timeout() time.Duration {
	if c == nil || c.Timeout == 0 {
		return 10 * time.Second
	}
	return c.Timeout
}

func (c *Client) syncTimeout() time.Duration {
	if c == nil || c.SyncTimeout == 0 {
		return 10 * c.timeout()
	}
	return c.SyncTimeout
}

func (c *Client) dial(ctx context.Context, addr string) (net.Conn, error) {
	if c != nil && c.Dial != nil {
		return c.Dial(ctx, "tcp", addr)
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// pointConn is one reusable connection to a publication point, with
// per-request deadlines, breaker gating at (re)dial, and retry with
// exponential backoff on transport failures. Context cancellation closes the
// live connection immediately, so a sync aborts promptly even mid-read.
type pointConn struct {
	c    *Client
	uri  URI
	conn net.Conn
	r    *bufio.Reader
	stop func() bool // cancels the ctx→Close watcher
}

func (pc *pointConn) key() string { return pc.uri.String() }

// ensure dials the point if no connection is live. The circuit breaker is
// consulted here: every transport failure drops the connection, so gating
// redials gates exactly the failure paths.
func (pc *pointConn) ensure(ctx context.Context) error {
	if pc.conn != nil {
		return nil
	}
	if err := pc.c.Breakers.Allow(pc.key()); err != nil {
		return err
	}
	dctx, cancel := context.WithTimeout(ctx, pc.c.timeout())
	defer cancel()
	conn, err := pc.c.dial(dctx, pc.uri.Host)
	if err != nil {
		pc.c.Breakers.Failure(pc.key())
		return fmt.Errorf("repo: dial %s: %w", pc.uri.Host, err)
	}
	// Arm a deadline before anything wraps or touches the conn: even a
	// caller that skips arm() can never do unbounded I/O on it, and a conn
	// that refuses its deadline is discarded instead of trusted.
	d := time.Now().Add(pc.c.timeout())
	if dl, ok := ctx.Deadline(); ok && dl.Before(d) {
		d = dl
	}
	if err := conn.SetDeadline(d); err != nil {
		_ = conn.Close()
		pc.c.Breakers.Failure(pc.key())
		return fmt.Errorf("repo: arming deadline on %s: %w", pc.uri.Host, err)
	}
	pc.conn = conn
	pc.r = bufio.NewReader(conn)
	// A canceled context must interrupt a blocked read, not wait out the
	// per-request deadline.
	pc.stop = context.AfterFunc(ctx, func() { _ = conn.Close() })
	return nil
}

// arm sets the per-request deadline on the live connection: Timeout from
// now, clipped to the context's overall deadline. A connection that
// refuses its deadline is dropped — an unarmed conn must never be used,
// because unbounded I/O is exactly the slow-loris surface the deadline
// exists to close.
func (pc *pointConn) arm(ctx context.Context) error {
	d := time.Now().Add(pc.c.timeout())
	if dl, ok := ctx.Deadline(); ok && dl.Before(d) {
		d = dl
	}
	if err := pc.conn.SetDeadline(d); err != nil {
		pc.c.Breakers.Failure(pc.key())
		pc.drop()
		return fmt.Errorf("repo: arming deadline: %w", err)
	}
	return nil
}

// drop closes and forgets the connection.
func (pc *pointConn) drop() {
	if pc.stop != nil {
		pc.stop()
		pc.stop = nil
	}
	if pc.conn != nil {
		_ = pc.conn.Close()
		pc.conn = nil
		pc.r = nil
	}
}

// request runs one request/response exchange: op is invoked with a live,
// deadline-armed connection. Transport failures drop the connection, count
// against the breaker and retry with backoff up to Retry.MaxRetries;
// protocol rejections (permanent errors) keep the connection and return
// immediately — the server answered.
func (pc *pointConn) request(ctx context.Context, op func() error) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return lastErr
			}
			return err
		}
		err := pc.ensure(ctx)
		if err == nil {
			err = pc.arm(ctx)
		}
		if err == nil {
			err = op()
			if err == nil {
				pc.c.Breakers.Success(pc.key())
				return nil
			}
			if !Retryable(err) {
				// The exchange completed; the server is alive and said no.
				pc.c.Breakers.Success(pc.key())
				return err
			}
			pc.c.Breakers.Failure(pc.key())
			pc.drop()
		} else if !Retryable(err) {
			// Circuit open (or context dead): fail fast, no backoff.
			return err
		}
		lastErr = err
		if attempt >= pc.c.retryPolicy().MaxRetries {
			return lastErr
		}
		pc.c.retries.Add(1)
		pc.c.recordRetry(pc.key(), lastErr)
		if werr := pc.c.retryPolicy().wait(ctx, attempt); werr != nil {
			return lastErr
		}
	}
}

func (c *Client) retryPolicy() RetryPolicy {
	if c == nil {
		return RetryPolicy{}
	}
	return c.Retry
}

// listOnce performs one LIST exchange on a live connection.
func listOnce(conn net.Conn, r *bufio.Reader, module string) (map[string]int, error) {
	//lint:ignore deadlinebeforeio conn arrives deadline-armed from pointConn.request (arm precedes every op)
	if err := writeLine(conn, "LIST %s", module); err != nil {
		return nil, fmt.Errorf("repo: sending LIST: %w", err)
	}
	header, err := readLine(r)
	if err != nil {
		return nil, fmt.Errorf("repo: reading LIST response: %w", err)
	}
	n, err := parseOKCount(header, MaxListEntries)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, n)
	for i := 0; i < n; i++ {
		line, err := readLine(r)
		if err != nil {
			return nil, fmt.Errorf("repo: reading LIST entry: %w", err)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, permanent(fmt.Errorf("repo: malformed LIST entry %q", line))
		}
		size, err := strconv.Atoi(fields[1])
		if err != nil || size < 0 || size > MaxObjectSize {
			return nil, permanent(fmt.Errorf("repo: bad size in LIST entry %q", line))
		}
		out[fields[0]] = size
	}
	return out, nil
}

// getOnce performs one GET exchange on a live connection.
func getOnce(conn net.Conn, r *bufio.Reader, module, name string) ([]byte, error) {
	//lint:ignore deadlinebeforeio conn arrives deadline-armed from pointConn.request (arm precedes every op)
	if err := writeLine(conn, "GET %s %s", module, name); err != nil {
		return nil, fmt.Errorf("repo: sending GET: %w", err)
	}
	header, err := readLine(r)
	if err != nil {
		return nil, fmt.Errorf("repo: reading GET response: %w", err)
	}
	size, err := parseOKCount(header, MaxObjectSize)
	if err != nil {
		return nil, err
	}
	content := make([]byte, size)
	if _, err := io.ReadFull(r, content); err != nil {
		return nil, fmt.Errorf("repo: reading object body: %w", err)
	}
	return content, nil
}

// statOnce performs one STAT exchange on a live connection.
func statOnce(conn net.Conn, r *bufio.Reader, module, name string) (ObjectInfo, error) {
	//lint:ignore deadlinebeforeio conn arrives deadline-armed from pointConn.request (arm precedes every op)
	if err := writeLine(conn, "STAT %s %s", module, name); err != nil {
		return ObjectInfo{}, fmt.Errorf("repo: sending STAT: %w", err)
	}
	line, err := readLine(r)
	if err != nil {
		return ObjectInfo{}, fmt.Errorf("repo: reading STAT response: %w", err)
	}
	return parseStatLine(line)
}

// list is List without the overall deadline (callers wrap their own).
func (c *Client) list(ctx context.Context, uri URI) (map[string]int, error) {
	pc := &pointConn{c: c, uri: uri}
	defer pc.drop()
	var out map[string]int
	err := pc.request(ctx, func() error {
		m, err := listOnce(pc.conn, pc.r, uri.Module)
		if err == nil {
			out = m
		}
		return err
	})
	return out, err
}

// List returns the object names and sizes available in the module.
func (c *Client) List(ctx context.Context, uri URI) (map[string]int, error) {
	ctx, cancel := context.WithTimeout(ctx, c.syncTimeout())
	defer cancel()
	return c.list(ctx, uri)
}

// Get fetches one object from the module.
func (c *Client) Get(ctx context.Context, uri URI, name string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.syncTimeout())
	defer cancel()
	pc := &pointConn{c: c, uri: uri}
	defer pc.drop()
	var content []byte
	err := pc.request(ctx, func() error {
		b, err := getOnce(pc.conn, pc.r, uri.Module, name)
		if err == nil {
			content = b
			c.countBytes(len(b))
		}
		return err
	})
	return content, err
}

// Stat fetches an object's size and hash without its content.
func (c *Client) Stat(ctx context.Context, uri URI, name string) (ObjectInfo, error) {
	ctx, cancel := context.WithTimeout(ctx, c.syncTimeout())
	defer cancel()
	pc := &pointConn{c: c, uri: uri}
	defer pc.drop()
	var info ObjectInfo
	err := pc.request(ctx, func() error {
		i, err := statOnce(pc.conn, pc.r, uri.Module, name)
		if err == nil {
			info = i
		}
		return err
	})
	return info, err
}

// FetchAll lists the module and downloads every object, pipelining GETs
// over up to Concurrency reused connections, returning name → content.
// Objects that fail mid-fetch are reported via the error; partial results
// are returned so a relying party can reason about incomplete information
// (Side Effect 6). The first error is chosen deterministically (smallest
// affected object name) regardless of connection scheduling.
func (c *Client) FetchAll(ctx context.Context, uri URI) (map[string][]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.syncTimeout())
	defer cancel()
	names, err := c.list(ctx, uri)
	if err != nil {
		return nil, err
	}
	ordered := make([]string, 0, len(names))
	for name := range names {
		ordered = append(ordered, name)
	}
	sort.Strings(ordered)
	if len(ordered) == 0 {
		return make(map[string][]byte), nil
	}

	shards := c.concurrency()
	if shards > len(ordered) {
		shards = len(ordered)
	}
	if shards < 1 {
		shards = 1
	}
	type shardResult struct {
		files map[string][]byte
		// errName orders errors canonically: the smallest object name the
		// shard's error applies to.
		errName string
		err     error
	}
	results := make([]shardResult, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		// Round-robin over sorted names: shard s fetches ordered[s::shards].
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			results[s] = c.fetchShard(ctx, uri, ordered, s, shards)
		}(s)
	}
	wg.Wait()

	out := make(map[string][]byte, len(ordered))
	var firstErr error
	var firstErrName string
	for _, res := range results {
		for name, content := range res.files {
			out[name] = content
		}
		if res.err != nil && (firstErr == nil || res.errName < firstErrName) {
			firstErr, firstErrName = res.err, res.errName
		}
	}
	return out, firstErr
}

// fetchShard downloads every shards-th name starting at offset s, reusing
// one connection and redialing (with retries per the RetryPolicy) when it
// fails. A protocol-level ERR for an object is recorded and the shard
// continues; an exhausted transport failure or an open breaker aborts the
// shard with its partial results.
func (c *Client) fetchShard(ctx context.Context, uri URI, ordered []string, s, shards int) (res struct {
	files   map[string][]byte
	errName string
	err     error
}) {
	res.files = make(map[string][]byte)
	fail := func(name string, err error) {
		if res.err == nil || name < res.errName {
			res.errName, res.err = name, err
		}
	}
	pc := &pointConn{c: c, uri: uri}
	defer pc.drop()
	for i := s; i < len(ordered); i += shards {
		name := ordered[i]
		if err := ctx.Err(); err != nil {
			fail(name, err)
			return res
		}
		err := pc.request(ctx, func() error {
			content, err := getOnce(pc.conn, pc.r, uri.Module, name)
			if err == nil {
				res.files[name] = content
				c.countBytes(len(content))
			}
			return err
		})
		if err == nil {
			continue
		}
		fail(name, fmt.Errorf("repo: object %q: %w", name, err))
		if Retryable(err) || errors.Is(err, ErrCircuitOpen) || ctx.Err() != nil {
			// Retries exhausted or the point is circuit-broken: the point
			// is unhealthy, stop burning attempts on this shard.
			return res
		}
		// Protocol-level rejection of this one object: keep going.
	}
	return res
}

// ObjectInfo is a STAT result.
type ObjectInfo struct {
	// Size is the object's size in bytes.
	Size int
	// Hash is the SHA-256 of the content as served (faults included).
	Hash [32]byte
}

func parseStatLine(line string) (ObjectInfo, error) {
	fields := strings.Fields(line)
	if len(fields) != 3 || fields[0] != "OK" {
		if len(fields) > 0 && fields[0] == "ERR" {
			return ObjectInfo{}, permanent(fmt.Errorf("repo: server error: %s", strings.TrimPrefix(line, "ERR ")))
		}
		return ObjectInfo{}, permanent(fmt.Errorf("repo: malformed STAT response %q", line))
	}
	size, err := strconv.Atoi(fields[1])
	if err != nil || size < 0 || size > MaxObjectSize {
		return ObjectInfo{}, permanent(fmt.Errorf("repo: bad size in %q", line))
	}
	hash, err := hex.DecodeString(fields[2])
	if err != nil || len(hash) != 32 {
		return ObjectInfo{}, permanent(fmt.Errorf("repo: bad hash in %q", line))
	}
	info := ObjectInfo{Size: size}
	copy(info.Hash[:], hash)
	return info, nil
}

// SyncResult reports what an incremental sync did.
type SyncResult struct {
	// Files is the complete, post-sync content map.
	Files map[string][]byte
	// Downloaded counts objects actually transferred.
	Downloaded int
	// Reused counts objects kept from the previous snapshot.
	Reused int
	// Removed counts objects that disappeared from the module.
	Removed int
	// Unchanged reports that the module is byte-identical to the previous
	// snapshot: every object's server-reported STAT hash matched the local
	// copy, nothing was downloaded, nothing was removed. False on a first
	// sync (nil prev) even for an empty module.
	Unchanged bool
}

// SyncIncremental brings prev (a previous FetchAll/SyncIncremental result;
// may be nil) up to date, transferring only objects whose STAT hash differs
// — the rsync-style delta mode. It returns the new complete snapshot.
// Transport failures retry per the RetryPolicy (redialing as needed); an
// exhausted failure fails the sync so the caller can fall back to its
// previous snapshot.
func (c *Client) SyncIncremental(ctx context.Context, uri URI, prev map[string][]byte) (*SyncResult, error) {
	ctx, cancel := context.WithTimeout(ctx, c.syncTimeout())
	defer cancel()
	names, err := c.list(ctx, uri)
	if err != nil {
		return nil, err
	}
	res := &SyncResult{Files: make(map[string][]byte, len(names))}
	pc := &pointConn{c: c, uri: uri}
	defer pc.drop()

	ordered := make([]string, 0, len(names))
	for name := range names {
		ordered = append(ordered, name)
	}
	sort.Strings(ordered)
	for _, name := range ordered {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		old, have := prev[name]
		if have && len(old) == names[name] {
			// Sizes match: confirm with STAT before skipping the download.
			var info ObjectInfo
			err := pc.request(ctx, func() error {
				i, err := statOnce(pc.conn, pc.r, uri.Module, name)
				if err == nil {
					info = i
				}
				return err
			})
			switch {
			case err == nil && info.Hash == sha256.Sum256(old):
				res.Files[name] = old
				res.Reused++
				continue
			case err != nil && (Retryable(err) || errors.Is(err, ErrCircuitOpen)):
				return nil, fmt.Errorf("repo: STAT %q: %w", name, err)
			}
			// STAT rejected or hash changed: fall through to the download.
		}
		// Download (new, resized, or hash-changed object).
		var content []byte
		var gotIt bool
		err := pc.request(ctx, func() error {
			b, err := getOnce(pc.conn, pc.r, uri.Module, name)
			if err == nil {
				content, gotIt = b, true
				c.countBytes(len(b))
			}
			return err
		})
		if err != nil {
			if Retryable(err) || errors.Is(err, ErrCircuitOpen) {
				return nil, fmt.Errorf("repo: fetching %q: %w", name, err)
			}
			continue // vanished between LIST and GET; treat as absent
		}
		if gotIt {
			res.Files[name] = content
			res.Downloaded++
		}
	}
	for name := range prev {
		if _, still := res.Files[name]; !still {
			res.Removed++
		}
	}
	// Downloaded == 0 means every listed object was hash-verified against
	// the previous snapshot; Removed == 0 means nothing vanished — together
	// they prove byte-identity with prev.
	res.Unchanged = prev != nil && res.Downloaded == 0 && res.Removed == 0
	return res, nil
}
