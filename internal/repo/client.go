package repo

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client fetches publication-point contents over the rsynclite protocol.
// The zero Client uses sane defaults.
type Client struct {
	// Timeout bounds a whole fetch operation (default 10s).
	Timeout time.Duration
	// Dial overrides the dialer; used by the circular-dependency
	// experiments to make reachability depend on BGP route validity.
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)
	// Concurrency is the number of parallel connections FetchAll spreads
	// its GETs across (default 1). Each connection is reused for its whole
	// shard of objects — the per-object cost is one pipelined
	// request/response, not a dial. Results are merged deterministically.
	Concurrency int
}

func (c *Client) concurrency() int {
	if c == nil || c.Concurrency < 1 {
		return 1
	}
	return c.Concurrency
}

func (c *Client) timeout() time.Duration {
	if c == nil || c.Timeout == 0 {
		return 10 * time.Second
	}
	return c.Timeout
}

func (c *Client) dial(ctx context.Context, addr string) (net.Conn, error) {
	if c != nil && c.Dial != nil {
		return c.Dial(ctx, "tcp", addr)
	}
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// List returns the object names and sizes available in the module.
func (c *Client) List(ctx context.Context, uri URI) (map[string]int, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	conn, err := c.dial(ctx, uri.Host)
	if err != nil {
		return nil, fmt.Errorf("repo: dial %s: %w", uri.Host, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	r := bufio.NewReader(conn)
	if err := writeLine(conn, "LIST %s", uri.Module); err != nil {
		return nil, fmt.Errorf("repo: sending LIST: %w", err)
	}
	header, err := readLine(r)
	if err != nil {
		return nil, fmt.Errorf("repo: reading LIST response: %w", err)
	}
	n, err := parseOKCount(header, MaxListEntries)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int, n)
	for i := 0; i < n; i++ {
		line, err := readLine(r)
		if err != nil {
			return nil, fmt.Errorf("repo: reading LIST entry: %w", err)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("repo: malformed LIST entry %q", line)
		}
		size, err := strconv.Atoi(fields[1])
		if err != nil || size < 0 || size > MaxObjectSize {
			return nil, fmt.Errorf("repo: bad size in LIST entry %q", line)
		}
		out[fields[0]] = size
	}
	return out, nil
}

// Get fetches one object from the module.
func (c *Client) Get(ctx context.Context, uri URI, name string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	conn, err := c.dial(ctx, uri.Host)
	if err != nil {
		return nil, fmt.Errorf("repo: dial %s: %w", uri.Host, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	return getOne(conn, uri.Module, name)
}

func getOne(conn net.Conn, module, name string) ([]byte, error) {
	r := bufio.NewReader(conn)
	if err := writeLine(conn, "GET %s %s", module, name); err != nil {
		return nil, fmt.Errorf("repo: sending GET: %w", err)
	}
	header, err := readLine(r)
	if err != nil {
		return nil, fmt.Errorf("repo: reading GET response: %w", err)
	}
	size, err := parseOKCount(header, MaxObjectSize)
	if err != nil {
		return nil, err
	}
	content := make([]byte, size)
	if _, err := io.ReadFull(r, content); err != nil {
		return nil, fmt.Errorf("repo: reading object body: %w", err)
	}
	return content, nil
}

// FetchAll lists the module and downloads every object, pipelining GETs
// over up to Concurrency reused connections, returning name → content.
// Objects that fail mid-fetch are reported via the error; partial results
// are returned so a relying party can reason about incomplete information
// (Side Effect 6). The first error is chosen deterministically (smallest
// affected object name) regardless of connection scheduling.
func (c *Client) FetchAll(ctx context.Context, uri URI) (map[string][]byte, error) {
	names, err := c.List(ctx, uri)
	if err != nil {
		return nil, err
	}
	ordered := make([]string, 0, len(names))
	for name := range names {
		ordered = append(ordered, name)
	}
	sort.Strings(ordered)
	if len(ordered) == 0 {
		return make(map[string][]byte), nil
	}

	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()

	shards := c.concurrency()
	if shards > len(ordered) {
		shards = len(ordered)
	}
	if shards < 1 {
		shards = 1
	}
	type shardResult struct {
		files map[string][]byte
		// errName orders errors canonically: the smallest object name the
		// shard's error applies to.
		errName string
		err     error
	}
	results := make([]shardResult, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		// Round-robin over sorted names: shard s fetches ordered[s::shards].
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			results[s] = c.fetchShard(ctx, uri, ordered, s, shards)
		}(s)
	}
	wg.Wait()

	out := make(map[string][]byte, len(ordered))
	var firstErr error
	var firstErrName string
	for _, res := range results {
		for name, content := range res.files {
			out[name] = content
		}
		if res.err != nil && (firstErr == nil || res.errName < firstErrName) {
			firstErr, firstErrName = res.err, res.errName
		}
	}
	return out, firstErr
}

// fetchShard downloads every shards-th name starting at offset s over one
// connection. A protocol-level ERR for an object is recorded and the shard
// continues; a connection-level failure aborts the shard with its partial
// results.
func (c *Client) fetchShard(ctx context.Context, uri URI, ordered []string, s, shards int) (res struct {
	files   map[string][]byte
	errName string
	err     error
}) {
	res.files = make(map[string][]byte)
	fail := func(name string, err error) {
		if res.err == nil || name < res.errName {
			res.errName, res.err = name, err
		}
	}
	conn, err := c.dial(ctx, uri.Host)
	if err != nil {
		fail(ordered[s], fmt.Errorf("repo: dial %s: %w", uri.Host, err))
		return res
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	r := bufio.NewReader(conn)
	for i := s; i < len(ordered); i += shards {
		name := ordered[i]
		if err := writeLine(conn, "GET %s %s", uri.Module, name); err != nil {
			fail(name, fmt.Errorf("repo: sending GET: %w", err))
			return res
		}
		header, err := readLine(r)
		if err != nil {
			fail(name, fmt.Errorf("repo: reading GET response: %w", err))
			return res
		}
		size, err := parseOKCount(header, MaxObjectSize)
		if err != nil {
			fail(name, fmt.Errorf("repo: object %q: %w", name, err))
			continue
		}
		content := make([]byte, size)
		if _, err := io.ReadFull(r, content); err != nil {
			fail(name, fmt.Errorf("repo: reading %q body: %w", name, err))
			return res
		}
		res.files[name] = content
	}
	return res
}

// ObjectInfo is a STAT result.
type ObjectInfo struct {
	// Size is the object's size in bytes.
	Size int
	// Hash is the SHA-256 of the content as served (faults included).
	Hash [32]byte
}

// Stat fetches an object's size and hash without its content.
func (c *Client) Stat(ctx context.Context, uri URI, name string) (ObjectInfo, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	conn, err := c.dial(ctx, uri.Host)
	if err != nil {
		return ObjectInfo{}, fmt.Errorf("repo: dial %s: %w", uri.Host, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	r := bufio.NewReader(conn)
	if err := writeLine(conn, "STAT %s %s", uri.Module, name); err != nil {
		return ObjectInfo{}, fmt.Errorf("repo: sending STAT: %w", err)
	}
	line, err := readLine(r)
	if err != nil {
		return ObjectInfo{}, fmt.Errorf("repo: reading STAT response: %w", err)
	}
	return parseStatLine(line)
}

func parseStatLine(line string) (ObjectInfo, error) {
	fields := strings.Fields(line)
	if len(fields) != 3 || fields[0] != "OK" {
		if len(fields) > 0 && fields[0] == "ERR" {
			return ObjectInfo{}, fmt.Errorf("repo: server error: %s", strings.TrimPrefix(line, "ERR "))
		}
		return ObjectInfo{}, fmt.Errorf("repo: malformed STAT response %q", line)
	}
	size, err := strconv.Atoi(fields[1])
	if err != nil || size < 0 || size > MaxObjectSize {
		return ObjectInfo{}, fmt.Errorf("repo: bad size in %q", line)
	}
	hash, err := hex.DecodeString(fields[2])
	if err != nil || len(hash) != 32 {
		return ObjectInfo{}, fmt.Errorf("repo: bad hash in %q", line)
	}
	info := ObjectInfo{Size: size}
	copy(info.Hash[:], hash)
	return info, nil
}

// SyncResult reports what an incremental sync did.
type SyncResult struct {
	// Files is the complete, post-sync content map.
	Files map[string][]byte
	// Downloaded counts objects actually transferred.
	Downloaded int
	// Reused counts objects kept from the previous snapshot.
	Reused int
	// Removed counts objects that disappeared from the module.
	Removed int
}

// SyncIncremental brings prev (a previous FetchAll/SyncIncremental result;
// may be nil) up to date, transferring only objects whose STAT hash differs
// — the rsync-style delta mode. It returns the new complete snapshot.
func (c *Client) SyncIncremental(ctx context.Context, uri URI, prev map[string][]byte) (*SyncResult, error) {
	names, err := c.List(ctx, uri)
	if err != nil {
		return nil, err
	}
	res := &SyncResult{Files: make(map[string][]byte, len(names))}
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	conn, err := c.dial(ctx, uri.Host)
	if err != nil {
		return nil, fmt.Errorf("repo: dial %s: %w", uri.Host, err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(deadline)
	}
	r := bufio.NewReader(conn)

	ordered := make([]string, 0, len(names))
	for name := range names {
		ordered = append(ordered, name)
	}
	sort.Strings(ordered)
	for _, name := range ordered {
		old, have := prev[name]
		if have && len(old) == names[name] {
			// Sizes match: confirm with STAT before skipping the download.
			if err := writeLine(conn, "STAT %s %s", uri.Module, name); err != nil {
				return nil, fmt.Errorf("repo: sending STAT: %w", err)
			}
			line, err := readLine(r)
			if err != nil {
				return nil, fmt.Errorf("repo: reading STAT response: %w", err)
			}
			info, err := parseStatLine(line)
			if err == nil && info.Hash == sha256.Sum256(old) {
				res.Files[name] = old
				res.Reused++
				continue
			}
		}
		// Download (new, resized, or hash-changed object).
		if err := writeLine(conn, "GET %s %s", uri.Module, name); err != nil {
			return nil, fmt.Errorf("repo: sending GET: %w", err)
		}
		line, err := readLine(r)
		if err != nil {
			return nil, fmt.Errorf("repo: reading GET response: %w", err)
		}
		size, err := parseOKCount(line, MaxObjectSize)
		if err != nil {
			continue // vanished between LIST and GET; treat as absent
		}
		content := make([]byte, size)
		if _, err := io.ReadFull(r, content); err != nil {
			return nil, fmt.Errorf("repo: reading %q body: %w", name, err)
		}
		res.Files[name] = content
		res.Downloaded++
	}
	for name := range prev {
		if _, still := res.Files[name]; !still {
			res.Removed++
		}
	}
	return res, nil
}
