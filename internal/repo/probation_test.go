package repo

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestBreakerProbationReopensImmediately drives the half-open state machine
// with an injected clock through the Stalloris probe timing game: the point
// serves the probe, then stalls again. The probe success closes the breaker
// only on probation — the very next failure re-opens it without a fresh
// threshold's worth of admitted requests.
func TestBreakerProbationReopensImmediately(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreakerSet(BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         time.Minute,
		Clock:            func() time.Time { return now },
	})
	const key = "rsynclite://h:1/p"

	for i := 0; i < 3; i++ {
		b.Failure(key)
	}
	if b.State(key) != BreakerOpen {
		t.Fatal("threshold failures should open")
	}
	now = now.Add(61 * time.Second)
	if err := b.Allow(key); err != nil {
		t.Fatalf("probe must be admitted: %v", err)
	}
	b.Success(key)
	if b.State(key) != BreakerClosed {
		t.Fatal("probe success should close")
	}
	// The adversary stalls again: one failure, not threshold failures, must
	// re-open the breaker.
	b.Failure(key)
	if got := b.State(key); got != BreakerOpen {
		t.Fatalf("failure on probation: state = %v, want open", got)
	}
	if b.Trips() != 2 {
		t.Errorf("trips = %d, want 2", b.Trips())
	}
	// And the re-opened breaker refuses immediately — no second request.
	if err := b.Allow(key); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("re-opened breaker must fast-fail, got %v", err)
	}
}

// TestBreakerProbationClearedBySecondSuccess: one clean exchange after the
// probe ends probation, restoring the full failure threshold.
func TestBreakerProbationClearedBySecondSuccess(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreakerSet(BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         time.Minute,
		Clock:            func() time.Time { return now },
	})
	const key = "rsynclite://h:1/p"
	for i := 0; i < 3; i++ {
		b.Failure(key)
	}
	now = now.Add(61 * time.Second)
	if err := b.Allow(key); err != nil {
		t.Fatal(err)
	}
	b.Success(key) // probe: closed on probation
	b.Success(key) // confirmed: probation cleared
	b.Failure(key)
	b.Failure(key)
	if got := b.State(key); got != BreakerClosed {
		t.Fatalf("below threshold after confirmation: state = %v, want closed", got)
	}
	b.Failure(key)
	if got := b.State(key); got != BreakerOpen {
		t.Fatalf("at threshold: state = %v, want open", got)
	}
}

// TestBreakerProbeGameUnderScriptedSchedule runs the same game end-to-end
// through a real client and a scripted fault plan: trip the breaker, let
// exactly the probe request succeed, stall everything after it. The breaker
// must re-open after one post-probe request — the adversary does not get a
// second in-flight request, let alone a fresh threshold.
func TestBreakerProbeGameUnderScriptedSchedule(t *testing.T) {
	uri, _, faults := startTestServer(t, map[string][]byte{
		"a.cer": []byte("a"), "b.roa": []byte("b"), "c.mft": []byte("c"),
	})
	faults.Refuse(true)
	c := &Client{
		Timeout:  time.Second,
		Retry:    fastRetry(10),
		Breakers: NewBreakerSet(BreakerConfig{FailureThreshold: 2, Cooldown: 50 * time.Millisecond}),
	}
	if _, err := c.FetchAll(context.Background(), uri); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("refused point should trip the breaker, got %v", err)
	}

	// The adversarial phase: serve request 1 (the half-open probe), drop
	// every request after it.
	var postProbe atomic.Int64
	faults.Refuse(false)
	faults.SetScript(func(requestN int) FaultAction {
		if requestN == 1 {
			return ActNone
		}
		postProbe.Add(1)
		return ActDropConn
	})
	time.Sleep(60 * time.Millisecond) // cooldown elapses

	if _, err := c.FetchAll(context.Background(), uri); err == nil {
		t.Fatal("stalled-after-probe fetch must fail")
	}
	if got := c.Breakers.State(uri.String()); got != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", got)
	}
	if n := postProbe.Load(); n != 1 {
		t.Fatalf("server saw %d post-probe requests, want exactly 1", n)
	}
	// While open, nothing reaches the network.
	before := postProbe.Load()
	if _, err := c.List(context.Background(), uri); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker should fast-fail, got %v", err)
	}
	if postProbe.Load() != before {
		t.Error("fast-fail touched the network")
	}
}
