package repo

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// TestFaultBandwidthThrottle: SetBandwidth serves the whole body, slowly —
// unlike slow-loris it makes real progress, so a client with deadline
// headroom succeeds while a tight deadline converts the throttle into
// failures.
func TestFaultBandwidthThrottle(t *testing.T) {
	content := bytes.Repeat([]byte("y"), 400)
	uri, _, faults := startTestServer(t, map[string][]byte{"big.roa": content})
	faults.SetBandwidth(1000) // 100B per 100ms tick: ~400ms for the body

	tight := &Client{Timeout: 120 * time.Millisecond, Retry: fastRetry(0)}
	if _, err := tight.Get(context.Background(), uri, "big.roa"); err == nil {
		t.Fatal("tight deadline must fail under throttling")
	}

	patient := &Client{Timeout: 5 * time.Second, Retry: fastRetry(0)}
	start := time.Now()
	got, err := patient.Get(context.Background(), uri, "big.roa")
	if err != nil {
		t.Fatalf("patient client should ride out the throttle: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("throttled body mismatch")
	}
	if elapsed := time.Since(start); elapsed < 300*time.Millisecond {
		t.Errorf("transfer took %v; throttle should have paced it", elapsed)
	}
	faults.Restore("")
	if limit := faults.bandwidthLimit(); limit != 0 {
		t.Errorf("Restore left bandwidth = %d", limit)
	}
}

// TestFaultCorruptRate: intermittent corruption cycles deterministically like
// FailRate — request 1 of every 2 serves flipped bits, request 2 is clean.
func TestFaultCorruptRate(t *testing.T) {
	content := []byte("route origin authorization content for corruption cycling")
	uri, _, faults := startTestServer(t, map[string][]byte{"x.roa": content})
	faults.CorruptRate("x.roa", 1, 2)
	c := &Client{Timeout: time.Second, Retry: fastRetry(0)}

	for cycle := 0; cycle < 2; cycle++ {
		bad, err := c.Get(context.Background(), uri, "x.roa")
		if err != nil {
			t.Fatalf("cycle %d corrupt fetch: %v", cycle, err)
		}
		if bytes.Equal(bad, content) {
			t.Fatalf("cycle %d: first request of the cycle should be corrupted", cycle)
		}
		good, err := c.Get(context.Background(), uri, "x.roa")
		if err != nil {
			t.Fatalf("cycle %d clean fetch: %v", cycle, err)
		}
		if !bytes.Equal(good, content) {
			t.Fatalf("cycle %d: second request of the cycle should be clean", cycle)
		}
	}
	faults.Restore("x.roa")
	clean, err := c.Get(context.Background(), uri, "x.roa")
	if err != nil || !bytes.Equal(clean, content) {
		t.Fatalf("Restore should clear the corrupt rate: %v", err)
	}
}
