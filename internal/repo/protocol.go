package repo

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The rsynclite wire protocol. All requests and response headers are single
// CRLF-free LF-terminated lines of printable ASCII; file contents are raw
// bytes with a declared length. This stands in for the rsync protocol the
// RPKI mandates (RFC 6481 section 2.2): the paper's results depend only on
// which objects a relying party can retrieve over TCP/IP, not on rsync's
// delta encoding.
//
//	Request:  LIST <module>
//	Response: OK <n>            then n lines: <name> <size>
//
//	Request:  GET <module> <name>
//	Response: OK <size>         then <size> raw bytes
//
//	Request:  STAT <module> <name>
//	Response: OK <size> <sha256-hex>
//
//	Any error: ERR <message>
//
// STAT lets a client skip re-downloading unchanged objects — the delta
// behavior that makes rsync rsync.
const (
	maxLineLen = 4096
	// MaxObjectSize bounds a single fetched object (defense against a
	// malicious repository streaming forever).
	MaxObjectSize = 8 << 20
	// MaxListEntries bounds a module listing.
	MaxListEntries = 1 << 20
)

// URI identifies a module on an rsynclite server, e.g.
// "rsynclite://127.0.0.1:8873/sprint".
type URI struct {
	// Host is the "host:port" address of the server.
	Host string
	// Module is the publication point name.
	Module string
}

// ParseURI parses "rsynclite://host:port/module[/object]". The optional
// trailing object name is returned separately.
func ParseURI(s string) (URI, string, error) {
	const scheme = "rsynclite://"
	if !strings.HasPrefix(s, scheme) {
		return URI{}, "", fmt.Errorf("repo: URI %q lacks %s scheme", s, scheme)
	}
	rest := strings.TrimSuffix(s[len(scheme):], "/")
	parts := strings.SplitN(rest, "/", 3)
	if len(parts) < 2 || parts[0] == "" || parts[1] == "" {
		return URI{}, "", fmt.Errorf("repo: URI %q needs host/module", s)
	}
	uri := URI{Host: parts[0], Module: parts[1]}
	if len(parts) == 3 {
		return uri, parts[2], nil
	}
	return uri, "", nil
}

// String renders the URI.
func (u URI) String() string {
	return "rsynclite://" + u.Host + "/" + u.Module
}

// ObjectURI renders the URI of an object within the module.
func (u URI) ObjectURI(name string) string {
	return u.String() + "/" + name
}

// readLine reads one LF-terminated line, enforcing the length cap while
// reading. The cap must be applied incrementally: ReadString would buffer an
// entire newline-free stream before a post-hoc length check could reject it,
// handing a malicious server an unbounded-memory primitive.
func readLine(r *bufio.Reader) (string, error) {
	var buf []byte
	for {
		chunk, err := r.ReadSlice('\n')
		if len(buf)+len(chunk) > maxLineLen {
			return "", fmt.Errorf("repo: protocol line too long (> %d bytes)", maxLineLen)
		}
		if err == nil {
			if buf == nil {
				return strings.TrimSuffix(string(chunk), "\n"), nil
			}
			buf = append(buf, chunk...)
			return strings.TrimSuffix(string(buf), "\n"), nil
		}
		if err == bufio.ErrBufferFull {
			buf = append(buf, chunk...)
			continue
		}
		return "", err
	}
}

// writeLine writes one LF-terminated line.
func writeLine(w io.Writer, format string, args ...any) error {
	_, err := fmt.Fprintf(w, format+"\n", args...)
	return err
}

// parseOKCount parses an "OK <n>" header with a bound. Its errors are
// permanent: the server completed the exchange, retrying cannot change the
// answer.
func parseOKCount(line string, bound int) (int, error) {
	fields := strings.Fields(line)
	if len(fields) != 2 || fields[0] != "OK" {
		if len(fields) > 0 && fields[0] == "ERR" {
			return 0, permanent(fmt.Errorf("repo: server error: %s", strings.TrimPrefix(line, "ERR ")))
		}
		return 0, permanent(fmt.Errorf("repo: malformed response %q", line))
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 || n > bound {
		return 0, permanent(fmt.Errorf("repo: count %q out of range", fields[1]))
	}
	return n, nil
}

// validName rejects names that could escape the module namespace or break
// the line protocol.
func validName(name string) bool {
	if name == "" || len(name) > 512 {
		return false
	}
	for _, r := range name {
		if r <= ' ' || r == 0x7F || r == '/' || r == '\\' {
			return false
		}
	}
	return name != "." && name != ".."
}
