package repo

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// RetryPolicy bounds how a Client retries requests that fail at the
// transport level (dial errors, dropped connections, per-request timeouts).
// Protocol-level rejections — an ERR response, a malformed frame — are never
// retried: the server answered, it just said no. The zero RetryPolicy
// performs no retries, preserving the pre-resilience behavior where one
// transient fault dropped the whole subtree for that sync (the paper's Side
// Effect 6 at its most pessimistic).
type RetryPolicy struct {
	// MaxRetries is the number of additional attempts after the first
	// failure (0: fail on the first transport error).
	MaxRetries int
	// BaseDelay is the backoff before the first retry (default 20ms). Each
	// subsequent retry doubles it, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 2s).
	MaxDelay time.Duration
	// Jitter randomizes each delay by ±Jitter fraction so synchronized
	// relying parties do not hammer a recovering repository in lockstep
	// (default 0.5; set negative for none).
	Jitter float64
}

func (p RetryPolicy) baseDelay() time.Duration {
	if p.BaseDelay <= 0 {
		return 20 * time.Millisecond
	}
	return p.BaseDelay
}

func (p RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay <= 0 {
		return 2 * time.Second
	}
	return p.MaxDelay
}

func (p RetryPolicy) jitter() float64 {
	switch {
	case p.Jitter < 0:
		return 0
	case p.Jitter == 0:
		return 0.5
	default:
		return p.Jitter
	}
}

// delay computes the backoff before retry number attempt (0-based), with
// exponential growth and jitter. Jitter affects only timing, never results:
// the validated cache is a function of what the repository serves, not of
// when we asked.
func (p RetryPolicy) delay(attempt int) time.Duration {
	d := p.baseDelay()
	for i := 0; i < attempt && d < p.maxDelay(); i++ {
		d *= 2
	}
	if d > p.maxDelay() {
		d = p.maxDelay()
	}
	if j := p.jitter(); j > 0 {
		f := 1 - j + 2*j*rand.Float64() //nolint:gosec // timing jitter only
		d = time.Duration(float64(d) * f)
	}
	return d
}

// wait sleeps the backoff for attempt, returning early with ctx.Err() if the
// context is canceled first.
func (p RetryPolicy) wait(ctx context.Context, attempt int) error {
	t := time.NewTimer(p.delay(attempt))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// permanentError marks failures that retrying cannot fix: the server
// completed the exchange and rejected it at the protocol level.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// permanent wraps err as non-retryable.
func permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Retryable reports whether a fetch error is a transport-level failure worth
// retrying. Protocol rejections, open circuit breakers and context
// cancellation are not.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var p *permanentError
	if errors.As(err, &p) {
		return false
	}
	if errors.Is(err, ErrCircuitOpen) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}
