package repo

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"
)

// Module couples a publication point's store with its fault plan.
type Module struct {
	Store  *Store
	Faults *Faults
}

// Server serves one or more publication points over the rsynclite protocol.
// A single server hosting many modules models a hosted publication service;
// a server with one module models an authority self-hosting its repository
// (the configuration that creates the paper's Side Effect 7 circularity).
type Server struct {
	// ReadTimeout bounds how long a connection may sit idle between
	// requests (and how long one request/response exchange may take)
	// before the server drops it, so a hung peer cannot pin a handler
	// forever. The deadline is re-armed for every request, so a
	// long-lived connection that keeps issuing commands — a relying
	// party pipelining GETs for a whole module — is never cut off
	// mid-sync. Default 30s. Set before Listen.
	ReadTimeout time.Duration

	mu      sync.RWMutex
	modules map[string]*Module
	ln      net.Listener
	wg      sync.WaitGroup
	closed  chan struct{}
}

// NewServer returns a server with no modules.
func NewServer() *Server {
	return &Server{
		modules: make(map[string]*Module),
		closed:  make(chan struct{}),
	}
}

// AddModule registers (or replaces) a module. A nil Faults means no
// injected faults.
func (s *Server) AddModule(name string, store *Store, faults *Faults) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.modules[name] = &Module{Store: store, Faults: faults}
}

// Module returns a registered module.
func (s *Server) Module(name string) (*Module, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.modules[name]
	return m, ok
}

// Listen starts accepting connections on addr ("127.0.0.1:0" for an
// ephemeral port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("repo: listen: %w", err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the server and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) readTimeout() time.Duration {
	if s.ReadTimeout > 0 {
		return s.ReadTimeout
	}
	return 30 * time.Second
}

// handle serves one connection. Each accepted connection runs on its own
// goroutine (see acceptLoop), so a slow or hung client never stalls the
// accept loop or other clients.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	defer w.Flush()

	for {
		// Rolling per-request deadline: covers reading the next command
		// and writing its response. A conn that refuses the deadline is
		// dropped rather than served unbounded.
		if err := conn.SetDeadline(time.Now().Add(s.readTimeout())); err != nil {
			return
		}
		line, err := readLine(r)
		if err != nil {
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			_ = writeLine(w, "ERR empty request")
			return
		}
		switch fields[0] {
		case "LIST":
			if len(fields) != 2 {
				_ = writeLine(w, "ERR LIST wants 1 argument")
				return
			}
			if !s.serveList(w, fields[1]) {
				return
			}
		case "GET":
			if len(fields) != 3 {
				_ = writeLine(w, "ERR GET wants 2 arguments")
				return
			}
			if !s.serveGet(w, fields[1], fields[2]) {
				return
			}
		case "STAT":
			if len(fields) != 3 {
				_ = writeLine(w, "ERR STAT wants 2 arguments")
				return
			}
			if !s.serveStat(w, fields[1], fields[2]) {
				return
			}
		case "QUIT":
			return
		default:
			_ = writeLine(w, "ERR unknown command %q", fields[0])
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// moduleFor resolves a module, applying connection-level faults: refusal,
// global delay, the scripted schedule, and the module-level ("") fail rate.
// ok=false means the connection should be dropped as if the server were
// unreachable.
func (s *Server) moduleFor(name string) (*Module, bool, error) {
	m, found := s.Module(name)
	if !found {
		return nil, true, fmt.Errorf("no such module %q", name)
	}
	if m.Faults.refusing() {
		return nil, false, nil
	}
	if d := m.Faults.currentDelay(); d > 0 {
		time.Sleep(d)
	}
	switch m.Faults.scriptAction() {
	case ActDropConn:
		return nil, false, nil
	case ActErr:
		return nil, true, fmt.Errorf("scripted fault")
	}
	if m.Faults.shouldFail("") {
		return nil, false, nil
	}
	return m, true, nil
}

func (s *Server) serveList(w *bufio.Writer, module string) bool {
	m, keep, err := s.moduleFor(module)
	if !keep {
		return false
	}
	if err != nil {
		_ = writeLine(w, "ERR %v", err)
		return true
	}
	snapshot := m.Store.Snapshot()
	names := make([]string, 0, len(snapshot))
	for name := range snapshot {
		names = append(names, name)
	}
	sort.Strings(names)
	type entry struct {
		name string
		size int
	}
	var entries []entry
	for _, name := range names {
		if m.Faults.dropped(name) {
			continue
		}
		entries = append(entries, entry{name, len(snapshot[name])})
	}
	if err := writeLine(w, "OK %d", len(entries)); err != nil {
		return false
	}
	for _, e := range entries {
		if err := writeLine(w, "%s %d", e.name, e.size); err != nil {
			return false
		}
	}
	return true
}

func (s *Server) serveGet(w *bufio.Writer, module, name string) bool {
	m, keep, err := s.moduleFor(module)
	if !keep {
		return false
	}
	if err != nil {
		_ = writeLine(w, "ERR %v", err)
		return true
	}
	if !validName(name) {
		_ = writeLine(w, "ERR invalid object name")
		return true
	}
	if d := m.Faults.objectDelay(name); d > 0 {
		time.Sleep(d)
	}
	if m.Faults.shouldFail(name) {
		return false
	}
	content, ok := m.Store.Get(name)
	if !ok || m.Faults.dropped(name) {
		_ = writeLine(w, "ERR no such object %q", name)
		return true
	}
	if m.Faults.corrupted(name) || m.Faults.shouldCorrupt(name) {
		content = corruptBytes(content)
	}
	if err := writeLine(w, "OK %d", len(content)); err != nil {
		return false
	}
	if m.Faults.truncated(name) {
		// Correct header, half the body, dead connection: a torn transfer.
		_, _ = w.Write(content[:len(content)/2])
		_ = w.Flush()
		return false
	}
	if d := m.Faults.slowLorisDelay(); d > 0 {
		// Trickle one byte per interval: the connection is alive, progress
		// is nearly zero — only a per-request deadline (and the breaker
		// above it) defends against this.
		for i := range content {
			time.Sleep(d)
			if err := w.WriteByte(content[i]); err != nil {
				return false
			}
			if err := w.Flush(); err != nil {
				return false
			}
		}
		return true
	}
	if bw := m.Faults.bandwidthLimit(); bw > 0 {
		// Sustained byte-rate cap: ship the body in ticks of bw/10 bytes per
		// 100ms (at least 1 byte per tick), so the transfer progresses at
		// roughly bytesPerSec and a deadline budget — not a first-byte
		// timeout — decides whether the client survives it.
		chunk := bw / 10
		if chunk < 1 {
			chunk = 1
		}
		for off := 0; off < len(content); off += chunk {
			time.Sleep(100 * time.Millisecond)
			end := off + chunk
			if end > len(content) {
				end = len(content)
			}
			if _, err := w.Write(content[off:end]); err != nil {
				return false
			}
			if err := w.Flush(); err != nil {
				return false
			}
		}
		return true
	}
	if _, err := w.Write(content); err != nil {
		return false
	}
	return true
}

// serveStat answers a STAT query with the object's size and SHA-256 hash,
// after applying the same fault plan as GET (a corrupted object reports the
// corrupted hash — the client must not be able to detect faults for free).
func (s *Server) serveStat(w *bufio.Writer, module, name string) bool {
	m, keep, err := s.moduleFor(module)
	if !keep {
		return false
	}
	if err != nil {
		_ = writeLine(w, "ERR %v", err)
		return true
	}
	if !validName(name) {
		_ = writeLine(w, "ERR invalid object name")
		return true
	}
	if d := m.Faults.objectDelay(name); d > 0 {
		time.Sleep(d)
	}
	if m.Faults.shouldFail(name) {
		return false
	}
	content, ok := m.Store.Get(name)
	if !ok || m.Faults.dropped(name) {
		_ = writeLine(w, "ERR no such object %q", name)
		return true
	}
	if m.Faults.corrupted(name) || m.Faults.shouldCorrupt(name) {
		content = corruptBytes(content)
	}
	sum := sha256.Sum256(content)
	if m.Faults.statTruncated(name) {
		// Tear the response line in half and drop the connection: the
		// incremental protocol fails while GET still serves cleanly.
		line := fmt.Sprintf("OK %d %s", len(content), hex.EncodeToString(sum[:]))
		_, _ = w.WriteString(line[:len(line)/2])
		_ = w.Flush()
		return false
	}
	return writeLine(w, "OK %d %s", len(content), hex.EncodeToString(sum[:])) == nil
}

// Serve is a convenience for tests: start a server for a single module on
// an ephemeral port and return its URI and a shutdown func.
func Serve(ctx context.Context, module string, store *Store, faults *Faults) (URI, func(), error) {
	srv := NewServer()
	srv.AddModule(module, store, faults)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return URI{}, nil, err
	}
	stop := func() { _ = srv.Close() }
	if ctx != nil {
		go func() {
			<-ctx.Done()
			stop()
		}()
	}
	return URI{Host: addr, Module: module}, stop, nil
}
