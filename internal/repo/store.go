// Package repo implements RPKI publication points: in-memory object stores
// controlled by their issuing authority, a TCP server and client speaking a
// minimal rsync-like synchronization protocol ("rsynclite"), and fault
// injection for modeling the delivery failures at the heart of the paper's
// Side Effects 6 and 7.
//
// Two design decisions of the real RPKI are preserved faithfully because the
// paper's attacks depend on them: (1) objects are stored at directories
// controlled by their *issuer*, not their subject, so an issuer can delete
// or overwrite any object it published ("stealthy revocation"); and (2)
// delivery runs over TCP/IP, whose availability can itself depend on the
// routes the RPKI validates (the circular dependency of Side Effect 7).
package repo

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// storeShardCount is the number of lock shards per store. Sixteen keeps
// per-shard contention negligible even with tens of validation workers
// hammering one publication point, at a fixed 16-mutex cost per store.
const storeShardCount = 16

// Store is one publication point's object store: a flat namespace of files.
// It is safe for concurrent use. The publishing authority may overwrite or
// delete any object at any time — persistently named, mutable objects are an
// RPKI design decision (key rollover support) that enables stealthy
// revocation.
//
// The namespace is sharded across storeShardCount locks so that concurrent
// readers (parallel relying-party workers, monitors) do not serialize on one
// mutex. Single-object operations are atomic; Snapshot and Replace are
// atomic per shard, which preserves the pre-sharding guarantee observable by
// fetchers (a snapshot could always land between two Puts of a multi-object
// republish).
type Store struct {
	shards [storeShardCount]storeShard
	// version counts mutations. It is bumped after the mutation lands,
	// while the mutated shard's lock is still held: a reader that observes
	// version v before snapshotting therefore sees every mutation counted
	// by v, so version-equality proves snapshot-equality (never the
	// reverse order, which would let an unchanged version hide new data).
	version atomic.Uint64
}

type storeShard struct {
	mu sync.RWMutex
	// files maps object name to content. guarded by mu.
	files map[string][]byte
}

// NewStore returns an empty publication point.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		//lint:ignore guardedby the store is not yet published to any other goroutine
		s.shards[i].files = make(map[string][]byte)
	}
	return s
}

// shardIndex picks the lock shard for an object name (FNV-1a).
func shardIndex(name string) int {
	const offset, prime = 2166136261, 16777619
	h := uint32(offset)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * prime
	}
	return int(h % storeShardCount)
}

// Put publishes (or overwrites) an object.
func (s *Store) Put(name string, content []byte) {
	sh := &s.shards[shardIndex(name)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.files[name] = append([]byte(nil), content...)
	s.version.Add(1)
}

// Delete removes an object. Deleting a never-published name is a no-op.
func (s *Store) Delete(name string) {
	sh := &s.shards[shardIndex(name)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.files[name]; ok {
		delete(sh.files, name)
		s.version.Add(1)
	}
}

// Get returns the content of an object.
func (s *Store) Get(name string) ([]byte, bool) {
	sh := &s.shards[shardIndex(name)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	content, ok := sh.files[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), content...), true
}

// List returns the sorted names of all published objects.
func (s *Store) List() []string {
	var names []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for name := range sh.files {
			names = append(names, name)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(names)
	return names
}

// Len returns the number of published objects.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.files)
		sh.mu.RUnlock()
	}
	return n
}

// Version returns a counter incremented on every mutation, for cheap
// change detection by monitors.
func (s *Store) Version() uint64 {
	return s.version.Load()
}

// Snapshot returns a deep copy of the store contents, for diffing by
// monitors and for fetches.
func (s *Store) Snapshot() map[string][]byte {
	out := make(map[string][]byte, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for name, content := range sh.files {
			out[name] = append([]byte(nil), content...)
		}
		sh.mu.RUnlock()
	}
	return out
}

// Replace atomically replaces the entire contents of the store. All shard
// locks are held for the duration, so no reader observes a mix of old and
// new contents.
func (s *Store) Replace(files map[string][]byte) {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	s.replaceContentsLocked(files)
	s.version.Add(1)
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
}

// replaceContentsLocked rebuilds every shard's namespace from files. All
// shard locks must be held.
func (s *Store) replaceContentsLocked(files map[string][]byte) {
	for i := range s.shards {
		s.shards[i].files = make(map[string][]byte, len(files)/storeShardCount+1)
	}
	for name, content := range files {
		sh := &s.shards[shardIndex(name)]
		sh.files[name] = append([]byte(nil), content...)
	}
}

// String summarizes the store.
func (s *Store) String() string {
	return fmt.Sprintf("store{%d objects, v%d}", s.Len(), s.Version())
}
