// Package repo implements RPKI publication points: in-memory object stores
// controlled by their issuing authority, a TCP server and client speaking a
// minimal rsync-like synchronization protocol ("rsynclite"), and fault
// injection for modeling the delivery failures at the heart of the paper's
// Side Effects 6 and 7.
//
// Two design decisions of the real RPKI are preserved faithfully because the
// paper's attacks depend on them: (1) objects are stored at directories
// controlled by their *issuer*, not their subject, so an issuer can delete
// or overwrite any object it published ("stealthy revocation"); and (2)
// delivery runs over TCP/IP, whose availability can itself depend on the
// routes the RPKI validates (the circular dependency of Side Effect 7).
package repo

import (
	"fmt"
	"sort"
	"sync"
)

// Store is one publication point's object store: a flat namespace of files.
// It is safe for concurrent use. The publishing authority may overwrite or
// delete any object at any time — persistently named, mutable objects are an
// RPKI design decision (key rollover support) that enables stealthy
// revocation.
type Store struct {
	mu      sync.RWMutex
	files   map[string][]byte
	version uint64
}

// NewStore returns an empty publication point.
func NewStore() *Store {
	return &Store{files: make(map[string][]byte)}
}

// Put publishes (or overwrites) an object.
func (s *Store) Put(name string, content []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[name] = append([]byte(nil), content...)
	s.version++
}

// Delete removes an object. Deleting a never-published name is a no-op.
func (s *Store) Delete(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[name]; ok {
		delete(s.files, name)
		s.version++
	}
}

// Get returns the content of an object.
func (s *Store) Get(name string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	content, ok := s.files[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), content...), true
}

// List returns the sorted names of all published objects.
func (s *Store) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.files))
	for name := range s.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of published objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.files)
}

// Version returns a counter incremented on every mutation, for cheap
// change detection by monitors.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Snapshot returns a deep copy of the store contents, for diffing by
// monitors and for atomic fetches.
func (s *Store) Snapshot() map[string][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string][]byte, len(s.files))
	for name, content := range s.files {
		out[name] = append([]byte(nil), content...)
	}
	return out
}

// Replace atomically replaces the entire contents of the store.
func (s *Store) Replace(files map[string][]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files = make(map[string][]byte, len(files))
	for name, content := range files {
		s.files[name] = append([]byte(nil), content...)
	}
	s.version++
}

// String summarizes the store.
func (s *Store) String() string {
	return fmt.Sprintf("store{%d objects, v%d}", s.Len(), s.Version())
}
