package repo

import (
	"bytes"
	"context"
	"crypto/sha256"
	"strings"
	"testing"
	"time"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	s.Put("a.cer", []byte("alpha"))
	s.Put("b.roa", []byte("beta"))
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	got, ok := s.Get("a.cer")
	if !ok || string(got) != "alpha" {
		t.Error("get failed")
	}
	// Mutating the returned slice must not affect the store.
	got[0] = 'X'
	again, _ := s.Get("a.cer")
	if string(again) != "alpha" {
		t.Error("store aliased its contents")
	}
	v := s.Version()
	s.Put("a.cer", []byte("alpha2")) // overwrite: an RPKI design decision
	if s.Version() != v+1 {
		t.Error("overwrite should bump version")
	}
	s.Delete("b.roa")
	if _, ok := s.Get("b.roa"); ok {
		t.Error("delete failed")
	}
	s.Delete("never-existed")
	if s.Len() != 1 {
		t.Error("spurious entries")
	}
	names := s.List()
	if len(names) != 1 || names[0] != "a.cer" {
		t.Errorf("list = %v", names)
	}
}

func TestStoreSnapshotAndReplace(t *testing.T) {
	s := NewStore()
	s.Put("x", []byte("1"))
	snap := s.Snapshot()
	s.Put("x", []byte("2"))
	if string(snap["x"]) != "1" {
		t.Error("snapshot must be isolated")
	}
	s.Replace(map[string][]byte{"y": []byte("3")})
	if _, ok := s.Get("x"); ok {
		t.Error("replace must clear old contents")
	}
	if got, _ := s.Get("y"); string(got) != "3" {
		t.Error("replace content wrong")
	}
}

func TestParseURI(t *testing.T) {
	uri, obj, err := ParseURI("rsynclite://127.0.0.1:8873/sprint")
	if err != nil || uri.Host != "127.0.0.1:8873" || uri.Module != "sprint" || obj != "" {
		t.Errorf("got %+v %q %v", uri, obj, err)
	}
	uri, obj, err = ParseURI("rsynclite://h:1/mod/file.roa")
	if err != nil || obj != "file.roa" {
		t.Errorf("got %+v %q %v", uri, obj, err)
	}
	if uri.ObjectURI("x.cer") != "rsynclite://h:1/mod/x.cer" {
		t.Errorf("ObjectURI = %q", uri.ObjectURI("x.cer"))
	}
	for _, bad := range []string{"http://x/y", "rsynclite://", "rsynclite://hostonly", "rsynclite:///mod"} {
		if _, _, err := ParseURI(bad); err == nil {
			t.Errorf("ParseURI(%q) should fail", bad)
		}
	}
}

func TestValidName(t *testing.T) {
	for _, good := range []string{"a.cer", "roa-17054.roa", "MFT_1.mft"} {
		if !validName(good) {
			t.Errorf("%q should be valid", good)
		}
	}
	for _, bad := range []string{"", ".", "..", "a/b", "a\\b", "a b", "x\n", strings.Repeat("a", 600)} {
		if validName(bad) {
			t.Errorf("%q should be invalid", bad)
		}
	}
}

func startTestServer(t *testing.T, files map[string][]byte) (URI, *Store, *Faults) {
	t.Helper()
	store := NewStore()
	for name, content := range files {
		store.Put(name, content)
	}
	faults := NewFaults()
	uri, stop, err := Serve(nil, "test", store, faults)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	return uri, store, faults
}

func TestClientListAndGet(t *testing.T) {
	uri, _, _ := startTestServer(t, map[string][]byte{
		"a.cer": []byte("certificate bytes"),
		"b.roa": []byte("roa bytes"),
	})
	c := &Client{Timeout: 5 * time.Second}
	ctx := context.Background()

	names, err := c.List(ctx, uri)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names["a.cer"] != len("certificate bytes") {
		t.Errorf("list = %v", names)
	}
	content, err := c.Get(ctx, uri, "a.cer")
	if err != nil {
		t.Fatal(err)
	}
	if string(content) != "certificate bytes" {
		t.Errorf("got %q", content)
	}
	if _, err := c.Get(ctx, uri, "missing"); err == nil {
		t.Error("missing object should error")
	}
	if _, err := c.List(ctx, URI{Host: uri.Host, Module: "nope"}); err == nil {
		t.Error("missing module should error")
	}
}

func TestClientFetchAll(t *testing.T) {
	files := map[string][]byte{
		"a.cer": []byte("aaa"),
		"b.roa": []byte("bbb"),
		"c.mft": []byte("ccc"),
	}
	uri, _, _ := startTestServer(t, files)
	c := &Client{Timeout: 5 * time.Second}
	got, err := c.FetchAll(context.Background(), uri)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d objects", len(got))
	}
	for name, want := range files {
		if !bytes.Equal(got[name], want) {
			t.Errorf("%s mismatch", name)
		}
	}
}

func TestFaultDrop(t *testing.T) {
	uri, _, faults := startTestServer(t, map[string][]byte{
		"keep.cer": []byte("k"),
		"drop.roa": []byte("d"),
	})
	faults.Drop("drop.roa")
	c := &Client{Timeout: 5 * time.Second}
	ctx := context.Background()
	names, err := c.List(ctx, uri)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := names["drop.roa"]; ok {
		t.Error("dropped object should not be listed")
	}
	if _, err := c.Get(ctx, uri, "drop.roa"); err == nil {
		t.Error("dropped object should not be fetchable")
	}
	faults.Restore("drop.roa")
	if _, err := c.Get(ctx, uri, "drop.roa"); err != nil {
		t.Errorf("restored object should be fetchable: %v", err)
	}
}

func TestFaultCorrupt(t *testing.T) {
	uri, _, faults := startTestServer(t, map[string][]byte{
		"obj.roa": []byte("this content will be corrupted in flight by the fault plan"),
	})
	faults.Corrupt("obj.roa")
	c := &Client{Timeout: 5 * time.Second}
	got, err := c.Get(context.Background(), uri, "obj.roa")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, []byte("this content will be corrupted in flight by the fault plan")) {
		t.Error("content should have been corrupted")
	}
	faults.Restore("")
	got, err = c.Get(context.Background(), uri, "obj.roa")
	if err != nil || !bytes.Equal(got, []byte("this content will be corrupted in flight by the fault plan")) {
		t.Error("restore should heal corruption")
	}
}

func TestFaultRefuse(t *testing.T) {
	uri, _, faults := startTestServer(t, map[string][]byte{"a": []byte("x")})
	faults.Refuse(true)
	c := &Client{Timeout: 2 * time.Second}
	if _, err := c.List(context.Background(), uri); err == nil {
		t.Error("refused module should fail")
	}
	faults.Refuse(false)
	if _, err := c.List(context.Background(), uri); err != nil {
		t.Errorf("restored module should work: %v", err)
	}
}

func TestFetchAllWithPartialFailure(t *testing.T) {
	uri, _, faults := startTestServer(t, map[string][]byte{
		"good.cer": []byte("g"),
		"bad.roa":  []byte("b"),
	})
	// Drop from GET only by dropping after LIST: simulate by dropping the
	// object between LIST and GET via a store delete race — easier: drop
	// the name and assert FetchAll surfaces a partial result.
	c := &Client{Timeout: 5 * time.Second}
	all, err := c.FetchAll(context.Background(), uri)
	if err != nil || len(all) != 2 {
		t.Fatalf("clean fetch failed: %v", err)
	}
	faults.Drop("bad.roa")
	all, err = c.FetchAll(context.Background(), uri)
	if err != nil {
		t.Fatalf("dropped object should just be absent from LIST: %v", err)
	}
	if _, ok := all["bad.roa"]; ok {
		t.Error("dropped object should be absent")
	}
	if _, ok := all["good.cer"]; !ok {
		t.Error("good object should be present")
	}
}

func TestServerConcurrentClients(t *testing.T) {
	uri, _, _ := startTestServer(t, map[string][]byte{"o": bytes.Repeat([]byte("x"), 10000)})
	c := &Client{Timeout: 5 * time.Second}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := c.FetchAll(context.Background(), uri)
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestMultiModuleServer(t *testing.T) {
	srv := NewServer()
	s1, s2 := NewStore(), NewStore()
	s1.Put("one", []byte("1"))
	s2.Put("two", []byte("2"))
	srv.AddModule("sprint", s1, nil)
	srv.AddModule("continental", s2, nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := &Client{Timeout: 5 * time.Second}
	ctx := context.Background()
	got, err := c.Get(ctx, URI{Host: addr, Module: "sprint"}, "one")
	if err != nil || string(got) != "1" {
		t.Errorf("sprint module: %q %v", got, err)
	}
	got, err = c.Get(ctx, URI{Host: addr, Module: "continental"}, "two")
	if err != nil || string(got) != "2" {
		t.Errorf("continental module: %q %v", got, err)
	}
}

func TestClientStat(t *testing.T) {
	content := []byte("stat me please")
	uri, _, faults := startTestServer(t, map[string][]byte{"obj.roa": content})
	c := &Client{Timeout: 5 * time.Second}
	ctx := context.Background()

	info, err := c.Stat(ctx, uri, "obj.roa")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != len(content) || info.Hash != sha256.Sum256(content) {
		t.Errorf("stat = %+v", info)
	}
	if _, err := c.Stat(ctx, uri, "missing"); err == nil {
		t.Error("missing object must error")
	}
	// A corrupted object reports the corrupted hash: faults are not
	// detectable via STAT alone.
	faults.Corrupt("obj.roa")
	info2, err := c.Stat(ctx, uri, "obj.roa")
	if err != nil {
		t.Fatal(err)
	}
	if info2.Hash == info.Hash {
		t.Error("corrupted STAT should expose a different hash")
	}
	served, _ := c.Get(ctx, uri, "obj.roa")
	if info2.Hash != sha256.Sum256(served) {
		t.Error("STAT hash must match what GET serves")
	}
}

func TestSyncIncremental(t *testing.T) {
	files := map[string][]byte{
		"a.cer": []byte("certificate a"),
		"b.roa": []byte("roa b"),
		"c.mft": []byte("manifest c"),
	}
	uri, store, _ := startTestServer(t, files)
	c := &Client{Timeout: 5 * time.Second}
	ctx := context.Background()

	// Cold sync: everything downloaded.
	res, err := c.SyncIncremental(ctx, uri, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Downloaded != 3 || res.Reused != 0 {
		t.Fatalf("cold sync: %+v", res)
	}

	// No changes: everything reused.
	res2, err := c.SyncIncremental(ctx, uri, res.Files)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Downloaded != 0 || res2.Reused != 3 {
		t.Fatalf("warm sync: downloaded=%d reused=%d", res2.Downloaded, res2.Reused)
	}
	if res.Unchanged || !res2.Unchanged {
		t.Errorf("Unchanged: cold=%v warm=%v, want false/true", res.Unchanged, res2.Unchanged)
	}

	// One overwrite (same size!), one delete, one add.
	store.Put("b.roa", []byte("ROA B")) // same length, different bytes
	store.Delete("c.mft")
	store.Put("d.crl", []byte("crl d"))
	res3, err := c.SyncIncremental(ctx, uri, res2.Files)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Downloaded != 2 { // b.roa (hash changed) + d.crl (new)
		t.Errorf("delta sync downloaded %d, want 2", res3.Downloaded)
	}
	if res3.Reused != 1 || res3.Removed != 1 {
		t.Errorf("delta sync: %+v", res3)
	}
	if res3.Unchanged {
		t.Error("a delta sync must not report Unchanged")
	}
	if string(res3.Files["b.roa"]) != "ROA B" {
		t.Error("changed content not refreshed")
	}
	if _, ok := res3.Files["c.mft"]; ok {
		t.Error("deleted object should be gone")
	}
}

func TestSyncIncrementalTruncatedStat(t *testing.T) {
	// A torn STAT response line kills the incremental protocol, but plain
	// GETs still work: a caller can always fall back to a clean full fetch.
	uri, _, faults := startTestServer(t, map[string][]byte{"x.roa": []byte("content of x")})
	c := &Client{
		Timeout: time.Second,
		Retry:   RetryPolicy{MaxRetries: 1, BaseDelay: time.Millisecond, Jitter: -1},
	}
	ctx := context.Background()
	res, err := c.SyncIncremental(ctx, uri, nil)
	if err != nil {
		t.Fatal(err)
	}
	faults.TruncateStat("x.roa")
	if _, err := c.SyncIncremental(ctx, uri, res.Files); err == nil {
		t.Fatal("torn STAT must fail the incremental sync, not silently reuse")
	}
	files, err := c.FetchAll(ctx, uri)
	if err != nil {
		t.Fatalf("full fetch must survive a STAT-only fault: %v", err)
	}
	if string(files["x.roa"]) != "content of x" {
		t.Error("full fetch served wrong bytes")
	}
	// The fault clears: the incremental path recovers.
	faults.Restore("x.roa")
	res2, err := c.SyncIncremental(ctx, uri, res.Files)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Reused != 1 || !res2.Unchanged {
		t.Errorf("recovered sync: %+v", res2)
	}
}

func TestSyncIncrementalSeesThroughFaults(t *testing.T) {
	uri, _, faults := startTestServer(t, map[string][]byte{"x.roa": []byte("content of x")})
	c := &Client{Timeout: 5 * time.Second}
	ctx := context.Background()
	res, err := c.SyncIncremental(ctx, uri, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Corruption changes the served hash → incremental sync re-downloads
	// and the relying party sees the corrupted (rejectable) bytes.
	faults.Corrupt("x.roa")
	res2, err := c.SyncIncremental(ctx, uri, res.Files)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Downloaded != 1 {
		t.Errorf("corruption should force a re-download, got %+v", res2)
	}
	if string(res2.Files["x.roa"]) == "content of x" {
		t.Error("corrupted bytes expected")
	}
}
