package repo

import (
	"bufio"
	"io"
	"strings"
	"testing"
)

// endlessReader yields 'a' forever — the malicious-server stream that never
// sends a newline. readLine must reject it after maxLineLen bytes instead of
// buffering without bound (the old ReadString-based readLine accumulated the
// whole stream before its length check).
type endlessReader struct{ n int64 }

func (e *endlessReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 'a'
	}
	e.n += int64(len(p))
	return len(p), nil
}

func TestReadLineBoundsNewlineFreeStream(t *testing.T) {
	src := &endlessReader{}
	r := bufio.NewReader(src)
	_, err := readLine(r)
	if err == nil || !strings.Contains(err.Error(), "too long") {
		t.Fatalf("newline-free stream: err = %v", err)
	}
	// The reader must have stopped near the cap, not buffered megabytes.
	if src.n > 4*maxLineLen {
		t.Fatalf("readLine consumed %d bytes before giving up", src.n)
	}
}

func TestReadLineLengthEdges(t *testing.T) {
	// Longest legal line: maxLineLen bytes including the newline.
	legal := strings.Repeat("a", maxLineLen-1) + "\n"
	got, err := readLine(bufio.NewReader(strings.NewReader(legal)))
	if err != nil {
		t.Fatalf("limit-length line: %v", err)
	}
	if len(got) != maxLineLen-1 {
		t.Fatalf("got %d bytes", len(got))
	}
	// One byte over must fail even though the line does terminate.
	over := strings.Repeat("a", maxLineLen) + "\n"
	if _, err := readLine(bufio.NewReader(strings.NewReader(over))); err == nil {
		t.Fatal("over-length line accepted")
	}
	// Plain EOF still surfaces as EOF.
	if _, err := readLine(bufio.NewReader(strings.NewReader(""))); err != io.EOF {
		t.Fatalf("empty stream: err = %v", err)
	}
}
