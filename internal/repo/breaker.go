package repo

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCircuitOpen is returned (wrapped) when a request is refused because the
// publication point's circuit breaker is open: the point has failed enough
// consecutive requests that the client fails fast instead of burning a
// worker on a dead or slow-loris repository (the Stalloris downgrade
// pattern — a repository need not be down to hurt, merely slow).
var ErrCircuitOpen = errors.New("repo: circuit breaker open")

// BreakerState is one of the three classic circuit-breaker states.
type BreakerState uint8

const (
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests fail fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request is allowed through; its outcome
	// closes or re-opens the breaker.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", uint8(s))
}

// BreakerConfig tunes a BreakerSet. The zero value uses the defaults.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive request failures that
	// opens a point's breaker (default 5).
	FailureThreshold int
	// Cooldown is how long an open breaker refuses requests before allowing
	// a half-open probe (default 30s).
	Cooldown time.Duration
	// Clock supplies the time (default time.Now); injectable for tests.
	Clock func() time.Time
}

func (c BreakerConfig) threshold() int {
	if c.FailureThreshold <= 0 {
		return 5
	}
	return c.FailureThreshold
}

func (c BreakerConfig) cooldown() time.Duration {
	if c.Cooldown <= 0 {
		return 30 * time.Second
	}
	return c.Cooldown
}

func (c BreakerConfig) now() time.Time {
	if c.Clock == nil {
		return time.Now()
	}
	return c.Clock()
}

// breaker is the per-publication-point state machine.
type breaker struct {
	state    BreakerState
	failures int // consecutive failures while closed
	openedAt time.Time
	probing  bool // half-open: a probe is in flight
	// probation: closed via a half-open probe, not yet confirmed by a second
	// success. A failure on probation re-opens immediately — a point that
	// serves probes and stalls everything else must not get a fresh
	// threshold's worth of workers every cooldown (the Stalloris probe
	// timing game).
	probation bool
}

// BreakerSet holds one circuit breaker per publication point (keyed by URI).
// It is safe for concurrent use and may be shared between Clients so that
// every fetcher in a process agrees on which points are dead. A nil
// *BreakerSet disables breaking: Allow always permits, Success/Failure are
// no-ops.
type BreakerSet struct {
	cfg    BreakerConfig
	mu     sync.Mutex
	points map[string]*breaker
	// onTransition/onFastFail observe state changes and refused requests
	// (nil: unobserved). Invoked under mu — observers must not call back
	// into the set. guarded by mu.
	onTransition func(key string, from, to BreakerState)
	onFastFail   func(key string)

	// trips and fastFails are lifetime counters, atomic so scrape-time
	// metric callbacks read them without the lock.
	trips     atomic.Int64
	fastFails atomic.Int64
}

// NewBreakerSet builds an empty breaker set.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg, points: make(map[string]*breaker)}
}

// Observe registers callbacks fired on every state transition and every
// fast-failed request (either may be nil). Callbacks run with the set's
// lock held and must not call back into it. Nil-safe.
func (b *BreakerSet) Observe(onTransition func(key string, from, to BreakerState), onFastFail func(key string)) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.onTransition = onTransition
	b.onFastFail = onFastFail
	b.mu.Unlock()
}

// transitionLocked moves p to state next, notifying the observer. Callers
// hold b.mu.
func (b *BreakerSet) transitionLocked(key string, p *breaker, next BreakerState) {
	from := p.state
	p.state = next
	if b.onTransition != nil && from != next {
		b.onTransition(key, from, next)
	}
}

func (b *BreakerSet) point(key string) *breaker {
	p, ok := b.points[key]
	if !ok {
		p = &breaker{}
		b.points[key] = p
	}
	return p
}

// Allow reports whether a request to key may proceed. While open it fails
// fast with ErrCircuitOpen (wrapped); after the cooldown it admits exactly
// one half-open probe at a time.
func (b *BreakerSet) Allow(key string) error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.point(key)
	switch p.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if remaining := b.cfg.cooldown() - b.cfg.now().Sub(p.openedAt); remaining > 0 {
			b.fastFailLocked(key)
			return fmt.Errorf("%w for %s (%v of cooldown remaining)", ErrCircuitOpen, key, remaining)
		}
		b.transitionLocked(key, p, BreakerHalfOpen)
		p.probing = true
		return nil
	default: // BreakerHalfOpen
		if p.probing {
			b.fastFailLocked(key)
			return fmt.Errorf("%w for %s (probe in flight)", ErrCircuitOpen, key)
		}
		p.probing = true
		return nil
	}
}

// Success records a completed exchange with key, closing its breaker.
func (b *BreakerSet) Success(key string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.point(key)
	p.probation = p.state == BreakerHalfOpen
	b.transitionLocked(key, p, BreakerClosed)
	p.failures = 0
	p.probing = false
}

// Failure records a transport-level failure against key. Crossing the
// threshold (or failing a half-open probe) opens the breaker and starts the
// cooldown.
func (b *BreakerSet) Failure(key string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.point(key)
	switch p.state {
	case BreakerClosed:
		p.failures++
		if p.probation || p.failures >= b.cfg.threshold() {
			b.transitionLocked(key, p, BreakerOpen)
			p.openedAt = b.cfg.now()
			p.failures = 0
			p.probation = false
			b.trips.Add(1)
		}
	case BreakerHalfOpen:
		b.transitionLocked(key, p, BreakerOpen)
		p.openedAt = b.cfg.now()
		p.probing = false
		b.trips.Add(1)
	case BreakerOpen:
		// Concurrent failures while already open change nothing.
	}
}

// fastFailLocked counts one refused request, notifying the observer.
// Callers hold b.mu.
func (b *BreakerSet) fastFailLocked(key string) {
	b.fastFails.Add(1)
	if b.onFastFail != nil {
		b.onFastFail(key)
	}
}

// States snapshots every known point's current state — the scrape-time
// source for per-point breaker gauges. Nil-safe.
func (b *BreakerSet) States() map[string]BreakerState {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]BreakerState, len(b.points))
	for key, p := range b.points {
		out[key] = p.state
	}
	return out
}

// State returns key's current state (Closed for unknown keys).
func (b *BreakerSet) State(key string) BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if p, ok := b.points[key]; ok {
		return p.state
	}
	return BreakerClosed
}

// Trips counts closed→open (and half-open→open) transitions since creation.
func (b *BreakerSet) Trips() int64 {
	if b == nil {
		return 0
	}
	return b.trips.Load()
}

// FastFails counts requests refused while a breaker was open.
func (b *BreakerSet) FastFails() int64 {
	if b == nil {
		return 0
	}
	return b.fastFails.Load()
}

// Reset forgets all per-point state (counters are kept).
func (b *BreakerSet) Reset() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.points = make(map[string]*breaker)
}
