package repo

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// fastRetry is a retry policy tuned for tests: deterministic timing, no
// jitter, millisecond backoff.
func fastRetry(maxRetries int) RetryPolicy {
	return RetryPolicy{MaxRetries: maxRetries, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Jitter: -1}
}

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreakerSet(BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         time.Minute,
		Clock:            func() time.Time { return now },
	})
	const key = "rsynclite://h:1/p"

	if err := b.Allow(key); err != nil {
		t.Fatalf("closed breaker must allow: %v", err)
	}
	b.Failure(key)
	b.Failure(key)
	if got := b.State(key); got != BreakerClosed {
		t.Fatalf("below threshold: state = %v", got)
	}
	b.Failure(key) // third consecutive failure trips it
	if got := b.State(key); got != BreakerOpen {
		t.Fatalf("at threshold: state = %v", got)
	}
	if b.Trips() != 1 {
		t.Errorf("trips = %d, want 1", b.Trips())
	}
	if err := b.Allow(key); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker must fast-fail, got %v", err)
	}
	if b.FastFails() != 1 {
		t.Errorf("fastFails = %d, want 1", b.FastFails())
	}

	// Cooldown elapses: exactly one half-open probe goes through.
	now = now.Add(61 * time.Second)
	if err := b.Allow(key); err != nil {
		t.Fatalf("post-cooldown probe must be allowed: %v", err)
	}
	if got := b.State(key); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	if err := b.Allow(key); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("second concurrent probe must be refused")
	}
	b.Failure(key) // probe fails: re-open, new cooldown
	if got := b.State(key); got != BreakerOpen {
		t.Fatalf("failed probe should re-open, state = %v", got)
	}
	if b.Trips() != 2 {
		t.Errorf("trips = %d, want 2", b.Trips())
	}

	// Second cooldown, successful probe: closed again.
	now = now.Add(61 * time.Second)
	if err := b.Allow(key); err != nil {
		t.Fatalf("probe after re-open: %v", err)
	}
	b.Success(key)
	if got := b.State(key); got != BreakerClosed {
		t.Fatalf("successful probe should close, state = %v", got)
	}
	if err := b.Allow(key); err != nil {
		t.Errorf("closed again: %v", err)
	}

	// Unknown keys and state strings.
	if b.State("never-seen") != BreakerClosed {
		t.Error("unknown key should read closed")
	}
	for _, s := range []BreakerState{BreakerClosed, BreakerOpen, BreakerHalfOpen} {
		if s.String() == "" {
			t.Errorf("state %d has empty string", s)
		}
	}
}

func TestBreakerNilSetIsNoop(t *testing.T) {
	var b *BreakerSet
	if err := b.Allow("x"); err != nil {
		t.Fatal("nil set must allow")
	}
	b.Success("x")
	b.Failure("x")
	b.Reset()
	if b.State("x") != BreakerClosed || b.Trips() != 0 || b.FastFails() != 0 {
		t.Error("nil set must read as empty")
	}
}

func TestFaultRateRetryConvergence(t *testing.T) {
	// An intermittent point failing 2 of every 3 requests: a retrying client
	// converges to the exact same bytes a healthy fetch yields, and the
	// retry count is exact — degradation observable, results unchanged.
	files := map[string][]byte{
		"a.cer": []byte("certificate a"),
		"b.roa": []byte("roa b"),
		"c.mft": []byte("manifest c"),
	}
	uri, _, faults := startTestServer(t, files)
	faults.FailRate("", 2, 3)
	c := &Client{Timeout: 2 * time.Second, Retry: fastRetry(3)}
	got, err := c.FetchAll(context.Background(), uri)
	if err != nil {
		t.Fatalf("flaky fetch should converge: %v", err)
	}
	for name, want := range files {
		if !bytes.Equal(got[name], want) {
			t.Errorf("%s mismatch through faults", name)
		}
	}
	// LIST + 3 GETs, each needing attempts F,F,S: exactly 2 retries apiece.
	if retries := c.Stats().Retries; retries != 8 {
		t.Errorf("retries = %d, want 8", retries)
	}
}

func TestFaultRateExhaustionFails(t *testing.T) {
	uri, _, faults := startTestServer(t, map[string][]byte{"x.roa": []byte("x")})
	faults.FailRate("", 1, 1) // every request fails
	c := &Client{Timeout: time.Second, Retry: fastRetry(2)}
	if _, err := c.FetchAll(context.Background(), uri); err == nil {
		t.Fatal("total failure must surface after retries are exhausted")
	}
	if retries := c.Stats().Retries; retries != 2 {
		t.Errorf("retries = %d, want 2", retries)
	}
}

func TestBreakerTripsOnDeadPoint(t *testing.T) {
	uri, _, faults := startTestServer(t, map[string][]byte{"a": []byte("x")})
	faults.Refuse(true)
	c := &Client{
		Timeout:  time.Second,
		Retry:    fastRetry(10),
		Breakers: NewBreakerSet(BreakerConfig{FailureThreshold: 3, Cooldown: time.Hour}),
	}
	_, err := c.FetchAll(context.Background(), uri)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("dead point should trip the breaker before retries run out, got %v", err)
	}
	st := c.Stats()
	if st.BreakerTrips != 1 {
		t.Errorf("trips = %d, want 1", st.BreakerTrips)
	}
	if st.Retries != 3 {
		// Threshold failures, then the open breaker ends the retry loop.
		t.Errorf("retries = %d, want 3", st.Retries)
	}
	if st.BreakerFastFails < 1 {
		t.Errorf("fastFails = %d, want >= 1", st.BreakerFastFails)
	}
	// Subsequent requests fail fast without touching the network.
	start := time.Now()
	if _, err := c.List(context.Background(), uri); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker should fast-fail List, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("fast-fail took %v", elapsed)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	uri, _, faults := startTestServer(t, map[string][]byte{"a": []byte("alive")})
	faults.Refuse(true)
	c := &Client{
		Timeout:  time.Second,
		Retry:    fastRetry(5),
		Breakers: NewBreakerSet(BreakerConfig{FailureThreshold: 2, Cooldown: 50 * time.Millisecond}),
	}
	if _, err := c.FetchAll(context.Background(), uri); err == nil {
		t.Fatal("refused point must fail")
	}
	if c.Breakers.State(uri.String()) != BreakerOpen {
		t.Fatal("breaker should be open")
	}
	// The repository heals; after the cooldown one probe succeeds and the
	// breaker closes — no operator intervention needed.
	faults.Refuse(false)
	time.Sleep(60 * time.Millisecond)
	got, err := c.FetchAll(context.Background(), uri)
	if err != nil || string(got["a"]) != "alive" {
		t.Fatalf("recovered point should serve again: %v", err)
	}
	if c.Breakers.State(uri.String()) != BreakerClosed {
		t.Error("successful probe should close the breaker")
	}
	if c.Stats().BreakerTrips != 1 {
		t.Errorf("trips = %d, want 1", c.Stats().BreakerTrips)
	}
}

func TestBreakerDefeatsSlowLoris(t *testing.T) {
	// A slow-loris repository (alive, trickling one byte per interval) must
	// cost the client a couple of request timeouts, not an unbounded stall:
	// the per-request deadline converts the trickle into failures and the
	// breaker stops further attempts.
	uri, _, faults := startTestServer(t, map[string][]byte{
		"big.roa": bytes.Repeat([]byte("x"), 4096),
	})
	faults.SetSlowLoris(100 * time.Millisecond) // ~7 minutes to serve 4KB
	c := &Client{
		Timeout:  150 * time.Millisecond,
		Retry:    fastRetry(5),
		Breakers: NewBreakerSet(BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour}),
	}
	start := time.Now()
	_, err := c.FetchAll(context.Background(), uri)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("slow-loris fetch must fail")
	}
	if c.Stats().BreakerTrips < 1 {
		t.Error("slow-loris should trip the breaker")
	}
	if elapsed > 5*time.Second {
		t.Errorf("fetch stalled %v; the deadline+breaker should bound it", elapsed)
	}
}

func TestFaultTruncatedBody(t *testing.T) {
	content := []byte("this body will be cut in half mid-transfer by the fault plan")
	uri, _, faults := startTestServer(t, map[string][]byte{"torn.roa": content})
	faults.Truncate("torn.roa")
	c := &Client{Timeout: time.Second, Retry: fastRetry(2)}
	if _, err := c.Get(context.Background(), uri, "torn.roa"); err == nil {
		t.Fatal("truncated transfer must fail, not yield partial bytes")
	}
	if retries := c.Stats().Retries; retries != 2 {
		t.Errorf("persistent truncation should burn all retries, got %d", retries)
	}
	faults.Restore("torn.roa")
	got, err := c.Get(context.Background(), uri, "torn.roa")
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("restored object should fetch cleanly: %v", err)
	}
}

func TestFaultScriptedSchedule(t *testing.T) {
	// "Drop the first four requests, then recover": the retrying client
	// rides through the scripted outage with exactly four retries.
	files := map[string][]byte{"a.cer": []byte("a"), "b.roa": []byte("b")}
	uri, _, faults := startTestServer(t, files)
	faults.SetScript(func(requestN int) FaultAction {
		if requestN <= 4 {
			return ActDropConn
		}
		return ActNone
	})
	c := &Client{Timeout: time.Second, Retry: fastRetry(5)}
	got, err := c.FetchAll(context.Background(), uri)
	if err != nil {
		t.Fatalf("scripted outage should converge: %v", err)
	}
	for name, want := range files {
		if !bytes.Equal(got[name], want) {
			t.Errorf("%s mismatch", name)
		}
	}
	if retries := c.Stats().Retries; retries != 4 {
		t.Errorf("retries = %d, want 4", retries)
	}
}

func TestFaultScriptedErrIsPermanent(t *testing.T) {
	uri, _, faults := startTestServer(t, map[string][]byte{"a": []byte("x")})
	faults.SetScript(func(int) FaultAction { return ActErr })
	c := &Client{Timeout: time.Second, Retry: fastRetry(3)}
	_, err := c.Get(context.Background(), uri, "a")
	if err == nil {
		t.Fatal("scripted ERR must fail the request")
	}
	if Retryable(err) {
		t.Error("protocol-level ERR must be classified permanent")
	}
	if retries := c.Stats().Retries; retries != 0 {
		t.Errorf("permanent errors must not be retried, got %d retries", retries)
	}
}

func TestFaultPerObjectDelayIsolated(t *testing.T) {
	// One slow object must not stall the rest of the fetch: the per-request
	// deadline fails it while other connections keep fetching.
	uri, _, faults := startTestServer(t, map[string][]byte{
		"a.cer":    []byte("fast a"),
		"slow.roa": []byte("slow"),
		"z.mft":    []byte("fast z"),
	})
	faults.DelayObject("slow.roa", 500*time.Millisecond)
	c := &Client{Timeout: 100 * time.Millisecond, Retry: fastRetry(1), Concurrency: 2}
	start := time.Now()
	got, err := c.FetchAll(context.Background(), uri)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("the slow object should be reported failed")
	}
	if string(got["a.cer"]) != "fast a" || string(got["z.mft"]) != "fast z" {
		t.Errorf("fast objects should be fetched despite the slow one; got %d objects", len(got))
	}
	if _, ok := got["slow.roa"]; ok {
		t.Error("slow object should have timed out")
	}
	if elapsed > 3*time.Second {
		t.Errorf("fetch took %v; one slow object must not dominate", elapsed)
	}
	// Clearing the delay heals the fetch.
	faults.DelayObject("slow.roa", 0)
	if _, err := c.FetchAll(context.Background(), uri); err != nil {
		t.Errorf("healed fetch: %v", err)
	}
}

func TestFaultSlowLorisPromptCancel(t *testing.T) {
	// Context cancellation must interrupt a read blocked on a trickling
	// server immediately — not wait out the per-request deadline.
	uri, _, faults := startTestServer(t, map[string][]byte{
		"big.roa": bytes.Repeat([]byte("x"), 2048),
	})
	faults.SetSlowLoris(100 * time.Millisecond)
	c := &Client{Timeout: 30 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Get(ctx, uri, "big.roa")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("canceled fetch must fail")
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v to take effect", elapsed)
	}
}

func TestSyncIncrementalFaultRetries(t *testing.T) {
	files := map[string][]byte{
		"a.cer": []byte("certificate a"),
		"b.roa": []byte("roa b"),
		"c.mft": []byte("manifest c"),
	}
	uri, _, faults := startTestServer(t, files)
	c := &Client{Timeout: time.Second, Retry: fastRetry(2)}
	ctx := context.Background()
	cold, err := c.SyncIncremental(ctx, uri, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every other request fails: the delta sync still reuses everything.
	faults.FailRate("", 1, 2)
	before := c.Stats().Retries
	warm, err := c.SyncIncremental(ctx, uri, cold.Files)
	if err != nil {
		t.Fatalf("flaky delta sync should converge: %v", err)
	}
	if warm.Reused != 3 || warm.Downloaded != 0 {
		t.Errorf("warm sync: %+v", warm)
	}
	// LIST + 3 STATs, each failing exactly once before succeeding.
	if d := c.Stats().Retries - before; d != 4 {
		t.Errorf("retries = %d, want 4", d)
	}
}

func TestSyncIncrementalFaultExhaustion(t *testing.T) {
	uri, _, faults := startTestServer(t, map[string][]byte{"x.roa": []byte("x")})
	c := &Client{Timeout: time.Second, Retry: fastRetry(1)}
	ctx := context.Background()
	cold, err := c.SyncIncremental(ctx, uri, nil)
	if err != nil {
		t.Fatal(err)
	}
	faults.FailRate("", 1, 1)
	if _, err := c.SyncIncremental(ctx, uri, cold.Files); err == nil {
		t.Fatal("a dead point must fail the incremental sync so the caller can fall back")
	}
	faults.Restore("")
	res, err := c.SyncIncremental(ctx, uri, cold.Files)
	if err != nil || res.Reused != 1 {
		t.Fatalf("healed point should sync again: %v %+v", err, res)
	}
}

func TestSyncIncrementalBreakerFastFail(t *testing.T) {
	uri, _, faults := startTestServer(t, map[string][]byte{"x.roa": []byte("x")})
	faults.Refuse(true)
	c := &Client{
		Timeout:  time.Second,
		Retry:    fastRetry(5),
		Breakers: NewBreakerSet(BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour}),
	}
	if _, err := c.SyncIncremental(context.Background(), uri, nil); err == nil {
		t.Fatal("refused point must fail")
	}
	if _, err := c.SyncIncremental(context.Background(), uri, nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("second sync should fast-fail on the open breaker")
	}
}

func TestDegradationRetryPolicyDelays(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Jitter: -1}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for attempt, w := range want {
		if got := p.delay(attempt); got != w*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", attempt, got, w*time.Millisecond)
		}
	}
	// Jittered delays stay within the configured band.
	pj := RetryPolicy{BaseDelay: 100 * time.Millisecond, Jitter: 0.5}
	for i := 0; i < 50; i++ {
		d := pj.delay(0)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered delay %v outside [50ms,150ms]", d)
		}
	}
	// Classification: transport errors retry, the rest never do.
	if Retryable(nil) {
		t.Error("nil is not retryable")
	}
	if !Retryable(errors.New("read tcp: connection reset")) {
		t.Error("transport errors are retryable")
	}
	for _, err := range []error{
		permanent(errors.New("ERR no")),
		ErrCircuitOpen,
		context.Canceled,
		context.DeadlineExceeded,
	} {
		if Retryable(err) {
			t.Errorf("%v must not be retryable", err)
		}
	}
}
