package repo

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Pack files serialize one publication point to disk as a single flat file,
// so that Internet-scale synthetic worlds (millions of objects across
// thousands of publication points) can be generated once, streamed to disk,
// and validated later without ever holding the whole world in RAM.
//
// Format ("RPP1"):
//
//	magic   4 bytes  "RPP1"
//	count   uvarint  number of entries
//	entry*  uvarint name length, name bytes,
//	        uvarint content length, content bytes
//
// Entries are written in sorted name order, so packing the same store twice
// yields byte-identical files — the property the seeded-generation
// determinism tests assert.

const packMagic = "RPP1"

// maxPackEntrySize bounds a single object read back from a pack file,
// mirroring the wire protocol's MaxObjectSize defense.
const maxPackEntrySize = MaxObjectSize

// WritePackFile serializes files to path in pack format. The write goes
// through a temporary file and rename so readers never observe a torn pack.
func WritePackFile(path string, files map[string][]byte) error {
	names := make([]string, 0, len(files))
	for name := range files {
		if !validName(name) {
			return fmt.Errorf("repo: pack: invalid object name %q", name)
		}
		names = append(names, name)
	}
	sort.Strings(names)

	var scratch [binary.MaxVarintLen64]byte
	size := len(packMagic) + binary.PutUvarint(scratch[:], uint64(len(names)))
	for _, name := range names {
		size += binary.PutUvarint(scratch[:], uint64(len(name))) + len(name)
		size += binary.PutUvarint(scratch[:], uint64(len(files[name]))) + len(files[name])
	}

	buf := make([]byte, 0, size)
	buf = append(buf, packMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		buf = binary.AppendUvarint(buf, uint64(len(files[name])))
		buf = append(buf, files[name]...)
	}

	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("repo: pack: writing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("repo: pack: renaming into place: %w", err)
	}
	return nil
}

// ReadPackFile deserializes a pack file. The returned map's values are
// zero-copy subslices of one backing buffer; callers must treat them as
// read-only.
//
//taint:source pack bytes from a generator or a hostile disk image
func ReadPackFile(path string) (map[string][]byte, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("repo: pack: %w", err)
	}
	return parsePack(buf)
}

func parsePack(buf []byte) (map[string][]byte, error) {
	if len(buf) < len(packMagic) || string(buf[:len(packMagic)]) != packMagic {
		return nil, fmt.Errorf("repo: pack: bad magic")
	}
	rest := buf[len(packMagic):]
	count, n := binary.Uvarint(rest)
	if n <= 0 || count > MaxListEntries {
		return nil, fmt.Errorf("repo: pack: bad entry count")
	}
	rest = rest[n:]
	files := make(map[string][]byte, count)
	for i := uint64(0); i < count; i++ {
		nameLen, n := binary.Uvarint(rest)
		if n <= 0 || nameLen > 512 || uint64(len(rest)-n) < nameLen {
			return nil, fmt.Errorf("repo: pack: truncated name in entry %d", i)
		}
		name := string(rest[n : n+int(nameLen)])
		rest = rest[n+int(nameLen):]
		if !validName(name) {
			return nil, fmt.Errorf("repo: pack: invalid name %q in entry %d", name, i)
		}
		contentLen, n := binary.Uvarint(rest)
		if n <= 0 || contentLen > maxPackEntrySize || uint64(len(rest)-n) < contentLen {
			return nil, fmt.Errorf("repo: pack: truncated content for %q", name)
		}
		files[name] = rest[n : n+int(contentLen) : n+int(contentLen)]
		rest = rest[n+int(contentLen):]
	}
	return files, nil
}

// PackFileName returns the on-disk file name for a module's pack file, or an
// error if the module name could not safely be used as a file name.
func PackFileName(module string) (string, error) {
	if !validName(module) {
		return "", fmt.Errorf("repo: pack: invalid module name %q", module)
	}
	return module + ".pp", nil
}

// DirFetcher serves publication points from a directory of pack files, one
// "<module>.pp" per module. It reads exactly one module's bytes per fetch,
// which is what lets a streaming relying party bound its resident set by the
// number of in-flight modules rather than the size of the world.
//
// DirFetcher structurally implements rp.Fetcher (declared there; this
// package cannot import rp).
type DirFetcher struct {
	// Root is the directory holding the pack files.
	Root string
}

// FetchAll reads the module's pack file. The returned byte slices alias one
// backing buffer per call and must be treated as read-only.
func (d DirFetcher) FetchAll(_ context.Context, uri URI) (map[string][]byte, error) {
	name, err := PackFileName(uri.Module)
	if err != nil {
		return nil, err
	}
	files, err := ReadPackFile(filepath.Join(d.Root, name))
	if err != nil {
		return nil, fmt.Errorf("repo: fetching module %q: %w", uri.Module, err)
	}
	return files, nil
}
