package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ipres"
	"repro/internal/modelgen"
	"repro/internal/monitor"
	"repro/internal/rov"
	"repro/internal/rp"
)

// syncWorld runs a relying party over a world's stores.
func syncWorld(w *modelgen.World) (*rp.Result, error) {
	relying := rp.New(rp.Config{Fetcher: w.Stores, Clock: Clock}, w.Anchor())
	return relying.Sync(context.Background())
}

// Figure2 reproduces the paper's model RPKI: it builds the hierarchy with
// real certificates, validates it end to end, and renders the tree.
func Figure2() (*Result, error) {
	r := &Result{ID: "figure2", Title: "Model RPKI excerpt (Figure 2)"}
	w, err := modelgen.Figure2(Clock, false)
	if err != nil {
		return nil, err
	}
	res, err := syncWorld(w)
	if err != nil {
		return nil, err
	}
	r.Text = renderTree(w, "arin", "") + "\n"
	r.metric("roas_issued", float64(w.CountROAs()))
	r.metric("roas_validated", float64(res.ROAsAccepted))
	r.metric("cas_validated", float64(res.CertsAccepted))
	r.check("all_objects_validate", !res.Incomplete(), "diagnostics: %d", len(res.Diagnostics))
	r.check("eight_roas", res.ROAsAccepted == 8, "validated %d ROAs (2 Sprint + 1 ETB + 5 Continental)", res.ROAsAccepted)
	r.check("four_authorities", res.CertsAccepted == 4, "ARIN, Sprint, ETB, Continental = %d", res.CertsAccepted)
	return r, nil
}

func renderTree(w *modelgen.World, name, indent string) string {
	a := w.MustAuthority(name)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s%s  RC %v\n", indent, a.Name, a.Resources())
	for _, roaName := range a.ROAs() {
		ro, _ := a.ROA(roaName)
		fmt.Fprintf(&sb, "%s  ROA %v\n", indent, ro)
	}
	for _, child := range a.Children() {
		sb.WriteString(renderTree(w, child, indent+"    "))
	}
	return sb.String()
}

// Figure3 reproduces the grandparent whack with make-before-break: Sprint
// targets (63.174.16.0/22, AS 7341), must first reissue the damaged /20
// ROA, then overwrites Continental Broadband's RC.
func Figure3() (*Result, error) {
	r := &Result{ID: "figure3", Title: "A ROA whacked by its grandparent (Figure 3)"}
	w, err := modelgen.Figure2(Clock, false)
	if err != nil {
		return nil, err
	}
	target := rov.Route{Prefix: ipres.MustParsePrefix("63.174.16.0/22"), Origin: 7341}
	bystander := rov.Route{Prefix: ipres.MustParsePrefix("63.174.16.0/20"), Origin: 17054}

	before, err := syncWorld(w)
	if err != nil {
		return nil, err
	}
	stateBefore := before.Index().State(target)

	watcher := monitor.NewWatcher()
	watcher.Observe("sprint", w.Stores["sprint"].Snapshot())

	planner := &core.Planner{Manipulator: w.MustAuthority("sprint")}
	plan, err := planner.Plan(core.Target{Holder: w.MustAuthority("continental"), Name: "cont-22"})
	if err != nil {
		return nil, err
	}
	if err := planner.Execute(plan); err != nil {
		return nil, err
	}
	after, err := syncWorld(w)
	if err != nil {
		return nil, err
	}
	events := watcher.Observe("sprint", w.Stores["sprint"].Snapshot())
	alerts := monitor.Filter(events, monitor.Alert)

	var sb strings.Builder
	sb.WriteString(plan.String())
	fmt.Fprintf(&sb, "\ntarget   %v: %v → %v\n", target, stateBefore, after.Index().State(target))
	fmt.Fprintf(&sb, "bystander %v: %v (via reissued ROA)\n", bystander, after.Index().State(bystander))
	fmt.Fprintf(&sb, "monitor alerts: %d\n", len(alerts))
	for _, e := range alerts {
		fmt.Fprintf(&sb, "  %v\n", e)
	}
	r.Text = sb.String()
	r.metric("reissued_objects", float64(len(plan.Reissued)))
	r.metric("collateral_roas", float64(len(plan.Collateral)))
	r.metric("monitor_alerts", float64(len(alerts)))
	r.check("method_is_make_before_break", plan.Method == core.MethodMakeBeforeBreak, "method = %v", plan.Method)
	r.check("target_whacked", after.Index().State(target) == rov.Invalid, "target = %v", after.Index().State(target))
	r.check("bystander_survives", after.Index().State(bystander) == rov.Valid, "bystander = %v", after.Index().State(bystander))
	r.check("no_crl_trace", !plan.CRLVisible, "CRL visible = %v", plan.CRLVisible)
	r.check("detectable_by_reissue", len(alerts) > 0, "the paper: 'easier to detect, due to the suspiciously-reissued ROA'")
	return r, nil
}

// figure5Origins are the origins shown in the validity grids.
var figure5Origins = []ipres.ASN{1239, 17054, 7341, 26821}

// Figure5 computes the validity grids for 63.160.0.0/12 and its
// subprefixes, without (left) and with (right) Sprint's new ROA
// (63.160.0.0/12-13, AS1239).
func Figure5() (*Result, error) {
	r := &Result{ID: "figure5", Title: "Route validity for 63.160.0.0/12 and subprefixes (Figure 5)"}
	base := ipres.MustParsePrefix("63.160.0.0/12")

	left, err := modelgen.Figure2(Clock, false)
	if err != nil {
		return nil, err
	}
	right, err := modelgen.Figure2(Clock, true)
	if err != nil {
		return nil, err
	}
	leftRes, err := syncWorld(left)
	if err != nil {
		return nil, err
	}
	rightRes, err := syncWorld(right)
	if err != nil {
		return nil, err
	}
	leftIx, rightIx := leftRes.Index(), rightRes.Index()

	var sb strings.Builder
	sb.WriteString("LEFT (Figure 2 ROAs):\n")
	leftCells := leftIx.ValidityGrid(base, 24, figure5Origins)
	sb.WriteString(rov.FormatGrid(summarizeGrid(leftCells)))
	sb.WriteString("\nRIGHT (plus ROA (63.160.0.0/12-13, AS1239)):\n")
	rightCells := rightIx.ValidityGrid(base, 24, figure5Origins)
	sb.WriteString(rov.FormatGrid(summarizeGrid(rightCells)))
	r.Text = sb.String()

	// Count states at the /24 level for the flip metric.
	countStates := func(cells []rov.GridCell) map[rov.State]int {
		out := map[rov.State]int{}
		for _, c := range cells {
			out[c.State] += c.Count()
		}
		return out
	}
	leftCount, rightCount := countStates(leftCells), countStates(rightCells)
	r.metric("left_unknown", float64(leftCount[rov.Unknown]))
	r.metric("left_invalid", float64(leftCount[rov.Invalid]))
	r.metric("right_unknown", float64(rightCount[rov.Unknown]))
	r.metric("right_invalid", float64(rightCount[rov.Invalid]))

	// Paper-stated facts.
	r.check("left_/12_unknown",
		leftIx.State(rov.Route{Prefix: base, Origin: 1239}) == rov.Unknown &&
			leftIx.State(rov.Route{Prefix: base, Origin: 17054}) == rov.Unknown,
		"no covering ROA for the /12 on the left")
	r.check("left_63.174.17.0/24_invalid",
		leftIx.State(rov.Route{Prefix: ipres.MustParsePrefix("63.174.17.0/24"), Origin: 17054}) == rov.Invalid,
		"covered by the /20 ROA, maxLength 20")
	r.check("right_/12_valid_for_AS1239",
		rightIx.State(rov.Route{Prefix: base, Origin: 1239}) == rov.Valid,
		"the new ROA authorizes AS1239")
	r.check("right_unknowns_become_invalid",
		rightCount[rov.Unknown] == 0 && rightCount[rov.Invalid] > leftCount[rov.Invalid],
		"unknown %d→%d, invalid %d→%d (Side Effect 5)",
		leftCount[rov.Unknown], rightCount[rov.Unknown], leftCount[rov.Invalid], rightCount[rov.Invalid])
	return r, nil
}

// summarizeGrid keeps the grid readable: only rows at depths that matter
// (the /12, /13, /16, /20, /22, /24 levels).
func summarizeGrid(cells []rov.GridCell) []rov.GridCell {
	keep := map[int]bool{12: true, 13: true, 16: true, 20: true, 22: true, 24: true}
	var out []rov.GridCell
	for _, c := range cells {
		if keep[c.Bits] {
			out = append(out, c)
		}
	}
	return out
}
