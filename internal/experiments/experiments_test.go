package experiments

import (
	"strings"
	"testing"
)

// TestEveryExperimentPasses runs the full harness: every paper artifact
// must regenerate with all shape checks green. This is the repository's
// headline integration test.
func TestEveryExperimentPasses(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if r.ID != e.ID {
				t.Errorf("result ID %q != experiment ID %q", r.ID, e.ID)
			}
			if !r.Passed() {
				for _, c := range r.Failed() {
					t.Errorf("shape check %q failed: %s", c.Name, c.Detail)
				}
				t.Logf("full result:\n%s", r)
			}
			if r.Text == "" {
				t.Error("experiment produced no artifact text")
			}
		})
	}
}

func TestRunByID(t *testing.T) {
	results, err := Run("table6")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].ID != "table6" {
		t.Fatalf("got %v", results)
	}
	if _, err := Run("nonsense"); err == nil {
		t.Error("unknown ID must fail")
	}
}

func TestResultString(t *testing.T) {
	r, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	for _, want := range []string{"table6", "drop invalid", "depref invalid", "PASS"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered result missing %q", want)
		}
	}
}

func TestTable6ShapeMatchesPaper(t *testing.T) {
	r, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Table 6 in numbers.
	if r.Metrics["reach_drop-invalid_subprefix-hijack"] != 1.0 {
		t.Error("drop-invalid must fully survive the routing attack")
	}
	if r.Metrics["reach_drop-invalid_rpki-manipulation"] != 0.0 {
		t.Error("drop-invalid must fully lose the manipulated prefix")
	}
	if r.Metrics["reach_depref-invalid_rpki-manipulation"] != 1.0 {
		t.Error("depref-invalid must fully survive the manipulation")
	}
	if r.Metrics["reach_depref-invalid_subprefix-hijack"] >= 1.0 {
		t.Error("depref-invalid must be hijackable")
	}
}

func TestFigure5Metrics(t *testing.T) {
	r, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["right_unknown"] != 0 {
		t.Error("the covering ROA eliminates unknowns inside the /12")
	}
	if r.Metrics["right_invalid"] <= r.Metrics["left_invalid"] {
		t.Error("Side Effect 5: invalid count must grow")
	}
}
