package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/ipres"
	"repro/internal/modelgen"
	"repro/internal/monitor"
	"repro/internal/roa"
	"repro/internal/rov"
	"repro/internal/rp"
	"repro/internal/suspenders"
)

// ExtSuspenders is the fail-safe ablation: it reruns the Side Effect 7
// timeline with a Suspenders-style grace cache between the relying party
// and the routers, and shows the circular dependency no longer latches —
// answering the paper's open question about architectures "not brittle in
// case of missing information", and measuring the cost (delayed reaction
// to legitimate whacks).
func ExtSuspenders() (*Result, error) {
	r := &Result{ID: "ext-suspenders", Title: "Ablation: Suspenders-style grace cache vs Side Effect 7"}

	run := func(grace time.Duration) (persisted bool, timeline []string, err error) {
		w, err := modelgen.Figure2(Clock, true)
		if err != nil {
			return false, nil, err
		}
		n := bgp.NewNetwork()
		for _, asn := range []ipres.ASN{64999, 3356, 17054} {
			n.AddAS(asn, bgp.PolicyDropInvalid)
		}
		steps := []error{
			n.ProviderOf(3356, 64999),
			n.ProviderOf(3356, 17054),
			n.Originate(17054, ipres.MustParsePrefix("63.174.16.0/20")),
		}
		for _, err := range steps {
			if err != nil {
				return false, nil, err
			}
		}
		corrupting := core.NewCorruptingFetcher(w.Stores)
		var cache *suspenders.Cache
		step := 0
		var post func([]rov.VRP) []rov.VRP
		if grace > 0 {
			cache = suspenders.NewCache(grace)
			post = func(vrps []rov.VRP) []rov.VRP {
				// One simulator step = ten minutes of wall time.
				return cache.Update(Epoch.Add(time.Duration(step)*10*time.Minute), vrps)
			}
		}
		sim := &core.CircularSim{
			Anchors: []rp.TrustAnchor{w.Anchor()},
			Fetch:   corrupting,
			Sites: map[string]core.RepoSite{
				"continental": {
					Module:      "continental",
					Addr:        ipres.MustParseAddr("63.174.23.0"),
					RoutePrefix: ipres.MustParsePrefix("63.174.16.0/20"),
					OriginAS:    17054,
				},
			},
			Network:  n,
			RPAS:     64999,
			Clock:    Clock,
			PostSync: post,
		}
		ctx := context.Background()
		advance := func(label string) error {
			step++
			rep, err := sim.Step(ctx)
			if err != nil {
				return err
			}
			s, _ := sim.RouteState("continental")
			timeline = append(timeline, fmt.Sprintf("  %-24s route=%-8v unreachable=%v", label, s, rep.Unreachable))
			return nil
		}
		if err := advance("t0 bootstrap"); err != nil {
			return false, nil, err
		}
		corrupting.Corrupt("continental", "cont-20.roa")
		if err := advance("t1 corruption"); err != nil {
			return false, nil, err
		}
		corrupting.Heal("continental")
		if err := advance("t2 fault fixed"); err != nil {
			return false, nil, err
		}
		if err := advance("t3 next sync"); err != nil {
			return false, nil, err
		}
		s, _ := sim.RouteState("continental")
		return s != rov.Valid, timeline, nil
	}

	persistedPlain, plainTimeline, err := run(0)
	if err != nil {
		return nil, err
	}
	persistedGrace, graceTimeline, err := run(time.Hour)
	if err != nil {
		return nil, err
	}

	var sb strings.Builder
	sb.WriteString("without suspenders (grace 0):\n")
	sb.WriteString(strings.Join(plainTimeline, "\n"))
	sb.WriteString("\nwith suspenders (grace 1h ≈ 6 sync intervals):\n")
	sb.WriteString(strings.Join(graceTimeline, "\n"))
	sb.WriteString("\n")
	r.Text = sb.String()
	r.check("plain_rp_latches", persistedPlain, "the failure persists without a fail-safe")
	r.check("suspenders_self_heals", !persistedGrace, "the grace window bridges the transient fault")
	return r, nil
}

// ExtLKG is the resilience ablation for this repository's own fail-safe: it
// reruns the Side Effect 7 timeline with the relying party's last-known-good
// fallback at three settings. TTL 0 reproduces the paper's latch; a generous
// TTL lets the relying party serve the pre-fault snapshot while its
// repository is gated off, breaking the circular dependency without manual
// intervention; a TTL shorter than the outage shows the staleness bound
// doing its job — a dead repository cannot pin the validated cache forever.
func ExtLKG() (*Result, error) {
	r := &Result{ID: "ext-lkg", Title: "Ablation: last-known-good fallback vs Side Effect 7"}

	run := func(ttl time.Duration) (healed bool, fallbacks int, timeline []string, err error) {
		w, err := modelgen.Figure2(Clock, true)
		if err != nil {
			return false, 0, nil, err
		}
		n := bgp.NewNetwork()
		for _, asn := range []ipres.ASN{64999, 3356, 17054} {
			n.AddAS(asn, bgp.PolicyDropInvalid)
		}
		steps := []error{
			n.ProviderOf(3356, 64999),
			n.ProviderOf(3356, 17054),
			n.Originate(17054, ipres.MustParsePrefix("63.174.16.0/20")),
		}
		for _, err := range steps {
			if err != nil {
				return false, 0, nil, err
			}
		}
		corrupting := core.NewCorruptingFetcher(w.Stores)
		// One simulator step = ten minutes of wall time; the relying
		// party's clock (and with it LKG snapshot ages) advances in step.
		step := 0
		sim := &core.CircularSim{
			Anchors: []rp.TrustAnchor{w.Anchor()},
			Fetch:   corrupting,
			Sites: map[string]core.RepoSite{
				"continental": {
					Module:      "continental",
					Addr:        ipres.MustParseAddr("63.174.23.0"),
					RoutePrefix: ipres.MustParsePrefix("63.174.16.0/20"),
					OriginAS:    17054,
				},
			},
			Network:  n,
			RPAS:     64999,
			Clock:    func() time.Time { return Epoch.Add(time.Duration(step) * 10 * time.Minute) },
			StaleTTL: ttl,
		}
		ctx := context.Background()
		advance := func(label string) error {
			rep, err := sim.Step(ctx)
			if err != nil {
				return err
			}
			fallbacks += rep.StaleFallbacks
			s, _ := sim.RouteState("continental")
			timeline = append(timeline, fmt.Sprintf("  %-24s route=%-8v unreachable=%v fallbacks=%d",
				label, s, rep.Unreachable, rep.StaleFallbacks))
			step++
			return nil
		}
		if err := advance("t0 bootstrap"); err != nil {
			return false, 0, nil, err
		}
		corrupting.Corrupt("continental", "cont-20.roa")
		if err := advance("t1 corruption"); err != nil {
			return false, 0, nil, err
		}
		corrupting.Heal("continental")
		if err := advance("t2 fault fixed"); err != nil {
			return false, 0, nil, err
		}
		if err := advance("t3 next sync"); err != nil {
			return false, 0, nil, err
		}
		s, _ := sim.RouteState("continental")
		return s == rov.Valid, fallbacks, timeline, nil
	}

	healedPlain, _, plainTimeline, err := run(0)
	if err != nil {
		return nil, err
	}
	healedLKG, fallbacksLKG, lkgTimeline, err := run(time.Hour)
	if err != nil {
		return nil, err
	}
	healedShort, _, shortTimeline, err := run(5 * time.Minute)
	if err != nil {
		return nil, err
	}

	var sb strings.Builder
	sb.WriteString("without LKG (stale-ttl 0):\n")
	sb.WriteString(strings.Join(plainTimeline, "\n"))
	sb.WriteString("\nwith LKG (stale-ttl 1h; outage ≈ 20 min):\n")
	sb.WriteString(strings.Join(lkgTimeline, "\n"))
	sb.WriteString("\nwith LKG (stale-ttl 5 min < outage):\n")
	sb.WriteString(strings.Join(shortTimeline, "\n"))
	sb.WriteString("\n")
	r.Text = sb.String()

	r.metric("lkg_fallback_syncs", float64(fallbacksLKG))
	r.check("plain_rp_latches", !healedPlain, "without fallback the transient fault persists")
	r.check("lkg_self_heals", healedLKG && fallbacksLKG >= 1,
		"the stale snapshot bridges the unreachable window (%d fallback syncs)", fallbacksLKG)
	r.check("ttl_bounds_staleness", !healedShort,
		"a snapshot older than the TTL is retired, not served forever")
	return r, nil
}

// ExtCollateral measures collateral damage and detectability of whack
// methods at scale on a synthetic deployment: for every leaf ROA, the blunt
// revocation cost against the surgical plan's footprint — the quantitative
// version of Side Effects 3–4.
func ExtCollateral() (*Result, error) {
	r := &Result{ID: "ext-collateral", Title: "Extension: collateral-damage distribution at deployment scale"}
	w, err := modelgen.Synthetic(modelgen.SyntheticConfig{
		Seed: 2013, RIRs: 2, ISPsPerRIR: 4, ROAsPerISP: 4, CustomersPerISP: 4, Clock: Clock,
	})
	if err != nil {
		return nil, err
	}

	var (
		targets          int
		bluntTotal       int
		bluntMax         int
		surgicalTotal    int
		surgicalDetect   int
		deepDetectTotal  int
		deepTargets      int
		surgicalFailures int
	)
	for r2 := 0; r2 < 2; r2++ {
		rir := w.MustAuthority(fmt.Sprintf("rir-%d", r2))
		planner := &core.Planner{Manipulator: rir}
		for _, ispName := range rir.Children() {
			isp, _ := rir.Child(ispName)
			// Grandchild targets: the ISP's own ROAs (depth 1 from RIR).
			for _, roaName := range isp.ROAs() {
				t := core.Target{Holder: isp, Name: roaName}
				blunt, err := planner.PlanRevokeSubtree(t)
				if err != nil {
					return nil, err
				}
				surgical, err := planner.Plan(t)
				if err != nil {
					return nil, err
				}
				targets++
				bluntTotal += len(blunt.Collateral)
				if len(blunt.Collateral) > bluntMax {
					bluntMax = len(blunt.Collateral)
				}
				surgicalTotal += len(surgical.Collateral)
				surgicalDetect += surgical.Detectability()
				if len(surgical.Collateral) != 0 {
					surgicalFailures++
				}
			}
			// Great-grandchild targets: customer ROAs (depth 2 from RIR).
			for _, custName := range isp.Children() {
				cust, _ := isp.Child(custName)
				for _, roaName := range cust.ROAs() {
					deep, err := planner.Plan(core.Target{Holder: cust, Name: roaName})
					if err != nil {
						return nil, err
					}
					deepTargets++
					deepDetectTotal += deep.Detectability()
				}
			}
		}
	}
	meanBlunt := float64(bluntTotal) / float64(targets)
	meanDeepDetect := float64(deepDetectTotal) / float64(deepTargets)

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %8s %8s\n", "method", "mean", "max")
	fmt.Fprintf(&sb, "%-28s %8.2f %8d   (collateral ROAs per whack)\n", "revoke-subtree", meanBlunt, bluntMax)
	fmt.Fprintf(&sb, "%-28s %8.2f %8d\n", "surgical (grandchild)", float64(surgicalTotal)/float64(targets), 0)
	fmt.Fprintf(&sb, "\n%-28s %8.2f        (suspicious objects per whack)\n", "surgical detectability", float64(surgicalDetect)/float64(targets))
	fmt.Fprintf(&sb, "%-28s %8.2f\n", "deep-whack detectability", meanDeepDetect)
	fmt.Fprintf(&sb, "\n%d grandchild targets, %d great-grandchild targets\n", targets, deepTargets)
	r.Text = sb.String()

	r.metric("targets", float64(targets))
	r.metric("blunt_mean_collateral", meanBlunt)
	r.metric("surgical_mean_collateral", float64(surgicalTotal)/float64(targets))
	r.metric("deep_mean_detectability", meanDeepDetect)
	r.check("blunt_always_costs", meanBlunt > 1,
		"revocation whacks %.2f extra ROAs on average", meanBlunt)
	r.check("surgical_never_costs", surgicalFailures == 0,
		"every grandchild target had a zero-collateral plan")
	r.check("deep_is_more_detectable", meanDeepDetect > float64(surgicalDetect)/float64(targets),
		"deep %.2f vs surgical %.2f suspicious objects", meanDeepDetect, float64(surgicalDetect)/float64(targets))
	return r, nil
}

// ExtMonitor measures the monitor's signal quality: alerts raised across
// rounds of benign churn (new ROAs, key rollovers, reissues) versus the
// round containing a real targeted whack.
func ExtMonitor() (*Result, error) {
	r := &Result{ID: "ext-monitor", Title: "Extension: monitor precision under benign churn"}
	w, err := modelgen.Figure2(Clock, false)
	if err != nil {
		return nil, err
	}
	watcher := monitor.NewWatcher()
	observeAll := func() []monitor.Event {
		var events []monitor.Event
		for _, module := range []string{"arin", "sprint", "etb", "continental"} {
			events = append(events, watcher.Observe(module, w.Stores[module].Snapshot())...)
		}
		return events
	}
	observeAll() // baseline

	sprint := w.MustAuthority("sprint")
	continental := w.MustAuthority("continental")

	benignAlerts, benignEvents := 0, 0
	churn := []func() error{
		func() error {
			_, err := sprint.IssueROA("churn-1", 1239, roa.MustParsePrefix("63.169.0.0/16"))
			return err
		},
		func() error { return continental.RollKey() },
		func() error {
			_, err := continental.IssueROA("churn-2", 17054, roa.MustParsePrefix("63.174.28.0/24"))
			return err
		},
		func() error { return sprint.RollKey() },
		func() error { return continental.DeleteROA("churn-2") }, // self-delete: warning-grade
	}
	var warnings int
	for _, op := range churn {
		if err := op(); err != nil {
			return nil, err
		}
		events := observeAll()
		benignEvents += len(events)
		benignAlerts += len(monitor.Filter(events, monitor.Alert))
		warnings += len(monitor.Filter(events, monitor.Warning))
	}

	// The attack round: Sprint surgically whacks Continental's /20 ROA.
	planner := &core.Planner{Manipulator: sprint}
	plan, err := planner.Plan(core.Target{Holder: continental, Name: "cont-20"})
	if err != nil {
		return nil, err
	}
	if err := planner.Execute(plan); err != nil {
		return nil, err
	}
	attackEvents := observeAll()
	attackAlerts := len(monitor.Filter(attackEvents, monitor.Alert))

	var sb strings.Builder
	fmt.Fprintf(&sb, "benign churn rounds: %d events, %d alerts (false positives), %d warnings\n",
		benignEvents, benignAlerts, warnings)
	fmt.Fprintf(&sb, "attack round:        %d events, %d alerts\n", len(attackEvents), attackAlerts)
	for _, e := range monitor.Filter(attackEvents, monitor.Alert) {
		fmt.Fprintf(&sb, "  %v\n", e)
	}
	r.Text = sb.String()
	r.metric("benign_alerts", float64(benignAlerts))
	r.metric("attack_alerts", float64(attackAlerts))
	r.check("no_false_alerts_on_churn", benignAlerts == 0,
		"key rollovers and issuance look like routine overwrites/additions")
	r.check("attack_detected", attackAlerts > 0,
		"the RC shrink fingerprint fires")
	return r, nil
}
