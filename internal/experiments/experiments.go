// Package experiments regenerates every table and figure of the paper's
// analysis on top of this repository's substrates. Each experiment returns
// a Result carrying the rendered artifact (the table/figure content), the
// measured metrics, and named shape checks that encode what the paper
// claims — who wins, what flips, what persists.
//
// Absolute numbers differ from the paper where the paper used production
// data we substitute synthetically (see DESIGN.md); the checks assert the
// qualitative shape instead.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Epoch is the fixed experiment clock: the first day of HotNets '13.
var Epoch = time.Date(2013, 11, 21, 0, 0, 0, 0, time.UTC)

// Clock returns the fixed epoch, for deterministic certificate validity.
func Clock() time.Time { return Epoch }

// Check is one named shape assertion.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

// Result is the outcome of one experiment.
type Result struct {
	// ID is the experiment identifier ("figure2", "table6", ...).
	ID string
	// Title describes the paper artifact reproduced.
	Title string
	// Text is the rendered artifact.
	Text string
	// Metrics are the measured quantities.
	Metrics map[string]float64
	// Checks are the shape assertions.
	Checks []Check
}

// Passed reports whether every check holds.
func (r *Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// Failed returns the failing checks.
func (r *Result) Failed() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

func (r *Result) check(name string, ok bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
}

func (r *Result) metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = v
}

// String renders the result for terminal output.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n\n", r.ID, r.Title)
	sb.WriteString(r.Text)
	if len(r.Metrics) > 0 {
		sb.WriteString("\nmetrics:\n")
		names := make([]string, 0, len(r.Metrics))
		for name := range r.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&sb, "  %-40s %g\n", name, r.Metrics[name])
		}
	}
	sb.WriteString("\nshape checks:\n")
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.OK {
			mark = "FAIL"
		}
		fmt.Fprintf(&sb, "  [%s] %-44s %s\n", mark, c.Name, c.Detail)
	}
	return sb.String()
}

// Experiment is a runnable reproduction of one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Result, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"figure1", "Dependency loop: RPKI → route validity → BGP → RPKI", Figure1},
		{"figure2", "Model RPKI excerpt", Figure2},
		{"figure3", "A ROA whacked by its grandparent (make-before-break)", Figure3},
		{"table4", "RCs covering countries outside their parent RIR's jurisdiction", Table4},
		{"figure5", "Route validity for 63.160.0.0/12 and subprefixes (left/right)", Figure5},
		{"table6", "Impact of relying-party local policies", Table6},
		{"se12", "Side Effects 1–2: unilateral reclamation, stealthy revocation", SideEffects12},
		{"se34", "Side Effects 3–4: targeted whacking of distant descendants", SideEffects34},
		{"se6", "Side Effect 6: a missing ROA invalidates a route", SideEffect6},
		{"se7", "Side Effect 7: transient faults cause long-term failures", SideEffect7},
		{"ext-suspenders", "Ablation: Suspenders-style grace cache vs Side Effect 7", ExtSuspenders},
		{"ext-lkg", "Ablation: last-known-good fallback vs Side Effect 7", ExtLKG},
		{"ext-collateral", "Extension: collateral-damage distribution at scale", ExtCollateral},
		{"ext-monitor", "Extension: monitor precision under benign churn", ExtMonitor},
	}
}

// Run executes the experiment with the given ID ("all" runs everything and
// concatenates).
func Run(id string) ([]*Result, error) {
	var out []*Result
	for _, e := range All() {
		if id != "all" && id != e.ID {
			continue
		}
		r, err := e.Run()
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return out, nil
}

// Markdown renders results as a markdown report (one section per
// experiment), for cmd/rpki-experiments -format markdown.
func Markdown(results []*Result) string {
	var sb strings.Builder
	sb.WriteString("# Experiment results\n")
	for _, r := range results {
		fmt.Fprintf(&sb, "\n## %s — %s\n\n```\n%s```\n", r.ID, r.Title, r.Text)
		if len(r.Metrics) > 0 {
			sb.WriteString("\n| metric | value |\n|---|---|\n")
			names := make([]string, 0, len(r.Metrics))
			for name := range r.Metrics {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Fprintf(&sb, "| %s | %g |\n", name, r.Metrics[name])
			}
		}
		sb.WriteString("\n| shape check | result | detail |\n|---|---|---|\n")
		for _, c := range r.Checks {
			mark := "✅"
			if !c.OK {
				mark = "❌"
			}
			fmt.Fprintf(&sb, "| %s | %s | %s |\n", c.Name, mark, c.Detail)
		}
	}
	return sb.String()
}
