package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/ipres"
	"repro/internal/modelgen"
	"repro/internal/monitor"
	"repro/internal/repo"
	"repro/internal/roa"
	"repro/internal/rov"
	"repro/internal/rp"
)

// SideEffects12 contrasts transparent revocation (Side Effect 1) with
// stealthy deletion (Side Effect 2) through a monitor's eyes.
func SideEffects12() (*Result, error) {
	r := &Result{ID: "se12", Title: "Unilateral reclamation vs. stealthy revocation (Side Effects 1–2)"}

	// Transparent: revoke ETB's RC.
	w1, err := modelgen.Figure2(Clock, false)
	if err != nil {
		return nil, err
	}
	watcher1 := monitor.NewWatcher()
	watcher1.Observe("sprint", w1.Stores["sprint"].Snapshot())
	if err := w1.MustAuthority("sprint").RevokeChild("etb"); err != nil {
		return nil, err
	}
	revEvents := watcher1.Observe("sprint", w1.Stores["sprint"].Snapshot())

	// Stealthy: delete ETB's RC without revoking.
	w2, err := modelgen.Figure2(Clock, false)
	if err != nil {
		return nil, err
	}
	watcher2 := monitor.NewWatcher()
	watcher2.Observe("sprint", w2.Stores["sprint"].Snapshot())
	if err := w2.MustAuthority("sprint").DeleteChildCert("etb"); err != nil {
		return nil, err
	}
	delEvents := watcher2.Observe("sprint", w2.Stores["sprint"].Snapshot())

	// Both reclaim the space: ETB's ROA is gone from the validated cache.
	res1, err := syncWorld(w1)
	if err != nil {
		return nil, err
	}
	res2, err := syncWorld(w2)
	if err != nil {
		return nil, err
	}
	etbRoute := rov.Route{Prefix: ipres.MustParsePrefix("63.161.0.0/16"), Origin: 19429}

	var sb strings.Builder
	sb.WriteString("revocation (Side Effect 1):\n")
	for _, e := range revEvents {
		fmt.Fprintf(&sb, "  %v\n", e)
	}
	sb.WriteString("stealthy deletion (Side Effect 2):\n")
	for _, e := range delEvents {
		fmt.Fprintf(&sb, "  %v\n", e)
	}
	r.Text = sb.String()

	revHasCRL := false
	for _, e := range revEvents {
		if e.Kind == monitor.EventRevocation {
			revHasCRL = true
		}
	}
	delStealthy := false
	for _, e := range delEvents {
		if e.Kind == monitor.EventStealthyDelete {
			delStealthy = true
		}
	}
	r.metric("revocation_events", float64(len(revEvents)))
	r.metric("deletion_events", float64(len(delEvents)))
	r.check("both_reclaim_space",
		res1.Index().State(etbRoute) != rov.Valid && res2.Index().State(etbRoute) != rov.Valid,
		"ETB's route loses its valid ROA either way")
	r.check("revocation_is_on_the_crl", revHasCRL, "relying parties could detect and react")
	r.check("deletion_leaves_no_crl_trace", delStealthy,
		"only the object's absence is observable — 'less transparent'")
	return r, nil
}

// SideEffects34 quantifies targeted whacking: the blunt revocation baseline
// against the surgical shrink (grandchild, Side Effect 3) and the deep
// whack (beyond grandchildren, Side Effect 4).
func SideEffects34() (*Result, error) {
	r := &Result{ID: "se34", Title: "Targeted whacking of distant descendants (Side Effects 3–4)"}

	build := func() (*modelgen.World, *core.Planner, error) {
		w, err := modelgen.Figure2(Clock, false)
		if err != nil {
			return nil, nil, err
		}
		return w, &core.Planner{Manipulator: w.MustAuthority("sprint")}, nil
	}

	// Baseline: revoke Continental's RC to kill one ROA.
	w, planner, err := build()
	if err != nil {
		return nil, err
	}
	blunt, err := planner.PlanRevokeSubtree(core.Target{Holder: w.MustAuthority("continental"), Name: "cont-20"})
	if err != nil {
		return nil, err
	}

	// Side Effect 3: clean shrink of the same target.
	w3, planner3, err := build()
	if err != nil {
		return nil, err
	}
	surgical, err := planner3.Plan(core.Target{Holder: w3.MustAuthority("continental"), Name: "cont-20"})
	if err != nil {
		return nil, err
	}
	if err := planner3.Execute(surgical); err != nil {
		return nil, err
	}
	res3, err := syncWorld(w3)
	if err != nil {
		return nil, err
	}

	// Side Effect 4: a great-grandchild target.
	w4, planner4, err := build()
	if err != nil {
		return nil, err
	}
	smallStore := repo.NewStore()
	w4.Stores["smallco"] = smallStore
	small, err := w4.MustAuthority("continental").CreateChild("smallco",
		ipres.MustParseSet("63.174.18.0/23"), smallStore,
		repo.URI{Host: "smallco.example:8873", Module: "smallco"})
	if err != nil {
		return nil, err
	}
	if _, err := small.IssueROA("small-a", 64501, roa.MustParsePrefix("63.174.18.0/24")); err != nil {
		return nil, err
	}
	if _, err := small.IssueROA("small-b", 64502, roa.MustParsePrefix("63.174.19.0/24")); err != nil {
		return nil, err
	}
	deep, err := planner4.Plan(core.Target{Holder: small, Name: "small-a"})
	if err != nil {
		return nil, err
	}
	if err := planner4.Execute(deep); err != nil {
		return nil, err
	}
	res4, err := syncWorld(w4)
	if err != nil {
		return nil, err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %-18s %10s %10s %6s\n", "plan", "method", "collateral", "reissued", "CRL")
	row := func(name string, p *core.Plan) {
		fmt.Fprintf(&sb, "%-22s %-18s %10d %10d %6v\n", name, p.Method, len(p.Collateral), len(p.Reissued), p.CRLVisible)
	}
	row("revoke-subtree", blunt)
	row("grandchild-shrink", surgical)
	row("great-grandchild", deep)
	r.Text = sb.String()

	r.metric("blunt_collateral", float64(len(blunt.Collateral)))
	r.metric("surgical_collateral", float64(len(surgical.Collateral)))
	r.metric("surgical_detectability", float64(surgical.Detectability()))
	r.metric("deep_detectability", float64(deep.Detectability()))

	r.check("blunt_whacks_four_extra_roas", len(blunt.Collateral) == 4,
		"the paper: 'this would whack four additional ROAs as collateral damage' — got %d", len(blunt.Collateral))
	r.check("surgical_has_zero_collateral", len(surgical.Collateral) == 0 && surgical.Detectability() == 0,
		"fine-grained control without collateral damage")
	r.check("surgical_hole_is_the_papers", surgical.Hole.String() == "63.174.24.0/24",
		"the planner finds the paper's exact hole: %v", surgical.Hole)
	r.check("deep_needs_more_suspicious_objects", deep.Detectability() > surgical.Detectability(),
		"deep %d vs grandchild %d — 'requires more suspiciously-reissued objects'",
		deep.Detectability(), surgical.Detectability())
	r.check("surgical_target_whacked",
		res3.Index().State(rov.Route{Prefix: ipres.MustParsePrefix("63.174.16.0/20"), Origin: 17054}) != rov.Valid,
		"target gone after shrink")
	r.check("deep_sibling_survives",
		res4.Index().State(rov.Route{Prefix: ipres.MustParsePrefix("63.174.19.0/24"), Origin: 64502}) == rov.Valid,
		"small-b still valid after the deep whack")
	return r, nil
}

// SideEffect6 shows a missing ROA flipping a route to invalid (not
// unknown) and the resulting loss of connectivity under drop-invalid.
func SideEffect6() (*Result, error) {
	r := &Result{ID: "se6", Title: "A missing ROA can cause a route to become invalid (Side Effect 6)"}
	w, err := modelgen.Figure2(Clock, false)
	if err != nil {
		return nil, err
	}
	target := rov.Route{Prefix: ipres.MustParsePrefix("63.174.16.0/22"), Origin: 7341}
	outside := rov.Route{Prefix: ipres.MustParsePrefix("63.163.0.0/16"), Origin: 7018}

	before, err := syncWorld(w)
	if err != nil {
		return nil, err
	}
	// The ROA goes missing from the relying party's cache: here, the
	// authority's repository loses it (a fault, a delayed renewal, a
	// stealthy delete — the cache cannot tell).
	if err := w.MustAuthority("continental").DeleteROA("cont-22"); err != nil {
		return nil, err
	}
	after, err := syncWorld(w)
	if err != nil {
		return nil, err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "route %v: %v → %v (covering /20 ROA remains)\n",
		target, before.Index().State(target), after.Index().State(target))
	fmt.Fprintf(&sb, "route %v: %v → %v (never had a covering ROA)\n",
		outside, before.Index().State(outside), after.Index().State(outside))
	r.Text = sb.String()

	r.check("missing_roa_invalid_not_unknown",
		after.Index().State(target) == rov.Invalid,
		"unlike DNSSEC or the web PKI, absence ⇒ invalid when covered: %v", after.Index().State(target))
	r.check("uncovered_stays_unknown",
		after.Index().State(outside) == rov.Unknown,
		"absence without coverage is merely unknown")
	return r, nil
}

// SideEffect7 runs the transient-fault-to-persistent-failure timeline on
// the full Figure 1 loop.
func SideEffect7() (*Result, error) {
	r := &Result{ID: "se7", Title: "Transient faults cause long-term failures (Side Effect 7)"}
	w, err := modelgen.Figure2(Clock, true)
	if err != nil {
		return nil, err
	}
	n := bgp.NewNetwork()
	const (
		rpAS       = ipres.ASN(64999)
		providerAS = ipres.ASN(3356)
		contAS     = ipres.ASN(17054)
	)
	for _, asn := range []ipres.ASN{rpAS, providerAS, contAS} {
		n.AddAS(asn, bgp.PolicyDropInvalid)
	}
	steps := []error{
		n.ProviderOf(providerAS, rpAS),
		n.ProviderOf(providerAS, contAS),
		n.Originate(contAS, ipres.MustParsePrefix("63.174.16.0/20")),
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	corrupting := core.NewCorruptingFetcher(w.Stores)
	sim := &core.CircularSim{
		Anchors: []rp.TrustAnchor{w.Anchor()},
		Fetch:   corrupting,
		Sites: map[string]core.RepoSite{
			"continental": {
				Module:      "continental",
				Addr:        ipres.MustParseAddr("63.174.23.0"),
				RoutePrefix: ipres.MustParsePrefix("63.174.16.0/20"),
				OriginAS:    contAS,
			},
		},
		Network: n,
		RPAS:    rpAS,
		Clock:   Clock,
	}

	// The circular dependency is statically detectable.
	cont20, _ := w.MustAuthority("continental").ROA("cont-20")
	cycles := core.FindCircularDependencies(sim.Sites, map[string][]rov.VRP{
		"continental": rov.FromROA(cont20),
	})

	ctx := context.Background()
	var timeline []string
	record := func(phase string) error {
		rep, err := sim.Step(ctx)
		if err != nil {
			return err
		}
		s, _ := sim.RouteState("continental")
		timeline = append(timeline, fmt.Sprintf("%-28s route=%v unreachable=%v vrps=%d",
			phase, s, rep.Unreachable, rep.VRPCount))
		return nil
	}
	if err := record("t0 bootstrap"); err != nil {
		return nil, err
	}
	corrupting.Corrupt("continental", "cont-20.roa")
	if err := record("t1 transient corruption"); err != nil {
		return nil, err
	}
	corrupting.Heal("continental")
	if err := record("t2 fault fixed"); err != nil {
		return nil, err
	}
	if err := record("t3 still broken"); err != nil {
		return nil, err
	}
	stuckState, _ := sim.RouteState("continental")
	sim.ManualOverride("continental", true)
	if err := record("t4 manual intervention"); err != nil {
		return nil, err
	}
	finalState, _ := sim.RouteState("continental")

	var sb strings.Builder
	fmt.Fprintf(&sb, "circular dependencies detected: %v\n\n", cycles)
	for _, line := range timeline {
		sb.WriteString(line + "\n")
	}
	r.Text = sb.String()

	r.metric("cycles_found", float64(len(cycles)))
	r.check("self_loop_detected", len(cycles) == 1 && len(cycles[0]) == 1,
		"the repository hosts the ROA for its own route: %v", cycles)
	r.check("fault_persists_after_fix", stuckState == rov.Invalid,
		"route still invalid two steps after the repository recovered")
	r.check("manual_fix_recovers", finalState == rov.Valid,
		"only out-of-band intervention breaks the cycle")
	return r, nil
}

// Figure1 narrates the dependency loop by exercising each edge once.
func Figure1() (*Result, error) {
	r := &Result{ID: "figure1", Title: "Dependencies: RPKI → route validity → BGP → RPKI (Figure 1)"}
	w, err := modelgen.Figure2(Clock, true)
	if err != nil {
		return nil, err
	}
	res, err := syncWorld(w)
	if err != nil {
		return nil, err
	}
	ix := res.Index()
	route := rov.Route{Prefix: ipres.MustParsePrefix("63.174.16.0/20"), Origin: 17054}

	n := bgp.NewNetwork()
	n.AddAS(1, bgp.PolicyDropInvalid)
	n.AddAS(17054, bgp.PolicyDropInvalid)
	if err := n.ProviderOf(1, 17054); err != nil {
		return nil, err
	}
	if err := n.Originate(17054, route.Prefix); err != nil {
		return nil, err
	}
	n.SetSharedIndex(ix)
	withROA, err := n.CanReach(1, ipres.MustParseAddr("63.174.23.0"), 17054)
	if err != nil {
		return nil, err
	}

	// Whack the ROA: validity flips, BGP selection flips, and the RPKI
	// repository hosted on that prefix becomes unreachable.
	if err := w.MustAuthority("continental").DeleteROA("cont-20"); err != nil {
		return nil, err
	}
	res2, err := syncWorld(w)
	if err != nil {
		return nil, err
	}
	n.SetSharedIndex(res2.Index())
	withoutROA, err := n.CanReach(1, ipres.MustParseAddr("63.174.23.0"), 17054)
	if err != nil {
		return nil, err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "edge 1 (RPKI → validity):  ROA present: %v = %v;  ROA whacked: %v\n",
		route, ix.State(route), res2.Index().State(route))
	fmt.Fprintf(&sb, "edge 2 (validity → BGP):   reachable with ROA: %v;  without: %v\n", withROA, withoutROA)
	fmt.Fprintf(&sb, "edge 3 (BGP → RPKI):       the repository at 63.174.23.0 serves the RPKI itself —\n")
	fmt.Fprintf(&sb, "                           losing the route means losing future RPKI updates (see se7)\n")
	r.Text = sb.String()
	r.check("validity_flips", ix.State(route) == rov.Valid && res2.Index().State(route) == rov.Invalid,
		"valid → invalid when the ROA is whacked (covering /12-13 ROA remains)")
	r.check("reachability_flips", withROA && !withoutROA,
		"drop-invalid turns the validity flip into an outage")
	return r, nil
}
