package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bgp"
	"repro/internal/geo"
	"repro/internal/ipres"
	"repro/internal/rov"
)

// Table4 reproduces the cross-jurisdiction analysis: the paper's nine
// salient RCs verbatim, plus a rate measurement on the synthetic allocation
// model at production scale.
func Table4() (*Result, error) {
	r := &Result{ID: "table4", Title: "RCs & the countries they cover outside their parent RIR's jurisdiction (Table 4)"}
	rows := geo.Table4()
	paperStats := geo.Analyze(rows)

	synth := geo.Synthetic(geo.SyntheticConfig{
		Seed:                     2013,
		Holdings:                 1300, // production-RPKI scale (footnote 4)
		CrossBorderProb:          0.15,
		SubAllocationsPerHolding: 6,
	})
	synthStats := geo.Analyze(synth)

	var sb strings.Builder
	sb.WriteString(geo.FormatTable(rows))
	fmt.Fprintf(&sb, "\nsynthetic model (%d holdings, production scale): %d cross-border RCs (rate %.2f), %d distinct out-of-region countries\n",
		synthStats.Holdings, synthStats.CrossBorder, synthStats.Rate(), synthStats.Countries)
	r.Text = sb.String()

	r.metric("paper_rows", float64(len(rows)))
	r.metric("synthetic_rate", synthStats.Rate())
	r.metric("synthetic_cross_border", float64(synthStats.CrossBorder))
	r.check("nine_salient_rows", len(rows) == 9, "%d rows", len(rows))
	r.check("all_rows_cross_border", paperStats.CrossBorder == 9,
		"every Table 4 row lists only out-of-region countries")
	r.check("cross_border_not_uncommon", synthStats.Rate() > 0.2,
		"synthetic rate %.2f — the paper: 'cross-country certification is not uncommon'", synthStats.Rate())
	return r, nil
}

// table6Topology builds the evaluation topology for the policy tradeoff:
//
//	     10 ~~~ 20          (tier-1 peers)
//	    /  \   /  \
//	   30   \ /    40       (transit ASes, customers of the tier-1s)
//	   |     X     |
//	victim  / \  attacker
//	   1 --+   +-- 666
//
// Victim AS1 is a customer of 10 and 30; attacker AS666 a customer of 20
// and 40. Sources measured: 10, 20, 30, 40.
func table6Topology(policy bgp.Policy) (*bgp.Network, error) {
	n := bgp.NewNetwork()
	for _, asn := range []ipres.ASN{1, 666, 10, 20, 30, 40} {
		n.AddAS(asn, policy)
	}
	steps := []error{
		n.PeerOf(10, 20),
		n.ProviderOf(10, 30),
		n.ProviderOf(20, 40),
		n.ProviderOf(10, 1),
		n.ProviderOf(30, 1),
		n.ProviderOf(20, 666),
		n.ProviderOf(40, 666),
		n.Originate(1, ipres.MustParsePrefix("63.174.16.0/22")),
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}

var table6Sources = []ipres.ASN{10, 20, 30, 40}

// Table6 measures victim reachability under each local policy × threat
// combination, reproducing the paper's tradeoff table:
//
//	                    routing attack   RPKI manipulation
//	drop invalid              ✓                 ✗
//	depref invalid      subprefix hijack        ✓
func Table6() (*Result, error) {
	r := &Result{ID: "table6", Title: "Impact of different local policies (Table 6)"}
	dst := ipres.MustParseAddr("63.174.17.5") // inside the victim's /22

	type cell struct {
		policy bgp.Policy
		threat string
		frac   float64
	}
	var cells []cell
	for _, policy := range []bgp.Policy{bgp.PolicyDropInvalid, bgp.PolicyDeprefInvalid} {
		for _, threat := range []string{"subprefix-hijack", "rpki-manipulation"} {
			n, err := table6Topology(policy)
			if err != nil {
				return nil, err
			}
			switch threat {
			case "subprefix-hijack":
				// The victim's ROA is intact; the attacker originates a
				// subprefix of the victim's /22.
				n.SetSharedIndex(rov.NewIndex(rov.VRP{
					Prefix: ipres.MustParsePrefix("63.174.16.0/22"), MaxLength: 22, ASN: 1,
				}))
				if err := n.Originate(666, ipres.MustParsePrefix("63.174.17.0/24")); err != nil {
					return nil, err
				}
			case "rpki-manipulation":
				// The victim's ROA has been whacked while a covering ROA
				// (different origin) remains: the victim's route is invalid.
				n.SetSharedIndex(rov.NewIndex(rov.VRP{
					Prefix: ipres.MustParsePrefix("63.174.16.0/20"), MaxLength: 20, ASN: 17054,
				}))
			}
			frac, _, err := n.ReachabilityMatrix(table6Sources, dst, 1)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell{policy, threat, frac})
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-22s %s\n", "relying-party", "prefix reachable during", "")
	fmt.Fprintf(&sb, "%-16s %-22s %s\n", "policy", "routing attack", "RPKI manipulation")
	byKey := map[string]float64{}
	for _, c := range cells {
		byKey[c.policy.String()+"/"+c.threat] = c.frac
		r.metric("reach_"+c.policy.String()+"_"+c.threat, c.frac)
	}
	fmt.Fprintf(&sb, "%-16s %-22.2f %.2f\n", "drop invalid",
		byKey["drop-invalid/subprefix-hijack"], byKey["drop-invalid/rpki-manipulation"])
	fmt.Fprintf(&sb, "%-16s %-22.2f %.2f\n", "depref invalid",
		byKey["depref-invalid/subprefix-hijack"], byKey["depref-invalid/rpki-manipulation"])
	r.Text = sb.String()

	r.check("drop_survives_routing_attack", byKey["drop-invalid/subprefix-hijack"] == 1.0,
		"drop-invalid reaches the victim during a subprefix hijack: %.2f", byKey["drop-invalid/subprefix-hijack"])
	r.check("drop_dies_under_manipulation", byKey["drop-invalid/rpki-manipulation"] == 0.0,
		"drop-invalid loses the whacked prefix: %.2f", byKey["drop-invalid/rpki-manipulation"])
	r.check("depref_hijacked_under_routing_attack", byKey["depref-invalid/subprefix-hijack"] < 1.0,
		"depref-invalid leaves subprefix hijacks possible: %.2f", byKey["depref-invalid/subprefix-hijack"])
	r.check("depref_survives_manipulation", byKey["depref-invalid/rpki-manipulation"] == 1.0,
		"depref-invalid keeps reaching the whacked prefix: %.2f", byKey["depref-invalid/rpki-manipulation"])
	return r, nil
}
