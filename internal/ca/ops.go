package ca

import (
	"fmt"
	"time"

	"repro/internal/cert"
	"repro/internal/ipres"
)

// The operations in this file are the authority-side mechanics of the
// paper's side effects. None of them violates the RPKI specifications —
// that is the point: a parent needs no exploit to whack a descendant.

// RevokeChild revokes a child's certificate via the CRL and withdraws it
// from the repository. This is the *transparent* whack: the revocation is
// visible on the public CRL, so monitors (and the child) can see it
// (Side Effect 1).
func (a *Authority) RevokeChild(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	rec, ok := a.children[name]
	if !ok {
		return fmt.Errorf("ca: %s has no child %q", a.Name, name)
	}
	a.revoked = append(a.revoked, rec.cert.SerialNumber())
	a.Store.Delete(rec.fileName)
	delete(a.children, name)
	delete(a.childHandles, name)
	return a.republishLocked()
}

// DeleteChildCert removes a child's certificate from the repository WITHOUT
// revoking it. The certificate remains cryptographically valid — it is just
// no longer retrievable, so relying parties cannot build the chain. Nothing
// appears on any CRL: this is the stealthy revocation of Side Effect 2.
func (a *Authority) DeleteChildCert(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	rec, ok := a.children[name]
	if !ok {
		return fmt.Errorf("ca: %s has no child %q", a.Name, name)
	}
	a.Store.Delete(rec.fileName)
	delete(a.children, name)
	delete(a.childHandles, name)
	return a.republishLocked()
}

// ShrinkChild overwrites a child's certificate in place with one certifying
// newResources (which must be covered by this authority's resources). The
// object keeps its persistent name, so to a casual observer this is
// indistinguishable from routine reissuance — yet every descendant object
// whose resources now fall outside newResources becomes invalid. This is
// the mechanism of targeted whacking (Side Effect 3 / Figure 3).
//
// The old certificate is NOT placed on the CRL; it has simply been
// overwritten, which is ordinary behavior under the RPKI's persistent-name
// design decision.
func (a *Authority) ShrinkChild(name string, newResources ipres.Set) error {
	a.mu.Lock()
	child, newCert, err := a.shrinkChildLocked(name, newResources)
	a.mu.Unlock()
	if err != nil {
		return err
	}
	// The child's handle is updated under the CHILD's lock, after ours is
	// released: Authority locks are acquired child→parent only.
	child.setCert(newCert)
	return nil
}

func (a *Authority) shrinkChildLocked(name string, newResources ipres.Set) (*Authority, *cert.ResourceCert, error) {
	rec, ok := a.children[name]
	if !ok {
		return nil, nil, fmt.Errorf("ca: %s has no child %q", a.Name, name)
	}
	if !a.Cert.IPSet().Covers(newResources) {
		return nil, nil, fmt.Errorf("ca: %s cannot certify %v beyond its resources", a.Name, newResources.Subtract(a.Cert.IPSet()))
	}
	child := a.childAuthorityLocked(name)
	if child == nil {
		return nil, nil, fmt.Errorf("ca: %s child %q authority handle missing", a.Name, name)
	}
	newCert, err := a.issueChildCertLocked(child, newResources)
	if err != nil {
		return nil, nil, err
	}
	rec.cert = newCert
	rec.resources = newResources
	a.Store.Put(rec.fileName, newCert.Raw) // overwrite in place
	return child, newCert, a.republishLocked()
}

// childAuthorities tracks the live child Authority handles so ShrinkChild
// and key rollover can reissue against the child's existing key. The map is
// maintained lazily: CreateChild links the handle.
func (a *Authority) childAuthorityLocked(name string) *Authority {
	if a.childHandles == nil {
		return nil
	}
	return a.childHandles[name]
}

// DeleteROA withdraws one of this authority's own ROAs from its repository
// without revoking the EE certificate: stealthy for the same reason as
// DeleteChildCert.
func (a *Authority) DeleteROA(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	rec, ok := a.roas[name]
	if !ok {
		return fmt.Errorf("ca: %s has no ROA %q", a.Name, name)
	}
	a.Store.Delete(rec.fileName)
	delete(a.roas, name)
	return a.republishLocked()
}

// RevokeROA revokes the ROA's EE certificate on the CRL and withdraws the
// object: the transparent variant.
func (a *Authority) RevokeROA(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	rec, ok := a.roas[name]
	if !ok {
		return fmt.Errorf("ca: %s has no ROA %q", a.Name, name)
	}
	a.revoked = append(a.revoked, rec.eeCert.SerialNumber())
	a.Store.Delete(rec.fileName)
	delete(a.roas, name)
	return a.republishLocked()
}

// RevokedSerials returns the serial numbers currently on this authority's
// CRL (as decimal strings, for monitors).
func (a *Authority) RevokedSerials() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, len(a.revoked))
	for i, s := range a.revoked {
		out[i] = s.String()
	}
	return out
}

// certUpdate is a child certificate reissued under the parent's lock whose
// handle install is deferred until the parent's critical section ends.
type certUpdate struct {
	child *Authority
	cert  *cert.ResourceCert
}

// RollKey performs an RFC 6489 key rollover: the authority generates a new
// key, obtains a new certificate from its parent under the SAME subject and
// publication point (overwriting the old one — the reason RPKI objects have
// persistent, overwritable names), and reissues all of its signed products.
func (a *Authority) RollKey() error {
	a.mu.Lock()
	//lint:ignore lockorder the re-acquisition is a.Parent's mu, a distinct instance: Authority locks are acquired strictly child→parent and no path acquires a descendant's lock while holding its own, so the same-type identity cannot cycle
	updates, err := a.rollKeyLocked()
	a.mu.Unlock()
	if err != nil {
		return err
	}
	// Install the children's reissued certificates under each child's own
	// lock, now that ours is released (locks are acquired child→parent
	// only — never downward).
	for _, u := range updates {
		u.child.setCert(u.cert)
	}
	return nil
}

func (a *Authority) rollKeyLocked() ([]certUpdate, error) {
	newKey, err := cert.GenerateKeyPair(nil)
	if err != nil {
		return nil, err
	}
	oldKey := a.Key
	a.Key = newKey
	if a.Parent == nil {
		// Trust anchor: reissue self-signed.
		now := a.cfg.now()
		taCert, err := cert.Issue(cert.Template{
			Subject:   a.Name,
			Serial:    a.nextSerial(),
			NotBefore: now.Add(-time.Minute),
			NotAfter:  now.Add(a.cfg.certValidity()),
			Resources: a.Cert.IPSet(),
			CA:        true,
			SIA: cert.InfoAccess{
				CARepository: a.URI.String() + "/",
				Manifest:     a.URI.ObjectURI(a.ManifestFileName()),
			},
		}, nil, newKey, newKey)
		if err != nil {
			a.Key = oldKey
			return nil, err
		}
		a.Cert = taCert
		a.Store.Put(a.CertFileName(), taCert.Raw)
	} else {
		newCert, err := a.Parent.reissueChild(a)
		if err != nil {
			a.Key = oldKey
			return nil, err
		}
		a.Cert = newCert
	}
	// Reissue every child certificate and ROA under the new key. The new
	// handles are installed by the caller after a.mu is released.
	var updates []certUpdate
	for _, rec := range a.children {
		child := a.childAuthorityLocked(rec.name)
		if child == nil {
			continue
		}
		newCert, err := a.issueChildCertLocked(child, rec.resources)
		if err != nil {
			return nil, err
		}
		rec.cert = newCert
		updates = append(updates, certUpdate{child: child, cert: newCert})
		a.Store.Put(rec.fileName, newCert.Raw)
	}
	for _, rec := range a.roas {
		signed, eeCert, err := a.signROALocked(rec.roa, rec.fileName)
		if err != nil {
			return nil, err
		}
		rec.eeCert = eeCert
		a.Store.Put(rec.fileName, signed)
	}
	return updates, a.republishLocked()
}

// reissueChild reissues child's certificate (same resources, child's
// current key), overwriting in place, and returns the new certificate for
// the child to install under its own lock. The child's fields (Name, Key)
// are read here under the child's lock: the only caller is the child's own
// rollKeyLocked.
func (a *Authority) reissueChild(child *Authority) (*cert.ResourceCert, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	rec, ok := a.children[child.Name]
	if !ok {
		return nil, fmt.Errorf("ca: %s has no child %q", a.Name, child.Name)
	}
	newCert, err := a.issueChildCertLocked(child, rec.resources)
	if err != nil {
		return nil, err
	}
	rec.cert = newCert
	a.Store.Put(rec.fileName, newCert.Raw)
	return newCert, a.republishLocked()
}

// Child returns the live Authority handle for a direct child.
func (a *Authority) Child(name string) (*Authority, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.childHandles[name]
	return c, ok
}

// AdoptDescendant issues a replacement resource certificate for a distant
// descendant's EXISTING public key, as this authority's own child, holding
// the given (typically shrunken) resources. The descendant's entire signed
// subtree — child RCs, ROAs, CRL, manifest, all signed with its key —
// revalidates under the replacement certificate without the descendant's
// cooperation or knowledge.
//
// This is the reissuance step of a deep whack (Side Effect 4 / Figure 3's
// make-before-break generalized below the grandchild level). The
// replacement certificate is exactly the kind of "suspiciously-reissued
// object" the paper proposes monitors should look for.
func (a *Authority) AdoptDescendant(desc *Authority, resources ipres.Set) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.children[desc.Name]; dup {
		return fmt.Errorf("ca: %s already has a child named %q", a.Name, desc.Name)
	}
	if !a.Cert.IPSet().Covers(resources) {
		return fmt.Errorf("ca: %s cannot certify %v beyond its resources", a.Name, resources.Subtract(a.Cert.IPSet()))
	}
	now := a.cfg.now()
	replacement, err := cert.IssueForKey(cert.Template{
		Subject:   desc.Name,
		Serial:    a.nextSerial(),
		NotBefore: now.Add(-time.Minute),
		NotAfter:  now.Add(a.cfg.certValidity()),
		Resources: resources,
		CA:        true,
		SIA: cert.InfoAccess{
			CARepository: desc.URI.String() + "/",
			Manifest:     desc.URI.ObjectURI(desc.ManifestFileName()),
		},
		CRLDistributionPoint: a.URI.ObjectURI(a.CRLFileName()),
		AIACAIssuers:         a.certURI(),
	}, a.Cert, a.Key, desc.Key.Public())
	if err != nil {
		return err
	}
	rec := &childRecord{
		name:      desc.Name,
		cert:      replacement,
		resources: resources,
		fileName:  desc.CertFileName(),
	}
	a.children[desc.Name] = rec
	a.childHandles[desc.Name] = desc
	a.Store.Put(rec.fileName, replacement.Raw)
	return a.republishLocked()
}
