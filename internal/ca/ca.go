// Package ca implements RPKI certificate authorities: resource-holding
// entities that suballocate address space to children via resource
// certificates, authorize route origination via ROAs, and publish everything
// (including CRLs and manifests) into repository publication points they
// control.
//
// The package deliberately exposes the full set of operations a *misbehaving*
// authority has at its disposal, because they are ordinary protocol
// operations, not protocol violations:
//
//   - Revoke a child's certificate via the CRL (transparent whacking,
//     Side Effect 1).
//   - Delete any object it published, without touching the CRL (stealthy
//     revocation, Side Effect 2).
//   - Overwrite a child's certificate in place with one holding fewer
//     resources (the mechanism behind targeted whacking, Side Effect 3).
//   - Reissue descendant objects under its own key ("make-before-break",
//     Figure 3).
package ca

import (
	"fmt"
	"math/big"
	"sort"
	"sync"
	"time"

	"repro/internal/cert"
	"repro/internal/ipres"
	"repro/internal/manifest"
	"repro/internal/repo"
	"repro/internal/roa"
)

// Config tunes an authority's issuance behavior.
type Config struct {
	// CertValidity is the lifetime of issued certificates (default 1 year).
	CertValidity time.Duration
	// ManifestValidity is the manifest/CRL freshness window (default 24h).
	ManifestValidity time.Duration
	// Clock supplies the current time (default time.Now). Tests and the
	// expiry experiments use a fake clock.
	Clock func() time.Time
}

func (c Config) certValidity() time.Duration {
	if c.CertValidity == 0 {
		return 365 * 24 * time.Hour
	}
	return c.CertValidity
}

func (c Config) manifestValidity() time.Duration {
	if c.ManifestValidity == 0 {
		return 24 * time.Hour
	}
	return c.ManifestValidity
}

func (c Config) now() time.Time {
	if c.Clock == nil {
		return time.Now()
	}
	return c.Clock()
}

// childRecord tracks one child authority from the issuer's perspective.
type childRecord struct {
	name      string
	cert      *cert.ResourceCert
	resources ipres.Set
	fileName  string
}

// roaRecord tracks one ROA issued by this authority.
type roaRecord struct {
	name     string
	roa      *roa.ROA
	eeCert   *cert.ResourceCert
	fileName string
}

// Authority is an RPKI certificate authority together with its publication
// point.
type Authority struct {
	// Name identifies the authority in hierarchies and logs.
	Name string
	// Key is the authority's current key pair.
	Key *cert.KeyPair
	// Cert is the authority's current resource certificate (self-signed for
	// a trust anchor).
	Cert *cert.ResourceCert
	// Parent is the issuing authority, nil for a trust anchor.
	Parent *Authority
	// Store is the publication point this authority controls.
	Store *repo.Store
	// URI is where Store is reachable.
	URI repo.URI

	cfg Config

	mu        sync.Mutex
	serial    int64
	crlNumber int64
	mftNumber int64
	children  map[string]*childRecord
	roas      map[string]*roaRecord
	revoked   []*big.Int
	// childHandles links child records to their live Authority handles so
	// the parent can reissue against the child's existing key (ShrinkChild,
	// key rollover).
	childHandles map[string]*Authority
	// bulk suppresses per-operation manifest/CRL regeneration; see
	// BeginBulk.
	bulk bool
}

// NewTrustAnchor creates a self-signed trust anchor holding resources,
// publishing into store at uri.
func NewTrustAnchor(name string, resources ipres.Set, store *repo.Store, uri repo.URI, cfg Config) (*Authority, error) {
	key, err := cert.GenerateKeyPair(nil)
	if err != nil {
		return nil, err
	}
	a := &Authority{
		Name:         name,
		Key:          key,
		Store:        store,
		URI:          uri,
		cfg:          cfg,
		serial:       1,
		children:     make(map[string]*childRecord),
		roas:         make(map[string]*roaRecord),
		childHandles: make(map[string]*Authority),
	}
	now := cfg.now()
	taCert, err := cert.Issue(cert.Template{
		Subject:   name,
		Serial:    a.nextSerial(),
		NotBefore: now.Add(-time.Minute),
		NotAfter:  now.Add(cfg.certValidity()),
		Resources: resources,
		CA:        true,
		SIA: cert.InfoAccess{
			CARepository: uri.String() + "/",
			Manifest:     uri.ObjectURI(name + ".mft"),
		},
	}, nil, key, key)
	if err != nil {
		return nil, err
	}
	a.Cert = taCert
	store.Put(name+".cer", taCert.Raw)
	if err := a.republishLocked(); err != nil {
		return nil, err
	}
	return a, nil
}

func (a *Authority) nextSerial() int64 {
	s := a.serial
	a.serial++
	return s
}

// Resources returns the authority's certified resources.
func (a *Authority) Resources() ipres.Set { return a.Cert.IPSet() }

// CertFileName is the name under which this authority's certificate is
// published in its issuer's repository.
func (a *Authority) CertFileName() string { return a.Name + ".cer" }

// ManifestFileName is the authority's manifest object name.
func (a *Authority) ManifestFileName() string { return a.Name + ".mft" }

// CRLFileName is the authority's CRL object name.
func (a *Authority) CRLFileName() string { return a.Name + ".crl" }

// CreateChild suballocates resources to a new child authority that will
// publish into childStore at childURI. The child's certificate is published
// in *this* authority's repository (objects live with their issuer), and the
// child's SIA points at its own publication point.
//
// Authority locks are acquired strictly upward — child before parent, never
// the reverse — so the child's first republish (which takes child.mu) runs
// only after a.mu is released.
func (a *Authority) CreateChild(name string, resources ipres.Set, childStore *repo.Store, childURI repo.URI) (*Authority, error) {
	a.mu.Lock()
	child, err := a.createChildLocked(name, resources, childStore, childURI)
	a.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := child.republish(); err != nil {
		return nil, err
	}
	return child, nil
}

func (a *Authority) createChildLocked(name string, resources ipres.Set, childStore *repo.Store, childURI repo.URI) (*Authority, error) {
	if _, dup := a.children[name]; dup {
		return nil, fmt.Errorf("ca: %s already has child %q", a.Name, name)
	}
	if !a.Cert.IPSet().Covers(resources) {
		return nil, fmt.Errorf("ca: %s cannot allocate %v beyond its resources", a.Name, resources.Subtract(a.Cert.IPSet()))
	}
	childKey, err := cert.GenerateKeyPair(nil)
	if err != nil {
		return nil, err
	}
	child := &Authority{
		Name:         name,
		Key:          childKey,
		Parent:       a,
		Store:        childStore,
		URI:          childURI,
		cfg:          a.cfg,
		serial:       1,
		children:     make(map[string]*childRecord),
		roas:         make(map[string]*roaRecord),
		childHandles: make(map[string]*Authority),
	}
	childCert, err := a.issueChildCertLocked(child, resources)
	if err != nil {
		return nil, err
	}
	child.Cert = childCert
	rec := &childRecord{
		name:      name,
		cert:      childCert,
		resources: resources,
		fileName:  child.CertFileName(),
	}
	a.children[name] = rec
	a.childHandles[name] = child
	a.Store.Put(rec.fileName, childCert.Raw)
	if err := a.republishLocked(); err != nil {
		return nil, err
	}
	return child, nil
}

// setCert installs a certificate the parent reissued for this authority.
// It takes a.mu, so the caller must hold no Authority lock — in particular
// not the parent's: cert installs are deferred until after the parent's
// critical section precisely to keep the child→parent lock order acyclic.
func (a *Authority) setCert(c *cert.ResourceCert) {
	a.mu.Lock()
	a.Cert = c
	a.mu.Unlock()
}

// issueChildCertLocked issues (or reissues) a child RC with the given
// resources, using the child's existing key.
func (a *Authority) issueChildCertLocked(child *Authority, resources ipres.Set) (*cert.ResourceCert, error) {
	now := a.cfg.now()
	return cert.Issue(cert.Template{
		Subject:   child.Name,
		Serial:    a.nextSerial(),
		NotBefore: now.Add(-time.Minute),
		NotAfter:  now.Add(a.cfg.certValidity()),
		Resources: resources,
		CA:        true,
		SIA: cert.InfoAccess{
			CARepository: child.URI.String() + "/",
			Manifest:     child.URI.ObjectURI(child.ManifestFileName()),
		},
		CRLDistributionPoint: a.URI.ObjectURI(a.CRLFileName()),
		AIACAIssuers:         a.certURI(),
	}, a.Cert, a.Key, child.Key)
}

func (a *Authority) certURI() string {
	if a.Parent == nil {
		return a.URI.ObjectURI(a.CertFileName())
	}
	return a.Parent.URI.ObjectURI(a.CertFileName())
}

// IssueROA creates an EE certificate holding exactly the ROA's resources,
// signs the ROA with it, and publishes it under name+".roa".
func (a *Authority) IssueROA(name string, asid ipres.ASN, prefixes ...roa.Prefix) (*roa.ROA, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.roas[name]; dup {
		return nil, fmt.Errorf("ca: %s already issued ROA %q", a.Name, name)
	}
	r, err := roa.New(asid, prefixes...)
	if err != nil {
		return nil, err
	}
	if !a.Cert.IPSet().Covers(r.ResourceSet()) {
		return nil, fmt.Errorf("ca: %s cannot authorize %v beyond its resources", a.Name, r.ResourceSet().Subtract(a.Cert.IPSet()))
	}
	fileName := name + ".roa"
	signedROA, eeCert, err := a.signROALocked(r, fileName)
	if err != nil {
		return nil, err
	}
	a.roas[name] = &roaRecord{name: name, roa: r, eeCert: eeCert, fileName: fileName}
	a.Store.Put(fileName, signedROA)
	if err := a.republishLocked(); err != nil {
		return nil, err
	}
	return r, nil
}

func (a *Authority) signROALocked(r *roa.ROA, fileName string) ([]byte, *cert.ResourceCert, error) {
	eeKey, err := cert.GenerateKeyPair(nil)
	if err != nil {
		return nil, nil, err
	}
	now := a.cfg.now()
	eeCert, err := cert.Issue(cert.Template{
		Subject:              fmt.Sprintf("%s-ee-%d", a.Name, a.serial),
		Serial:               a.nextSerial(),
		NotBefore:            now.Add(-time.Minute),
		NotAfter:             now.Add(a.cfg.certValidity()),
		Resources:            r.ResourceSet(),
		SIA:                  cert.InfoAccess{SignedObject: a.URI.ObjectURI(fileName)},
		CRLDistributionPoint: a.URI.ObjectURI(a.CRLFileName()),
		AIACAIssuers:         a.certURI(),
	}, a.Cert, a.Key, eeKey)
	if err != nil {
		return nil, nil, err
	}
	signed, err := r.Sign(eeCert, eeKey)
	if err != nil {
		return nil, nil, err
	}
	return signed, eeCert, nil
}

// republish regenerates this authority's CRL and manifest.
func (a *Authority) republish() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.republishLocked()
}

func (a *Authority) republishLocked() error {
	if a.bulk {
		return nil
	}
	now := a.cfg.now()

	// CRL first, so the manifest covers it.
	a.crlNumber++
	crl, err := cert.IssueCRL(a.Cert, a.Key, a.crlNumber, a.revoked, now, now.Add(a.cfg.manifestValidity()))
	if err != nil {
		return fmt.Errorf("ca: %s issuing CRL: %w", a.Name, err)
	}
	a.Store.Put(a.CRLFileName(), crl.Raw)

	// Manifest over everything published except the manifest itself.
	files := a.Store.Snapshot()
	delete(files, a.ManifestFileName())
	a.mftNumber++
	m := manifest.New(a.mftNumber, now, now.Add(a.cfg.manifestValidity()), files)
	eeKey, err := cert.GenerateKeyPair(nil)
	if err != nil {
		return err
	}
	// The manifest EE outlives the manifest window so relying parties can
	// distinguish "stale" (nextUpdate passed) from "invalid" (EE expired).
	eeCert, err := cert.Issue(cert.Template{
		Subject:              fmt.Sprintf("%s-mft-ee-%d", a.Name, a.mftNumber),
		Serial:               a.nextSerial(),
		NotBefore:            now.Add(-time.Minute),
		NotAfter:             now.Add(a.cfg.certValidity()),
		InheritIP:            true,
		SIA:                  cert.InfoAccess{SignedObject: a.URI.ObjectURI(a.ManifestFileName())},
		CRLDistributionPoint: a.URI.ObjectURI(a.CRLFileName()),
		AIACAIssuers:         a.certURI(),
	}, a.Cert, a.Key, eeKey)
	if err != nil {
		return fmt.Errorf("ca: %s issuing manifest EE: %w", a.Name, err)
	}
	signed, err := m.Sign(eeCert, eeKey)
	if err != nil {
		return fmt.Errorf("ca: %s signing manifest: %w", a.Name, err)
	}
	a.Store.Put(a.ManifestFileName(), signed)
	return nil
}

// BeginBulk suspends manifest and CRL regeneration so a burst of issuance
// (e.g. building a deployment-scale hierarchy) does not re-sign the
// publication metadata after every object. Call EndBulk to regenerate once.
func (a *Authority) BeginBulk() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.bulk = true
}

// EndBulk resumes normal publication and regenerates the manifest and CRL.
func (a *Authority) EndBulk() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.bulk = false
	return a.republishLocked()
}

// Children returns the names of current children, sorted.
func (a *Authority) Children() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.children))
	for name := range a.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ChildResources returns the resources currently certified to child name.
func (a *Authority) ChildResources(name string) (ipres.Set, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	rec, ok := a.children[name]
	if !ok {
		return ipres.Set{}, false
	}
	return rec.resources, true
}

// ROAs returns the names of this authority's ROAs, sorted.
func (a *Authority) ROAs() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.roas))
	for name := range a.roas {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ROA returns a previously issued ROA by name.
func (a *Authority) ROA(name string) (*roa.ROA, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	rec, ok := a.roas[name]
	if !ok {
		return nil, false
	}
	return rec.roa, true
}
