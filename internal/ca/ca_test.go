package ca

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/ipres"
	"repro/internal/manifest"
	"repro/internal/repo"
	"repro/internal/roa"
)

var testEpoch = time.Date(2013, 11, 21, 0, 0, 0, 0, time.UTC)

func testConfig() Config {
	return Config{Clock: func() time.Time { return testEpoch }}
}

func newTA(t *testing.T, resources string) *Authority {
	t.Helper()
	ta, err := NewTrustAnchor("ta", ipres.MustParseSet(resources), repo.NewStore(),
		repo.URI{Host: "ta.example:8873", Module: "ta"}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ta
}

func addChild(t *testing.T, parent *Authority, name, resources string) *Authority {
	t.Helper()
	child, err := parent.CreateChild(name, ipres.MustParseSet(resources), repo.NewStore(),
		repo.URI{Host: name + ".example:8873", Module: name})
	if err != nil {
		t.Fatal(err)
	}
	return child
}

func TestTrustAnchorPublishes(t *testing.T) {
	ta := newTA(t, "0.0.0.0/0")
	names := ta.Store.List()
	want := map[string]bool{"ta.cer": true, "ta.crl": true, "ta.mft": true}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected object %q", n)
		}
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("missing objects: %v", want)
	}
}

func TestCreateChildPublishesInParentRepo(t *testing.T) {
	ta := newTA(t, "63.0.0.0/8")
	sprint := addChild(t, ta, "sprint", "63.160.0.0/12")
	// The child's RC lives in the PARENT's repository — issuer-controlled
	// storage is the design decision behind stealthy revocation.
	if _, ok := ta.Store.Get("sprint.cer"); !ok {
		t.Error("child cert should be in parent store")
	}
	if _, ok := sprint.Store.Get("sprint.cer"); ok {
		t.Error("child cert should NOT be in child store")
	}
	if !sprint.Resources().Equal(ipres.MustParseSet("63.160.0.0/12")) {
		t.Errorf("child resources = %v", sprint.Resources())
	}
	if sprint.Cert.SIA.CARepository != "rsynclite://sprint.example:8873/sprint/" {
		t.Errorf("child SIA = %q", sprint.Cert.SIA.CARepository)
	}
	if got := ta.Children(); len(got) != 1 || got[0] != "sprint" {
		t.Errorf("children = %v", got)
	}
}

func TestCreateChildOverclaimRejected(t *testing.T) {
	ta := newTA(t, "63.0.0.0/8")
	if _, err := ta.CreateChild("greedy", ipres.MustParseSet("64.0.0.0/8"), repo.NewStore(), repo.URI{Host: "x:1", Module: "g"}); err == nil {
		t.Error("overclaiming child must be rejected")
	}
	if _, err := ta.CreateChild("dup", ipres.MustParseSet("63.1.0.0/16"), repo.NewStore(), repo.URI{Host: "x:1", Module: "d"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ta.CreateChild("dup", ipres.MustParseSet("63.2.0.0/16"), repo.NewStore(), repo.URI{Host: "x:1", Module: "d"}); err == nil {
		t.Error("duplicate child name must be rejected")
	}
}

func TestIssueROA(t *testing.T) {
	ta := newTA(t, "63.0.0.0/8")
	sprint := addChild(t, ta, "sprint", "63.160.0.0/12")
	r, err := sprint.IssueROA("roa-1239", 1239, roa.MustParsePrefix("63.160.0.0/12-13"))
	if err != nil {
		t.Fatal(err)
	}
	if r.String() != "(63.160.0.0/12-13, AS1239)" {
		t.Errorf("roa = %v", r)
	}
	raw, ok := sprint.Store.Get("roa-1239.roa")
	if !ok {
		t.Fatal("ROA not published")
	}
	signed, err := roa.ParseSigned(raw)
	if err != nil {
		t.Fatal(err)
	}
	if signed.ROA.ASID != 1239 {
		t.Errorf("parsed ASID = %v", signed.ROA.ASID)
	}
	// EE must chain to sprint.
	if err := signed.EE.Cert.CheckSignatureFrom(sprint.Cert.Cert); err != nil {
		t.Errorf("EE not signed by sprint: %v", err)
	}
	if _, err := sprint.IssueROA("roa-too-big", 1, roa.MustParsePrefix("64.0.0.0/8")); err == nil {
		t.Error("ROA beyond resources must be rejected")
	}
	if _, err := sprint.IssueROA("roa-1239", 1, roa.MustParsePrefix("63.160.0.0/16")); err == nil {
		t.Error("duplicate ROA name must be rejected")
	}
}

func TestManifestCoversPublishedObjects(t *testing.T) {
	ta := newTA(t, "63.0.0.0/8")
	sprint := addChild(t, ta, "sprint", "63.160.0.0/12")
	if _, err := sprint.IssueROA("r1", 1239, roa.MustParsePrefix("63.160.0.0/12")); err != nil {
		t.Fatal(err)
	}
	raw, ok := sprint.Store.Get("sprint.mft")
	if !ok {
		t.Fatal("manifest not published")
	}
	signed, err := manifest.ParseSigned(raw)
	if err != nil {
		t.Fatal(err)
	}
	m := signed.Manifest
	for _, name := range []string{"sprint.crl", "r1.roa"} {
		content, _ := sprint.Store.Get(name)
		if err := m.Verify(name, content); err != nil {
			t.Errorf("manifest should cover %s: %v", name, err)
		}
	}
	if _, ok := m.Lookup("sprint.mft"); ok {
		t.Error("manifest must not list itself")
	}
}

func TestRevokeChildIsTransparent(t *testing.T) {
	ta := newTA(t, "63.0.0.0/8")
	sprint := addChild(t, ta, "sprint", "63.160.0.0/12")
	serial := sprint.Cert.SerialNumber().String()
	if err := ta.RevokeChild("sprint"); err != nil {
		t.Fatal(err)
	}
	if _, ok := ta.Store.Get("sprint.cer"); ok {
		t.Error("revoked cert should be withdrawn")
	}
	// The revocation is VISIBLE on the CRL: Side Effect 1's transparency.
	found := false
	for _, s := range ta.RevokedSerials() {
		if s == serial {
			found = true
		}
	}
	if !found {
		t.Error("revoked serial must appear on CRL")
	}
	crlRaw, _ := ta.Store.Get("ta.crl")
	crl, err := cert.ParseCRL(crlRaw)
	if err != nil {
		t.Fatal(err)
	}
	if !crl.IsRevoked(sprint.Cert.SerialNumber()) {
		t.Error("published CRL must list the revoked serial")
	}
}

func TestDeleteChildCertIsStealthy(t *testing.T) {
	ta := newTA(t, "63.0.0.0/8")
	addChild(t, ta, "sprint", "63.160.0.0/12")
	if err := ta.DeleteChildCert("sprint"); err != nil {
		t.Fatal(err)
	}
	if _, ok := ta.Store.Get("sprint.cer"); ok {
		t.Error("deleted cert should be gone")
	}
	// NOTHING on the CRL: Side Effect 2's stealth.
	if len(ta.RevokedSerials()) != 0 {
		t.Error("stealthy deletion must leave the CRL empty")
	}
	crlRaw, _ := ta.Store.Get("ta.crl")
	crl, err := cert.ParseCRL(crlRaw)
	if err != nil {
		t.Fatal(err)
	}
	if len(crl.List.RevokedCertificateEntries) != 0 {
		t.Error("published CRL must be empty after stealthy delete")
	}
}

func TestShrinkChildOverwritesInPlace(t *testing.T) {
	ta := newTA(t, "63.0.0.0/8")
	sprint := addChild(t, ta, "sprint", "63.160.0.0/12")
	continental := addChild(t, sprint, "continental", "63.174.16.0/20")

	// Figure 3: Sprint overwrites Continental's RC with the two ranges
	// omitting 63.174.24.0/24.
	newRes := ipres.MustParseSet("63.174.16.0-63.174.23.255, 63.174.25.0-63.174.31.255")
	oldRaw, _ := sprint.Store.Get("continental.cer")
	if err := sprint.ShrinkChild("continental", newRes); err != nil {
		t.Fatal(err)
	}
	newRaw, ok := sprint.Store.Get("continental.cer")
	if !ok {
		t.Fatal("cert should still exist under its persistent name")
	}
	if string(oldRaw) == string(newRaw) {
		t.Fatal("cert should have been overwritten")
	}
	rc, err := cert.Parse(newRaw)
	if err != nil {
		t.Fatal(err)
	}
	if !rc.IPSet().Equal(newRes) {
		t.Errorf("new resources = %v", rc.IPSet())
	}
	// Same subject, same key (the child's), new serial, nothing revoked.
	if rc.Subject() != "continental" {
		t.Errorf("subject = %q", rc.Subject())
	}
	if len(sprint.RevokedSerials()) != 0 {
		t.Error("shrink must not touch the CRL")
	}
	if !continental.Cert.IPSet().Equal(newRes) {
		t.Error("child handle should see the shrunken cert")
	}
	got, _ := sprint.ChildResources("continental")
	if !got.Equal(newRes) {
		t.Errorf("recorded child resources = %v", got)
	}
}

func TestDeleteAndRevokeROA(t *testing.T) {
	ta := newTA(t, "63.0.0.0/8")
	if _, err := ta.IssueROA("r1", 1, roa.MustParsePrefix("63.1.0.0/16")); err != nil {
		t.Fatal(err)
	}
	if _, err := ta.IssueROA("r2", 2, roa.MustParsePrefix("63.2.0.0/16")); err != nil {
		t.Fatal(err)
	}
	if err := ta.DeleteROA("r1"); err != nil {
		t.Fatal(err)
	}
	if len(ta.RevokedSerials()) != 0 {
		t.Error("delete must be stealthy")
	}
	if err := ta.RevokeROA("r2"); err != nil {
		t.Fatal(err)
	}
	if len(ta.RevokedSerials()) != 1 {
		t.Error("revoke must appear on CRL")
	}
	if _, ok := ta.Store.Get("r1.roa"); ok {
		t.Error("r1 should be withdrawn")
	}
	if _, ok := ta.Store.Get("r2.roa"); ok {
		t.Error("r2 should be withdrawn")
	}
	if err := ta.DeleteROA("never"); err == nil {
		t.Error("deleting unknown ROA must error")
	}
}

func TestRollKeyReissuesEverything(t *testing.T) {
	ta := newTA(t, "63.0.0.0/8")
	sprint := addChild(t, ta, "sprint", "63.160.0.0/12")
	if _, err := sprint.IssueROA("r1", 1239, roa.MustParsePrefix("63.160.0.0/12")); err != nil {
		t.Fatal(err)
	}
	continental := addChild(t, sprint, "continental", "63.174.16.0/20")

	oldSKI := sprint.Key.SKIString()
	if err := sprint.RollKey(); err != nil {
		t.Fatal(err)
	}
	if sprint.Key.SKIString() == oldSKI {
		t.Fatal("key should have changed")
	}
	// The new sprint cert must chain from the TA and keep its resources.
	raw, _ := ta.Store.Get("sprint.cer")
	rc, err := cert.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Cert.CheckSignatureFrom(ta.Cert.Cert); err != nil {
		t.Errorf("rolled cert must chain from TA: %v", err)
	}
	if !rc.IPSet().Equal(ipres.MustParseSet("63.160.0.0/12")) {
		t.Errorf("rolled resources = %v", rc.IPSet())
	}
	// Children and ROAs must be reissued under the new key.
	contRaw, _ := sprint.Store.Get("continental.cer")
	contRC, err := cert.Parse(contRaw)
	if err != nil {
		t.Fatal(err)
	}
	if err := contRC.Cert.CheckSignatureFrom(rc.Cert); err != nil {
		t.Errorf("child must be reissued under new key: %v", err)
	}
	roaRaw, _ := sprint.Store.Get("r1.roa")
	signed, err := roa.ParseSigned(roaRaw)
	if err != nil {
		t.Fatal(err)
	}
	if err := signed.EE.Cert.CheckSignatureFrom(rc.Cert); err != nil {
		t.Errorf("ROA EE must be reissued under new key: %v", err)
	}
	_ = continental
}

func TestCRLAndManifestRegeneratedOnChange(t *testing.T) {
	ta := newTA(t, "63.0.0.0/8")
	mft1, _ := ta.Store.Get("ta.mft")
	if _, err := ta.IssueROA("r1", 1, roa.MustParsePrefix("63.1.0.0/16")); err != nil {
		t.Fatal(err)
	}
	mft2, _ := ta.Store.Get("ta.mft")
	if string(mft1) == string(mft2) {
		t.Error("manifest must be regenerated after publication change")
	}
	s1, err := manifest.ParseSigned(mft1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := manifest.ParseSigned(mft2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Manifest.Number.Cmp(s1.Manifest.Number) <= 0 {
		t.Error("manifest number must increase")
	}
}

func TestAdoptDescendant(t *testing.T) {
	ta := newTA(t, "63.0.0.0/8")
	sprint := addChild(t, ta, "sprint", "63.160.0.0/12")
	continental := addChild(t, sprint, "continental", "63.174.16.0/20")

	shrunk := ipres.MustParseSet("63.174.16.0-63.174.17.255")
	if err := sprint.AdoptDescendant(continental, shrunk); err == nil {
		t.Fatal("adopting under a name the parent already has must fail")
	}
	// ARIN (grandparent) adopts continental with shrunken resources.
	if err := ta.AdoptDescendant(continental, shrunk); err != nil {
		t.Fatal(err)
	}
	raw, ok := ta.Store.Get("continental.cer")
	if !ok {
		t.Fatal("replacement RC should be published in the adopter's repo")
	}
	rc, err := cert.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !rc.IPSet().Equal(shrunk) {
		t.Errorf("replacement resources = %v", rc.IPSet())
	}
	if err := rc.Cert.CheckSignatureFrom(ta.Cert.Cert); err != nil {
		t.Errorf("replacement must chain from adopter: %v", err)
	}
	// Same key as the descendant: the subtree revalidates.
	if string(rc.Cert.SubjectKeyId) != string(continental.Cert.Cert.SubjectKeyId) {
		t.Error("replacement must certify the descendant's existing key")
	}
	// Overclaim rejected.
	if err := ta.AdoptDescendant(sprint, ipres.MustParseSet("64.0.0.0/8")); err == nil {
		t.Error("overclaiming adoption must fail")
	}
}

func TestRollKeyTrustAnchor(t *testing.T) {
	ta := newTA(t, "63.0.0.0/8")
	child := addChild(t, ta, "child", "63.1.0.0/16")
	oldSKI := ta.Key.SKIString()
	if err := ta.RollKey(); err != nil {
		t.Fatal(err)
	}
	if ta.Key.SKIString() == oldSKI {
		t.Fatal("TA key unchanged")
	}
	// Self-signed cert republished, child reissued under the new key.
	raw, _ := ta.Store.Get("ta.cer")
	rc, err := cert.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Cert.CheckSignatureFrom(rc.Cert); err != nil {
		t.Errorf("new TA cert must self-verify: %v", err)
	}
	childRaw, _ := ta.Store.Get("child.cer")
	childRC, err := cert.Parse(childRaw)
	if err != nil {
		t.Fatal(err)
	}
	if err := childRC.Cert.CheckSignatureFrom(rc.Cert); err != nil {
		t.Errorf("child must chain from rolled TA: %v", err)
	}
	_ = child
}

func TestDefaultConfigUsesWallClock(t *testing.T) {
	ta, err := NewTrustAnchor("wallclock", ipres.MustParseSet("10.0.0.0/8"),
		repo.NewStore(), repo.URI{Host: "x:1", Module: "w"}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if time.Until(ta.Cert.NotAfter()) < 300*24*time.Hour {
		t.Error("default validity should be about a year")
	}
}

func TestOpsOnUnknownNames(t *testing.T) {
	ta := newTA(t, "63.0.0.0/8")
	for _, err := range []error{
		ta.RevokeChild("ghost"),
		ta.DeleteChildCert("ghost"),
		ta.ShrinkChild("ghost", ipres.MustParseSet("63.1.0.0/16")),
		ta.RevokeROA("ghost"),
	} {
		if err == nil {
			t.Error("operation on unknown name must fail")
		}
	}
	if _, ok := ta.Child("ghost"); ok {
		t.Error("unknown child lookup must fail")
	}
	if _, ok := ta.ROA("ghost"); ok {
		t.Error("unknown ROA lookup must fail")
	}
	if _, ok := ta.ChildResources("ghost"); ok {
		t.Error("unknown child resources must fail")
	}
}

// TestParentReissueDoesNotRaceChildPublish pins the cross-instance locking
// protocol surfaced by the lockorder analysis: a parent reissuing a child's
// certificate (RollKey, ShrinkChild) must install the child's new handle
// under the CHILD's lock after releasing its own — never write child state
// under only the parent's lock while the child publishes concurrently.
// Run with -race, the pre-fix code fails here on sprint.Cert.
func TestParentReissueDoesNotRaceChildPublish(t *testing.T) {
	ta := newTA(t, "63.0.0.0/8")
	sprint := addChild(t, ta, "sprint", "63.160.0.0/12")
	for i := 0; i < 10; i++ {
		var wg sync.WaitGroup
		wg.Add(3)
		go func() {
			defer wg.Done()
			if err := ta.RollKey(); err != nil {
				t.Error(err)
			}
		}()
		go func() {
			defer wg.Done()
			if err := ta.ShrinkChild("sprint", ipres.MustParseSet("63.160.0.0/12")); err != nil {
				t.Error(err)
			}
		}()
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("r%d", i)
			if _, err := sprint.IssueROA(name, 1239, roa.MustParsePrefix("63.160.0.0/12")); err != nil {
				t.Error(err)
			}
		}(i)
		wg.Wait()
	}
}
