package geo

import (
	"fmt"
	"math/rand"

	"repro/internal/ipres"
)

// Streaming generation and analysis: at Internet scale (a holding per
// certified RC, millions at full deployment) the jurisdiction analysis must
// not materialize the holding set. SyntheticStream yields holdings one at a
// time and StreamAnalyzer folds them into Stats with O(countries) state, so
// the measurement runs in constant memory at any scale. The slice-based
// Synthetic and Analyze are retained as thin wrappers — both paths draw from
// the rng in the same order, so they produce identical holdings for a seed.

func (cfg SyntheticConfig) normalized() SyntheticConfig {
	if cfg.Holdings == 0 {
		cfg.Holdings = 100
	}
	if cfg.SubAllocationsPerHolding == 0 {
		cfg.SubAllocationsPerHolding = 5
	}
	return cfg
}

// SyntheticStream generates the same deterministic holding set as Synthetic,
// calling yield once per holding instead of accumulating a slice. Generation
// stops early if yield returns false. Memory use is constant in
// cfg.Holdings.
func SyntheticStream(cfg SyntheticConfig, yield func(Holding) bool) {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Holdings; i++ {
		rir := allRIRs[rng.Intn(len(allRIRs))]
		inRegion := membersOf(rir)
		h := Holding{
			Holder:    fmt.Sprintf("org-%03d", i),
			RC:        ipres.MustPrefixFrom(ipres.AddrFromUint32(uint32(i)<<16), 16),
			ParentRIR: rir,
		}
		for j := 0; j < cfg.SubAllocationsPerHolding; j++ {
			if rng.Float64() < cfg.CrossBorderProb {
				// Pick a country outside the region.
				for {
					c := allCountries[rng.Intn(len(allCountries))]
					if !InRegion(rir, c) {
						h.Countries = append(h.Countries, c)
						break
					}
				}
			} else if len(inRegion) > 0 {
				h.Countries = append(h.Countries, inRegion[rng.Intn(len(inRegion))])
			}
		}
		if !yield(h) {
			return
		}
	}
}

// StreamAnalyzer folds holdings into cross-border Stats one at a time.
type StreamAnalyzer struct {
	stats    Stats
	distinct map[Country]bool
}

// NewStreamAnalyzer returns an empty analyzer.
func NewStreamAnalyzer() *StreamAnalyzer {
	return &StreamAnalyzer{distinct: make(map[Country]bool)}
}

// Add folds one holding into the statistics.
func (a *StreamAnalyzer) Add(h Holding) {
	a.stats.Holdings++
	outside := h.OutsideJurisdiction()
	if len(outside) > 0 {
		a.stats.CrossBorder++
	}
	for _, c := range outside {
		a.distinct[c] = true
	}
}

// Stats returns the statistics accumulated so far.
func (a *StreamAnalyzer) Stats() Stats {
	s := a.stats
	s.Countries = len(a.distinct)
	return s
}

// AnalyzeSynthetic runs the full streaming pipeline: generate cfg's holdings
// and analyze them without ever holding more than one in memory.
func AnalyzeSynthetic(cfg SyntheticConfig) Stats {
	a := NewStreamAnalyzer()
	SyntheticStream(cfg, func(h Holding) bool {
		a.Add(h)
		return true
	})
	return a.Stats()
}
