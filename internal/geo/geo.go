// Package geo implements the paper's Section 3.2 jurisdiction analysis:
// which resource certificates cover address space used in countries outside
// the legal jurisdiction of the issuing RIR, so that a whack crosses an
// international border and the target has no local recourse.
//
// The paper's measurement used BGP data, RIR allocation files, and CAIDA's
// AS-to-organization mapping. Those inputs are not redistributable here, so
// this package carries (a) the paper's Table 4 rows verbatim as a seeded
// dataset, and (b) a deterministic synthetic allocation model calibrated to
// the paper's qualitative finding that "cross-country certification is not
// uncommon", for rate measurements at production scale.
package geo

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ipres"
)

// Country is an ISO 3166-1 alpha-2 code (plus the RIR stats conventions
// "EU" and "AP" for multi-country registrations).
type Country string

// RIR identifies a regional internet registry.
type RIR string

// The five RIRs.
const (
	ARIN    RIR = "ARIN"
	RIPE    RIR = "RIPE"
	APNIC   RIR = "APNIC"
	LACNIC  RIR = "LACNIC"
	AFRINIC RIR = "AFRINIC"
)

// rirMembers maps each RIR to its service-region countries (abridged to
// the countries appearing in the analysis; a country absent from a region
// list is treated as outside that region).
var rirMembers = map[RIR]map[Country]bool{
	// Note: Guam (GU), American Samoa (AS) and the Marshall Islands (MH)
	// are in APNIC's service region despite their US affiliation — which
	// is why the paper's Table 4 counts them outside ARIN's jurisdiction.
	ARIN:    set("US", "CA", "PR", "VI", "UM"),
	RIPE:    set("GB", "FR", "NL", "DE", "SE", "RU", "IT", "ES", "EU", "YE", "AE", "TR", "NO", "FI", "DK", "CH", "AT", "BE", "PL", "CZ", "GR", "PT", "IE", "SA", "IL"),
	APNIC:   set("CN", "TW", "JP", "AU", "IN", "HK", "PH", "SG", "KR", "NZ", "MY", "TH", "VN", "ID", "PK", "BD", "MH", "AP", "GU", "AS"),
	LACNIC:  set("MX", "BR", "AR", "CO", "CL", "PE", "EC", "BO", "VE", "GT", "NI", "HN", "CR", "PA", "AN", "UY", "PY"),
	AFRINIC: set("ZA", "NG", "EG", "KE", "ZW", "TN", "MA", "GH", "TZ"),
}

func set(codes ...Country) map[Country]bool {
	m := make(map[Country]bool, len(codes))
	for _, c := range codes {
		m[c] = true
	}
	return m
}

// InRegion reports whether country is inside the RIR's service region.
func InRegion(r RIR, c Country) bool { return rirMembers[r][c] }

// Holding is one resource certificate with the countries in which its
// covered address space is used (derived from suballocations and BGP
// origination in the paper's methodology).
type Holding struct {
	// Holder is the organization holding the RC.
	Holder string
	// RC is the certified resource (one prefix in Table 4).
	RC ipres.Prefix
	// ParentRIR is the RIR that (transitively) certified the holding.
	ParentRIR RIR
	// Countries are where the covered space is used.
	Countries []Country
}

// OutsideJurisdiction returns the covered countries outside the parent
// RIR's service region — the ROAs the RIR could whack while being
// "accountable only to their member countries".
func (h Holding) OutsideJurisdiction() []Country {
	var out []Country
	for _, c := range h.Countries {
		if !InRegion(h.ParentRIR, c) {
			out = append(out, c)
		}
	}
	return out
}

// Table4 returns the paper's nine salient examples verbatim: RCs and the
// countries they cover that are outside the jurisdiction of their parent
// RIR.
func Table4() []Holding {
	mk := func(holder, rc string, rir RIR, countries ...Country) Holding {
		return Holding{Holder: holder, RC: ipres.MustParsePrefix(rc), ParentRIR: rir, Countries: countries}
	}
	return []Holding{
		mk("Level3", "8.0.0.0/8", ARIN, "RU", "FR", "NL", "CN", "TW", "JP", "GU", "AU", "GB", "MX"),
		mk("Cogent", "38.0.0.0/8", ARIN, "GU", "GT", "HK", "GB", "IN", "PH", "MX"),
		mk("Verizon", "65.192.0.0/11", ARIN, "CO", "IT", "AN", "AS", "GB", "EU", "SG"),
		mk("Sprint", "208.0.0.0/11", ARIN, "AS", "BO", "CO", "ES", "EC"),
		mk("Sprint", "63.160.0.0/12", ARIN, "FR", "CO", "YE", "AN", "HN"),
		mk("Tata Comm.", "64.86.0.0/16", ARIN, "GU", "CO", "MH", "HN", "PH", "ZW"),
		mk("Columbus", "63.245.0.0/17", ARIN, "NI", "GT", "CO", "AN", "HN", "MX"),
		mk("Servcorp", "61.28.192.0/19", APNIC, "FR", "AE", "CA", "US", "GB"),
		mk("Resilans", "192.71.0.0/16", RIPE, "US", "IN"),
	}
}

// FormatTable renders holdings as the paper's Table 4: holder, RC, and the
// covered countries *outside* the parent RIR's jurisdiction.
func FormatTable(holdings []Holding) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-18s %s\n", "Holder", "RC", "Countries (outside parent RIR)")
	for _, h := range holdings {
		outside := h.OutsideJurisdiction()
		codes := make([]string, len(outside))
		for i, c := range outside {
			codes[i] = string(c)
		}
		fmt.Fprintf(&sb, "%-12s %-18s %s\n", h.Holder, h.RC, strings.Join(codes, ","))
	}
	return sb.String()
}

// SyntheticConfig sizes a synthetic allocation model for rate measurement.
type SyntheticConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// Holdings is the number of RCs to generate.
	Holdings int
	// CrossBorderProb is the per-suballocation probability that the space
	// is used outside the issuing RIR's region. The paper found
	// cross-country certification "not uncommon" in 2013 allocation data;
	// legacy IPv4 blocks were suballocated "with little regard for
	// questions of international jurisdiction".
	CrossBorderProb float64
	// SubAllocationsPerHolding is how many country-labeled suballocations
	// each RC has.
	SubAllocationsPerHolding int
}

var allCountries = func() []Country {
	var out []Country
	for _, members := range rirMembers {
		for c := range members {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}()

var allRIRs = []RIR{ARIN, RIPE, APNIC, LACNIC, AFRINIC}

// Synthetic generates a deterministic synthetic holding set. It materializes
// the whole set; at rate-measurement scale, prefer SyntheticStream.
func Synthetic(cfg SyntheticConfig) []Holding {
	cfg = cfg.normalized()
	holdings := make([]Holding, 0, cfg.Holdings)
	SyntheticStream(cfg, func(h Holding) bool {
		holdings = append(holdings, h)
		return true
	})
	return holdings
}

func membersOf(r RIR) []Country {
	var out []Country
	for c := range rirMembers[r] {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats summarizes a holding set's cross-border exposure.
type Stats struct {
	// Holdings is the total number of RCs.
	Holdings int
	// CrossBorder is how many RCs cover at least one out-of-region country.
	CrossBorder int
	// Countries is the total number of distinct out-of-region countries
	// covered.
	Countries int
}

// Rate returns the fraction of RCs with cross-border coverage.
func (s Stats) Rate() float64 {
	if s.Holdings == 0 {
		return 0
	}
	return float64(s.CrossBorder) / float64(s.Holdings)
}

// Analyze computes cross-border statistics over holdings.
func Analyze(holdings []Holding) Stats {
	a := NewStreamAnalyzer()
	for _, h := range holdings {
		a.Add(h)
	}
	return a.Stats()
}
