package geo

import (
	"strings"
	"testing"
)

func TestTable4MatchesPaper(t *testing.T) {
	rows := Table4()
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	// Every listed country in the paper's table is OUTSIDE the parent
	// RIR's jurisdiction — that is the table's definition.
	for _, h := range rows {
		outside := h.OutsideJurisdiction()
		if len(outside) != len(h.Countries) {
			t.Errorf("%s %v: %d of %d countries counted outside %s — table rows must be entirely out-of-region",
				h.Holder, h.RC, len(outside), len(h.Countries), h.ParentRIR)
		}
	}
	// Spot checks against the paper.
	if rows[0].Holder != "Level3" || rows[0].RC.String() != "8.0.0.0/8" || len(rows[0].Countries) != 10 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if rows[8].Holder != "Resilans" || rows[8].ParentRIR != RIPE {
		t.Errorf("row 8 = %+v", rows[8])
	}
}

func TestInRegion(t *testing.T) {
	tests := []struct {
		rir  RIR
		c    Country
		want bool
	}{
		{ARIN, "US", true},
		{ARIN, "GB", false},
		{ARIN, "MX", false}, // Mexico is LACNIC
		{RIPE, "RU", true},
		{RIPE, "US", false},
		{APNIC, "AU", true},
		{APNIC, "FR", false},
		{LACNIC, "CO", true},
		{AFRINIC, "ZW", true},
	}
	for _, tc := range tests {
		if got := InRegion(tc.rir, tc.c); got != tc.want {
			t.Errorf("InRegion(%s, %s) = %v, want %v", tc.rir, tc.c, got, tc.want)
		}
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable(Table4())
	for _, want := range []string{"Level3", "8.0.0.0/8", "Sprint", "63.160.0.0/12", "Resilans"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines != 10 { // header + 9 rows
		t.Errorf("lines = %d", lines)
	}
}

func TestSyntheticDeterministicAndCalibrated(t *testing.T) {
	cfg := SyntheticConfig{Seed: 42, Holdings: 500, CrossBorderProb: 0.3, SubAllocationsPerHolding: 5}
	h1 := Synthetic(cfg)
	h2 := Synthetic(cfg)
	if len(h1) != len(h2) || len(h1) != 500 {
		t.Fatalf("lengths: %d %d", len(h1), len(h2))
	}
	s1, s2 := Analyze(h1), Analyze(h2)
	if s1 != s2 {
		t.Error("same seed must give same stats")
	}
	// With p=0.3 per suballocation and 5 suballocations, most RCs should
	// have at least one cross-border country: 1-(0.7^5) ≈ 0.83.
	if s1.Rate() < 0.7 || s1.Rate() > 0.95 {
		t.Errorf("cross-border rate = %v, want ≈0.83", s1.Rate())
	}
	// "Not uncommon" must be non-trivial even at low probability.
	low := Analyze(Synthetic(SyntheticConfig{Seed: 7, Holdings: 500, CrossBorderProb: 0.05, SubAllocationsPerHolding: 5}))
	if low.CrossBorder == 0 {
		t.Error("even low-probability model should show cross-border cases")
	}
	if low.Rate() >= s1.Rate() {
		t.Error("rate should grow with probability")
	}
}

func TestAnalyzeEmptyAndZero(t *testing.T) {
	s := Analyze(nil)
	if s.Rate() != 0 || s.Holdings != 0 {
		t.Errorf("empty stats = %+v", s)
	}
	noCross := Analyze(Synthetic(SyntheticConfig{Seed: 1, Holdings: 50, CrossBorderProb: 0, SubAllocationsPerHolding: 3}))
	if noCross.CrossBorder != 0 || noCross.Countries != 0 {
		t.Errorf("p=0 should have no cross-border: %+v", noCross)
	}
}

func TestTable4Analysis(t *testing.T) {
	s := Analyze(Table4())
	if s.CrossBorder != 9 {
		t.Errorf("all nine paper rows are cross-border, got %d", s.CrossBorder)
	}
	if s.Countries < 15 {
		t.Errorf("distinct out-of-region countries = %d, want many", s.Countries)
	}
}
