// Package rov implements BGP route origin validation per RFC 6811 and
// RFC 6483: classifying each (prefix, origin AS) route as Valid, Invalid, or
// Unknown against a set of validated ROA payloads (VRPs).
//
// The classification rules encode the design decision the paper's Section 4
// dissects: a route is Unknown only when NO valid ROA covers its prefix.
// The moment any covering ROA exists, every route without a matching ROA of
// its own is Invalid. Issuing a ROA therefore protects one route while
// invalidating its neighbors (Side Effect 5), and losing a ROA flips its
// route to Invalid — not Unknown — whenever a covering ROA remains
// (Side Effect 6).
package rov

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ipres"
	"repro/internal/roa"
)

// State is a route's validation state.
type State uint8

const (
	// Unknown: no valid covering ROA exists.
	Unknown State = iota
	// Valid: a valid matching ROA exists.
	Valid
	// Invalid: covered but not matched.
	Invalid
)

func (s State) String() string {
	switch s {
	case Valid:
		return "valid"
	case Invalid:
		return "invalid"
	case Unknown:
		return "unknown"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Route is a BGP route as far as origin validation is concerned: a prefix
// and the AS that originates it.
type Route struct {
	Prefix ipres.Prefix
	Origin ipres.ASN
}

func (r Route) String() string { return fmt.Sprintf("(%s, %s)", r.Prefix, r.Origin) }

// VRP is a validated ROA payload: one (prefix, maxLength, ASN) triple
// extracted from a valid ROA.
type VRP struct {
	Prefix    ipres.Prefix
	MaxLength int
	ASN       ipres.ASN
}

func (v VRP) String() string {
	if v.MaxLength == v.Prefix.Bits() {
		return fmt.Sprintf("(%s, %s)", v.Prefix, v.ASN)
	}
	return fmt.Sprintf("(%s-%d, %s)", v.Prefix, v.MaxLength, v.ASN)
}

// Covers reports whether the VRP's prefix covers route prefix π (the
// "covering ROA" test, which ignores ASN and maxLength).
func (v VRP) Covers(p ipres.Prefix) bool { return v.Prefix.Covers(p) }

// Compare orders VRPs canonically: by prefix, then ASN, then maxLength.
// This is the one ordering used everywhere a VRP set crosses a boundary —
// relying-party output, RTR deltas, diffing — so independently computed
// sets compare byte-for-byte.
func (v VRP) Compare(o VRP) int {
	if c := v.Prefix.Cmp(o.Prefix); c != 0 {
		return c
	}
	if v.ASN != o.ASN {
		if v.ASN < o.ASN {
			return -1
		}
		return 1
	}
	if v.MaxLength != o.MaxLength {
		if v.MaxLength < o.MaxLength {
			return -1
		}
		return 1
	}
	return 0
}

// SortVRPs sorts vrps in place into canonical order (see VRP.Compare).
func SortVRPs(vrps []VRP) {
	sort.Slice(vrps, func(i, j int) bool { return vrps[i].Compare(vrps[j]) < 0 })
}

// DiffVRPs computes the set difference between two canonically sorted,
// duplicate-free VRP sets in one merge pass: announced holds the VRPs in
// next but not prev, withdrawn those in prev but not next, both in
// canonical order. An unchanged set yields two nil slices without
// allocating, which is what makes a steady-state polling loop's
// RP→RTR hand-off a true no-op.
func DiffVRPs(prev, next []VRP) (announced, withdrawn []VRP) {
	i, j := 0, 0
	for i < len(prev) && j < len(next) {
		switch c := prev[i].Compare(next[j]); {
		case c == 0:
			i++
			j++
		case c < 0:
			withdrawn = append(withdrawn, prev[i])
			i++
		default:
			announced = append(announced, next[j])
			j++
		}
	}
	withdrawn = append(withdrawn, prev[i:]...)
	announced = append(announced, next[j:]...)
	return announced, withdrawn
}

// Matches reports whether the VRP authorizes the route (the "matching ROA"
// test: origin matches, prefix covered, length within maxLength).
func (v VRP) Matches(r Route) bool {
	return v.ASN == r.Origin && v.Prefix.Covers(r.Prefix) && r.Prefix.Bits() <= v.MaxLength
}

// FromROA extracts the VRPs of a ROA.
func FromROA(r *roa.ROA) []VRP {
	out := make([]VRP, len(r.Prefixes))
	for i, p := range r.Prefixes {
		out[i] = VRP{Prefix: p.Prefix, MaxLength: p.MaxLength, ASN: r.ASID}
	}
	return out
}

// Index classifies routes against a VRP set. It is immutable once built and
// safe for concurrent use.
type Index struct {
	// byPrefix maps each distinct VRP prefix to its VRPs.
	byPrefix map[ipres.Prefix][]VRP
	vrps     []VRP
}

// NewIndex builds a classification index over the given VRPs. Duplicates
// are tolerated.
//
//taint:sink the VRP index route-origin decisions are checked against
func NewIndex(vrps ...VRP) *Index {
	ix := &Index{byPrefix: make(map[ipres.Prefix][]VRP, len(vrps))}
	seen := make(map[VRP]bool, len(vrps))
	for _, v := range vrps {
		if !v.Prefix.IsValid() || seen[v] {
			continue
		}
		seen[v] = true
		ix.byPrefix[v.Prefix] = append(ix.byPrefix[v.Prefix], v)
		ix.vrps = append(ix.vrps, v)
	}
	sort.Slice(ix.vrps, func(i, j int) bool {
		if c := ix.vrps[i].Prefix.Cmp(ix.vrps[j].Prefix); c != 0 {
			return c < 0
		}
		if ix.vrps[i].ASN != ix.vrps[j].ASN {
			return ix.vrps[i].ASN < ix.vrps[j].ASN
		}
		return ix.vrps[i].MaxLength < ix.vrps[j].MaxLength
	})
	return ix
}

// VRPs returns the indexed VRPs in canonical order. The slice must not be
// modified.
func (ix *Index) VRPs() []VRP { return ix.vrps }

// Len returns the number of distinct VRPs.
func (ix *Index) Len() int { return len(ix.vrps) }

// Classify returns the validation state of a route, plus the covering VRPs
// that determined it (nil for Unknown).
func (ix *Index) Classify(r Route) (State, []VRP) {
	var covering []VRP
	matched := false
	// Every covering VRP's prefix is an ancestor of (or equal to) the
	// route's prefix, so walk the prefix chain upward.
	p := r.Prefix
	for {
		for _, v := range ix.byPrefix[p] {
			covering = append(covering, v)
			if v.Matches(r) {
				matched = true
			}
		}
		parent, ok := p.Parent()
		if !ok {
			break
		}
		p = parent
	}
	switch {
	case matched:
		return Valid, covering
	case len(covering) > 0:
		return Invalid, covering
	default:
		return Unknown, nil
	}
}

// State is shorthand for Classify without the evidence.
func (ix *Index) State(r Route) State {
	s, _ := ix.Classify(r)
	return s
}

// GridCell is one aggregated row of a validity grid: a run of consecutive
// same-length subprefixes sharing a validation state for a given origin.
type GridCell struct {
	// First and Last bound the run (inclusive); both have length Bits.
	First, Last ipres.Prefix
	Bits        int
	Origin      ipres.ASN
	State       State
}

// Count returns the number of subprefixes in the run. Runs are contiguous,
// so the count is (last.addr - first.addr)/blocksize + 1.
func (c GridCell) Count() int {
	diff := addrDelta(c.First.Addr(), c.Last.Addr())
	return int(diff/uint64(c.First.Range().Size())) + 1
}

func addrDelta(a, b ipres.Addr) uint64 {
	// Only used for IPv4 grids (the paper's figures are IPv4).
	ab, bb := a.Bytes(), b.Bytes()
	var av, bv uint64
	for _, x := range ab {
		av = av<<8 | uint64(x)
	}
	for _, x := range bb {
		bv = bv<<8 | uint64(x)
	}
	return bv - av
}

func (c GridCell) String() string {
	if c.First == c.Last {
		return fmt.Sprintf("%-22s %s → %s", c.First, c.Origin, c.State)
	}
	return fmt.Sprintf("%s … %s (/%d ×%d) %s → %s", c.First, c.Last, c.Bits, c.Count(), c.Origin, c.State)
}

// ValidityGrid computes, for each origin in origins and each prefix length
// from base.Bits() to maxLen, the validation state of every subprefix of
// base, aggregated into runs of equal state. This reproduces the paper's
// Figure 5 panels.
func (ix *Index) ValidityGrid(base ipres.Prefix, maxLen int, origins []ipres.ASN) []GridCell {
	var cells []GridCell
	for _, origin := range origins {
		for bits := base.Bits(); bits <= maxLen; bits++ {
			var run *GridCell
			for p := firstSub(base, bits); p.IsValid(); p = nextSub(base, p) {
				s := ix.State(Route{Prefix: p, Origin: origin})
				if run != nil && run.State == s {
					run.Last = p
					continue
				}
				if run != nil {
					cells = append(cells, *run)
				}
				run = &GridCell{First: p, Last: p, Bits: bits, Origin: origin, State: s}
			}
			if run != nil {
				cells = append(cells, *run)
			}
		}
	}
	return cells
}

// firstSub returns the first subprefix of base with the given length.
func firstSub(base ipres.Prefix, bits int) ipres.Prefix {
	if bits < base.Bits() || bits > base.Family().Width() {
		return ipres.Prefix{}
	}
	return ipres.MustPrefixFrom(base.Addr(), bits)
}

// nextSub returns the next same-length subprefix of base after p, or the
// zero Prefix when p is the last one.
func nextSub(base ipres.Prefix, p ipres.Prefix) ipres.Prefix {
	last := p.Range().Hi()
	if last.Cmp(base.Range().Hi()) >= 0 {
		return ipres.Prefix{}
	}
	next, ok := last.Next()
	if !ok {
		return ipres.Prefix{}
	}
	return ipres.MustPrefixFrom(next, p.Bits())
}

// FormatGrid renders grid cells, one per line.
func FormatGrid(cells []GridCell) string {
	var sb strings.Builder
	for _, c := range cells {
		sb.WriteString(c.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
