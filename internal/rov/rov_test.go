package rov

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ipres"
	"repro/internal/roa"
)

// figure2VRPs builds the VRPs of the paper's model RPKI (Figure 2):
// Continental Broadband's ROAs inside 63.174.16.0/20 plus Sprint's and
// ETB's ROAs.
func figure2VRPs() []VRP {
	return []VRP{
		{Prefix: ipres.MustParsePrefix("63.174.16.0/20"), MaxLength: 20, ASN: 17054},
		{Prefix: ipres.MustParsePrefix("63.174.16.0/22"), MaxLength: 22, ASN: 7341},
		{Prefix: ipres.MustParsePrefix("63.174.20.0/22"), MaxLength: 24, ASN: 26821},
		{Prefix: ipres.MustParsePrefix("63.174.25.0/24"), MaxLength: 24, ASN: 17054},
		{Prefix: ipres.MustParsePrefix("63.174.26.0/23"), MaxLength: 23, ASN: 17054},
		{Prefix: ipres.MustParsePrefix("63.161.0.0/16"), MaxLength: 16, ASN: 19429},
		{Prefix: ipres.MustParsePrefix("63.168.0.0/16"), MaxLength: 24, ASN: 1239},
		{Prefix: ipres.MustParsePrefix("63.170.0.0/16"), MaxLength: 24, ASN: 1239},
	}
}

func route(p string, asn ipres.ASN) Route {
	return Route{Prefix: ipres.MustParsePrefix(p), Origin: asn}
}

func TestClassifyPaperSemantics(t *testing.T) {
	ix := NewIndex(figure2VRPs()...)
	tests := []struct {
		route Route
		want  State
	}{
		// Figure 5 left, explicitly stated in the paper:
		// routes for 63.160.0.0/12 are unknown (no covering ROA)...
		{route("63.160.0.0/12", 1239), Unknown},
		{route("63.160.0.0/12", 17054), Unknown},
		// ...but routes for 63.174.17.0/24 are invalid because of the
		// covering ROA for 63.174.16.0/20 (maxLength 20 < 24).
		{route("63.174.17.0/24", 17054), Invalid},
		{route("63.174.17.0/24", 9999), Invalid},
		// The authorized route itself is valid.
		{route("63.174.16.0/20", 17054), Valid},
		// Same prefix, wrong origin: invalid (covered, not matched).
		{route("63.174.16.0/20", 7341), Invalid},
		// The /22 ROA for AS7341.
		{route("63.174.16.0/22", 7341), Valid},
		{route("63.174.16.0/22", 17054), Invalid},
		// maxLength allows subprefixes: (63.174.20.0/22-24, AS26821).
		{route("63.174.21.0/24", 26821), Valid},
		{route("63.174.20.0/23", 26821), Valid},
		{route("63.174.21.0/24", 17054), Invalid},
		// Sprint's maxlen-24 ROAs.
		{route("63.168.93.0/24", 1239), Valid},
		{route("63.168.0.0/16", 1239), Valid},
		{route("63.168.93.0/25", 1239), Invalid}, // beyond maxLength
		// Entirely outside any ROA: unknown.
		{route("8.8.8.0/24", 15169), Unknown},
		{route("63.163.0.0/16", 7018), Unknown},
	}
	for _, tc := range tests {
		if got := ix.State(tc.route); got != tc.want {
			t.Errorf("Classify%v = %v, want %v", tc.route, got, tc.want)
		}
	}
}

func TestSideEffect5NewROAInvalidatesUnknowns(t *testing.T) {
	base := figure2VRPs()
	before := NewIndex(base...)
	// Figure 5 right: Sprint issues (63.160.0.0/12-13, AS1239).
	after := NewIndex(append(base, VRP{
		Prefix: ipres.MustParsePrefix("63.160.0.0/12"), MaxLength: 13, ASN: 1239,
	})...)

	// Previously unknown routes become invalid...
	for _, r := range []Route{
		route("63.160.0.0/12", 17054),
		route("63.163.0.0/16", 7018),
		route("63.164.0.0/14", 1239), // /14 beyond maxLength 13, even for AS1239
	} {
		if got := before.State(r); got != Unknown {
			t.Fatalf("precondition: %v should be unknown, got %v", r, got)
		}
		if got := after.State(r); got != Invalid {
			t.Errorf("%v should become invalid, got %v", r, got)
		}
	}
	// ...while AS1239's own /12 and /13 routes become valid.
	for _, r := range []Route{
		route("63.160.0.0/12", 1239),
		route("63.160.0.0/13", 1239),
		route("63.168.0.0/13", 1239),
	} {
		if got := after.State(r); got != Valid {
			t.Errorf("%v should become valid, got %v", r, got)
		}
	}
	// Existing valid routes are untouched.
	if got := after.State(route("63.174.16.0/20", 17054)); got != Valid {
		t.Errorf("existing valid route damaged: %v", got)
	}
}

func TestSideEffect6MissingROATurnsInvalid(t *testing.T) {
	all := figure2VRPs()
	withoutTarget := make([]VRP, 0, len(all))
	for _, v := range all {
		if v.ASN == 7341 {
			continue // the ROA (63.174.16.0/22, AS 7341) goes missing
		}
		withoutTarget = append(withoutTarget, v)
	}
	before := NewIndex(all...)
	after := NewIndex(withoutTarget...)
	r := route("63.174.16.0/22", 7341)
	if before.State(r) != Valid {
		t.Fatal("precondition failed")
	}
	// Invalid — NOT unknown — because the /20 ROA still covers it.
	if got := after.State(r); got != Invalid {
		t.Errorf("missing ROA should leave route invalid, got %v", got)
	}
}

func TestClassifyReturnsCoveringEvidence(t *testing.T) {
	ix := NewIndex(figure2VRPs()...)
	s, evidence := ix.Classify(route("63.174.17.0/24", 17054))
	if s != Invalid || len(evidence) == 0 {
		t.Fatalf("got %v with %d evidence", s, len(evidence))
	}
	found := false
	for _, v := range evidence {
		if v.Prefix.String() == "63.174.16.0/20" {
			found = true
		}
	}
	if !found {
		t.Error("evidence should include the covering /20 ROA")
	}
	s, evidence = ix.Classify(route("8.0.0.0/8", 3356))
	if s != Unknown || evidence != nil {
		t.Error("unknown should carry no evidence")
	}
}

func TestValidityGridFigure5Left(t *testing.T) {
	ix := NewIndex(figure2VRPs()...)
	base := ipres.MustParsePrefix("63.160.0.0/12")
	cells := ValidityGridCells(t, ix, base)

	// The /12 row must be a single unknown run for every origin.
	for _, c := range cells {
		if c.Bits == 12 {
			if c.State != Unknown {
				t.Errorf("/12 should be unknown for %v, got %v", c.Origin, c.State)
			}
			if c.Count() != 1 {
				t.Errorf("/12 run count = %d", c.Count())
			}
		}
	}
	// At /24 for AS17054 there must be invalid runs (covered unmatched)
	// and at least one valid run (63.174.25.0/24 has maxLength 24... no:
	// VRP (63.174.25.0/24,24,17054) matches the /24 route exactly).
	var sawValid24, sawInvalid24, sawUnknown24 bool
	for _, c := range cells {
		if c.Bits == 24 && c.Origin == 17054 {
			switch c.State {
			case Valid:
				sawValid24 = true
			case Invalid:
				sawInvalid24 = true
			case Unknown:
				sawUnknown24 = true
			}
		}
	}
	if !sawValid24 || !sawInvalid24 || !sawUnknown24 {
		t.Errorf("AS17054 /24 row should mix states: valid=%v invalid=%v unknown=%v",
			sawValid24, sawInvalid24, sawUnknown24)
	}
}

// ValidityGridCells bounds the grid to /24 as in the paper ("the smallest
// IPv4 prefix length which is globally routable in BGP is a /24").
func ValidityGridCells(t *testing.T, ix *Index, base ipres.Prefix) []GridCell {
	t.Helper()
	return ix.ValidityGrid(base, 24, []ipres.ASN{1239, 17054, 7341, 26821})
}

func TestValidityGridRunsCoverWholeRow(t *testing.T) {
	ix := NewIndex(figure2VRPs()...)
	base := ipres.MustParsePrefix("63.160.0.0/12")
	cells := ix.ValidityGrid(base, 16, []ipres.ASN{17054})
	// For each length, the run counts must sum to 2^(bits-12).
	sums := map[int]int{}
	for _, c := range cells {
		sums[c.Bits] += c.Count()
	}
	for bits := 12; bits <= 16; bits++ {
		want := 1 << (bits - 12)
		if sums[bits] != want {
			t.Errorf("length %d: runs cover %d prefixes, want %d", bits, sums[bits], want)
		}
	}
}

func TestClassifyConsistencyRandom(t *testing.T) {
	// Invariant: Valid ⇒ covered; Unknown ⇒ no covering VRP; and adding a
	// VRP never turns Invalid into Unknown.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		var vrps []VRP
		for i := 0; i < 1+rng.Intn(8); i++ {
			bits := 8 + rng.Intn(17)
			p := ipres.MustPrefixFrom(ipres.AddrFromUint32(rng.Uint32()), bits)
			vrps = append(vrps, VRP{Prefix: p, MaxLength: bits + rng.Intn(25-bits+8)%8, ASN: ipres.ASN(rng.Intn(5))})
		}
		// Sanitize maxLength.
		for i := range vrps {
			if vrps[i].MaxLength < vrps[i].Prefix.Bits() {
				vrps[i].MaxLength = vrps[i].Prefix.Bits()
			}
			if vrps[i].MaxLength > 32 {
				vrps[i].MaxLength = 32
			}
		}
		ix := NewIndex(vrps...)
		for j := 0; j < 50; j++ {
			bits := rng.Intn(25)
			r := Route{
				Prefix: ipres.MustPrefixFrom(ipres.AddrFromUint32(rng.Uint32()), bits),
				Origin: ipres.ASN(rng.Intn(5)),
			}
			state, evidence := ix.Classify(r)
			covered := false
			matched := false
			for _, v := range vrps {
				if v.Covers(r.Prefix) {
					covered = true
				}
				if v.Matches(r) {
					matched = true
				}
			}
			switch state {
			case Valid:
				if !matched {
					t.Fatalf("valid without match: %v", r)
				}
			case Invalid:
				if !covered || matched {
					t.Fatalf("invalid but covered=%v matched=%v: %v", covered, matched, r)
				}
			case Unknown:
				if covered {
					t.Fatalf("unknown but covered: %v", r)
				}
			}
			if state != Unknown && len(evidence) == 0 {
				t.Fatalf("non-unknown state without evidence: %v", r)
			}
		}
	}
}

func TestFromROA(t *testing.T) {
	r := roa.MustNew(1239, roa.MustParsePrefix("63.160.0.0/12-13"), roa.MustParsePrefix("208.0.0.0/11"))
	vrps := FromROA(r)
	if len(vrps) != 2 {
		t.Fatalf("got %d VRPs", len(vrps))
	}
	if vrps[0].ASN != 1239 || vrps[0].MaxLength != 13 {
		t.Errorf("vrp[0] = %v", vrps[0])
	}
}

func TestIndexDeduplicates(t *testing.T) {
	v := VRP{Prefix: ipres.MustParsePrefix("10.0.0.0/8"), MaxLength: 8, ASN: 1}
	ix := NewIndex(v, v, v)
	if ix.Len() != 1 {
		t.Errorf("len = %d", ix.Len())
	}
}

func TestStateString(t *testing.T) {
	if Valid.String() != "valid" || Invalid.String() != "invalid" || Unknown.String() != "unknown" {
		t.Error("state strings wrong")
	}
}

func TestGridCellStringAndCount(t *testing.T) {
	ix := NewIndex(figure2VRPs()...)
	cells := ix.ValidityGrid(ipres.MustParsePrefix("63.174.16.0/22"), 24, []ipres.ASN{7341})
	if len(cells) == 0 {
		t.Fatal("empty grid")
	}
	total := 0
	for _, c := range cells {
		if c.String() == "" {
			t.Error("empty cell string")
		}
		total += c.Count()
	}
	// /22 + 2×/23 + 4×/24 = 7 prefixes across the three rows.
	if total != 7 {
		t.Errorf("total prefixes = %d, want 7", total)
	}
	out := FormatGrid(cells)
	if !strings.Contains(out, "valid") {
		t.Errorf("grid output:\n%s", out)
	}
}

func TestClassifyIPv6(t *testing.T) {
	ix := NewIndex(VRP{Prefix: ipres.MustParsePrefix("2001:db8::/32"), MaxLength: 48, ASN: 64500})
	tests := []struct {
		route Route
		want  State
	}{
		{route6("2001:db8::/32", 64500), Valid},
		{route6("2001:db8:1::/48", 64500), Valid},
		{route6("2001:db8:1::/49", 64500), Invalid}, // beyond maxLength
		{route6("2001:db8::/32", 64501), Invalid},
		{route6("2001:dead::/32", 64500), Unknown},
	}
	for _, tc := range tests {
		if got := ix.State(tc.route); got != tc.want {
			t.Errorf("%v = %v, want %v", tc.route, got, tc.want)
		}
	}
}

func route6(p string, asn ipres.ASN) Route {
	return Route{Prefix: ipres.MustParsePrefix(p), Origin: asn}
}

func TestVRPStringForms(t *testing.T) {
	v := VRP{Prefix: ipres.MustParsePrefix("63.160.0.0/12"), MaxLength: 12, ASN: 1239}
	if v.String() != "(63.160.0.0/12, AS1239)" {
		t.Errorf("got %q", v.String())
	}
	v.MaxLength = 13
	if v.String() != "(63.160.0.0/12-13, AS1239)" {
		t.Errorf("got %q", v.String())
	}
	r := Route{Prefix: ipres.MustParsePrefix("10.0.0.0/8"), Origin: 7}
	if r.String() != "(10.0.0.0/8, AS7)" {
		t.Errorf("got %q", r.String())
	}
}

func TestValidityGridDegenerateInputs(t *testing.T) {
	ix := NewIndex()
	// maxLen below base bits: only the base row... actually no rows.
	cells := ix.ValidityGrid(ipres.MustParsePrefix("10.0.0.0/24"), 23, []ipres.ASN{1})
	if len(cells) != 0 {
		t.Errorf("inverted grid should be empty, got %v", cells)
	}
	// Single-cell grid.
	cells = ix.ValidityGrid(ipres.MustParsePrefix("10.0.0.0/24"), 24, []ipres.ASN{1})
	if len(cells) != 1 || cells[0].State != Unknown || cells[0].Count() != 1 {
		t.Errorf("got %v", cells)
	}
}

func TestSortAndDiffVRPs(t *testing.T) {
	base := figure2VRPs()
	shuffled := append([]VRP(nil), base...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	SortVRPs(shuffled)
	for i := 1; i < len(shuffled); i++ {
		if shuffled[i-1].Compare(shuffled[i]) >= 0 {
			t.Fatalf("not in canonical order at %d: %v >= %v", i, shuffled[i-1], shuffled[i])
		}
	}

	// Identical sets diff to nothing — and allocate nothing.
	ann, wd := DiffVRPs(shuffled, shuffled)
	if ann != nil || wd != nil {
		t.Errorf("identical sets produced diff: +%v -%v", ann, wd)
	}

	// One VRP replaced by another: exactly one announce and one withdraw.
	next := append([]VRP(nil), shuffled...)
	old := next[3]
	replacement := VRP{Prefix: ipres.MustParsePrefix("10.0.0.0/8"), MaxLength: 8, ASN: 65000}
	next[3] = replacement
	SortVRPs(next)
	ann, wd = DiffVRPs(shuffled, next)
	if len(ann) != 1 || ann[0] != replacement {
		t.Errorf("announced = %v, want [%v]", ann, replacement)
	}
	if len(wd) != 1 || wd[0] != old {
		t.Errorf("withdrawn = %v, want [%v]", wd, old)
	}

	// Empty ↔ full.
	ann, wd = DiffVRPs(nil, shuffled)
	if len(ann) != len(shuffled) || len(wd) != 0 {
		t.Errorf("from empty: +%d -%d", len(ann), len(wd))
	}
	ann, wd = DiffVRPs(shuffled, nil)
	if len(ann) != 0 || len(wd) != len(shuffled) {
		t.Errorf("to empty: +%d -%d", len(ann), len(wd))
	}
}

func TestDiffVRPsRandomizedAgainstMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(2013))
	randVRP := func() VRP {
		p, err := ipres.PrefixFrom(ipres.AddrFromUint32(rng.Uint32()&0xFFFF0000), 16)
		if err != nil {
			t.Fatal(err)
		}
		return VRP{Prefix: p, MaxLength: 16 + rng.Intn(9), ASN: ipres.ASN(rng.Intn(8))}
	}
	for trial := 0; trial < 50; trial++ {
		mk := func(n int) []VRP {
			seen := make(map[VRP]bool)
			for len(seen) < n {
				seen[randVRP()] = true
			}
			out := make([]VRP, 0, n)
			for v := range seen {
				out = append(out, v)
			}
			SortVRPs(out)
			return out
		}
		prev, next := mk(rng.Intn(40)), mk(rng.Intn(40))
		ann, wd := DiffVRPs(prev, next)
		prevSet := make(map[VRP]bool)
		for _, v := range prev {
			prevSet[v] = true
		}
		nextSet := make(map[VRP]bool)
		for _, v := range next {
			nextSet[v] = true
		}
		for _, v := range ann {
			if prevSet[v] || !nextSet[v] {
				t.Fatalf("trial %d: bad announce %v", trial, v)
			}
		}
		for _, v := range wd {
			if !prevSet[v] || nextSet[v] {
				t.Fatalf("trial %d: bad withdraw %v", trial, v)
			}
		}
		wantAnn := 0
		for _, v := range next {
			if !prevSet[v] {
				wantAnn++
			}
		}
		wantWd := 0
		for _, v := range prev {
			if !nextSet[v] {
				wantWd++
			}
		}
		if len(ann) != wantAnn || len(wd) != wantWd {
			t.Fatalf("trial %d: diff sizes +%d -%d, want +%d -%d", trial, len(ann), len(wd), wantAnn, wantWd)
		}
	}
}
