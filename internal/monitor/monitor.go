// Package monitor implements the countermeasure direction the paper
// proposes: watching RPKI repositories for manipulations. It diffs
// publication-point snapshots over time and classifies changes as benign
// churn or suspected abuse:
//
//   - a certificate revoked on the CRL → transparent revocation (visible
//     by design, Side Effect 1);
//   - an object deleted with no CRL entry → suspected stealthy revocation
//     (Side Effect 2);
//   - a certificate overwritten with fewer resources → RC shrink, the
//     fingerprint of targeted whacking (Side Effect 3);
//   - a ROA appearing in one repository shortly after equivalent VRPs were
//     lost from another → suspected make-before-break reissue (Figure 3);
//   - a CA certificate for a key already certified elsewhere → suspected
//     replacement RC (deep whack, Side Effect 4).
//
// The monitor sees exactly what a third party can see: published objects.
// It cannot distinguish a malicious shrink from a legitimate reclamation —
// the paper's point is that the *protocol* cannot either.
package monitor

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/cert"
	"repro/internal/ipres"
	"repro/internal/roa"
	"repro/internal/rov"
)

// EventKind classifies an observed repository change.
type EventKind uint8

const (
	// EventAdded: a new object appeared.
	EventAdded EventKind = iota
	// EventRemoved: an object disappeared.
	EventRemoved
	// EventModified: an object was overwritten in place.
	EventModified
	// EventRevocation: a removed certificate's serial appeared on the CRL
	// (transparent whack).
	EventRevocation
	// EventStealthyDelete: a certificate or ROA vanished with no CRL
	// entry.
	EventStealthyDelete
	// EventRCShrink: a certificate was overwritten with strictly fewer
	// resources.
	EventRCShrink
	// EventSuspiciousReissue: a new ROA's VRPs match VRPs recently lost
	// from a different repository.
	EventSuspiciousReissue
	// EventReplacementRC: a new CA certificate certifies a subject key
	// already certified in another repository.
	EventReplacementRC
)

func (k EventKind) String() string {
	switch k {
	case EventAdded:
		return "added"
	case EventRemoved:
		return "removed"
	case EventModified:
		return "modified"
	case EventRevocation:
		return "revocation"
	case EventStealthyDelete:
		return "stealthy-delete"
	case EventRCShrink:
		return "rc-shrink"
	case EventSuspiciousReissue:
		return "suspicious-reissue"
	case EventReplacementRC:
		return "replacement-rc"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Severity grades events for alerting.
type Severity uint8

const (
	// Info: routine churn.
	Info Severity = iota
	// Notice: visible-by-design authority action (revocation).
	Notice
	// Warning: consistent with abuse but also with misconfiguration.
	Warning
	// Alert: the fingerprint of a targeted manipulation.
	Alert
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Notice:
		return "notice"
	case Warning:
		return "warning"
	case Alert:
		return "alert"
	}
	return fmt.Sprintf("Severity(%d)", uint8(s))
}

// Event is one classified observation.
type Event struct {
	Kind     EventKind
	Severity Severity
	Module   string
	Object   string
	Detail   string
}

func (e Event) String() string {
	return fmt.Sprintf("[%s/%s] %s/%s: %s", e.Severity, e.Kind, e.Module, e.Object, e.Detail)
}

// objectInfo is the monitor's parsed view of one published object.
type objectInfo struct {
	hash      [32]byte
	kind      string // "cer", "roa", "crl", "mft", "?"
	resources ipres.Set
	serial    string
	ski       string
	isCA      bool
	vrps      []rov.VRP
}

func parseObject(name string, content []byte) objectInfo {
	info := objectInfo{hash: sha256.Sum256(content), kind: "?"}
	switch {
	case strings.HasSuffix(name, ".cer"):
		info.kind = "cer"
		if rc, err := cert.Parse(content); err == nil {
			info.resources = rc.IPSet()
			info.serial = rc.SerialNumber().String()
			info.ski = hex.EncodeToString(rc.Cert.SubjectKeyId)
			info.isCA = rc.IsCA()
		}
	case strings.HasSuffix(name, ".roa"):
		info.kind = "roa"
		if signed, err := roa.ParseSigned(content); err == nil {
			info.vrps = rov.FromROA(signed.ROA)
			info.serial = signed.EE.SerialNumber().String()
		}
	case strings.HasSuffix(name, ".crl"):
		info.kind = "crl"
	case strings.HasSuffix(name, ".mft"):
		info.kind = "mft"
	}
	return info
}

// moduleState is the remembered view of one repository.
type moduleState struct {
	objects map[string]objectInfo
	revoked map[string]bool // serials on the module's CRL
}

// Watcher correlates snapshots across repositories over time.
//
// Observe itself must be called from one goroutine at a time (it mutates
// cross-repository correlation state), but the per-object parsing it does —
// the hot path when polling production-sized repositories — fans out across
// Workers goroutines.
type Watcher struct {
	// Workers bounds the parse fan-out inside Observe. 0 means
	// runtime.GOMAXPROCS(0); 1 disables parallelism. Classification is
	// sequential and deterministic at any setting.
	Workers int

	modules map[string]*moduleState
	// lostVRPs remembers VRPs that disappeared recently (by epoch), for
	// cross-repository reissue correlation.
	lostVRPs map[rov.VRP]string // VRP → module it was lost from
	// knownSKIs maps CA subject-key IDs to the module certifying them.
	knownSKIs map[string]string
	// shrunkSpace accumulates address space recently removed by RC
	// shrinks, keyed by the module where the shrink was observed. A new
	// ROA overlapping this space is the make-before-break fingerprint
	// (the whacked ROA itself typically stays published — invalid).
	shrunkSpace map[string]ipres.Set
}

// NewWatcher creates an empty watcher.
func NewWatcher() *Watcher {
	return &Watcher{
		modules:     make(map[string]*moduleState),
		lostVRPs:    make(map[rov.VRP]string),
		knownSKIs:   make(map[string]string),
		shrunkSpace: make(map[string]ipres.Set),
	}
}

// Observe ingests a snapshot of a module and returns classified events
// relative to the previous snapshot. The first observation of a module
// baselines it silently (only replacement-RC correlation fires).
func (w *Watcher) Observe(module string, snapshot map[string][]byte) []Event {
	parsed := w.parseSnapshot(snapshot)
	revoked := extractRevocations(snapshot)

	prev, seen := w.modules[module]
	state := &moduleState{objects: parsed, revoked: revoked}
	w.modules[module] = state

	var events []Event
	emit := func(kind EventKind, sev Severity, object, detail string) {
		events = append(events, Event{Kind: kind, Severity: sev, Module: module, Object: object, Detail: detail})
	}

	names := make([]string, 0, len(parsed))
	for name := range parsed {
		names = append(names, name)
	}
	sort.Strings(names)

	// Pass 1: existing-object changes (replacement-RC correlation fires
	// even on baseline; shrink detection records the removed space so
	// pass 2 can correlate reissued ROAs regardless of iteration order).
	for _, name := range names {
		cur := parsed[name]
		if cur.kind == "cer" && cur.isCA && cur.ski != "" {
			if otherModule, known := w.knownSKIs[cur.ski]; known && otherModule != module {
				emit(EventReplacementRC, Alert, name,
					fmt.Sprintf("CA key %s… already certified in %s — possible deep-whack replacement RC", cur.ski[:12], otherModule))
			} else if !known {
				w.knownSKIs[cur.ski] = module
			}
		}
		if !seen {
			continue
		}
		old, had := prev.objects[name]
		if !had {
			continue // handled in pass 2
		}
		if bytes.Equal(old.hash[:], cur.hash[:]) {
			continue
		}
		if cur.kind == "cer" && !old.resources.IsEmpty() && !cur.resources.IsEmpty() &&
			old.resources.Covers(cur.resources) && !cur.resources.Covers(old.resources) {
			removed := old.resources.Subtract(cur.resources)
			w.shrunkSpace[module] = w.shrunkSpace[module].Union(removed)
			emit(EventRCShrink, Alert, name,
				fmt.Sprintf("certificate overwritten with shrunken resources; removed %v", removed))
			continue
		}
		emit(EventModified, Info, name, "object overwritten (routine under persistent names)")
	}

	// Pass 2: additions.
	for _, name := range names {
		if !seen {
			break
		}
		cur := parsed[name]
		if _, had := prev.objects[name]; had {
			continue
		}
		if cur.kind == "roa" {
			if from := w.matchLostVRPs(cur.vrps); from != "" && from != module {
				emit(EventSuspiciousReissue, Alert, name,
					fmt.Sprintf("ROA matches VRPs recently lost from %s — possible make-before-break", from))
				continue
			}
			if mod, overlaps := w.matchShrunkSpace(cur.vrps); overlaps {
				emit(EventSuspiciousReissue, Alert, name,
					fmt.Sprintf("ROA covers space recently removed by an RC shrink in %s — possible make-before-break", mod))
				continue
			}
		}
		emit(EventAdded, Info, name, "new object published")
	}

	if seen {
		oldNames := make([]string, 0, len(prev.objects))
		for name := range prev.objects {
			oldNames = append(oldNames, name)
		}
		sort.Strings(oldNames)
		for _, name := range oldNames {
			old := prev.objects[name]
			if _, still := parsed[name]; still {
				continue
			}
			// Remember lost VRPs for cross-repo correlation.
			for _, v := range old.vrps {
				w.lostVRPs[v] = module
			}
			switch {
			case old.serial != "" && revoked[old.serial]:
				emit(EventRevocation, Notice, name,
					fmt.Sprintf("withdrawn and serial %s revoked on CRL — transparent revocation", old.serial))
			case old.kind == "cer" || old.kind == "roa":
				emit(EventStealthyDelete, Warning, name,
					"object vanished with no CRL entry — suspected stealthy revocation")
			default:
				emit(EventRemoved, Info, name, "object withdrawn")
			}
		}
	}
	return events
}

// parseSnapshot parses every object of a snapshot, fanning the work out
// across the watcher's worker pool. Each object parses independently, so
// the resulting map is identical at any worker count.
func (w *Watcher) parseSnapshot(snapshot map[string][]byte) map[string]objectInfo {
	workers := w.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	names := make([]string, 0, len(snapshot))
	for name := range snapshot {
		names = append(names, name)
	}
	sort.Strings(names)
	infos := make([]objectInfo, len(names))
	if workers <= 1 || len(names) < 2 {
		for i, name := range names {
			infos[i] = parseObject(name, snapshot[name])
		}
	} else {
		if workers > len(names) {
			workers = len(names)
		}
		chunk := (len(names) + workers - 1) / workers
		var wg sync.WaitGroup
		for start := 0; start < len(names); start += chunk {
			end := start + chunk
			if end > len(names) {
				end = len(names)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					infos[i] = parseObject(names[i], snapshot[names[i]])
				}
			}(start, end)
		}
		wg.Wait()
	}
	parsed := make(map[string]objectInfo, len(names))
	for i, name := range names {
		parsed[name] = infos[i]
	}
	return parsed
}

// matchShrunkSpace reports whether any VRP overlaps recently shrunk space,
// and in which module the shrink was seen.
func (w *Watcher) matchShrunkSpace(vrps []rov.VRP) (string, bool) {
	for module, space := range w.shrunkSpace {
		for _, v := range vrps {
			if space.Overlaps(ipres.SetOfPrefixes(v.Prefix)) {
				return module, true
			}
		}
	}
	return "", false
}

// matchLostVRPs reports the module that recently lost any of the given
// VRPs ("" if none).
func (w *Watcher) matchLostVRPs(vrps []rov.VRP) string {
	for _, v := range vrps {
		if from, ok := w.lostVRPs[v]; ok {
			return from
		}
	}
	return ""
}

// extractRevocations parses every CRL in the snapshot into a serial set.
func extractRevocations(snapshot map[string][]byte) map[string]bool {
	out := make(map[string]bool)
	for name, content := range snapshot {
		if !strings.HasSuffix(name, ".crl") {
			continue
		}
		crl, err := cert.ParseCRL(content)
		if err != nil {
			continue
		}
		for _, e := range crl.List.RevokedCertificateEntries {
			out[e.SerialNumber.String()] = true
		}
	}
	return out
}

// MaxSeverity returns the highest severity among events (Info for none).
func MaxSeverity(events []Event) Severity {
	max := Info
	for _, e := range events {
		if e.Severity > max {
			max = e.Severity
		}
	}
	return max
}

// Filter returns the events at or above the given severity.
func Filter(events []Event, min Severity) []Event {
	var out []Event
	for _, e := range events {
		if e.Severity >= min {
			out = append(out, e)
		}
	}
	return out
}
