package monitor

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ipres"
	"repro/internal/modelgen"
	"repro/internal/repo"
	"repro/internal/roa"
)

var testEpoch = time.Date(2013, 11, 21, 0, 0, 0, 0, time.UTC)

func clock() time.Time { return testEpoch }

func world(t *testing.T) *modelgen.World {
	t.Helper()
	w, err := modelgen.Figure2(clock, false)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func hasKind(events []Event, kind EventKind) bool {
	for _, e := range events {
		if e.Kind == kind {
			return true
		}
	}
	return false
}

func TestBaselineIsSilent(t *testing.T) {
	w := world(t)
	watcher := NewWatcher()
	for module, store := range w.Stores {
		events := watcher.Observe(module, store.Snapshot())
		if len(events) != 0 {
			t.Errorf("baseline of %s should be silent, got %v", module, events)
		}
	}
}

func TestBenignChurnIsInfo(t *testing.T) {
	w := world(t)
	watcher := NewWatcher()
	watcher.Observe("sprint", w.Stores["sprint"].Snapshot())
	// Routine activity: a new ROA appears (no shrink anywhere).
	if _, err := w.MustAuthority("sprint").IssueROA("new-roa", 1239, roa.MustParsePrefix("63.172.0.0/16")); err != nil {
		t.Fatal(err)
	}
	events := watcher.Observe("sprint", w.Stores["sprint"].Snapshot())
	if MaxSeverity(events) > Info {
		t.Errorf("benign churn should stay at info: %v", events)
	}
	if !hasKind(events, EventAdded) {
		t.Errorf("want added event, got %v", events)
	}
}

func TestTransparentRevocationIsNotice(t *testing.T) {
	w := world(t)
	watcher := NewWatcher()
	watcher.Observe("sprint", w.Stores["sprint"].Snapshot())
	if err := w.MustAuthority("sprint").RevokeChild("continental"); err != nil {
		t.Fatal(err)
	}
	events := watcher.Observe("sprint", w.Stores["sprint"].Snapshot())
	if !hasKind(events, EventRevocation) {
		t.Fatalf("want revocation event, got %v", events)
	}
	if MaxSeverity(events) != Notice {
		t.Errorf("revocation is visible-by-design: severity %v", MaxSeverity(events))
	}
}

func TestStealthyDeleteIsWarning(t *testing.T) {
	w := world(t)
	watcher := NewWatcher()
	watcher.Observe("sprint", w.Stores["sprint"].Snapshot())
	if err := w.MustAuthority("sprint").DeleteChildCert("continental"); err != nil {
		t.Fatal(err)
	}
	events := watcher.Observe("sprint", w.Stores["sprint"].Snapshot())
	if !hasKind(events, EventStealthyDelete) {
		t.Fatalf("want stealthy-delete event, got %v", events)
	}
}

func TestRCShrinkIsAlert(t *testing.T) {
	w := world(t)
	watcher := NewWatcher()
	watcher.Observe("sprint", w.Stores["sprint"].Snapshot())
	planner := &core.Planner{Manipulator: w.MustAuthority("sprint")}
	plan, err := planner.Plan(core.Target{Holder: w.MustAuthority("continental"), Name: "cont-20"})
	if err != nil {
		t.Fatal(err)
	}
	if err := planner.Execute(plan); err != nil {
		t.Fatal(err)
	}
	events := watcher.Observe("sprint", w.Stores["sprint"].Snapshot())
	if !hasKind(events, EventRCShrink) {
		t.Fatalf("want rc-shrink alert, got %v", events)
	}
	if MaxSeverity(events) != Alert {
		t.Errorf("shrink should be an alert")
	}
	// The clean shrink produces exactly one alert and no reissue noise.
	alerts := Filter(events, Alert)
	if len(alerts) != 1 {
		t.Errorf("clean shrink should produce one alert, got %v", alerts)
	}
}

func TestMakeBeforeBreakReissueDetected(t *testing.T) {
	w := world(t)
	watcher := NewWatcher()
	watcher.Observe("sprint", w.Stores["sprint"].Snapshot())
	watcher.Observe("continental", w.Stores["continental"].Snapshot())

	planner := &core.Planner{Manipulator: w.MustAuthority("sprint")}
	plan, err := planner.Plan(core.Target{Holder: w.MustAuthority("continental"), Name: "cont-22"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != core.MethodMakeBeforeBreak {
		t.Fatalf("method = %v", plan.Method)
	}
	if err := planner.Execute(plan); err != nil {
		t.Fatal(err)
	}
	events := watcher.Observe("sprint", w.Stores["sprint"].Snapshot())
	if !hasKind(events, EventRCShrink) {
		t.Errorf("want rc-shrink, got %v", events)
	}
	if !hasKind(events, EventSuspiciousReissue) {
		t.Errorf("want suspicious-reissue (the paper: 'easier to detect, due to the suspiciously-reissued ROA'), got %v", events)
	}
}

func TestDeepWhackReplacementRCDetected(t *testing.T) {
	w := world(t)
	smallStore := repo.NewStore()
	w.Stores["smallco"] = smallStore
	small, err := w.MustAuthority("continental").CreateChild("smallco",
		ipres.MustParseSet("63.174.18.0/23"), smallStore,
		repo.URI{Host: "smallco.example:8873", Module: "smallco"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := small.IssueROA("small-a", 64501, roa.MustParsePrefix("63.174.18.0/24")); err != nil {
		t.Fatal(err)
	}

	watcher := NewWatcher()
	for module, store := range w.Stores {
		watcher.Observe(module, store.Snapshot())
	}
	planner := &core.Planner{Manipulator: w.MustAuthority("sprint")}
	plan, err := planner.Plan(core.Target{Holder: small, Name: "small-a"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != core.MethodDeepWhack {
		t.Fatalf("method = %v", plan.Method)
	}
	if err := planner.Execute(plan); err != nil {
		t.Fatal(err)
	}
	events := watcher.Observe("sprint", w.Stores["sprint"].Snapshot())
	if !hasKind(events, EventReplacementRC) {
		t.Errorf("want replacement-rc alert (deep whacks are 'easier to detect'), got %v", events)
	}
}

func TestFilterAndMaxSeverity(t *testing.T) {
	events := []Event{
		{Kind: EventAdded, Severity: Info},
		{Kind: EventRevocation, Severity: Notice},
		{Kind: EventRCShrink, Severity: Alert},
	}
	if MaxSeverity(events) != Alert {
		t.Error("max severity wrong")
	}
	if len(Filter(events, Notice)) != 2 {
		t.Error("filter wrong")
	}
	if MaxSeverity(nil) != Info {
		t.Error("empty max severity wrong")
	}
}

// TestParallelObserveParity runs the same observation sequence through a
// sequential watcher and a parallel-parsing watcher and requires identical
// event streams — including on a mutated world where deletions, shrinks and
// reissues are in play.
func TestParallelObserveParity(t *testing.T) {
	observe := func(workers int) [][]Event {
		w := world(t)
		watcher := NewWatcher()
		watcher.Workers = workers
		var rounds [][]Event
		modules := []string{"arin", "sprint", "etb", "continental"}
		snap := func() {
			for _, m := range modules {
				rounds = append(rounds, watcher.Observe(m, w.Stores[m].Snapshot()))
			}
		}
		snap() // baseline
		// Mutations: stealthy delete + transparent revocation.
		if err := w.MustAuthority("continental").DeleteROA("cont-22"); err != nil {
			t.Fatal(err)
		}
		if err := w.MustAuthority("sprint").RevokeROA("sprint-170"); err != nil {
			t.Fatal(err)
		}
		snap()
		return rounds
	}
	seq := observe(1)
	par := observe(8)
	if len(seq) != len(par) {
		t.Fatalf("round counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if fmt.Sprint(seq[i]) != fmt.Sprint(par[i]) {
			t.Errorf("round %d differs:\nseq: %v\npar: %v", i, seq[i], par[i])
		}
	}
}
