package attack

// The RTR distribution plane under a Stalloris-style slow consumer: the
// paper's availability argument (§4) extends past the relying party — a
// router that accepts the snapshot and then drains it one byte per second
// would, without bounded queues and eviction, pin server memory and
// backpressure the fan-out exactly like a slow-loris publication point
// stalls the fetch plane. The scenario runs the full pipeline (world → RP
// sync → RTR cache) and asserts the defense: the stalled client is evicted,
// heap growth stays bounded, and healthy routers keep tracking churn
// undisturbed.

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"time"

	"repro/internal/ipres"
	"repro/internal/obs"
	"repro/internal/rov"
	"repro/internal/rp"
	"repro/internal/rtr"
)

func rtrScenarios() []Scenario {
	return []Scenario{
		{
			Name:  "rtr/slow-consumer",
			Paper: "arXiv:2205.06064 (Stalloris), applied to the RTR plane; §4",
			Layer: "rtr send queue, write deadline, slow-consumer eviction",
			Doc: "a router requests the snapshot then reads 1 B/s through a churn storm; " +
				"the server must evict it, keep heap growth bounded, and leave healthy routers' delta propagation intact",
			Budget: 60 * time.Second,
			Run:    runRTRSlowConsumer,
		},
	}
}

// rtrChurnSet builds a synthetic VRP set large enough that one snapshot
// overflows the server's bounded kernel write buffer (round varies the set
// so every SetVRPs is a real delta).
func rtrChurnSet(base []rov.VRP, round int) []rov.VRP {
	out := make([]rov.VRP, 0, len(base)+2048+1)
	out = append(out, base...)
	for i := 0; i < 2048; i++ {
		p := ipres.MustParsePrefix(fmt.Sprintf("10.%d.%d.0/24", i/256, i%256))
		out = append(out, rov.VRP{Prefix: p, MaxLength: 24, ASN: ipres.ASN(64500 + i)})
	}
	out = append(out, rov.VRP{
		Prefix: ipres.MustParsePrefix("192.168.0.0/24"), MaxLength: 24, ASN: ipres.ASN(65000 + round)})
	return out
}

func runRTRSlowConsumer(e *Env) {
	// Full pipeline: the cache serves real relying-party output, so the
	// scenario's terminal state is the RP's.
	w := e.NewWorld()
	res := w.Sync(w.NewRP(rp.Config{Fetcher: w.Client(ClientOpts{})}))
	e.AssertTerminal(res, obs.HealthClean)

	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	cache := rtr.NewCache(42)
	cache.SetVRPs(rtrChurnSet(res.VRPs, 0))
	srv := rtr.NewServer(cache)
	srv.WriteTimeout = 500 * time.Millisecond
	srv.WriteBuffer = 4 << 10 // a stalled router cannot hide behind kernel buffering
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		e.Fatalf("rtr listen: %v", err)
	}
	e.Cleanup(func() { _ = srv.Close() })

	// Healthy routers, synced and following.
	ctx, cancel := context.WithCancel(e.Ctx)
	e.Cleanup(cancel)
	const healthyN = 8
	healthy := make([]*rtr.Client, healthyN)
	for i := range healthy {
		healthy[i] = rtr.NewClient(addr)
		c := healthy[i]
		go func() { _ = c.Run(ctx) }()
	}
	for i, c := range healthy {
		if !c.WaitSerial(1, 10*time.Second) {
			e.Fatalf("healthy client %d never synced", i)
		}
	}

	// The attacker: request the snapshot, then read one byte per second.
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		e.Fatalf("attacker dial: %v", err)
	}
	e.Cleanup(func() { _ = stalled.Close() })
	if tc, ok := stalled.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(2 << 10)
	}
	if err := stalled.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		e.Fatalf("attacker write deadline: %v", err)
	}
	if err := rtr.WritePDU(stalled, &rtr.PDU{Type: rtr.TypeResetQuery}); err != nil {
		e.Fatalf("attacker reset query: %v", err)
	}
	go func() {
		buf := make([]byte, 1)
		for {
			// Even the attacker's trickle reads are deadline-bounded: the
			// goroutine must die with the scenario, not outlive it.
			if stalled.SetReadDeadline(time.Now().Add(2*time.Minute)) != nil {
				return
			}
			if _, err := stalled.Read(buf); err != nil {
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Second):
			}
		}
	}()

	// Churn storm while the attacker trickles.
	const rounds = 10
	churnStart := time.Now()
	for round := 1; round <= rounds; round++ {
		cache.SetVRPs(rtrChurnSet(res.VRPs, round))
	}
	finalSerial := cache.Serial()

	// Defense 1: the stalled client is evicted, not buffered for.
	evictDeadline := time.Now().Add(20 * time.Second)
	for srv.Evictions() == 0 && time.Now().Before(evictDeadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if srv.Evictions() == 0 {
		e.Failf("stalled client was never evicted")
	} else {
		e.Logf("stalled client evicted (%d evictions)", srv.Evictions())
	}

	// Defense 2: healthy routers keep tracking churn undisturbed — full
	// convergence well inside the write timeout regime, with state
	// byte-identical to the cache.
	healthyDeadline := 10 * time.Second
	for i, c := range healthy {
		if !c.WaitSerial(finalSerial, healthyDeadline) {
			e.Failf("healthy client %d stuck at serial %d, cache at %d — eviction did not protect the fan-out",
				i, c.Serial(), finalSerial)
		}
	}
	e.Logf("%d healthy clients converged to serial %d in %v under churn",
		healthyN, finalSerial, time.Since(churnStart).Round(time.Millisecond))
	want := rtrChurnSet(res.VRPs, rounds)
	rov.SortVRPs(want)
	for i, c := range healthy {
		got := c.VRPs()
		if len(got) != len(want) {
			e.Failf("healthy client %d has %d VRPs, cache has %d", i, len(got), len(want))
			continue
		}
		for j := range want {
			if got[j] != want[j] {
				e.Failf("healthy client %d VRP %d diverged: %v != %v", i, j, got[j], want[j])
				break
			}
		}
	}

	// Defense 3: heap growth stays bounded — the stalled client's backlog
	// must not have accumulated (bounded send queue + coalesced notifies).
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	const heapBudget = 64 << 20
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if growth > heapBudget {
		e.Failf("heap grew %d bytes during the attack, budget %d", growth, int64(heapBudget))
	} else {
		e.Logf("heap growth %d KiB (budget %d KiB)", growth/1024, heapBudget/1024)
	}
}
