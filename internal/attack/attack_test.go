package attack

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestCampaign runs every registered attack scenario — the full adversarial
// suite as a tier-1 test. Each scenario runs as a subtest so one failing
// attack does not mask the rest.
func TestCampaign(t *testing.T) {
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			v := Run(context.Background(), s)
			for _, note := range v.Notes {
				t.Log(note)
			}
			if v.Outcome != OutcomePass {
				t.Errorf("%s: outcome = %s, failures: %v", s.Name, v.Outcome, v.Failures)
			}
			if v.Health == "" && v.Outcome == OutcomePass {
				t.Error("passing scenario must record a terminal health state")
			}
		})
	}
}

// TestScenarioMetadata: every scenario names its source and defense layer —
// the registry doubles as the attack taxonomy, so the documentation fields
// are load-bearing.
func TestScenarioMetadata(t *testing.T) {
	seen := make(map[string]bool)
	for _, s := range Scenarios() {
		if s.Name == "" || !strings.Contains(s.Name, "/") {
			t.Errorf("scenario %q: name must be campaign-qualified", s.Name)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Paper == "" || s.Layer == "" || s.Doc == "" {
			t.Errorf("%s: Paper, Layer and Doc are required", s.Name)
		}
		if s.Run == nil {
			t.Errorf("%s: no Run function", s.Name)
		}
	}
	if len(seen) < 15 {
		t.Errorf("campaign has %d scenarios, want at least 15", len(seen))
	}
}

// TestRunnerHangDetection: a scenario that never returns is reported as a
// hang within its budget — the watchdog itself must not hang.
func TestRunnerHangDetection(t *testing.T) {
	v := Run(context.Background(), Scenario{
		Name:   "meta/hang",
		Budget: 200 * time.Millisecond,
		Run: func(e *Env) {
			<-e.Ctx.Done() // watchdog cancels at budget...
			select {}      // ...but the scenario stays wedged
		},
	})
	if v.Outcome != OutcomeHang {
		t.Fatalf("outcome = %s, want hang", v.Outcome)
	}
}

// TestRunnerPanicRecovery: a panicking scenario yields a panic verdict with
// the message preserved, and the runner survives to run the next scenario.
func TestRunnerPanicRecovery(t *testing.T) {
	v := Run(context.Background(), Scenario{
		Name:   "meta/panic",
		Budget: time.Second,
		Run:    func(e *Env) { panic("decoder exploded") },
	})
	if v.Outcome != OutcomePanic {
		t.Fatalf("outcome = %s, want panic", v.Outcome)
	}
	found := false
	for _, f := range v.Failures {
		if strings.Contains(f, "decoder exploded") {
			found = true
		}
	}
	if !found {
		t.Fatalf("panic message lost: %v", v.Failures)
	}
}

// TestRunnerRequiresTerminalState: a scenario that asserts nothing fails —
// "it didn't crash" is not a verdict.
func TestRunnerRequiresTerminalState(t *testing.T) {
	v := Run(context.Background(), Scenario{
		Name:   "meta/no-assert",
		Budget: time.Second,
		Run:    func(e *Env) {},
	})
	if v.Outcome != OutcomeFail {
		t.Fatalf("outcome = %s, want fail for a scenario with no terminal assertion", v.Outcome)
	}
}

// TestRunnerClockBudget: advancing the injected clock past the budget fails
// the scenario even if its assertions held.
func TestRunnerClockBudget(t *testing.T) {
	v := Run(context.Background(), Scenario{
		Name:        "meta/clock-budget",
		Budget:      time.Second,
		ClockBudget: time.Minute,
		Run: func(e *Env) {
			e.Clock.Advance(2 * time.Minute)
			// Cheat a terminal state so only the clock budget can fail it.
			e.mu.Lock()
			e.health, e.healthSet = "clean", true
			e.mu.Unlock()
		},
	})
	if v.Outcome != OutcomeFail {
		t.Fatalf("outcome = %s, want fail on blown clock budget", v.Outcome)
	}
}
