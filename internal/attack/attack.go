// Package attack is an adversarial campaign harness: it drives the full
// relying party — real rsynclite server, fault injection, hand-crafted
// malformed objects — through named attack scenarios drawn from the
// literature on misbehaving RPKI authorities and hostile repositories
// (Stalloris delay games, CURE-style decoder mutation, resource-exhaustion
// blowups). Every scenario must leave the relying party in a defined
// terminal state — clean, degraded, or stale — within a bounded budget; a
// hang, a panic, or an unasserted terminal state is a failed scenario. The
// suite runs under `go test` (see attack_test.go) and as the standalone
// cmd/rpki-attack binary.
package attack

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rp"
)

// Outcome is a scenario's verdict class.
type Outcome string

const (
	// OutcomePass: every assertion held and a terminal state was recorded.
	OutcomePass Outcome = "pass"
	// OutcomeFail: an assertion failed (the attack found a soft spot).
	OutcomeFail Outcome = "fail"
	// OutcomeHang: the scenario blew its wall-clock budget — the exact
	// failure mode (unbounded stall) the defenses exist to prevent.
	OutcomeHang Outcome = "hang"
	// OutcomePanic: the relying party (or the scenario) panicked.
	OutcomePanic Outcome = "panic"
)

// Scenario is one named attack with a bounded budget and a verdict.
type Scenario struct {
	// Name is the campaign-qualified identifier, e.g. "stalloris/slow-loris".
	Name string
	// Paper cites the attack's source (section or arXiv id).
	Paper string
	// Layer names the defense layer the attack probes (retry policy,
	// breaker, decoder limits, LKG store, ...).
	Layer string
	// Doc is a one-line description of the attack and the expected defense.
	Doc string
	// Budget bounds the scenario's wall-clock time (default 30s). Blowing
	// it is OutcomeHang, not a slow pass.
	Budget time.Duration
	// ClockBudget bounds how far the scenario may advance the injected
	// clock (default 12h) — terminal states must be reached within a
	// bounded simulated horizon, not by fast-forwarding past the problem.
	ClockBudget time.Duration
	// Run executes the attack against a fresh Env.
	Run func(*Env)
}

func (s Scenario) budget() time.Duration {
	if s.Budget <= 0 {
		return 30 * time.Second
	}
	return s.Budget
}

func (s Scenario) clockBudget() time.Duration {
	if s.ClockBudget <= 0 {
		return 12 * time.Hour
	}
	return s.ClockBudget
}

// Verdict is the machine-readable outcome of one scenario run.
type Verdict struct {
	Name    string  `json:"name"`
	Paper   string  `json:"paper"`
	Layer   string  `json:"layer"`
	Outcome Outcome `json:"outcome"`
	// Health is the asserted terminal relying-party state ("clean",
	// "degraded", "stale"; empty if the scenario failed before asserting).
	Health string `json:"health,omitempty"`
	// Events lists the distinct flight-recorder event kinds observed — how
	// the relying party degraded, not just that it did.
	Events []string `json:"events,omitempty"`
	// Failures lists assertion failures (empty on pass).
	Failures []string `json:"failures,omitempty"`
	// Notes carries scenario progress logs.
	Notes []string `json:"notes,omitempty"`
	// WallMS is elapsed wall-clock milliseconds.
	WallMS int64 `json:"wall_ms"`
	// ClockAdvancedMS is total injected-clock advancement in milliseconds.
	ClockAdvancedMS int64 `json:"clock_advanced_ms"`
}

// Clock is the scenario's injected clock: mutex-guarded, monotonic, and
// accounting — total advancement is charged against Scenario.ClockBudget.
type Clock struct {
	mu       sync.Mutex
	now      time.Time
	advanced time.Duration
}

// Epoch is where every scenario clock starts (the rp test epoch: fresh
// certificates, fresh manifests).
var Epoch = time.Date(2013, 11, 21, 0, 0, 0, 0, time.UTC)

// NewClock returns a clock frozen at Epoch.
func NewClock() *Clock { return &Clock{now: Epoch} }

// Now returns the current injected time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (negative d is ignored).
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	c.advanced += d
}

// Advanced reports the total advancement since creation.
func (c *Clock) Advanced() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.advanced
}

// abort unwinds a scenario after Fatalf; the runner recovers it.
type abort struct{}

// Env is the per-scenario world handle: a context bounded by the wall
// budget, the injected clock, and the assertion collector. Scenarios build
// their world with NewWorld (TCP) or rely on in-process fetchers.
type Env struct {
	// Ctx is cancelled when the scenario's wall budget expires; pass it to
	// every Sync and fetch so a hung scenario tears down its I/O.
	Ctx context.Context
	// Clock is the scenario's injected clock.
	Clock *Clock

	mu        sync.Mutex
	failures  []string
	notes     []string
	health    string
	healthSet bool
	hub       *obs.Hub
	cleanups  []func()
}

// Failf records an assertion failure and keeps going.
func (e *Env) Failf(format string, args ...any) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.failures = append(e.failures, fmt.Sprintf(format, args...))
}

// Fatalf records an assertion failure and aborts the scenario.
func (e *Env) Fatalf(format string, args ...any) {
	e.Failf(format, args...)
	panic(abort{})
}

// Logf records a progress note carried into the verdict.
func (e *Env) Logf(format string, args ...any) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.notes = append(e.notes, fmt.Sprintf(format, args...))
}

// Cleanup registers fn to run (LIFO) when the scenario finishes or hangs.
func (e *Env) Cleanup(fn func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cleanups = append(e.cleanups, fn)
}

// SetHub attaches the flight-recorder hub whose events the verdict reports.
// NewWorld calls it automatically.
func (e *Env) SetHub(h *obs.Hub) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.hub = h
}

// AssertTerminal asserts the sync result's terminal health and records it
// as the scenario's terminal relying-party state. Every scenario must reach
// this at least once — a scenario that never asserts a terminal state fails.
func (e *Env) AssertTerminal(res *rp.Result, want obs.HealthState) {
	got := res.Health()
	e.mu.Lock()
	e.health = got.String()
	e.healthSet = true
	e.mu.Unlock()
	if got != want {
		e.Failf("terminal state = %s, want %s (diags: %v)", got, want, res.Diagnostics)
	}
}

// RequireEvent asserts the flight recorder captured at least one event of
// the given kind — the attack's footprint must be observable, not inferred.
func (e *Env) RequireEvent(kind obs.EventKind) {
	e.mu.Lock()
	hub := e.hub
	e.mu.Unlock()
	if hub == nil {
		e.Failf("RequireEvent(%s): scenario has no hub (call NewWorld or SetHub)", kind)
		return
	}
	for _, ev := range hub.Recorder().Snapshot() {
		if ev.Kind == kind {
			return
		}
	}
	e.Failf("flight recorder captured no %s event", kind)
}

// eventKinds returns the sorted distinct event-kind names recorded so far.
func (e *Env) eventKinds() []string {
	e.mu.Lock()
	hub := e.hub
	e.mu.Unlock()
	if hub == nil {
		return nil
	}
	seen := make(map[string]bool)
	for _, ev := range hub.Recorder().Snapshot() {
		seen[ev.Kind.String()] = true
	}
	kinds := make([]string, 0, len(seen))
	for k := range seen {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

func (e *Env) runCleanups() {
	e.mu.Lock()
	cleanups := e.cleanups
	e.cleanups = nil
	e.mu.Unlock()
	for i := len(cleanups) - 1; i >= 0; i-- {
		cleanups[i]()
	}
}

// Run executes one scenario under a wall-clock watchdog and returns its
// verdict. A scenario that outlives its budget is reported as a hang (its
// goroutine is abandoned — precisely the resource the real defenses refuse
// to leak, which is why hanging is a first-class failed outcome here).
func Run(parent context.Context, s Scenario) Verdict {
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithTimeout(parent, s.budget())
	defer cancel()
	env := &Env{Ctx: ctx, Clock: NewClock()}

	start := time.Now()
	done := make(chan struct{})
	var panicked any
	go func() {
		defer close(done)
		defer func() {
			if r := recover(); r != nil {
				if _, isAbort := r.(abort); !isAbort {
					panicked = fmt.Sprintf("%v\n%s", r, debug.Stack())
				}
			}
		}()
		s.Run(env)
	}()

	hung := false
	select {
	case <-done:
	case <-time.After(s.budget()):
		hung = true
		cancel() // tear down the scenario's I/O...
		select { // ...and give it a moment to notice.
		case <-done:
			hung = false
		case <-time.After(2 * time.Second):
		}
	}
	if !hung {
		env.runCleanups()
	} else {
		// The scenario is wedged; run cleanups anyway so servers shut down,
		// but do it off to the side in case a cleanup blocks too.
		go env.runCleanups()
	}

	env.mu.Lock()
	v := Verdict{
		Name:            s.Name,
		Paper:           s.Paper,
		Layer:           s.Layer,
		Health:          env.health,
		Failures:        append([]string(nil), env.failures...),
		Notes:           append([]string(nil), env.notes...),
		WallMS:          time.Since(start).Milliseconds(),
		ClockAdvancedMS: env.Clock.Advanced().Milliseconds(),
	}
	healthSet := env.healthSet
	env.mu.Unlock()
	v.Events = env.eventKinds()

	switch {
	case hung:
		v.Outcome = OutcomeHang
		v.Failures = append(v.Failures, fmt.Sprintf("scenario exceeded its %v wall budget", s.budget()))
	case panicked != nil:
		v.Outcome = OutcomePanic
		v.Failures = append(v.Failures, fmt.Sprintf("panic: %v", panicked))
	default:
		if !healthSet {
			v.Failures = append(v.Failures, "scenario asserted no terminal relying-party state")
		}
		if adv := env.Clock.Advanced(); adv > s.clockBudget() {
			v.Failures = append(v.Failures, fmt.Sprintf("injected clock advanced %v, budget %v", adv, s.clockBudget()))
		}
		if len(v.Failures) > 0 {
			v.Outcome = OutcomeFail
		} else {
			v.Outcome = OutcomePass
		}
	}
	return v
}

// RunAll executes every scenario in order and returns the verdicts.
func RunAll(ctx context.Context, scenarios []Scenario) []Verdict {
	verdicts := make([]Verdict, 0, len(scenarios))
	for _, s := range scenarios {
		verdicts = append(verdicts, Run(ctx, s))
	}
	return verdicts
}

// Scenarios returns the full registered campaign, ordered by name within
// each campaign group (stall games first, then exhaustion, then mutation).
func Scenarios() []Scenario {
	var all []Scenario
	all = append(all, stallScenarios()...)
	all = append(all, exhaustScenarios()...)
	all = append(all, mutateScenarios()...)
	all = append(all, rtrScenarios()...)
	return all
}
