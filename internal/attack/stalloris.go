package attack

import (
	"reflect"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/repo"
	"repro/internal/rp"
)

// The Stalloris campaign (arXiv:2205.06064): a repository does not need to
// be down to hurt a relying party — merely slow, at the right moments. Each
// scenario here plays a delay game tuned against one rung of the
// degradation ladder (per-request deadlines, retry policy, circuit
// breakers, last-known-good fallback) and asserts the relying party reaches
// a defined terminal state instead of stalling.

func stallScenarios() []Scenario {
	return []Scenario{
		{
			Name:  "stalloris/slow-loris",
			Paper: "Stalloris (arXiv:2205.06064) §5",
			Layer: "request deadline + circuit breaker",
			Doc:   "child point trickles one byte per interval; the RP must cut each request at its deadline, trip the breaker, and degrade",
			Run:   runSlowLoris,
		},
		{
			Name:  "stalloris/adaptive-ramp",
			Paper: "Stalloris (arXiv:2205.06064) §5.2",
			Layer: "request deadline",
			Doc:   "attacker ramps delay from just-under to far-over the deadline; the RP serves clean while under, degrades (never hangs) once over",
			Run:   runAdaptiveRamp,
		},
		{
			Name:  "stalloris/probe-timing-game",
			Paper: "Stalloris (arXiv:2205.06064) §6",
			Layer: "breaker probation",
			Doc:   "point serves exactly the half-open probe and stalls everything after; probation must re-open on one failure, admitting no second request",
			Run:   runProbeTimingGame,
		},
		{
			Name:  "stalloris/multipoint-stall",
			Paper: "Stalloris (arXiv:2205.06064) §7",
			Layer: "LKG store",
			Doc:   "coordinated stall of every publication point at once; the RP must serve last-known-good data for all of them (stale, not down)",
			Run:   runMultipointStall,
		},
		{
			Name:  "stalloris/downgrade-to-stale",
			Paper: "Stalloris (arXiv:2205.06064) §7 + paper §4 (Side Effect 7)",
			Layer: "LKG StaleTTL",
			Doc:   "attacker keeps a point down to pin the RP on stale data; StaleTTL must bound the pin — past it the subtree drops and the RP reports degraded",
			Run:   runDowngradeToStale,
		},
	}
}

func runSlowLoris(e *Env) {
	w := e.NewWorld()
	w.ChildFaults.SetSlowLoris(80 * time.Millisecond)
	client := w.Client(ClientOpts{Timeout: 150 * time.Millisecond, MaxRetries: 1, BreakerThreshold: 2})
	res := w.Sync(w.NewRP(rp.Config{Fetcher: client}))

	e.AssertTerminal(res, obs.HealthDegraded)
	if res.PubPointsVisited < 2 {
		e.Failf("RP should still visit both points, visited %d", res.PubPointsVisited)
	}
	if len(res.VRPs) != 0 {
		e.Failf("stalled child's ROA must not validate, got %d VRPs", len(res.VRPs))
	}
	if got := client.Breakers.State(w.ChildURI.String()); got != repo.BreakerOpen {
		e.Failf("child breaker = %v, want open", got)
	}
	e.RequireEvent(obs.EventRetry)
	e.RequireEvent(obs.EventBreakerOpen)
}

func runAdaptiveRamp(e *Env) {
	w := e.NewWorld()
	client := w.Client(ClientOpts{Timeout: 150 * time.Millisecond, MaxRetries: 2, BreakerThreshold: 2})

	// Phase 1: the attacker sits just under the deadline — degraded
	// throughput, but every request completes and validation is clean.
	w.ChildFaults.SetDelay(10 * time.Millisecond)
	under := w.Sync(w.NewRP(rp.Config{Fetcher: client}))
	if got := under.Health(); got != obs.HealthClean {
		e.Failf("under-deadline phase: health = %s, want clean (diags: %v)", got, under.Diagnostics)
	}
	e.Logf("under-deadline sync clean with %d VRPs", len(under.VRPs))

	// Phase 2: the attacker ramps past the deadline. Every request times
	// out; the breaker trips; the sync terminates degraded.
	w.ChildFaults.SetDelay(400 * time.Millisecond)
	over := w.Sync(w.NewRP(rp.Config{Fetcher: client}))
	e.AssertTerminal(over, obs.HealthDegraded)
	if got := client.Breakers.State(w.ChildURI.String()); got != repo.BreakerOpen {
		e.Failf("child breaker after ramp = %v, want open", got)
	}
	e.RequireEvent(obs.EventBreakerOpen)
}

func runProbeTimingGame(e *Env) {
	w := e.NewWorld()
	client := w.Client(ClientOpts{Timeout: time.Second, MaxRetries: 2, BreakerThreshold: 2, Cooldown: time.Minute})

	// Trip the child's breaker with a refused point.
	w.ChildFaults.Refuse(true)
	first := w.Sync(w.NewRP(rp.Config{Fetcher: client}))
	if got := first.Health(); got != obs.HealthDegraded {
		e.Fatalf("refused-point sync: health = %s, want degraded", got)
	}
	if got := client.Breakers.State(w.ChildURI.String()); got != repo.BreakerOpen {
		e.Fatalf("child breaker = %v, want open after refusal", got)
	}

	// The adversarial phase: serve exactly the half-open probe, stall
	// everything after it, and count what gets through. The script runs on
	// server connection goroutines, hence the atomic.
	var postProbe atomic.Int64
	w.ChildFaults.Refuse(false)
	w.ChildFaults.SetScript(func(requestN int) repo.FaultAction {
		if requestN == 1 {
			return repo.ActNone
		}
		postProbe.Add(1)
		return repo.ActDropConn
	})
	e.Clock.Advance(61 * time.Second) // cooldown elapses on the injected clock

	second := w.Sync(w.NewRP(rp.Config{Fetcher: client}))
	e.AssertTerminal(second, obs.HealthDegraded)
	if got := client.Breakers.State(w.ChildURI.String()); got != repo.BreakerOpen {
		e.Failf("breaker after probe game = %v, want re-opened", got)
	}
	// Probation is the whole defense: the probe's success must not grant
	// the attacker a fresh threshold's worth of admitted requests.
	if n := postProbe.Load(); n != 1 {
		e.Failf("point saw %d post-probe requests, want exactly 1", n)
	}
	// While re-opened, nothing reaches the network at all.
	before := postProbe.Load()
	third := w.Sync(w.NewRP(rp.Config{Fetcher: client}))
	if got := third.Health(); got != obs.HealthDegraded {
		e.Failf("fast-fail sync: health = %s, want degraded", got)
	}
	if after := postProbe.Load(); after != before {
		e.Failf("fast-failing breaker touched the network (%d -> %d requests)", before, after)
	}
	e.RequireEvent(obs.EventBreakerHalfOpen)
	e.RequireEvent(obs.EventBreakerFastFail)
}

func runMultipointStall(e *Env) {
	w := e.NewWorld()
	client := w.Client(ClientOpts{Timeout: 150 * time.Millisecond, BreakerThreshold: 2})
	relying := w.NewRP(rp.Config{Fetcher: client, StaleTTL: time.Hour})

	baseline := w.Sync(relying)
	if got := baseline.Health(); got != obs.HealthClean {
		e.Fatalf("baseline sync: health = %s, want clean (diags: %v)", got, baseline.Diagnostics)
	}

	// Coordinated stall: every publication point trickles at once — the
	// strongest form of the attack, no healthy point to hide behind.
	w.TAFaults.SetSlowLoris(80 * time.Millisecond)
	w.ChildFaults.SetSlowLoris(80 * time.Millisecond)
	e.Clock.Advance(10 * time.Minute)

	stalled := w.Sync(relying)
	e.AssertTerminal(stalled, obs.HealthStale)
	if !reflect.DeepEqual(stalled.VRPs, baseline.VRPs) {
		e.Failf("stale VRPs diverge from last-known-good:\n%v\n%v", stalled.VRPs, baseline.VRPs)
	}
	if stalled.StaleFallbacks < 2 {
		e.Failf("StaleFallbacks = %d, want both points served from LKG", stalled.StaleFallbacks)
	}
	e.RequireEvent(obs.EventStaleFallback)
}

func runDowngradeToStale(e *Env) {
	w := e.NewWorld()
	client := w.Client(ClientOpts{Timeout: time.Second, BreakerThreshold: 2})
	relying := w.NewRP(rp.Config{Fetcher: client, StaleTTL: 30 * time.Minute})

	baseline := w.Sync(relying)
	if got := baseline.Health(); got != obs.HealthClean {
		e.Fatalf("baseline sync: health = %s, want clean (diags: %v)", got, baseline.Diagnostics)
	}
	if len(baseline.VRPs) != 1 {
		e.Fatalf("baseline VRPs = %d, want 1", len(baseline.VRPs))
	}

	// The attacker takes the child point down and keeps it down, counting
	// on the RP to keep serving yesterday's data forever.
	w.ChildFaults.Refuse(true)
	e.Clock.Advance(10 * time.Minute)
	stale := w.Sync(relying)
	if got := stale.Health(); got != obs.HealthStale {
		e.Failf("inside TTL: health = %s, want stale (diags: %v)", got, stale.Diagnostics)
	}
	if !reflect.DeepEqual(stale.VRPs, baseline.VRPs) {
		e.Failf("inside TTL the LKG set must match the baseline")
	}

	// Past the TTL the pin must break: the subtree drops from the cache
	// and the RP reports degraded — bounded staleness, never unbounded.
	e.Clock.Advance(31 * time.Minute)
	expired := w.Sync(relying)
	e.AssertTerminal(expired, obs.HealthDegraded)
	if len(expired.VRPs) != 0 {
		e.Failf("past TTL the dead point's VRPs must drop, got %d", len(expired.VRPs))
	}
	e.RequireEvent(obs.EventStaleFallback)
}
