package attack

import (
	"time"

	"repro/internal/ca"
	"repro/internal/ipres"
	"repro/internal/obs"
	"repro/internal/repo"
	"repro/internal/roa"
	"repro/internal/rp"
)

// World is the standard attack surface: a two-point hierarchy (trust anchor
// → child CA with one ROA) served over a real rsynclite server on loopback,
// with an independent fault plan per publication point and the
// observability hub recording how the relying party degrades.
type World struct {
	Addr   string
	Server *repo.Server
	Anchor rp.TrustAnchor
	TA     *ca.Authority
	Child  *ca.Authority
	TAURI  repo.URI
	// ChildURI is the child's publication point — the usual attack target.
	ChildURI    repo.URI
	TAStore     *repo.Store
	ChildStore  *repo.Store
	TAFaults    *repo.Faults
	ChildFaults *repo.Faults
	Hub         *obs.Hub

	env *Env
}

// NewWorld builds the standard world on the scenario's injected clock and
// registers server shutdown with the Env. Construction failures abort the
// scenario.
func (e *Env) NewWorld() *World {
	srv := repo.NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		e.Fatalf("world: listen: %v", err)
	}
	e.Cleanup(func() { _ = srv.Close() })

	cfg := ca.Config{Clock: e.Clock.Now}
	taStore := repo.NewStore()
	taURI := repo.URI{Host: addr, Module: "ta"}
	ta, err := ca.NewTrustAnchor("ta", ipres.MustParseSet("63.0.0.0/8"), taStore, taURI, cfg)
	if err != nil {
		e.Fatalf("world: trust anchor: %v", err)
	}
	childStore := repo.NewStore()
	childURI := repo.URI{Host: addr, Module: "child"}
	child, err := ta.CreateChild("child", ipres.MustParseSet("63.160.0.0/12"), childStore, childURI)
	if err != nil {
		e.Fatalf("world: child: %v", err)
	}
	if _, err := child.IssueROA("r", 1239, roa.MustParsePrefix("63.160.0.0/12-13")); err != nil {
		e.Fatalf("world: roa: %v", err)
	}
	taFaults, childFaults := repo.NewFaults(), repo.NewFaults()
	srv.AddModule("ta", taStore, taFaults)
	srv.AddModule("child", childStore, childFaults)

	hub := obs.NewHub(e.Clock.Now)
	e.SetHub(hub)
	return &World{
		Addr:        addr,
		Server:      srv,
		Anchor:      rp.TrustAnchor{CertDER: ta.Cert.Raw, URI: taURI},
		TA:          ta,
		Child:       child,
		TAURI:       taURI,
		ChildURI:    childURI,
		TAStore:     taStore,
		ChildStore:  childStore,
		TAFaults:    taFaults,
		ChildFaults: childFaults,
		Hub:         hub,
		env:         e,
	}
}

// ClientOpts tunes a World client. Zero values pick attack-test defaults:
// a 2s request timeout, no retries, no breakers.
type ClientOpts struct {
	// Timeout is the per-request deadline (wall clock — it arms real
	// network deadlines). Default 2s.
	Timeout time.Duration
	// MaxRetries enables the retry policy with fast deterministic backoff.
	MaxRetries int
	// BreakerThreshold, when > 0, attaches per-point circuit breakers
	// driven by the scenario's injected clock.
	BreakerThreshold int
	// Cooldown is the breaker cooldown on the injected clock (default 1m).
	Cooldown time.Duration
}

// Client builds an instrumented repository client wired to the world's hub,
// so retries, breaker transitions and fast-fails land in the flight
// recorder the verdict reports.
func (w *World) Client(opts ClientOpts) *repo.Client {
	if opts.Timeout <= 0 {
		opts.Timeout = 2 * time.Second
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = time.Minute
	}
	c := &repo.Client{
		Timeout: opts.Timeout,
		Retry: repo.RetryPolicy{
			MaxRetries: opts.MaxRetries,
			BaseDelay:  time.Millisecond,
			MaxDelay:   4 * time.Millisecond,
			Jitter:     -1,
		},
	}
	if opts.BreakerThreshold > 0 {
		c.Breakers = repo.NewBreakerSet(repo.BreakerConfig{
			FailureThreshold: opts.BreakerThreshold,
			Cooldown:         opts.Cooldown,
			Clock:            w.env.Clock.Now,
		})
	}
	c.Instrument(w.Hub)
	return c
}

// NewRP builds a relying party over the world's anchor, defaulting the
// clock and observability hub to the scenario's.
func (w *World) NewRP(cfg rp.Config) *rp.RelyingParty {
	if cfg.Clock == nil {
		cfg.Clock = w.env.Clock.Now
	}
	if cfg.Obs == nil {
		cfg.Obs = w.Hub
	}
	return rp.New(cfg, w.Anchor)
}

// Sync runs one synchronization pass under the scenario context, aborting
// the scenario on a hard error (context cancellation aside, Sync reports
// trouble via diagnostics, not errors).
func (w *World) Sync(relying *rp.RelyingParty) *rp.Result {
	res, err := relying.Sync(w.env.Ctx)
	if err != nil {
		w.env.Fatalf("sync: %v", err)
	}
	return res
}
