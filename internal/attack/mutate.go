package attack

import (
	"bytes"
	"reflect"
	"time"

	"repro/internal/ipres"
	"repro/internal/manifest"
	"repro/internal/obs"
	"repro/internal/roa"
	"repro/internal/rov"
	"repro/internal/rp"
	"repro/internal/rtr"
)

// The mutation and flap campaigns. Mutation (CURE, arXiv:2312.01872):
// single-byte corruption sweeps over real signed objects and wire frames —
// every mutant must be parsed without a panic, and a mutant served in place
// of the real object must be rejected by the manifest hash or the
// signature, never admitted. Flap (paper §4, Side Effect 6/7): transport
// pathologies that come and go — intermittent corruption, sustained
// throttling — through which the relying party must converge back to clean.

func mutateScenarios() []Scenario {
	return []Scenario{
		{
			Name:  "mutate/cms-envelope",
			Paper: "CURE (arXiv:2312.01872) §4.2",
			Layer: "cms/roa decoders + manifest hash",
			Doc:   "byte-flip sweep over a real signed ROA: every mutant parses without panic; a served mutant fails the manifest hash and degrades the RP",
			Run:   runMutateCMSEnvelope,
		},
		{
			Name:  "mutate/manifest-bytes",
			Paper: "CURE (arXiv:2312.01872) §4.2",
			Layer: "manifest decoder + CMS signature",
			Doc:   "byte-flip sweep over a real signed manifest: every mutant parses without panic; a served mutant is rejected and the RP degrades, best-effort intact",
			Run:   runMutateManifestBytes,
		},
		{
			Name:  "mutate/rtr-stream",
			Paper: "CURE (arXiv:2312.01872) §4; RFC 8210",
			Layer: "rtr.ReadPDU",
			Doc:   "byte-flip sweep over a real RTR frame stream plus the minimized overflow crashers: every mutant reads without panic, and the RP pipeline stays clean",
			Run:   runMutateRTRStream,
		},
		{
			Name:  "flap/corrupt-rate",
			Paper: "paper §4 (Side Effect 6: server corruption)",
			Layer: "manifest hash + retry cycle",
			Doc:   "intermittent corruption (1 of every 2 requests): the corrupted pass is rejected and degraded, the clean pass converges back to clean",
			Run:   runFlapCorruptRate,
		},
		{
			Name:  "flap/bandwidth-throttle",
			Paper: "Stalloris (arXiv:2205.06064) §5; paper §4 (Side Effect 7)",
			Layer: "request deadline budget",
			Doc:   "sustained byte-rate throttling: a tight deadline degrades, a deadline with headroom rides it out to a clean sync with identical VRPs",
			Run:   runFlapBandwidthThrottle,
		},
	}
}

// mutants yields deterministic single-byte corruptions of src: positions
// stride through the object, each flipped with a constant mask.
func mutants(src []byte, stride int) [][]byte {
	var out [][]byte
	for pos := 0; pos < len(src); pos += stride {
		m := append([]byte(nil), src...)
		m[pos] ^= 0x55
		out = append(out, m)
	}
	return out
}

func runMutateCMSEnvelope(e *Env) {
	w := e.NewWorld()
	orig, ok := w.ChildStore.Get("r.roa")
	if !ok {
		e.Fatalf("world has no r.roa")
	}

	// The sweep: no mutant may panic the decoder stack; any mutant the
	// decoder does accept must carry a well-formed payload.
	accepted := 0
	for _, m := range mutants(orig, 7) {
		if parsed, err := roa.ParseSigned(m); err == nil {
			accepted++
			if parsed.ROA == nil || len(parsed.ROA.Prefixes) > roa.MaxPrefixes {
				e.Failf("accepted mutant violates decoder invariants")
			}
		}
	}
	e.Logf("swept %d mutants, decoder accepted %d", len(orig)/7+1, accepted)

	// Serve one mid-object mutant in place of the real ROA: the manifest
	// hash must reject it and the RP must degrade, not admit.
	mutant := append([]byte(nil), orig...)
	mutant[len(mutant)/2] ^= 0x55
	w.ChildStore.Put("r.roa", mutant)
	res := w.Sync(w.NewRP(rp.Config{Fetcher: w.Client(ClientOpts{})}))
	e.AssertTerminal(res, obs.HealthDegraded)
	if len(res.VRPs) != 0 {
		e.Failf("mutated ROA must not produce VRPs, got %d", len(res.VRPs))
	}
	e.RequireEvent(obs.EventDiagnostic)
}

func runMutateManifestBytes(e *Env) {
	w := e.NewWorld()
	mftName := w.Child.ManifestFileName()
	orig, ok := w.ChildStore.Get(mftName)
	if !ok {
		e.Fatalf("world has no %s", mftName)
	}

	for _, m := range mutants(orig, 7) {
		if parsed, err := manifest.ParseSigned(m); err == nil {
			if parsed.Manifest == nil || len(parsed.Manifest.Entries) > manifest.MaxFileList {
				e.Failf("accepted mutant violates decoder invariants")
			}
		}
	}

	// A mutated manifest must be rejected (parse or signature), degrading
	// the point — while best-effort admission keeps the independently
	// valid ROA in the cache.
	mutant := append([]byte(nil), orig...)
	mutant[len(mutant)/2] ^= 0x55
	w.ChildStore.Put(mftName, mutant)
	res := w.Sync(w.NewRP(rp.Config{Fetcher: w.Client(ClientOpts{})}))
	e.AssertTerminal(res, obs.HealthDegraded)
	if len(res.VRPs) != 1 {
		e.Failf("best-effort must keep the valid ROA under a mutated manifest, got %d VRPs", len(res.VRPs))
	}
	e.RequireEvent(obs.EventDiagnostic)
}

func runMutateRTRStream(e *Env) {
	frames := []*rtr.PDU{
		{Type: rtr.TypeCacheResponse, Session: 9},
		{Type: rtr.TypeIPv4Prefix, Flags: rtr.FlagAnnounce, VRP: rov.VRP{
			Prefix: ipres.MustParsePrefix("63.160.0.0/12"), MaxLength: 13, ASN: 1239}},
		{Type: rtr.TypeEndOfData, Session: 9, Serial: 1},
		{Type: rtr.TypeErrorReport, Session: rtr.ErrCorruptData, ErrText: "corrupt"},
	}
	var stream []byte
	for _, p := range frames {
		//lint:ignore taintflow this harness deliberately feeds unsanitized mutants to ReadPDU; the marshaled frames here are the corpus being corrupted, not router output
		buf, err := p.Marshal()
		if err != nil {
			e.Fatalf("marshal frame: %v", err)
		}
		stream = append(stream, buf...)
	}
	// Every single-byte corruption of the stream, plus the two minimized
	// length-overflow crashers that used to panic ReadPDU.
	cases := mutants(stream, 1)
	cases = append(cases,
		[]byte{0, 10, 0, 0, 0, 0, 0, 16, 0xFF, 0xFF, 0xFF, 0xF8, 0, 0, 0, 0},
		[]byte{0, 10, 0, 0, 0, 0, 0, 16, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xF8})
	for _, m := range cases {
		r := bytes.NewReader(m)
		for {
			if _, err := rtr.ReadPDU(r); err != nil {
				break
			}
		}
	}
	e.Logf("read %d mutated streams to exhaustion without a panic", len(cases))

	// The decoder campaign must leave the validation pipeline untouched: a
	// fresh sync over the same world is still clean.
	w := e.NewWorld()
	res := w.Sync(w.NewRP(rp.Config{Fetcher: w.Client(ClientOpts{})}))
	e.AssertTerminal(res, obs.HealthClean)
	if len(res.VRPs) != 1 {
		e.Failf("clean world must yield 1 VRP, got %d", len(res.VRPs))
	}
}

func runFlapCorruptRate(e *Env) {
	w := e.NewWorld()
	w.ChildFaults.CorruptRate("r.roa", 1, 2)
	client := w.Client(ClientOpts{})

	// Pass 1 draws the corrupted request: the manifest hash rejects it and
	// the sync is degraded — corruption is never admitted, only reported.
	first := w.Sync(w.NewRP(rp.Config{Fetcher: client}))
	if got := first.Health(); got != obs.HealthDegraded {
		e.Failf("corrupted pass: health = %s, want degraded (diags: %v)", got, first.Diagnostics)
	}
	if len(first.VRPs) != 0 {
		e.Failf("corrupted ROA must not validate, got %d VRPs", len(first.VRPs))
	}

	// Pass 2 draws the clean request of the cycle: the RP converges back.
	second := w.Sync(w.NewRP(rp.Config{Fetcher: client}))
	e.AssertTerminal(second, obs.HealthClean)
	if len(second.VRPs) != 1 {
		e.Failf("clean pass must recover the VRP, got %d", len(second.VRPs))
	}
	e.RequireEvent(obs.EventDiagnostic)
}

func runFlapBandwidthThrottle(e *Env) {
	w := e.NewWorld()
	baseline := w.Sync(w.NewRP(rp.Config{Fetcher: w.Client(ClientOpts{})}))
	if got := baseline.Health(); got != obs.HealthClean {
		e.Fatalf("baseline: health = %s, want clean", got)
	}

	w.ChildFaults.SetBandwidth(4000)

	// A tight deadline converts the throttle into failures: degraded.
	tight := w.Sync(w.NewRP(rp.Config{Fetcher: w.Client(ClientOpts{Timeout: 120 * time.Millisecond})}))
	if got := tight.Health(); got != obs.HealthDegraded {
		e.Failf("tight deadline under throttle: health = %s, want degraded", got)
	}

	// Deadline headroom rides the throttle out: clean, identical VRPs —
	// the attack degrades latency, not correctness.
	patient := w.Sync(w.NewRP(rp.Config{Fetcher: w.Client(ClientOpts{Timeout: 15 * time.Second})}))
	e.AssertTerminal(patient, obs.HealthClean)
	if !reflect.DeepEqual(patient.VRPs, baseline.VRPs) {
		e.Failf("throttled VRPs diverge from baseline")
	}
	e.RequireEvent(obs.EventDiagnostic)
}
