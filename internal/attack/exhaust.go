package attack

import (
	"bytes"
	"fmt"
	"math/big"
	"strings"
	"time"

	"repro/internal/ca"
	"repro/internal/cms"
	"repro/internal/ipres"
	"repro/internal/manifest"
	"repro/internal/obs"
	"repro/internal/repo"
	"repro/internal/rfc3779"
	"repro/internal/roa"
	"repro/internal/rp"
)

// The resource-exhaustion campaign (CURE, arXiv:2312.01872 §4, and the
// paper's Side Effect 6 framing of authority-controlled content): a hostile
// authority crafts *valid-looking* content sized to exhaust the relying
// party — unbounded delegation chains, giant manifests, deeply nested CMS,
// oversized RFC 3779 extensions, objects larger than any honest repository
// would publish. Every scenario asserts the hard input limits fire before
// input-proportional allocation and the relying party degrades instead of
// dying.

func exhaustScenarios() []Scenario {
	return []Scenario{
		{
			Name:  "exhaust/delegation-depth",
			Paper: "CURE (arXiv:2312.01872) §4; paper §4 (delegation chains)",
			Layer: "rp.Config.MaxDepth",
			Doc:   "authority publishes a delegation chain deeper than MaxDepth; the walk must stop at the bound with a diagnostic, not recurse unboundedly",
			Run:   runDelegationDepth,
		},
		{
			Name:  "exhaust/oversized-object",
			Paper: "CURE (arXiv:2312.01872) §4",
			Layer: "repo.MaxObjectSize",
			Doc:   "repository advertises an object past the transport cap; the client must refuse by declared size, before buffering a byte of body",
			Run:   runOversizedObject,
		},
		{
			Name:  "exhaust/giant-manifest",
			Paper: "CURE (arXiv:2312.01872) §4",
			Layer: "manifest.MaxFileList",
			Doc:   "manifest declares more fileList entries than any honest point publishes; the decoder must reject past the cap and the RP degrade on a garbage manifest",
			Run:   runGiantManifest,
		},
		{
			Name:  "exhaust/cms-nesting-bomb",
			Paper: "CURE (arXiv:2312.01872) §4.2",
			Layer: "cms decoder",
			Doc:   "deeply nested CMS DER must be rejected without stack exhaustion; served in place of a ROA it must fail the manifest hash, degrading the RP",
			Run:   runCMSNestingBomb,
		},
		{
			Name:  "exhaust/rfc3779-blowup",
			Paper: "CURE (arXiv:2312.01872) §4.2; RFC 3779",
			Layer: "rfc3779.MaxExtensionSize",
			Doc:   "oversized resource extension must be rejected before decode; a garbage CA certificate must cost the attacker their own subtree only",
			Run:   runRFC3779Blowup,
		},
	}
}

// memChain builds an in-process delegation chain ta -> c1 -> ... -> cN with
// one ROA at the leaf, returning the anchor and a StoreFetcher over every
// module. In-process because the attack is about walk depth, not transport.
func memChain(e *Env, depth int) (rp.TrustAnchor, rp.StoreFetcher) {
	cfg := ca.Config{Clock: e.Clock.Now}
	stores := make(rp.StoreFetcher)
	taStore := repo.NewStore()
	stores["ta"] = taStore
	taURI := repo.URI{Host: "mem", Module: "ta"}
	ta, err := ca.NewTrustAnchor("ta", ipres.MustParseSet("10.0.0.0/8"), taStore, taURI, cfg)
	if err != nil {
		e.Fatalf("chain: trust anchor: %v", err)
	}
	parent := ta
	for i := 1; i <= depth; i++ {
		name := fmt.Sprintf("c%d", i)
		st := repo.NewStore()
		stores[name] = st
		child, err := parent.CreateChild(name, ipres.MustParseSet(fmt.Sprintf("10.0.0.0/%d", 8+i)),
			st, repo.URI{Host: "mem", Module: name})
		if err != nil {
			e.Fatalf("chain: child %d: %v", i, err)
		}
		parent = child
	}
	if _, err := parent.IssueROA("leaf", 64512, roa.MustParsePrefix(fmt.Sprintf("10.0.0.0/%d", 8+depth))); err != nil {
		e.Fatalf("chain: leaf roa: %v", err)
	}
	return rp.TrustAnchor{CertDER: ta.Cert.Raw, URI: taURI}, stores
}

func runDelegationDepth(e *Env) {
	const maxDepth, chainDepth = 4, 8
	anchor, fetcher := memChain(e, chainDepth)
	hub := obs.NewHub(e.Clock.Now)
	e.SetHub(hub)
	relying := rp.New(rp.Config{Fetcher: fetcher, Clock: e.Clock.Now, MaxDepth: maxDepth, Obs: hub}, anchor)
	res, err := relying.Sync(e.Ctx)
	if err != nil {
		e.Fatalf("sync: %v", err)
	}

	e.AssertTerminal(res, obs.HealthDegraded)
	if res.PubPointsVisited > maxDepth {
		e.Failf("walk visited %d points, MaxDepth %d must bound it", res.PubPointsVisited, maxDepth)
	}
	if len(res.VRPs) != 0 {
		e.Failf("ROA beyond the depth bound must not validate, got %d VRPs", len(res.VRPs))
	}
	found := false
	for _, d := range res.Diagnostics {
		if d.Err != nil && strings.Contains(d.Err.Error(), "hierarchy too deep") {
			found = true
		}
	}
	if !found {
		e.Failf("depth cutoff must be diagnosed, got %v", res.Diagnostics)
	}
	e.RequireEvent(obs.EventDiagnostic)
}

func runOversizedObject(e *Env) {
	// Decoder layer: the parser itself refuses input past the object cap
	// before any DER work.
	if _, err := cms.Parse(make([]byte, cms.MaxObjectSize+1)); err == nil {
		e.Failf("cms.Parse accepted an object past MaxObjectSize")
	}

	// Transport layer: the repository advertises a 9 MiB object. The client
	// must reject on the declared size — the body is never buffered.
	w := e.NewWorld()
	w.ChildStore.Put("huge.roa", bytes.Repeat([]byte{0xAB}, repo.MaxObjectSize+(1<<20)))
	client := w.Client(ClientOpts{})
	res := w.Sync(w.NewRP(rp.Config{Fetcher: client}))

	e.AssertTerminal(res, obs.HealthDegraded)
	if len(res.VRPs) != 0 {
		e.Failf("point serving an oversized object must not contribute VRPs, got %d", len(res.VRPs))
	}
	e.RequireEvent(obs.EventDiagnostic)
}

func runGiantManifest(e *Env) {
	// Decoder layer: a manifest declaring MaxFileList+1 entries is rejected
	// by count, whatever its byte size.
	m := &manifest.Manifest{Number: big.NewInt(1), ThisUpdate: Epoch, NextUpdate: Epoch.Add(time.Hour)}
	m.Entries = make([]manifest.Entry, manifest.MaxFileList+1)
	for i := range m.Entries {
		m.Entries[i].Name = fmt.Sprintf("o%06d.roa", i)
	}
	der, err := m.MarshalContent()
	if err != nil {
		e.Fatalf("marshal giant manifest: %v", err)
	}
	if _, err := manifest.UnmarshalContent(der); err == nil || !strings.Contains(err.Error(), "fileList entries exceeds") {
		e.Failf("giant fileList must be rejected by count, got err = %v", err)
	}

	// RP layer: the child's manifest is replaced with garbage. BestEffort
	// must report the missing manifest and still admit the independently
	// valid ROA — degraded, not truncated.
	w := e.NewWorld()
	w.ChildStore.Put(w.Child.ManifestFileName(), []byte("not a manifest"))
	res := w.Sync(w.NewRP(rp.Config{Fetcher: w.Client(ClientOpts{})}))
	e.AssertTerminal(res, obs.HealthDegraded)
	if len(res.VRPs) != 1 {
		e.Failf("BestEffort must keep the independently valid ROA, got %d VRPs", len(res.VRPs))
	}
	e.RequireEvent(obs.EventDiagnostic)
}

// wrapSeq wraps der in one ASN.1 SEQUENCE with a correct definite length.
func wrapSeq(der []byte) []byte {
	n := len(der)
	var hdr []byte
	switch {
	case n < 0x80:
		hdr = []byte{0x30, byte(n)}
	case n < 0x100:
		hdr = []byte{0x30, 0x81, byte(n)}
	case n < 0x10000:
		hdr = []byte{0x30, 0x82, byte(n >> 8), byte(n)}
	default:
		hdr = []byte{0x30, 0x83, byte(n >> 16), byte(n >> 8), byte(n)}
	}
	return append(hdr, der...)
}

func runCMSNestingBomb(e *Env) {
	// Decoder layer: 8000 nested SEQUENCEs. The parser must return an
	// error — promptly, without exhausting the stack.
	bomb := []byte{0x05, 0x00} // inner NULL
	for i := 0; i < 8000; i++ {
		bomb = wrapSeq(bomb)
	}
	if _, err := cms.Parse(bomb); err == nil {
		e.Failf("cms.Parse accepted an %d-deep nesting bomb", 8000)
	}
	if _, err := roa.ParseSigned(bomb); err == nil {
		e.Failf("roa.ParseSigned accepted the nesting bomb")
	}

	// RP layer: the bomb served in place of the ROA fails the manifest
	// hash before its bytes ever reach the CMS decoder.
	w := e.NewWorld()
	w.ChildStore.Put("r.roa", bomb)
	res := w.Sync(w.NewRP(rp.Config{Fetcher: w.Client(ClientOpts{})}))
	e.AssertTerminal(res, obs.HealthDegraded)
	if len(res.VRPs) != 0 {
		e.Failf("bombed ROA must not validate, got %d VRPs", len(res.VRPs))
	}
	e.RequireEvent(obs.EventDiagnostic)
}

func runRFC3779Blowup(e *Env) {
	// Decoder layer: both resource-extension decoders refuse input past
	// MaxExtensionSize before any DER work.
	blob := bytes.Repeat([]byte{0x30}, rfc3779.MaxExtensionSize+1)
	if _, err := rfc3779.UnmarshalIPAddrBlocks(blob); err == nil {
		e.Failf("UnmarshalIPAddrBlocks accepted an oversized extension")
	}
	if _, err := rfc3779.UnmarshalASIdentifiers(blob); err == nil {
		e.Failf("UnmarshalASIdentifiers accepted an oversized extension")
	}

	// RP layer: the child CA certificate is replaced with garbage. The
	// damage must be confined to the attacker's own subtree: the TA module
	// still validates, the child's VRPs vanish, the RP reports degraded.
	w := e.NewWorld()
	w.TAStore.Put(w.Child.CertFileName(), blob[:4096])
	res := w.Sync(w.NewRP(rp.Config{Fetcher: w.Client(ClientOpts{})}))
	e.AssertTerminal(res, obs.HealthDegraded)
	if len(res.VRPs) != 0 {
		e.Failf("subtree under a garbage CA cert must drop, got %d VRPs", len(res.VRPs))
	}
	if res.CertsAccepted < 1 {
		e.Failf("the trust anchor itself must still validate")
	}
	e.RequireEvent(obs.EventDiagnostic)
}
