// Package core implements the paper's contribution: the analysis and
// mechanics of RPKI authority misbehavior. It plans and executes targeted
// "whacks" — manipulations that make a chosen descendant ROA invalid — with
// exact accounting of collateral damage and of the suspicious objects a
// monitor could detect; and it closes the paper's Figure 1 loop by
// simulating how transient RPKI faults become persistent routing failures
// through the RPKI↔BGP circular dependency.
//
// Terminology follows the paper: a manipulator "whacks" a target ROA,
// whatever the method. Methods are ordered from bluntest to most surgical:
//
//   - Revoke: revoke the RC of the subtree containing the target
//     (Side Effect 1). Transparent, maximal collateral.
//   - Delete: remove the target from the manipulator's own repository
//     (Side Effect 2). Stealthy, zero collateral, only for the
//     manipulator's own ROAs.
//   - Shrink: overwrite the target's parent RC with the target's address
//     space carved out (Side Effect 3). Stealthy, zero collateral when the
//     carved hole overlaps nothing else.
//   - MakeBeforeBreak: when the hole would damage siblings, first reissue
//     them under the manipulator, then shrink (Figure 3). Leaves
//     suspiciously-reissued objects.
//   - DeepWhack: target below grandchild level; every authority on the
//     path loses the hole, so each needs a replacement RC issued for its
//     existing key, plus make-before-break for damaged siblings at every
//     level (Side Effect 4). The most detectable.
package core

import (
	"fmt"
	"strings"

	"repro/internal/ca"
	"repro/internal/ipres"
	"repro/internal/roa"
)

// Method identifies a whacking technique.
type Method uint8

const (
	// MethodDelete removes the manipulator's own ROA (stealthy).
	MethodDelete Method = iota
	// MethodRevokeOwnROA revokes the manipulator's own ROA via CRL.
	MethodRevokeOwnROA
	// MethodRevokeSubtree revokes the child RC containing the target.
	MethodRevokeSubtree
	// MethodShrink overwrites the target's parent RC without the target's
	// space, no other object affected.
	MethodShrink
	// MethodMakeBeforeBreak reissues damaged siblings, then shrinks.
	MethodMakeBeforeBreak
	// MethodDeepWhack shrinks across 2+ levels with replacement RCs.
	MethodDeepWhack
)

func (m Method) String() string {
	switch m {
	case MethodDelete:
		return "delete"
	case MethodRevokeOwnROA:
		return "revoke-own-roa"
	case MethodRevokeSubtree:
		return "revoke-subtree"
	case MethodShrink:
		return "shrink"
	case MethodMakeBeforeBreak:
		return "make-before-break"
	case MethodDeepWhack:
		return "deep-whack"
	}
	return fmt.Sprintf("Method(%d)", uint8(m))
}

// Target identifies a ROA to whack: the authority that issued it and its
// name at that authority.
type Target struct {
	Holder *ca.Authority
	Name   string
}

// ROARef describes a ROA for reporting.
type ROARef struct {
	Holder string // issuing authority name
	Name   string // object name
	ROA    string // rendered "(prefix, AS)" form
}

// StepKind enumerates executable plan steps.
type StepKind uint8

const (
	// StepDeleteROA deletes the manipulator's own ROA.
	StepDeleteROA StepKind = iota
	// StepRevokeROA revokes the manipulator's own ROA.
	StepRevokeROA
	// StepRevokeChild revokes a direct child RC.
	StepRevokeChild
	// StepReissueROA issues a copy of a descendant's ROA under the
	// manipulator ("make-before-break").
	StepReissueROA
	// StepReplacementRC issues a replacement RC for a descendant's key
	// with shrunken resources (deep whack).
	StepReplacementRC
	// StepShrinkChild overwrites a direct child RC with shrunken resources.
	StepShrinkChild
)

func (k StepKind) String() string {
	switch k {
	case StepDeleteROA:
		return "delete-roa"
	case StepRevokeROA:
		return "revoke-roa"
	case StepRevokeChild:
		return "revoke-child"
	case StepReissueROA:
		return "reissue-roa"
	case StepReplacementRC:
		return "replacement-rc"
	case StepShrinkChild:
		return "shrink-child"
	}
	return fmt.Sprintf("StepKind(%d)", uint8(k))
}

// Step is one executable action of a plan.
type Step struct {
	Kind StepKind
	// Subject names the object or authority acted upon.
	Subject string
	// Authority is the descendant authority for replacement-RC steps.
	Authority *ca.Authority
	// Resources is the new resource set for shrink/replacement steps.
	Resources ipres.Set
	// ROA is the ROA content for reissue steps.
	ROA *roa.ROA
	// Detail is a human-readable explanation.
	Detail string
}

// Plan is a fully analyzed whack plan.
type Plan struct {
	// Method is the chosen technique.
	Method Method
	// Manipulator is the acting authority.
	Manipulator string
	// Target is the ROA being whacked.
	Target ROARef
	// Hole is the address space carved out (shrink-family methods).
	Hole ipres.Set
	// Steps are the executable actions, in order.
	Steps []Step
	// Collateral lists OTHER ROAs that become invalid as a side effect.
	Collateral []ROARef
	// Reissued lists the suspicious objects the plan creates (reissued
	// ROAs and replacement RCs) — the monitor-visible footprint.
	Reissued []string
	// CRLVisible reports whether the plan leaves a trace on any CRL.
	CRLVisible bool
	// Depth is the number of RC hops from manipulator to the target's
	// issuer (0 = own ROA, 1 = grandchild ROA, ...).
	Depth int
}

// Detectability summarizes the plan's monitor-visible footprint: the count
// of suspicious artifacts (CRL entries count as 1, each reissued object as
// 1). Zero means the whack is indistinguishable from routine churn without
// cross-repository correlation.
func (p *Plan) Detectability() int {
	n := len(p.Reissued)
	if p.CRLVisible {
		n++
	}
	return n
}

// String renders a readable summary.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan[%s] %s whacks %s %s (depth %d)\n", p.Method, p.Manipulator, p.Target.Holder, p.Target.ROA, p.Depth)
	if !p.Hole.IsEmpty() {
		fmt.Fprintf(&sb, "  hole: %v\n", p.Hole)
	}
	for i, s := range p.Steps {
		fmt.Fprintf(&sb, "  step %d: %s %s — %s\n", i+1, s.Kind, s.Subject, s.Detail)
	}
	fmt.Fprintf(&sb, "  collateral: %d, reissued: %d, CRL-visible: %v\n", len(p.Collateral), len(p.Reissued), p.CRLVisible)
	return sb.String()
}
