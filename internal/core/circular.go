package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bgp"
	"repro/internal/ipres"
	"repro/internal/repo"
	"repro/internal/rov"
	"repro/internal/rp"
)

// RepoSite places a publication point inside the routed Internet: the
// module is served at Addr, which sits inside RoutePrefix originated by
// OriginAS. Retrieving the module's objects requires a usable BGP route for
// that prefix — the root of the paper's Side Effect 7 circularity when the
// ROA authorizing the route is itself stored in the module.
type RepoSite struct {
	Module      string
	Addr        ipres.Addr
	RoutePrefix ipres.Prefix
	OriginAS    ipres.ASN
}

// Route returns the BGP route whose validity gates access to the site.
func (s RepoSite) Route() rov.Route {
	return rov.Route{Prefix: s.RoutePrefix, Origin: s.OriginAS}
}

// DependencyEdge records that validating module From's availability
// depends on an object published in module To.
type DependencyEdge struct {
	From, To string
}

// FindCircularDependencies detects publication points whose route validity
// depends on ROAs stored in themselves or in a cycle of repositories. The
// vrpsByModule map gives, for each module, the VRPs of ROAs *stored* there.
// Returned cycles are lists of module names; a single-element cycle is the
// paper's exact example (a repository hosting the ROA for its own route).
func FindCircularDependencies(sites map[string]RepoSite, vrpsByModule map[string][]rov.VRP) [][]string {
	// Build edges: From needs To if some VRP stored in To matches From's
	// route (it is a matching ROA that keeps the route valid).
	adj := make(map[string][]string)
	for from, site := range sites {
		route := site.Route()
		for to, vrps := range vrpsByModule {
			for _, v := range vrps {
				if v.Matches(route) {
					adj[from] = append(adj[from], to)
					break
				}
			}
		}
	}
	// Find elementary cycles with a bounded DFS (graphs here are tiny).
	var cycles [][]string
	seenCycle := make(map[string]bool)
	modules := make([]string, 0, len(sites))
	for m := range sites {
		modules = append(modules, m)
	}
	sort.Strings(modules)
	for _, start := range modules {
		var path []string
		onPath := make(map[string]bool)
		var dfs func(cur string)
		dfs = func(cur string) {
			path = append(path, cur)
			onPath[cur] = true
			for _, next := range adj[cur] {
				if next == start {
					cycle := append([]string(nil), path...)
					key := canonicalCycleKey(cycle)
					if !seenCycle[key] {
						seenCycle[key] = true
						cycles = append(cycles, cycle)
					}
					continue
				}
				if !onPath[next] && next > start { // canonical start = smallest
					dfs(next)
				}
			}
			path = path[:len(path)-1]
			delete(onPath, cur)
		}
		dfs(start)
	}
	return cycles
}

func canonicalCycleKey(cycle []string) string {
	// Rotate so the smallest element is first.
	min := 0
	for i, m := range cycle {
		if m < cycle[min] {
			min = i
		}
	}
	key := ""
	for i := range cycle {
		key += cycle[(min+i)%len(cycle)] + "→"
	}
	return key
}

// CorruptingFetcher wraps a Fetcher with per-object corruption faults,
// modeling the transient delivery errors of Side Effect 6/7 for in-process
// experiments. It is safe for concurrent use.
type CorruptingFetcher struct {
	Inner rp.Fetcher

	mu      sync.Mutex
	corrupt map[string]map[string]bool
	drop    map[string]map[string]bool
}

// NewCorruptingFetcher wraps inner with no faults.
func NewCorruptingFetcher(inner rp.Fetcher) *CorruptingFetcher {
	return &CorruptingFetcher{
		Inner:   inner,
		corrupt: make(map[string]map[string]bool),
		drop:    make(map[string]map[string]bool),
	}
}

// Corrupt makes the named object arrive bit-flipped.
func (f *CorruptingFetcher) Corrupt(module, name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.corrupt[module] == nil {
		f.corrupt[module] = make(map[string]bool)
	}
	f.corrupt[module][name] = true
}

// Drop makes the named object vanish from fetches.
func (f *CorruptingFetcher) Drop(module, name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.drop[module] == nil {
		f.drop[module] = make(map[string]bool)
	}
	f.drop[module][name] = true
}

// Heal clears all faults for a module ("" clears everything).
func (f *CorruptingFetcher) Heal(module string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if module == "" {
		f.corrupt = make(map[string]map[string]bool)
		f.drop = make(map[string]map[string]bool)
		return
	}
	delete(f.corrupt, module)
	delete(f.drop, module)
}

// FetchAll implements rp.Fetcher, applying the configured faults.
func (f *CorruptingFetcher) FetchAll(ctx context.Context, uri repo.URI) (map[string][]byte, error) {
	files, err := f.Inner.FetchAll(ctx, uri)
	if err != nil {
		return files, err
	}
	f.mu.Lock()
	corrupt := f.corrupt[uri.Module]
	drop := f.drop[uri.Module]
	f.mu.Unlock()
	if len(corrupt) == 0 && len(drop) == 0 {
		return files, nil
	}
	out := make(map[string][]byte, len(files))
	for name, content := range files {
		if drop[name] {
			continue
		}
		if corrupt[name] {
			bad := append([]byte(nil), content...)
			for i := range bad {
				if i%13 == 5 {
					bad[i] ^= 0x5A
				}
			}
			out[name] = bad
			continue
		}
		out[name] = content
	}
	return out, nil
}

// CircularSim couples a relying party, the repositories it fetches, and a
// BGP data plane whose validation state gates those very fetches — the
// full Figure 1 loop. Each Step performs one relying-party sync against the
// network state left by the previous step.
type CircularSim struct {
	// Anchors seed validation.
	Anchors []rp.TrustAnchor
	// Fetch retrieves repository contents (typically a CorruptingFetcher
	// over a StoreFetcher).
	Fetch rp.Fetcher
	// Sites places each module in the network.
	Sites map[string]RepoSite
	// Network is the BGP topology (must already contain the originations
	// for every site's RoutePrefix).
	Network *bgp.Network
	// RPAS is the AS where the relying party (and its router) sits.
	RPAS ipres.ASN
	// Clock supplies validation time.
	Clock func() time.Time
	// Policy is the RP's missing-information policy.
	Policy rp.MissingPolicy
	// PostSync, if set, transforms the validated cache after each sync
	// before it takes effect — the hook for fail-safe layers such as
	// internal/suspenders.
	PostSync func(vrps []rov.VRP) []rov.VRP
	// StaleTTL, when positive, enables the relying party's last-known-good
	// fallback across steps: a publication point gated off by its own route
	// (the Side Effect 7 circularity) is served from its last cleanly
	// validated snapshot for at most StaleTTL, so a transient fault no
	// longer latches permanently. 0 keeps the brittle paper behavior.
	StaleTTL time.Duration

	// relying is the persistent relying party driving every step (created on
	// the first Step). Persistence is what lets the LKG store survive from
	// one sync to the next.
	relying *rp.RelyingParty
	// report is the CURRENT step's report, written by the gated fetcher.
	report *StepReport

	// lastVRPs is the validated cache from the previous step; it
	// determines reachability during the CURRENT step.
	lastVRPs []rov.VRP
	// started flips after the first sync; the bootstrap sync is ungated
	// (an RP with an empty cache treats every route as unknown).
	started   bool
	bootstrap bool
	// overrides lists modules manually whitelisted by the operator (the
	// paper notes recovery "can be fixed manually, but there are no
	// recommended procedures").
	overrides map[string]bool
}

// StepReport summarizes one sync round.
type StepReport struct {
	// Unreachable lists modules whose fetch was blocked by route validity.
	Unreachable []string
	// VRPCount is the size of the validated cache after the step.
	VRPCount int
	// StaleFallbacks counts publication points served from the relying
	// party's last-known-good store this step (always 0 with StaleTTL 0).
	StaleFallbacks int
	// Diagnostics carries the RP's diagnostics.
	Diagnostics []rp.Diagnostic
}

// ManualOverride whitelists a module, modeling out-of-band operator
// intervention (e.g. a static route or manual rsync).
func (s *CircularSim) ManualOverride(module string, on bool) {
	if s.overrides == nil {
		s.overrides = make(map[string]bool)
	}
	s.overrides[module] = on
}

// VRPs returns the current validated cache.
func (s *CircularSim) VRPs() []rov.VRP { return s.lastVRPs }

// gatedFetcher blocks fetches to modules whose route the relying party's
// router cannot currently use. It records unreachable modules on the sim's
// current step report (safe: the sim pins Workers to 1).
type gatedFetcher struct {
	sim *CircularSim
}

// FetchAll implements rp.Fetcher.
func (g gatedFetcher) FetchAll(ctx context.Context, uri repo.URI) (map[string][]byte, error) {
	site, known := g.sim.Sites[uri.Module]
	if known && !g.sim.bootstrap && !g.sim.overrides[uri.Module] {
		ok, err := g.sim.Network.CanReach(g.sim.RPAS, site.Addr, site.OriginAS)
		if err != nil {
			return nil, err
		}
		if !ok {
			g.sim.report.Unreachable = append(g.sim.report.Unreachable, uri.Module)
			return nil, fmt.Errorf("core: repository %s at %v unreachable (no usable route)", uri.Module, site.Addr)
		}
	}
	return g.sim.Fetch.FetchAll(ctx, uri)
}

// Step runs one relying-party sync with reachability gated on the previous
// step's validated cache, then installs the new cache into the network.
// The first Step bootstraps ungated (a fresh relying party with an empty
// cache treats every route as unknown, hence usable).
func (s *CircularSim) Step(ctx context.Context) (*StepReport, error) {
	report := &StepReport{}
	if !s.started {
		s.bootstrap = true
	}
	// Install the previous cache into the network so reachability during
	// this step reflects the router's current validation state.
	s.Network.SetSharedIndex(rov.NewIndex(s.lastVRPs...))
	if err := s.Network.Converge(); err != nil {
		return nil, err
	}
	// The relying party persists across steps — required for the
	// last-known-good store (and the verification cache) to carry state from
	// one sync to the next. Workers is pinned to 1: the gated fetcher
	// consults the BGP network and records unreachable modules on the step
	// report, neither of which is synchronized for concurrent fetches — and
	// the timeline experiment models one sequential sync per tick anyway.
	if s.relying == nil {
		s.relying = rp.New(rp.Config{
			Fetcher:  gatedFetcher{sim: s},
			Clock:    s.Clock,
			Policy:   s.Policy,
			Workers:  1,
			StaleTTL: s.StaleTTL,
		}, s.Anchors...)
	}
	s.report = report
	result, err := s.relying.Sync(ctx)
	if err != nil {
		return nil, err
	}
	s.bootstrap = false
	s.started = true
	vrps := result.VRPs
	if s.PostSync != nil {
		vrps = s.PostSync(vrps)
	}
	s.lastVRPs = vrps
	report.VRPCount = len(s.lastVRPs)
	report.StaleFallbacks = result.StaleFallbacks
	report.Diagnostics = result.Diagnostics
	// The new cache takes effect for the data plane going forward.
	s.Network.SetSharedIndex(rov.NewIndex(s.lastVRPs...))
	if err := s.Network.Converge(); err != nil {
		return nil, err
	}
	sort.Strings(report.Unreachable)
	return report, nil
}

// RouteState reports the current validation state of a site's route under
// the simulator's cache.
func (s *CircularSim) RouteState(module string) (rov.State, error) {
	site, ok := s.Sites[module]
	if !ok {
		return rov.Unknown, fmt.Errorf("core: unknown module %q", module)
	}
	ix := rov.NewIndex(s.lastVRPs...)
	return ix.State(site.Route()), nil
}
