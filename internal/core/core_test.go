package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/ca"
	"repro/internal/ipres"
	"repro/internal/repo"
	"repro/internal/roa"
	"repro/internal/rov"
	"repro/internal/rp"
)

var testEpoch = time.Date(2013, 11, 21, 0, 0, 0, 0, time.UTC)

func clock() time.Time { return testEpoch }

type fixture struct {
	arin, sprint, etb, continental *ca.Authority
	stores                         rp.StoreFetcher
}

// newFigure2 builds the paper's model RPKI (Figure 2) with Sprint's
// covering ROA from Figure 5 (right) included when withSprintCover is set.
func newFigure2(t *testing.T, withSprintCover bool) *fixture {
	t.Helper()
	cfg := ca.Config{Clock: clock}
	f := &fixture{stores: rp.StoreFetcher{}}
	newStore := func(module string) (*repo.Store, repo.URI) {
		s := repo.NewStore()
		f.stores[module] = s
		return s, repo.URI{Host: module + ".example:8873", Module: module}
	}
	var err error
	taStore, taURI := newStore("arin")
	f.arin, err = ca.NewTrustAnchor("arin", ipres.MustParseSet("63.0.0.0/8"), taStore, taURI, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sprintStore, sprintURI := newStore("sprint")
	f.sprint, err = f.arin.CreateChild("sprint", ipres.MustParseSet("63.160.0.0/12"), sprintStore, sprintURI)
	if err != nil {
		t.Fatal(err)
	}
	etbStore, etbURI := newStore("etb")
	f.etb, err = f.sprint.CreateChild("etb", ipres.MustParseSet("63.161.0.0/16"), etbStore, etbURI)
	if err != nil {
		t.Fatal(err)
	}
	contStore, contURI := newStore("continental")
	f.continental, err = f.sprint.CreateChild("continental", ipres.MustParseSet("63.174.16.0/20"), contStore, contURI)
	if err != nil {
		t.Fatal(err)
	}
	mustROA := func(a *ca.Authority, name string, asn ipres.ASN, prefix string) {
		t.Helper()
		if _, err := a.IssueROA(name, asn, roa.MustParsePrefix(prefix)); err != nil {
			t.Fatal(err)
		}
	}
	mustROA(f.sprint, "sprint-168", 1239, "63.168.0.0/16-24")
	mustROA(f.sprint, "sprint-170", 1239, "63.170.0.0/16-24")
	if withSprintCover {
		mustROA(f.sprint, "sprint-cover", 1239, "63.160.0.0/12-13")
	}
	mustROA(f.etb, "etb", 19429, "63.161.0.0/16")
	mustROA(f.continental, "cont-20", 17054, "63.174.16.0/20")
	mustROA(f.continental, "cont-22", 7341, "63.174.16.0/22")
	mustROA(f.continental, "cont-20-24", 26821, "63.174.20.0/22-24")
	mustROA(f.continental, "cont-25", 17054, "63.174.25.0/24")
	mustROA(f.continental, "cont-26", 17054, "63.174.26.0/23")
	return f
}

func (f *fixture) sync(t *testing.T) *rp.Result {
	t.Helper()
	relying := rp.New(rp.Config{Fetcher: f.stores, Clock: clock},
		rp.TrustAnchor{CertDER: f.arin.Cert.Raw, URI: f.arin.URI})
	result, err := relying.Sync(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return result
}

func state(t *testing.T, res *rp.Result, prefix string, asn ipres.ASN) rov.State {
	t.Helper()
	return res.Index().State(rov.Route{Prefix: ipres.MustParsePrefix(prefix), Origin: asn})
}

func TestPlanDeleteOwnROA(t *testing.T) {
	f := newFigure2(t, false)
	planner := &Planner{Manipulator: f.sprint}
	plan, err := planner.Plan(Target{Holder: f.sprint, Name: "sprint-168"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != MethodDelete || plan.Depth != 0 || plan.Detectability() != 0 {
		t.Fatalf("plan = %v", plan)
	}
	if err := planner.Execute(plan); err != nil {
		t.Fatal(err)
	}
	res := f.sync(t)
	if got := state(t, res, "63.168.0.0/16", 1239); got == rov.Valid {
		t.Errorf("deleted ROA's route still valid")
	}
	if res.Incomplete() {
		t.Errorf("stealthy delete must leave no diagnostics: %v", res.Diagnostics)
	}
}

func TestPlanCleanShrinkFindsPaperHole(t *testing.T) {
	// Sprint whacks (63.174.16.0/20, AS17054). The minimal free hole the
	// planner finds must be 63.174.24.0/24 — the exact hole from the
	// paper's Section 3.1 example.
	f := newFigure2(t, false)
	planner := &Planner{Manipulator: f.sprint}
	plan, err := planner.Plan(Target{Holder: f.continental, Name: "cont-20"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != MethodShrink {
		t.Fatalf("method = %v, want shrink; plan:\n%v", plan.Method, plan)
	}
	if plan.Hole.String() != "63.174.24.0/24" {
		t.Errorf("hole = %v, want 63.174.24.0/24", plan.Hole)
	}
	if plan.Detectability() != 0 || len(plan.Collateral) != 0 {
		t.Errorf("clean shrink should have zero footprint: %v", plan)
	}
	if err := planner.Execute(plan); err != nil {
		t.Fatal(err)
	}
	res := f.sync(t)
	if got := state(t, res, "63.174.16.0/20", 17054); got == rov.Valid {
		t.Error("target should be whacked")
	}
	// Zero collateral: every other ROA still valid.
	for _, probe := range []struct {
		prefix string
		asn    ipres.ASN
	}{
		{"63.174.16.0/22", 7341},
		{"63.174.21.0/24", 26821},
		{"63.174.25.0/24", 17054},
		{"63.174.26.0/23", 17054},
		{"63.161.0.0/16", 19429},
		{"63.168.0.0/16", 1239},
	} {
		if got := state(t, res, probe.prefix, probe.asn); got != rov.Valid {
			t.Errorf("collateral damage: (%s, %v) = %v", probe.prefix, probe.asn, got)
		}
	}
}

func TestPlanMakeBeforeBreakFigure3(t *testing.T) {
	// Sprint whacks (63.174.16.0/22, AS7341). No free hole exists (the
	// /20 ROA covers everything), so the plan must reissue the damaged
	// /20 ROA first — Figure 3.
	f := newFigure2(t, false)
	planner := &Planner{Manipulator: f.sprint}
	plan, err := planner.Plan(Target{Holder: f.continental, Name: "cont-22"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != MethodMakeBeforeBreak {
		t.Fatalf("method = %v, want make-before-break; plan:\n%v", plan.Method, plan)
	}
	if plan.Detectability() == 0 {
		t.Error("make-before-break must be detectable (reissued objects)")
	}
	// The reissue step must come before the shrink step.
	if plan.Steps[len(plan.Steps)-1].Kind != StepShrinkChild {
		t.Error("shrink must be the final (break) step")
	}
	if err := planner.Execute(plan); err != nil {
		t.Fatal(err)
	}
	res := f.sync(t)
	if got := state(t, res, "63.174.16.0/22", 7341); got != rov.Invalid {
		t.Errorf("target = %v, want invalid (covered by the reissued /20)", got)
	}
	// The /20 route survives via Sprint's reissued ROA.
	if got := state(t, res, "63.174.16.0/20", 17054); got != rov.Valid {
		t.Errorf("reissued /20 should keep the route valid, got %v", got)
	}
	// Off-hole ROAs untouched.
	if got := state(t, res, "63.174.25.0/24", 17054); got != rov.Valid {
		t.Errorf("collateral damage on /24: %v", got)
	}
}

func TestPlanDeepWhackGreatGrandchild(t *testing.T) {
	f := newFigure2(t, false)
	// Continental suballocates to smallco — a great-grandchild of ARIN,
	// grandchild of Sprint... and Sprint's target sits at depth 2.
	smallStore := repo.NewStore()
	f.stores["smallco"] = smallStore
	smallco, err := f.continental.CreateChild("smallco", ipres.MustParseSet("63.174.18.0/23"),
		smallStore, repo.URI{Host: "smallco.example:8873", Module: "smallco"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := smallco.IssueROA("small-a", 64501, roa.MustParsePrefix("63.174.18.0/24")); err != nil {
		t.Fatal(err)
	}
	if _, err := smallco.IssueROA("small-b", 64502, roa.MustParsePrefix("63.174.19.0/24")); err != nil {
		t.Fatal(err)
	}

	planner := &Planner{Manipulator: f.sprint}
	plan, err := planner.Plan(Target{Holder: smallco, Name: "small-a"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != MethodDeepWhack || plan.Depth != 2 {
		t.Fatalf("plan = %v", plan)
	}
	// Deep whacks need more suspicious objects than grandchild whacks:
	// at least the replacement RC for smallco, plus reissues for the
	// overlapping /20 and /22 ROAs at the continental level.
	if plan.Detectability() < 2 {
		t.Errorf("deep whack detectability = %d, want >= 2;\n%v", plan.Detectability(), plan)
	}
	if err := planner.Execute(plan); err != nil {
		t.Fatal(err)
	}
	res := f.sync(t)
	if got := state(t, res, "63.174.18.0/24", 64501); got == rov.Valid {
		t.Error("deep target should be whacked")
	}
	// Sibling at the same level survives (reissued or untouched).
	if got := state(t, res, "63.174.19.0/24", 64502); got != rov.Valid {
		t.Errorf("sibling small-b = %v, want valid", got)
	}
	// Continental's own ROAs survive (reissued where needed).
	for _, probe := range []struct {
		prefix string
		asn    ipres.ASN
	}{
		{"63.174.16.0/20", 17054},
		{"63.174.25.0/24", 17054},
	} {
		if got := state(t, res, probe.prefix, probe.asn); got != rov.Valid {
			t.Errorf("(%s, %v) = %v, want valid", probe.prefix, probe.asn, got)
		}
	}
}

func TestPlanRevokeSubtreeCollateral(t *testing.T) {
	f := newFigure2(t, false)
	planner := &Planner{Manipulator: f.sprint}
	plan, err := planner.PlanRevokeSubtree(Target{Holder: f.continental, Name: "cont-20"})
	if err != nil {
		t.Fatal(err)
	}
	// "this would whack four additional ROAs as collateral damage"
	if len(plan.Collateral) != 4 {
		t.Errorf("collateral = %d ROAs, want 4 (the paper's count)", len(plan.Collateral))
	}
	if !plan.CRLVisible {
		t.Error("revocation must be CRL-visible")
	}
	if err := planner.Execute(plan); err != nil {
		t.Fatal(err)
	}
	res := f.sync(t)
	for _, probe := range []struct {
		prefix string
		asn    ipres.ASN
	}{
		{"63.174.16.0/20", 17054},
		{"63.174.16.0/22", 7341},
		{"63.174.25.0/24", 17054},
	} {
		if got := state(t, res, probe.prefix, probe.asn); got == rov.Valid {
			t.Errorf("(%s, %v) should be whacked with the subtree", probe.prefix, probe.asn)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	f := newFigure2(t, false)
	planner := &Planner{Manipulator: f.continental}
	// Continental is NOT an ancestor of sprint.
	if _, err := planner.Plan(Target{Holder: f.sprint, Name: "sprint-168"}); err == nil {
		t.Error("non-ancestor must fail")
	}
	if _, err := planner.Plan(Target{Holder: f.sprint, Name: "no-such"}); err == nil {
		t.Error("unknown ROA must fail")
	}
}

func TestFindCircularDependencies(t *testing.T) {
	sites := map[string]RepoSite{
		"continental": {
			Module:      "continental",
			Addr:        ipres.MustParseAddr("63.174.23.10"),
			RoutePrefix: ipres.MustParsePrefix("63.174.16.0/20"),
			OriginAS:    17054,
		},
		"sprint": {
			Module:      "sprint",
			Addr:        ipres.MustParseAddr("63.168.0.10"),
			RoutePrefix: ipres.MustParsePrefix("63.168.0.0/16"),
			OriginAS:    1239,
		},
	}
	vrps := map[string][]rov.VRP{
		"continental": {{Prefix: ipres.MustParsePrefix("63.174.16.0/20"), MaxLength: 20, ASN: 17054}},
		"sprint":      {{Prefix: ipres.MustParsePrefix("63.168.0.0/16"), MaxLength: 24, ASN: 1239}},
	}
	cycles := FindCircularDependencies(sites, vrps)
	// Both repos host their own matching ROA: two self-loops.
	if len(cycles) != 2 {
		t.Fatalf("cycles = %v", cycles)
	}
	for _, c := range cycles {
		if len(c) != 1 {
			t.Errorf("expected self-loop, got %v", c)
		}
	}
	// Cross-cycle: A's ROA in B and B's ROA in A.
	vrps2 := map[string][]rov.VRP{
		"continental": vrps["sprint"],
		"sprint":      vrps["continental"],
	}
	cycles = FindCircularDependencies(sites, vrps2)
	if len(cycles) != 1 || len(cycles[0]) != 2 {
		t.Errorf("want one 2-cycle, got %v", cycles)
	}
}

// buildCircularWorld wires the Figure 2 hierarchy (with Sprint's covering
// ROA) into a BGP topology where Continental self-hosts its repository at
// 63.174.23.0 — the paper's Side Effect 7 configuration.
func buildCircularWorld(t *testing.T) (*fixture, *CircularSim, *CorruptingFetcher) {
	t.Helper()
	f := newFigure2(t, true)

	n := bgp.NewNetwork()
	const (
		rpAS       = ipres.ASN(64999)
		providerAS = ipres.ASN(3356)
		contAS     = ipres.ASN(17054)
	)
	for _, asn := range []ipres.ASN{rpAS, providerAS, contAS} {
		n.AddAS(asn, bgp.PolicyDropInvalid)
	}
	if err := n.ProviderOf(providerAS, rpAS); err != nil {
		t.Fatal(err)
	}
	if err := n.ProviderOf(providerAS, contAS); err != nil {
		t.Fatal(err)
	}
	if err := n.Originate(contAS, ipres.MustParsePrefix("63.174.16.0/20")); err != nil {
		t.Fatal(err)
	}

	corrupting := NewCorruptingFetcher(f.stores)
	sim := &CircularSim{
		Anchors: []rp.TrustAnchor{{CertDER: f.arin.Cert.Raw, URI: f.arin.URI}},
		Fetch:   corrupting,
		Sites: map[string]RepoSite{
			"continental": {
				Module:      "continental",
				Addr:        ipres.MustParseAddr("63.174.23.0"),
				RoutePrefix: ipres.MustParsePrefix("63.174.16.0/20"),
				OriginAS:    contAS,
			},
		},
		Network: n,
		RPAS:    rpAS,
		Clock:   clock,
	}
	return f, sim, corrupting
}

func TestSideEffect7TransientFaultPersists(t *testing.T) {
	_, sim, corrupting := buildCircularWorld(t)
	ctx := context.Background()

	// Step 1: bootstrap — everything reachable, full cache.
	rep, err := sim.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unreachable) != 0 {
		t.Fatalf("bootstrap unreachable: %v", rep.Unreachable)
	}
	s, _ := sim.RouteState("continental")
	if s != rov.Valid {
		t.Fatalf("repo route should start valid, got %v", s)
	}

	// Step 2: transient fault — the ROA for the repo's own route arrives
	// corrupted. The corrupted ROA is a missing ROA (Side Effect 6).
	corrupting.Corrupt("continental", "cont-20.roa")
	if _, err := sim.Step(ctx); err != nil {
		t.Fatal(err)
	}
	s, _ = sim.RouteState("continental")
	if s != rov.Invalid {
		t.Fatalf("after corruption, route = %v, want invalid (covered by Sprint's /12-13 ROA)", s)
	}

	// Step 3: the fault is FIXED — but the relying party can no longer
	// reach the repository to learn that. The failure persists.
	corrupting.Heal("continental")
	rep, err = sim.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unreachable) != 1 || rep.Unreachable[0] != "continental" {
		t.Fatalf("repo should be unreachable, got %v", rep.Unreachable)
	}
	s, _ = sim.RouteState("continental")
	if s != rov.Invalid {
		t.Fatalf("persistent failure expected, route = %v", s)
	}

	// Step 4: still stuck — the circularity does not self-heal.
	rep, _ = sim.Step(ctx)
	if len(rep.Unreachable) != 1 {
		t.Fatal("failure should persist indefinitely")
	}

	// Step 5: manual operator intervention breaks the cycle.
	sim.ManualOverride("continental", true)
	rep, err = sim.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unreachable) != 0 {
		t.Fatalf("override should restore fetching, got %v", rep.Unreachable)
	}
	s, _ = sim.RouteState("continental")
	if s != rov.Valid {
		t.Fatalf("after manual fix, route = %v, want valid", s)
	}

	// Step 6: the override can be removed; the system is self-consistent
	// again.
	sim.ManualOverride("continental", false)
	rep, _ = sim.Step(ctx)
	if len(rep.Unreachable) != 0 {
		t.Error("recovered system should stay recovered")
	}
}

func TestSideEffect7DeprefAvoidsPersistence(t *testing.T) {
	// The same fault under depref-invalid routers: the repository stays
	// reachable (invalid routes are still usable), so the fault heals on
	// the next sync — the other side of the paper's Table 6 tradeoff.
	_, sim, corrupting := buildCircularWorld(t)
	for _, asn := range sim.Network.ASes() {
		if err := sim.Network.SetPolicy(asn, bgp.PolicyDeprefInvalid); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	if _, err := sim.Step(ctx); err != nil {
		t.Fatal(err)
	}
	corrupting.Corrupt("continental", "cont-20.roa")
	if _, err := sim.Step(ctx); err != nil {
		t.Fatal(err)
	}
	s, _ := sim.RouteState("continental")
	if s != rov.Invalid {
		t.Fatalf("route should be invalid after fault, got %v", s)
	}
	corrupting.Heal("continental")
	rep, err := sim.Step(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unreachable) != 0 {
		t.Fatalf("depref keeps the repo reachable, got unreachable=%v", rep.Unreachable)
	}
	s, _ = sim.RouteState("continental")
	if s != rov.Valid {
		t.Fatalf("fault should self-heal under depref, route = %v", s)
	}
}

func TestPlanAndStepStrings(t *testing.T) {
	f := newFigure2(t, false)
	planner := &Planner{Manipulator: f.sprint}
	plan, err := planner.Plan(Target{Holder: f.continental, Name: "cont-22"})
	if err != nil {
		t.Fatal(err)
	}
	out := plan.String()
	for _, want := range []string{"make-before-break", "sprint whacks continental", "step 1", "reissue-roa"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan string missing %q:\n%s", want, out)
		}
	}
	for _, m := range []Method{MethodDelete, MethodRevokeOwnROA, MethodRevokeSubtree, MethodShrink, MethodMakeBeforeBreak, MethodDeepWhack} {
		if m.String() == "" || strings.Contains(m.String(), "Method(") {
			t.Errorf("method %d has bad string %q", m, m.String())
		}
	}
	for _, k := range []StepKind{StepDeleteROA, StepRevokeROA, StepRevokeChild, StepReissueROA, StepReplacementRC, StepShrinkChild} {
		if k.String() == "" || strings.Contains(k.String(), "StepKind(") {
			t.Errorf("step kind %d has bad string %q", k, k.String())
		}
	}
}

func TestCollateralOfHole(t *testing.T) {
	f := newFigure2(t, false)
	target := Target{Holder: f.continental, Name: "cont-22"}
	hole := ipres.MustParseSet("63.174.16.0/22")
	collateral := CollateralOfHole(f.continental, hole, target)
	// Only cont-20 (the /20 ROA) overlaps the /22 hole besides the target.
	if len(collateral) != 1 || collateral[0].Name != "cont-20" {
		t.Errorf("collateral = %v", collateral)
	}
	// The paper's clean hole damages nothing.
	clean := CollateralOfHole(f.continental, ipres.MustParseSet("63.174.24.0/24"),
		Target{Holder: f.continental, Name: "cont-20"})
	if len(clean) != 0 {
		t.Errorf("clean hole collateral = %v", clean)
	}
}

func TestCorruptingFetcherDrop(t *testing.T) {
	f := newFigure2(t, false)
	cf := NewCorruptingFetcher(f.stores)
	cf.Drop("continental", "cont-22.roa")
	files, err := cf.FetchAll(context.Background(), repo.URI{Module: "continental"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := files["cont-22.roa"]; ok {
		t.Error("dropped object should vanish")
	}
	if _, ok := files["cont-20.roa"]; !ok {
		t.Error("other objects should remain")
	}
	cf.Heal("")
	files, _ = cf.FetchAll(context.Background(), repo.URI{Module: "continental"})
	if _, ok := files["cont-22.roa"]; !ok {
		t.Error("healed object should return")
	}
}

func TestCircularSimVRPsAccessorAndErrors(t *testing.T) {
	_, sim, _ := buildCircularWorld(t)
	if _, err := sim.RouteState("nope"); err == nil {
		t.Error("unknown module must error")
	}
	if _, err := sim.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(sim.VRPs()) == 0 {
		t.Error("VRPs accessor empty after sync")
	}
}

func TestExecuteUnknownStep(t *testing.T) {
	f := newFigure2(t, false)
	planner := &Planner{Manipulator: f.sprint}
	bad := &Plan{Steps: []Step{{Kind: StepKind(99)}}}
	if err := planner.Execute(bad); err == nil {
		t.Error("unknown step kind must fail")
	}
	// Executing against missing objects fails cleanly.
	bad2 := &Plan{Steps: []Step{{Kind: StepDeleteROA, Subject: "ghost"}}}
	if err := planner.Execute(bad2); err == nil {
		t.Error("missing subject must fail")
	}
}

func TestPlanDeepWhackDepthThree(t *testing.T) {
	// The technical-report generalization: the target sits THREE RC hops
	// below the manipulator (ARIN whacks a ROA issued by smallco, a child
	// of continental, a grandchild of sprint). Every path RC below the
	// direct child needs a replacement, so detectability grows with depth.
	f := newFigure2(t, false)
	smallStore := repo.NewStore()
	f.stores["smallco"] = smallStore
	smallco, err := f.continental.CreateChild("smallco", ipres.MustParseSet("63.174.18.0/23"),
		smallStore, repo.URI{Host: "smallco.example:8873", Module: "smallco"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := smallco.IssueROA("small-a", 64501, roa.MustParsePrefix("63.174.18.0/24")); err != nil {
		t.Fatal(err)
	}
	if _, err := smallco.IssueROA("small-b", 64502, roa.MustParsePrefix("63.174.19.0/24")); err != nil {
		t.Fatal(err)
	}

	// Depth 2 plan (sprint) for comparison.
	sprintPlan, err := (&Planner{Manipulator: f.sprint}).Plan(Target{Holder: smallco, Name: "small-a"})
	if err != nil {
		t.Fatal(err)
	}
	// Depth 3 plan (arin).
	planner := &Planner{Manipulator: f.arin}
	plan, err := planner.Plan(Target{Holder: smallco, Name: "small-a"})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != MethodDeepWhack || plan.Depth != 3 {
		t.Fatalf("plan = %v", plan)
	}
	if plan.Detectability() <= sprintPlan.Detectability() {
		t.Errorf("depth-3 detectability %d should exceed depth-2's %d",
			plan.Detectability(), sprintPlan.Detectability())
	}
	if err := planner.Execute(plan); err != nil {
		t.Fatal(err)
	}
	res := f.sync(t)
	if got := state(t, res, "63.174.18.0/24", 64501); got == rov.Valid {
		t.Error("depth-3 target should be whacked")
	}
	if got := state(t, res, "63.174.19.0/24", 64502); got != rov.Valid {
		t.Errorf("sibling = %v, want valid", got)
	}
	// ETB (off-path under sprint) is untouched.
	if got := state(t, res, "63.161.0.0/16", 19429); got != rov.Valid {
		t.Errorf("ETB = %v, want valid", got)
	}
}

func TestCircularSimLKGBreaksFaultLatch(t *testing.T) {
	// The Side Effect 7 timeline again, but the relying party keeps
	// last-known-good snapshots: when the healed repository is gated off by
	// its own invalid route, the stale snapshot revalidates the route and
	// the loop self-heals — no manual override needed.
	_, sim, corrupting := buildCircularWorld(t)
	step := 0
	sim.Clock = func() time.Time { return testEpoch.Add(time.Duration(step) * 10 * time.Minute) }
	sim.StaleTTL = time.Hour
	ctx := context.Background()
	advance := func() *StepReport {
		t.Helper()
		rep, err := sim.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		step++
		return rep
	}

	advance() // bootstrap: clean snapshot committed
	corrupting.Corrupt("continental", "cont-20.roa")
	advance()
	if s, _ := sim.RouteState("continental"); s != rov.Invalid {
		t.Fatalf("after corruption, route = %v, want invalid", s)
	}

	// Fault fixed, repository unreachable — LKG bridges the gap with the
	// PRE-corruption snapshot (the dirty sync never overwrote it).
	corrupting.Heal("continental")
	rep := advance()
	if len(rep.Unreachable) != 1 || rep.Unreachable[0] != "continental" {
		t.Fatalf("repo should be unreachable this step, got %v", rep.Unreachable)
	}
	if rep.StaleFallbacks != 1 {
		t.Fatalf("StaleFallbacks = %d, want 1 (diags %v)", rep.StaleFallbacks, rep.Diagnostics)
	}
	if s, _ := sim.RouteState("continental"); s != rov.Valid {
		t.Fatalf("LKG should revalidate the route, got %v", s)
	}

	// With the route valid again the repository is reachable: the next sync
	// fetches fresh data and the system is fully recovered.
	rep = advance()
	if len(rep.Unreachable) != 0 || rep.StaleFallbacks != 0 {
		t.Fatalf("recovered step: unreachable=%v fallbacks=%d", rep.Unreachable, rep.StaleFallbacks)
	}
	if s, _ := sim.RouteState("continental"); s != rov.Valid {
		t.Fatalf("recovery should hold, got %v", s)
	}
}

func TestCircularSimLKGBoundedStaleness(t *testing.T) {
	// A TTL shorter than the outage: the snapshot expires mid-latch and the
	// failure persists — bounded staleness means LKG is a bridge, not a
	// permanent override (a coerced-offline authority cannot pin the cache).
	_, sim, corrupting := buildCircularWorld(t)
	step := 0
	sim.Clock = func() time.Time { return testEpoch.Add(time.Duration(step) * 10 * time.Minute) }
	sim.StaleTTL = 5 * time.Minute
	ctx := context.Background()
	advance := func() *StepReport {
		t.Helper()
		rep, err := sim.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		step++
		return rep
	}

	advance()
	corrupting.Corrupt("continental", "cont-20.roa")
	advance()
	corrupting.Heal("continental")
	rep := advance() // snapshot is 20 minutes old > 5 minute TTL
	if rep.StaleFallbacks != 0 {
		t.Fatalf("expired snapshot must not serve, fallbacks = %d", rep.StaleFallbacks)
	}
	if s, _ := sim.RouteState("continental"); s == rov.Valid {
		t.Fatal("with an expired snapshot the latch should persist")
	}
}
