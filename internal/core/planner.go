package core

import (
	"fmt"

	"repro/internal/ca"
	"repro/internal/ipres"
	"repro/internal/roa"
)

// Planner computes whack plans on behalf of a manipulating authority.
type Planner struct {
	// Manipulator is the acting (misbehaving) authority.
	Manipulator *ca.Authority
}

// pathTo returns the chain of authorities from the manipulator's direct
// child down to holder (inclusive), or nil if holder is not a strict
// descendant.
func (p *Planner) pathTo(holder *ca.Authority) []*ca.Authority {
	var rev []*ca.Authority
	for cur := holder; cur != nil; cur = cur.Parent {
		if cur == p.Manipulator {
			// reverse rev
			out := make([]*ca.Authority, len(rev))
			for i, a := range rev {
				out[len(rev)-1-i] = a
			}
			return out
		}
		rev = append(rev, cur)
	}
	return nil
}

func roaRef(holder *ca.Authority, name string) (ROARef, *roa.ROA, error) {
	r, ok := holder.ROA(name)
	if !ok {
		return ROARef{}, nil, fmt.Errorf("core: %s has no ROA %q", holder.Name, name)
	}
	return ROARef{Holder: holder.Name, Name: name, ROA: r.String()}, r, nil
}

// PlanRevokeSubtree plans the blunt whack: revoke the manipulator's direct
// child RC whose subtree contains the target. Collateral is every other
// ROA in that subtree.
func (p *Planner) PlanRevokeSubtree(t Target) (*Plan, error) {
	ref, _, err := roaRef(t.Holder, t.Name)
	if err != nil {
		return nil, err
	}
	path := p.pathTo(t.Holder)
	if path == nil {
		return nil, fmt.Errorf("core: %s is not an ancestor of %s", p.Manipulator.Name, t.Holder.Name)
	}
	top := path[0]
	plan := &Plan{
		Method:      MethodRevokeSubtree,
		Manipulator: p.Manipulator.Name,
		Target:      ref,
		Depth:       len(path),
		CRLVisible:  true,
		Steps: []Step{{
			Kind:    StepRevokeChild,
			Subject: top.Name,
			Detail:  fmt.Sprintf("revoke RC of %s, invalidating its whole subtree", top.Name),
		}},
	}
	plan.Collateral = subtreeROAs(top, func(h *ca.Authority, name string) bool {
		return h == t.Holder && name == t.Name
	})
	return plan, nil
}

// subtreeROAs collects every ROA in the subtree rooted at a, skipping those
// for which skip returns true.
func subtreeROAs(a *ca.Authority, skip func(*ca.Authority, string) bool) []ROARef {
	var out []ROARef
	for _, name := range a.ROAs() {
		if skip != nil && skip(a, name) {
			continue
		}
		r, _ := a.ROA(name)
		out = append(out, ROARef{Holder: a.Name, Name: name, ROA: r.String()})
	}
	for _, childName := range a.Children() {
		child, ok := a.Child(childName)
		if !ok {
			continue
		}
		out = append(out, subtreeROAs(child, skip)...)
	}
	return out
}

// Plan computes the most surgical plan available for whacking the target:
// delete (own ROA), clean shrink, make-before-break, or deep whack,
// depending on where the target sits and what the carved hole overlaps.
func (p *Planner) Plan(t Target) (*Plan, error) {
	ref, target, err := roaRef(t.Holder, t.Name)
	if err != nil {
		return nil, err
	}
	// Case 0: the manipulator's own ROA — just delete it (stealthy).
	if t.Holder == p.Manipulator {
		return &Plan{
			Method:      MethodDelete,
			Manipulator: p.Manipulator.Name,
			Target:      ref,
			Depth:       0,
			Steps: []Step{{
				Kind:    StepDeleteROA,
				Subject: t.Name,
				Detail:  "delete own ROA from repository; CRL untouched",
			}},
		}, nil
	}

	path := p.pathTo(t.Holder)
	if path == nil {
		return nil, fmt.Errorf("core: %s is not an ancestor of %s", p.Manipulator.Name, t.Holder.Name)
	}

	// Choose the hole. Invalidating the target only requires removing
	// SOME portion of the target ROA's space from the chain above it (the
	// EE certificate then overclaims, killing the whole ROA). The paper's
	// trick: pick a portion that overlaps no other object issued along the
	// path, and the whack has zero collateral. Only when no such portion
	// exists must the manipulator fall back to carving the full target
	// space and reissuing every damaged sibling (make-before-break).
	free := target.ResourceSet()
	for i, authority := range path {
		for _, name := range authority.ROAs() {
			if authority == t.Holder && name == t.Name {
				continue
			}
			r, _ := authority.ROA(name)
			free = free.Subtract(r.ResourceSet())
		}
		for _, childName := range authority.Children() {
			child, ok := authority.Child(childName)
			if !ok {
				continue
			}
			if i+1 < len(path) && child == path[i+1] {
				continue // the next path RC necessarily contains the target
			}
			free = free.Subtract(child.Resources())
		}
	}
	hole := target.ResourceSet()
	if !free.IsEmpty() {
		// Smallest footprint: one prefix out of the free space.
		hole = ipres.SetOfPrefixes(free.Prefixes()[0])
	}
	plan := &Plan{
		Manipulator: p.Manipulator.Name,
		Target:      ref,
		Depth:       len(path),
		Hole:        hole,
	}

	// Walk the path top-down. The top RC (manipulator's direct child) is
	// shrunk in place; deeper path RCs need manipulator-issued
	// replacements. At every level, non-path objects overlapping the hole
	// must be reissued (make-before-break) to avoid collateral damage.
	for i, authority := range path {
		isHolder := authority == t.Holder
		newRes := authority.Resources().Subtract(hole)

		// Damaged siblings at this level: ROAs overlapping the hole
		// (excluding the target itself at the holder level).
		for _, name := range authority.ROAs() {
			if isHolder && name == t.Name {
				continue
			}
			r, _ := authority.ROA(name)
			if r.ResourceSet().Overlaps(hole) {
				plan.Steps = append(plan.Steps, Step{
					Kind:    StepReissueROA,
					Subject: name,
					ROA:     r,
					Detail:  fmt.Sprintf("reissue %s's ROA %s under %s before breaking it", authority.Name, r, p.Manipulator.Name),
				})
				plan.Reissued = append(plan.Reissued, fmt.Sprintf("roa:%s", r))
			}
		}
		// Non-path child RCs overlapping the hole also need replacement
		// RCs (their subtrees would otherwise be collateral).
		for _, childName := range authority.Children() {
			child, ok := authority.Child(childName)
			if !ok {
				continue
			}
			onPath := i+1 < len(path) && child == path[i+1]
			if onPath {
				continue
			}
			if child.Resources().Overlaps(hole) {
				plan.Steps = append(plan.Steps, Step{
					Kind:      StepReplacementRC,
					Subject:   childName,
					Authority: child,
					Resources: child.Resources().Subtract(hole),
					Detail:    fmt.Sprintf("issue replacement RC for %s's key (off-path, overlaps hole)", childName),
				})
				plan.Reissued = append(plan.Reissued, fmt.Sprintf("rc:%s", childName))
			}
		}
		// The path RC itself.
		if i == 0 {
			plan.Steps = append(plan.Steps, Step{
				Kind:      StepShrinkChild,
				Subject:   authority.Name,
				Resources: newRes,
				Detail:    fmt.Sprintf("overwrite %s's RC in place without %v", authority.Name, hole),
			})
		} else {
			plan.Steps = append(plan.Steps, Step{
				Kind:      StepReplacementRC,
				Subject:   authority.Name,
				Authority: authority,
				Resources: newRes,
				Detail:    fmt.Sprintf("issue replacement RC for %s's key without %v", authority.Name, hole),
			})
			plan.Reissued = append(plan.Reissued, fmt.Sprintf("rc:%s", authority.Name))
		}
	}

	// Order steps make-before-break: all reissues first, then the single
	// in-place shrink last. (Replacement RCs are also "make" steps: they
	// take effect only when the top shrink "breaks" the old chain.)
	ordered := make([]Step, 0, len(plan.Steps))
	var shrink []Step
	for _, s := range plan.Steps {
		if s.Kind == StepShrinkChild {
			shrink = append(shrink, s)
			continue
		}
		ordered = append(ordered, s)
	}
	plan.Steps = append(ordered, shrink...)

	switch {
	case plan.Depth >= 2:
		plan.Method = MethodDeepWhack
	case len(plan.Reissued) > 0:
		plan.Method = MethodMakeBeforeBreak
	default:
		plan.Method = MethodShrink
	}
	return plan, nil
}

// Execute runs a plan against the live hierarchy. It returns the first
// error; executed steps are not rolled back (faithful to reality).
func (p *Planner) Execute(plan *Plan) error {
	reissueCount := 0
	for _, s := range plan.Steps {
		switch s.Kind {
		case StepDeleteROA:
			if err := p.Manipulator.DeleteROA(s.Subject); err != nil {
				return err
			}
		case StepRevokeROA:
			if err := p.Manipulator.RevokeROA(s.Subject); err != nil {
				return err
			}
		case StepRevokeChild:
			if err := p.Manipulator.RevokeChild(s.Subject); err != nil {
				return err
			}
		case StepReissueROA:
			reissueCount++
			name := fmt.Sprintf("reissued-%d-%s", reissueCount, s.Subject)
			prefixes := make([]roa.Prefix, len(s.ROA.Prefixes))
			copy(prefixes, s.ROA.Prefixes)
			if _, err := p.Manipulator.IssueROA(name, s.ROA.ASID, prefixes...); err != nil {
				return fmt.Errorf("core: reissuing %s: %w", s.Subject, err)
			}
		case StepReplacementRC:
			if err := p.Manipulator.AdoptDescendant(s.Authority, s.Resources); err != nil {
				return fmt.Errorf("core: replacement RC for %s: %w", s.Subject, err)
			}
		case StepShrinkChild:
			if err := p.Manipulator.ShrinkChild(s.Subject, s.Resources); err != nil {
				return fmt.Errorf("core: shrinking %s: %w", s.Subject, err)
			}
		default:
			return fmt.Errorf("core: unknown step kind %v", s.Kind)
		}
	}
	return nil
}

// CollateralOfHole computes which ROAs in the subtree under top (the
// manipulator's direct child on the path) would be whacked by carving hole,
// assuming NO make-before-break reissuance. Used to quantify what the
// surgical plan avoided.
func CollateralOfHole(top *ca.Authority, hole ipres.Set, except Target) []ROARef {
	return subtreeROAs(top, func(h *ca.Authority, name string) bool {
		if h == except.Holder && name == except.Name {
			return true
		}
		r, _ := h.ROA(name)
		return !r.ResourceSet().Overlaps(hole)
	})
}
