package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// OpsServer is the operator HTTP surface of one Hub: metrics scrape,
// liveness/readiness probes, flight-recorder and trace dumps, and pprof.
type OpsServer struct {
	hub *Hub
	ln  net.Listener
	srv *http.Server
}

// ServeOps binds addr and serves the hub's ops endpoints on it until Close:
//
//	/metrics               Prometheus text exposition of the registry
//	/healthz               200 + JSON health snapshot (liveness)
//	/readyz                200 once a clean or LKG-valid sync exists, 503 before
//	/debug/flightrecorder  JSON dump of retained degraded events
//	/debug/lasttrace       JSON span tree of the most recent sync
//	/debug/pprof/          interactive profiling (profile, heap, goroutine, ...)
//
// Handlers run on a private mux — nothing is registered on
// http.DefaultServeMux, so importing net/http/pprof here cannot leak
// profiling endpoints into any other server in the process.
func (h *Hub) ServeOps(addr string) (*OpsServer, error) {
	if h == nil {
		return nil, fmt.Errorf("obs: ServeOps on nil hub")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := h.reg.WriteText(w); err != nil {
			// Too late for a status code; the client sees a short body.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, h.HealthSnapshot())
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		hs := h.HealthSnapshot()
		code := http.StatusOK
		if !hs.Ready {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, hs)
	})
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Total  uint64  `json:"total"`
			Events []Event `json:"events"`
		}{h.rec.Total(), h.rec.Snapshot()})
	})
	mux.HandleFunc("/debug/lasttrace", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, h.trc.Last())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	// Only the header read is bounded: /debug/pprof/profile legitimately
	// streams a response for tens of seconds, so a WriteTimeout would
	// truncate every CPU profile.
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	o := &OpsServer{hub: h, ln: ln, srv: srv}
	go func() {
		// Serve returns ErrServerClosed (or a listener error) on Close;
		// the daemon is shutting down either way.
		_ = srv.Serve(ln)
	}()
	return o, nil
}

// Addr returns the bound listen address (host:port with the real port).
func (o *OpsServer) Addr() string {
	return o.ln.Addr().String()
}

// Close stops the server and releases the listener.
func (o *OpsServer) Close() error {
	return o.srv.Close()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(append(b, '\n'))
}
