package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// Tracer produces per-sync traces and retains the most recent completed
// one for /debug/lasttrace. Timing is read from the injected clock — the
// same clock that drives validation epochs — never the wall clock, so a
// test with a pinned clock gets exact (zero-duration) spans and a daemon
// gets real ones, deterministically.
type Tracer struct {
	clock    func() time.Time
	maxSpans int

	mu sync.Mutex
	// last is the most recently finished trace. guarded by mu.
	last *Trace
}

// defaultMaxSpans bounds one trace's span count so a 1M-module streaming
// walk cannot turn the trace into a second copy of the world; overflow is
// counted, not silently dropped.
const defaultMaxSpans = 2048

// NewTracer creates a tracer on the given clock (nil: time.Now). maxSpans
// bounds spans per trace (0: a generous default); spans started past the
// bound are counted as dropped.
func NewTracer(clock func() time.Time, maxSpans int) *Tracer {
	if clock == nil {
		clock = time.Now
	}
	if maxSpans <= 0 {
		maxSpans = defaultMaxSpans
	}
	return &Tracer{clock: clock, maxSpans: maxSpans}
}

// StartTrace begins a new trace whose root span carries name. Nil-safe:
// a nil tracer returns a nil trace, and every Trace/Span method tolerates
// nil receivers, so instrumented code never branches on "is tracing on".
func (t *Tracer) StartTrace(name string) *Trace {
	if t == nil {
		return nil
	}
	tr := &Trace{tracer: t, spans: 1}
	tr.root = &Span{tr: tr, Name: name, Start: t.clock()}
	return tr
}

// Last returns the most recently finished trace (nil if none yet).
func (t *Tracer) Last() *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.last
}

// Trace is one recorded operation tree (a sync). Its spans are built
// concurrently by the walk goroutines; Finish seals it and publishes it as
// the tracer's last trace.
type Trace struct {
	tracer *Tracer
	root   *Span

	mu sync.Mutex
	// spans counts spans in the tree, dropped counts spans refused past
	// the tracer's bound. guarded by mu.
	spans   int
	dropped int
}

// Root returns the trace's root span (nil-safe).
func (tr *Trace) Root() *Span {
	if tr == nil {
		return nil
	}
	return tr.root
}

// Finish ends the root span and publishes the trace as the tracer's most
// recent (nil-safe).
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	tr.root.End()
	tr.tracer.mu.Lock()
	tr.tracer.last = tr
	tr.tracer.mu.Unlock()
}

// Span is one timed region of a trace. Fields are written by the owning
// goroutine between Child and End; the trace is read only after Finish.
type Span struct {
	tr       *Trace
	Name     string
	Module   string
	Detail   string
	Start    time.Time
	Ended    time.Time
	children []*Span
}

// Child starts a sub-span (nil-safe; returns nil past the trace's span
// bound, which downstream calls tolerate).
func (sp *Span) Child(name, module string) *Span {
	if sp == nil || sp.tr == nil {
		return nil
	}
	tr := sp.tr
	tr.mu.Lock()
	if tr.spans >= tr.tracer.maxSpans {
		tr.dropped++
		tr.mu.Unlock()
		return nil
	}
	tr.spans++
	child := &Span{tr: tr, Name: name, Module: module, Start: tr.tracer.clock()}
	sp.children = append(sp.children, child)
	tr.mu.Unlock()
	return child
}

// End seals the span (nil-safe, idempotent).
func (sp *Span) End() {
	if sp == nil || !sp.Ended.IsZero() {
		return
	}
	sp.Ended = sp.tr.tracer.clock()
}

// SetDetail attaches a free-form note to the span (nil-safe).
func (sp *Span) SetDetail(detail string) {
	if sp != nil {
		sp.Detail = detail
	}
}

// spanJSON is the exported shape of one span.
type spanJSON struct {
	Name       string     `json:"name"`
	Module     string     `json:"module,omitempty"`
	Detail     string     `json:"detail,omitempty"`
	Start      time.Time  `json:"start"`
	DurationNs int64      `json:"duration_ns"`
	Children   []spanJSON `json:"children,omitempty"`
}

func (sp *Span) toJSON() spanJSON {
	end := sp.Ended
	if end.IsZero() {
		end = sp.Start
	}
	out := spanJSON{
		Name:       sp.Name,
		Module:     sp.Module,
		Detail:     sp.Detail,
		Start:      sp.Start,
		DurationNs: end.Sub(sp.Start).Nanoseconds(),
	}
	for _, c := range sp.children {
		out.Children = append(out.Children, c.toJSON())
	}
	return out
}

// MarshalJSON renders the finished trace as a span tree with exact
// injected-clock durations.
func (tr *Trace) MarshalJSON() ([]byte, error) {
	if tr == nil {
		return []byte("null"), nil
	}
	tr.mu.Lock()
	spans, dropped := tr.spans, tr.dropped
	tr.mu.Unlock()
	return json.Marshal(struct {
		Spans        int      `json:"spans"`
		DroppedSpans int      `json:"dropped_spans"`
		Root         spanJSON `json:"root"`
	}{Spans: spans, DroppedSpans: dropped, Root: tr.root.toJSON()})
}
